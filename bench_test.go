// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the paper-relevant quantities as custom metrics
// (normalized scores, F1, retention fractions) in addition to timing, so a
// single -bench run reproduces the paper's headline numbers. The
// shape — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target; absolute timings reflect the simulated substrate.
package bench

import (
	"fmt"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/eval"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/store"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/issue"
	"ioagent/internal/judge"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
	"ioagent/internal/tracebench"
	"ioagent/internal/vectordb"
)

// referenceTrace is a representative multi-issue trace (first ior-hard
// MPI-independent configuration) reused across benchmarks.
func referenceTrace(b *testing.B) *tracebench.Trace {
	b.Helper()
	for _, tr := range tracebench.Suite() {
		if tr.Name == "io500-07-ior-hard-indep-47008b" {
			return tr
		}
	}
	b.Fatal("reference trace missing")
	return nil
}

// BenchmarkTableI_Preprocess exercises the module-based pre-processor: the
// split into per-module CSVs and the Table I summary-fragment extraction.
func BenchmarkTableI_Preprocess(b *testing.B) {
	log := referenceTrace(b).Log()
	var frags int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ioagent.SplitModules(log)
		frags = len(ioagent.Summarize(log))
	}
	b.ReportMetric(float64(frags), "fragments")
}

// BenchmarkTableII_LabelVocabulary measures label parsing across the
// Table II vocabulary (used by every scoring path).
func BenchmarkTableII_LabelVocabulary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, l := range issue.All {
			if _, ok := issue.Parse(string(l)); !ok {
				b.Fatal("parse failure")
			}
		}
	}
	b.ReportMetric(float64(len(issue.All)), "labels")
}

// BenchmarkTableIII_GenerateSuite regenerates the full TraceBench suite and
// verifies the Table III totals.
func BenchmarkTableIII_GenerateSuite(b *testing.B) {
	var issues int
	for i := 0; i < b.N; i++ {
		suite := tracebench.Suite()
		for _, tr := range suite {
			tr.Log()
		}
		issues = tracebench.TotalIssues(suite)
	}
	if issues != 182 {
		b.Fatalf("issue total %d != 182", issues)
	}
	b.ReportMetric(float64(issues), "labeled_issues")
}

// benchTool runs one diagnosis tool over the reference trace and reports
// its label F1 — the per-tool raw quality behind Table IV.
func benchTool(b *testing.B, tool eval.Tool) {
	tr := referenceTrace(b)
	log := tr.Log()
	var text string
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, err = tool.Diagnose(log)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_, _, f1 := issue.F1(tr.Labels, llm.ClaimedLabels(text))
	b.ReportMetric(f1, "label_F1")
}

func BenchmarkTableIV_Drishti(b *testing.B) { benchTool(b, eval.DrishtiTool{}) }

func BenchmarkTableIV_ION(b *testing.B) { benchTool(b, eval.NewIONTool(llm.NewSim())) }

func BenchmarkTableIV_IOAgentGPT4o(b *testing.B) {
	benchTool(b, eval.NewIOAgentTool(llm.NewSim(), llm.GPT4o, llm.GPT4oMini))
}

func BenchmarkTableIV_IOAgentLlama(b *testing.B) {
	benchTool(b, eval.NewIOAgentTool(llm.NewSim(), llm.Llama31, llm.Llama3))
}

// BenchmarkTableIV_FullEvaluation reproduces the complete Table IV (all 40
// traces, 4 tools, 3 criteria, 4 judge permutations) and reports each
// tool's overall average as a metric.
func BenchmarkTableIV_FullEvaluation(b *testing.B) {
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		runner := eval.NewRunner(llm.NewSim())
		var err error
		res, err = runner.Run(tracebench.Suite())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Scores["average"]["Drishti"]["Overall"], "drishti_avg")
	b.ReportMetric(res.Scores["average"]["ION"]["Overall"], "ion_avg")
	b.ReportMetric(res.Scores["average"]["IOAgent-gpt-4o"]["Overall"], "ioagent_gpt4o_avg")
	b.ReportMetric(res.Scores["average"]["IOAgent-llama-3.1-70b"]["Overall"], "ioagent_llama_avg")
}

// amrexTrace reproduces the Section III case-study workload.
func amrexTrace() *darshan.Log {
	sim := iosim.New(iosim.Config{Seed: 722, NProcs: 8, UsesMPI: true, Exe: "/apps/amrex/main3d.ex"})
	narrow := &iosim.Layout{StripeSize: 1 << 20, StripeWidth: 1}
	for p := 0; p < 28; p++ {
		f := sim.OpenShared(fmt.Sprintf("/scratch/plt%05d/Cell_D", p), iosim.POSIX, false, narrow)
		for rank := 0; rank < 8; rank++ {
			base := int64(rank) * (6 << 20)
			for i := int64(0); i < 24; i++ {
				f.WriteAt(rank, base+i*262144, 262144)
			}
		}
		f.Close()
	}
	chk := sim.OpenShared("/scratch/chk00100/Level_0", iosim.POSIX, false, narrow)
	for rank := 0; rank < 8; rank++ {
		base := int64(rank) * (32 << 20)
		for i := int64(0); i < 64; i++ {
			chk.WriteAt(rank, base+i*524288, 524288)
		}
	}
	chk.Close()
	return sim.Finalize()
}

// BenchmarkFig1_PlainLLM reproduces the Fig. 1 comparison: direct queries
// of gpt-4-tier and gpt-4o-tier models over the AMReX-style trace. Metrics
// report each model's issue recall against the ideal-expert reading.
func BenchmarkFig1_PlainLLM(b *testing.B) {
	log := amrexTrace()
	text, err := darshan.TextString(log)
	if err != nil {
		b.Fatal(err)
	}
	truth := llm.ExpertLabels(text)
	client := llm.NewSim()
	prompt := "Analyze this Darshan trace for I/O performance issues:\n\n" + text

	for _, model := range []string{llm.GPT4, llm.GPT4o} {
		model := model
		b.Run(model, func(b *testing.B) {
			var resp llm.Response
			for i := 0; i < b.N; i++ {
				resp, err = client.Complete(llm.Prompt(model, prompt))
				if err != nil {
					b.Fatal(err)
				}
			}
			_, recall, _ := issue.F1(truth, llm.ClaimedLabels(resp.Content))
			b.ReportMetric(recall, "issue_recall")
			if resp.Truncated {
				b.ReportMetric(1, "truncated")
			} else {
				b.ReportMetric(0, "truncated")
			}
		})
	}
}

// BenchmarkFig3_Describe measures the JSON-to-natural-language transform
// and its retrieval benefit: cosine gain of the NL rendition over raw JSON
// against the knowledge index's top hit.
func BenchmarkFig3_Describe(b *testing.B) {
	log := referenceTrace(b).Log()
	frags := ioagent.Summarize(log)
	var frag *ioagent.Fragment
	for _, f := range frags {
		if f.ID() == "POSIX/io_size" {
			frag = f
		}
	}
	if frag == nil {
		b.Fatal("io_size fragment missing")
	}
	client := llm.NewSim()
	ix := knowledge.BuildIndex()
	prompt := "TASK: describe\n" + frag.JSON() + "\n"

	var nl string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Complete(llm.Prompt(llm.GPT4o, prompt))
		if err != nil {
			b.Fatal(err)
		}
		nl = resp.Content
	}
	b.StopTimer()
	jsonTop := ix.Search(frag.JSON(), 1)[0].Score
	nlTop := ix.Search(nl, 1)[0].Score
	b.ReportMetric(nlTop, "nl_top_cosine")
	b.ReportMetric(jsonTop, "json_top_cosine")
}

// BenchmarkFig4_Judge compares the judge with and without the three
// anti-bias augmentations on two equal-quality candidates: the metric is
// the absolute rank gap (0 = fair).
func BenchmarkFig4_Judge(b *testing.B) {
	labels := []issue.Label{issue.SmallWrites, issue.SharedFileAccess}
	truth := issue.NewSet(labels...)
	mk := func(name string) judge.Entry {
		rep := &llm.Report{Preamble: "Analysis."}
		for _, l := range labels {
			rep.Findings = append(rep.Findings, llm.Finding{
				Label:          l,
				Evidence:       "the trace shows strong concrete evidence of this behavior with 42 operations affected overall today",
				Recommendation: issue.Recommendations[l],
				Refs:           []string{"carns2011darshan"},
			})
		}
		return judge.Entry{Tool: name, Text: rep.Format()}
	}
	cases := []struct {
		name string
		aug  judge.Augmentations
	}{
		{"augmented", judge.All()},
		{"no-augmentations", judge.None()},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			j := judge.New(llm.NewSim())
			j.Augment = c.aug
			var gap float64
			for i := 0; i < b.N; i++ {
				entries := []judge.Entry{mk("Drishti"), mk("IOAgent")}
				ranks, err := j.MeanRanks(entries, judge.Accuracy, truth)
				if err != nil {
					b.Fatal(err)
				}
				gap = ranks[1] - ranks[0]
			}
			if gap < 0 {
				gap = -gap
			}
			b.ReportMetric(gap, "abs_rank_gap")
		})
	}
}

// BenchmarkFig5_Chat measures the post-diagnosis interaction path and
// verifies the tailored command synthesis.
func BenchmarkFig5_Chat(b *testing.B) {
	tr := referenceTrace(b)
	agent := ioagent.New(llm.NewSim(), ioagent.Options{})
	res, err := agent.Diagnose(tr.Log())
	if err != nil {
		b.Fatal(err)
	}
	var answer string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := agent.NewSession(res)
		answer, err = sess.Ask("How do I fix the stripe settings issue?")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tailored := 0.0
	if contains(answer, "lfs setstripe") {
		tailored = 1
	}
	b.ReportMetric(tailored, "tailored_command")
}

// BenchmarkFig6_Merge reproduces the tree-vs-one-shot merge ablation on the
// weak llama-3-70B tier: metrics report findings and reference retention.
func BenchmarkFig6_Merge(b *testing.B) {
	labels := []issue.Label{issue.SmallWrites, issue.RandomWrites, issue.HighMetadataLoad, issue.MisalignedWrites}
	refs := []string{"yang2019smallwrite", "zhang2016writeorder", "carns2009metadata", "bez2021alignment"}
	var summaries []string
	for i, l := range labels {
		rep := &llm.Report{Findings: []llm.Finding{{
			Label: l, Evidence: "evidence for " + string(l),
			Recommendation: issue.Recommendations[l],
			Refs:           []string{refs[i]},
		}}}
		summaries = append(summaries, rep.Format())
	}
	agent := ioagent.New(llm.NewSim(), ioagent.Options{Model: llm.Llama3, DisableRAG: true})

	b.Run("tree-merge", func(b *testing.B) {
		var out string
		for i := 0; i < b.N; i++ {
			var err error
			out, err = agent.TreeMerge(summaries)
			if err != nil {
				b.Fatal(err)
			}
		}
		rep := llm.ParseReport(out)
		b.ReportMetric(float64(len(rep.Findings))/float64(len(labels)), "findings_retained")
		b.ReportMetric(float64(len(rep.AllRefs()))/float64(len(labels)), "refs_retained")
	})
	b.Run("one-shot-merge", func(b *testing.B) {
		var out string
		for i := 0; i < b.N; i++ {
			var err error
			out, err = agent.OneShotMerge(summaries)
			if err != nil {
				b.Fatal(err)
			}
		}
		rep := llm.ParseReport(out)
		b.ReportMetric(float64(len(rep.Findings))/float64(len(labels)), "findings_retained")
		b.ReportMetric(float64(len(rep.AllRefs()))/float64(len(labels)), "refs_retained")
	})
}

// BenchmarkAblation_MergeFanIn sweeps the one-shot merge fan-in, showing
// retention collapse past the model's merge capacity (the reason the paper
// insists on pairwise merging for the typical 13+ summaries).
func BenchmarkAblation_MergeFanIn(b *testing.B) {
	agent := ioagent.New(llm.NewSim(), ioagent.Options{Model: llm.GPT4o, DisableRAG: true})
	for _, n := range []int{2, 4, 8, 13} {
		n := n
		b.Run(fmt.Sprintf("fanin-%d", n), func(b *testing.B) {
			var summaries []string
			for i := 0; i < n; i++ {
				l := issue.All[i%len(issue.All)]
				rep := &llm.Report{Findings: []llm.Finding{{
					Label: l, Evidence: fmt.Sprintf("evidence %d for %s", i, l),
					Recommendation: issue.Recommendations[l],
				}}}
				summaries = append(summaries, rep.Format())
			}
			distinct := len(llm.MergeReports(parseAll(summaries)).Findings)
			var out string
			for i := 0; i < b.N; i++ {
				var err error
				out, err = agent.OneShotMerge(summaries)
				if err != nil {
					b.Fatal(err)
				}
			}
			rep := llm.ParseReport(out)
			b.ReportMetric(float64(len(rep.Findings))/float64(distinct), "findings_retained")
		})
	}
}

// BenchmarkAblation_RAG compares the pipeline with and without retrieval:
// the metric is the number of citations in the final report (grounding).
func BenchmarkAblation_RAG(b *testing.B) {
	tr := referenceTrace(b)
	for _, c := range []struct {
		name string
		opts ioagent.Options
	}{
		{"with-rag", ioagent.Options{}},
		{"no-rag", ioagent.Options{DisableRAG: true}},
		{"no-reflection", ioagent.Options{DisableReflection: true}},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			agent := ioagent.New(llm.NewSim(), c.opts)
			var res *ioagent.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = agent.Diagnose(tr.Log())
				if err != nil {
					b.Fatal(err)
				}
			}
			_, _, f1 := issue.F1(tr.Labels, res.Report.Labels())
			b.ReportMetric(f1, "label_F1")
			b.ReportMetric(float64(len(res.Report.AllRefs())), "citations")
		})
	}
}

// BenchmarkSubstrate_DarshanCodec measures the binary codec on a realistic
// log (substrate sanity, not a paper figure).
func BenchmarkSubstrate_DarshanCodec(b *testing.B) {
	log := referenceTrace(b).Log()
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countWriter
			if err := darshan.Encode(&sink, log); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sink))
		}
	})
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			text, err := darshan.TextString(log)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(text)))
		}
	})
}

type countWriter int

func (w *countWriter) Write(p []byte) (int, error) {
	*w += countWriter(len(p))
	return len(p), nil
}

func parseAll(texts []string) []*llm.Report {
	out := make([]*llm.Report, len(texts))
	for i, t := range texts {
		out[i] = llm.ParseReport(t)
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// fleetTraces generates the n-trace iosim batch the fleet benchmarks
// shard across workers: distinct seeds give distinct traces (and distinct
// cache digests), each a small-write-bound MPI job.
func fleetTraces(n int) []*darshan.Log {
	out := make([]*darshan.Log, n)
	for i := range out {
		sim := iosim.New(iosim.Config{
			Seed: int64(i)*13 + 5, NProcs: 4, UsesMPI: true,
			Exe: fmt.Sprintf("/apps/fleet/job%03d.ex", i),
		})
		f := sim.OpenShared(fmt.Sprintf("/scratch/fleet/run%03d.dat", i), iosim.POSIX, false, nil)
		for rank := 0; rank < 4; rank++ {
			base := int64(rank) * (1 << 20)
			for op := int64(0); op < 16; op++ {
				f.WriteAt(rank, base+op*16384, 16384)
			}
		}
		f.Close()
		out[i] = sim.Finalize()
	}
	return out
}

// fleetAPILatency is the simulated model-API round trip used by the fleet
// benchmarks. Real diagnosis time is dominated by API latency, not local
// compute, and this is the property the worker pool exploits: workers
// overlap their waits, so throughput scales near-linearly until the queue
// or the backend saturates.
const fleetAPILatency = 15 * time.Millisecond

// fleetBatch pushes every trace through a fresh pool and returns the batch
// wall time. Caching is disabled so each run measures full pipeline work.
func fleetBatch(b *testing.B, workers int, traces []*darshan.Log, ix *vectordb.Index) time.Duration {
	b.Helper()
	pool := fleet.New(llm.WithLatency(llm.NewSim(), fleetAPILatency), fleet.Config{
		Workers:   workers,
		CacheSize: -1,
		Agent:     ioagent.Options{Index: ix},
	})
	defer pool.Close()
	start := time.Now()
	for _, tr := range traces {
		if _, err := pool.Submit(tr); err != nil {
			b.Fatal(err)
		}
	}
	pool.Wait()
	elapsed := time.Since(start)
	if m := pool.Metrics(); m.Failed != 0 {
		b.Fatalf("%d fleet jobs failed", m.Failed)
	}
	return elapsed
}

// BenchmarkFleet_Throughput measures batch-diagnosis throughput of the
// fleet pool across worker counts on a 32-trace iosim batch. The
// traces_per_sec metric scales near-linearly with workers; the speedup_vs_1w
// metric reports each width's advantage over the serial baseline directly
// (8 workers is required to clear 3x).
func BenchmarkFleet_Throughput(b *testing.B) {
	traces := fleetTraces(32)
	ix := knowledge.BuildIndex()
	var serialPerBatch time.Duration // workers-1 mean batch time (runs first)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += fleetBatch(b, workers, traces, ix)
			}
			perBatch := total / time.Duration(b.N)
			if workers == 1 {
				serialPerBatch = perBatch
			}
			b.ReportMetric(float64(len(traces)*b.N)/total.Seconds(), "traces_per_sec")
			if workers > 1 && serialPerBatch > 0 {
				b.ReportMetric(serialPerBatch.Seconds()/perBatch.Seconds(), "speedup_vs_1w")
			}
		})
	}
}

// BenchmarkFleet_CacheHitRate submits the same 32-trace batch twice to one
// pool: the second pass must be answered from the content-addressed result
// cache (hit rate >= 0.9 is the acceptance bar; content addressing makes it
// exactly 1.0) at effectively zero marginal cost.
func BenchmarkFleet_CacheHitRate(b *testing.B) {
	traces := fleetTraces(32)
	ix := knowledge.BuildIndex()
	var hitRate, speedup float64
	for i := 0; i < b.N; i++ {
		pool := fleet.New(llm.WithLatency(llm.NewSim(), fleetAPILatency), fleet.Config{
			Workers: 8,
			Agent:   ioagent.Options{Index: ix},
		})
		run := func() time.Duration {
			start := time.Now()
			for _, tr := range traces {
				if _, err := pool.Submit(tr); err != nil {
					b.Fatal(err)
				}
			}
			pool.Wait()
			return time.Since(start)
		}
		cold := run()
		before := pool.Metrics()
		warm := run()
		after := pool.Metrics()
		hitRate = float64(after.CacheHits-before.CacheHits) / float64(len(traces))
		speedup = cold.Seconds() / warm.Seconds()
		pool.Close()
	}
	b.ReportMetric(hitRate, "second_batch_hit_rate")
	b.ReportMetric(speedup, "warm_batch_speedup")
}

// BenchmarkFleet_Retry measures the overhead the retry layer adds when the
// backend is healthy versus transiently failing once per 1000 calls. The
// failure window lands on a scheduling-dependent call, so the attempt
// budget is sized to make exhaustion vanishingly unlikely.
func BenchmarkFleet_Retry(b *testing.B) {
	traces := fleetTraces(8)
	ix := knowledge.BuildIndex()
	for _, c := range []struct {
		name   string
		period int
	}{
		{"healthy", 0},
		{"flaky-1-in-1000", 1000},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var retries int64
			for i := 0; i < b.N; i++ {
				client := llm.Flaky(llm.NewSim(), c.period)
				pool := fleet.New(client, fleet.Config{
					Workers:     8,
					CacheSize:   -1,
					MaxAttempts: 6,
					RetryDelay:  time.Millisecond,
					Agent:       ioagent.Options{Index: ix},
				})
				for _, tr := range traces {
					if _, err := pool.Submit(tr); err != nil {
						b.Fatal(err)
					}
				}
				pool.Wait()
				m := pool.Metrics()
				if m.Failed != 0 {
					b.Fatalf("%d jobs failed despite retries", m.Failed)
				}
				retries = m.Retries
				pool.Close()
			}
			b.ReportMetric(float64(retries), "retries")
		})
	}
}

// BenchmarkFleet_Persistence measures the durability layer that backs
// iofleetd's -state-dir: the cost of a checkpoint (cache snapshot + journal
// compaction), of a cold recovery (journal scan + snapshot restore into a
// fresh pool), and of the write-ahead journal append on the submit path
// under each fsync policy.
func BenchmarkFleet_Persistence(b *testing.B) {
	const entries = 32
	traces := fleetTraces(entries)
	ix := knowledge.BuildIndex()
	warmPool := func(st *store.Store) *fleet.Pool {
		cfg := fleet.Config{Workers: 8, Agent: ioagent.Options{Index: ix}}
		if st != nil {
			cfg.OnJobEvent = st.OnJobEvent
			cfg.OnCacheInsert = st.CacheChanged
			cfg.OnCacheEvict = st.CacheChanged
		}
		pool := fleet.New(llm.NewSim(), cfg)
		for _, tr := range traces {
			if _, err := pool.Submit(tr); err != nil {
				b.Fatal(err)
			}
		}
		pool.Wait()
		return pool
	}

	b.Run("checkpoint", func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.Options{Logf: b.Logf})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		pool := warmPool(st)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.FinalCheckpoint(pool); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(entries, "cache_entries")
	})

	b.Run("recover", func(b *testing.B) {
		dir := b.TempDir()
		st, err := store.Open(dir, store.Options{Logf: b.Logf})
		if err != nil {
			b.Fatal(err)
		}
		pool := warmPool(st)
		if err := st.FinalCheckpoint(pool); err != nil {
			b.Fatal(err)
		}
		pool.Close()
		st.Close()
		var restored int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := store.Open(dir, store.Options{Logf: b.Logf})
			if err != nil {
				b.Fatal(err)
			}
			pool := fleet.New(llm.NewSim(), fleet.Config{Workers: 8, Agent: ioagent.Options{Index: ix}})
			restored, _, err = st.Replay(pool)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			pool.Close()
			st.Close()
			b.StartTimer()
		}
		if restored != entries {
			b.Fatalf("restored %d entries, want %d", restored, entries)
		}
		b.ReportMetric(float64(restored), "entries_restored")
	})

	for _, mode := range []store.FsyncMode{store.FsyncAlways, store.FsyncOff} {
		mode := mode
		b.Run("journal-append-fsync-"+string(mode), func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{Fsync: mode, Logf: b.Logf})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			tr := traces[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := fmt.Sprintf("job-%06d", i)
				st.OnJobEvent(fleet.Event{
					Kind: fleet.EventSubmitted,
					Job:  fleet.JobInfo{ID: id, Digest: "bench", Status: fleet.StatusQueued, SubmittedAt: time.Now()},
					Log:  tr,
				})
				st.OnJobEvent(fleet.Event{
					Kind: fleet.EventDone,
					Job:  fleet.JobInfo{ID: id, Digest: "bench", Status: fleet.StatusDone},
				})
			}
		})
	}
}

// BenchmarkCostPerDiagnosis reports the simulated API cost of diagnosing
// one trace with each tool — the accuracy/cost trade-off the paper calls
// "of utmost importance" for production systems. Drishti is free
// (heuristics), the llama pipeline is free (self-hosted), ION pays one
// large prompt, and the gpt-4o pipeline pays ~60 small calls.
func BenchmarkCostPerDiagnosis(b *testing.B) {
	tr := referenceTrace(b)
	log := tr.Log()

	b.Run("ION-gpt4o", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			d := eval.NewIONTool(llm.NewSim())
			if _, err := d.Diagnose(log); err != nil {
				b.Fatal(err)
			}
			_, cost = d.D.Stats()
		}
		b.ReportMetric(cost*1000, "mUSD_per_diag")
	})
	b.Run("IOAgent-gpt4o", func(b *testing.B) {
		var cost float64
		var calls int
		for i := 0; i < b.N; i++ {
			agent := ioagent.New(llm.NewSim(), ioagent.Options{})
			if _, err := agent.Diagnose(log); err != nil {
				b.Fatal(err)
			}
			_, cost, calls = agent.Stats()
		}
		b.ReportMetric(cost*1000, "mUSD_per_diag")
		b.ReportMetric(float64(calls), "llm_calls")
	})
	b.Run("IOAgent-llama", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			agent := ioagent.New(llm.NewSim(), ioagent.Options{Model: llm.Llama31, CheapModel: llm.Llama3})
			if _, err := agent.Diagnose(log); err != nil {
				b.Fatal(err)
			}
			_, cost, _ = agent.Stats()
		}
		b.ReportMetric(cost*1000, "mUSD_per_diag")
	})
}

// BenchmarkSubstrate_DXT measures extended-tracing collection overhead and
// burst analytics on a 10k-event stream (the paper's future-work path).
func BenchmarkSubstrate_DXT(b *testing.B) {
	mk := func(enable bool) float64 {
		s := iosim.New(iosim.Config{Seed: 12, NProcs: 8, UsesMPI: true, EnableDXT: enable})
		f := s.OpenShared("/scratch/dxt.dat", iosim.POSIX, false, nil)
		for rank := 0; rank < 8; rank++ {
			for i := int64(0); i < 160; i++ {
				f.WriteAt(rank, (int64(rank)*160+i)*65536, 65536)
			}
		}
		log := s.Finalize()
		return log.Job.RunTime
	}
	b.Run("collect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mk(true)
		}
	})
	b.Run("analyze", func(b *testing.B) {
		s := iosim.New(iosim.Config{Seed: 12, NProcs: 8, UsesMPI: true, EnableDXT: true})
		f := s.OpenShared("/scratch/dxt.dat", iosim.POSIX, false, nil)
		for rank := 0; rank < 8; rank++ {
			for i := int64(0); i < 160; i++ {
				f.WriteAt(rank, (int64(rank)*160+i)*65536, 65536)
			}
		}
		tr := s.DXT()
		var bursts int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bursts = len(tr.Bursts(0.050, 8))
			tr.Timelines()
		}
		b.ReportMetric(float64(bursts), "bursts")
		s.Finalize()
	})
}
