// Command fleetbench proves diagnosis quality under sustained fleet load
// and writes the numbers to a JSON file (BENCH_fleet.json in CI).
//
// It boots a live two-daemon cluster — two in-process pools with semantic
// reuse and the cost-aware tier ladder on, each behind a real HTTP serving
// mux, fronted by the digest-sharding router — and drives the scored
// adversarial scenario matrix (internal/scenario) through it as a client
// would: mixed trace modalities (binary Darshan counter logs and DXT
// per-operation text renderings), mixed tenants, and mixed priority lanes.
//
// Two phases per run:
//
//   - seed: every scenario's base trace is submitted and its diagnosis is
//     scored against the scenario's committed drishti label set with
//     eval.ScoreDiagnosis. With -enforce-baselines, any scenario scoring
//     below its committed baseline fails the run (exit 1) — this is the
//     CI regression fence for diagnosis quality.
//   - soak: near-duplicate variants of every scenario (new content
//     digests, unchanged I/O profiles) arrive across tenants and lanes,
//     exercising exact caching, semantic reuse, the confidence gate, and
//     the cross-modality fence under concurrency. Because the router
//     shards by content digest, a variant may land on a different node
//     than its base — similarity hit rates here are the honest
//     cluster-level number, not a single-pool best case.
//
// Reported: per-scenario scores and pass/fail, p95 latency, exact and
// similarity hit rates, gate-reject rate, per-tier job counts, LLM spend,
// and $/diagnosis.
//
// With -dump DIR, the scenario wire renderings are also written to
// DIR/<scenario>.trace for external harnesses (e2e-smoke submits them
// against real daemon binaries).
//
// Usage:
//
//	fleetbench [-out BENCH_fleet.json] [-variants 3] [-workers 2]
//	           [-dump DIR] [-enforce-baselines]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/dxt"
	"ioagent/internal/eval"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/router"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
	"ioagent/internal/scenario"
)

type scenarioResult struct {
	Name     string  `json:"name"`
	Modality string  `json:"modality"`
	Score    float64 `json:"score"`
	Baseline float64 `json:"baseline"`
	Pass     bool    `json:"pass"`
	// VariantSimilarityHits counts soak variants of this scenario served
	// via semantic reuse (cluster-level: digest sharding may route a
	// variant away from its base's node).
	VariantSimilarityHits int `json:"variant_similarity_hits"`
	Variants              int `json:"variants"`
}

type report struct {
	Scenarios           []scenarioResult `json:"scenarios"`
	Submissions         int64            `json:"submissions"`
	LatencyP95Ms        float64          `json:"latency_p95_ms"`
	ExactHitRate        float64          `json:"exact_hit_rate"`
	SimilarityHitRate   float64          `json:"similarity_hit_rate"`
	GateRejectRate      float64          `json:"gate_reject_rate"`
	TierJobs            map[string]int64 `json:"tier_jobs"`
	LLMCostUSD          float64          `json:"llm_cost_usd"`
	CostPerDiagnosisUSD float64          `json:"cost_per_diagnosis_usd"`
	AllScenariosPass    bool             `json:"all_scenarios_pass"`
}

func main() {
	out := flag.String("out", "BENCH_fleet.json", "output JSON path")
	variants := flag.Int("variants", 3, "near-duplicate soak variants per scenario")
	workers := flag.Int("workers", 2, "workers per daemon pool")
	dump := flag.String("dump", "", "also write scenario wire renderings to this directory")
	dumpOnly := flag.Bool("dump-only", false, "write the -dump wires and exit without benchmarking (for external harnesses)")
	enforce := flag.Bool("enforce-baselines", false, "exit non-zero if any scenario scores below its committed baseline")
	flag.Parse()

	scenarios := scenario.Matrix()
	if *dump != "" {
		dumpWires(*dump, scenarios)
		if *dumpOnly {
			return
		}
	}

	// Live cluster: two daemons with semantic reuse and the tier ladder
	// on, behind the digest-sharding router.
	index := knowledge.BuildIndex()
	var pools []*fleet.Pool
	var nodes []string
	for _, id := range []string{"n1", "n2"} {
		pool := fleet.New(llm.NewSim(), fleet.Config{
			Workers:    *workers,
			NodeID:     id,
			Agent:      ioagent.Options{Index: index},
			SemCache:   true,
			TierModels: []string{llm.GPT4oMini, llm.GPT4o},
		})
		defer pool.Close()
		pools = append(pools, pool)
		srv := httptest.NewServer(server.NewMux(server.Config{Pool: pool, NodeID: id, MaxBody: 64 << 20}))
		defer srv.Close()
		nodes = append(nodes, srv.URL)
	}
	rt, err := router.New(router.Config{Members: nodes, MaxBody: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := client.New(front.URL)
	defer c.Close()

	scorer := llm.NewSim()
	rep := report{TierJobs: map[string]int64{}, AllScenariosPass: true}

	// Seed phase: one scored diagnosis per scenario.
	for _, sc := range scenarios {
		wire, _ := sc.Build()
		d, err := c.SubmitAndWait(context.Background(), api.SubmitRequest{
			Trace:  wire,
			Lane:   laneFor(len(rep.Scenarios)),
			Tenant: tenantFor(len(rep.Scenarios)),
		})
		if err != nil {
			log.Fatalf("fleetbench: seed %s: %v", sc.Name, err)
		}
		score, err := eval.ScoreDiagnosis(scorer, "", sc.Expected, d.Text)
		if err != nil {
			log.Fatalf("fleetbench: score %s: %v", sc.Name, err)
		}
		res := scenarioResult{
			Name: sc.Name, Modality: sc.Modality,
			Score: score, Baseline: sc.Baseline, Pass: score >= sc.Baseline,
			Variants: *variants,
		}
		if !res.Pass {
			rep.AllScenariosPass = false
			log.Printf("fleetbench: REGRESSION: %s scored %.3f, committed baseline %.3f", sc.Name, score, sc.Baseline)
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}

	// Soak phase: near-duplicate variants across tenants and lanes,
	// submitted concurrently.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for si, sc := range scenarios {
		for v := 0; v < *variants; v++ {
			wg.Add(1)
			go func(si, v int, sc scenario.Scenario) {
				defer wg.Done()
				n := si**variants + v
				d, err := c.SubmitAndWait(context.Background(), api.SubmitRequest{
					Trace:  variantWire(sc, v),
					Lane:   laneFor(n),
					Tenant: tenantFor(n),
				})
				if err != nil {
					log.Fatalf("fleetbench: soak %s v%d: %v", sc.Name, v, err)
				}
				if d.SimilarityHit {
					mu.Lock()
					rep.Scenarios[si].VariantSimilarityHits++
					mu.Unlock()
				}
			}(si, v, sc)
		}
	}
	wg.Wait()

	// Cluster-level metrics: sums across both daemons; p95 is the worse
	// node's (a cluster is as slow as its slowest shard).
	var submitted, exact, coalesced, semHits, rejects int64
	var p95 time.Duration
	for _, pool := range pools {
		m := pool.Metrics()
		submitted += m.Submitted
		exact += m.CacheHits
		coalesced += m.Coalesced
		semHits += m.SemHits
		rejects += m.SemGateRejects
		if m.LatencyP95 > p95 {
			p95 = m.LatencyP95
		}
		for model, tm := range m.Tiers {
			rep.TierJobs[model] += tm.Jobs
		}
		for _, st := range pool.StatsByModel() {
			rep.LLMCostUSD += st.CostUSD
		}
	}
	rep.Submissions = submitted
	rep.LatencyP95Ms = float64(p95) / float64(time.Millisecond)
	if submitted > 0 {
		rep.ExactHitRate = float64(exact+coalesced) / float64(submitted)
		rep.SimilarityHitRate = float64(semHits) / float64(submitted)
		rep.GateRejectRate = float64(rejects) / float64(submitted)
		rep.CostPerDiagnosisUSD = rep.LLMCostUSD / float64(submitted)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)

	if *enforce && !rep.AllScenariosPass {
		log.Fatal("fleetbench: scenario regression below committed baseline")
	}
}

// laneFor and tenantFor spread submissions across priority classes and
// tenants, deterministically.
func laneFor(n int) api.Lane {
	if n%3 == 0 {
		return api.LaneBatch
	}
	return api.LaneInteractive
}

func tenantFor(n int) string {
	return [...]string{"astro-sim", "climate-ens", "genomics"}[n%3]
}

// variantWire derives a near-duplicate wire for a scenario: a new content
// digest, the same I/O profile, in the scenario's own modality.
func variantWire(sc scenario.Scenario, v int) []byte {
	_, base := sc.Build()
	if sc.Modality == "dxt" {
		// Comments do not survive canonicalization, so a metadata line
		// would collapse to the same digest; nudge every timestamp by a
		// multiple of the text-precision quantum instead.
		t := base.DXT
		shifted := &dxt.Trace{NProcs: t.NProcs, Events: append([]dxt.Event(nil), t.Events...)}
		for i := range shifted.Events {
			shifted.Events[i].Start += float64(v+1) * 2e-6
			shifted.Events[i].End += float64(v+1) * 2e-6
		}
		return []byte(dxt.TextString(shifted))
	}
	text, err := darshan.TextString(base)
	if err != nil {
		log.Fatalf("fleetbench: variant of %s: %v", sc.Name, err)
	}
	return []byte(text + fmt.Sprintf("# metadata: bench_variant = %s-v%d\n", sc.Name, v))
}

// dumpWires writes every scenario's wire rendering to dir/<name>.trace.
func dumpWires(dir string, scenarios []scenario.Scenario) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, sc := range scenarios {
		wire, _ := sc.Build()
		name := filepath.Join(dir, sc.Name+".trace")
		if err := os.WriteFile(name, wire, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// A tiny manifest so shell harnesses can iterate without globbing
	// surprises.
	var names []string
	for _, sc := range scenarios {
		names = append(names, sc.Name)
	}
	manifest := strings.Join(names, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte(manifest), 0o644); err != nil {
		log.Fatal(err)
	}
}
