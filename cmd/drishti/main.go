// Command drishti runs the heuristic baseline over a Darshan trace and
// prints the fired triggers (the classic CLI view) or the report form.
//
// Usage:
//
//	drishti [-report] <trace.darshan|trace.txt>
package main

import (
	"flag"
	"fmt"
	"os"

	"ioagent/internal/darshan"
	"ioagent/internal/drishti"
)

func main() {
	report := flag.Bool("report", false, "print the structured report instead of the trigger list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drishti [-report] <trace>")
		os.Exit(2)
	}
	log, err := loadTrace(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "drishti:", err)
		os.Exit(1)
	}
	res := drishti.Analyze(log)
	if *report {
		fmt.Println(res.Format())
		return
	}
	fmt.Print(res.Summary())
}

func loadTrace(path string) (*darshan.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if log, err := darshan.Decode(f); err == nil {
		return log, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return darshan.ParseText(f)
}
