// Command handoffbench measures what the elastic-cluster layer is for:
// already-diagnosed traces staying warm while the fleet changes shape. It
// writes the numbers to a JSON file (BENCH_handoff.json in CI).
//
// It boots a live in-process elastic fleet — real pools behind real HTTP
// muxes, gossiping roster managers, successor replication on — and runs
// three measured phases:
//
//   - join: one daemon is seeded with diagnosed traces, then a second
//     daemon joins the roster mid-run. The ring diff hands the moved
//     digests to the new owner, and every moved trace is resubmitted
//     through a cluster client: the warm-hit rate is the fraction served
//     from cache (by the JOINED node) instead of recomputed.
//   - recompute baseline: the same moved traces submitted to a fresh
//     static daemon — what a join costs WITHOUT handoff (~0% warm, full
//     diagnosis latency). This is the number the join phase is up against.
//   - kill: fresh traces are diagnosed through the two-node fleet with
//     -replicate 2, so each lands warm on its owner and the successor.
//     The owner is then killed outright (listener closed, connections
//     severed, no drain) and the dead node's digests are resubmitted: the
//     cluster client fails over to the successor, which must answer warm.
//
// Reported per phase: warm hits, warm-hit rate, and p50/p95 submit
// latency, plus both nodes' fleet_handoff_* counter documents.
//
// Usage:
//
//	handoffbench [-out BENCH_handoff.json] [-seed 24] [-fresh 12]
//	             [-workers 2] [-api-latency 25ms] [-enforce]
//
// With -enforce the run exits non-zero unless the join phase stays at or
// above an 80% warm-hit rate and the kill phase serves every replicated
// digest warm — the CI fence for the elastic layer.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/ring"
	"ioagent/internal/fleet/roster"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
	"ioagent/internal/scenario"
)

type phase struct {
	Total       int     `json:"total"`
	WarmHits    int     `json:"warm_hits"`
	WarmHitRate float64 `json:"warm_hit_rate"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
}

type report struct {
	Seeded            int                           `json:"seeded"`
	MovedOnJoin       int                           `json:"moved_on_join"`
	Join              phase                         `json:"join"`
	RecomputeBaseline phase                         `json:"recompute_baseline"`
	Kill              phase                         `json:"kill"`
	Handoff           map[string]api.HandoffMetrics `json:"handoff_metrics"`
}

// node is one in-process elastic daemon: pool + roster manager + mux,
// wired exactly like iofleetd does it (late-bound manager slot for the
// replication hook, handler swapped in once the manager exists).
type node struct {
	pool *fleet.Pool
	mgr  *roster.Manager
	srv  *httptest.Server
	stop context.CancelFunc
}

func startNode(id string, workers, replicate int, apiLatency time.Duration, peers ...string) *node {
	var handler atomic.Value
	handler.Store(http.NotFoundHandler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))

	var mgrSlot atomic.Pointer[roster.Manager]
	pool := fleet.New(llm.WithLatency(llm.NewSim(), apiLatency), fleet.Config{
		Workers: workers,
		NodeID:  id,
		Agent:   ioagent.Options{Index: knowledge.BuildIndex()},
		OnCacheInsert: func(digest string) {
			if m := mgrSlot.Load(); m != nil {
				m.CacheInserted(digest)
			}
		},
	})

	mgr := roster.New(roster.Config{
		SelfURL:    srv.URL,
		NodeID:     id,
		Peers:      peers,
		Interval:   50 * time.Millisecond,
		Replicate:  replicate,
		Pool:       pool,
		ClientOpts: []client.Option{client.WithRetry(1, time.Millisecond)},
	})
	mgrSlot.Store(mgr)
	handler.Store(server.NewMux(server.Config{Pool: pool, NodeID: id, Elastic: mgr}))

	ctx, cancel := context.WithCancel(context.Background())
	go mgr.Run(ctx)
	return &node{pool: pool, mgr: mgr, srv: srv, stop: cancel}
}

// kill severs the node the way a crash would: gossip stops, open
// connections break mid-flight, the listener refuses. No drain, no
// goodbye announce — the rest of the fleet finds out the hard way.
func (n *node) kill() {
	n.stop()
	n.srv.CloseClientConnections()
	n.srv.Close()
}

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatalf("handoffbench: timed out waiting for %s", what)
}

// traceFor derives the i-th distinct trace: a darshan-modality scenario
// rendered as parser text with an index-bearing metadata line, so every i
// yields a fresh content digest over a realistic I/O profile.
func traceFor(scenarios []scenario.Scenario, i int) []byte {
	sc := scenarios[i%len(scenarios)]
	_, base := sc.Build()
	text, err := darshan.TextString(base)
	if err != nil {
		log.Fatalf("handoffbench: render %s: %v", sc.Name, err)
	}
	return []byte(text + fmt.Sprintf("# metadata: handoff_variant = %d\n", i))
}

// submitAll pushes each trace through submit, recording per-call latency
// and cache-hit provenance, and returns the measured phase.
func submitAll(traces [][]byte, submit func(trace []byte) (api.Diagnosis, error)) phase {
	var p phase
	lats := make([]time.Duration, 0, len(traces))
	for _, trace := range traces {
		start := time.Now()
		d, err := submit(trace)
		if err != nil {
			log.Fatalf("handoffbench: submit: %v", err)
		}
		lats = append(lats, time.Since(start))
		p.Total++
		if d.CacheHit {
			p.WarmHits++
		}
	}
	if p.Total > 0 {
		p.WarmHitRate = float64(p.WarmHits) / float64(p.Total)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		p.P50Ms = float64(lats[n/2]) / float64(time.Millisecond)
		p.P95Ms = float64(lats[n*95/100]) / float64(time.Millisecond)
	}
	return p
}

func main() {
	out := flag.String("out", "BENCH_handoff.json", "output JSON path")
	seedN := flag.Int("seed", 24, "traces diagnosed before the join")
	freshN := flag.Int("fresh", 12, "traces diagnosed after the join (replicated, then their owner is killed)")
	workers := flag.Int("workers", 2, "workers per daemon pool")
	apiLatency := flag.Duration("api-latency", 25*time.Millisecond, "simulated model API round trip (what a warm hit saves)")
	enforce := flag.Bool("enforce", false, "exit non-zero below an 80% join warm-hit rate or a non-perfect kill phase")
	flag.Parse()

	scenarios := darshanScenarios()

	// Phase 0 — seed: one elastic daemon diagnoses everything cold.
	n1 := startNode("n1", *workers, 2, *apiLatency)
	c1 := client.New(n1.srv.URL)
	seedTraces := make([][]byte, *seedN)
	digests := make([]string, *seedN)
	for i := range seedTraces {
		seedTraces[i] = traceFor(scenarios, i)
		d, err := c1.SubmitAndWait(context.Background(), api.SubmitRequest{Trace: seedTraces[i]})
		if err != nil {
			log.Fatalf("handoffbench: seed %d: %v", i, err)
		}
		if d.CacheHit {
			log.Fatalf("handoffbench: seed %d unexpectedly warm; variants must have distinct digests", i)
		}
		digests[i] = d.Digest
	}
	c1.Close()

	// Phase 1 — live join: n2 enters the roster knowing only n1; the ring
	// diff hands the moved digests over.
	n2 := startNode("n2", *workers, 2, *apiLatency, n1.srv.URL)
	moved := ring.Changed(0, []string{n1.srv.URL}, []string{n1.srv.URL, n2.srv.URL}, digests)
	if len(moved) == 0 {
		log.Fatal("handoffbench: no digests moved on the join; ring diff is broken")
	}
	waitFor("join handoff to complete", func() bool {
		return n1.mgr.Metrics().EntriesPushed >= int64(len(moved)) &&
			n2.mgr.Metrics().EntriesReceived >= int64(len(moved))
	})

	movedSet := make(map[string]bool, len(moved))
	for _, d := range moved {
		movedSet[d] = true
	}
	movedTraces := make([][]byte, 0, len(moved))
	for i, d := range digests {
		if movedSet[d] {
			movedTraces = append(movedTraces, seedTraces[i])
		}
	}

	cluster, err := client.NewCluster([]string{n1.srv.URL, n2.srv.URL},
		client.WithRetry(1, 5*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	rep := report{Seeded: *seedN, MovedOnJoin: len(moved), Handoff: map[string]api.HandoffMetrics{}}
	rep.Join = submitAll(movedTraces, func(trace []byte) (api.Diagnosis, error) {
		return cluster.SubmitAndWait(context.Background(), api.SubmitRequest{Trace: trace})
	})

	// Phase 2 — recompute baseline: the same moved traces against a fresh
	// static daemon, i.e. a join without the handoff machinery.
	basePool := fleet.New(llm.WithLatency(llm.NewSim(), *apiLatency), fleet.Config{
		Workers: *workers,
		NodeID:  "base",
		Agent:   ioagent.Options{Index: knowledge.BuildIndex()},
	})
	baseSrv := httptest.NewServer(server.NewMux(server.Config{Pool: basePool, NodeID: "base"}))
	cb := client.New(baseSrv.URL)
	rep.RecomputeBaseline = submitAll(movedTraces, func(trace []byte) (api.Diagnosis, error) {
		return cb.SubmitAndWait(context.Background(), api.SubmitRequest{Trace: trace})
	})
	cb.Close()
	baseSrv.Close()
	basePool.Close()

	// Phase 3 — kill the owner: fresh diagnoses replicate to the
	// successor (replicate=2 means owner + one copy on a two-node ring);
	// then the owner dies without a drain and its digests are resubmitted.
	freshTraces := make([][]byte, *freshN)
	freshDigests := make([]string, *freshN)
	for i := range freshTraces {
		freshTraces[i] = traceFor(scenarios, *seedN+i)
		d, err := cluster.SubmitAndWait(context.Background(), api.SubmitRequest{Trace: freshTraces[i]})
		if err != nil {
			log.Fatalf("handoffbench: fresh %d: %v", i, err)
		}
		freshDigests[i] = d.Digest
	}
	waitFor("replicas to land on both nodes", func() bool {
		for _, d := range freshDigests {
			if _, ok := n1.pool.CacheEntryFor(d); !ok {
				return false
			}
			if _, ok := n2.pool.CacheEntryFor(d); !ok {
				return false
			}
		}
		return true
	})

	// The dead node's share: fresh digests the ring routes to n1 first.
	var orphaned [][]byte
	for i, d := range freshDigests {
		if route := cluster.RouteDigest(d); len(route) > 0 && route[0] == n1.srv.URL {
			orphaned = append(orphaned, freshTraces[i])
		}
	}
	rep.Handoff["n1"] = n1.mgr.Metrics() // snapshot before the kill
	n1.kill()
	rep.Kill = submitAll(orphaned, func(trace []byte) (api.Diagnosis, error) {
		return cluster.SubmitAndWait(context.Background(), api.SubmitRequest{Trace: trace})
	})
	rep.Handoff["n2"] = n2.mgr.Metrics()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)

	n2.stop()
	n2.srv.Close()
	n2.mgr.Close()
	n1.mgr.Close()
	n1.pool.Close()
	n2.pool.Close()

	if *enforce {
		if rep.Join.WarmHitRate < 0.8 {
			log.Fatalf("handoffbench: join warm-hit rate %.2f below the 0.80 fence", rep.Join.WarmHitRate)
		}
		if rep.Kill.Total > 0 && rep.Kill.WarmHits < rep.Kill.Total {
			log.Fatalf("handoffbench: only %d/%d replicated digests answered warm after the kill", rep.Kill.WarmHits, rep.Kill.Total)
		}
	}
}

// darshanScenarios filters the scored matrix to the darshan modality,
// whose parser-text rendering accepts the metadata-comment variant trick.
func darshanScenarios() []scenario.Scenario {
	var out []scenario.Scenario
	for _, sc := range scenario.Matrix() {
		if sc.Modality == "darshan" {
			out = append(out, sc)
		}
	}
	if len(out) == 0 {
		log.Fatal("handoffbench: no darshan scenarios in the matrix")
	}
	return out
}
