// Command darshan-parser converts binary Darshan logs to the canonical text
// format (mirroring the upstream tool of the same name), and back.
//
// Usage:
//
//	darshan-parser <log.darshan>            # binary -> text on stdout
//	darshan-parser -encode <log.txt> <out>  # text -> binary
package main

import (
	"flag"
	"fmt"
	"os"

	"ioagent/internal/darshan"
)

func main() {
	encode := flag.Bool("encode", false, "convert text format back to binary")
	flag.Parse()
	args := flag.Args()

	if *encode {
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: darshan-parser -encode <log.txt> <out.darshan>")
			os.Exit(2)
		}
		in, err := os.Open(args[0])
		check(err)
		defer in.Close()
		log, err := darshan.ParseText(in)
		check(err)
		out, err := os.Create(args[1])
		check(err)
		defer out.Close()
		check(darshan.Encode(out, log))
		return
	}

	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: darshan-parser <log.darshan>")
		os.Exit(2)
	}
	in, err := os.Open(args[0])
	check(err)
	defer in.Close()
	log, err := darshan.Decode(in)
	check(err)
	check(darshan.WriteText(os.Stdout, log))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "darshan-parser:", err)
		os.Exit(1)
	}
}
