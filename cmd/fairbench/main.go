// Command fairbench measures what the per-tenant fair scheduler is for: a
// light interactive tenant staying responsive while a noisy tenant floods
// the same lane. It writes the numbers to a JSON file (BENCH_fair.json in
// CI).
//
// Three measured phases against live in-process pools:
//
//   - interactive (run twice, DRR then FIFO baseline): a noisy bronze
//     tenant dumps a large backlog, then a light gold tenant submits
//     paced single jobs — the interactive pattern. Reported per tenant:
//     queue age (submit→worker pickup) p50/p95/max. The headline number
//     is the light tenant's p95 improvement, FIFO over DRR.
//   - share: both tenants hold sustained backlogs and the realized
//     dequeue split is sampled the moment the light tenant's queue
//     drains. Under weighted DRR it must track the configured
//     gold:bronze weight ratio (8:1), not the 2:1 backlog ratio.
//   - admission: with -slo-admission semantics on, a gold tenant floods
//     a slow pool past its own 2s queue-age target; once the oldest
//     queued job is over target, probe submissions must refuse with the
//     retryable slo_exceeded error instead of joining a queue that
//     already broke its promise.
//
// Usage:
//
//	fairbench [-out BENCH_fair.json] [-workers 4] [-api-latency 10ms]
//	          [-noisy 160] [-light 20] [-light-every 100ms] [-enforce]
//
// With -enforce the run exits non-zero unless the light tenant's p95
// queue age improves at least 5x under DRR and the realized dequeue
// share lands within 10% of the configured weights — the CI fence for
// the fairness layer.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/ioagent"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
	"ioagent/internal/scenario"
)

const (
	lightTenant = "acme-interactive" // gold: weight 8, 2s queue-age target
	noisyTenant = "batchfarm"        // bronze: weight 1, 60s target
)

// ages is one tenant's measured queue-age distribution.
type ages struct {
	Jobs  int     `json:"jobs"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	MaxMs float64 `json:"max_ms"`
}

// interactivePhase is one flood-vs-paced-tenant run.
type interactivePhase struct {
	FIFO  bool `json:"fifo"`
	Light ages `json:"light"`
	Noisy ages `json:"noisy"`
}

// sharePhase is the sustained-contention dequeue split.
type sharePhase struct {
	LightDequeues int64   `json:"light_dequeues"`
	NoisyDequeues int64   `json:"noisy_dequeues"`
	LightShare    float64 `json:"light_share"`
	ExpectedShare float64 `json:"expected_share"`
}

// admissionPhase is the over-target refusal check.
type admissionPhase struct {
	FloodAdmitted  int   `json:"flood_admitted"`
	FloodRejected  int   `json:"flood_rejected"`
	Probes         int   `json:"probes"`
	ProbesRejected int   `json:"probes_rejected"`
	SchedRejects   int64 `json:"sched_rejects"`
}

type report struct {
	Workers      int              `json:"workers"`
	APILatencyMs float64          `json:"api_latency_ms"`
	LightClass   string           `json:"light_class"`
	NoisyClass   string           `json:"noisy_class"`
	DRR          interactivePhase `json:"drr"`
	FIFOBaseline interactivePhase `json:"fifo_baseline"`
	LightP95Gain float64          `json:"light_p95_gain"` // fifo p95 / drr p95
	Share        sharePhase       `json:"share"`
	Admission    admissionPhase   `json:"admission"`
}

func main() {
	out := flag.String("out", "BENCH_fair.json", "output JSON path")
	workers := flag.Int("workers", 4, "pool workers")
	apiLatency := flag.Duration("api-latency", 10*time.Millisecond, "simulated model API round trip (the per-job service time)")
	noisyN := flag.Int("noisy", 160, "noisy-tenant backlog per interactive run")
	lightN := flag.Int("light", 20, "paced light-tenant submissions per interactive run")
	lightEvery := flag.Duration("light-every", 100*time.Millisecond, "light-tenant submission pacing")
	enforce := flag.Bool("enforce", false, "exit non-zero below a 5x light-tenant p95 gain or a dequeue share off the weights by >10%")
	flag.Parse()

	logs := newLogSource()
	rep := report{
		Workers:      *workers,
		APILatencyMs: float64(*apiLatency) / float64(time.Millisecond),
		LightClass:   "gold",
		NoisyClass:   "bronze",
	}

	rep.DRR = runInteractive(logs, false, *workers, *apiLatency, *noisyN, *lightN, *lightEvery)
	rep.FIFOBaseline = runInteractive(logs, true, *workers, *apiLatency, *noisyN, *lightN, *lightEvery)
	if rep.DRR.Light.P95Ms > 0 {
		rep.LightP95Gain = rep.FIFOBaseline.Light.P95Ms / rep.DRR.Light.P95Ms
	}
	rep.Share = runShare(logs, *workers, *apiLatency)
	rep.Admission = runAdmission(logs)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)

	if *enforce {
		if rep.LightP95Gain < 5 {
			log.Fatalf("fairbench: light-tenant p95 gain %.1fx below the 5x fence (drr %.1fms, fifo %.1fms)",
				rep.LightP95Gain, rep.DRR.Light.P95Ms, rep.FIFOBaseline.Light.P95Ms)
		}
		if dev := rep.Share.LightShare/rep.Share.ExpectedShare - 1; dev < -0.1 || dev > 0.1 {
			log.Fatalf("fairbench: realized light share %.3f deviates %.0f%% from the configured %.3f (>10%% fence)",
				rep.Share.LightShare, dev*100, rep.Share.ExpectedShare)
		}
		if rep.Admission.ProbesRejected < rep.Admission.Probes {
			log.Fatalf("fairbench: only %d/%d over-target probes were refused", rep.Admission.ProbesRejected, rep.Admission.Probes)
		}
	}
}

// newPool builds a fairness-configured pool: gold light tenant, bronze
// noisy tenant, cache off so every job queues and is diagnosed fresh.
func newPool(fifo, admission bool, workers int, latency time.Duration, queue int) *fleet.Pool {
	return fleet.New(llm.WithLatency(llm.NewSim(), latency), fleet.Config{
		Workers:    workers,
		QueueDepth: queue,
		CacheSize:  -1,
		Agent:      ioagent.Options{Index: knowledge.BuildIndex()},
		TenantClasses: map[string]string{
			lightTenant: "gold",
			noisyTenant: "bronze",
		},
		SchedFIFO:    fifo,
		SLOAdmission: admission,
	})
}

// runInteractive floods the pool as the noisy tenant, then paces single
// light-tenant submissions through the same lane and measures every
// job's queue age (submit → worker pickup).
func runInteractive(logs *logSource, fifo bool, workers int, latency time.Duration, noisyN, lightN int, pace time.Duration) interactivePhase {
	pool := newPool(fifo, false, workers, latency, noisyN+lightN+16)
	defer pool.Close()

	jobs := make(map[string][]*fleet.Job, 2)
	for i := 0; i < noisyN; i++ {
		j, err := pool.SubmitWith(logs.next(), fleet.SubmitOpts{Tenant: noisyTenant})
		if err != nil {
			log.Fatalf("fairbench: noisy submit %d: %v", i, err)
		}
		jobs[noisyTenant] = append(jobs[noisyTenant], j)
	}
	for i := 0; i < lightN; i++ {
		time.Sleep(pace)
		j, err := pool.SubmitWith(logs.next(), fleet.SubmitOpts{Tenant: lightTenant})
		if err != nil {
			log.Fatalf("fairbench: light submit %d: %v", i, err)
		}
		jobs[lightTenant] = append(jobs[lightTenant], j)
	}

	ph := interactivePhase{FIFO: fifo}
	ph.Noisy = measure(jobs[noisyTenant])
	ph.Light = measure(jobs[lightTenant])
	return ph
}

// runShare keeps both tenants backlogged (2:1 in the noisy tenant's
// favor) and samples the realized dequeue split the instant the light
// tenant's queue drains — the window where DRR's weight ratio, not the
// backlog ratio, must decide who gets the workers.
func runShare(logs *logSource, workers int, latency time.Duration) sharePhase {
	const lightJobs, noisyJobs = 120, 240
	pool := newPool(false, false, workers, latency, lightJobs+noisyJobs+16)
	defer pool.Close()

	var all []*fleet.Job
	// Interleave the submissions so both tenants are active from the
	// first dequeue on.
	for i := 0; i < noisyJobs; i++ {
		j, err := pool.SubmitWith(logs.next(), fleet.SubmitOpts{Tenant: noisyTenant})
		if err != nil {
			log.Fatalf("fairbench: share noisy submit: %v", err)
		}
		all = append(all, j)
		if i < lightJobs {
			j, err := pool.SubmitWith(logs.next(), fleet.SubmitOpts{Tenant: lightTenant})
			if err != nil {
				log.Fatalf("fairbench: share light submit: %v", err)
			}
			all = append(all, j)
		}
	}

	var ph sharePhase
	st := pool.SchedStatus()
	gold, bronze := st.Classes["gold"].Weight, st.Classes["bronze"].Weight
	ph.ExpectedShare = float64(gold) / float64(gold+bronze)
	for {
		m := pool.Metrics().Sched
		lt := m.Tenants[lightTenant]
		if lt.Depth == 0 && lt.Dequeues >= lightJobs {
			ph.LightDequeues = lt.Dequeues
			ph.NoisyDequeues = m.Tenants[noisyTenant].Dequeues
			break
		}
		time.Sleep(time.Millisecond)
	}
	if total := ph.LightDequeues + ph.NoisyDequeues; total > 0 {
		ph.LightShare = float64(ph.LightDequeues) / float64(total)
	}
	for _, j := range all {
		<-j.Done()
	}
	return ph
}

// runAdmission floods a deliberately slow single-worker pool as a gold
// tenant until the oldest queued job is past gold's 2s target, then
// probes: every probe must refuse with the retryable slo_exceeded error.
func runAdmission(logs *logSource) admissionPhase {
	const flood, probes = 60, 5
	latency := 50 * time.Millisecond
	pool := newPool(false, true, 2, latency, flood+probes+16)
	defer pool.Close()

	var ph admissionPhase
	var all []*fleet.Job
	for i := 0; i < flood; i++ {
		j, err := pool.SubmitWith(logs.next(), fleet.SubmitOpts{Tenant: lightTenant})
		switch {
		case errors.Is(err, fleet.ErrSLOExceeded):
			// Projection already sees the backlog blowing the target —
			// admission cutting the flood off early is the feature.
			ph.FloodRejected++
		case err != nil:
			log.Fatalf("fairbench: admission flood %d: %v", i, err)
		default:
			ph.FloodAdmitted++
			all = append(all, j)
		}
	}

	// The flood is several seconds of backlog for two slow workers; by
	// 2.2s the queue head has been waiting past gold's 2s target.
	time.Sleep(2200 * time.Millisecond)
	for i := 0; i < probes; i++ {
		ph.Probes++
		j, err := pool.SubmitWith(logs.next(), fleet.SubmitOpts{Tenant: lightTenant})
		switch {
		case errors.Is(err, fleet.ErrSLOExceeded):
			ph.ProbesRejected++
		case err != nil:
			log.Fatalf("fairbench: admission probe %d: unexpected error %v", i, err)
		default:
			all = append(all, j)
		}
	}
	ph.SchedRejects = pool.Metrics().Sched.Rejects
	for _, j := range all {
		<-j.Done()
	}
	return ph
}

// measure waits every job out and summarizes its queue age — worker
// pickup minus submission, the time the scheduler made it wait.
func measure(jobs []*fleet.Job) ages {
	lats := make([]time.Duration, 0, len(jobs))
	for _, j := range jobs {
		if _, err := j.Wait(); err != nil {
			log.Fatalf("fairbench: job %s: %v", j.ID(), err)
		}
		info := j.Info()
		lats = append(lats, info.StartedAt.Sub(info.SubmittedAt))
	}
	sort.Slice(lats, func(i, k int) bool { return lats[i] < lats[k] })
	a := ages{Jobs: len(lats)}
	if n := len(lats); n > 0 {
		a.P50Ms = float64(lats[n/2]) / float64(time.Millisecond)
		a.P95Ms = float64(lats[n*95/100]) / float64(time.Millisecond)
		a.MaxMs = float64(lats[n-1]) / float64(time.Millisecond)
	}
	return a
}

// logSource hands out darshan logs with distinct content digests: each
// call rebuilds a scenario's log and stamps a unique job ID into the
// header, which the canonical content digest covers — so no two
// submissions coalesce and every job really queues.
type logSource struct {
	scenarios []scenario.Scenario
	n         int64
}

func newLogSource() *logSource {
	var out []scenario.Scenario
	for _, sc := range scenario.Matrix() {
		if sc.Modality == "darshan" {
			out = append(out, sc)
		}
	}
	if len(out) == 0 {
		log.Fatal("fairbench: no darshan scenarios in the matrix")
	}
	return &logSource{scenarios: out}
}

func (s *logSource) next() *darshan.Log {
	sc := s.scenarios[int(s.n)%len(s.scenarios)]
	_, l := sc.Build()
	s.n++
	l.Job.JobID = 900000 + s.n
	if l.Job.Metadata == nil {
		l.Job.Metadata = map[string]string{}
	}
	l.Job.Metadata["fair_variant"] = fmt.Sprint(s.n)
	return l
}
