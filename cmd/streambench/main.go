// Command streambench measures what the streaming ingest subsystem buys
// over buffered submission and writes the numbers to a JSON file
// (BENCH_stream.json in CI), so the fleet's perf trajectory has data
// points instead of adjectives.
//
// Two measurements, streamed vs buffered, over the same multi-megabyte
// darshan-parser text trace arriving in 64KB chunks through a simulated
// link:
//
//   - time-to-first-parse: how long until the first module data has been
//     decoded. The incremental parser starts on the first chunk; the
//     buffered path cannot start until the last.
//   - peak extra heap on the router path: concurrent submissions through
//     an in-process iofleet-router, sampled against the pre-submission
//     baseline. The digest-asserted stream path pipes bodies without
//     buffering or spooling; the buffered path holds every body.
//
// Usage:
//
//	streambench [-out BENCH_stream.json] [-files 800] [-chunk 65536]
//	            [-concurrent 4] [-link-mbps 400]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/ingest"
	"ioagent/internal/fleet/router"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

type measurement struct {
	TimeToFirstParseMs float64 `json:"time_to_first_parse_ms"`
	SubmitWallMs       float64 `json:"submit_wall_ms"`
	PeakExtraHeapBytes uint64  `json:"peak_extra_heap_bytes"`
}

type report struct {
	TraceBytes int64       `json:"trace_bytes"`
	ChunkBytes int         `json:"chunk_bytes"`
	Concurrent int         `json:"concurrent"`
	LinkMbps   float64     `json:"link_mbps"`
	Buffered   measurement `json:"buffered"`
	Streamed   measurement `json:"streamed"`
}

func main() {
	out := flag.String("out", "BENCH_stream.json", "output JSON path")
	files := flag.Int("files", 800, "files in the synthetic trace (sets its size)")
	chunk := flag.Int("chunk", 64<<10, "upload chunk size in bytes")
	concurrent := flag.Int("concurrent", 4, "concurrent submissions for the heap measurement")
	linkMbps := flag.Float64("link-mbps", 400, "simulated client uplink for time-to-first-parse")
	flag.Parse()

	body := buildTrace(*files)
	rep := report{
		TraceBytes: int64(len(body)), ChunkBytes: *chunk,
		Concurrent: *concurrent, LinkMbps: *linkMbps,
	}

	rep.Buffered.TimeToFirstParseMs = ttfpBuffered(body, *chunk, *linkMbps)
	rep.Streamed.TimeToFirstParseMs = ttfpStreamed(body, *chunk, *linkMbps)

	routerHeap(body, *chunk, *concurrent, &rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// buildTrace renders a deterministic multi-MB darshan-parser text body.
func buildTrace(files int) []byte {
	sim := iosim.New(iosim.Config{Seed: 424242, NProcs: 4, UsesMPI: true, Exe: "/apps/bench/stream.x"})
	for fi := 0; fi < files; fi++ {
		f := sim.OpenShared(fmt.Sprintf("/scratch/bench-%05d.dat", fi), iosim.POSIX, false, nil)
		for i := int64(0); i < 4; i++ {
			f.WriteAt(int(i)%4, i*4096, 4096)
		}
		f.Close()
	}
	text, err := darshan.TextString(sim.Finalize())
	if err != nil {
		log.Fatal(err)
	}
	return []byte(text)
}

// arrive delivers body chunk by chunk at the simulated link rate,
// calling deliver per chunk. Returns when the whole body has "arrived".
func arrive(body []byte, chunk int, mbps float64, deliver func([]byte)) {
	perChunk := time.Duration(float64(chunk) / (mbps * 1e6 / 8) * float64(time.Second))
	for off := 0; off < len(body); off += chunk {
		end := off + chunk
		if end > len(body) {
			end = len(body)
		}
		time.Sleep(perChunk)
		deliver(body[off:end])
	}
}

// ttfpBuffered: the pre-streaming shape — spool the whole arriving body,
// then parse. First parsed data exists only after the last chunk.
func ttfpBuffered(body []byte, chunk int, mbps float64) float64 {
	start := time.Now()
	var buf bytes.Buffer
	arrive(body, chunk, mbps, func(b []byte) { buf.Write(b) })
	if _, err := darshan.ParseText(bytes.NewReader(buf.Bytes())); err != nil {
		log.Fatal(err)
	}
	// The whole parse stands between the last byte and the first usable
	// module data; report the full span.
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// ttfpStreamed: the ingest parser eats each chunk as it arrives; first
// module data exists as soon as the first complete records do.
func ttfpStreamed(body []byte, chunk int, mbps float64) float64 {
	start := time.Now()
	p := ingest.NewParser(0)
	var first time.Duration
	arrive(body, chunk, mbps, func(b []byte) {
		if _, err := p.Write(b); err != nil {
			log.Fatal(err)
		}
		if first == 0 && p.Stats().Modules > 0 {
			first = time.Since(start)
		}
	})
	if _, _, err := p.Finish(); err != nil {
		log.Fatal(err)
	}
	return float64(first) / float64(time.Millisecond)
}

// routerHeap boots two in-process daemons behind a real router and
// measures peak heap growth during concurrent submissions: buffered
// bodies are held end-to-end; digest-asserted streams are piped.
func routerHeap(body []byte, chunk, concurrent int, rep *report) {
	index := knowledge.BuildIndex()
	var nodes []string
	for _, id := range []string{"n1", "n2"} {
		pool := fleet.New(llm.NewSim(), fleet.Config{Workers: 2, NodeID: id, Agent: ioagent.Options{Index: index}})
		defer pool.Close()
		srv := httptest.NewServer(server.NewMux(server.Config{Pool: pool, NodeID: id, MaxBody: 256 << 20}))
		defer srv.Close()
		nodes = append(nodes, srv.URL)
	}
	rt, err := router.New(router.Config{Members: nodes, MaxBody: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	run := func(submit func(c *client.Client, variant int)) (peak uint64, wall time.Duration) {
		c := client.New(front.URL)
		defer c.Close()
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)

		stop := make(chan struct{})
		var peakB uint64
		go func() {
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					var m runtime.MemStats
					runtime.ReadMemStats(&m)
					if m.HeapInuse > peakB {
						peakB = m.HeapInuse
					}
				}
			}
		}()

		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < concurrent; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				submit(c, i)
			}(i)
		}
		wg.Wait()
		wall = time.Since(start)
		close(stop)
		if peakB > base.HeapInuse {
			peak = peakB - base.HeapInuse
		}
		return peak, wall
	}

	// Buffered: classic POST /v1/jobs — the router slurps each body.
	peak, wall := run(func(c *client.Client, i int) {
		variant := append(bytes.Clone(body), []byte(fmt.Sprintf("# metadata: bench_variant = b%d\n", i))...)
		if _, err := c.Submit(context.Background(), api.SubmitRequest{Trace: variant}); err != nil {
			log.Fatalf("buffered submit: %v", err)
		}
	})
	rep.Buffered.PeakExtraHeapBytes = peak
	rep.Buffered.SubmitWallMs = float64(wall) / float64(time.Millisecond)

	// Streamed with the digest asserted: the router pipes, holding
	// nothing. (Variants share the digest's owner but differ in bytes;
	// assert per-variant digests so verification holds.)
	peakS, wallS := run(func(c *client.Client, i int) {
		variant := append(bytes.Clone(body), []byte(fmt.Sprintf("# metadata: bench_variant = s%d\n", i))...)
		vlog, err := darshan.ParseText(bytes.NewReader(variant))
		if err != nil {
			log.Fatal(err)
		}
		vdigest, err := darshan.ContentDigest(vlog)
		if err != nil {
			log.Fatal(err)
		}
		_, err = c.SubmitStream(context.Background(), &chunkReader{data: variant, chunk: chunk},
			client.StreamOpts{Digest: vdigest})
		if err != nil {
			log.Fatalf("streamed submit: %v", err)
		}
	})
	rep.Streamed.PeakExtraHeapBytes = peakS
	rep.Streamed.SubmitWallMs = float64(wallS) / float64(time.Millisecond)
}

type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	n = copy(p[:n], r.data)
	r.data = r.data[n:]
	return n, nil
}
