// Command ioeval reproduces the paper's Table IV: it runs Drishti, ION,
// IOAgent-gpt-4o, and IOAgent-llama-3.1-70B over the full TraceBench suite,
// ranks the outputs with the LLM judge (four permutations, all three
// anti-bias augmentations), and prints the normalized score table.
//
// Usage:
//
//	ioeval [-source Simple-Bench|IO500|Real-Applications] [-perms N] [-noaugment]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ioagent/internal/eval"
	"ioagent/internal/judge"
	"ioagent/internal/llm"
	"ioagent/internal/tracebench"
)

func main() {
	source := flag.String("source", "", "restrict to one TraceBench source")
	perms := flag.Int("perms", 4, "ranking permutations per sample")
	noAugment := flag.Bool("noaugment", false, "disable the judge's anti-bias augmentations (ablation)")
	parallel := flag.Int("parallel", 4, "concurrent traces")
	flag.Parse()

	client := llm.NewSim()
	runner := eval.NewRunner(client)
	runner.Parallelism = *parallel
	runner.Judge.Permutations = *perms
	if *noAugment {
		runner.Judge.Augment = judge.None()
	}

	traces := tracebench.Suite()
	if *source != "" {
		traces = tracebench.BySource(traces, *source)
		if len(traces) == 0 {
			fmt.Fprintf(os.Stderr, "ioeval: unknown source %q\n", *source)
			os.Exit(2)
		}
	}

	start := time.Now()
	res, err := runner.Run(traces)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioeval: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
	fmt.Printf("\n%d traces evaluated in %s; tool ordering by overall average: %v\n",
		len(traces), time.Since(start).Round(time.Millisecond), res.Ordering())
}
