// Command semcachebench measures what semantic result reuse and the
// cost-aware model-tier ladder buy over exact-match caching, and writes
// the numbers to a JSON file (BENCH_semcache.json in CI).
//
// The workload models a production trait the exact-match cache cannot
// exploit: the same application resubmits near-identical traces whose
// content digests differ (timestamps, job IDs, metadata) while the I/O
// profile — the thing being diagnosed — is unchanged. The bench takes a
// set of base traces from the labeled tracebench suite and derives
// several near-duplicate variants of each (the text rendering plus one
// extra metadata line: a new digest, the same profile).
//
// Two pools diagnose the identical submission sequence:
//
//   - baseline: exact-match cache only, every variant is a miss and runs
//     the full pipeline on the frontier model;
//   - semcache: similarity index + confidence gate + a cheap-first model
//     ladder (-tier-models equivalent), so variants are served from their
//     base's diagnosis and fresh work starts on the cheap rung.
//
// Reported per pool: wall time, p95 latency, LLM spend, $/diagnosis, and
// the fraction of submissions served without a frontier-model call.
//
// Usage:
//
//	semcachebench [-out BENCH_semcache.json] [-bases 8] [-variants 4]
//	              [-workers 4]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/ioagent"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
	"ioagent/internal/tracebench"
)

type poolReport struct {
	WallMs              float64 `json:"wall_ms"`
	LatencyP95Ms        float64 `json:"latency_p95_ms"`
	LLMCalls            int64   `json:"llm_calls"`
	CostUSD             float64 `json:"cost_usd"`
	CostPerDiagnosisUSD float64 `json:"cost_per_diagnosis_usd"`
	SimilarityHits      int64   `json:"similarity_hits"`
	GateRejects         int64   `json:"gate_rejects"`
	FrontierJobs        int64   `json:"frontier_jobs"`
	// ServedWithoutFrontier is the fraction of submissions that never
	// paid a frontier-model diagnosis: similarity hits plus fresh jobs
	// the cheap rung's self-check kept from escalating.
	ServedWithoutFrontier float64 `json:"served_without_frontier"`
}

type report struct {
	Bases           int        `json:"bases"`
	VariantsPerBase int        `json:"variants_per_base"`
	Submissions     int        `json:"submissions"`
	FrontierModel   string     `json:"frontier_model"`
	CheapModel      string     `json:"cheap_model"`
	Baseline        poolReport `json:"baseline"`
	SemCache        poolReport `json:"semcache"`
}

func main() {
	out := flag.String("out", "BENCH_semcache.json", "output JSON path")
	bases := flag.Int("bases", 8, "distinct base traces from the labeled suite")
	variants := flag.Int("variants", 4, "near-duplicate variants derived per base")
	workers := flag.Int("workers", 4, "pool workers")
	flag.Parse()

	suite := tracebench.Suite()
	if *bases > len(suite) {
		*bases = len(suite)
	}
	baseLogs := make([]*darshan.Log, 0, *bases)
	variantLogs := make([]*darshan.Log, 0, *bases**variants)
	for i := 0; i < *bases; i++ {
		b := suite[i].Log()
		baseLogs = append(baseLogs, b)
		for v := 0; v < *variants; v++ {
			variantLogs = append(variantLogs, nearDuplicate(b, fmt.Sprintf("%s-v%d", suite[i].Name, v)))
		}
	}

	index := knowledge.BuildIndex()
	rep := report{
		Bases: *bases, VariantsPerBase: *variants,
		Submissions:   len(baseLogs) + len(variantLogs),
		FrontierModel: llm.GPT4o, CheapModel: llm.GPT4oMini,
	}

	rep.Baseline = run(fleet.Config{
		Workers: *workers,
		Agent:   ioagent.Options{Index: index},
	}, baseLogs, variantLogs)

	rep.SemCache = run(fleet.Config{
		Workers:    *workers,
		Agent:      ioagent.Options{Index: index},
		SemCache:   true,
		TierModels: []string{llm.GPT4oMini, llm.GPT4o},
	}, baseLogs, variantLogs)

	if rep.SemCache.ServedWithoutFrontier < 0.5 {
		log.Printf("semcachebench: WARNING: only %.0f%% of submissions avoided the frontier model (target >= 50%%)",
			100*rep.SemCache.ServedWithoutFrontier)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// nearDuplicate derives a trace with a new content digest and an identical
// I/O profile: the text rendering plus one metadata line the profile
// ignores — the resubmitted-run shape the similarity cache exists for.
func nearDuplicate(l *darshan.Log, variant string) *darshan.Log {
	text, err := darshan.TextString(l)
	if err != nil {
		log.Fatal(err)
	}
	dup, err := darshan.ParseText(strings.NewReader(text + "# metadata: bench_variant = " + variant + "\n"))
	if err != nil {
		log.Fatal(err)
	}
	return dup
}

// run submits bases (waiting for all, so their diagnoses are cached and
// indexed) and then all variants, against a pool built from cfg.
func run(cfg fleet.Config, baseLogs, variantLogs []*darshan.Log) poolReport {
	pool := fleet.New(llm.NewSim(), cfg)
	defer pool.Close()

	start := time.Now()
	submitAll(pool, baseLogs)
	submitAll(pool, variantLogs)
	wall := time.Since(start)

	m := pool.Metrics()
	byModel := pool.StatsByModel()
	var calls int64
	var cost float64
	for _, st := range byModel {
		calls += int64(st.Calls)
		cost += st.CostUSD
	}
	submissions := int64(len(baseLogs) + len(variantLogs))
	frontier := int64(0)
	if len(cfg.TierModels) > 0 {
		frontier = m.Tiers[llm.GPT4o].Jobs
	} else {
		// The plain pool diagnoses every cache miss on the frontier model.
		frontier = m.CacheMisses
	}
	return poolReport{
		WallMs:                float64(wall) / float64(time.Millisecond),
		LatencyP95Ms:          float64(m.LatencyP95) / float64(time.Millisecond),
		LLMCalls:              calls,
		CostUSD:               cost,
		CostPerDiagnosisUSD:   cost / float64(submissions),
		SimilarityHits:        m.SemHits,
		GateRejects:           m.SemGateRejects,
		FrontierJobs:          frontier,
		ServedWithoutFrontier: float64(submissions-frontier) / float64(submissions),
	}
}

func submitAll(pool *fleet.Pool, logs []*darshan.Log) {
	jobs := make([]*fleet.Job, 0, len(logs))
	for _, l := range logs {
		j, err := pool.Submit(l)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if _, err := j.Wait(); err != nil {
			log.Fatal(err)
		}
	}
}
