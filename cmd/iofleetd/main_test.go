package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
)

// e2eTrace builds a deterministic small-write trace; distinct seeds give
// distinct digests.
func e2eTrace(seed int) *darshan.Log {
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*17 + 9, NProcs: 4, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/e2e/job%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/e2e-%03d.dat", seed), iosim.POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 8; i++ {
			f.WriteAt(rank, (int64(rank)*8+i)*4096, 4096)
		}
	}
	f.Close()
	return sim.Finalize()
}

func encodeTraceBytes(t *testing.T, log *darshan.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, log); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// daemon is one running iofleetd under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port

	mu   sync.Mutex
	logs []string
}

// startDaemon launches the binary and waits for its listening log line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{}
	d.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	})

	addrRe := regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.logs = append(d.logs, line)
			d.mu.Unlock()
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case ready <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-ready:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not start; logs:\n%s", strings.Join(d.snapshotLogs(), "\n"))
	}
	return d
}

func (d *daemon) snapshotLogs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.logs...)
}

// waitLog polls the captured stderr for a line matching re.
func (d *daemon) waitLog(t *testing.T, re *regexp.Regexp, timeout time.Duration) []string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, line := range d.snapshotLogs() {
			if m := re.FindStringSubmatch(line); m != nil {
				return m
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("log line %q never appeared; logs:\n%s", re, strings.Join(d.snapshotLogs(), "\n"))
	return nil
}

func (d *daemon) submit(t *testing.T, trace []byte) api.JobInfo {
	t.Helper()
	resp, err := http.Post(d.base+"/v1/jobs", "application/octet-stream", bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var info api.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitJobDone polls the job listing until the given digest reaches a
// terminal state.
func (d *daemon) waitJobDone(t *testing.T, digest string, timeout time.Duration) api.JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/jobs")
		if err == nil {
			var infos []api.JobInfo
			if json.NewDecoder(resp.Body).Decode(&infos) == nil {
				for _, info := range infos {
					if info.Digest == digest && info.Status.Terminal() {
						resp.Body.Close()
						return info
					}
				}
			}
			resp.Body.Close()
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("digest %.12s never finished; logs:\n%s", digest, strings.Join(d.snapshotLogs(), "\n"))
	return api.JobInfo{}
}

// diagnosis fetches the raw report text ("Accept: text/plain" selects the
// plain rendering over the default api.Diagnosis JSON document).
func (d *daemon) diagnosis(t *testing.T, id string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, d.base+"/v1/jobs/"+id+"/diagnosis", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnosis: %s: %s", resp.Status, body)
	}
	return string(body)
}

// sigkill terminates the daemon the hard way and reaps it.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

// TestDaemonKillRestartRecovery is the ISSUE acceptance scenario at the
// process level: a started-then-SIGKILLed iofleetd with -state-dir set
// resumes its queued jobs and serves previously cached digests from the
// snapshot on restart.
func TestDaemonKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "iofleetd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	stateDir := filepath.Join(t.TempDir(), "state")

	traceA, traceB := e2eTrace(1), e2eTrace(2)
	digestA, err := fleet.Digest(ioagent.Options{}, traceA)
	if err != nil {
		t.Fatal(err)
	}
	digestB, err := fleet.Digest(ioagent.Options{}, traceB)
	if err != nil {
		t.Fatal(err)
	}
	rawA, rawB := encodeTraceBytes(t, traceA), encodeTraceBytes(t, traceB)

	// Phase 1: diagnose trace A, wait for a checkpoint to persist it,
	// then SIGKILL.
	d1 := startDaemon(t, bin, "-state-dir", stateDir, "-workers", "1", "-snapshot-interval", "100ms")
	infoA := d1.submit(t, rawA)
	done := d1.waitJobDone(t, digestA, 60*time.Second)
	if done.Status != api.StatusDone {
		t.Fatalf("trace A finished as %s (%s)", done.Status, done.Error)
	}
	wantText := d1.diagnosis(t, infoA.ID)
	waitSnapshotEntries(t, stateDir, 1, 30*time.Second)
	d1.sigkill(t)

	// Phase 2: restart, submit trace B against a slow backend so it
	// cannot finish, and SIGKILL with the job in flight. The 202 response
	// means the submit record is already fsynced to the journal.
	d2 := startDaemon(t, bin, "-state-dir", stateDir, "-workers", "1", "-api-latency", "500ms")
	d2.waitLog(t, regexp.MustCompile(`recovered state .*1 cached diagnoses restored, 0 unfinished jobs resubmitted`), 10*time.Second)
	d2.submit(t, rawB)
	d2.sigkill(t)

	// Phase 3: restart again. Trace B must replay and finish; trace A
	// must be a cache hit served from the snapshot, byte-identical.
	d3 := startDaemon(t, bin, "-state-dir", stateDir, "-workers", "1", "-snapshot-interval", "100ms")
	m := d3.waitLog(t, regexp.MustCompile(`recovered state .*: (\d+) cached diagnoses restored, (\d+) unfinished jobs resubmitted`), 10*time.Second)
	if m[1] != "1" || m[2] != "1" {
		t.Fatalf("recovery = %s restored / %s resubmitted, want 1 / 1", m[1], m[2])
	}
	replayed := d3.waitJobDone(t, digestB, 60*time.Second)
	if replayed.Status != api.StatusDone {
		t.Fatalf("replayed trace B finished as %s (%s)", replayed.Status, replayed.Error)
	}
	hit := d3.submit(t, rawA)
	if !hit.CacheHit || hit.Status != api.StatusDone {
		t.Fatalf("trace A after restart = %+v, want an instant cache hit", hit)
	}
	if got := d3.diagnosis(t, hit.ID); got != wantText {
		t.Error("restored diagnosis differs from the pre-kill one")
	}
}

// waitSnapshotEntries polls the on-disk snapshot until it holds at least n
// entries.
func waitSnapshotEntries(t *testing.T, stateDir string, n int, timeout time.Duration) {
	t.Helper()
	path := filepath.Join(stateDir, "snapshot.json")
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil {
			var snap struct {
				Entries []json.RawMessage `json:"entries"`
			}
			if json.Unmarshal(data, &snap) == nil && len(snap.Entries) >= n {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("snapshot at %s never reached %d entries", path, n)
}
