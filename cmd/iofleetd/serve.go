package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/store"
	"ioagent/internal/ioagent"
)

// newMux builds the daemon's HTTP surface on the versioned wire contract
// in internal/fleet/api: every response shape and error code comes from
// that package, and the whole surface — including unmatched paths — sits
// behind the version-negotiation middleware. st may be nil (no
// -state-dir); draining gates POST /v1/jobs: once set, new submissions
// are refused with api.CodeDraining and the refusal is journaled, so work
// a client believes accepted is never silently dropped by the exiting
// process. maxBody bounds trace upload size (-max-body).
func newMux(pool *fleet.Pool, st *store.Store, draining *atomic.Bool, maxBody int64) http.Handler {
	mux := http.NewServeMux()
	handle := mux.HandleFunc

	handle("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		reject := func(e *api.Error) {
			if st != nil {
				if jerr := st.Reject(e.Message + " (from " + r.RemoteAddr + ")"); jerr != nil {
					log.Printf("iofleetd: journal reject: %v", jerr)
				}
			}
			writeError(w, e)
		}
		if draining.Load() {
			reject(api.Errorf(api.CodeDraining, "daemon is draining; resubmit to the replacement instance"))
			return
		}
		lane, apiErr := parseLane(r)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		trace, apiErr := decodeTrace(w, r, maxBody)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		job, err := pool.SubmitWith(trace, fleet.SubmitOpts{Lane: fleet.Lane(lane)})
		switch {
		case errors.Is(err, fleet.ErrClosed):
			reject(api.Errorf(api.CodeDraining, "daemon is shutting down; resubmit to the replacement instance"))
			return
		case err != nil:
			internalError(w, "submit", err)
			return
		}
		writeJSON(w, http.StatusAccepted, toAPIJob(job.Info()))
	})
	handle("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := pool.Jobs()
		infos := make([]api.JobInfo, len(jobs))
		for i, j := range jobs {
			infos[i] = toAPIJob(j.Info())
		}
		writeJSON(w, http.StatusOK, infos)
	})
	handle("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			writeError(w, api.Errorf(api.CodeJobNotFound, "unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, toAPIJob(job.Info()))
	})
	handle("GET /v1/jobs/{id}/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			writeError(w, api.Errorf(api.CodeJobNotFound, "unknown job %q", r.PathValue("id")))
			return
		}
		select {
		case <-job.Done():
		default:
			writeError(w, api.Errorf(api.CodeJobNotDone, "job %s is %s; poll it and retry", job.ID(), job.Status()))
			return
		}
		res, err := job.Wait()
		if err != nil {
			// The pipeline's error chain is server-side detail; the wire
			// carries only the stable code.
			log.Printf("iofleetd: diagnosis %s: %v", job.ID(), err)
			writeError(w, api.Errorf(api.CodeDiagnosisFailed, "job %s failed permanently", job.ID()))
			return
		}
		if wantsText(r) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, res.Text)
			return
		}
		info := job.Info()
		writeJSON(w, http.StatusOK, api.Diagnosis{
			JobID:    info.ID,
			Digest:   info.Digest,
			Lane:     api.Lane(info.Lane),
			CacheHit: info.CacheHit,
			Text:     res.Text,
		})
	})
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m := toAPIMetrics(pool.Metrics(), pool.Agent().StatsByModel())
		if wantsText(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writePrometheus(w, m)
			return
		}
		writeJSON(w, http.StatusOK, m)
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Catch-all: unmatched paths get the api.Error envelope instead of
	// the mux's plain-text 404, so "every non-2xx response is an
	// envelope" holds across the whole surface. (Method mismatches on
	// registered patterns still get the mux's bare 405; the middleware
	// below stamps the version header on those too.)
	handle("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, api.Errorf(api.CodeNotFound, "unknown endpoint %s", r.URL.Path))
	})
	return withAPIVersion(mux.ServeHTTP)
}

// withAPIVersion advertises the server's protocol version on every
// response and refuses requests from an incompatible protocol major.
func withAPIVersion(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Current.String())
		if hdr := r.Header.Get(api.VersionHeader); hdr != "" {
			v, err := api.ParseVersion(hdr)
			if err != nil {
				writeError(w, api.Errorf(api.CodeBadRequest, "malformed %s header %q", api.VersionHeader, hdr))
				return
			}
			if !v.CompatibleWith(api.Current) {
				writeError(w, api.Errorf(api.CodeUnsupportedVersion,
					"client speaks api %s, this server speaks %s", v, api.Current))
				return
			}
		}
		h(w, r)
	}
}

// parseLane reads the "lane" query parameter (default interactive).
func parseLane(r *http.Request) (api.Lane, *api.Error) {
	lane := api.Lane(r.URL.Query().Get("lane")).WithDefault()
	if !lane.Valid() {
		return "", api.Errorf(api.CodeBadRequest, "unknown lane %q (want %s or %s)",
			r.URL.Query().Get("lane"), api.LaneInteractive, api.LaneBatch)
	}
	return lane, nil
}

// wantsText reports whether the client asked for a plain-text rendering
// (Accept: text/plain) instead of the default JSON document. A
// `text/plain;q=0` range explicitly excludes it per RFC 9110 and keeps
// the JSON default.
func wantsText(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaRange, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaRange) != "text/plain" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok &&
				strings.TrimSpace(k) == "q" && strings.TrimSpace(v) == "0" {
				return false
			}
		}
		return true
	}
	return false
}

// decodeTrace reads the request body as a binary Darshan log, falling
// back to darshan-parser text. Bodies over maxBody are refused with
// api.CodeTraceTooLarge naming the configured limit.
func decodeTrace(w http.ResponseWriter, r *http.Request, maxBody int64) (*darshan.Log, *api.Error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, api.Errorf(api.CodeTraceTooLarge,
				"trace body exceeds the %d-byte limit (server -max-body)", maxBody)
		}
		log.Printf("iofleetd: read submit body from %s: %v", r.RemoteAddr, err)
		return nil, api.Errorf(api.CodeBadRequest, "read body: request aborted")
	}
	trace, err := darshan.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		var terr error
		trace, terr = darshan.ParseText(bytes.NewReader(buf.Bytes()))
		if terr != nil {
			// Both decoders' detail stays server-side, where the operator
			// debugging a client's bad_trace loop can see it.
			log.Printf("iofleetd: undecodable trace from %s: binary: %v; text: %v", r.RemoteAddr, err, terr)
			return nil, api.Errorf(api.CodeBadTrace, "body is neither a binary Darshan log nor darshan-parser text")
		}
	}
	// An empty or header-only body parses as a log with no modules; reject
	// it here rather than queueing a job doomed to fail.
	if len(trace.Modules) == 0 {
		return nil, api.Errorf(api.CodeBadTrace, "trace contains no module data")
	}
	return trace, nil
}

// toAPIJob maps the pool's job snapshot onto the wire shape. The pool's
// free-text error (pipeline internals) never crosses the wire: failed
// jobs carry the stable diagnosis_failed code instead, and the detail is
// logged where the job fails.
func toAPIJob(info fleet.JobInfo) api.JobInfo {
	out := api.JobInfo{
		ID:          info.ID,
		Digest:      info.Digest,
		Status:      api.Status(info.Status),
		Lane:        api.Lane(info.Lane),
		CacheHit:    info.CacheHit,
		Attempts:    info.Attempts,
		SubmittedAt: info.SubmittedAt,
		StartedAt:   info.StartedAt,
		FinishedAt:  info.FinishedAt,
	}
	if info.Status == fleet.StatusFailed {
		out.Error = string(api.CodeDiagnosisFailed)
	}
	return out
}

// toAPIMetrics maps the pool snapshot plus per-model agent stats onto the
// wire metrics document.
func toAPIMetrics(s fleet.Snapshot, byModel map[string]ioagent.ModelStats) api.Metrics {
	m := api.Metrics{
		Workers:           s.Workers,
		Submitted:         s.Submitted,
		Queued:            s.Queued,
		QueuedInteractive: s.QueuedInteractive,
		QueuedBatch:       s.QueuedBatch,
		Running:           s.Running,
		Done:              s.Done,
		Failed:            s.Failed,
		CacheHits:         s.CacheHits,
		Coalesced:         s.Coalesced,
		CacheMisses:       s.CacheMisses,
		HitRate:           s.HitRate,
		CacheLen:          s.CacheLen,
		Retries:           s.Retries,
		LatencyP50:        s.LatencyP50,
		LatencyP95:        s.LatencyP95,
	}
	if len(byModel) > 0 {
		m.Models = make(map[string]api.ModelMetrics, len(byModel))
		for model, st := range byModel {
			m.Models[model] = api.ModelMetrics{
				Calls:            st.Calls,
				PromptTokens:     st.Usage.PromptTokens,
				CompletionTokens: st.Usage.CompletionTokens,
				CostUSD:          st.CostUSD,
			}
		}
	}
	return m
}

// writePrometheus renders the metrics document in Prometheus text
// exposition format (version 0.0.4), served from GET /metrics under
// "Accept: text/plain" content negotiation.
func writePrometheus(w io.Writer, m api.Metrics) {
	metric := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	metric("fleet_workers", "gauge", "Number of concurrent diagnosis workers.")
	fmt.Fprintf(w, "fleet_workers %d\n", m.Workers)
	metric("fleet_jobs_submitted_total", "counter", "Jobs accepted since daemon start.")
	fmt.Fprintf(w, "fleet_jobs_submitted_total %d\n", m.Submitted)
	metric("fleet_jobs_queued", "gauge", "Jobs waiting for a worker, by priority lane.")
	fmt.Fprintf(w, "fleet_jobs_queued{lane=%q} %d\n", api.LaneInteractive, m.QueuedInteractive)
	fmt.Fprintf(w, "fleet_jobs_queued{lane=%q} %d\n", api.LaneBatch, m.QueuedBatch)
	metric("fleet_jobs_running", "gauge", "Jobs currently occupying a worker.")
	fmt.Fprintf(w, "fleet_jobs_running %d\n", m.Running)
	metric("fleet_jobs_done_total", "counter", "Jobs finished successfully (cache hits included).")
	fmt.Fprintf(w, "fleet_jobs_done_total %d\n", m.Done)
	metric("fleet_jobs_failed_total", "counter", "Jobs failed permanently.")
	fmt.Fprintf(w, "fleet_jobs_failed_total %d\n", m.Failed)
	metric("fleet_cache_hits_total", "counter", "Submissions answered instantly from the result cache.")
	fmt.Fprintf(w, "fleet_cache_hits_total %d\n", m.CacheHits)
	metric("fleet_cache_coalesced_total", "counter", "Submissions coalesced onto an identical in-flight job.")
	fmt.Fprintf(w, "fleet_cache_coalesced_total %d\n", m.Coalesced)
	metric("fleet_cache_misses_total", "counter", "Submissions that ran the full pipeline.")
	fmt.Fprintf(w, "fleet_cache_misses_total %d\n", m.CacheMisses)
	metric("fleet_cache_entries", "gauge", "Resident result-cache entries.")
	fmt.Fprintf(w, "fleet_cache_entries %d\n", m.CacheLen)
	metric("fleet_retries_total", "counter", "Extra diagnosis attempts beyond each job's first.")
	fmt.Fprintf(w, "fleet_retries_total %d\n", m.Retries)
	// Two plain gauges rather than one series with a `quantile` label:
	// that label is reserved for TYPE summary, and these are point-in-time
	// estimates over a sliding sample, not a true summary.
	metric("fleet_latency_p50_seconds", "gauge", "Median submit-to-completion latency over recent successful jobs.")
	fmt.Fprintf(w, "fleet_latency_p50_seconds %s\n", f64(m.LatencyP50.Seconds()))
	metric("fleet_latency_p95_seconds", "gauge", "95th-percentile submit-to-completion latency over recent successful jobs.")
	fmt.Fprintf(w, "fleet_latency_p95_seconds %s\n", f64(m.LatencyP95.Seconds()))

	models := make([]string, 0, len(m.Models))
	for model := range m.Models {
		models = append(models, model)
	}
	sort.Strings(models)
	metric("fleet_model_calls_total", "counter", "LLM calls per model.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_calls_total{model=%q} %d\n", model, m.Models[model].Calls)
	}
	metric("fleet_model_tokens_total", "counter", "Tokens consumed per model and kind.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_tokens_total{model=%q,kind=\"prompt\"} %d\n", model, m.Models[model].PromptTokens)
		fmt.Fprintf(w, "fleet_model_tokens_total{model=%q,kind=\"completion\"} %d\n", model, m.Models[model].CompletionTokens)
	}
	metric("fleet_model_cost_usd_total", "counter", "Simulated API spend per model in US dollars.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_cost_usd_total{model=%q} %s\n", model, f64(m.Models[model].CostUSD))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError serves the wire error envelope on its canonical HTTP status.
func writeError(w http.ResponseWriter, e *api.Error) {
	writeJSON(w, e.Code.HTTPStatus(), e)
}

// internalError logs the real failure server-side and serves an opaque
// api.CodeInternal envelope: internal error chains (which can embed
// filesystem paths and addresses) never reach the wire.
func internalError(w http.ResponseWriter, op string, err error) {
	log.Printf("iofleetd: %s: %v", op, err)
	writeError(w, api.Errorf(api.CodeInternal, "internal error; see server log"))
}
