// Command iofleetd serves the fleet batch-diagnosis pipeline over HTTP: a
// long-lived daemon that accepts Darshan logs, shards them across a pool of
// concurrent IOAgent workers, caches diagnoses by trace content, and exposes
// operational metrics. With -state-dir set, the cache and the job queue are
// durable: a restarted daemon replays unfinished jobs from a write-ahead
// journal and serves previously diagnosed traces from a disk snapshot.
//
// Usage:
//
//	iofleetd [-addr :8080] [-workers 4] [-cache-size 1024] [-cache-ttl 1h]
//	         [-retries 3] [-model NAME] [-cheap-model NAME] [-api-latency 0]
//	         [-state-dir DIR] [-snapshot-interval 30s] [-fsync always|batch|off]
//
// Endpoints:
//
//	POST /v1/jobs               submit a trace (binary or darshan-parser
//	                            text body); responds 202 with the job record,
//	                            or 503 once the daemon is draining
//	GET  /v1/jobs               list all jobs
//	GET  /v1/jobs/{id}          poll one job's status
//	GET  /v1/jobs/{id}/diagnosis fetch the finished report as text
//	GET  /metrics               pool health snapshot (JSON)
//	GET  /healthz               liveness probe
//
// -api-latency adds a simulated network round trip to every model call,
// which is how a deployment against a remote LLM API behaves; it makes the
// worker-scaling effect visible on a local demo.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/store"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent diagnosis workers")
	queueDepth := flag.Int("queue", 0, "max queued jobs before submits block (0 = 8*workers)")
	cacheSize := flag.Int("cache-size", 1024, "result cache entries (negative disables)")
	cacheTTL := flag.Duration("cache-ttl", time.Hour, "result cache entry lifetime")
	retries := flag.Int("retries", 3, "max diagnosis attempts per job")
	model := flag.String("model", llm.GPT4o, "diagnosis model")
	cheap := flag.String("cheap-model", llm.GPT4oMini, "self-reflection filter model")
	apiLatency := flag.Duration("api-latency", 0, "simulated model API round-trip latency")
	stateDir := flag.String("state-dir", "", "directory for the job journal and cache snapshot (empty = in-memory only)")
	snapInterval := flag.Duration("snapshot-interval", 30*time.Second, "cache snapshot + journal compaction cadence (with -state-dir)")
	fsync := flag.String("fsync", "always", "journal durability: always (fsync per record), batch (fsync at checkpoints), off")
	flag.Parse()

	cfg := fleet.Config{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		CacheSize:   *cacheSize,
		CacheTTL:    *cacheTTL,
		MaxAttempts: *retries,
		Agent:       ioagent.Options{Model: *model, CheapModel: *cheap},
	}

	var st *store.Store
	if *stateDir != "" {
		mode := store.FsyncMode(*fsync)
		switch mode {
		case store.FsyncAlways, store.FsyncBatch, store.FsyncOff:
		default:
			log.Fatalf("iofleetd: -fsync must be always, batch, or off (got %q)", *fsync)
		}
		var err error
		st, err = store.Open(*stateDir, store.Options{Fsync: mode})
		if err != nil {
			log.Fatal(err)
		}
		cfg.OnJobEvent = st.OnJobEvent
		cfg.OnCacheInsert = st.CacheChanged
		cfg.OnCacheEvict = st.CacheChanged
	}

	pool := fleet.New(llm.WithLatency(llm.NewSim(), *apiLatency), cfg)

	if st != nil {
		restored, resubmitted, err := st.Replay(pool)
		if err != nil {
			log.Fatalf("iofleetd: replay: %v", err)
		}
		log.Printf("iofleetd: recovered state from %s: %d cached diagnoses restored, %d unfinished jobs resubmitted",
			st.Dir(), restored, resubmitted)
	}

	// draining flips when SIGTERM/SIGINT arrives: new submissions are
	// refused (and the refusal journaled) instead of being accepted into a
	// pool that is about to stop.
	var draining atomic.Bool
	mux := newMux(pool, st, &draining)
	// Listen explicitly (rather than ListenAndServe) so ":0" resolves to a
	// real port in the startup log — the e2e recovery test depends on it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}

	// Periodic checkpoints: snapshot the cache when it changed, compact
	// the journal. Stopped on drain; the final checkpoint below covers the
	// tail.
	stopCheckpoints := make(chan struct{})
	if st != nil {
		go func() {
			tick := time.NewTicker(*snapInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := st.Checkpoint(pool); err != nil {
						log.Printf("iofleetd: checkpoint: %v", err)
					}
				case <-stopCheckpoints:
					return
				}
			}
		}()
	}

	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		draining.Store(true)
		log.Print("iofleetd: draining pool and shutting down")
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Printf("iofleetd: shutdown: %v", err)
		}
		close(drained)
	}()
	log.Printf("iofleetd: listening on %s (%d workers, model %s)", ln.Addr(), *workers, *model)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained // let in-flight responses finish before tearing the pool down
	pool.Close()
	if st != nil {
		close(stopCheckpoints)
		// The pool has drained: every journaled job is covered, so this
		// snapshots the final cache and compacts the journal to (at most)
		// jobs that failed permanently mid-drain — normally to empty.
		if err := st.FinalCheckpoint(pool); err != nil {
			log.Printf("iofleetd: final checkpoint: %v", err)
		}
		if err := st.Close(); err != nil {
			log.Printf("iofleetd: close store: %v", err)
		}
		log.Printf("iofleetd: state persisted to %s", st.Dir())
	}
}

// newMux builds the daemon's HTTP surface. st may be nil (no -state-dir);
// draining gates POST /v1/jobs: once set, new submissions are refused with
// 503 and the refusal is journaled, so work a client believes accepted is
// never silently dropped by the exiting process.
func newMux(pool *fleet.Pool, st *store.Store, draining *atomic.Bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		reject := func(err error) {
			if st != nil {
				if jerr := st.Reject(err.Error() + " (from " + r.RemoteAddr + ")"); jerr != nil {
					log.Printf("iofleetd: journal reject: %v", jerr)
				}
			}
			httpError(w, http.StatusServiceUnavailable, err)
		}
		if draining.Load() {
			reject(fmt.Errorf("daemon is draining; resubmit to the replacement instance"))
			return
		}
		trace, err := decodeTrace(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		job, err := pool.Submit(trace)
		if err != nil {
			reject(err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Info())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := pool.Jobs()
		infos := make([]fleet.JobInfo, len(jobs))
		for i, j := range jobs {
			infos[i] = j.Info()
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job.Info())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		select {
		case <-job.Done():
		default:
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s", job.ID(), job.Status()))
			return
		}
		res, err := job.Wait()
		if err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, res.Text)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, pool.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// decodeTrace reads the request body as a binary Darshan log, falling back
// to darshan-parser text.
func decodeTrace(r *http.Request) (*darshan.Log, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, 64<<20)); err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	trace, err := darshan.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		trace, err = darshan.ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("body is neither a binary Darshan log nor parser text: %w", err)
		}
	}
	// An empty or header-only body parses as a log with no modules; reject
	// it here with a 400 rather than queueing a job doomed to fail.
	if len(trace.Modules) == 0 {
		return nil, fmt.Errorf("trace contains no module data")
	}
	return trace, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
