// Command iofleetd serves the fleet batch-diagnosis pipeline over HTTP: a
// long-lived daemon that accepts Darshan logs, shards them across a pool of
// concurrent IOAgent workers, caches diagnoses by trace content, and exposes
// operational metrics.
//
// Usage:
//
//	iofleetd [-addr :8080] [-workers 4] [-cache-size 1024] [-cache-ttl 1h]
//	         [-retries 3] [-model NAME] [-cheap-model NAME] [-api-latency 0]
//
// Endpoints:
//
//	POST /v1/jobs               submit a trace (binary or darshan-parser
//	                            text body); responds 202 with the job record
//	GET  /v1/jobs               list all jobs
//	GET  /v1/jobs/{id}          poll one job's status
//	GET  /v1/jobs/{id}/diagnosis fetch the finished report as text
//	GET  /metrics               pool health snapshot (JSON)
//	GET  /healthz               liveness probe
//
// -api-latency adds a simulated network round trip to every model call,
// which is how a deployment against a remote LLM API behaves; it makes the
// worker-scaling effect visible on a local demo.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent diagnosis workers")
	queueDepth := flag.Int("queue", 0, "max queued jobs before submits block (0 = 8*workers)")
	cacheSize := flag.Int("cache-size", 1024, "result cache entries (negative disables)")
	cacheTTL := flag.Duration("cache-ttl", time.Hour, "result cache entry lifetime")
	retries := flag.Int("retries", 3, "max diagnosis attempts per job")
	model := flag.String("model", llm.GPT4o, "diagnosis model")
	cheap := flag.String("cheap-model", llm.GPT4oMini, "self-reflection filter model")
	apiLatency := flag.Duration("api-latency", 0, "simulated model API round-trip latency")
	flag.Parse()

	pool := fleet.New(llm.WithLatency(llm.NewSim(), *apiLatency), fleet.Config{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		CacheSize:   *cacheSize,
		CacheTTL:    *cacheTTL,
		MaxAttempts: *retries,
		Agent:       ioagent.Options{Model: *model, CheapModel: *cheap},
	})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		trace, err := decodeTrace(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		job, err := pool.Submit(trace)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Info())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := pool.Jobs()
		infos := make([]fleet.JobInfo, len(jobs))
		for i, j := range jobs {
			infos[i] = j.Info()
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job.Info())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		select {
		case <-job.Done():
		default:
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s", job.ID(), job.Status()))
			return
		}
		res, err := job.Wait()
		if err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, res.Text)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, pool.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	srv := &http.Server{Addr: *addr, Handler: mux}
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("iofleetd: draining pool and shutting down")
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Printf("iofleetd: shutdown: %v", err)
		}
		close(drained)
	}()
	log.Printf("iofleetd: listening on %s (%d workers, model %s)", *addr, *workers, *model)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained // let in-flight responses finish before tearing the pool down
	pool.Close()
}

// decodeTrace reads the request body as a binary Darshan log, falling back
// to darshan-parser text.
func decodeTrace(r *http.Request) (*darshan.Log, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, 64<<20)); err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	trace, err := darshan.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		trace, err = darshan.ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("body is neither a binary Darshan log nor parser text: %w", err)
		}
	}
	// An empty or header-only body parses as a log with no modules; reject
	// it here with a 400 rather than queueing a job doomed to fail.
	if len(trace.Modules) == 0 {
		return nil, fmt.Errorf("trace contains no module data")
	}
	return trace, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
