// Command iofleetd serves the fleet batch-diagnosis pipeline over HTTP: a
// long-lived daemon that accepts Darshan logs, shards them across a pool of
// concurrent IOAgent workers, caches diagnoses by trace content, and exposes
// operational metrics. The wire contract — request/response shapes, error
// codes, priority lanes, version negotiation — is the versioned API in
// internal/fleet/api; internal/fleet/client is the matching Go SDK. With
// -state-dir set, the cache and the job queue are durable: a restarted
// daemon replays unfinished jobs (on their original priority lane) from a
// write-ahead journal and serves previously diagnosed traces from a disk
// snapshot.
//
// In a multi-node fleet each daemon runs with -node-id: job IDs gain the
// node prefix ("n1-job-000042"), every response carries X-Fleet-Node, and
// the metrics document advertises the id — which is how iofleet-router
// (and the SDK's cluster mode) route job lookups back to the node that
// accepted them. The HTTP surface itself lives in internal/fleet/server,
// shared with the router.
//
// Usage:
//
//	iofleetd [-addr :8080] [-workers 4] [-cache-size 1024] [-cache-ttl 1h]
//	         [-retries 3] [-model NAME] [-cheap-model NAME] [-api-latency 0]
//	         [-max-body 67108864] [-batch-share 4] [-node-id NAME]
//	         [-breaker 8] [-breaker-cooldown 5s] [-tenant-max-inflight 0]
//	         [-tenant-weights T=W,...] [-slo-classes T=CLASS,...]
//	         [-slo-admission] [-sched-fifo]
//	         [-upload-ttl 1h] [-max-uploads 64]
//	         [-semcache] [-sim-threshold 0.85] [-gate-model NAME]
//	         [-tier-models M1,M2,...] [-tier-threshold 0.6] [-tier-budget 0]
//	         [-state-dir DIR] [-snapshot-interval 30s] [-fsync always|batch|off]
//	         [-knowledge] [-knowledge-members N1,N2,...] [-knowledge-replicas 2]
//	         [-knowledge-state DIR] [-ann] [-rerank-model NAME]
//	         [-advertise URL] [-peers URL,URL...] [-roster-interval 2s]
//	         [-replicate 0]
//
// -semcache turns on semantic result reuse: each diagnosed trace is
// indexed by a feature vector of its I/O profile, and a later submission
// whose nearest neighbor scores at least -sim-threshold may be served the
// neighbor's cached diagnosis — if a confidence gate (label agreement plus
// an LLM judge on -gate-model) approves. Reused responses carry
// similarity_hit, source_digest, and the gate confidence. With -state-dir
// the similarity index persists beside the cache snapshot.
//
// -tier-models enables cost-aware scheduling for fresh diagnoses: rungs
// are tried cheapest-first and a result only escalates to the next model
// when its self-check score falls below -tier-threshold. A non-zero
// -tier-budget (US dollars of simulated spend) pins work to the cheapest
// rung once total LLM spend crosses it.
//
// -knowledge turns the built-in RAG corpus into a served subsystem: the
// /v1/knowledge endpoints accept staged document upserts and promote them
// atomically to a new corpus epoch (in-flight retrievals finish on the
// epoch they started with). With -knowledge-members the corpus ring-shards
// across the named nodes — this daemon indexes only the documents it owns
// plus -knowledge-replicas-1 successor copies, while keeping the full
// corpus view for citation lookups. -ann switches retrieval to the HNSW
// index; -rerank-model inserts a cheap-model rerank between retrieval and
// reflection. Epochs persist to -knowledge-state (default -state-dir) via
// a write-ahead log and survive kill -9.
//
// Endpoints (all speak api.Version 1.x, advertised and negotiated via the
// X-Fleet-Api-Version header; errors are api.Error JSON envelopes):
//
//	POST /v1/jobs[?lane=interactive|batch]  submit a trace (binary or
//	                            darshan-parser text body); responds 202 with
//	                            the job record. lane defaults to interactive;
//	                            batch traffic yields to interactive but keeps
//	                            1/-batch-share of worker slots
//	POST /v1/jobs/stream        submit a trace as a stream (chunked transfer
//	                            encoding): text renderings are pre-parsed
//	                            incrementally as chunks arrive; an asserted
//	                            X-Fleet-Digest (header or trailer) is
//	                            verified against the parsed bytes
//	POST /v1/uploads            open a resumable upload session (201)
//	PATCH /v1/uploads/{id}      append a chunk at the Upload-Offset header's
//	                            offset; each chunk feeds the incremental
//	                            parser immediately
//	GET  /v1/uploads/{id}       session status (offset = resume point)
//	POST /v1/uploads/{id}/complete  finalize the session into a job (202)
//	DELETE /v1/uploads/{id}     abort the session
//	GET  /v1/jobs               list all jobs
//	GET  /v1/jobs/{id}          poll one job's status
//	GET  /v1/jobs/{id}/diagnosis finished report (JSON document; raw text
//	                            with "Accept: text/plain")
//	POST /v1/knowledge/docs     stage corpus document upserts/removals
//	                            (invisible until the next swap)
//	POST /v1/knowledge/swap     atomically promote staged changes to a new
//	                            corpus epoch (409 nothing_staged when empty)
//	GET  /v1/knowledge          knowledge-plane status (epoch, shard sizes,
//	                            query and rerank counters)
//	POST /v1/knowledge/search   retrieval probe against the serving corpus
//	GET  /metrics               pool health (JSON; Prometheus text exposition
//	                            with "Accept: text/plain")
//	GET  /healthz               liveness probe
//
// With -state-dir, open upload sessions survive a restart: the journal
// records each open, the accepted bytes spool under <state-dir>/uploads/,
// and a rebooted daemon re-feeds the spool so clients resume at the same
// offset. -tenant-max-inflight caps any one tenant's unfinished jobs;
// beyond it submissions refuse with the retryable quota_exceeded code
// (HTTP 429 + Retry-After).
//
// -advertise turns the daemon into an elastic-fleet member: it announces
// the given base URL (or, with "auto", the resolved -addr — handy with
// an ephemeral port) to its -peers every -roster-interval, learns the
// full membership by push-pull gossip, and serves the roster protocol
// (GET/POST /v1/roster). On every ring change the daemon pushes the
// cached diagnoses whose ownership moved to their new owner (similarity
// vectors ride along), so a node that joins mid-soak answers
// already-diagnosed traces warm instead of recomputing them. -replicate N
// additionally keeps every fresh diagnosis warm on N ring members (the
// owner plus N-1 successors), so router failover after a crash serves a
// cached answer. Members that stop gossiping expire from the roster after
// 4 roster intervals. Routers follow the live roster with -roster-refresh.
//
// Per-tenant fairness: each priority lane drains by weighted deficit
// round robin, so one tenant's flood cannot starve another's interactive
// traffic. -tenant-weights pins explicit dequeue weights
// ("acme=8,guest=1"); -slo-classes assigns tenants to the built-in
// gold/silver/bronze SLO ladder ("acme=gold,batchfarm=bronze"), which
// sets both a weight and a queue-age target. -slo-admission enforces the
// target at the door: submissions whose projected queue age exceeds the
// tenant's class target refuse with the retryable slo_exceeded code
// instead of being admitted to rot. Assignments also change at runtime
// via POST /v1/sched/tenants and, with -state-dir, survive restarts
// through the journal. -sched-fifo restores the tenant-blind baseline
// (for A/B runs; admission is off in this mode).
//
// -api-latency adds a simulated network round trip to every model call,
// which is how a deployment against a remote LLM API behaves; it makes the
// worker-scaling effect visible on a local demo.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ioagent/internal/fleet"
	"ioagent/internal/fleet/ingest"
	"ioagent/internal/fleet/knowledge"
	"ioagent/internal/fleet/roster"
	"ioagent/internal/fleet/sched"
	"ioagent/internal/fleet/server"
	"ioagent/internal/fleet/store"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

// nodeIDPattern keeps -node-id values header- and URL-safe, and free of
// surprises in job-ID prefix parsing.
var nodeIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]*$`)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nodeID := flag.String("node-id", "", "this daemon's fleet identity: prefixes job IDs and stamps X-Fleet-Node (required per node in a multi-node fleet; empty for a single daemon)")
	workers := flag.Int("workers", 4, "concurrent diagnosis workers")
	queueDepth := flag.Int("queue", 0, "max queued jobs per lane before submits block (0 = 8*workers)")
	cacheSize := flag.Int("cache-size", 1024, "result cache entries (negative disables)")
	cacheTTL := flag.Duration("cache-ttl", time.Hour, "result cache entry lifetime")
	retries := flag.Int("retries", 3, "max diagnosis attempts per job")
	model := flag.String("model", llm.GPT4o, "diagnosis model")
	cheap := flag.String("cheap-model", llm.GPT4oMini, "self-reflection filter model")
	apiLatency := flag.Duration("api-latency", 0, "simulated model API round-trip latency")
	maxBody := flag.Int64("max-body", 64<<20, "max trace upload size in bytes (exceeding it returns trace_too_large)")
	batchShare := flag.Int("batch-share", 0, "1 in N worker slots goes to the batch lane under interactive load (0 = default 4, negative = strict interactive priority)")
	breaker := flag.Int("breaker", 8, "circuit breaker: consecutive transient LLM failures before new work fails fast (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open probe")
	tenantMaxInflight := flag.Int("tenant-max-inflight", 0, "max unfinished jobs per tenant; beyond it submissions refuse with quota_exceeded (0 disables)")
	tenantWeights := flag.String("tenant-weights", "", "comma-separated tenant=weight pairs pinning explicit DRR dequeue weights (e.g. acme=8,guest=1)")
	sloClasses := flag.String("slo-classes", "", "comma-separated tenant=class pairs assigning SLO classes: gold (8x, 2s target), silver (4x, 10s), bronze (1x, 60s)")
	sloAdmission := flag.Bool("slo-admission", false, "refuse submissions whose projected queue age exceeds the tenant's SLO class target (retryable slo_exceeded)")
	schedFIFO := flag.Bool("sched-fifo", false, "tenant-blind baseline: drain each lane in arrival order, ignoring weights, classes, and admission")
	uploadTTL := flag.Duration("upload-ttl", time.Hour, "idle upload sessions expire after this long")
	maxUploads := flag.Int("max-uploads", 64, "max concurrently open upload sessions")
	semCache := flag.Bool("semcache", false, "serve near-duplicate traces from a similarity-matched cached diagnosis (gated by confidence)")
	simThreshold := flag.Float64("sim-threshold", 0.85, "minimum feature-vector cosine similarity for a reuse candidate (with -semcache)")
	gateModel := flag.String("gate-model", llm.GPT4oMini, "judge model for the reuse confidence gate and tier self-checks")
	tierModels := flag.String("tier-models", "", "comma-separated model ladder, cheapest first; fresh diagnoses escalate on low self-check confidence (empty disables)")
	tierThreshold := flag.Float64("tier-threshold", 0, "self-check score below which a diagnosis escalates to the next rung (0 = default 0.6)")
	tierBudget := flag.Float64("tier-budget", 0, "total simulated LLM spend in USD after which escalation stops (0 = unlimited)")
	stateDir := flag.String("state-dir", "", "directory for the job journal, cache snapshot, and upload spool (empty = in-memory only)")
	snapInterval := flag.Duration("snapshot-interval", 30*time.Second, "cache snapshot + journal compaction cadence (with -state-dir)")
	fsync := flag.String("fsync", "always", "journal durability: always (fsync per record), batch (fsync at checkpoints), off")
	knowledgeOn := flag.Bool("knowledge", false, "serve the fleet knowledge plane: the RAG corpus becomes a live, epoch-versioned subsystem with /v1/knowledge endpoints")
	knowledgeMembers := flag.String("knowledge-members", "", "comma-separated fleet node IDs to ring-shard the corpus over (requires -node-id; empty = this node indexes everything)")
	knowledgeReplicas := flag.Int("knowledge-replicas", 2, "ring copies per document when sharded: the owner plus N-1 successors index it")
	knowledgeState := flag.String("knowledge-state", "", "directory for the knowledge WAL and corpus snapshot (default: -state-dir; empty without it = in-memory only)")
	ann := flag.Bool("ann", false, "use the HNSW approximate-nearest-neighbor index for knowledge retrieval (exact scan stays the fallback)")
	rerankModel := flag.String("rerank-model", "", "cheap model that reranks retrieved chunks before reflection (empty disables)")
	advertise := flag.String("advertise", "", "this daemon's base URL in the elastic roster, e.g. http://10.0.0.1:8080; \"auto\" advertises the resolved -addr (empty = static fleet member)")
	peers := flag.String("peers", "", "comma-separated seed peer base URLs to announce to (with -advertise); the full roster arrives by gossip")
	rosterInterval := flag.Duration("roster-interval", 2*time.Second, "gossip cadence; members silent for 4 intervals expire from the roster")
	replicate := flag.Int("replicate", 0, "keep each cached diagnosis warm on N ring members (owner + N-1 successors); 0 or 1 disables replication")
	flag.Parse()

	if !nodeIDPattern.MatchString(*nodeID) {
		log.Fatalf("iofleetd: -node-id %q: only letters, digits, '.', '_', '-' are allowed", *nodeID)
	}
	cfg := fleet.Config{
		NodeID:            *nodeID,
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		CacheSize:         *cacheSize,
		CacheTTL:          *cacheTTL,
		MaxAttempts:       *retries,
		BatchShare:        *batchShare,
		BreakerThreshold:  *breaker,
		BreakerCooldown:   *breakerCooldown,
		TenantMaxInflight: *tenantMaxInflight,
		Agent:             ioagent.Options{Model: *model, CheapModel: *cheap},
		SemCache:          *semCache,
		SimThreshold:      *simThreshold,
		GateModel:         *gateModel,
		TierThreshold:     *tierThreshold,
		TierBudgetUSD:     *tierBudget,
		SLOAdmission:      *sloAdmission,
		SchedFIFO:         *schedFIFO,
	}
	if *tenantWeights != "" {
		cfg.TenantWeights = make(map[string]int)
		for _, pair := range strings.Split(*tenantWeights, ",") {
			tenant, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			w, err := strconv.Atoi(val)
			if !ok || tenant == "" || err != nil || w < 1 {
				log.Fatalf("iofleetd: -tenant-weights entry %q: want tenant=N with N >= 1", pair)
			}
			cfg.TenantWeights[tenant] = w
		}
	}
	if *sloClasses != "" {
		// Validate against the built-in ladder here: the pool treats an
		// unknown class at construction as a programming error.
		known := sched.BuiltinClasses()
		cfg.TenantClasses = make(map[string]string)
		for _, pair := range strings.Split(*sloClasses, ",") {
			tenant, class, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if _, have := known[class]; !ok || tenant == "" || !have {
				log.Fatalf("iofleetd: -slo-classes entry %q: want tenant=gold|silver|bronze", pair)
			}
			cfg.TenantClasses[tenant] = class
		}
	}
	if *tierModels != "" {
		for _, m := range strings.Split(*tierModels, ",") {
			if m = strings.TrimSpace(m); m != "" {
				cfg.TierModels = append(cfg.TierModels, m)
			}
		}
	}
	// Permanent job failures surface on the wire only as the stable
	// diagnosis_failed code; the real error chain lands here, server-side.
	cfg.OnJobEvent = func(ev fleet.Event) {
		if ev.Kind == fleet.EventFailed {
			log.Printf("iofleetd: job %s (%s lane) failed: %s", ev.Job.ID, ev.Job.Lane, ev.Job.Error)
		}
	}

	var st *store.Store
	if *stateDir != "" {
		mode := store.FsyncMode(*fsync)
		switch mode {
		case store.FsyncAlways, store.FsyncBatch, store.FsyncOff:
		default:
			log.Fatalf("iofleetd: -fsync must be always, batch, or off (got %q)", *fsync)
		}
		var err error
		st, err = store.Open(*stateDir, store.Options{Fsync: mode})
		if err != nil {
			log.Fatal(err)
		}
		logFailed := cfg.OnJobEvent
		cfg.OnJobEvent = func(ev fleet.Event) {
			logFailed(ev)
			st.OnJobEvent(ev)
		}
		cfg.OnCacheInsert = st.CacheChanged
		cfg.OnCacheEvict = st.CacheChanged
	}

	if *advertise == "" && (*peers != "" || *replicate > 1) {
		log.Fatal("iofleetd: -peers and -replicate require -advertise (the URL this daemon joins the roster as)")
	}
	// The roster manager needs the pool and the pool's OnCacheInsert hook
	// needs the manager (successor replication), so the manager late-binds
	// through an atomic slot: inserts that land before it exists simply
	// don't replicate.
	var mgrSlot atomic.Pointer[roster.Manager]
	if *advertise != "" {
		prevInsert := cfg.OnCacheInsert
		cfg.OnCacheInsert = func(digest string) {
			if prevInsert != nil {
				prevInsert(digest)
			}
			if m := mgrSlot.Load(); m != nil {
				m.CacheInserted(digest)
			}
		}
	}

	llmClient := llm.WithLatency(llm.NewSim(), *apiLatency)

	// The knowledge plane: the RAG corpus as a served subsystem. Its WAL
	// and snapshot live in their own sidecar files (default: -state-dir),
	// so corpus epochs survive SIGKILL independently of the job journal.
	// Replay happens before the pool exists — ReplayUpsert/ReplaySwap
	// never emit events, so wiring OnEvent up front cannot re-journal the
	// recovery.
	var ks *store.KnowledgeStore
	if *knowledgeOn {
		kcfg := knowledge.Config{
			NodeID:   *nodeID,
			Replicas: *knowledgeReplicas,
			ANN:      *ann,
		}
		for _, m := range strings.Split(*knowledgeMembers, ",") {
			if m = strings.TrimSpace(m); m != "" {
				kcfg.Members = append(kcfg.Members, m)
			}
		}
		if len(kcfg.Members) > 0 && *nodeID == "" {
			log.Fatal("iofleetd: -knowledge-members requires -node-id (the shard this daemon owns)")
		}
		if *rerankModel != "" {
			kcfg.Reranker = &knowledge.LLMReranker{Client: llmClient, Model: *rerankModel}
		}
		kdir := *knowledgeState
		if kdir == "" {
			kdir = *stateDir
		}
		if kdir != "" {
			var kerr error
			ks, kerr = store.OpenKnowledge(kdir, store.Options{Fsync: store.FsyncMode(*fsync)})
			if kerr != nil {
				log.Fatalf("iofleetd: %v", kerr)
			}
			kcfg.OnEvent = ks.OnEvent
		}
		plane := knowledge.New(kcfg)
		if ks != nil {
			ks.Replay(plane)
			if ks.HasRecovered() {
				log.Printf("iofleetd: knowledge plane recovered from %s: epoch %d, %d documents", kdir, plane.Epoch(), plane.Metrics().Docs)
			}
		}
		cfg.Knowledge = plane
	}

	pool := fleet.New(llmClient, cfg)

	// The streaming ingest manager: with -state-dir its sessions spool to
	// disk and its opens ride the journal, so half-finished uploads
	// survive a restart.
	ingestCfg := ingest.Config{
		NodeID: *nodeID, MaxBytes: *maxBody,
		MaxSessions: *maxUploads, TTL: *uploadTTL,
	}
	if st != nil {
		ingestCfg.SpoolDir = st.UploadDir()
		ingestCfg.OnEvent = st.OnUploadEvent
	}
	uploads, err := ingest.NewManager(ingestCfg)
	if err != nil {
		log.Fatalf("iofleetd: %v", err)
	}

	if st != nil {
		restored, resubmitted, err := st.Replay(pool)
		if err != nil {
			log.Fatalf("iofleetd: replay: %v", err)
		}
		revived, err := st.ReplayUploads(uploads)
		if err != nil {
			log.Fatalf("iofleetd: replay uploads: %v", err)
		}
		log.Printf("iofleetd: recovered state from %s: %d cached diagnoses restored, %d unfinished jobs resubmitted, %d upload sessions revived",
			st.Dir(), restored, resubmitted, revived)
	}

	// Listen explicitly (rather than ListenAndServe) so ":0" resolves to a
	// real port in the startup log — the e2e recovery test depends on it —
	// and so `-advertise auto` can name the resolved address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	// Elastic membership: gossip with seed peers, hand cache shards to new
	// owners on ring changes, replicate inserts to ring successors. The
	// manager starts after recovery so a restarted daemon rejoins with its
	// restored cache already in place — the first ring change hands the
	// right entries over.
	var mgr *roster.Manager
	var stopRoster context.CancelFunc
	if *advertise != "" {
		selfURL := *advertise
		if selfURL == "auto" {
			// The resolved listen address; with an explicit host
			// (-addr 127.0.0.1:0) this is a dialable base URL.
			selfURL = "http://" + ln.Addr().String()
		}
		rcfg := roster.Config{
			SelfURL:   selfURL,
			NodeID:    *nodeID,
			Interval:  *rosterInterval,
			Replicate: *replicate,
			Pool:      pool,
		}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				rcfg.Peers = append(rcfg.Peers, p)
			}
		}
		rcfg.OnChange = func(added, removed []string) {
			log.Printf("iofleetd: roster change: +%v -%v", added, removed)
			if st != nil {
				// Audit trail: the journal answers "when did the ring
				// change under this daemon" after an incident.
				for _, u := range added {
					st.MemberJoined(u)
				}
				for _, u := range removed {
					st.MemberLeft(u)
				}
			}
		}
		mgr = roster.New(rcfg)
		mgrSlot.Store(mgr)
		var rctx context.Context
		rctx, stopRoster = context.WithCancel(context.Background())
		go mgr.Run(rctx)
		log.Printf("iofleetd: elastic member %s (peers %v, replicate %d)", rcfg.SelfURL, rcfg.Peers, *replicate)
	}

	// draining flips when SIGTERM/SIGINT arrives: new submissions are
	// refused (and the refusal journaled) instead of being accepted into a
	// pool that is about to stop.
	var draining atomic.Bool
	srvCfg := server.Config{
		Pool: pool, Store: st, Uploads: uploads, Draining: &draining,
		MaxBody: *maxBody, NodeID: *nodeID,
	}
	if st != nil {
		// Runtime class changes (POST /v1/sched/tenants) ride the journal,
		// so a restarted daemon replays them before resubmitting backlog.
		srvCfg.OnTenantClass = st.TenantClass
	}
	if mgr != nil {
		srvCfg.Elastic = mgr // a typed-nil manager must not enable the roster endpoints
	}
	mux := server.NewMux(srvCfg)
	srv := &http.Server{Handler: mux}

	// Periodic checkpoints: snapshot the cache when it changed, compact
	// the journal. Stopped on drain; the final checkpoint below covers the
	// tail.
	stopCheckpoints := make(chan struct{})
	if st != nil || ks != nil {
		go func() {
			tick := time.NewTicker(*snapInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					uploads.Sweep() // expire idle upload sessions
					if st != nil {
						if err := st.Checkpoint(pool); err != nil {
							log.Printf("iofleetd: checkpoint: %v", err)
						}
					}
					// Collapse the knowledge WAL only when it grew; an idle
					// corpus costs zero write traffic.
					if ks != nil && ks.Appended() > 0 {
						if err := ks.Checkpoint(pool.Knowledge()); err != nil {
							log.Printf("iofleetd: knowledge checkpoint: %v", err)
						}
					}
				case <-stopCheckpoints:
					return
				}
			}
		}()
	}

	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		draining.Store(true)
		log.Print("iofleetd: draining pool and shutting down")
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Printf("iofleetd: shutdown: %v", err)
		}
		close(drained)
	}()
	nodeNote := ""
	if *nodeID != "" {
		nodeNote = " as node " + *nodeID
	}
	log.Printf("iofleetd: listening on %s%s (%d workers, model %s)", ln.Addr(), nodeNote, *workers, *model)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained // let in-flight responses finish before tearing the pool down
	if mgr != nil {
		// Gossip and replication stop before the pool: both read from it.
		stopRoster()
		mgr.Close()
	}
	pool.Close()
	if st != nil || ks != nil {
		close(stopCheckpoints)
	}
	if ks != nil {
		if err := ks.Checkpoint(pool.Knowledge()); err != nil {
			log.Printf("iofleetd: final knowledge checkpoint: %v", err)
		}
		if err := ks.Close(); err != nil {
			log.Printf("iofleetd: close knowledge store: %v", err)
		}
	}
	if st != nil {
		// The pool has drained: every journaled job is covered, so this
		// snapshots the final cache and compacts the journal to (at most)
		// jobs that failed permanently mid-drain — normally to empty.
		if err := st.FinalCheckpoint(pool); err != nil {
			log.Printf("iofleetd: final checkpoint: %v", err)
		}
		if err := st.Close(); err != nil {
			log.Printf("iofleetd: close store: %v", err)
		}
		log.Printf("iofleetd: state persisted to %s", st.Dir())
	}
}
