// Command tracebench materializes the TraceBench suite on disk (binary
// Darshan logs plus a labels manifest) and verifies the Table III counts.
//
// Usage:
//
//	tracebench -out <dir>    # write the 40 traces + labels.tsv
//	tracebench -verify       # print the Table III matrix and check totals
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ioagent/internal/darshan"
	"ioagent/internal/issue"
	"ioagent/internal/tracebench"
)

func main() {
	out := flag.String("out", "", "directory to write traces into")
	verify := flag.Bool("verify", false, "print and verify the Table III label matrix")
	flag.Parse()

	suite := tracebench.Suite()

	if *verify || *out == "" {
		printMatrix(suite)
	}
	if *out != "" {
		if err := write(suite, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tracebench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d traces to %s\n", len(suite), *out)
	}
}

func printMatrix(suite []*tracebench.Trace) {
	counts := tracebench.LabelCounts(suite)
	fmt.Printf("%-36s %4s %6s %4s %6s\n", "Labeled Issue", "SB", "IO500", "RA", "Total")
	total := 0
	for _, l := range issue.All {
		c := counts[l]
		sb, io5, ra := c[tracebench.SimpleBench], c[tracebench.IO500], c[tracebench.RealApps]
		fmt.Printf("%-36s %4d %6d %4d %6d\n", l, sb, io5, ra, sb+io5+ra)
		total += sb + io5 + ra
	}
	fmt.Printf("%-36s %4d %6d %4d %6d\n", "TOTAL", 0, 0, 0, total)
	if total != 182 {
		fmt.Fprintf(os.Stderr, "tracebench: total issues %d != 182 (Table III)\n", total)
		os.Exit(1)
	}
}

func write(suite []*tracebench.Trace, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest strings.Builder
	manifest.WriteString("trace\tsource\tlabels\n")
	for _, tr := range suite {
		path := filepath.Join(dir, tr.Name+".darshan")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := darshan.Encode(f, tr.Log()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		var labels []string
		for _, l := range tr.Labels.Sorted() {
			labels = append(labels, string(l))
		}
		fmt.Fprintf(&manifest, "%s\t%s\t%s\n", tr.Name, tr.Source, strings.Join(labels, "; "))
	}
	return os.WriteFile(filepath.Join(dir, "labels.tsv"), []byte(manifest.String()), 0o644)
}
