// Command iofleet-router fronts a multi-node iofleetd fleet: one HTTP
// endpoint that speaks the versioned wire API (internal/fleet/api)
// exactly like a single daemon, while sharding the digest space across
// the -nodes list with a consistent-hash ring and failing work over to
// ring successors when a node is down.
//
// The router is stateless: ownership is a pure function of the member
// list, so routers restart freely and can be replicated behind a load
// balancer. Durability lives in the daemons (iofleetd -state-dir); the
// router's job is placement, failover, and aggregation.
//
// Usage:
//
//	iofleet-router -nodes URL[,URL...] [-addr :8090] [-id router]
//	               [-vnodes 128] [-max-body 67108864]
//	               [-spool-dir DIR] [-spool-max 67108864]
//	               [-node-retries 2] [-node-retry-delay 100ms]
//	               [-roster-refresh 0s]
//
// Endpoints (same contract and error envelopes as iofleetd):
//
//	POST /v1/jobs[?lane=...&tenant=...]  forwarded to the ring owner of
//	                            the trace's canonical content digest; on a
//	                            down owner, to the next ring successor
//	                            (idempotent by digest)
//	POST /v1/jobs/stream        with X-Fleet-Digest: piped straight to the
//	                            digest's owner, zero spool; without it:
//	                            spooled to disk within -spool-max, digest
//	                            derived, then forwarded with the header
//	POST /v1/uploads            opened on the claimed digest's owner (or
//	                            the first reachable node)
//	PATCH|GET|DELETE /v1/uploads/{id}, POST /v1/uploads/{id}/complete
//	                            forwarded to the node named by the session
//	                            ID's node prefix
//	GET  /v1/jobs               merged job listing across reachable nodes
//	GET  /v1/jobs/{id}          forwarded to the node named by the ID's
//	                            node prefix (iofleetd -node-id)
//	GET  /v1/jobs/{id}/diagnosis forwarded likewise; text/plain honored
//	GET  /metrics               cluster-wide aggregate (JSON; Prometheus
//	                            text exposition with "Accept: text/plain")
//	GET  /v1/cluster            per-node health roster
//	GET  /healthz               liveness probe for the router itself
//
// Run the daemons with distinct -node-id values: that is what routes job
// lookups back to the accepting node. All routers and cluster-mode SDK
// clients of one fleet must agree on -nodes and -vnodes.
//
// Against an elastic fleet (iofleetd -advertise/-peers), set
// -roster-refresh: -nodes then only seeds discovery, and the router
// follows the live roster — daemons that join are routed to and daemons
// that leave are dropped without restarting the router. Poll failures
// keep the last known-good member list.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/ring"
	"ioagent/internal/fleet/router"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	id := flag.String("id", "router", "router identity (X-Fleet-Node on responses, X-Fleet-Forwarded-By on forwarded requests)")
	nodes := flag.String("nodes", "", "comma-separated iofleetd base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	vnodes := flag.Int("vnodes", ring.DefaultReplicas, "consistent-hash virtual nodes per member (all routers and cluster clients must agree)")
	maxBody := flag.Int64("max-body", 64<<20, "max trace upload size in bytes (exceeding it returns trace_too_large)")
	spoolDir := flag.String("spool-dir", "", "directory for temporary spools of streaming submissions without X-Fleet-Digest (default: OS temp dir)")
	spoolMax := flag.Int64("spool-max", 0, "max bytes spooled per header-less stream (0 = -max-body); digest-asserted streams never spool")
	nodeRetries := flag.Int("node-retries", 2, "attempts per node per forwarded call before failing over to the ring successor")
	nodeRetryDelay := flag.Duration("node-retry-delay", 100*time.Millisecond, "backoff between per-node attempts")
	rosterRefresh := flag.Duration("roster-refresh", 0, "poll the fleet's live roster at this interval and reroute over it (0 = static -nodes list)")
	flag.Parse()

	var members []string
	for _, m := range strings.Split(*nodes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			members = append(members, m)
		}
	}
	if len(members) == 0 {
		log.Fatal("iofleet-router: -nodes is required (comma-separated iofleetd base URLs)")
	}

	rt, err := router.New(router.Config{
		ID:       *id,
		Members:  members,
		Replicas: *vnodes,
		MaxBody:  *maxBody,
		SpoolDir: *spoolDir,
		SpoolMax: *spoolMax,
		ClientOptions: []client.Option{
			client.WithRetry(*nodeRetries, *nodeRetryDelay),
		},
		RosterRefresh: *rosterRefresh,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Listen explicitly (rather than ListenAndServe) so ":0" resolves to a
	// real port in the startup log — the e2e smoke depends on it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: rt.Handler()}

	shutdown := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("iofleet-router: shutting down")
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Printf("iofleet-router: shutdown: %v", err)
		}
		close(shutdown)
	}()
	log.Printf("iofleet-router: listening on %s as %s (%d nodes, %d vnodes)", ln.Addr(), *id, len(members), *vnodes)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-shutdown
}
