// Command ioagent diagnoses a Darshan trace with the full IOAgent pipeline
// and optionally opens an interactive follow-up session (paper Fig. 5).
//
// Usage:
//
//	ioagent [-model NAME] [-interactive] [-show-fragments] <trace>
//
// The trace may be a binary log (as written by cmd/tracebench) or
// darshan-parser text. With -interactive, questions are read from stdin
// after the diagnosis prints.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"ioagent/internal/darshan"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

func main() {
	model := flag.String("model", llm.GPT4o, "diagnosis model (see llm catalog)")
	cheap := flag.String("cheap-model", llm.GPT4oMini, "self-reflection filter model")
	interactive := flag.Bool("interactive", false, "ask follow-up questions after the diagnosis")
	showFragments := flag.Bool("show-fragments", false, "print per-fragment pipeline intermediates")
	noRAG := flag.Bool("no-rag", false, "disable retrieval (ablation)")
	oneShot := flag.Bool("one-shot-merge", false, "replace the tree merge with a single merge call (ablation)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ioagent [flags] <trace.darshan|trace.txt>")
		os.Exit(2)
	}
	log, err := loadTrace(flag.Arg(0))
	check(err)

	agent := ioagent.New(llm.NewSim(), ioagent.Options{
		Model: *model, CheapModel: *cheap,
		DisableRAG: *noRAG, UseOneShotMerge: *oneShot,
	})
	res, err := agent.Diagnose(log)
	check(err)

	if *showFragments {
		for _, fr := range res.Fragments {
			fmt.Printf("--- fragment %s (retrieved %d, kept %d) ---\n%s\n",
				fr.Fragment.ID(), fr.Retrieved, fr.Kept, fr.Description)
		}
		fmt.Println("=== merged diagnosis ===")
	}
	fmt.Println(res.Text)

	usage, cost, calls := agent.Stats()
	fmt.Printf("[%d LLM calls, %d tokens, $%.4f]\n", calls, usage.Total(), cost)

	if *interactive {
		sess := agent.NewSession(res)
		sc := bufio.NewScanner(os.Stdin)
		fmt.Print("\nAsk a follow-up question (empty line to exit)\n> ")
		for sc.Scan() {
			q := strings.TrimSpace(sc.Text())
			if q == "" {
				break
			}
			answer, err := sess.Ask(q)
			check(err)
			fmt.Println(answer)
			fmt.Print("> ")
		}
	}
}

// loadTrace reads a binary or text Darshan log.
func loadTrace(path string) (*darshan.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if log, err := darshan.Decode(f); err == nil {
		return log, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return darshan.ParseText(f)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioagent:", err)
		os.Exit(1)
	}
}
