// Command ioagent diagnoses Darshan traces with the full IOAgent pipeline
// and optionally opens an interactive follow-up session (paper Fig. 5).
//
// Usage:
//
//	ioagent [-model NAME] [-interactive] [-show-fragments] <trace>
//	ioagent -fleet N [-model NAME] <trace> [trace ...]
//	ioagent -server URL[,URL...] [-lane interactive|batch] [-tenant NAME] <trace> [trace ...]
//	ioagent -server URL -stream [-chunk N] [-lane ...] [-tenant ...] [<trace>|-]
//
// Traces may be binary logs (as written by cmd/tracebench),
// darshan-parser text, or DXT per-operation text renderings
// ("# DXT trace" first line). With -interactive, questions are read from stdin
// after the diagnosis prints. With -fleet N, all traces are diagnosed
// through an N-worker in-process fleet pool (internal/fleet) and each
// report prints with its job header, followed by the pool metrics. With
// -server URL, the same batch flow instead drives a remote iofleetd
// daemon through the versioned API client (internal/fleet/client): traces
// are submitted on the chosen priority lane (and tenant, for per-tenant
// accounting), polled to completion, and the daemon's metrics print at
// the end. A comma-separated -server list engages the SDK's cluster mode:
// submissions are routed client-side by consistent hash across the named
// iofleetd nodes — no router hop — with automatic failover to ring
// successors. (Pointing -server at a single iofleet-router URL reaches
// the same fleet through the server-side route.)
//
// With -stream the trace is never loaded into memory: a file argument is
// scanned once to learn its canonical content digest (so the submission
// asserts X-Fleet-Digest and a router places the stream with zero
// spooling), then streamed in chunks; "-" (or no argument) streams stdin
// single-pass, with the digest computed on the fly and sent as a
// trailer. -chunk N instead drives a resumable upload session in N-byte
// PATCH appends (the path that survives daemon restarts mid-transfer).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/dxt"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/ingest"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

func main() {
	model := flag.String("model", llm.GPT4o, "diagnosis model (see llm catalog)")
	cheap := flag.String("cheap-model", llm.GPT4oMini, "self-reflection filter model")
	interactive := flag.Bool("interactive", false, "ask follow-up questions after the diagnosis")
	showFragments := flag.Bool("show-fragments", false, "print per-fragment pipeline intermediates")
	noRAG := flag.Bool("no-rag", false, "disable retrieval (ablation)")
	oneShot := flag.Bool("one-shot-merge", false, "replace the tree merge with a single merge call (ablation)")
	fleetN := flag.Int("fleet", 0, "batch mode: diagnose all traces with N concurrent workers")
	server := flag.String("server", "", "remote mode: diagnose through the iofleetd daemon (or iofleet-router) at this base URL; a comma-separated list routes client-side across the fleet")
	lane := flag.String("lane", "", "priority lane for -server submissions: interactive (default) or batch")
	tenant := flag.String("tenant", "", "tenant identifier for -server submissions (per-tenant accounting)")
	stream := flag.Bool("stream", false, "with -server: stream one trace (file or '-' for stdin) without loading it into memory")
	chunk := flag.Int("chunk", 0, "with -stream: use a resumable upload session in N-byte chunks instead of one streaming request")
	flag.Parse()

	opts := ioagent.Options{
		Model: *model, CheapModel: *cheap,
		DisableRAG: *noRAG, UseOneShotMerge: *oneShot,
	}

	if *server != "" {
		if *stream {
			runStream(*server, api.Lane(*lane), *tenant, *chunk, flag.Args())
			return
		}
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: ioagent -server URL [-lane interactive|batch] <trace> [trace ...]")
			os.Exit(2)
		}
		// Pipeline configuration lives daemon-side in -server mode; warn
		// about every explicitly-set flag this path will not honor, so a
		// requested model or ablation is never silently ignored.
		ignored := map[string]bool{
			"model": true, "cheap-model": true, "no-rag": true, "one-shot-merge": true,
			"interactive": true, "show-fragments": true, "fleet": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if ignored[f.Name] {
				fmt.Fprintf(os.Stderr, "ioagent: -%s is ignored in -server mode (the daemon owns the pipeline configuration)\n", f.Name)
			}
		})
		runServer(*server, api.Lane(*lane), *tenant, flag.Args())
		return
	}

	if *fleetN > 0 {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: ioagent -fleet N [flags] <trace> [trace ...]")
			os.Exit(2)
		}
		if *interactive || *showFragments {
			fmt.Fprintln(os.Stderr, "ioagent: -interactive and -show-fragments are ignored in -fleet batch mode")
		}
		runFleet(*fleetN, opts, flag.Args())
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ioagent [flags] <trace.darshan|trace.txt>")
		os.Exit(2)
	}
	log, err := loadTrace(flag.Arg(0))
	check(err)

	agent := ioagent.New(llm.NewSim(), opts)
	res, err := agent.Diagnose(log)
	check(err)

	if *showFragments {
		for _, fr := range res.Fragments {
			fmt.Printf("--- fragment %s (retrieved %d, kept %d) ---\n%s\n",
				fr.Fragment.ID(), fr.Retrieved, fr.Kept, fr.Description)
		}
		fmt.Println("=== merged diagnosis ===")
	}
	fmt.Println(res.Text)

	usage, cost, calls := agent.Stats()
	fmt.Printf("[%d LLM calls, %d tokens, $%.4f]\n", calls, usage.Total(), cost)

	if *interactive {
		sess := agent.NewSession(res)
		sc := bufio.NewScanner(os.Stdin)
		fmt.Print("\nAsk a follow-up question (empty line to exit)\n> ")
		for sc.Scan() {
			q := strings.TrimSpace(sc.Text())
			if q == "" {
				break
			}
			answer, err := sess.Ask(q)
			check(err)
			fmt.Println(answer)
			fmt.Print("> ")
		}
	}
}

// runFleet batch-diagnoses every path through an N-worker pool and prints
// each report followed by the pool's health metrics.
func runFleet(workers int, opts ioagent.Options, paths []string) {
	pool := fleet.New(llm.NewSim(), fleet.Config{Workers: workers, Agent: opts})
	defer pool.Close()

	jobs := make([]*fleet.Job, len(paths))
	for i, path := range paths {
		log, err := loadTrace(path)
		check(err)
		// A multi-trace sweep is bulk work: the batch lane keeps it from
		// crowding out interactive submitters sharing a pool.
		jobs[i], err = pool.SubmitWith(log, fleet.SubmitOpts{Lane: fleet.LaneBatch})
		check(err)
	}
	pool.Wait()

	failed := 0
	for i, j := range jobs {
		info := j.Info()
		fmt.Printf("=== %s (%s, %s", paths[i], info.ID, info.Status)
		if info.CacheHit {
			fmt.Print(", cache hit")
		}
		if info.SimilarityHit {
			fmt.Printf(", similarity hit (source %.12s, confidence %.2f)", info.SourceDigest, info.Confidence)
		}
		fmt.Println(") ===")
		res, err := j.Wait()
		if err != nil {
			failed++
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Println(res.Text)
	}

	m := pool.Metrics()
	usage, cost, calls := pool.Agent().Stats()
	fmt.Printf("[fleet: %d jobs on %d workers, %.0f%% cache hits, p50 %s, p95 %s; %d LLM calls, %d tokens, $%.4f]\n",
		m.Submitted, m.Workers, 100*m.HitRate,
		m.LatencyP50.Round(time.Millisecond), m.LatencyP95.Round(time.Millisecond),
		calls, usage.Total(), cost)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ioagent: %d of %d jobs failed\n", failed, len(jobs))
		os.Exit(1)
	}
}

// fleetAPI is the slice of the SDK surface runServer drives; both the
// single-endpoint Client and the multi-node Cluster satisfy it.
type fleetAPI interface {
	Submit(ctx context.Context, req api.SubmitRequest) (api.JobInfo, error)
	WaitDiagnosis(ctx context.Context, id string) (api.Diagnosis, error)
	Metrics(ctx context.Context) (api.Metrics, error)
	Close()
}

// streamAPI is the slice runStream drives; likewise satisfied by both.
type streamAPI interface {
	SubmitStream(ctx context.Context, body io.Reader, opts client.StreamOpts) (api.JobInfo, error)
	SubmitChunked(ctx context.Context, r io.Reader, chunkSize int, opts client.StreamOpts) (api.JobInfo, error)
	WaitDiagnosis(ctx context.Context, id string) (api.Diagnosis, error)
	Close()
}

// runServer batch-diagnoses every path through a remote iofleetd daemon
// (or, with a comma-separated URL list, client-side across a whole fleet)
// via the versioned API client: raw trace bytes are submitted on the
// requested lane and tenant (the daemon sniffs binary vs parser text
// exactly like the local loader), polled to completion, and printed in
// order.
func runServer(baseURL string, lane api.Lane, tenant string, paths []string) {
	ctx := context.Background()
	var c fleetAPI
	if members := strings.Split(baseURL, ","); len(members) > 1 {
		cluster, err := client.NewCluster(members)
		check(err)
		c = cluster
	} else {
		c = client.New(baseURL)
	}
	defer c.Close()

	ids := make([]string, len(paths))
	raws := make([][]byte, len(paths))
	for i, path := range paths {
		raw, err := os.ReadFile(path)
		check(err)
		info, err := c.Submit(ctx, api.SubmitRequest{Lane: lane, Tenant: tenant, Trace: raw})
		check(err)
		ids[i] = info.ID
		raws[i] = raw
	}

	failed := 0
	for i, id := range ids {
		diag, err := c.WaitDiagnosis(ctx, id)
		if api.ErrorCode(err) == api.CodeJobNotFound {
			// The job finished and was pruned from the daemon's bounded
			// history while we polled earlier submissions — or, in a
			// cluster, the node that held it died. Its diagnosis still
			// lives in the digest-addressed cache (or is recomputed by the
			// ring successor), so an idempotent resubmit of the same bytes
			// recovers it.
			var info api.JobInfo
			if info, err = c.Submit(ctx, api.SubmitRequest{Lane: lane, Tenant: tenant, Trace: raws[i]}); err == nil {
				id = info.ID
				diag, err = c.WaitDiagnosis(ctx, id)
			}
		}
		if err != nil {
			failed++
			fmt.Printf("=== %s (%s, failed) ===\nerror: %v\n", paths[i], id, err)
			continue
		}
		header := fmt.Sprintf("%s, done, %s lane", id, diag.Lane)
		if diag.CacheHit {
			header += ", cache hit"
		}
		if diag.SimilarityHit {
			header += fmt.Sprintf(", similarity hit (source %.12s, confidence %.2f)", diag.SourceDigest, diag.Confidence)
		}
		fmt.Printf("=== %s (%s) ===\n%s\n", paths[i], header, diag.Text)
	}

	if m, err := c.Metrics(ctx); err == nil {
		fmt.Printf("[server: %d jobs submitted, %.0f%% cache hits, p50 %s, p95 %s]\n",
			m.Submitted, 100*m.HitRate,
			m.LatencyP50.Round(time.Millisecond), m.LatencyP95.Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ioagent: %d of %d jobs failed\n", failed, len(ids))
		os.Exit(1)
	}
}

// runStream submits one trace through the streaming ingest path without
// ever loading it: files are scanned once for their canonical content
// digest (so the submission asserts X-Fleet-Digest and a fronting router
// forwards the stream spool-free to the owning node), then streamed;
// stdin is single-pass, so the digest ships as a trailer instead. With
// chunkSize > 0 the trace travels as a resumable upload session.
func runStream(baseURL string, lane api.Lane, tenant string, chunkSize int, args []string) {
	if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: ioagent -server URL -stream [<trace>|-]  (one trace per invocation)")
		os.Exit(2)
	}
	path := "-"
	if len(args) == 1 {
		path = args[0]
	}

	ctx := context.Background()
	// A comma-separated -server list engages cluster mode, exactly like
	// the buffered path: the stream routes client-side to the digest's
	// owner (or the first reachable member for digest-less stdin).
	var c streamAPI
	if members := strings.Split(baseURL, ","); len(members) > 1 {
		cluster, err := client.NewCluster(members)
		check(err)
		c = cluster
	} else {
		c = client.New(baseURL)
	}
	defer c.Close()

	var body io.Reader = os.Stdin
	opts := client.StreamOpts{Lane: lane, Tenant: tenant}
	if path != "-" {
		f, err := os.Open(path)
		check(err)
		defer f.Close()
		// Pass one: learn the digest by streaming the file through the
		// incremental parser — bounded memory regardless of trace size.
		parser := ingest.NewParser(0)
		if _, err := io.Copy(parser, bufio.NewReaderSize(f, 64<<10)); err == nil {
			if _, digest, ferr := parser.Finish(); ferr == nil {
				opts.Digest = digest
			}
		}
		// Pass two: the actual upload (rewindable, so transient failures
		// retry from the start).
		_, err = f.Seek(0, io.SeekStart)
		check(err)
		body = f
	}

	var info api.JobInfo
	var err error
	if chunkSize > 0 {
		info, err = c.SubmitChunked(ctx, body, chunkSize, opts)
	} else {
		info, err = c.SubmitStream(ctx, body, opts)
	}
	check(err)

	diag, err := c.WaitDiagnosis(ctx, info.ID)
	check(err)
	header := fmt.Sprintf("%s, done, %s lane", info.ID, diag.Lane)
	if diag.CacheHit {
		header += ", cache hit"
	}
	if diag.SimilarityHit {
		header += fmt.Sprintf(", similarity hit (source %.12s, confidence %.2f)", diag.SourceDigest, diag.Confidence)
	}
	if opts.Digest != "" {
		header += fmt.Sprintf(", digest %.12s…", opts.Digest)
	}
	fmt.Printf("=== %s (%s) ===\n%s\n", path, header, diag.Text)
}

// loadTrace reads a binary Darshan log, darshan-parser text, or a DXT
// per-operation text trace (sniffed by its magic first line and derived
// through darshan.FromDXT — the same path the fleet ingest takes).
func loadTrace(path string) (*darshan.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if log, err := darshan.Decode(f); err == nil {
		return log, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	if magic, _ := br.Peek(len(dxt.TextMagic)); string(magic) == dxt.TextMagic {
		tr, err := dxt.ParseText(br)
		if err != nil {
			return nil, err
		}
		return darshan.FromDXT(tr), nil
	}
	return darshan.ParseText(br)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ioagent:", err)
		os.Exit(1)
	}
}
