// Command knowledgebench measures the knowledge plane's retrieval engine
// and epoch-swap machinery, and writes the numbers to a JSON file
// (BENCH_knowledge.json in CI).
//
// Two corpus scales are benchmarked:
//
//   - the built-in expert corpus (internal/knowledge), the size a single
//     daemon actually ships with — where exact scan is expected to win or
//     tie, and HNSW must not cost recall;
//   - a synthetic corpus of -synthetic documents (default 10000) built
//     from a deterministic HPC-I/O vocabulary — the "fleet-fed" scale the
//     ANN index exists for, where the graph walk must beat the exact scan
//     on latency while holding recall@k above 0.95.
//
// For each scale the same query set runs against a brute-force index and
// an HNSW index built from identical documents; reported per engine: mean
// and p95 search latency, and the HNSW side's recall@k against the exact
// top-k (matched by chunk identity). The swap section times the epoch
// machinery on the synthetic corpus: cold is the initial index build
// (seed -> epoch 1), warm is a one-document staged delta promoted onto a
// cloned index — the O(delta) path a live corpus sync rides.
//
// Usage:
//
//	knowledgebench [-out BENCH_knowledge.json] [-synthetic 10000]
//	               [-queries 40] [-k 15]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	fleetknowledge "ioagent/internal/fleet/knowledge"
	"ioagent/internal/knowledge"
	"ioagent/internal/vectordb"
)

type engineResult struct {
	Engine    string  `json:"engine"` // "brute" or "hnsw"
	Chunks    int     `json:"chunks"`
	MeanNs    int64   `json:"mean_ns"`
	P95Ns     int64   `json:"p95_ns"`
	RecallAtK float64 `json:"recall_at_k,omitempty"` // hnsw only: vs exact top-k
}

type corpusResult struct {
	Corpus  string         `json:"corpus"`
	Docs    int            `json:"docs"`
	K       int            `json:"k"`
	Queries int            `json:"queries"`
	Engines []engineResult `json:"engines"`
}

type swapResult struct {
	Docs          int   `json:"docs"`
	ColdBuildNs   int64 `json:"cold_build_ns"`   // seed -> epoch 1 (full index build)
	WarmStageNs   int64 `json:"warm_stage_ns"`   // 1-doc upsert onto a cloned index
	WarmPromoteNs int64 `json:"warm_promote_ns"` // the atomic pointer swap itself
}

type report struct {
	Corpora []corpusResult `json:"corpora"`
	Swap    swapResult     `json:"swap"`
}

// vocabulary for deterministic synthetic documents: plausible HPC I/O
// diagnosis prose, so embeddings spread the way real corpus text does.
var vocab = strings.Fields(`
small write aggregation bandwidth stripe alignment metadata server load
collective buffering contiguous access pattern random sequential readahead
burst buffer drain checkpoint stall lustre gpfs ost mds rank imbalance
straggler shared file per process posix mpiio hdf5 netcdf chunk cache
eviction prefetch write behind flush sync barrier contention lock revoke
extent size quota inode scan directory traversal open close latency
throughput iops alignment boundary page fault mmap direct io buffered
`)

func syntheticDocs(n int) []vectordb.Document {
	rng := rand.New(rand.NewSource(42))
	docs := make([]vectordb.Document, n)
	for i := range docs {
		words := make([]string, 40)
		for w := range words {
			words[w] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = vectordb.Document{
			Key:   fmt.Sprintf("syn%05d", i),
			Title: fmt.Sprintf("Synthetic finding %d", i),
			Text:  strings.Join(words, " "),
		}
	}
	return docs
}

// queriesFrom derives a deterministic query set by sampling word windows
// out of the corpus itself, so every query has relevant neighbors.
func queriesFrom(docs []vectordb.Document, n int) []string {
	rng := rand.New(rand.NewSource(7))
	qs := make([]string, n)
	for i := range qs {
		words := strings.Fields(docs[rng.Intn(len(docs))].Text)
		if len(words) > 8 {
			start := rng.Intn(len(words) - 8)
			words = words[start : start+8]
		}
		qs[i] = strings.Join(words, " ")
	}
	return qs
}

func buildIndex(docs []vectordb.Document, ann bool) *vectordb.Index {
	ix := vectordb.New(vectordb.Options{ChunkSize: 512, Overlap: 20, ANN: ann})
	for _, d := range docs {
		ix.Add(d)
	}
	return ix
}

func chunkID(h vectordb.Hit) string {
	return fmt.Sprintf("%s#%d", h.Chunk.DocKey, h.Chunk.Seq)
}

// measure runs every query against ix, returning per-query latencies and
// the hit lists for recall scoring.
func measure(ix *vectordb.Index, queries []string, k int) ([]time.Duration, [][]vectordb.Hit) {
	lat := make([]time.Duration, len(queries))
	hits := make([][]vectordb.Hit, len(queries))
	for i, q := range queries {
		start := time.Now()
		hits[i] = ix.Search(q, k)
		lat[i] = time.Since(start)
	}
	return lat, hits
}

func stats(lat []time.Duration) (mean, p95 int64) {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	idx := int(0.95*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return int64(sum) / int64(len(sorted)), int64(sorted[idx])
}

// recall scores HNSW hit lists against the exact ones: the fraction of
// exact top-k chunks the ANN walk also surfaced, averaged over queries.
func recall(exact, ann [][]vectordb.Hit) float64 {
	var total float64
	for i := range exact {
		if len(exact[i]) == 0 {
			total++
			continue
		}
		want := make(map[string]bool, len(exact[i]))
		for _, h := range exact[i] {
			want[chunkID(h)] = true
		}
		got := 0
		for _, h := range ann[i] {
			if want[chunkID(h)] {
				got++
			}
		}
		total += float64(got) / float64(len(want))
	}
	return total / float64(len(exact))
}

func benchCorpus(name string, docs []vectordb.Document, nQueries, k int) corpusResult {
	queries := queriesFrom(docs, nQueries)

	brute := buildIndex(docs, false)
	bruteLat, bruteHits := measure(brute, queries, k)
	bm, bp := stats(bruteLat)

	hnsw := buildIndex(docs, true)
	hnswLat, hnswHits := measure(hnsw, queries, k)
	hm, hp := stats(hnswLat)

	return corpusResult{
		Corpus: name, Docs: len(docs), K: k, Queries: nQueries,
		Engines: []engineResult{
			{Engine: "brute", Chunks: brute.Len(), MeanNs: bm, P95Ns: bp},
			{Engine: "hnsw", Chunks: hnsw.Len(), MeanNs: hm, P95Ns: hp,
				RecallAtK: recall(bruteHits, hnswHits)},
		},
	}
}

func benchSwap(docs []vectordb.Document) swapResult {
	coldStart := time.Now()
	plane := fleetknowledge.New(fleetknowledge.Config{ANN: true, Seed: docs})
	cold := time.Since(coldStart)

	delta := vectordb.Document{
		Key:   "syn-delta",
		Title: "Fresh operational finding",
		Text:  "burst buffer drain contention stalls checkpoint flush during maintenance windows",
	}
	warmStart := time.Now()
	if err := plane.Upsert([]vectordb.Document{delta}, nil); err != nil {
		log.Fatalf("knowledgebench: warm upsert: %v", err)
	}
	warmStage := time.Since(warmStart)

	promoteStart := time.Now()
	if _, err := plane.Swap(); err != nil {
		log.Fatalf("knowledgebench: warm swap: %v", err)
	}
	warmPromote := time.Since(promoteStart)

	return swapResult{
		Docs:          len(docs),
		ColdBuildNs:   int64(cold),
		WarmStageNs:   int64(warmStage),
		WarmPromoteNs: int64(warmPromote),
	}
}

func main() {
	out := flag.String("out", "BENCH_knowledge.json", "output JSON path")
	synthetic := flag.Int("synthetic", 10000, "synthetic corpus size (documents)")
	nQueries := flag.Int("queries", 40, "queries per corpus")
	k := flag.Int("k", 15, "retrieval depth (top-k)")
	flag.Parse()

	var rep report

	seed := knowledge.Documents()
	log.Printf("knowledgebench: built-in corpus (%d docs)", len(seed))
	rep.Corpora = append(rep.Corpora, benchCorpus("builtin", seed, *nQueries, *k))

	syn := syntheticDocs(*synthetic)
	log.Printf("knowledgebench: synthetic corpus (%d docs)", len(syn))
	rep.Corpora = append(rep.Corpora, benchCorpus("synthetic", syn, *nQueries, *k))

	log.Print("knowledgebench: epoch swap timings")
	rep.Swap = benchSwap(syn)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))

	// Sanity fences, mirrored by CI: ANN must hold recall everywhere and
	// win latency at the synthetic scale.
	for _, c := range rep.Corpora {
		for _, e := range c.Engines {
			if e.Engine == "hnsw" && e.RecallAtK < 0.95 {
				log.Fatalf("knowledgebench: %s recall@%d = %.3f, want >= 0.95", c.Corpus, c.K, e.RecallAtK)
			}
		}
	}
	synRes := rep.Corpora[len(rep.Corpora)-1]
	if b, h := synRes.Engines[0], synRes.Engines[1]; h.MeanNs >= b.MeanNs {
		log.Fatalf("knowledgebench: hnsw mean %.2fms did not beat brute %.2fms at %d docs",
			float64(h.MeanNs)/1e6, float64(b.MeanNs)/1e6, synRes.Docs)
	}
	log.Printf("knowledgebench: wrote %s", *out)
}
