// Command darshan-job-summary prints a PyDarshan-style overview of a trace:
// per-module activity, busiest files, and the POSIX access-size histogram.
//
// Usage:
//
//	darshan-job-summary <trace.darshan|trace.txt>
package main

import (
	"fmt"
	"os"

	"ioagent/internal/darshan"
	"ioagent/internal/jobsummary"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: darshan-job-summary <trace>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "darshan-job-summary:", err)
		os.Exit(1)
	}
	defer f.Close()
	log, err := darshan.Decode(f)
	if err != nil {
		if _, serr := f.Seek(0, 0); serr != nil {
			fmt.Fprintln(os.Stderr, "darshan-job-summary:", serr)
			os.Exit(1)
		}
		log, err = darshan.ParseText(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darshan-job-summary:", err)
		os.Exit(1)
	}
	fmt.Print(jobsummary.Build(log).Format())
}
