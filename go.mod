module ioagent

go 1.24
