// Package jobsummary renders human-readable summaries of Darshan logs, in
// the spirit of PyDarshan's job-summary reports (Luettgau et al., SC-W'23),
// which the paper cites as the established way scientists inspect traces
// before LLM assistance. The summary is also what a human expert would scan
// first, making it a useful side-by-side artifact next to IOAgent's
// diagnosis.
package jobsummary

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ioagent/internal/darshan"
)

// Summary holds the derived overview of one log.
type Summary struct {
	Exe       string
	NProcs    int
	RunTime   float64
	Start     time.Time
	Modules   []ModuleSummary
	TopFiles  []FileVolume
	Transfers Histogram
}

// ModuleSummary aggregates one module.
type ModuleSummary struct {
	Module       darshan.ModuleID
	Files        int
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	MetaTime     float64
	ReadTime     float64
	WriteTime    float64
}

// FileVolume is one file's total traffic.
type FileVolume struct {
	Name  string
	Bytes int64
}

// Histogram is the job-wide POSIX access-size distribution.
type Histogram struct {
	Buckets []string
	Reads   []int64
	Writes  []int64
}

// Build derives the summary from a log.
func Build(log *darshan.Log) *Summary {
	s := &Summary{
		Exe:     log.Job.Exe,
		NProcs:  log.Job.NProcs,
		RunTime: log.Job.RunTime,
		Start:   time.Unix(log.Job.StartTime, 0).UTC(),
	}
	volumes := map[string]int64{}
	for _, m := range log.ModuleList() {
		md := log.Modules[m]
		prefix := m.CounterPrefix()
		ms := ModuleSummary{Module: m, Files: len(md.Files())}
		switch m {
		case darshan.ModuleLustre:
			// Striping-only module: no data counters.
		case darshan.ModuleMPIIO:
			ms.Reads = md.SumC("MPIIO_INDEP_READS") + md.SumC("MPIIO_COLL_READS")
			ms.Writes = md.SumC("MPIIO_INDEP_WRITES") + md.SumC("MPIIO_COLL_WRITES")
			ms.BytesRead = md.SumC("MPIIO_BYTES_READ")
			ms.BytesWritten = md.SumC("MPIIO_BYTES_WRITTEN")
			ms.MetaTime = md.SumF("MPIIO_F_META_TIME")
			ms.ReadTime = md.SumF("MPIIO_F_READ_TIME")
			ms.WriteTime = md.SumF("MPIIO_F_WRITE_TIME")
		default:
			ms.Reads = md.SumC(prefix + "_READS")
			ms.Writes = md.SumC(prefix + "_WRITES")
			ms.BytesRead = md.SumC(prefix + "_BYTES_READ")
			ms.BytesWritten = md.SumC(prefix + "_BYTES_WRITTEN")
			ms.MetaTime = md.SumF(prefix + "_F_META_TIME")
			ms.ReadTime = md.SumF(prefix + "_F_READ_TIME")
			ms.WriteTime = md.SumF(prefix + "_F_WRITE_TIME")
			for _, r := range md.Records {
				volumes[r.Name] += r.C(prefix+"_BYTES_READ") + r.C(prefix+"_BYTES_WRITTEN")
			}
		}
		s.Modules = append(s.Modules, ms)
	}

	for name, b := range volumes {
		if b > 0 {
			s.TopFiles = append(s.TopFiles, FileVolume{name, b})
		}
	}
	sort.Slice(s.TopFiles, func(i, j int) bool {
		if s.TopFiles[i].Bytes != s.TopFiles[j].Bytes {
			return s.TopFiles[i].Bytes > s.TopFiles[j].Bytes
		}
		return s.TopFiles[i].Name < s.TopFiles[j].Name
	})
	if len(s.TopFiles) > 10 {
		s.TopFiles = s.TopFiles[:10]
	}

	if md, ok := log.Modules[darshan.ModulePOSIX]; ok {
		buckets := []string{"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
			"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS"}
		s.Transfers.Buckets = buckets
		for _, b := range buckets {
			s.Transfers.Reads = append(s.Transfers.Reads, md.SumC("POSIX_SIZE_READ_"+b))
			s.Transfers.Writes = append(s.Transfers.Writes, md.SumC("POSIX_SIZE_WRITE_"+b))
		}
	}
	return s
}

// humanBytes renders a byte count with a binary unit.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Format renders the summary as a fixed-width text report.
func (s *Summary) Format() string {
	var b strings.Builder
	b.WriteString("=== Darshan Job Summary ===\n")
	fmt.Fprintf(&b, "executable : %s\n", s.Exe)
	fmt.Fprintf(&b, "processes  : %d\n", s.NProcs)
	fmt.Fprintf(&b, "runtime    : %.2f s (started %s)\n\n", s.RunTime, s.Start.Format(time.RFC3339))

	b.WriteString("per-module activity:\n")
	fmt.Fprintf(&b, "  %-8s %6s %10s %10s %12s %12s %9s %9s %9s\n",
		"module", "files", "reads", "writes", "read vol", "write vol", "meta(s)", "read(s)", "write(s)")
	for _, m := range s.Modules {
		if m.Module == darshan.ModuleLustre {
			fmt.Fprintf(&b, "  %-8s %6d %10s %10s %12s %12s %9s %9s %9s\n",
				m.Module, m.Files, "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "  %-8s %6d %10d %10d %12s %12s %9.3f %9.3f %9.3f\n",
			m.Module, m.Files, m.Reads, m.Writes,
			humanBytes(m.BytesRead), humanBytes(m.BytesWritten),
			m.MetaTime, m.ReadTime, m.WriteTime)
	}

	if len(s.TopFiles) > 0 {
		b.WriteString("\nbusiest files:\n")
		for i, f := range s.TopFiles {
			fmt.Fprintf(&b, "  %2d. %-48s %12s\n", i+1, f.Name, humanBytes(f.Bytes))
		}
	}

	if len(s.Transfers.Buckets) > 0 {
		b.WriteString("\nPOSIX access sizes (ops per bucket):\n")
		fmt.Fprintf(&b, "  %-10s %10s %10s\n", "bucket", "reads", "writes")
		for i, bucket := range s.Transfers.Buckets {
			r, w := s.Transfers.Reads[i], s.Transfers.Writes[i]
			if r == 0 && w == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-10s %10d %10d  %s\n", bucket, r, w, bar(r+w, maxBucket(s.Transfers)))
		}
	}
	return b.String()
}

func maxBucket(h Histogram) int64 {
	var m int64
	for i := range h.Buckets {
		if t := h.Reads[i] + h.Writes[i]; t > m {
			m = t
		}
	}
	return m
}

func bar(v, max int64) string {
	if max <= 0 {
		return ""
	}
	n := int(v * 24 / max)
	if n == 0 && v > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}
