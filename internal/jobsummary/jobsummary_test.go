package jobsummary

import (
	"strings"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
)

func testLog() *darshan.Log {
	s := iosim.New(iosim.Config{Seed: 4, NProcs: 4, UsesMPI: true, Exe: "/bin/app.x"})
	f := s.OpenShared("/scratch/big.dat", iosim.MPIIndep, false, nil)
	for rank := 0; rank < 4; rank++ {
		f.WriteAt(rank, int64(rank)*(4<<20), 4<<20)
	}
	f.Close()
	iosim.ConfigRead(s, "/scratch/run.cfg")
	return s.Finalize()
}

func TestBuild(t *testing.T) {
	sum := Build(testLog())
	if sum.NProcs != 4 || sum.Exe != "/bin/app.x" {
		t.Errorf("header wrong: %+v", sum)
	}
	var posix *ModuleSummary
	for i := range sum.Modules {
		if sum.Modules[i].Module == darshan.ModulePOSIX {
			posix = &sum.Modules[i]
		}
	}
	if posix == nil {
		t.Fatal("POSIX module missing")
	}
	if posix.BytesWritten != 16<<20 {
		t.Errorf("POSIX write volume = %d, want 16 MiB", posix.BytesWritten)
	}
	if posix.Writes != 4 {
		t.Errorf("POSIX writes = %d, want 4", posix.Writes)
	}
	if len(sum.TopFiles) == 0 || sum.TopFiles[0].Name != "/scratch/big.dat" {
		t.Errorf("busiest file wrong: %+v", sum.TopFiles)
	}
}

func TestFormat(t *testing.T) {
	out := Build(testLog()).Format()
	for _, want := range []string{
		"Darshan Job Summary",
		"/bin/app.x",
		"per-module activity",
		"POSIX",
		"MPI-IO",
		"busiest files",
		"/scratch/big.dat",
		"16.00 MiB",
		"POSIX access sizes",
		"4M_10M",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestEmptyLog(t *testing.T) {
	sum := Build(darshan.NewLog())
	if len(sum.Modules) != 0 || len(sum.TopFiles) != 0 {
		t.Errorf("empty log should summarize empty: %+v", sum)
	}
	if out := sum.Format(); !strings.Contains(out, "Darshan Job Summary") {
		t.Error("empty summary still renders a header")
	}
}
