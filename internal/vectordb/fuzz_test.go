package vectordb

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzHNSWMatchesExactAtFullK pins the exact-fallback contract: at
// k ≥ doc count (and a fortiori k ≥ chunk count, since fuzz docs are
// single-chunk) the ANN index must return results identical to the
// brute-force index — same chunks, same scores, same deterministic
// tie-break order.
func FuzzHNSWMatchesExactAtFullK(f *testing.F) {
	f.Add("small write bandwidth|metadata storm server|stripe lock contention", "aggregate small writes")
	f.Add("a b c|a b c|a b", "a b c")
	f.Add("read ahead sequential|checkpoint burst rank straggler", "burst")
	f.Fuzz(func(t *testing.T, corpus, query string) {
		var docs []Document
		for i, body := range strings.Split(corpus, "|") {
			words := strings.Fields(body)
			if len(words) == 0 {
				continue
			}
			if len(words) > 64 {
				words = words[:64] // keep every doc single-chunk
			}
			docs = append(docs, Document{
				Key:  fmt.Sprintf("doc%03d", i),
				Text: strings.Join(words, " "),
			})
			if len(docs) == 32 {
				break
			}
		}
		if len(docs) == 0 || strings.TrimSpace(query) == "" {
			t.Skip()
		}
		brute, ann := buildPair(docs, Options{ChunkSize: 64, Overlap: NoOverlap})
		for _, k := range []int{len(docs), len(docs) + 3} {
			exact := brute.Search(query, k)
			approx := ann.Search(query, k)
			if len(exact) != len(approx) {
				t.Fatalf("k=%d: %d exact hits vs %d ANN hits", k, len(exact), len(approx))
			}
			for i := range exact {
				if exact[i] != approx[i] {
					t.Fatalf("k=%d rank %d: exact %+v vs ANN %+v", k, i, exact[i], approx[i])
				}
			}
		}
	})
}
