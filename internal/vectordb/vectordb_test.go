package vectordb

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func docText(words ...string) string {
	return strings.Join(words, " ")
}

func TestChunking(t *testing.T) {
	// 1000 identical words, chunk 100, overlap 20 => step 80.
	text := strings.TrimSpace(strings.Repeat("word ", 1000))
	ix := New(Options{ChunkSize: 100, Overlap: 20})
	ix.Add(Document{Key: "d", Title: "D", Text: text})
	// ceil((1000-100)/80)+1 = 12.25 -> starts at 0,80,...,960 => 13 chunks
	if ix.Len() != 13 {
		t.Errorf("chunk count = %d, want 13", ix.Len())
	}
}

func TestSearchRelevance(t *testing.T) {
	ix := New(Options{})
	ix.Add(Document{Key: "small", Title: "Small Writes", Text: "small write requests degrade bandwidth; aggregate writes into larger buffers to recover write performance"})
	ix.Add(Document{Key: "meta", Title: "Metadata", Text: "metadata server load from open stat close storms dominates runtime for many-file workloads"})
	ix.Add(Document{Key: "stripe", Title: "Striping", Text: "stripe count one confines traffic to a single object storage target causing server hotspots"})

	hits := ix.Search("the application issues many small write requests under 100 KB", 2)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].Chunk.DocKey != "small" {
		t.Errorf("top hit = %q, want small", hits[0].Chunk.DocKey)
	}
	if hits[0].Score < hits[1].Score {
		t.Error("hits not sorted by score")
	}
}

func TestSearchKBounds(t *testing.T) {
	ix := New(Options{})
	ix.Add(Document{Key: "a", Text: docText("alpha", "beta")})
	if got := ix.Search("alpha", 10); len(got) == 0 || len(got) > ix.Len() {
		t.Errorf("Search k>len returned %d hits", len(got))
	}
	if got := ix.Search("alpha", 0); got != nil {
		t.Error("Search k=0 should return nil")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := New(Options{ChunkSize: 64, Overlap: 8})
	ix.Add(Document{Key: "a", Title: "A", Text: docText("collective", "io", "merges", "requests")})
	ix.Add(Document{Key: "b", Title: "B", Text: docText("metadata", "storms", "serialize")})

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Len() != ix.Len() {
		t.Fatalf("len %d != %d after round trip", back.Len(), ix.Len())
	}
	a := ix.Search("collective io", 1)
	b := back.Search("collective io", 1)
	if a[0].Chunk.DocKey != b[0].Chunk.DocKey || a[0].Score != b[0].Score {
		t.Error("search results differ after round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("Load should fail on garbage")
	}
}

func TestDefaultOverlapIs20(t *testing.T) {
	// 1000 words, chunk 100: with the documented default overlap of 20 the
	// step is 80, giving 13 chunks (identical to the explicit-20 case).
	text := strings.TrimSpace(strings.Repeat("word ", 1000))
	ix := New(Options{ChunkSize: 100})
	ix.Add(Document{Key: "d", Title: "D", Text: text})
	if ix.Len() != 13 {
		t.Errorf("unset overlap: chunk count = %d, want 13 (default overlap 20)", ix.Len())
	}
}

func TestNoOverlapSentinel(t *testing.T) {
	// Explicit zero overlap: step 100, so 1000 words / 100 = 10 chunks.
	text := strings.TrimSpace(strings.Repeat("word ", 1000))
	ix := New(Options{ChunkSize: 100, Overlap: NoOverlap})
	ix.Add(Document{Key: "d", Title: "D", Text: text})
	if ix.Len() != 10 {
		t.Errorf("NoOverlap: chunk count = %d, want 10", ix.Len())
	}
}

func TestSaveLoadPreservesNoOverlap(t *testing.T) {
	text := strings.TrimSpace(strings.Repeat("word ", 1000))
	ix := New(Options{ChunkSize: 100, Overlap: NoOverlap})
	ix.Add(Document{Key: "d", Title: "D", Text: text})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Documents added after the round trip must chunk with overlap 0, not
	// get silently re-defaulted to 20.
	back.Add(Document{Key: "e", Title: "E", Text: text})
	if back.Len() != 20 {
		t.Errorf("post-load chunk count = %d, want 20 (10 + 10 with overlap 0)", back.Len())
	}
}

func TestConcurrentSearch(t *testing.T) {
	ix := New(Options{})
	ix.Add(Document{Key: "small", Text: "small write requests degrade bandwidth aggregate writes into larger buffers"})
	ix.Add(Document{Key: "meta", Text: "metadata server load from open stat close storms dominates runtime"})
	ix.Add(Document{Key: "stripe", Text: "stripe count one confines traffic to a single object storage target"})

	want := ix.Search("small write requests", 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := ix.Search("small write requests", 2)
				if len(got) != len(want) || got[0].Chunk.DocKey != want[0].Chunk.DocKey {
					t.Error("concurrent search result diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTopKHeapMatchesFullRanking(t *testing.T) {
	// The bounded-heap selection must produce exactly the first k entries
	// of the fully sorted ranking, for every k.
	ix := New(Options{})
	topics := []string{
		"small write requests degrade bandwidth",
		"metadata storms serialize many file workloads",
		"stripe count one causes hotspots",
		"collective buffering aggregates requests",
		"read ahead hides latency for sequential reads",
		"alignment with stripe boundaries avoids extra server round trips",
	}
	for i, txt := range topics {
		ix.Add(Document{Key: string(rune('a' + i)), Text: txt})
	}
	full := ix.Search("write requests and stripe alignment", ix.Len())
	for k := 1; k <= ix.Len(); k++ {
		got := ix.Search("write requests and stripe alignment", k)
		if len(got) != k {
			t.Fatalf("k=%d: got %d hits", k, len(got))
		}
		for i := range got {
			if got[i].Chunk.DocKey != full[i].Chunk.DocKey || got[i].Score != full[i].Score {
				t.Fatalf("k=%d: rank %d = %q, want %q", k, i, got[i].Chunk.DocKey, full[i].Chunk.DocKey)
			}
		}
	}
}

func TestRemove(t *testing.T) {
	ix := New(Options{ChunkSize: 2, Overlap: NoOverlap})
	ix.Add(Document{Key: "a", Text: docText("alpha", "beta", "gamma", "delta")}) // 2 chunks
	ix.Add(Document{Key: "b", Text: docText("metadata", "storms")})              // 1 chunk
	if got := ix.Remove("a"); got != 2 {
		t.Errorf("Remove(a) = %d chunks, want 2", got)
	}
	if got := ix.Remove("a"); got != 0 {
		t.Errorf("second Remove(a) = %d chunks, want 0", got)
	}
	if ix.Len() != 1 || ix.Docs() != 1 {
		t.Errorf("after removal: %d chunks / %d docs, want 1 / 1", ix.Len(), ix.Docs())
	}
	for _, h := range ix.Search("alpha beta", 5) {
		if h.Chunk.DocKey == "a" {
			t.Error("removed document still retrievable")
		}
	}
}

func TestMaxDocsEviction(t *testing.T) {
	var evicted []string
	ix := New(Options{MaxDocs: 2, OnEvict: func(k string) { evicted = append(evicted, k) }})
	ix.Add(Document{Key: "a", Text: "small writes degrade bandwidth"})
	ix.Add(Document{Key: "b", Text: "metadata storms serialize"})
	if len(evicted) != 0 {
		t.Fatalf("evicted %v before exceeding the cap", evicted)
	}
	ix.Add(Document{Key: "c", Text: "stripe count one causes hotspots"})
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted = %v, want [a] (oldest first)", evicted)
	}
	if ix.Docs() != 2 {
		t.Errorf("docs = %d after eviction, want 2", ix.Docs())
	}
	// Removing then re-adding must not trip the cap.
	ix.Remove("b")
	ix.Add(Document{Key: "d", Text: "collective buffering aggregates"})
	if len(evicted) != 1 {
		t.Errorf("evicted = %v after remove+add within cap, want just [a]", evicted)
	}
}

func TestSaveLoadAfterRemovals(t *testing.T) {
	ix := New(Options{ChunkSize: 64, Overlap: 8, MaxDocs: 8})
	ix.Add(Document{Key: "a", Title: "A", Text: docText("collective", "io", "merges", "requests")})
	ix.Add(Document{Key: "b", Title: "B", Text: docText("metadata", "storms", "serialize")})
	ix.Add(Document{Key: "c", Title: "C", Text: docText("stripe", "hotspots")})
	ix.Remove("b")

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Len() != ix.Len() || back.Docs() != 2 {
		t.Fatalf("round trip: %d chunks / %d docs, want %d / 2", back.Len(), back.Docs(), ix.Len())
	}
	for _, h := range back.Search("metadata storms", 5) {
		if h.Chunk.DocKey == "b" {
			t.Error("removed document resurrected by Save/Load")
		}
	}
	a := ix.Search("collective io", 1)
	b := back.Search("collective io", 1)
	if a[0].Chunk.DocKey != b[0].Chunk.DocKey || a[0].Score != b[0].Score {
		t.Error("search results differ after round trip with removals")
	}
	// The cap must survive the round trip: loaded index keeps evicting.
	for i := 0; i < 10; i++ {
		back.Add(Document{Key: string(rune('p' + i)), Text: "filler body text"})
	}
	if back.Docs() > 8 {
		t.Errorf("loaded index exceeded persisted MaxDocs: %d docs", back.Docs())
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := New(Options{})
	ix.Add(Document{Key: "b", Text: "identical text body"})
	ix.Add(Document{Key: "a", Text: "identical text body"})
	hits := ix.Search("identical text body", 2)
	if hits[0].Chunk.DocKey != "a" {
		t.Errorf("tie should break by key: got %q first", hits[0].Chunk.DocKey)
	}
}
