package vectordb

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"ioagent/internal/embed"
)

// Document is a source text registered with the index.
type Document struct {
	// Key is the citation key (e.g. "bez2022drishti").
	Key string
	// Title is the human-readable source title.
	Title string
	// Text is the full document body.
	Text string
}

// Chunk is one indexed slice of a document.
type Chunk struct {
	DocKey   string `json:"doc_key"`
	DocTitle string `json:"doc_title"`
	Seq      int    `json:"seq"` // chunk ordinal within the document
	Text     string `json:"text"`
}

// Hit is one retrieval result.
type Hit struct {
	Chunk Chunk
	Score float64 // cosine similarity to the query
}

// NoOverlap requests zero-token overlap between adjacent chunks. The zero
// value of Options.Overlap means "unset" and selects the paper's default of
// 20, so an explicit no-overlap configuration needs a distinct sentinel.
const NoOverlap = -1

// Options configure chunking.
type Options struct {
	ChunkSize int // tokens per chunk (default 512)
	// Overlap is the number of tokens shared between adjacent chunks.
	// 0 means unset and selects the default of 20; pass NoOverlap for an
	// explicit overlap of zero.
	Overlap int
	// MaxDocs, when positive, bounds the number of distinct documents the
	// index retains: an Add that pushes the count beyond the cap evicts the
	// oldest (first-added) documents until the cap holds again, so an index
	// fed an unbounded stream — the fleet's semantic result cache — stays
	// as bounded as the result cache it mirrors. Zero or negative means
	// unbounded (the knowledge-corpus configuration).
	MaxDocs int
	// OnEvict, if set, observes each MaxDocs eviction with the evicted
	// document's key, after the index lock is released. Not persisted by
	// Save; a caller that Loads an index rewires its own callback.
	OnEvict func(docKey string)
}

func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 512
	}
	switch {
	case o.Overlap == 0:
		o.Overlap = 20
	case o.Overlap < 0: // NoOverlap (or any negative): explicitly none
		o.Overlap = 0
	}
	if o.Overlap >= o.ChunkSize {
		o.Overlap = o.ChunkSize / 4
	}
	return o
}

// Index is an in-memory vector index with exact (brute-force) cosine search.
type Index struct {
	mu      sync.RWMutex
	opts    Options
	chunks  []Chunk
	vectors []embed.Vector
	// invNorms[i] is 1/|vectors[i]| (0 for zero vectors), precomputed at
	// indexing time so concurrent searches never redo per-chunk work.
	invNorms []float64
}

// New creates an empty index.
func New(opts Options) *Index {
	return &Index{opts: opts.withDefaults()}
}

// Len returns the number of indexed chunks.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.chunks)
}

// Add chunks and indexes a document. With Options.MaxDocs set, adding past
// the cap evicts the oldest documents (never the one just added) and reports
// each eviction through Options.OnEvict after the lock is released.
func (ix *Index) Add(doc Document) {
	var evicted []string
	ix.mu.Lock()
	words := strings.Fields(doc.Text)
	step := ix.opts.ChunkSize - ix.opts.Overlap
	seq := 0
	for start := 0; start < len(words); start += step {
		end := start + ix.opts.ChunkSize
		if end > len(words) {
			end = len(words)
		}
		text := strings.Join(words[start:end], " ")
		ix.appendChunk(Chunk{
			DocKey: doc.Key, DocTitle: doc.Title, Seq: seq, Text: text,
		})
		seq++
		if end == len(words) {
			break
		}
	}
	if ix.opts.MaxDocs > 0 {
		for ix.docCountLocked() > ix.opts.MaxDocs {
			oldest := ix.chunks[0].DocKey
			ix.removeLocked(oldest)
			evicted = append(evicted, oldest)
		}
	}
	ix.mu.Unlock()
	if ix.opts.OnEvict != nil {
		for _, k := range evicted {
			ix.opts.OnEvict(k)
		}
	}
}

// Remove drops every chunk of the document with the given key and returns
// how many chunks were removed (0 if the key was not indexed). OnEvict is
// not called: Remove is the caller's own decision, not a cap eviction.
func (ix *Index) Remove(docKey string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.removeLocked(docKey)
}

// removeLocked filters out docKey's chunks in place. Caller holds ix.mu.
// Relative order of the surviving chunks — and therefore document age for
// MaxDocs eviction — is preserved.
func (ix *Index) removeLocked(docKey string) int {
	n := 0
	for i := range ix.chunks {
		if ix.chunks[i].DocKey == docKey {
			continue
		}
		ix.chunks[n] = ix.chunks[i]
		ix.vectors[n] = ix.vectors[i]
		ix.invNorms[n] = ix.invNorms[i]
		n++
	}
	removed := len(ix.chunks) - n
	ix.chunks = ix.chunks[:n]
	ix.vectors = ix.vectors[:n]
	ix.invNorms = ix.invNorms[:n]
	return removed
}

// docCountLocked counts distinct document keys. Caller holds ix.mu.
func (ix *Index) docCountLocked() int {
	seen := make(map[string]struct{}, len(ix.chunks))
	for i := range ix.chunks {
		seen[ix.chunks[i].DocKey] = struct{}{}
	}
	return len(seen)
}

// Docs returns the number of distinct documents in the index.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docCountLocked()
}

// appendChunk embeds and stores one chunk. Caller holds ix.mu.
func (ix *Index) appendChunk(c Chunk) {
	v := embed.Embed(c.Text)
	inv := 0.0
	if n := embed.Norm(v); n > 0 {
		inv = 1 / n
	}
	ix.chunks = append(ix.chunks, c)
	ix.vectors = append(ix.vectors, v)
	ix.invNorms = append(ix.invNorms, inv)
}

// hitHeap is a min-heap of the best k hits seen so far, ordered worst
// first so the weakest candidate is evicted in O(log k). The ordering is
// the exact inverse of the final result order, including tie-breaks, which
// keeps selection deterministic.
type hitHeap []Hit

func (h hitHeap) Len() int      { return len(h) }
func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h hitHeap) Less(i, j int) bool {
	return hitLess(h[j], h[i]) // j ranks better than i => i is worse => i first
}
func (h *hitHeap) Push(x any) { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// hitLess reports whether a ranks strictly better than b: higher score
// first, ties broken deterministically by (doc key, seq).
func hitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Chunk.DocKey != b.Chunk.DocKey {
		return a.Chunk.DocKey < b.Chunk.DocKey
	}
	return a.Chunk.Seq < b.Chunk.Seq
}

// Search returns the k chunks most similar to the query text, best first.
// Ties break deterministically by (doc key, seq). Safe to call from many
// goroutines at once.
func (ix *Index) Search(query string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	qv := embed.Embed(query)
	qinv := 0.0
	if n := embed.Norm(qv); n > 0 {
		qinv = 1 / n
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.chunks) == 0 {
		return nil
	}
	if k > len(ix.chunks) {
		k = len(ix.chunks)
	}
	h := make(hitHeap, 0, k+1)
	for i := range ix.chunks {
		hit := Hit{
			Chunk: ix.chunks[i],
			Score: embed.Dot(qv, ix.vectors[i]) * qinv * ix.invNorms[i],
		}
		if len(h) < k {
			heap.Push(&h, hit)
			continue
		}
		if hitLess(hit, h[0]) {
			h[0] = hit
			heap.Fix(&h, 0)
		}
	}
	out := make([]Hit, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	return out
}

// persisted is the on-disk representation. Vectors are recomputed on load:
// embeddings are deterministic, so storing them would only bloat the file.
type persisted struct {
	ChunkSize int     `json:"chunk_size"`
	Overlap   int     `json:"overlap"`
	MaxDocs   int     `json:"max_docs,omitempty"`
	Chunks    []Chunk `json:"chunks"`
}

// Save writes the index to w as JSON.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(persisted{
		ChunkSize: ix.opts.ChunkSize,
		Overlap:   ix.opts.Overlap,
		MaxDocs:   ix.opts.MaxDocs,
		Chunks:    ix.chunks,
	})
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("vectordb: %w", err)
	}
	overlap := p.Overlap
	if overlap == 0 {
		// The file records the resolved overlap, where 0 really means 0;
		// keep it from being re-defaulted to 20.
		overlap = NoOverlap
	}
	// OnEvict is a process-local callback and is deliberately not part of
	// the file format; callers that bound a loaded index rewire their own.
	ix := New(Options{ChunkSize: p.ChunkSize, Overlap: overlap, MaxDocs: p.MaxDocs})
	ix.mu.Lock()
	for _, c := range p.Chunks {
		ix.appendChunk(c)
	}
	ix.mu.Unlock()
	return ix, nil
}
