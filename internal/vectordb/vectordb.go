package vectordb

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"ioagent/internal/embed"
)

// Document is a source text registered with the index.
type Document struct {
	// Key is the citation key (e.g. "bez2022drishti").
	Key string
	// Title is the human-readable source title.
	Title string
	// Text is the full document body.
	Text string
}

// Chunk is one indexed slice of a document.
type Chunk struct {
	DocKey   string `json:"doc_key"`
	DocTitle string `json:"doc_title"`
	Seq      int    `json:"seq"` // chunk ordinal within the document
	Text     string `json:"text"`
}

// Hit is one retrieval result.
type Hit struct {
	Chunk Chunk
	Score float64 // cosine similarity to the query
}

// NoOverlap requests zero-token overlap between adjacent chunks. The zero
// value of Options.Overlap means "unset" and selects the paper's default of
// 20, so an explicit no-overlap configuration needs a distinct sentinel.
const NoOverlap = -1

// Options configure chunking.
type Options struct {
	ChunkSize int // tokens per chunk (default 512)
	// Overlap is the number of tokens shared between adjacent chunks.
	// 0 means unset and selects the default of 20; pass NoOverlap for an
	// explicit overlap of zero.
	Overlap int
	// MaxDocs, when positive, bounds the number of distinct documents the
	// index retains: an Add that pushes the count beyond the cap evicts the
	// oldest (first-added) documents until the cap holds again, so an index
	// fed an unbounded stream — the fleet's semantic result cache — stays
	// as bounded as the result cache it mirrors. Zero or negative means
	// unbounded (the knowledge-corpus configuration).
	MaxDocs int
	// OnEvict, if set, observes each MaxDocs eviction with the evicted
	// document's key, after the index lock is released. Not persisted by
	// Save; a caller that Loads an index rewires its own callback.
	OnEvict func(docKey string)
	// ANN maintains an HNSW graph over the chunks so Search answers from
	// an approximate-nearest-neighbor walk instead of the exact scan.
	// Brute force remains the exact fallback (and the recall oracle): a
	// query whose k covers the whole index, or a graph that cannot yield k
	// candidates, is answered exactly. Persisted by Save.
	ANN bool
}

func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 512
	}
	switch {
	case o.Overlap == 0:
		o.Overlap = 20
	case o.Overlap < 0: // NoOverlap (or any negative): explicitly none
		o.Overlap = 0
	}
	if o.Overlap >= o.ChunkSize {
		o.Overlap = o.ChunkSize / 4
	}
	return o
}

// Index is an in-memory vector index with exact (brute-force) cosine search
// and, with Options.ANN, an HNSW approximate index behind the same Search.
type Index struct {
	mu      sync.RWMutex
	opts    Options
	chunks  []Chunk
	vectors []embed.Vector
	// invNorms[i] is 1/|vectors[i]| (0 for zero vectors), precomputed at
	// indexing time so concurrent searches never redo per-chunk work.
	invNorms []float64
	// graph is the HNSW index over the same chunk ids, nil unless
	// Options.ANN. Mutated only under mu (write); read under RLock.
	graph *hnswGraph

	annQueries   atomic.Uint64 // searches answered from the HNSW walk
	exactQueries atomic.Uint64 // searches answered by the exact scan
}

// SearchStats counts how searches were answered since the index was built.
type SearchStats struct {
	// ANNQueries answered from the HNSW graph walk.
	ANNQueries uint64
	// ExactQueries answered by the brute-force scan — every query on a
	// non-ANN index, plus the exact fallbacks of an ANN one (k covering
	// the whole index, or a graph walk that came up short).
	ExactQueries uint64
}

// Stats reports how searches have been answered.
func (ix *Index) Stats() SearchStats {
	return SearchStats{ANNQueries: ix.annQueries.Load(), ExactQueries: ix.exactQueries.Load()}
}

// ANN reports whether the index maintains an HNSW graph.
func (ix *Index) ANN() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.graph != nil
}

// New creates an empty index.
func New(opts Options) *Index {
	ix := &Index{opts: opts.withDefaults()}
	if ix.opts.ANN {
		ix.graph = newHNSW()
	}
	return ix
}

// Len returns the number of indexed chunks.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.chunks)
}

// Add chunks and indexes a document. With Options.MaxDocs set, adding past
// the cap evicts the oldest documents (never the one just added) and reports
// each eviction through Options.OnEvict after the lock is released.
func (ix *Index) Add(doc Document) {
	var evicted []string
	ix.mu.Lock()
	words := strings.Fields(doc.Text)
	step := ix.opts.ChunkSize - ix.opts.Overlap
	seq := 0
	for start := 0; start < len(words); start += step {
		end := start + ix.opts.ChunkSize
		if end > len(words) {
			end = len(words)
		}
		text := strings.Join(words[start:end], " ")
		ix.appendChunk(Chunk{
			DocKey: doc.Key, DocTitle: doc.Title, Seq: seq, Text: text,
		})
		seq++
		if end == len(words) {
			break
		}
	}
	if ix.opts.MaxDocs > 0 {
		for ix.docCountLocked() > ix.opts.MaxDocs {
			oldest := ix.chunks[0].DocKey
			ix.removeLocked(oldest)
			evicted = append(evicted, oldest)
		}
	}
	ix.mu.Unlock()
	if ix.opts.OnEvict != nil {
		for _, k := range evicted {
			ix.opts.OnEvict(k)
		}
	}
}

// Remove drops every chunk of the document with the given key and returns
// how many chunks were removed (0 if the key was not indexed). OnEvict is
// not called: Remove is the caller's own decision, not a cap eviction.
func (ix *Index) Remove(docKey string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.removeLocked(docKey)
}

// removeLocked filters out docKey's chunks in place. Caller holds ix.mu.
// Relative order of the surviving chunks — and therefore document age for
// MaxDocs eviction — is preserved. With ANN on, removal compacts chunk ids,
// so the HNSW graph is rebuilt over the survivors rather than patched.
func (ix *Index) removeLocked(docKey string) int {
	n := 0
	for i := range ix.chunks {
		if ix.chunks[i].DocKey == docKey {
			continue
		}
		ix.chunks[n] = ix.chunks[i]
		ix.vectors[n] = ix.vectors[i]
		ix.invNorms[n] = ix.invNorms[i]
		n++
	}
	removed := len(ix.chunks) - n
	ix.chunks = ix.chunks[:n]
	ix.vectors = ix.vectors[:n]
	ix.invNorms = ix.invNorms[:n]
	if removed > 0 && ix.graph != nil {
		ix.rebuildGraphLocked()
	}
	return removed
}

// rebuildGraphLocked reconstructs the HNSW graph from the current chunk
// slices. Caller holds ix.mu.
func (ix *Index) rebuildGraphLocked() {
	ix.graph = newHNSW()
	for i := range ix.chunks {
		ix.graph.insert(ix, i)
	}
}

// docCountLocked counts distinct document keys. Caller holds ix.mu.
func (ix *Index) docCountLocked() int {
	seen := make(map[string]struct{}, len(ix.chunks))
	for i := range ix.chunks {
		seen[ix.chunks[i].DocKey] = struct{}{}
	}
	return len(seen)
}

// Docs returns the number of distinct documents in the index.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docCountLocked()
}

// appendChunk embeds and stores one chunk, inserting it into the HNSW
// graph when ANN is on. Caller holds ix.mu.
func (ix *Index) appendChunk(c Chunk) {
	v := embed.Embed(c.Text)
	inv := 0.0
	if n := embed.Norm(v); n > 0 {
		inv = 1 / n
	}
	ix.chunks = append(ix.chunks, c)
	ix.vectors = append(ix.vectors, v)
	ix.invNorms = append(ix.invNorms, inv)
	if ix.graph != nil {
		ix.graph.insert(ix, len(ix.chunks)-1)
	}
}

// hitHeap is a min-heap of the best k hits seen so far, ordered worst
// first so the weakest candidate is evicted in O(log k). The ordering is
// the exact inverse of the final result order, including tie-breaks, which
// keeps selection deterministic.
type hitHeap []Hit

func (h hitHeap) Len() int      { return len(h) }
func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h hitHeap) Less(i, j int) bool {
	return hitLess(h[j], h[i]) // j ranks better than i => i is worse => i first
}
func (h *hitHeap) Push(x any) { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// hitLess reports whether a ranks strictly better than b: higher score
// first, ties broken deterministically by (doc key, seq).
func hitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Chunk.DocKey != b.Chunk.DocKey {
		return a.Chunk.DocKey < b.Chunk.DocKey
	}
	return a.Chunk.Seq < b.Chunk.Seq
}

// Search returns the k chunks most similar to the query text, best first.
// Ties break deterministically by (doc key, seq). Safe to call from many
// goroutines at once.
//
// With Options.ANN the answer comes from the HNSW graph walk; a query
// whose k covers the whole index (where only the exact scan can honor the
// deterministic full ordering) or whose walk yields fewer than k
// candidates falls back to the exact scan.
func (ix *Index) Search(query string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	qv := embed.Embed(query)
	qinv := 0.0
	if n := embed.Norm(qv); n > 0 {
		qinv = 1 / n
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.chunks) == 0 {
		return nil
	}
	if k > len(ix.chunks) {
		k = len(ix.chunks)
	}
	if ix.graph != nil && k < len(ix.chunks) {
		if out := ix.searchANNLocked(qv, qinv, k); out != nil {
			ix.annQueries.Add(1)
			return out
		}
	}
	ix.exactQueries.Add(1)
	h := make(hitHeap, 0, k+1)
	for i := range ix.chunks {
		hit := Hit{
			Chunk: ix.chunks[i],
			Score: embed.Dot(qv, ix.vectors[i]) * qinv * ix.invNorms[i],
		}
		if len(h) < k {
			heap.Push(&h, hit)
			continue
		}
		if hitLess(hit, h[0]) {
			h[0] = hit
			heap.Fix(&h, 0)
		}
	}
	out := make([]Hit, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	return out
}

// persisted is the on-disk representation. Vectors are recomputed on load:
// embeddings are deterministic, so storing them would only bloat the file.
// The HNSW graph, by contrast, is persisted (adjacency is cheap next to
// text, and rebuilding it is the expensive part of a load); a file whose
// graph is missing or inconsistent rebuilds it instead of failing.
type persisted struct {
	ChunkSize int        `json:"chunk_size"`
	Overlap   int        `json:"overlap"`
	MaxDocs   int        `json:"max_docs,omitempty"`
	ANN       bool       `json:"ann,omitempty"`
	Chunks    []Chunk    `json:"chunks"`
	Graph     *hnswGraph `json:"graph,omitempty"`
}

// Save writes the index to w as JSON.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(persisted{
		ChunkSize: ix.opts.ChunkSize,
		Overlap:   ix.opts.Overlap,
		MaxDocs:   ix.opts.MaxDocs,
		ANN:       ix.graph != nil,
		Chunks:    ix.chunks,
		Graph:     ix.graph,
	})
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("vectordb: %w", err)
	}
	overlap := p.Overlap
	if overlap == 0 {
		// The file records the resolved overlap, where 0 really means 0;
		// keep it from being re-defaulted to 20.
		overlap = NoOverlap
	}
	// OnEvict is a process-local callback and is deliberately not part of
	// the file format; callers that bound a loaded index rewire their own.
	// The graph is attached (or rebuilt) after the chunks land, so
	// appendChunk does not redo insertions the file already carries.
	ix := New(Options{ChunkSize: p.ChunkSize, Overlap: overlap, MaxDocs: p.MaxDocs})
	ix.opts.ANN = p.ANN
	ix.mu.Lock()
	for _, c := range p.Chunks {
		ix.appendChunk(c)
	}
	if p.ANN {
		if p.Graph != nil && p.Graph.valid(len(ix.chunks)) {
			ix.graph = p.Graph
		} else {
			ix.rebuildGraphLocked()
		}
	}
	ix.mu.Unlock()
	return ix, nil
}

// Clone returns a deep, independent copy of the index: subsequent Add or
// Remove calls on either side do not affect the other. The knowledge
// plane's staged-epoch builder uses this to derive the next epoch's index
// from the current one and apply only the document delta.
func (ix *Index) Clone() *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	c := &Index{opts: ix.opts}
	c.chunks = append([]Chunk(nil), ix.chunks...)
	c.vectors = append([]embed.Vector(nil), ix.vectors...)
	c.invNorms = append([]float64(nil), ix.invNorms...)
	if ix.graph != nil {
		c.graph = ix.graph.clone()
	}
	return c
}
