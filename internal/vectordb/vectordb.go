// Package vectordb implements the vector index the paper builds with
// LlamaIndex: documents are split into fixed-size token chunks with overlap,
// each chunk is embedded, and queries retrieve the top-k chunks by cosine
// similarity. The paper's hyperparameters are the defaults here: chunk size
// 512 tokens, overlap 20, cosine distance.
package vectordb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ioagent/internal/embed"
)

// Document is a source text registered with the index.
type Document struct {
	// Key is the citation key (e.g. "bez2022drishti").
	Key string
	// Title is the human-readable source title.
	Title string
	// Text is the full document body.
	Text string
}

// Chunk is one indexed slice of a document.
type Chunk struct {
	DocKey   string `json:"doc_key"`
	DocTitle string `json:"doc_title"`
	Seq      int    `json:"seq"` // chunk ordinal within the document
	Text     string `json:"text"`
}

// Hit is one retrieval result.
type Hit struct {
	Chunk Chunk
	Score float64 // cosine similarity to the query
}

// Options configure chunking.
type Options struct {
	ChunkSize int // tokens per chunk (default 512)
	Overlap   int // tokens shared between adjacent chunks (default 20)
}

func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 512
	}
	if o.Overlap < 0 {
		o.Overlap = 0
	}
	if o.Overlap >= o.ChunkSize {
		o.Overlap = o.ChunkSize / 4
	}
	return o
}

// Index is an in-memory vector index with exact (brute-force) cosine search.
type Index struct {
	opts    Options
	chunks  []Chunk
	vectors []embed.Vector
}

// New creates an empty index.
func New(opts Options) *Index {
	return &Index{opts: opts.withDefaults()}
}

// Len returns the number of indexed chunks.
func (ix *Index) Len() int { return len(ix.chunks) }

// Add chunks and indexes a document.
func (ix *Index) Add(doc Document) {
	words := strings.Fields(doc.Text)
	step := ix.opts.ChunkSize - ix.opts.Overlap
	seq := 0
	for start := 0; start < len(words); start += step {
		end := start + ix.opts.ChunkSize
		if end > len(words) {
			end = len(words)
		}
		text := strings.Join(words[start:end], " ")
		ix.chunks = append(ix.chunks, Chunk{
			DocKey: doc.Key, DocTitle: doc.Title, Seq: seq, Text: text,
		})
		ix.vectors = append(ix.vectors, embed.Embed(text))
		seq++
		if end == len(words) {
			break
		}
	}
}

// Search returns the k chunks most similar to the query text, best first.
// Ties break deterministically by (doc key, seq).
func (ix *Index) Search(query string, k int) []Hit {
	if k <= 0 || len(ix.chunks) == 0 {
		return nil
	}
	qv := embed.Embed(query)
	hits := make([]Hit, len(ix.chunks))
	for i := range ix.chunks {
		hits[i] = Hit{Chunk: ix.chunks[i], Score: embed.Cosine(qv, ix.vectors[i])}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Chunk.DocKey != hits[j].Chunk.DocKey {
			return hits[i].Chunk.DocKey < hits[j].Chunk.DocKey
		}
		return hits[i].Chunk.Seq < hits[j].Chunk.Seq
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

// persisted is the on-disk representation. Vectors are recomputed on load:
// embeddings are deterministic, so storing them would only bloat the file.
type persisted struct {
	ChunkSize int     `json:"chunk_size"`
	Overlap   int     `json:"overlap"`
	Chunks    []Chunk `json:"chunks"`
}

// Save writes the index to w as JSON.
func (ix *Index) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(persisted{
		ChunkSize: ix.opts.ChunkSize,
		Overlap:   ix.opts.Overlap,
		Chunks:    ix.chunks,
	})
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("vectordb: %w", err)
	}
	ix := New(Options{ChunkSize: p.ChunkSize, Overlap: p.Overlap})
	ix.chunks = p.Chunks
	ix.vectors = make([]embed.Vector, len(p.Chunks))
	for i, c := range p.Chunks {
		ix.vectors[i] = embed.Embed(c.Text)
	}
	return ix, nil
}
