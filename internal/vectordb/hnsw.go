package vectordb

// Hierarchical Navigable Small World (HNSW) graph: the approximate index
// behind Search when Options.ANN is set. The graph lives beside the
// Index's parallel chunk slices and addresses chunks by slice position, so
// it stores adjacency only — vectors and norms stay where the exact scan
// already keeps them.
//
// Two departures from the textbook algorithm keep the index deterministic,
// which the rest of the system (result caching, replayed diagnoses,
// concurrent-search tests) requires:
//
//   - Level assignment hashes the chunk identity (doc key, seq) through
//     FNV-1a into the usual geometric distribution instead of drawing from
//     a PRNG, so the same documents always build the same graph.
//   - Every candidate ordering breaks similarity ties by ascending chunk
//     id, so walks never depend on map iteration or insertion races.
//
// Search quality is tuned for the repo's workloads (the 66-doc corpus and
// 10k-doc synthetic epochs): M=16 neighbors, efConstruction=80,
// efSearch=max(256, 4k). Recall@15 against the exact scan is property-
// tested at ≥ 0.95 in hnsw_test.go.

import (
	"hash/fnv"
	"math"
	"strconv"

	"ioagent/internal/embed"
)

const (
	// hnswM bounds neighbors per node per layer (layer 0 gets 2M).
	hnswM = 16
	// hnswEfBuild is the candidate-list width during insertion.
	hnswEfBuild = 80
	// hnswEfSearch is the minimum candidate-list width during search; the
	// effective width is max(hnswEfSearch, 4k).
	hnswEfSearch = 256
)

// hnswNode is one graph node; its id is its position in Index.chunks.
type hnswNode struct {
	Level     int       `json:"level"`
	Neighbors [][]int32 `json:"neighbors"` // Neighbors[l] = adjacent ids at layer l
}

// hnswGraph is the adjacency structure, JSON-persisted by Index.Save.
type hnswGraph struct {
	Entry    int32      `json:"entry"` // entry point id; -1 when empty
	MaxLevel int        `json:"max_level"`
	Nodes    []hnswNode `json:"nodes"`
}

func newHNSW() *hnswGraph {
	return &hnswGraph{Entry: -1}
}

// valid reports whether a deserialized graph is structurally consistent
// with an index of n chunks; an inconsistent graph is rebuilt, not trusted.
func (g *hnswGraph) valid(n int) bool {
	if len(g.Nodes) != n || n == 0 {
		return len(g.Nodes) == n && g.Entry == -1
	}
	if g.Entry < 0 || int(g.Entry) >= n {
		return false
	}
	for i := range g.Nodes {
		node := &g.Nodes[i]
		if node.Level < 0 || len(node.Neighbors) != node.Level+1 {
			return false
		}
		for _, layer := range node.Neighbors {
			for _, id := range layer {
				if id < 0 || int(id) >= n {
					return false
				}
			}
		}
	}
	return true
}

// clone deep-copies the graph.
func (g *hnswGraph) clone() *hnswGraph {
	c := &hnswGraph{Entry: g.Entry, MaxLevel: g.MaxLevel, Nodes: make([]hnswNode, len(g.Nodes))}
	for i, n := range g.Nodes {
		nn := hnswNode{Level: n.Level, Neighbors: make([][]int32, len(n.Neighbors))}
		for l, layer := range n.Neighbors {
			nn.Neighbors[l] = append([]int32(nil), layer...)
		}
		c.Nodes[i] = nn
	}
	return c
}

// chunkLevel derives the node's top layer from the chunk identity: a
// deterministic stand-in for the paper's geometric draw with
// mL = 1/ln(M).
func chunkLevel(key string, seq int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(seq)))
	// Map the top 53 bits to u in (0, 1], then invert the geometric CDF.
	u := (float64(h.Sum64()>>11) + 1) / float64(uint64(1)<<53)
	return int(-math.Log(u) / math.Log(hnswM))
}

// scored pairs a node id with its similarity to the probe; ordering is
// similarity-descending with ascending-id tie-break, everywhere.
type scored struct {
	id  int32
	sim float64
}

func scoredBetter(a, b scored) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	return a.id < b.id
}

// scoredHeap is a binary heap over scored entries. With max=true the best
// entry is at the root (candidate frontier); with max=false the worst is
// (bounded result set, so the weakest is evicted in O(log n)).
type scoredHeap struct {
	s   []scored
	max bool
}

func (h *scoredHeap) less(i, j int) bool {
	if h.max {
		return scoredBetter(h.s[i], h.s[j])
	}
	return scoredBetter(h.s[j], h.s[i])
}

func (h *scoredHeap) push(e scored) {
	h.s = append(h.s, e)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *scoredHeap) pop() scored {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.s) && h.less(l, best) {
			best = l
		}
		if r < len(h.s) && h.less(r, best) {
			best = r
		}
		if best == i {
			return top
		}
		h.s[i], h.s[best] = h.s[best], h.s[i]
		i = best
	}
}

// insert adds chunk id (already present in ix.chunks/vectors/invNorms) to
// the graph. Caller holds ix.mu.
func (g *hnswGraph) insert(ix *Index, id int) {
	level := chunkLevel(ix.chunks[id].DocKey, ix.chunks[id].Seq)
	node := hnswNode{Level: level, Neighbors: make([][]int32, level+1)}
	g.Nodes = append(g.Nodes, node)
	if g.Entry < 0 {
		g.Entry = int32(id)
		g.MaxLevel = level
		return
	}

	sim := func(j int32) float64 {
		return embed.Dot(ix.vectors[id], ix.vectors[j]) * ix.invNorms[id] * ix.invNorms[j]
	}

	cur := g.Entry
	for l := g.MaxLevel; l > level; l-- {
		cur = g.greedy(sim, cur, l)
	}
	top := level
	if g.MaxLevel < top {
		top = g.MaxLevel
	}
	eps := []int32{cur}
	for l := top; l >= 0; l-- {
		cands := g.searchLayer(ix, sim, eps, hnswEfBuild, l, int32(id))
		maxN := hnswM
		if l == 0 {
			maxN = 2 * hnswM
		}
		nbrs := make([]int32, 0, hnswM)
		for _, c := range cands {
			if len(nbrs) == hnswM {
				break
			}
			nbrs = append(nbrs, c.id)
		}
		g.Nodes[id].Neighbors[l] = nbrs
		for _, nb := range nbrs {
			g.link(ix, nb, int32(id), l, maxN)
		}
		eps = eps[:0]
		for _, c := range cands {
			eps = append(eps, c.id)
		}
	}
	if level > g.MaxLevel {
		g.MaxLevel = level
		g.Entry = int32(id)
	}
}

// link makes nb a neighbor of at on layer l, pruning at's list back to
// maxN by similarity to at when it overflows.
func (g *hnswGraph) link(ix *Index, at, nb int32, l, maxN int) {
	lst := append(g.Nodes[at].Neighbors[l], nb)
	if len(lst) > maxN {
		simAt := func(j int32) float64 {
			return embed.Dot(ix.vectors[at], ix.vectors[j]) * ix.invNorms[at] * ix.invNorms[j]
		}
		entries := make([]scored, len(lst))
		for i, id := range lst {
			entries[i] = scored{id: id, sim: simAt(id)}
		}
		// Selection sort down to maxN: lists are tiny (≤ 2M+1).
		for i := 0; i < maxN; i++ {
			best := i
			for j := i + 1; j < len(entries); j++ {
				if scoredBetter(entries[j], entries[best]) {
					best = j
				}
			}
			entries[i], entries[best] = entries[best], entries[i]
		}
		lst = lst[:0]
		for i := 0; i < maxN; i++ {
			lst = append(lst, entries[i].id)
		}
	}
	g.Nodes[at].Neighbors[l] = lst
}

// greedy walks layer l from start to the local similarity maximum.
func (g *hnswGraph) greedy(sim func(int32) float64, start int32, l int) int32 {
	cur, best := start, sim(start)
	for {
		improved := false
		for _, nb := range g.Nodes[cur].Neighbors[l] {
			if s := sim(nb); s > best || (s == best && nb < cur) {
				best, cur, improved = s, nb, true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer runs the bounded best-first walk on layer l from the entry
// points, returning up to ef candidates best-first. skip (or -1) excludes
// the node being inserted from its own candidate set.
func (g *hnswGraph) searchLayer(ix *Index, sim func(int32) float64, eps []int32, ef, l int, skip int32) []scored {
	visited := make([]bool, len(g.Nodes))
	frontier := scoredHeap{max: true}
	results := scoredHeap{max: false}
	for _, ep := range eps {
		if visited[ep] || ep == skip {
			continue
		}
		visited[ep] = true
		e := scored{id: ep, sim: sim(ep)}
		frontier.push(e)
		results.push(e)
	}
	for len(frontier.s) > 0 {
		c := frontier.pop()
		if len(results.s) >= ef && scoredBetter(results.s[0], c) {
			break // the frontier's best cannot improve the result set
		}
		for _, nb := range g.Nodes[c.id].Neighbors[l] {
			if visited[nb] || nb == skip {
				continue
			}
			visited[nb] = true
			e := scored{id: nb, sim: sim(nb)}
			if len(results.s) < ef {
				frontier.push(e)
				results.push(e)
			} else if scoredBetter(e, results.s[0]) {
				frontier.push(e)
				results.pop()
				results.push(e)
			}
		}
	}
	out := make([]scored, len(results.s))
	for i := len(results.s) - 1; i >= 0; i-- {
		out[i] = results.pop()
	}
	return out
}

// searchANNLocked answers one query from the graph walk: greedy descent
// through the upper layers, a bounded best-first walk on layer 0, exact
// rescoring of the surviving candidates. It returns nil when the walk
// yields fewer than k candidates (a pruning-starved or degenerate graph),
// signaling Search to fall back to the exact scan. Caller holds ix.mu
// (read); the graph is never mutated here.
func (ix *Index) searchANNLocked(qv embed.Vector, qinv float64, k int) []Hit {
	g := ix.graph
	if g.Entry < 0 {
		return nil
	}
	sim := func(j int32) float64 {
		return embed.Dot(qv, ix.vectors[j]) * qinv * ix.invNorms[j]
	}
	ef := hnswEfSearch
	if 4*k > ef {
		ef = 4 * k
	}
	cur := g.Entry
	for l := g.MaxLevel; l > 0; l-- {
		cur = g.greedy(sim, cur, l)
	}
	cands := g.searchLayer(ix, sim, []int32{cur}, ef, 0, -1)
	if len(cands) < k {
		return nil
	}
	// Exact rescoring: candidate sims were already computed against the
	// true vectors, so this is just materialization in hitLess order.
	hits := make([]Hit, len(cands))
	for i, c := range cands {
		hits[i] = Hit{Chunk: ix.chunks[c.id], Score: c.sim}
	}
	// cands are similarity-ordered with id tie-breaks; hitLess orders by
	// (score, doc key, seq). Re-sort the short candidate list to match the
	// exact scan's contract bit-for-bit.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hitLess(hits[j], hits[j-1]); j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	return hits[:k]
}
