package vectordb

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// synthVocab is the word pool for synthetic documents: I/O-domain terms so
// embeddings carry the same kind of signal the real corpus does.
var synthVocab = []string{
	"write", "read", "bandwidth", "stripe", "metadata", "collective",
	"aggregate", "request", "alignment", "lustre", "server", "latency",
	"buffer", "cache", "shared", "file", "lock", "contention", "small",
	"large", "sequential", "random", "rank", "straggler", "burst",
	"checkpoint", "throughput", "offset", "block", "transfer", "storage",
	"parallel", "posix", "mpiio", "hdf5", "daemon", "journal", "queue",
}

// synthDocs builds n deterministic synthetic documents of w words each,
// using a small LCG so the test never touches math/rand's global state.
func synthDocs(n, w int, seed uint64) []Document {
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	docs := make([]Document, n)
	for i := range docs {
		words := make([]string, w)
		for j := range words {
			words[j] = synthVocab[next()%uint64(len(synthVocab))]
		}
		docs[i] = Document{
			Key:   fmt.Sprintf("synth%04d", i),
			Title: fmt.Sprintf("Synthetic %d", i),
			Text:  strings.Join(words, " "),
		}
	}
	return docs
}

// synthQueries derives deterministic queries by sampling document prefixes
// and shuffling in vocabulary terms, so queries are near but not equal to
// indexed text.
func synthQueries(docs []Document, n int) []string {
	qs := make([]string, 0, n)
	for i := 0; len(qs) < n; i++ {
		words := strings.Fields(docs[i%len(docs)].Text)
		take := 8 + i%5
		if take > len(words) {
			take = len(words)
		}
		qs = append(qs, strings.Join(words[:take], " ")+" "+synthVocab[i%len(synthVocab)])
	}
	return qs
}

func buildPair(docs []Document, opts Options) (brute, ann *Index) {
	brute = New(opts)
	annOpts := opts
	annOpts.ANN = true
	ann = New(annOpts)
	for _, d := range docs {
		brute.Add(d)
		ann.Add(d)
	}
	return brute, ann
}

// TestHNSWRecallSynthetic property-tests recall@15 ≥ 0.95 against the
// exact scan over several deterministic synthetic corpora — the brute
// index is the recall oracle the ANN index is held to.
func TestHNSWRecallSynthetic(t *testing.T) {
	for _, n := range []int{40, 120, 400} {
		docs := synthDocs(n, 60, uint64(n))
		brute, ann := buildPair(docs, Options{ChunkSize: 512, Overlap: 20})
		const k = 15
		var got, want int
		for _, q := range synthQueries(docs, 30) {
			exact := brute.Search(q, k)
			approx := ann.Search(q, k)
			if len(approx) != len(exact) {
				t.Fatalf("n=%d: ANN returned %d hits, exact %d", n, len(approx), len(exact))
			}
			keys := make(map[string]bool, len(exact))
			for _, h := range exact {
				keys[h.Chunk.DocKey+"#"+fmt.Sprint(h.Chunk.Seq)] = true
			}
			for _, h := range approx {
				if keys[h.Chunk.DocKey+"#"+fmt.Sprint(h.Chunk.Seq)] {
					got++
				}
			}
			want += len(exact)
		}
		recall := float64(got) / float64(want)
		if recall < 0.95 {
			t.Errorf("n=%d: recall@%d = %.3f, want >= 0.95", n, k, recall)
		}
	}
}

// TestHNSWDeterministicBuild pins that two indexes fed the same documents
// answer identically — level assignment is hashed, not drawn.
func TestHNSWDeterministicBuild(t *testing.T) {
	docs := synthDocs(80, 40, 7)
	_, a := buildPair(docs, Options{})
	_, b := buildPair(docs, Options{})
	for _, q := range synthQueries(docs, 10) {
		ha, hb := a.Search(q, 10), b.Search(q, 10)
		if len(ha) != len(hb) {
			t.Fatalf("result lengths differ: %d vs %d", len(ha), len(hb))
		}
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("rank %d differs: %+v vs %+v", i, ha[i], hb[i])
			}
		}
	}
}

// TestHNSWSaveLoadGraph round-trips an ANN index and checks the loaded
// copy both preserves results and keeps answering from the graph.
func TestHNSWSaveLoadGraph(t *testing.T) {
	docs := synthDocs(60, 40, 3)
	_, ann := buildPair(docs, Options{})
	var buf bytes.Buffer
	if err := ann.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !back.ANN() {
		t.Fatal("loaded index lost its ANN graph")
	}
	for _, q := range synthQueries(docs, 8) {
		a, b := ann.Search(q, 5), back.Search(q, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %q rank %d differs after round trip", q, i)
			}
		}
	}
	if st := back.Stats(); st.ANNQueries == 0 {
		t.Errorf("loaded index answered no queries from the graph: %+v", st)
	}
	// A file with a mangled graph must rebuild, not fail or mis-answer.
	var buf2 bytes.Buffer
	if err := ann.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(buf2.Bytes(), []byte(`"entry":`), []byte(`"entry":999999,"x":`), 1)
	rebuilt, err := Load(bytes.NewReader(mangled))
	if err != nil {
		t.Fatalf("Load with mangled graph: %v", err)
	}
	if !rebuilt.ANN() {
		t.Error("mangled graph should be rebuilt, not dropped")
	}
	a, b := ann.Search("stripe aligned write bandwidth", 5), rebuilt.Search("stripe aligned write bandwidth", 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rebuilt graph diverges at rank %d", i)
		}
	}
}

// TestHNSWRemoveRebuild checks Remove keeps the graph consistent with the
// surviving chunks.
func TestHNSWRemoveRebuild(t *testing.T) {
	docs := synthDocs(50, 40, 11)
	brute, ann := buildPair(docs, Options{})
	for _, key := range []string{"synth0003", "synth0017", "synth0042"} {
		if brute.Remove(key) == 0 {
			t.Fatalf("brute index did not contain %s", key)
		}
		if ann.Remove(key) == 0 {
			t.Fatalf("ANN index did not contain %s", key)
		}
	}
	for _, q := range synthQueries(docs, 10) {
		exact := brute.Search(q, 10)
		approx := ann.Search(q, 10)
		for _, h := range approx {
			switch h.Chunk.DocKey {
			case "synth0003", "synth0017", "synth0042":
				t.Fatalf("removed doc %s still retrievable from ANN index", h.Chunk.DocKey)
			}
		}
		if len(approx) != len(exact) {
			t.Fatalf("lengths differ after removal: %d vs %d", len(approx), len(exact))
		}
	}
}

// TestRemoveSaveLoadSearchInterleaved drives Remove / Save / Load / Search
// interleavings under concurrent readers; run under -race in CI.
func TestRemoveSaveLoadSearchInterleaved(t *testing.T) {
	for _, annOn := range []bool{false, true} {
		docs := synthDocs(40, 30, 5)
		ix := New(Options{ANN: annOn})
		for _, d := range docs {
			ix.Add(d)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				qs := synthQueries(docs, 6)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					hits := ix.Search(qs[i%len(qs)], 5)
					for _, h := range hits {
						if h.Chunk.DocKey == "" {
							t.Error("empty hit under concurrency")
							return
						}
					}
				}
			}(r)
		}
		var loaded *Index
		for i := 0; i < 10; i++ {
			ix.Remove(fmt.Sprintf("synth%04d", i))
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatalf("Save during concurrency: %v", err)
			}
			back, err := Load(&buf)
			if err != nil {
				t.Fatalf("Load during concurrency: %v", err)
			}
			loaded = back
			if got := back.Search("stripe write bandwidth", 3); len(got) == 0 {
				t.Fatal("loaded index answered no hits")
			}
		}
		close(stop)
		wg.Wait()
		if loaded.Docs() != 30 {
			t.Errorf("ann=%v: %d docs after 10 removals, want 30", annOn, loaded.Docs())
		}
	}
}
