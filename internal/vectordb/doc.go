// Package vectordb implements the vector index the paper builds with
// LlamaIndex: documents are split into fixed-size token chunks with overlap,
// each chunk is embedded, and queries retrieve the top-k chunks by cosine
// similarity. The paper's hyperparameters are the defaults here: chunk size
// 512 tokens, overlap 20, cosine distance.
//
// The index is safe for concurrent use: Add and Load take a write lock,
// Search takes a read lock, so a fleet of diagnosis workers can share one
// index and query it in parallel. Chunk norms are computed once at indexing
// time, so a query costs one embedding plus one dot product per chunk, and
// top-k selection uses a bounded heap rather than sorting the full corpus.
//
// # Persistence
//
// Save/Load serialize the index as JSON with an important asymmetry: only
// chunks are stored, never vectors — embeddings are deterministic, so they
// are recomputed on Load rather than bloating the file. This
// JSON-plus-recompute pattern is the model for the fleet result-cache
// snapshot in internal/fleet/store, which likewise persists canonical text
// and rebuilds derived structures on recovery. Note that Save writes plain
// JSON to the supplied writer; callers that need crash-safe replacement of
// an existing file should write to a temp file and rename, as
// internal/fleet/store does.
package vectordb
