package vectordb_test

import (
	"bytes"
	"fmt"

	"ioagent/internal/vectordb"
)

// Indexing two documents and querying retrieves the topically closest one.
func ExampleIndex_Search() {
	ix := vectordb.New(vectordb.Options{ChunkSize: 32, Overlap: vectordb.NoOverlap})
	ix.Add(vectordb.Document{
		Key:   "smallio",
		Title: "Small Write Aggregation",
		Text:  "small writes below the stripe size collapse lustre throughput; aggregate them into larger sequential requests",
	})
	ix.Add(vectordb.Document{
		Key:   "metadata",
		Title: "Metadata Scaling",
		Text:  "metadata operations overload the mds when every rank opens its own file; use fewer opens and stats",
	})
	hits := ix.Search("many tiny write requests hurt performance", 1)
	fmt.Println(hits[0].Chunk.DocKey)
	// Output: smallio
}

// Save persists chunks only; vectors are deterministic and recomputed on
// Load, so the file stays small and the loaded index answers identically.
func ExampleLoad() {
	ix := vectordb.New(vectordb.Options{})
	ix.Add(vectordb.Document{Key: "doc", Title: "Doc", Text: "collective buffering aligns aggregator writes to stripe boundaries"})

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := vectordb.Load(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(loaded.Len() == ix.Len())
	fmt.Println(loaded.Search("stripe aligned writes", 1)[0].Chunk.DocKey)
	// Output:
	// true
	// doc
}
