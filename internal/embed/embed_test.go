package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("The application wrote 49152 small I/O requests to /scratch!")
	want := map[string]bool{"application": true, "wrote": true, "small": true,
		"i": true, "o": true, "requests": true, "scratch": true}
	for _, tok := range toks {
		if !want[tok] {
			t.Errorf("unexpected token %q", tok)
		}
	}
	for _, tok := range toks {
		if tok == "the" || tok == "to" || tok == "49152" {
			t.Errorf("stopword/number %q not filtered", tok)
		}
	}
}

func TestEmbedNormalized(t *testing.T) {
	v := Embed("collective I/O merges small requests into large transfers")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-4 {
		t.Errorf("embedding norm^2 = %g, want 1", norm)
	}
}

func TestEmbedEmpty(t *testing.T) {
	v := Embed("")
	if Cosine(v, v) != 0 {
		t.Error("empty text should embed to the zero vector")
	}
}

func TestSelfSimilarity(t *testing.T) {
	text := "small write requests degrade bandwidth on parallel file systems"
	if got := Cosine(Embed(text), Embed(text)); math.Abs(got-1) > 1e-4 {
		t.Errorf("self cosine = %g, want 1", got)
	}
}

func TestTopicalLocality(t *testing.T) {
	frag := "85% of write requests transfer fewer than 1 MB, which classifies them as small writes; aggregating writes would improve bandwidth"
	smallDoc := "small write requests amplify per-operation latency; applications should aggregate small writes into larger buffers before flushing to recover write bandwidth"
	metaDoc := "file create open stat and unlink operations serialize at the metadata server; metadata-bound jobs should aggregate files into containers"

	simSmall := Cosine(Embed(frag), Embed(smallDoc))
	simMeta := Cosine(Embed(frag), Embed(metaDoc))
	if simSmall <= simMeta {
		t.Errorf("small-write fragment should be closer to small-write doc: %g vs %g", simSmall, simMeta)
	}
}

func TestNaturalLanguageAlignsBetterThanJSON(t *testing.T) {
	// The paper's Fig. 3 rationale: the NL rendition of a summary matches
	// literature better than the raw JSON.
	jsonFrag := `{"module":"POSIX","category":"io_size","small_write_fraction":0.85,"write_hist_0_100":0.85}`
	nlFrag := "85% of write requests transfer fewer than 1 MB, which classifies them as small writes. The value of 0.85 in the 0 to 100 bin indicates that 85% of the write operations fall within the 0 bytes to 100 bytes range."
	doc := "jobs whose write request sizes fall predominantly under 100 KB achieve less than 15 percent of attainable bandwidth; small write requests amplify per-operation latency; aggregate small writes into buffers before flushing"

	simJSON := Cosine(Embed(jsonFrag), Embed(doc))
	simNL := Cosine(Embed(nlFrag), Embed(doc))
	if simNL <= simJSON {
		t.Errorf("NL fragment should retrieve better than JSON: NL %g vs JSON %g", simNL, simJSON)
	}
}

func TestCosineDeterministic(t *testing.T) {
	f := func(a, b string) bool {
		return Cosine(Embed(a), Embed(b)) == Cosine(Embed(a), Embed(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineBounded(t *testing.T) {
	f := func(a, b string) bool {
		c := Cosine(Embed(a), Embed(b))
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
