// Package embed provides deterministic text embeddings, standing in for the
// OpenAI text-embedding-3-large model the paper uses.
//
// The embedding is a hashed bag of unigrams and bigrams: each term is hashed
// into a fixed-dimension vector with a signed weight, term frequencies are
// dampened sub-linearly, and the result is L2-normalized. This preserves the
// one property retrieval needs — texts about the same topic land near each
// other under cosine similarity — while being fully reproducible offline.
package embed

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// Dim is the embedding dimensionality.
const Dim = 384

// Vector is a Dim-dimensional embedding.
type Vector [Dim]float32

// stopwords are excluded from the term stream; they carry no topical signal
// and would otherwise dominate similarity between any two English texts.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"have": true, "in": true, "is": true, "it": true, "its": true,
	"of": true, "on": true, "or": true, "that": true, "the": true,
	"this": true, "to": true, "was": true, "were": true, "with": true,
	"which": true, "when": true, "where": true, "will": true, "can": true,
	"such": true, "these": true, "those": true, "than": true, "then": true,
	"into": true, "over": true, "per": true, "we": true, "our": true,
}

// Tokenize lower-cases text and splits it into alphanumeric terms, dropping
// stopwords and bare numbers (numeric values are trace-specific and would
// pollute topical similarity).
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if stopwords[tok] || isNumeric(tok) {
			return
		}
		tokens = append(tokens, tok)
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

func isNumeric(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// Embed computes the embedding of text. The zero vector is returned for
// texts with no usable terms.
//
// Accumulation runs in first-occurrence term order, never map order: when
// two terms hash to the same dimension, float32 addition order changes the
// low bits, and everything downstream (Save/Load score stability, the ANN
// index's exact-fallback equality) requires Embed to be bit-deterministic.
func Embed(text string) Vector {
	var v Vector
	tokens := Tokenize(text)
	counts := make(map[string]int, len(tokens)*2)
	order := make([]string, 0, len(tokens)*2)
	add := func(term string) {
		if counts[term] == 0 {
			order = append(order, term)
		}
		counts[term]++
	}
	for i, t := range tokens {
		add(t)
		if i+1 < len(tokens) {
			add(t + "_" + tokens[i+1])
		}
	}
	for _, term := range order {
		n := counts[term]
		w := float32(1 + math.Log(float64(n)))
		if strings.Contains(term, "_") {
			w *= 0.6 // bigrams refine, unigrams dominate
		}
		idx, sign := hashTerm(term)
		v[idx] += sign * w
	}
	return normalize(v)
}

func hashTerm(term string) (idx int, sign float32) {
	h := fnv.New64a()
	h.Write([]byte(term))
	s := h.Sum64()
	idx = int(s % Dim)
	if (s>>32)&1 == 1 {
		return idx, -1
	}
	return idx, 1
}

func normalize(v Vector) Vector {
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm == 0 {
		return v
	}
	inv := float32(1 / math.Sqrt(norm))
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Cosine returns the cosine similarity of two embeddings in [-1, 1]. Both
// inputs are expected to be normalized (as produced by Embed); zero vectors
// yield 0.
func Cosine(a, b Vector) float64 {
	return Dot(a, b)
}

// Dot returns the inner product of two embeddings. For vectors produced by
// Embed (unit length or zero) this equals their cosine similarity; callers
// holding vectors of unknown provenance should divide by Norm themselves.
func Dot(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Norm returns the Euclidean length of v.
func Norm(v Vector) float64 {
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	return math.Sqrt(n)
}
