package client

import (
	"fmt"
	"testing"
	"time"

	"ioagent/internal/fleet/api"
)

// TestAggregateMetricsCapsTenantLabels covers the cluster-wide overflow
// fold: every node caps its own tenant labels, but the union of disjoint
// per-node maps used to grow the aggregate's cardinality without bound,
// and per-node "_other" buckets summed like an ordinary tenant while the
// tail that should join them stayed unfolded.
func TestAggregateMetricsCapsTenantLabels(t *testing.T) {
	// Two nodes with disjoint tenant sets, 200 each, plus their own
	// overflow buckets: the union (400 + _other) exceeds the 256 cap.
	mkNode := func(prefix string, base int64) api.Metrics {
		m := api.Metrics{Tenants: map[string]int64{api.TenantOverflow: 7}}
		for i := 0; i < 200; i++ {
			// Distinct counts so the keep-largest fold is observable.
			m.Tenants[fmt.Sprintf("%s-%03d", prefix, i)] = base + int64(i)
		}
		return m
	}
	agg := AggregateMetrics([]api.Metrics{mkNode("acme", 1000), mkNode("umbrella", 2000)})

	if got := len(agg.Tenants); got != maxAggTenantLabels+1 {
		t.Fatalf("aggregate carries %d tenant labels, want %d (+ overflow)", got, maxAggTenantLabels+1)
	}
	// Totals are conserved: folding moves counts, never drops them.
	var total int64
	for _, n := range agg.Tenants {
		total += n
	}
	var want int64 = 14 // the two nodes' own overflow buckets
	for i := 0; i < 200; i++ {
		want += 1000 + int64(i) + 2000 + int64(i)
	}
	if total != want {
		t.Fatalf("aggregate total %d, want %d", total, want)
	}
	// The largest counters survive as their own labels; the smallest fold.
	if _, ok := agg.Tenants["umbrella-199"]; !ok {
		t.Fatal("largest tenant folded into overflow")
	}
	if _, ok := agg.Tenants["acme-000"]; ok {
		t.Fatal("smallest tenant kept its own label past the cap")
	}
	if agg.Tenants[api.TenantOverflow] <= 14 {
		t.Fatalf("overflow bucket %d did not absorb the folded tail", agg.Tenants[api.TenantOverflow])
	}
	// Determinism: the same snapshots aggregate identically (map order
	// must not leak into the fold).
	again := AggregateMetrics([]api.Metrics{mkNode("acme", 1000), mkNode("umbrella", 2000)})
	if len(again.Tenants) != len(agg.Tenants) {
		t.Fatal("aggregation is not deterministic")
	}
	for tenant, n := range agg.Tenants {
		if again.Tenants[tenant] != n {
			t.Fatalf("aggregation is not deterministic: %q = %d then %d", tenant, n, again.Tenants[tenant])
		}
	}
}

// TestAggregateMetricsSumsSched covers the scheduler block: counters sum,
// queue-age percentiles take the worst node, and a single FIFO or
// admission-enforcing member marks the whole aggregate.
func TestAggregateMetricsSumsSched(t *testing.T) {
	a := api.Metrics{Sched: &api.SchedMetrics{
		Admission: true, Dequeues: 10, Rejects: 2,
		Lanes: map[string]int64{"interactive": 3},
		Tenants: map[string]api.SchedTenant{
			"acme": {Class: "gold", Weight: 8, Depth: 1, Dequeues: 6, Rejects: 2,
				AgeP50: 5 * time.Millisecond, AgeMax: 40 * time.Millisecond},
		},
	}}
	b := api.Metrics{Sched: &api.SchedMetrics{
		FIFO: true, Dequeues: 4,
		Lanes: map[string]int64{"interactive": 1, "batch": 2},
		Tenants: map[string]api.SchedTenant{
			"acme": {Weight: 1, Depth: 2, Dequeues: 4,
				AgeP50: 9 * time.Millisecond, AgeMax: 20 * time.Millisecond},
		},
	}}
	c := api.Metrics{} // a node without the sched block (older minor)

	agg := AggregateMetrics([]api.Metrics{a, b, c})
	s := agg.Sched
	if s == nil {
		t.Fatal("aggregate dropped the sched block")
	}
	if !s.FIFO || !s.Admission {
		t.Fatalf("flags fifo=%v admission=%v, want both true (any-node-or)", s.FIFO, s.Admission)
	}
	if s.Dequeues != 14 || s.Rejects != 2 {
		t.Fatalf("dequeues/rejects = %d/%d, want 14/2", s.Dequeues, s.Rejects)
	}
	if s.Lanes["interactive"] != 4 || s.Lanes["batch"] != 2 {
		t.Fatalf("lane depths = %v", s.Lanes)
	}
	acme := s.Tenants["acme"]
	if acme.Class != "gold" || acme.Weight != 8 {
		t.Fatalf("acme class/weight = %q/%d, want gold/8", acme.Class, acme.Weight)
	}
	if acme.Depth != 3 || acme.Dequeues != 10 || acme.Rejects != 2 {
		t.Fatalf("acme counters = %+v", acme)
	}
	if acme.AgeP50 != 9*time.Millisecond || acme.AgeMax != 40*time.Millisecond {
		t.Fatalf("acme ages = %v/%v, want worst-node 9ms/40ms", acme.AgeP50, acme.AgeMax)
	}
}
