package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	fleetknowledge "ioagent/internal/fleet/knowledge"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
	"ioagent/internal/vectordb"
)

func knowledgeSeed() []vectordb.Document {
	return []vectordb.Document{
		{Key: "kb-small-write", Text: "Many small writes below the stripe size collapse bandwidth; aggregate into larger sequential writes."},
		{Key: "kb-metadata", Text: "Metadata-heavy workloads with thousands of opens overload the metadata server."},
		{Key: "kb-stripe", Text: "Stripe alignment avoids read-modify-write cycles on parallel file systems."},
		{Key: "kb-collective", Text: "Collective buffering aggregates small non-contiguous accesses into large contiguous ones."},
	}
}

// startKnowledgeNodes boots daemons whose pools carry ring-sharded
// knowledge planes: Replicas 1 so each document is indexed by exactly one
// node and the cluster search genuinely merges shards.
func startKnowledgeNodes(t *testing.T, ids ...string) []*clusterNode {
	t.Helper()
	index := knowledge.BuildIndex()
	nodes := make([]*clusterNode, len(ids))
	for i, id := range ids {
		plane := fleetknowledge.New(fleetknowledge.Config{
			NodeID: id, Members: ids, Replicas: 1, Seed: knowledgeSeed(),
		})
		pool := fleet.New(llm.NewSim(), fleet.Config{
			Workers: 1, NodeID: id,
			Agent:     ioagent.Options{Index: index},
			Knowledge: plane,
		})
		srv := httptest.NewServer(server.NewMux(server.Config{Pool: pool, NodeID: id}))
		nodes[i] = &clusterNode{id: id, pool: pool, srv: srv}
		t.Cleanup(pool.Close)
		t.Cleanup(srv.Close)
	}
	return nodes
}

// TestClusterKnowledgeShardedSearchAndSwap drives the fleet-level corpus
// lifecycle: sharded status aggregation, scatter-gathered search across
// shards, broadcast upsert + swap, and the epoch-skew health signal when
// a swap reaches part of the fleet only.
func TestClusterKnowledgeShardedSearchAndSwap(t *testing.T) {
	nodes := startKnowledgeNodes(t, "n1", "n2")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	// Sharding invariant: every node sees the full corpus view, the owned
	// shards partition it exactly (Replicas 1), and the aggregate reports
	// both numbers.
	ks, err := cl.KnowledgeStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Epoch != 1 || ks.Docs != 4 || ks.OwnedDocs != 4 {
		t.Fatalf("aggregate status = %+v, want epoch 1, 4 docs, 4 owned across the fleet", ks)
	}
	perNode := 0
	for _, n := range nodes {
		m := n.pool.Knowledge().Metrics()
		if m.Docs != 4 {
			t.Fatalf("node %s full view = %d docs, want 4", n.id, m.Docs)
		}
		if m.OwnedDocs == 4 {
			t.Fatalf("node %s owns the whole corpus; sharding is not in effect", n.id)
		}
		perNode += m.OwnedDocs
	}
	if perNode != 4 {
		t.Fatalf("shards cover %d docs, want a partition of 4", perNode)
	}

	// Scatter-gather merges shards: a broad query must surface documents
	// that no single node indexes together.
	sr, err := cl.KnowledgeSearch(ctx, api.KnowledgeSearchRequest{
		Query: "small writes stripe alignment metadata collective buffering",
	})
	if err != nil {
		t.Fatal(err)
	}
	docsSeen := map[string]bool{}
	for _, h := range sr.Hits {
		docsSeen[h.Key] = true
	}
	if len(docsSeen) != 4 || sr.Epoch != 1 {
		t.Fatalf("merged search saw %d distinct docs at epoch %d, want all 4 at epoch 1", len(docsSeen), sr.Epoch)
	}

	// Broadcast a staged doc and promote it everywhere.
	if err := cl.KnowledgeUpsert(ctx, api.KnowledgeUpsertRequest{
		Docs: []api.KnowledgeDoc{{Key: "kb-burst", Text: "Burst buffer drain contention stalls checkpoints during maintenance."}},
	}); err != nil {
		t.Fatal(err)
	}
	epoch, err := cl.KnowledgeSwap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("broadcast swap epoch = %d, want 2", epoch)
	}
	sr, err = cl.KnowledgeSearch(ctx, api.KnowledgeSearchRequest{Query: "burst buffer drain contention checkpoint"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range sr.Hits {
		found = found || h.Key == "kb-burst"
	}
	if !found || sr.Epoch != 2 {
		t.Fatalf("post-swap merged search (epoch %d) missed the new document", sr.Epoch)
	}

	// Converged fleet: health rows carry the epoch, no skew.
	h := cl.Health(ctx)
	for _, row := range h.Nodes {
		if row.KnowledgeEpoch != 2 {
			t.Fatalf("node %s health epoch = %d, want 2", row.Node, row.KnowledgeEpoch)
		}
	}
	if h.KnowledgeEpochSkew {
		t.Fatal("converged fleet reports epoch skew")
	}

	// A swap that reaches one node only must surface as skew.
	c1 := New(nodes[0].srv.URL, WithRetry(1, time.Millisecond))
	t.Cleanup(c1.Close)
	if _, err := c1.KnowledgeUpsert(ctx, api.KnowledgeUpsertRequest{Remove: []string{"kb-burst"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.KnowledgeSwap(ctx); err != nil {
		t.Fatal(err)
	}
	if h := cl.Health(ctx); !h.KnowledgeEpochSkew {
		t.Fatal("partial swap not reported as knowledge epoch skew")
	}
}
