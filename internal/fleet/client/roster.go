package client

// Elastic-cluster calls, added in protocol 1.5: the roster protocol the
// gossip layer and roster pollers speak, and the cache-handoff endpoints
// warm results move over.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ioagent/internal/fleet/api"
)

// Roster fetches the daemon's current membership view. Daemons running
// with a static member set refuse with api.CodeRosterDisabled.
func (c *Client) Roster(ctx context.Context) (api.Roster, error) {
	var r api.Roster
	err := c.do(ctx, http.MethodGet, "/v1/roster", nil, &r)
	return r, err
}

// Announce performs one push-pull gossip exchange: it registers ann.From
// (and shares ann.Members) with the daemon and returns the daemon's own
// roster for the caller to merge back.
func (c *Client) Announce(ctx context.Context, ann api.RosterAnnounce) (api.Roster, error) {
	body, err := json.Marshal(ann)
	if err != nil {
		return api.Roster{}, fmt.Errorf("client: encode announce: %w", err)
	}
	var r api.Roster
	err = c.do(ctx, http.MethodPost, "/v1/roster", body, &r)
	return r, err
}

// Roster fetches the live membership from the first cluster member that
// serves the roster protocol, walking the member list while members are
// down or answer roster_disabled (static daemons). The caller feeds the
// result to UpdateMembers; on error it keeps the current member list.
func (cl *Cluster) Roster(ctx context.Context) (api.Roster, error) {
	ms := cl.cur.Load()
	var lastErr error = api.Errorf(api.CodeNodeDown, "no fleet node reachable (%d tried)", len(ms.members))
	for _, member := range ms.members {
		r, err := ms.clients[member].Roster(ctx)
		if err == nil {
			return r, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return api.Roster{}, lastErr
}

// CacheDigests lists the digests of every unexpired result-cache entry
// resident on the daemon — the inventory side of cache handoff.
func (c *Client) CacheDigests(ctx context.Context) ([]string, error) {
	var d api.CacheDigests
	err := c.do(ctx, http.MethodGet, "/v1/cache/digests", nil, &d)
	return d.Digests, err
}

// CachePush offers cache entries to the daemon (handoff after a ring
// change, or successor replication). The response reports how many were
// newly inserted; already-resident and expired entries are skipped, so
// pushes are idempotent.
func (c *Client) CachePush(ctx context.Context, req api.CachePushRequest) (api.CachePushResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.CachePushResponse{}, fmt.Errorf("client: encode cache push: %w", err)
	}
	var resp api.CachePushResponse
	err = c.do(ctx, http.MethodPost, "/v1/cache/entries", body, &resp)
	return resp, err
}
