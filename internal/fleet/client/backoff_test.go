package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ioagent/internal/fleet/api"
)

// TestEndpointBackoffWidensAndClears drives the per-endpoint window
// directly: consecutive transient failures widen the deferral, a success
// clears it instantly.
func TestEndpointBackoffWidensAndClears(t *testing.T) {
	var b endpointBackoff
	now := time.Unix(1000, 0)

	if b.deferred(now) {
		t.Fatal("fresh endpoint is deferred")
	}
	b.observe(true, now)
	first := b.until.Sub(now)
	if !b.deferred(now.Add(time.Millisecond)) {
		t.Fatal("endpoint not deferred after a transient failure")
	}
	b.observe(true, now)
	second := b.until.Sub(now)
	if second <= first {
		t.Fatalf("consecutive failures did not widen the deferral: %v then %v", first, second)
	}
	for i := 0; i < 20; i++ {
		b.observe(true, now)
	}
	if got := b.until.Sub(now); got > endpointBackoffMax {
		t.Fatalf("deferral %v exceeds the %v cap", got, endpointBackoffMax)
	}
	b.observe(false, now)
	if b.deferred(now) {
		t.Fatal("success did not clear the deferral")
	}
	if b.streak != 0 {
		t.Fatalf("streak = %d after success, want 0", b.streak)
	}
}

// TestClusterDefersFailingEndpoint covers the router's spool/forward gap:
// after a member fails transiently, the very next submission must try the
// healthy member first instead of paying the failing owner's schedule
// again — and the deferred member must be retried once its backoff
// passes, never dropped.
func TestClusterDefersFailingEndpoint(t *testing.T) {
	var failHits, okHits atomic.Int64
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		failHits.Add(1)
		w.Header().Set(api.VersionHeader, api.Current.String())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.Error{Code: api.CodeDraining, Message: "draining"})
	}))
	defer failing.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okHits.Add(1)
		w.Header().Set(api.VersionHeader, api.Current.String())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobInfo{ID: "h-job-000001", Status: api.StatusQueued})
	}))
	defer healthy.Close()

	cl, err := NewCluster([]string{failing.URL, healthy.URL}, WithRetry(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Pick a trace whose ring owner is the failing member, so the natural
	// failover order tries it first.
	var raw []byte
	for seed := 0; seed < 64; seed++ {
		raw = clusterTrace(t, seed)
		if cl.Route(raw)[0] == failing.URL {
			break
		}
		raw = nil
	}
	if raw == nil {
		t.Fatal("no seed routed to the failing member")
	}

	ctx := context.Background()
	if _, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw}); err != nil {
		t.Fatal(err)
	}
	if failHits.Load() != 1 || okHits.Load() != 1 {
		t.Fatalf("first submission hit fail/ok %d/%d times, want 1/1 (owner then successor)",
			failHits.Load(), okHits.Load())
	}

	// Within the backoff window the failing owner is deferred: the healthy
	// member answers first and the owner sees no traffic at all.
	if _, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw}); err != nil {
		t.Fatal(err)
	}
	if failHits.Load() != 1 {
		t.Fatalf("deferred member was still tried first (%d hits)", failHits.Load())
	}

	// After the backoff passes (1 failure in a 1-sample window: 100ms ×
	// (1+3·1) = 400ms) the member is eligible again and, as ring owner,
	// tried first.
	time.Sleep(500 * time.Millisecond)
	if _, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw}); err != nil {
		t.Fatal(err)
	}
	if failHits.Load() != 2 {
		t.Fatalf("expired deferral did not restore the member to the failover order (%d hits)", failHits.Load())
	}
}
