package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ioagent/internal/fleet/api"
)

// instantSleep makes backoff free while recording the schedule.
func instantSleep(c *Client) *[]time.Duration {
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slept = append(slept, d)
		return nil
	}
	return &slept
}

// newAPIServer wraps a handler with the version header the client checks.
func newAPIServer(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Current.String())
		h(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func writeErr(w http.ResponseWriter, e *api.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Code.HTTPStatus())
	json.NewEncoder(w).Encode(e)
}

// TestClientRetriesFlakyServer injects llm.Flaky-style periodic 503s: the
// first two attempts hit a draining instance, the third succeeds, and the
// backoff schedule doubles between attempts.
func TestClientRetriesFlakyServer(t *testing.T) {
	var calls atomic.Int64
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeErr(w, api.Errorf(api.CodeDraining, "daemon is draining"))
			return
		}
		json.NewEncoder(w).Encode(api.JobInfo{ID: "job-000001", Status: api.StatusQueued, Lane: api.LaneBatch})
	})

	c := New(srv.URL, WithRetry(4, 10*time.Millisecond))
	slept := instantSleep(c)
	info, err := c.Submit(context.Background(), api.SubmitRequest{Lane: api.LaneBatch, Trace: []byte("x")})
	if err != nil {
		t.Fatalf("submit through flaky server: %v", err)
	}
	if info.ID != "job-000001" || calls.Load() != 3 {
		t.Errorf("info=%+v after %d calls, want success on call 3", info, calls.Load())
	}
	if len(*slept) != 2 || (*slept)[1] != 2*(*slept)[0] {
		t.Errorf("backoff schedule = %v, want two doubling delays", *slept)
	}
}

func TestClientRetriesBare5xxAndTransportErrors(t *testing.T) {
	// The failing response deliberately carries NO version header and no
	// api.Error body — exactly what a proxy or LB in front of a bouncing
	// daemon serves — and must be retried, not refused as version skew.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "proxy exploded", http.StatusBadGateway)
			return
		}
		w.Header().Set(api.VersionHeader, api.Current.String())
		json.NewEncoder(w).Encode(api.Metrics{Workers: 4})
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithRetry(3, time.Millisecond))
	instantSleep(c)
	m, err := c.Metrics(context.Background())
	if err != nil || m.Workers != 4 {
		t.Fatalf("metrics after bare 502 = %+v, %v", m, err)
	}

	// A connection that refuses outright is transport-level and retryable;
	// with the budget exhausted the transport error surfaces.
	dead := New("http://127.0.0.1:1", WithRetry(2, time.Millisecond))
	instantSleep(dead)
	if _, err := dead.Metrics(context.Background()); err == nil {
		t.Fatal("dead endpoint must fail after retries")
	}
}

func TestClientDoesNotRetryPermanentCodes(t *testing.T) {
	var calls atomic.Int64
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeErr(w, api.Errorf(api.CodeJobNotFound, "unknown job"))
	})
	c := New(srv.URL, WithRetry(5, time.Millisecond))
	instantSleep(c)
	_, err := c.Job(context.Background(), "job-999999")
	if api.ErrorCode(err) != api.CodeJobNotFound {
		t.Fatalf("err = %v, want job_not_found", err)
	}
	if calls.Load() != 1 {
		t.Errorf("permanent code retried %d times, want a single attempt", calls.Load())
	}
}

// TestClientRejectsVersionSkew is the version-skew acceptance test: a
// server speaking an unknown protocol major is refused before any payload
// is interpreted, and the refusal is not retried.
func TestClientRejectsVersionSkew(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(api.VersionHeader, "2.0")
		json.NewEncoder(w).Encode(api.JobInfo{ID: "job-000001"})
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetry(3, time.Millisecond))
	instantSleep(c)
	_, err := c.Job(context.Background(), "job-000001")
	if api.ErrorCode(err) != api.CodeUnsupportedVersion {
		t.Fatalf("err = %v, want unsupported_version", err)
	}
	if calls.Load() != 1 {
		t.Errorf("version skew retried %d times, want 1", calls.Load())
	}
}

// TestClientRefusesUnversionedServer: a peer that never stamps the
// version header (a pre-versioning daemon, or some unrelated HTTP
// service) is refused before its payload is interpreted.
func TestClientRefusesUnversionedServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("I/O Performance Diagnosis\n")) // not even JSON
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetry(1, time.Millisecond))
	_, err := c.Job(context.Background(), "job-000001")
	if api.ErrorCode(err) != api.CodeUnsupportedVersion {
		t.Fatalf("err = %v, want unsupported_version for a header-less server", err)
	}
}

func TestClientSendsVersionAndLane(t *testing.T) {
	var gotVersion, gotLane atomic.Value
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		gotVersion.Store(r.Header.Get(api.VersionHeader))
		gotLane.Store(r.URL.Query().Get("lane"))
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobInfo{ID: "job-000001"})
	})
	c := New(srv.URL)
	if _, err := c.Submit(context.Background(), api.SubmitRequest{Trace: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if gotVersion.Load() != api.Current.String() {
		t.Errorf("request version header = %q, want %q", gotVersion.Load(), api.Current)
	}
	if gotLane.Load() != string(api.LaneInteractive) {
		t.Errorf("default lane on the wire = %q, want interactive", gotLane.Load())
	}
	if _, err := c.Submit(context.Background(), api.SubmitRequest{Lane: "bulk", Trace: []byte("x")}); api.ErrorCode(err) != api.CodeBadRequest {
		t.Errorf("unknown lane err = %v, want bad_request before any wire traffic", err)
	}
}

func TestWaitDiagnosisPollsToCompletion(t *testing.T) {
	var polls atomic.Int64
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/job-000001":
			status := api.StatusRunning
			if polls.Add(1) >= 3 {
				status = api.StatusDone
			}
			json.NewEncoder(w).Encode(api.JobInfo{ID: "job-000001", Status: status})
		case "/v1/jobs/job-000001/diagnosis":
			json.NewEncoder(w).Encode(api.Diagnosis{JobID: "job-000001", Text: "all small writes"})
		default:
			writeErr(w, api.Errorf(api.CodeJobNotFound, "unknown job"))
		}
	})
	c := New(srv.URL, WithPollInterval(time.Millisecond))
	instantSleep(c)
	d, err := c.WaitDiagnosis(context.Background(), "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if d.Text != "all small writes" || polls.Load() < 3 {
		t.Errorf("diagnosis = %+v after %d polls", d, polls.Load())
	}
}

func TestWaitDiagnosisSurfacesJobFailure(t *testing.T) {
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.JobInfo{ID: "job-000001", Status: api.StatusFailed, Attempts: 3})
	})
	c := New(srv.URL, WithPollInterval(time.Millisecond))
	_, err := c.WaitDiagnosis(context.Background(), "job-000001")
	if api.ErrorCode(err) != api.CodeDiagnosisFailed {
		t.Fatalf("err = %v, want diagnosis_failed", err)
	}
}

func TestClientHonorsContextDuringBackoff(t *testing.T) {
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, api.Errorf(api.CodeDraining, "draining forever"))
	})
	ctx, cancel := context.WithCancel(context.Background())
	c := New(srv.URL, WithRetry(10, time.Hour)) // would retry for hours
	cancel()
	start := time.Now()
	_, err := c.Jobs(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context cancellation", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancelled backoff must return promptly")
	}
}
