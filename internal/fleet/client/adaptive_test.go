package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"ioagent/internal/fleet/api"
)

// TestAdaptiveBackoffWidensWithErrorRate: with a fully failing recent
// window the retry delay is 4x the fixed-doubling schedule; with
// adaptive backoff disabled it is exactly the fixed schedule.
func TestAdaptiveBackoffWidensWithErrorRate(t *testing.T) {
	alwaysDraining := func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, api.Errorf(api.CodeDraining, "draining"))
	}
	srv := newAPIServer(t, alwaysDraining)

	base := 10 * time.Millisecond
	adaptive := New(srv.URL, WithRetry(3, base))
	sleptA := instantSleep(adaptive)
	adaptive.Metrics(context.Background()) // fails; we want the schedule

	fixed := New(srv.URL, WithRetry(3, base), WithAdaptiveBackoff(false))
	sleptF := instantSleep(fixed)
	fixed.Metrics(context.Background())

	if len(*sleptA) != 2 || len(*sleptF) != 2 {
		t.Fatalf("schedules %v / %v, want 2 sleeps each", *sleptA, *sleptF)
	}
	if (*sleptF)[0] != base || (*sleptF)[1] != 2*base {
		t.Errorf("fixed schedule = %v, want [%v %v]", *sleptF, base, 2*base)
	}
	// Every attempt failed, so the observed rate is 1.0 and the widening
	// factor is 1+3*1 = 4.
	if (*sleptA)[0] != 4*base || (*sleptA)[1] != 8*base {
		t.Errorf("adaptive schedule = %v, want [%v %v] (4x widening)", *sleptA, 4*base, 8*base)
	}
}

// TestAdaptiveBackoffRecovers: successes drain the window, so a healthy
// client's delays converge back to the fixed schedule.
func TestAdaptiveBackoffRecovers(t *testing.T) {
	var fail atomic.Bool
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			writeErr(w, api.Errorf(api.CodeDraining, "draining"))
			return
		}
		json.NewEncoder(w).Encode(api.Metrics{})
	})
	base := 10 * time.Millisecond
	c := New(srv.URL, WithRetry(2, base))
	slept := instantSleep(c)

	fail.Store(true)
	c.Metrics(context.Background()) // 2 failing attempts: window all failure
	fail.Store(false)
	for i := 0; i < 64; i++ { // wash the window with successes
		if _, err := c.Metrics(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	fail.Store(true)
	*slept = nil
	c.Metrics(context.Background())
	if len(*slept) != 1 {
		t.Fatalf("schedule %v, want 1 sleep", *slept)
	}
	// One failure in a 32-slot window: rate 1/32, widening ≈ 1.09 — well
	// under the 4x a failing window earns.
	if got := (*slept)[0]; got < base || got > 2*base {
		t.Errorf("recovered delay = %v, want close to base %v", got, base)
	}
}

// TestRetryAfterFloorsBackoff: a server-sent Retry-After outranks the
// computed delay.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set(api.RetryAfterHeader, "2")
			writeErr(w, api.Errorf(api.CodeQuotaExceeded, "tenant at quota"))
			return
		}
		json.NewEncoder(w).Encode(api.Metrics{Workers: 1})
	})
	c := New(srv.URL, WithRetry(2, time.Millisecond))
	slept := instantSleep(c)
	if _, err := c.Metrics(context.Background()); err != nil {
		t.Fatalf("metrics after hinted 429 = %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] < 2*time.Second {
		t.Errorf("schedule %v, want one sleep >= 2s (the Retry-After floor)", *slept)
	}
}

// TestQuotaExceededIsRetryable: quota_exceeded (429) retries like the
// taxonomy says.
func TestQuotaExceededIsRetryable(t *testing.T) {
	var calls atomic.Int64
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 1 {
			writeErr(w, api.Errorf(api.CodeQuotaExceeded, "at quota"))
			return
		}
		json.NewEncoder(w).Encode(api.JobInfo{ID: "job-000001"})
	})
	c := New(srv.URL, WithRetry(3, time.Millisecond))
	instantSleep(c)
	info, err := c.Submit(context.Background(), api.SubmitRequest{Trace: []byte("x")})
	if err != nil || info.ID != "job-000001" {
		t.Fatalf("submit through quota blip = %+v, %v", info, err)
	}
}

// TestClientBreaker: consecutive retryable failures trip the breaker;
// calls then fail fast without touching the server; after the cooldown a
// half-open probe runs, and a success closes the breaker.
func TestClientBreaker(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			writeErr(w, api.Errorf(api.CodeDraining, "down"))
			return
		}
		json.NewEncoder(w).Encode(api.Metrics{Workers: 1})
	})

	clock := time.Now()
	c := New(srv.URL, WithRetry(1, time.Millisecond), WithBreaker(3, time.Second))
	c.brk.now = func() time.Time { return clock }
	instantSleep(c)
	ctx := context.Background()

	for i := 0; i < 3; i++ { // 3 consecutive failures: trips
		c.Metrics(ctx)
	}
	if got := c.brk.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	before := calls.Load()
	if _, err := c.Metrics(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("call while open = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Error("open breaker still hit the server")
	}

	// Cooldown elapses; the half-open probe goes through and a healthy
	// server closes the breaker.
	healthy.Store(true)
	clock = clock.Add(2 * time.Second)
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatalf("half-open probe = %v", err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatalf("post-recovery call = %v", err)
	}
}

// TestClientBreakerReArmsOnFailedProbe: a failed half-open probe starts
// a fresh cooldown instead of letting traffic through.
func TestClientBreakerReArmsOnFailedProbe(t *testing.T) {
	srv := newAPIServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, api.Errorf(api.CodeDraining, "still down"))
	})
	clock := time.Now()
	c := New(srv.URL, WithRetry(1, time.Millisecond), WithBreaker(2, time.Second))
	c.brk.now = func() time.Time { return clock }
	instantSleep(c)
	ctx := context.Background()

	c.Metrics(ctx)
	c.Metrics(ctx) // tripped
	clock = clock.Add(1100 * time.Millisecond)
	if _, err := c.Metrics(ctx); errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open probe was refused")
	}
	// The probe failed; the very next call is refused again.
	if _, err := c.Metrics(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("post-failed-probe call = %v, want ErrBreakerOpen", err)
	}
}
