// Package client is the Go SDK for the iofleetd wire API
// (internal/fleet/api): a thin, dependency-light HTTP client with
// connection reuse, context-aware retry with exponential backoff on
// transient failures, and a polling helper that waits a submission
// through to its finished diagnosis.
//
// Submissions are idempotent by construction: the daemon content-addresses
// work by trace digest, so a retried POST of the same bytes lands on the
// in-flight job (coalescing) or the result cache instead of re-running
// the pipeline. That is what makes the SDK's automatic resubmit on
// transient errors safe.
//
// Version skew is checked on every response: a server advertising an
// incompatible protocol major (api.VersionHeader) yields an *api.Error
// with api.CodeUnsupportedVersion, never a misparsed payload.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"ioagent/internal/fleet/api"
)

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (the default
// shares one transport across all calls, so connections are reused).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetry tunes the retry budget: maxAttempts total tries per call
// (minimum 1) with exponential backoff starting at baseDelay. The default
// is 4 attempts from 100ms.
func WithRetry(maxAttempts int, baseDelay time.Duration) Option {
	return func(c *Client) {
		if maxAttempts >= 1 {
			c.maxAttempts = maxAttempts
		}
		if baseDelay > 0 {
			c.baseDelay = baseDelay
		}
	}
}

// WithPollInterval tunes how often WaitDiagnosis polls (default 100ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// WithForwardedBy stamps every request with api.ForwardedHeader carrying
// id. iofleet-router sets it so a misconfigured member list (a router
// listing itself, or another router) is detected as a loop instead of
// ricocheting submissions forever. Plain SDK users never need it.
func WithForwardedBy(id string) Option { return func(c *Client) { c.forwardedBy = id } }

// WithAdaptiveBackoff toggles error-rate-adaptive backoff (default on):
// the base exponential delay is widened by the transient-failure rate
// observed over the client's recent attempts, so a client talking to a
// struggling server backs off harder than one that hit a single blip —
// instead of every client doubling in lockstep. Servers' Retry-After
// hints are honored as a floor either way.
func WithAdaptiveBackoff(enabled bool) Option { return func(c *Client) { c.adaptiveOff = !enabled } }

// WithBreaker arms a client-side circuit breaker mirroring the pool's:
// after threshold consecutive retryable failures, calls fail fast with
// ErrBreakerOpen — no dial, no retry budget — until cooldown elapses and
// a half-open probe is admitted. Zero threshold disables (the default).
// Cluster mode treats a member's open breaker as an immediate failover
// signal, so a down node costs nothing once its breaker trips.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		if threshold > 0 {
			if cooldown <= 0 {
				cooldown = 5 * time.Second
			}
			c.brk = &clientBreaker{threshold: threshold, cooldown: cooldown, now: time.Now}
		}
	}
}

// WithRingReplicas sets the virtual-node count of the consistent-hash
// ring in Cluster mode (default ring.DefaultReplicas). Every party that
// must agree on digest ownership — all routers and all cluster-mode
// clients of one fleet — has to use the same value. It has no effect on
// a single-node Client.
func WithRingReplicas(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.ringReplicas = n
		}
	}
}

// ErrBreakerOpen is returned by calls refused fast because the client's
// circuit breaker (WithBreaker) is open: the server produced too many
// consecutive retryable failures and the cooldown has not elapsed.
// Nothing was sent; retry later, or let cluster mode fail over.
var ErrBreakerOpen = errors.New("client: circuit breaker open (server marked down); retry later")

// Client talks to one iofleetd instance. It is safe for concurrent use.
type Client struct {
	base        string
	httpc       *http.Client
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration
	poll        time.Duration
	forwardedBy string
	adaptiveOff bool
	brk         *clientBreaker // nil unless WithBreaker armed it
	window      outcomeWindow  // recent-attempt outcomes for adaptive backoff
	// ringReplicas is only read by Cluster, which builds its ring from
	// the options applied to its member clients.
	ringReplicas int

	// sleep is swapped out by tests to make backoff instantaneous.
	sleep func(context.Context, time.Duration) error
}

// Close releases the idle keep-alive connections held by the underlying
// transport. Tests and short-lived tools that create many clients (or
// whose daemon restarts, stranding pooled conns to the old process)
// should defer it; the Client stays usable afterwards — the next call
// simply dials fresh.
func (c *Client) Close() {
	c.httpc.CloseIdleConnections()
}

// New builds a client for the daemon at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		httpc:       &http.Client{Timeout: 5 * time.Minute},
		maxAttempts: 4,
		baseDelay:   100 * time.Millisecond,
		maxDelay:    5 * time.Second,
		poll:        100 * time.Millisecond,
		sleep:       sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Submit sends one trace for diagnosis and returns the accepted job
// record (which is already terminal for cache hits). Transient failures —
// network errors, 5xx, api.CodeDraining — are retried with backoff; the
// resubmit is safe because the daemon deduplicates by trace digest.
func (c *Client) Submit(ctx context.Context, req api.SubmitRequest) (api.JobInfo, error) {
	lane := req.Lane.WithDefault()
	if !lane.Valid() {
		return api.JobInfo{}, api.Errorf(api.CodeBadRequest, "unknown lane %q", req.Lane)
	}
	if len(req.Tenant) > api.MaxTenantLen {
		return api.JobInfo{}, api.Errorf(api.CodeBadRequest, "tenant exceeds %d bytes", api.MaxTenantLen)
	}
	var info api.JobInfo
	path := "/v1/jobs?lane=" + url.QueryEscape(string(lane))
	if req.Tenant != "" {
		path += "&tenant=" + url.QueryEscape(req.Tenant)
	}
	err := c.do(ctx, http.MethodPost, path, req.Trace, &info)
	return info, err
}

// Job fetches one job's current snapshot.
func (c *Client) Job(ctx context.Context, id string) (api.JobInfo, error) {
	var info api.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Jobs lists every job the daemon still remembers, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]api.JobInfo, error) {
	var infos []api.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &infos)
	return infos, err
}

// Diagnosis fetches the finished report for a terminal, successful job.
// A still-running job yields api.CodeJobNotDone (not retried — poll the
// job instead, or use WaitDiagnosis).
func (c *Client) Diagnosis(ctx context.Context, id string) (api.Diagnosis, error) {
	var d api.Diagnosis
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/diagnosis", nil, &d)
	return d, err
}

// Metrics fetches the pool health snapshot.
func (c *Client) Metrics(ctx context.Context) (api.Metrics, error) {
	var m api.Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// WaitDiagnosis polls job id until it reaches a terminal state and
// returns its diagnosis. A failed job yields an *api.Error with
// api.CodeDiagnosisFailed. Polling cadence is WithPollInterval; the
// context bounds the total wait.
func (c *Client) WaitDiagnosis(ctx context.Context, id string) (api.Diagnosis, error) {
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return api.Diagnosis{}, err
		}
		switch {
		case info.Status == api.StatusFailed:
			return api.Diagnosis{}, api.Errorf(api.CodeDiagnosisFailed,
				"job %s failed after %d attempts", id, info.Attempts)
		case info.Status.Terminal():
			return c.Diagnosis(ctx, id)
		}
		if err := c.sleep(ctx, c.poll); err != nil {
			return api.Diagnosis{}, err
		}
	}
}

// SubmitAndWait is Submit followed by WaitDiagnosis on the accepted job.
func (c *Client) SubmitAndWait(ctx context.Context, req api.SubmitRequest) (api.Diagnosis, error) {
	info, err := c.Submit(ctx, req)
	if err != nil {
		return api.Diagnosis{}, err
	}
	return c.WaitDiagnosis(ctx, info.ID)
}

// do runs one logical call with retry: build request, send, decode. body
// may be nil; out may be nil for calls with no interesting response.
//
// The retry delay starts from the exponential base but is shaped by two
// live signals: the transient-failure rate observed over this client's
// recent attempts widens it (a struggling server earns a wider berth
// than a single blip), and a server-sent Retry-After floors it (the
// server knows when the quota frees or the drain completes better than
// any client-side formula).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	if c.brk != nil && !c.brk.allow() {
		return ErrBreakerOpen
	}
	delay := c.baseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		c.observe(err)
		if err == nil || !retryable(err) || attempt >= c.maxAttempts {
			return err
		}
		lastErr = err
		if serr := c.sleep(ctx, c.nextDelay(delay, err)); serr != nil {
			return fmt.Errorf("%w (last attempt: %w)", serr, lastErr)
		}
		if delay *= 2; delay > c.maxDelay {
			delay = c.maxDelay
		}
	}
}

// observe feeds one attempt's outcome to the adaptive-backoff window and
// the breaker (when armed).
func (c *Client) observe(err error) {
	fail := err != nil && retryable(err)
	c.window.record(fail)
	if c.brk != nil {
		c.brk.record(fail)
	}
}

// nextDelay shapes the base exponential delay for this retry: widened by
// the observed transient-error rate (unless adaptive backoff is off),
// then floored by any server-sent Retry-After hint.
func (c *Client) nextDelay(base time.Duration, err error) time.Duration {
	d := base
	if !c.adaptiveOff {
		// rate 0 leaves the exponential schedule untouched; a fully
		// failing window quadruples it (on top of the doubling).
		d = time.Duration(float64(d) * (1 + 3*c.window.rate()))
		if d > c.maxDelay {
			d = c.maxDelay
		}
	}
	if ra := retryAfterIn(err); ra > d {
		d = ra // the server's own hint outranks the cap: it knows
	}
	return d
}

// once performs a single HTTP round trip, enforcing version compatibility
// and mapping error bodies onto *api.Error.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := c.newRequest(ctx, method, path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return &transportError{err}
	}
	return c.decodeResponse(resp, method, path, out)
}

// newRequest builds a request carrying the client's standing headers.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(api.VersionHeader, api.Current.String())
	req.Header.Set("Accept", "application/json")
	if c.forwardedBy != "" {
		req.Header.Set(api.ForwardedHeader, c.forwardedBy)
	}
	return req, nil
}

// decodeResponse consumes and closes the response body, enforcing the
// version handshake and mapping error envelopes onto *api.Error.
func (c *Client) decodeResponse(resp *http.Response, method, path string, out any) error {
	defer resp.Body.Close()

	// Version skew check before trusting any payload: an incompatible
	// major means the shapes below may not mean what we think they mean.
	if adv := resp.Header.Get(api.VersionHeader); adv != "" {
		v, perr := api.ParseVersion(adv)
		if perr != nil {
			return api.Errorf(api.CodeUnsupportedVersion, "server sent malformed version %q", adv)
		}
		if !v.CompatibleWith(api.Current) {
			return api.Errorf(api.CodeUnsupportedVersion,
				"server speaks api %s, this client speaks %s", v, api.Current)
		}
	}

	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return &transportError{err}
	}
	if resp.StatusCode >= 400 {
		var outErr error
		var apiErr api.Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Code != "" {
			outErr = &apiErr
		} else {
			// No structured body (proxy error page, panic, ...): keep the
			// status so retryable() can classify 5xx as transient. This
			// branch also covers header-less errors: a proxy in front of a
			// healthy daemon never stamps the version header, so an error
			// without one must stay retryable rather than be refused as skew.
			outErr = &httpError{status: resp.StatusCode, body: string(data)}
		}
		// A Retry-After hint (delay-seconds form) rides along so the
		// retry loop can floor its backoff on the server's own estimate.
		if secs, perr := strconv.Atoi(strings.TrimSpace(resp.Header.Get(api.RetryAfterHeader))); perr == nil && secs > 0 {
			outErr = &hintedError{err: outErr, retryAfter: time.Duration(secs) * time.Second}
		}
		return outErr
	}
	// A versioned server stamps every successful response, so a 2xx
	// without the header means a pre-versioning daemon (or not a fleet
	// daemon at all) — refuse it rather than misparse its payload.
	if resp.Header.Get(api.VersionHeader) == "" {
		return api.Errorf(api.CodeUnsupportedVersion,
			"server sent no %s header; it does not speak the versioned fleet api", api.VersionHeader)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// transportError wraps a failure to complete the HTTP round trip at all
// (dial refused, reset, timeout). Always retryable.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// httpError is a non-2xx response without a structured api.Error body.
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("client: http %d: %.200s", e.status, e.body)
}

// hintedError carries a server-sent Retry-After alongside the failure it
// decorated; errors.As/Is see through it to the wrapped error.
type hintedError struct {
	err        error
	retryAfter time.Duration
}

func (e *hintedError) Error() string { return e.err.Error() }
func (e *hintedError) Unwrap() error { return e.err }

// retryAfterIn extracts a Retry-After hint from an attempt's error chain
// (zero when the server sent none).
func retryAfterIn(err error) time.Duration {
	var he *hintedError
	if errors.As(err, &he) {
		return he.retryAfter
	}
	return 0
}

// RetryAfterHint exposes a server-sent Retry-After carried by an error
// from this SDK (zero when none was sent). iofleet-router uses it to
// propagate the owning daemon's hint to its own caller instead of
// swallowing it.
func RetryAfterHint(err error) time.Duration { return retryAfterIn(err) }

// outcomeWindow is a fixed ring of recent attempt outcomes; its failure
// rate drives the adaptive backoff widening. Safe for concurrent use.
type outcomeWindow struct {
	mu       sync.Mutex
	outcomes [32]bool // true = transient failure
	n, idx   int
	fails    int
}

func (w *outcomeWindow) record(fail bool) {
	w.mu.Lock()
	if w.n < len(w.outcomes) {
		w.n++
	} else if w.outcomes[w.idx] {
		w.fails--
	}
	w.outcomes[w.idx] = fail
	w.idx = (w.idx + 1) % len(w.outcomes)
	if fail {
		w.fails++
	}
	w.mu.Unlock()
}

func (w *outcomeWindow) rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	return float64(w.fails) / float64(w.n)
}

// clientBreaker mirrors the pool's transient-failure breaker on the
// client side: consecutive retryable failures trip it open, calls fail
// fast with ErrBreakerOpen through the cooldown, then a half-open probe
// is admitted — its outcome closes or re-arms the breaker.
type clientBreaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	consecutive int
	open        bool
	openSince   time.Time
	trips       int64
}

// allow reports whether a call may proceed: always while closed, and
// once per cooldown while open (the half-open probe).
func (b *clientBreaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	return b.now().Sub(b.openSince) >= b.cooldown
}

// record feeds one attempt's outcome. A success closes the breaker; a
// retryable failure counts toward the threshold and re-arms an open
// breaker's cooldown (a failed half-open probe starts a fresh wait).
func (b *clientBreaker) record(fail bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !fail {
		b.consecutive = 0
		b.open = false
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		if !b.open {
			b.trips++
		}
		b.open = true
		b.openSince = b.now()
	}
}

// Trips reports how many times the breaker has opened (for tests and
// metrics).
func (b *clientBreaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// retryable classifies one attempt's failure: transport errors, bare
// 5xx/429 statuses, and API codes the taxonomy marks retryable.
func retryable(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.status >= 500 || he.status == http.StatusTooManyRequests
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae.Code.Retryable()
	}
	return false
}
