package client

import (
	"context"
	"encoding/json"
	"sort"
	"strconv"

	"ioagent/internal/fleet/api"
)

// Knowledge-plane calls (api 1.4). On a single Client they address one
// daemon's plane; on a Cluster, mutations broadcast to every member (each
// node stages and promotes its own shard of the corpus) and searches
// scatter-gather.

// KnowledgeStatus fetches the daemon's knowledge-plane status. Daemons
// running without a plane answer api.CodeKnowledgeDisabled.
func (c *Client) KnowledgeStatus(ctx context.Context) (api.KnowledgeStatus, error) {
	var ks api.KnowledgeStatus
	err := c.do(ctx, "GET", "/v1/knowledge", nil, &ks)
	return ks, err
}

// KnowledgeUpsert stages document additions and removals on the daemon.
// Staged changes stay invisible to retrieval until KnowledgeSwap promotes
// them. Safe to retry: re-staging the same mutation is idempotent.
func (c *Client) KnowledgeUpsert(ctx context.Context, req api.KnowledgeUpsertRequest) (api.KnowledgeStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.KnowledgeStatus{}, err
	}
	var ks api.KnowledgeStatus
	err = c.do(ctx, "POST", "/v1/knowledge/docs", body, &ks)
	return ks, err
}

// KnowledgeSwap atomically promotes the daemon's staged corpus changes to
// a new serving epoch. With nothing staged it returns an *api.Error with
// api.CodeNothingStaged.
func (c *Client) KnowledgeSwap(ctx context.Context) (uint64, error) {
	var resp api.KnowledgeSwapResponse
	err := c.do(ctx, "POST", "/v1/knowledge/swap", []byte("{}"), &resp)
	return resp.Epoch, err
}

// KnowledgeSearch probes the daemon's serving corpus directly, bypassing
// the diagnosis pipeline.
func (c *Client) KnowledgeSearch(ctx context.Context, req api.KnowledgeSearchRequest) (api.KnowledgeSearchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.KnowledgeSearchResponse{}, err
	}
	var resp api.KnowledgeSearchResponse
	err = c.do(ctx, "POST", "/v1/knowledge/search", body, &resp)
	return resp, err
}

// KnowledgeUpsert broadcasts the staged mutation to every member: in a
// sharded fleet each node indexes only its ring shard of the documents,
// so all of them must see the full mutation. Members that refuse or are
// unreachable are reported as one error; the caller retries the broadcast
// (idempotent) until it lands everywhere, then swaps.
func (cl *Cluster) KnowledgeUpsert(ctx context.Context, req api.KnowledgeUpsertRequest) error {
	_, errs := fanOut(cl.cur.Load(), func(member string, c *Client) (struct{}, error) {
		_, err := c.KnowledgeUpsert(ctx, req)
		return struct{}{}, err
	})
	return broadcastError("knowledge upsert", errs)
}

// KnowledgeSwap broadcasts the epoch promotion and returns the minimum
// epoch reported by members that swapped. A partial failure leaves the
// fleet on mixed epochs — visible as KnowledgeEpochSkew in Health — and
// is surfaced as an error so the caller re-runs the sync.
func (cl *Cluster) KnowledgeSwap(ctx context.Context) (uint64, error) {
	epochs, errs := fanOut(cl.cur.Load(), func(member string, c *Client) (uint64, error) {
		return c.KnowledgeSwap(ctx)
	})
	var minEpoch uint64
	for i, e := range epochs {
		if errs[i] != nil {
			continue
		}
		if minEpoch == 0 || e < minEpoch {
			minEpoch = e
		}
	}
	return minEpoch, broadcastError("knowledge swap", errs)
}

// KnowledgeStatus aggregates every reachable member's plane status:
// counters sum, Epoch is the minimum across healthy planes (the corpus
// version every retrieval is guaranteed to reflect), Docs is the largest
// full-corpus view, and the latency percentile takes the worst node.
func (cl *Cluster) KnowledgeStatus(ctx context.Context) (api.KnowledgeStatus, error) {
	ms := cl.cur.Load()
	all, errs := fanOut(ms, func(member string, c *Client) (api.KnowledgeStatus, error) {
		return c.KnowledgeStatus(ctx)
	})
	var snaps []api.KnowledgeStatus
	var lastErr error
	for i, ks := range all {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		snaps = append(snaps, ks)
	}
	if len(snaps) == 0 {
		if lastErr != nil {
			return api.KnowledgeStatus{}, lastErr
		}
		return api.KnowledgeStatus{}, api.Errorf(api.CodeNodeDown, "no fleet node reachable (%d tried)", len(ms.members))
	}
	return AggregateKnowledge(snaps), nil
}

// KnowledgeSearch scatter-gathers a retrieval probe: every reachable
// member searches its shard, results merge by score with key#seq
// deduplication, and the answer reports the minimum contributing epoch.
func (cl *Cluster) KnowledgeSearch(ctx context.Context, req api.KnowledgeSearchRequest) (api.KnowledgeSearchResponse, error) {
	k := req.K
	if k <= 0 {
		k = api.DefaultKnowledgeK
	}
	ms := cl.cur.Load()
	all, errs := fanOut(ms, func(member string, c *Client) (api.KnowledgeSearchResponse, error) {
		return c.KnowledgeSearch(ctx, req)
	})
	var resps []api.KnowledgeSearchResponse
	var lastErr error
	for i, r := range all {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		resps = append(resps, r)
	}
	if len(resps) == 0 {
		if lastErr != nil {
			return api.KnowledgeSearchResponse{}, lastErr
		}
		return api.KnowledgeSearchResponse{}, api.Errorf(api.CodeNodeDown, "no fleet node reachable (%d tried)", len(ms.members))
	}
	return MergeKnowledgeSearch(resps, k), nil
}

// broadcastError folds a fan-out's per-member errors into one. Knowledge
// mutations are all-or-retry: any member that missed the broadcast leaves
// the fleet inconsistent, so the first failure surfaces (with the member
// count) instead of being shrugged off as a partial success.
func broadcastError(op string, errs []error) error {
	failed := 0
	var first error
	for _, err := range errs {
		if err != nil {
			failed++
			if first == nil {
				first = err
			}
		}
	}
	if first == nil {
		return nil
	}
	code := api.ErrorCode(first)
	if code == "" {
		code = api.CodeNodeDown
	}
	return api.Errorf(code,
		"%s reached %d/%d members (first failure: %v); rebroadcast to converge",
		op, len(errs)-failed, len(errs), first)
}

// AggregateKnowledge folds per-node knowledge statuses into the cluster
// view. Exported for iofleet-router, which serves the same aggregation.
func AggregateKnowledge(snaps []api.KnowledgeStatus) api.KnowledgeStatus {
	var agg api.KnowledgeStatus
	for i, ks := range snaps {
		if i == 0 || ks.Epoch < agg.Epoch {
			agg.Epoch = ks.Epoch
		}
		if ks.Docs > agg.Docs {
			agg.Docs = ks.Docs
		}
		agg.OwnedDocs += ks.OwnedDocs
		agg.StagedOps += ks.StagedOps
		agg.Queries += ks.Queries
		agg.ANNQueries += ks.ANNQueries
		agg.ExactQueries += ks.ExactQueries
		agg.RerankCalls += ks.RerankCalls
		agg.RerankErrors += ks.RerankErrors
		agg.RerankCostUSD += ks.RerankCostUSD
		if ks.RetrievalP95 > agg.RetrievalP95 {
			agg.RetrievalP95 = ks.RetrievalP95
		}
	}
	return agg
}

// MergeKnowledgeSearch folds scatter-gathered search responses into one
// ranked top-k: duplicate chunks (the same key#seq served by replicas)
// keep their best score, survivors order by score descending with the
// same key/seq tie-break the index uses, and the merged answer reports
// the minimum contributing epoch. Exported for iofleet-router.
func MergeKnowledgeSearch(resps []api.KnowledgeSearchResponse, k int) api.KnowledgeSearchResponse {
	out := api.KnowledgeSearchResponse{}
	best := make(map[string]api.KnowledgeHit)
	for i, r := range resps {
		if i == 0 || r.Epoch < out.Epoch {
			out.Epoch = r.Epoch
		}
		for _, h := range r.Hits {
			id := h.Key + "#" + strconv.Itoa(h.Seq)
			if prev, ok := best[id]; !ok || h.Score > prev.Score {
				best[id] = h
			}
		}
	}
	merged := make([]api.KnowledgeHit, 0, len(best))
	for _, h := range best {
		merged = append(merged, h)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		if merged[i].Key != merged[j].Key {
			return merged[i].Key < merged[j].Key
		}
		return merged[i].Seq < merged[j].Seq
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	out.Hits = merged
	return out
}
