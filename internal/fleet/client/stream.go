package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/ingest"
)

// StreamOpts parameterizes a streaming submission.
type StreamOpts struct {
	// Lane selects the priority class; empty means interactive.
	Lane api.Lane
	// Tenant names the submitting tenant (per-tenant accounting/quota).
	Tenant string
	// Digest, when known, is the trace's canonical content digest
	// (darshan.ContentDigest), asserted as the api.DigestHeader request
	// header — which is what lets iofleet-router place the stream on its
	// owning node without spooling a byte. When empty, SubmitStream
	// computes the digest on the fly (teeing the outgoing bytes through
	// the incremental parser) and sends it as an HTTP trailer: too late
	// to route by, still verified end-to-end by the server.
	Digest string
}

// SubmitStream submits one trace without ever holding it in memory: the
// reader's bytes flow straight onto the wire (chunked transfer
// encoding), the daemon's incremental parser starts pre-processing them
// as they land, and the response is the accepted job.
//
// Retries: a failed attempt consumes an unknown amount of body, so only
// a body that can be rewound — an io.Seeker, e.g. an *os.File — is
// retried or failed over; for anything else (a pipe, stdin) the first
// transport or retryable failure is final and the caller decides whether
// to re-produce the stream.
func (c *Client) SubmitStream(ctx context.Context, body io.Reader, opts StreamOpts) (api.JobInfo, error) {
	lane := opts.Lane.WithDefault()
	if !lane.Valid() {
		return api.JobInfo{}, api.Errorf(api.CodeBadRequest, "unknown lane %q", opts.Lane)
	}
	if len(opts.Tenant) > api.MaxTenantLen {
		return api.JobInfo{}, api.Errorf(api.CodeBadRequest, "tenant exceeds %d bytes", api.MaxTenantLen)
	}
	if c.brk != nil && !c.brk.allow() {
		return api.JobInfo{}, ErrBreakerOpen
	}
	path := "/v1/jobs/stream?lane=" + url.QueryEscape(string(lane))
	if opts.Tenant != "" {
		path += "&tenant=" + url.QueryEscape(opts.Tenant)
	}

	seeker, rewindable := body.(io.Seeker)
	delay := c.baseDelay
	for attempt := 1; ; attempt++ {
		info, err := c.streamOnce(ctx, path, body, opts.Digest)
		c.observe(err)
		if err == nil || !retryable(err) || !rewindable || attempt >= c.maxAttempts {
			return info, err
		}
		if _, serr := seeker.Seek(0, io.SeekStart); serr != nil {
			return info, fmt.Errorf("client: rewind stream for retry: %w (after: %w)", serr, err)
		}
		if serr := c.sleep(ctx, c.nextDelay(delay, err)); serr != nil {
			return info, fmt.Errorf("%w (last attempt: %w)", serr, err)
		}
		if delay *= 2; delay > c.maxDelay {
			delay = c.maxDelay
		}
	}
}

func (c *Client) streamOnce(ctx context.Context, path string, body io.Reader, digest string) (api.JobInfo, error) {
	rd := body
	var tee *digestTee
	if digest == "" {
		// No digest known up front: hash on the fly and deliver the
		// result as a trailer for end-to-end verification.
		tee = &digestTee{r: body, parser: ingest.NewParser(0)}
		rd = tee
	}
	req, err := c.newRequest(ctx, http.MethodPost, path, rd)
	if err != nil {
		return api.JobInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.ContentLength = -1 // stream: chunked transfer encoding
	if digest != "" {
		req.Header.Set(api.DigestHeader, digest)
	} else {
		// Declare the trailer up front; digestTee fills it at body EOF,
		// which is before the transport serializes the trailer block.
		req.Trailer = http.Header{api.DigestHeader: nil}
		tee.trailer = req.Trailer
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return api.JobInfo{}, &transportError{err}
	}
	var info api.JobInfo
	if err := c.decodeResponse(resp, http.MethodPost, path, &info); err != nil {
		return api.JobInfo{}, err
	}
	return info, nil
}

// digestTee feeds the bytes it relays through an incremental parser and,
// if the whole stream parses, deposits the canonical content digest into
// the request trailer at EOF. It never fails the upload: a stream the
// client-side parser cannot handle (binary rendering — hashing it would
// mean buffering it — or malformed text) simply ships without a claim,
// and the server's own parse is authoritative anyway.
type digestTee struct {
	r       io.Reader
	parser  *ingest.Parser
	dead    bool // parser abandoned; stream continues unhashed
	trailer http.Header
}

func (t *digestTee) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 && !t.dead {
		if _, werr := t.parser.Write(p[:n]); werr != nil {
			t.dead = true
		} else if st := t.parser.Stats(); st.Decided && st.Binary {
			t.dead = true
		}
	}
	if err == io.EOF && !t.dead {
		if _, digest, ferr := t.parser.Finish(); ferr == nil {
			t.trailer.Set(api.DigestHeader, digest)
		}
	}
	return n, err
}

// UploadOpen opens a resumable upload session on the daemon. A known
// digest may be asserted for routing and end-to-end verification.
func (c *Client) UploadOpen(ctx context.Context, opts StreamOpts) (api.UploadInfo, error) {
	lane := opts.Lane.WithDefault()
	if !lane.Valid() {
		return api.UploadInfo{}, api.Errorf(api.CodeBadRequest, "unknown lane %q", opts.Lane)
	}
	path := "/v1/uploads?lane=" + url.QueryEscape(string(lane))
	if opts.Tenant != "" {
		path += "&tenant=" + url.QueryEscape(opts.Tenant)
	}
	var info api.UploadInfo
	err := c.doHeaders(ctx, http.MethodPost, path, nil, map[string]string{api.DigestHeader: opts.Digest}, &info)
	return info, err
}

// UploadAppend appends one chunk at the asserted offset. On an offset
// mismatch (api.CodeUploadOffsetMismatch) resynchronize via UploadStatus.
func (c *Client) UploadAppend(ctx context.Context, id string, offset int64, chunk []byte) (api.UploadInfo, error) {
	var info api.UploadInfo
	err := c.doHeaders(ctx, http.MethodPatch, "/v1/uploads/"+url.PathEscape(id), chunk,
		map[string]string{api.UploadOffsetHeader: strconv.FormatInt(offset, 10)}, &info)
	return info, err
}

// UploadStatus fetches a session's snapshot — its offset is where the
// next append must start, the resume handshake after a disconnect or a
// daemon restart.
func (c *Client) UploadStatus(ctx context.Context, id string) (api.UploadInfo, error) {
	var info api.UploadInfo
	err := c.do(ctx, http.MethodGet, "/v1/uploads/"+url.PathEscape(id), nil, &info)
	return info, err
}

// UploadComplete finalizes the session into an accepted job.
func (c *Client) UploadComplete(ctx context.Context, id string) (api.JobInfo, error) {
	var info api.JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/uploads/"+url.PathEscape(id)+"/complete", nil, &info)
	return info, err
}

// UploadAbort discards the session.
func (c *Client) UploadAbort(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/uploads/"+url.PathEscape(id), nil, nil)
}

// uploader is the resumable-session slice of the SDK shared by the
// single-endpoint Client and the multi-node Cluster, so SubmitChunked
// drives either.
type uploader interface {
	UploadOpen(ctx context.Context, opts StreamOpts) (api.UploadInfo, error)
	UploadAppend(ctx context.Context, id string, offset int64, chunk []byte) (api.UploadInfo, error)
	UploadStatus(ctx context.Context, id string) (api.UploadInfo, error)
	UploadComplete(ctx context.Context, id string) (api.JobInfo, error)
}

// SubmitChunked drives a whole resumable-upload conversation: open a
// session, append chunkSize-sized pieces of r (resynchronizing the
// offset after a retryable hiccup instead of abandoning the transfer),
// and complete it into a job. It trades SubmitStream's single-request
// efficiency for mid-transfer durability: on daemons with -state-dir, a
// crashed-and-restarted server resumes the session where its spool ends.
func (c *Client) SubmitChunked(ctx context.Context, r io.Reader, chunkSize int, opts StreamOpts) (api.JobInfo, error) {
	return submitChunked(ctx, c, r, chunkSize, opts)
}

func submitChunked(ctx context.Context, u uploader, r io.Reader, chunkSize int, opts StreamOpts) (api.JobInfo, error) {
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	up, err := u.UploadOpen(ctx, opts)
	if err != nil {
		return api.JobInfo{}, err
	}
	offset := up.Offset
	buf := make([]byte, chunkSize)
	for {
		n, rerr := io.ReadFull(r, buf)
		if rerr == io.EOF {
			break
		}
		if rerr != nil && rerr != io.ErrUnexpectedEOF {
			return api.JobInfo{}, fmt.Errorf("client: read chunk: %w", rerr)
		}
		info, aerr := u.UploadAppend(ctx, up.ID, offset, buf[:n])
		if api.ErrorCode(aerr) == api.CodeUploadOffsetMismatch {
			// A retried PATCH can double-deliver; the authoritative offset
			// says whether this chunk already landed.
			if info, aerr = u.UploadStatus(ctx, up.ID); aerr == nil && info.Offset != offset+int64(n) {
				aerr = api.Errorf(api.CodeUploadOffsetMismatch,
					"upload %s diverged: server at %d, client at %d", up.ID, info.Offset, offset+int64(n))
			}
		}
		if aerr != nil {
			return api.JobInfo{}, aerr
		}
		offset = info.Offset
		if rerr == io.ErrUnexpectedEOF {
			break
		}
	}
	return u.UploadComplete(ctx, up.ID)
}

// doHeaders is do with extra per-call request headers (empty values are
// skipped).
func (c *Client) doHeaders(ctx context.Context, method, path string, body []byte, headers map[string]string, out any) error {
	if c.brk != nil && !c.brk.allow() {
		return ErrBreakerOpen
	}
	delay := c.baseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := c.onceHeaders(ctx, method, path, body, headers, out)
		c.observe(err)
		if err == nil || !retryable(err) || attempt >= c.maxAttempts {
			return err
		}
		lastErr = err
		if serr := c.sleep(ctx, c.nextDelay(delay, err)); serr != nil {
			return fmt.Errorf("%w (last attempt: %w)", serr, lastErr)
		}
		if delay *= 2; delay > c.maxDelay {
			delay = c.maxDelay
		}
	}
}

func (c *Client) onceHeaders(ctx context.Context, method, path string, body []byte, headers map[string]string, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := c.newRequest(ctx, method, path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	for k, v := range headers {
		if v != "" {
			req.Header.Set(k, v)
		}
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return &transportError{err}
	}
	return c.decodeResponse(resp, method, path, out)
}

// failoverStream reports whether an error from one member justifies
// retrying a stream elsewhere; breaker-open members fail over instantly.
func failoverStream(err error) bool {
	return retryable(err) || errors.Is(err, ErrBreakerOpen)
}
