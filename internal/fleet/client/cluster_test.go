package client

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

// httpCapture records api.ForwardedHeader off each request, then proxies
// it to the real daemon at target.
func httpCapture(got *string, target string) http.Handler {
	u, err := url.Parse(target)
	if err != nil {
		panic(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*got = r.Header.Get(api.ForwardedHeader)
		proxy.ServeHTTP(w, r)
	})
}

// clusterNode is one in-process daemon: a real pool behind the real
// server mux.
type clusterNode struct {
	id   string
	pool *fleet.Pool
	srv  *httptest.Server
}

func startNodes(t *testing.T, ids ...string) []*clusterNode {
	t.Helper()
	index := knowledge.BuildIndex()
	nodes := make([]*clusterNode, len(ids))
	for i, id := range ids {
		pool := fleet.New(llm.NewSim(), fleet.Config{
			Workers: 2, NodeID: id,
			Agent: ioagent.Options{Index: index},
		})
		srv := httptest.NewServer(server.NewMux(server.Config{Pool: pool, NodeID: id}))
		nodes[i] = &clusterNode{id: id, pool: pool, srv: srv}
		t.Cleanup(pool.Close)
		t.Cleanup(srv.Close)
	}
	return nodes
}

func clusterOf(t *testing.T, nodes []*clusterNode, opts ...Option) *Cluster {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	opts = append([]Option{
		WithRetry(1, time.Millisecond),
		WithPollInterval(5 * time.Millisecond),
	}, opts...)
	cl, err := NewCluster(urls, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func clusterTrace(t *testing.T, seed int) []byte {
	t.Helper()
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*13 + 3, NProcs: 2, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/cluster/job%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/cl-%03d.dat", seed), iosim.POSIX, false, nil)
	for i := int64(0); i < 6; i++ {
		f.WriteAt(0, i*4096, 4096)
	}
	f.Close()
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, sim.Finalize()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// memberNode maps a member URL back to its node for assertions.
func memberNode(nodes []*clusterNode, member string) *clusterNode {
	for _, n := range nodes {
		if n.srv.URL == member {
			return n
		}
	}
	return nil
}

// TestClusterRoutesByDigestOwnership: a submission lands on the ring
// owner of its bytes, the returned job ID carries that node's prefix,
// and a resubmission of the same bytes is a cache hit on the same node.
func TestClusterRoutesByDigestOwnership(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	for seed := 0; seed < 4; seed++ {
		raw := clusterTrace(t, seed)
		owner := memberNode(nodes, cl.Route(raw)[0])
		info, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw, Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(info.ID, owner.id+"-job-") {
			t.Fatalf("seed %d: job %s not on ring owner %s", seed, info.ID, owner.id)
		}
		if _, err := cl.WaitDiagnosis(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
		dup, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
		if err != nil {
			t.Fatal(err)
		}
		if !dup.CacheHit || !strings.HasPrefix(dup.ID, owner.id+"-job-") {
			t.Fatalf("seed %d: resubmit = %+v, want cache hit on %s", seed, dup, owner.id)
		}
	}

	// A fresh cluster over the same members (a "router restart") computes
	// identical ownership: the warm digest still hits.
	cl2 := clusterOf(t, nodes)
	raw := clusterTrace(t, 0)
	info, err := cl2.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Errorf("restarted cluster client missed the warm digest: %+v", info)
	}
}

// TestClusterFailsOverToSuccessor: with the owner down, a submission
// lands on the next ring member; the diagnosis completes there; and a
// re-submission keeps being served from the successor's cache while the
// owner stays down.
func TestClusterFailsOverToSuccessor(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	raw := clusterTrace(t, 9)
	route := cl.Route(raw)
	owner, successor := memberNode(nodes, route[0]), memberNode(nodes, route[1])
	owner.srv.Close() // owner down before the first submission

	info, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, successor.id+"-job-") {
		t.Fatalf("job %s did not fail over to successor %s", info.ID, successor.id)
	}
	diag, err := cl.WaitDiagnosis(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Text == "" {
		t.Fatal("empty diagnosis from successor")
	}

	// Re-lookup via resubmission: still owner-down, the successor answers
	// from its cache.
	again, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || !strings.HasPrefix(again.ID, successor.id+"-job-") {
		t.Fatalf("resubmit with owner down = %+v, want cache hit on %s", again, successor.id)
	}
}

// TestClusterLookupDeadNodeSaysNotFound: polling a job whose node died
// yields job_not_found (the resubmit-recovery code), not a hang or a
// transport error.
func TestClusterLookupDeadNodeSaysNotFound(t *testing.T) {
	nodes := startNodes(t, "n1", "n2")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	raw := clusterTrace(t, 2)
	info, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	ownerNode := nodeFromID(info.ID)
	memberNode(nodes, cl.Route(raw)[0]).srv.Close()

	if _, err := cl.Job(ctx, info.ID); api.ErrorCode(err) != api.CodeJobNotFound {
		t.Fatalf("lookup on dead node = %v, want job_not_found", err)
	}
	if _, err := cl.Job(ctx, ownerNode+"-job-999999"); api.ErrorCode(err) != api.CodeJobNotFound {
		t.Fatalf("unknown id on dead node = %v, want job_not_found", err)
	}
}

// TestClusterAggregatesMetricsAndHealth: the cluster metrics document
// sums per-node counters; health lists every member with its node id and
// marks dead ones unhealthy.
func TestClusterAggregatesMetricsAndHealth(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	// Distinct traces spread across nodes; count total submissions.
	const submissions = 6
	for seed := 0; seed < submissions; seed++ {
		info, err := cl.Submit(ctx, api.SubmitRequest{Trace: clusterTrace(t, 20+seed), Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.WaitDiagnosis(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Submitted != submissions || m.Done != submissions {
		t.Errorf("aggregate submitted/done = %d/%d, want %d", m.Submitted, m.Done, submissions)
	}
	if m.Tenants["acme"] != submissions {
		t.Errorf("aggregate tenant count = %v, want acme:%d", m.Tenants, submissions)
	}
	if m.OwnedDigests != int64(submissions) {
		t.Errorf("aggregate owned digests = %d, want %d", m.OwnedDigests, submissions)
	}
	if m.Node != "" {
		t.Errorf("aggregate must not claim a node id, got %q", m.Node)
	}

	nodes[2].srv.Close()
	h := cl.Health(ctx)
	if len(h.Nodes) != 3 {
		t.Fatalf("health rows = %d, want 3", len(h.Nodes))
	}
	healthy := 0
	for _, row := range h.Nodes {
		if row.Healthy {
			healthy++
			if row.Node == "" {
				t.Errorf("healthy row %s missing node id", row.URL)
			}
		} else if row.Error == "" {
			t.Errorf("unhealthy row %s missing error class", row.URL)
		}
	}
	if healthy != 2 {
		t.Errorf("healthy members = %d, want 2", healthy)
	}
}

// TestClusterMetricsPartialFanOut: metrics aggregation degrades, not
// fails — one dead member leaves the reachable nodes' sums intact, and
// node_down surfaces only when EVERY member is gone.
func TestClusterMetricsPartialFanOut(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	const submissions = 4
	done := 0
	for seed := 0; seed < submissions; seed++ {
		raw := clusterTrace(t, 40+seed)
		info, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.WaitDiagnosis(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
		// Track how many landed OFF the node we are about to kill, so the
		// degraded aggregate has a floor to assert against.
		if memberNode(nodes, cl.Route(raw)[0]) != nodes[0] {
			done++
		}
	}

	nodes[0].srv.Close()
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics with one member down = %v, want degraded aggregate", err)
	}
	if m.Done < int64(done) {
		t.Errorf("degraded aggregate done = %d, want >= %d from surviving nodes", m.Done, done)
	}
	if m.Workers != 4 {
		t.Errorf("degraded aggregate workers = %d, want 4 (two surviving pools)", m.Workers)
	}

	nodes[1].srv.Close()
	nodes[2].srv.Close()
	if _, err := cl.Metrics(ctx); api.ErrorCode(err) != api.CodeNodeDown {
		t.Fatalf("metrics with all members down = %v, want node_down", err)
	}
}

// TestClusterHealthErrorIsStableCode: an unreachable member's health row
// carries a stable classification, never the transport error text — raw
// dial strings embed ephemeral ports and don't belong in a wire payload.
func TestClusterHealthErrorIsStableCode(t *testing.T) {
	nodes := startNodes(t, "n1", "n2")
	cl := clusterOf(t, nodes)
	deadURL := nodes[1].srv.URL
	nodes[1].srv.Close()

	h := cl.Health(context.Background())
	if len(h.Nodes) != 2 {
		t.Fatalf("health rows = %d, want 2", len(h.Nodes))
	}
	for _, row := range h.Nodes {
		if row.URL != deadURL {
			if !row.Healthy {
				t.Errorf("live member %s reported unhealthy: %q", row.URL, row.Error)
			}
			continue
		}
		if row.Healthy {
			t.Fatalf("dead member %s reported healthy", row.URL)
		}
		// Stable classes are single snake_case tokens ("unreachable",
		// "node_down", ...), never prose or an error chain.
		if row.Error == "" || strings.ContainsAny(row.Error, " :/") {
			t.Errorf("dead member error %q is not a stable class", row.Error)
		}
		for _, leak := range []string{"dial", "connection refused", "127.0.0.1"} {
			if strings.Contains(row.Error, leak) {
				t.Errorf("dead member error %q leaks transport detail %q", row.Error, leak)
			}
		}
	}
}

// TestClusterUpdateMembers: the elastic-roster entry point. A join adds
// exactly the new member and reroutes over three nodes; a same-set update
// (any order, trailing slashes) is a no-op; an empty or all-blank list
// never evicts the last known-good view; a leave closes out the member.
func TestClusterUpdateMembers(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	two := []string{nodes[0].srv.URL, nodes[1].srv.URL}
	cl, err := NewCluster(two, WithRetry(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	added, removed := cl.UpdateMembers([]string{nodes[1].srv.URL + "/", nodes[0].srv.URL})
	if len(added)+len(removed) != 0 {
		t.Fatalf("same-set update = +%v -%v, want no-op", added, removed)
	}
	added, removed = cl.UpdateMembers(nil)
	if len(added)+len(removed) != 0 || len(cl.Members()) != 2 {
		t.Fatalf("empty update changed membership: +%v -%v members %v", added, removed, cl.Members())
	}

	three := append(append([]string(nil), two...), nodes[2].srv.URL)
	added, removed = cl.UpdateMembers(three)
	if len(added) != 1 || added[0] != nodes[2].srv.URL || len(removed) != 0 {
		t.Fatalf("join diff = +%v -%v, want +[%s]", added, removed, nodes[2].srv.URL)
	}
	if got := cl.Members(); len(got) != 3 {
		t.Fatalf("members after join = %v, want 3", got)
	}
	// The grown ring must actually route to the joined member for some
	// digest — otherwise the rebuild silently didn't happen.
	routed := false
	for seed := 0; seed < 32 && !routed; seed++ {
		routed = cl.Route(clusterTrace(t, 60+seed))[0] == nodes[2].srv.URL
	}
	if !routed {
		t.Fatal("no digest routed to the joined member; ring not rebuilt")
	}

	added, removed = cl.UpdateMembers([]string{nodes[1].srv.URL, nodes[2].srv.URL})
	if len(removed) != 1 || removed[0] != nodes[0].srv.URL || len(added) != 0 {
		t.Fatalf("leave diff = +%v -%v, want -[%s]", added, removed, nodes[0].srv.URL)
	}
	info, err := cl.Submit(context.Background(), api.SubmitRequest{Trace: clusterTrace(t, 61)})
	if err != nil {
		t.Fatalf("submit after leave: %v", err)
	}
	if _, err := cl.WaitDiagnosis(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
}

// TestClusterForwardedByHeader: WithForwardedBy stamps every outbound
// request — the loop-detection contract the router depends on.
func TestClusterForwardedByHeader(t *testing.T) {
	nodes := startNodes(t, "n1")
	var got string
	front := httptest.NewServer(httpCapture(&got, nodes[0].srv.URL))
	defer front.Close()
	c := New(front.URL, WithRetry(1, time.Millisecond), WithForwardedBy("router-7"))
	defer c.Close()
	if _, err := c.Metrics(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "router-7" {
		t.Errorf("forwarded header = %q, want router-7", got)
	}
}
