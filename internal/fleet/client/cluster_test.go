package client

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

// httpCapture records api.ForwardedHeader off each request, then proxies
// it to the real daemon at target.
func httpCapture(got *string, target string) http.Handler {
	u, err := url.Parse(target)
	if err != nil {
		panic(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*got = r.Header.Get(api.ForwardedHeader)
		proxy.ServeHTTP(w, r)
	})
}

// clusterNode is one in-process daemon: a real pool behind the real
// server mux.
type clusterNode struct {
	id   string
	pool *fleet.Pool
	srv  *httptest.Server
}

func startNodes(t *testing.T, ids ...string) []*clusterNode {
	t.Helper()
	index := knowledge.BuildIndex()
	nodes := make([]*clusterNode, len(ids))
	for i, id := range ids {
		pool := fleet.New(llm.NewSim(), fleet.Config{
			Workers: 2, NodeID: id,
			Agent: ioagent.Options{Index: index},
		})
		srv := httptest.NewServer(server.NewMux(server.Config{Pool: pool, NodeID: id}))
		nodes[i] = &clusterNode{id: id, pool: pool, srv: srv}
		t.Cleanup(pool.Close)
		t.Cleanup(srv.Close)
	}
	return nodes
}

func clusterOf(t *testing.T, nodes []*clusterNode, opts ...Option) *Cluster {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	opts = append([]Option{
		WithRetry(1, time.Millisecond),
		WithPollInterval(5 * time.Millisecond),
	}, opts...)
	cl, err := NewCluster(urls, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func clusterTrace(t *testing.T, seed int) []byte {
	t.Helper()
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*13 + 3, NProcs: 2, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/cluster/job%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/cl-%03d.dat", seed), iosim.POSIX, false, nil)
	for i := int64(0); i < 6; i++ {
		f.WriteAt(0, i*4096, 4096)
	}
	f.Close()
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, sim.Finalize()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// memberNode maps a member URL back to its node for assertions.
func memberNode(nodes []*clusterNode, member string) *clusterNode {
	for _, n := range nodes {
		if n.srv.URL == member {
			return n
		}
	}
	return nil
}

// TestClusterRoutesByDigestOwnership: a submission lands on the ring
// owner of its bytes, the returned job ID carries that node's prefix,
// and a resubmission of the same bytes is a cache hit on the same node.
func TestClusterRoutesByDigestOwnership(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	for seed := 0; seed < 4; seed++ {
		raw := clusterTrace(t, seed)
		owner := memberNode(nodes, cl.Route(raw)[0])
		info, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw, Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(info.ID, owner.id+"-job-") {
			t.Fatalf("seed %d: job %s not on ring owner %s", seed, info.ID, owner.id)
		}
		if _, err := cl.WaitDiagnosis(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
		dup, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
		if err != nil {
			t.Fatal(err)
		}
		if !dup.CacheHit || !strings.HasPrefix(dup.ID, owner.id+"-job-") {
			t.Fatalf("seed %d: resubmit = %+v, want cache hit on %s", seed, dup, owner.id)
		}
	}

	// A fresh cluster over the same members (a "router restart") computes
	// identical ownership: the warm digest still hits.
	cl2 := clusterOf(t, nodes)
	raw := clusterTrace(t, 0)
	info, err := cl2.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Errorf("restarted cluster client missed the warm digest: %+v", info)
	}
}

// TestClusterFailsOverToSuccessor: with the owner down, a submission
// lands on the next ring member; the diagnosis completes there; and a
// re-submission keeps being served from the successor's cache while the
// owner stays down.
func TestClusterFailsOverToSuccessor(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	raw := clusterTrace(t, 9)
	route := cl.Route(raw)
	owner, successor := memberNode(nodes, route[0]), memberNode(nodes, route[1])
	owner.srv.Close() // owner down before the first submission

	info, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, successor.id+"-job-") {
		t.Fatalf("job %s did not fail over to successor %s", info.ID, successor.id)
	}
	diag, err := cl.WaitDiagnosis(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Text == "" {
		t.Fatal("empty diagnosis from successor")
	}

	// Re-lookup via resubmission: still owner-down, the successor answers
	// from its cache.
	again, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || !strings.HasPrefix(again.ID, successor.id+"-job-") {
		t.Fatalf("resubmit with owner down = %+v, want cache hit on %s", again, successor.id)
	}
}

// TestClusterLookupDeadNodeSaysNotFound: polling a job whose node died
// yields job_not_found (the resubmit-recovery code), not a hang or a
// transport error.
func TestClusterLookupDeadNodeSaysNotFound(t *testing.T) {
	nodes := startNodes(t, "n1", "n2")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	raw := clusterTrace(t, 2)
	info, err := cl.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	ownerNode := nodeFromID(info.ID)
	memberNode(nodes, cl.Route(raw)[0]).srv.Close()

	if _, err := cl.Job(ctx, info.ID); api.ErrorCode(err) != api.CodeJobNotFound {
		t.Fatalf("lookup on dead node = %v, want job_not_found", err)
	}
	if _, err := cl.Job(ctx, ownerNode+"-job-999999"); api.ErrorCode(err) != api.CodeJobNotFound {
		t.Fatalf("unknown id on dead node = %v, want job_not_found", err)
	}
}

// TestClusterAggregatesMetricsAndHealth: the cluster metrics document
// sums per-node counters; health lists every member with its node id and
// marks dead ones unhealthy.
func TestClusterAggregatesMetricsAndHealth(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	cl := clusterOf(t, nodes)
	ctx := context.Background()

	// Distinct traces spread across nodes; count total submissions.
	const submissions = 6
	for seed := 0; seed < submissions; seed++ {
		info, err := cl.Submit(ctx, api.SubmitRequest{Trace: clusterTrace(t, 20+seed), Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.WaitDiagnosis(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Submitted != submissions || m.Done != submissions {
		t.Errorf("aggregate submitted/done = %d/%d, want %d", m.Submitted, m.Done, submissions)
	}
	if m.Tenants["acme"] != submissions {
		t.Errorf("aggregate tenant count = %v, want acme:%d", m.Tenants, submissions)
	}
	if m.OwnedDigests != int64(submissions) {
		t.Errorf("aggregate owned digests = %d, want %d", m.OwnedDigests, submissions)
	}
	if m.Node != "" {
		t.Errorf("aggregate must not claim a node id, got %q", m.Node)
	}

	nodes[2].srv.Close()
	h := cl.Health(ctx)
	if len(h.Nodes) != 3 {
		t.Fatalf("health rows = %d, want 3", len(h.Nodes))
	}
	healthy := 0
	for _, row := range h.Nodes {
		if row.Healthy {
			healthy++
			if row.Node == "" {
				t.Errorf("healthy row %s missing node id", row.URL)
			}
		} else if row.Error == "" {
			t.Errorf("unhealthy row %s missing error class", row.URL)
		}
	}
	if healthy != 2 {
		t.Errorf("healthy members = %d, want 2", healthy)
	}
}

// TestClusterForwardedByHeader: WithForwardedBy stamps every outbound
// request — the loop-detection contract the router depends on.
func TestClusterForwardedByHeader(t *testing.T) {
	nodes := startNodes(t, "n1")
	var got string
	front := httptest.NewServer(httpCapture(&got, nodes[0].srv.URL))
	defer front.Close()
	c := New(front.URL, WithRetry(1, time.Millisecond), WithForwardedBy("router-7"))
	defer c.Close()
	if _, err := c.Metrics(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "router-7" {
		t.Errorf("forwarded header = %q, want router-7", got)
	}
}
