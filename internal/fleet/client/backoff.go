package client

import (
	"sync"
	"time"
)

// Per-endpoint backoff for the cluster's forward paths (buffered Submit
// and the router's spool/stream path). Each member client already widens
// its OWN retry delays by its recent failure rate, but that memory only
// shapes retries inside one call: a fresh submission still walks the ring
// from the owner, so while a member is down every request pays that
// member's full retry schedule before failing over. The cluster-level
// window remembers across calls — a member that just failed transiently
// is deferred (tried last, never skipped) until its backoff deadline
// passes, and the deadline widens with the endpoint's observed failure
// rate and its consecutive-failure streak.
const (
	// endpointBackoffBase is the deferral after a first transient
	// failure; consecutive failures double it up to endpointBackoffMax.
	endpointBackoffBase = 100 * time.Millisecond
	endpointBackoffMax  = 5 * time.Second
	// endpointStreakCap bounds the doubling (100ms << 5 = 3.2s, before
	// rate widening).
	endpointStreakCap = 5
)

// endpointBackoff is one member's cross-call failure memory. Safe for
// concurrent use.
type endpointBackoff struct {
	mu     sync.Mutex
	window outcomeWindow // recent forward outcomes (shared ring type with Client)
	streak int           // consecutive transient failures
	until  time.Time     // deferred before this instant
}

// observe records one forward attempt's outcome. A success clears the
// deferral immediately; a transient failure schedules one, doubling with
// the streak and widening with the window's failure rate (mirroring
// Client.nextDelay's 1+3·rate shape).
func (b *endpointBackoff) observe(fail bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.window.record(fail)
	if !fail {
		b.streak = 0
		b.until = time.Time{}
		return
	}
	b.streak++
	shift := b.streak - 1
	if shift > endpointStreakCap {
		shift = endpointStreakCap
	}
	d := endpointBackoffBase << shift
	d = time.Duration(float64(d) * (1 + 3*b.window.rate()))
	if d > endpointBackoffMax {
		d = endpointBackoffMax
	}
	b.until = now.Add(d)
}

// deferred reports whether the endpoint is inside its backoff window.
func (b *endpointBackoff) deferred(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.until)
}

// endpoint returns (creating on first use) the member's backoff state.
// State is keyed by base URL outside the membership view, so it survives
// roster swaps for members that stay.
func (cl *Cluster) endpoint(member string) *endpointBackoff {
	cl.backoffMu.Lock()
	defer cl.backoffMu.Unlock()
	if cl.backoff == nil {
		cl.backoff = make(map[string]*endpointBackoff)
	}
	b := cl.backoff[member]
	if b == nil {
		b = &endpointBackoff{}
		cl.backoff[member] = b
	}
	return b
}

// orderByBackoff stably partitions a failover order: members currently
// deferred move behind the eligible ones. Nothing is ever dropped — when
// the whole fleet is backing off, the original order stands and every
// member is still tried (deferral shapes order, availability decides
// outcomes).
func (cl *Cluster) orderByBackoff(members []string) []string {
	now := time.Now()
	var eligible, held []string
	for _, m := range members {
		if cl.endpoint(m).deferred(now) {
			held = append(held, m)
		} else {
			eligible = append(eligible, m)
		}
	}
	if len(held) == 0 || len(eligible) == 0 {
		return members
	}
	return append(eligible, held...)
}

// observeForward feeds one forward attempt's outcome into the member's
// endpoint window. Only failover-class errors (transport, 5xx, retryable
// taxonomy) count as failures: a 4xx says nothing about the member's
// health, and quota_exceeded is the tenant's backpressure, not the
// node's.
func (cl *Cluster) observeForward(member string, err error) {
	cl.endpoint(member).observe(err != nil && failover(err), time.Now())
}
