package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ioagent/internal/darshan"
	"ioagent/internal/dxt"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/ring"
)

// RouteKey maps submitted trace bytes onto the cluster routing key.
// Ownership is a pure function of this key and the member list, so every
// router and every cluster-mode client agrees on which node owns a
// submission without any coordination.
//
// Decodable traces route by their canonical content digest
// (darshan.ContentDigest), so the binary and darshan-parser-text
// renderings of one trace land on the SAME node and share its digest
// cache — the property the streaming path's api.DigestHeader asserts
// without shipping the body first. Bytes that decode as neither
// rendering fall back to a hash of the wire bytes: they still route
// consistently (to the node that will refuse them with bad_trace).
func RouteKey(trace []byte) string {
	if log, err := darshan.Decode(bytes.NewReader(trace)); err == nil {
		if cd, derr := darshan.ContentDigest(log); derr == nil {
			return cd
		}
	} else if bytes.HasPrefix(trace, []byte(dxt.TextMagic)) {
		if t, derr := dxt.ParseText(bytes.NewReader(trace)); derr == nil {
			if cd, cerr := darshan.ContentDigest(darshan.FromDXT(t)); cerr == nil {
				return cd
			}
		}
	} else if log, terr := darshan.ParseText(bytes.NewReader(trace)); terr == nil {
		if cd, derr := darshan.ContentDigest(log); derr == nil {
			return cd
		}
	}
	sum := sha256.Sum256(trace)
	return hex.EncodeToString(sum[:])
}

// membership is one immutable view of the cluster: the member list, the
// ring built over it, and a client per member. Every call loads ONE view
// and works entirely inside it, so a concurrent UpdateMembers never
// leaves a call holding a ring that disagrees with its client map.
type membership struct {
	members []string // listing order
	ring    *ring.Ring
	clients map[string]*Client
}

// Cluster is the SDK's multi-node mode: it takes the fleet member list
// and routes every call client-side over the same consistent-hash ring
// iofleet-router uses, so heavy SDK users skip the router hop entirely.
//
// Submissions go to the owner of the trace's RouteKey and walk the ring
// successors when the owner is down — safe because the daemons
// deduplicate by content digest, so a resubmission at the next node
// either re-runs the work there or coalesces with a previous attempt.
// Job lookups route by the node prefix that -node-id daemons put in
// every job ID. Metrics aggregates across reachable members. All methods
// are safe for concurrent use.
//
// The member list is NOT fixed at construction: UpdateMembers swaps in a
// new membership view atomically (reusing the clients of members that
// stayed), which is how routers and long-lived SDK users follow an
// elastic fleet's live roster.
type Cluster struct {
	opts []Option // applied to every member client, retained for joins

	cur atomic.Pointer[membership]

	mu sync.Mutex // guards the maps below and serializes UpdateMembers
	// nodeToMember maps learned daemon -node-id values to member URLs
	// (learned from each member's Metrics.Node on first need).
	nodeToMember map[string]string
	unresolved   map[string]bool // members whose node id is still unknown

	// backoff holds per-endpoint transient-failure memory for the forward
	// paths (see backoff.go); keyed by member base URL so it survives
	// roster swaps for members that stay.
	backoffMu sync.Mutex
	backoff   map[string]*endpointBackoff
}

// normalizeMembers canonicalizes a member URL list: trims whitespace and
// the trailing slash, drops duplicates, preserves first-seen order. Lists
// come from comma-separated flags and roster documents, and "a, b" must
// route identically to "a,b" everywhere or rings disagree and the cache
// fragments.
func normalizeMembers(members []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		base := strings.TrimRight(strings.TrimSpace(m), "/")
		if base == "" {
			return nil, api.Errorf(api.CodeBadRequest, "cluster member URL must not be empty")
		}
		if seen[base] {
			continue
		}
		seen[base] = true
		out = append(out, base)
	}
	return out, nil
}

// NewCluster builds a cluster-mode client over the given member base
// URLs. Options apply to every per-member client (retry budget, poll
// interval, HTTP client) plus the cluster itself (WithRingReplicas).
func NewCluster(members []string, opts ...Option) (*Cluster, error) {
	if len(members) == 0 {
		return nil, api.Errorf(api.CodeBadRequest, "cluster needs at least one member")
	}
	bases, err := normalizeMembers(members)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		opts:         opts,
		nodeToMember: make(map[string]string),
		unresolved:   make(map[string]bool),
	}
	ms := &membership{clients: make(map[string]*Client, len(bases))}
	for _, base := range bases {
		ms.members = append(ms.members, base)
		ms.clients[base] = New(base, opts...)
		cl.unresolved[base] = true
	}
	ms.ring = ring.New(ms.clients[ms.members[0]].ringReplicas)
	ms.ring.Add(ms.members...)
	cl.cur.Store(ms)
	return cl, nil
}

// UpdateMembers swaps the cluster onto a new member list — typically a
// live roster snapshot — and returns which members were added and
// removed. Clients of surviving members are reused (their breakers, node
// learnings, and connection pools carry over); new members get fresh
// clients built from the construction options; removed members' clients
// release their idle connections. An empty or unchanged list is a no-op.
// In-flight calls finish on the view they loaded, so an update never
// breaks a call midway.
func (cl *Cluster) UpdateMembers(members []string) (added, removed []string) {
	bases, err := normalizeMembers(members)
	if err != nil || len(bases) == 0 {
		return nil, nil // a roster with no usable members never evicts the last known-good view
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	old := cl.cur.Load()
	next := &membership{clients: make(map[string]*Client, len(bases))}
	for _, base := range bases {
		next.members = append(next.members, base)
		if c, ok := old.clients[base]; ok {
			next.clients[base] = c
		} else {
			next.clients[base] = New(base, cl.opts...)
			cl.unresolved[base] = true
			added = append(added, base)
		}
	}
	for _, base := range old.members {
		if _, ok := next.clients[base]; !ok {
			removed = append(removed, base)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return nil, nil // same set (order may differ, which the ring ignores)
	}
	next.ring = ring.New(next.clients[next.members[0]].ringReplicas)
	next.ring.Add(next.members...)
	cl.cur.Store(next)
	for _, base := range removed {
		delete(cl.unresolved, base)
		for node, member := range cl.nodeToMember {
			if member == base {
				delete(cl.nodeToMember, node)
			}
		}
		old.clients[base].Close()
	}
	cl.backoffMu.Lock()
	for _, base := range removed {
		delete(cl.backoff, base)
	}
	cl.backoffMu.Unlock()
	return added, removed
}

// Members returns the current member base URLs in listing order.
func (cl *Cluster) Members() []string {
	return append([]string(nil), cl.cur.Load().members...)
}

// Close releases every member client's idle connections.
func (cl *Cluster) Close() {
	for _, c := range cl.cur.Load().clients {
		c.Close()
	}
}

// Route returns the members that would be tried for these trace bytes, in
// order: the ring owner first, then its failover successors.
func (cl *Cluster) Route(trace []byte) []string {
	return cl.RouteDigest(RouteKey(trace))
}

// RouteDigest returns the failover order for a canonical content digest —
// what a router uses when a streaming submission asserts api.DigestHeader
// and the body has not (and will not) be read.
func (cl *Cluster) RouteDigest(digest string) []string {
	ms := cl.cur.Load()
	return ms.ring.Successors(digest, len(ms.members))
}

// failover reports whether an error from one member justifies trying the
// next ring successor rather than surfacing to the caller. It is the
// per-call retry classification — transport failures, bare 5xx, and
// retryable taxonomy codes — plus the member's client breaker being
// open (that member is known down; the successor is the whole point). A
// 4xx (bad trace, version skew, ...) will be 4xx everywhere. One
// retryable code deliberately does NOT fail over: quota_exceeded is the
// tenant's own backpressure, and hopping to a successor would both dodge
// the quota and trade a clear 429-with-Retry-After for node_down.
func failover(err error) bool {
	if api.ErrorCode(err) == api.CodeQuotaExceeded {
		return false
	}
	return failoverStream(err)
}

// Submit sends one trace to the owner of its route key, walking ring
// successors while members are down or draining. The returned JobInfo's
// ID carries the accepting node's prefix, which later routes Job and
// Diagnosis calls back to it.
func (cl *Cluster) Submit(ctx context.Context, req api.SubmitRequest) (api.JobInfo, error) {
	ms := cl.cur.Load()
	for _, member := range cl.orderByBackoff(ms.ring.Successors(RouteKey(req.Trace), len(ms.members))) {
		info, err := ms.clients[member].Submit(ctx, req)
		cl.observeForward(member, err)
		if err == nil {
			cl.learn(info.ID, member)
			return info, nil
		}
		if !failover(err) || ctx.Err() != nil {
			return api.JobInfo{}, err
		}
	}
	return api.JobInfo{}, api.Errorf(api.CodeNodeDown,
		"no fleet node accepted the submission (%d tried; all down or draining)", len(ms.members))
}

// nodeFromID extracts the node prefix a -node-id daemon bakes into its
// job IDs ("n1-job-000042" -> "n1") and upload-session IDs
// ("n1-up-000007" -> "n1"); IDs from unnamed daemons yield "".
func nodeFromID(id string) string {
	for _, sep := range []string{"-job-", "-up-"} {
		if i := strings.LastIndex(id, sep); i > 0 {
			return id[:i]
		}
	}
	return ""
}

// learn records which member produced a job ID, so later lookups for that
// node skip the resolution probe.
func (cl *Cluster) learn(jobID, member string) {
	node := nodeFromID(jobID)
	if node == "" {
		return
	}
	cl.mu.Lock()
	cl.nodeToMember[node] = member
	delete(cl.unresolved, member)
	cl.mu.Unlock()
}

// memberForNode resolves a job-ID node prefix to a member's client,
// probing unresolved members' metrics for their advertised node id on
// demand. Resolution is checked against the caller's membership view: a
// node learned under a member that has since left the roster does not
// resolve.
func (cl *Cluster) memberForNode(ctx context.Context, ms *membership, node string) (*Client, bool) {
	cl.mu.Lock()
	member, ok := cl.nodeToMember[node]
	var probe []string
	if !ok {
		for m := range cl.unresolved {
			if _, present := ms.clients[m]; present {
				probe = append(probe, m)
			}
		}
	}
	cl.mu.Unlock()
	if ok {
		c, present := ms.clients[member]
		return c, present
	}
	sort.Strings(probe) // deterministic probe order
	for _, m := range probe {
		metrics, err := ms.clients[m].Metrics(ctx)
		if err != nil {
			continue // down member: stays unresolved, retried next time
		}
		cl.mu.Lock()
		delete(cl.unresolved, m)
		if metrics.Node != "" {
			cl.nodeToMember[metrics.Node] = m
		}
		cl.mu.Unlock()
		if metrics.Node == node {
			return ms.clients[m], true
		}
	}
	return nil, false
}

// lookup routes a job-scoped call to the member that owns the job ID, or
// fans out across members for IDs without a node prefix. An unreachable
// owning member maps to api.CodeJobNotFound: the job's state is gone with
// the node (or will replay under a fresh ID when it comes back), and
// "not found" is the code that tells callers to use the recovery path —
// resubmit the same bytes, which is idempotent by digest.
func (cl *Cluster) lookup(ctx context.Context, id string, call func(*Client) error) error {
	ms := cl.cur.Load()
	if node := nodeFromID(id); node != "" {
		c, ok := cl.memberForNode(ctx, ms, node)
		if !ok {
			return api.Errorf(api.CodeJobNotFound,
				"job %s belongs to node %q, which is not a reachable cluster member; resubmit the trace (idempotent)", id, node)
		}
		err := call(c)
		if err != nil && failover(err) && ctx.Err() == nil {
			return api.Errorf(api.CodeJobNotFound,
				"job %s is on node %q, which is unreachable; resubmit the trace (idempotent)", id, node)
		}
		return err
	}
	// Prefix-less ID (unnamed daemon): ask everyone.
	var lastErr error = api.Errorf(api.CodeJobNotFound, "unknown job %q on every cluster member", id)
	for _, member := range ms.members {
		err := call(ms.clients[member])
		if err == nil {
			return nil
		}
		if api.ErrorCode(err) == api.CodeJobNotFound || failover(err) {
			lastErr = err
			continue
		}
		return err
	}
	if failover(lastErr) {
		return api.Errorf(api.CodeJobNotFound,
			"job %s not found on any reachable member; resubmit the trace (idempotent)", id)
	}
	return lastErr
}

// Job fetches one job's snapshot from the node that owns its ID.
func (cl *Cluster) Job(ctx context.Context, id string) (api.JobInfo, error) {
	var info api.JobInfo
	err := cl.lookup(ctx, id, func(c *Client) error {
		var cerr error
		info, cerr = c.Job(ctx, id)
		return cerr
	})
	return info, err
}

// Diagnosis fetches the finished report from the node that owns the job.
func (cl *Cluster) Diagnosis(ctx context.Context, id string) (api.Diagnosis, error) {
	var d api.Diagnosis
	err := cl.lookup(ctx, id, func(c *Client) error {
		var cerr error
		d, cerr = c.Diagnosis(ctx, id)
		return cerr
	})
	return d, err
}

// fanOut calls fn once per member of one membership view concurrently and
// returns the results in member order. Fan-out matters operationally: the
// monitoring endpoints (Metrics, Jobs, Health) are polled hardest exactly
// when the cluster is degraded, and probing a dead member costs its full
// per-call retry budget — sequentially, each dead node would add that
// latency to every aggregate call.
func fanOut[T any](ms *membership, fn func(member string, c *Client) (T, error)) ([]T, []error) {
	results := make([]T, len(ms.members))
	errs := make([]error, len(ms.members))
	var wg sync.WaitGroup
	for i, member := range ms.members {
		wg.Add(1)
		go func(i int, member string) {
			defer wg.Done()
			results[i], errs[i] = fn(member, ms.clients[member])
		}(i, member)
	}
	wg.Wait()
	return results, errs
}

// Jobs merges the job listings of every reachable member, in member then
// submission order. Unreachable members are skipped: a listing is a
// monitoring view, and a partial one beats none.
func (cl *Cluster) Jobs(ctx context.Context) ([]api.JobInfo, error) {
	ms := cl.cur.Load()
	lists, errs := fanOut(ms, func(_ string, c *Client) ([]api.JobInfo, error) {
		return c.Jobs(ctx)
	})
	var out []api.JobInfo
	reachable := 0
	var lastErr error
	for i, infos := range lists {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		reachable++
		out = append(out, infos...)
	}
	if reachable == 0 {
		if lastErr != nil && !failover(lastErr) {
			return nil, lastErr
		}
		return nil, api.Errorf(api.CodeNodeDown, "no fleet node reachable (%d tried)", len(ms.members))
	}
	return out, nil
}

// WaitDiagnosis polls the owning node until the job is terminal and
// returns its diagnosis, mirroring Client.WaitDiagnosis.
func (cl *Cluster) WaitDiagnosis(ctx context.Context, id string) (api.Diagnosis, error) {
	ms := cl.cur.Load()
	proto := ms.clients[ms.members[0]] // poll cadence comes from the shared options
	for {
		info, err := cl.Job(ctx, id)
		if err != nil {
			return api.Diagnosis{}, err
		}
		switch {
		case info.Status == api.StatusFailed:
			return api.Diagnosis{}, api.Errorf(api.CodeDiagnosisFailed,
				"job %s failed after %d attempts", id, info.Attempts)
		case info.Status.Terminal():
			return cl.Diagnosis(ctx, id)
		}
		if err := proto.sleep(ctx, proto.poll); err != nil {
			return api.Diagnosis{}, err
		}
	}
}

// SubmitAndWait is Submit followed by WaitDiagnosis on the accepted job.
func (cl *Cluster) SubmitAndWait(ctx context.Context, req api.SubmitRequest) (api.Diagnosis, error) {
	info, err := cl.Submit(ctx, req)
	if err != nil {
		return api.Diagnosis{}, err
	}
	return cl.WaitDiagnosis(ctx, info.ID)
}

// Metrics aggregates every reachable member's snapshot into one
// cluster-wide document: counters, cache sizes, and per-model/per-tenant
// maps sum; the latency percentiles take the worst (highest) node so the
// aggregate never understates tail latency; BreakerOpen is true if any
// node's breaker is open. Node is empty on the aggregate.
func (cl *Cluster) Metrics(ctx context.Context) (api.Metrics, error) {
	ms := cl.cur.Load()
	all, errs := fanOut(ms, func(_ string, c *Client) (api.Metrics, error) {
		return c.Metrics(ctx)
	})
	var snaps []api.Metrics
	var lastErr error
	for i, m := range all {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		snaps = append(snaps, m)
	}
	if len(snaps) == 0 {
		if lastErr != nil && !failover(lastErr) {
			return api.Metrics{}, lastErr
		}
		return api.Metrics{}, api.Errorf(api.CodeNodeDown, "no fleet node reachable (%d tried)", len(ms.members))
	}
	return AggregateMetrics(snaps), nil
}

// AggregateMetrics folds per-node metrics documents into the cluster
// view. Exported for iofleet-router, which serves the same aggregation
// over its own /metrics endpoint.
func AggregateMetrics(snaps []api.Metrics) api.Metrics {
	var agg api.Metrics
	var knows []api.KnowledgeStatus
	for _, m := range snaps {
		if m.Knowledge != nil {
			knows = append(knows, *m.Knowledge)
		}
		agg.Workers += m.Workers
		agg.Submitted += m.Submitted
		agg.Queued += m.Queued
		agg.QueuedInteractive += m.QueuedInteractive
		agg.QueuedBatch += m.QueuedBatch
		agg.Running += m.Running
		agg.Done += m.Done
		agg.Failed += m.Failed
		agg.CacheHits += m.CacheHits
		agg.Coalesced += m.Coalesced
		agg.CacheMisses += m.CacheMisses
		agg.CacheLen += m.CacheLen
		agg.OwnedDigests += m.OwnedDigests
		agg.Retries += m.Retries
		agg.BreakerOpen = agg.BreakerOpen || m.BreakerOpen
		agg.BreakerTrips += m.BreakerTrips
		agg.SemCacheHits += m.SemCacheHits
		agg.SemCacheMisses += m.SemCacheMisses
		agg.SemCacheGateRejects += m.SemCacheGateRejects
		agg.SemCacheEntries += m.SemCacheEntries
		agg.TierEscalations += m.TierEscalations
		if m.LatencyP50 > agg.LatencyP50 {
			agg.LatencyP50 = m.LatencyP50
		}
		if m.LatencyP95 > agg.LatencyP95 {
			agg.LatencyP95 = m.LatencyP95
		}
		for model, mm := range m.Models {
			if agg.Models == nil {
				agg.Models = make(map[string]api.ModelMetrics)
			}
			acc := agg.Models[model]
			acc.Calls += mm.Calls
			acc.PromptTokens += mm.PromptTokens
			acc.CompletionTokens += mm.CompletionTokens
			acc.CostUSD += mm.CostUSD
			agg.Models[model] = acc
		}
		for model, tm := range m.Tiers {
			if agg.Tiers == nil {
				agg.Tiers = make(map[string]api.TierMetrics)
			}
			acc := agg.Tiers[model]
			acc.Jobs += tm.Jobs
			acc.CostUSD += tm.CostUSD
			agg.Tiers[model] = acc
		}
		for tenant, n := range m.Tenants {
			if agg.Tenants == nil {
				agg.Tenants = make(map[string]int64)
			}
			agg.Tenants[tenant] += n
		}
		for tenant, n := range m.TenantsInflight {
			if agg.TenantsInflight == nil {
				agg.TenantsInflight = make(map[string]int64)
			}
			agg.TenantsInflight[tenant] += n
		}
		if m.Sched != nil {
			if agg.Sched == nil {
				agg.Sched = &api.SchedMetrics{}
			}
			// A single FIFO (or admission-enforcing) node marks the whole
			// aggregate: mixed modes are an operator condition worth seeing.
			agg.Sched.FIFO = agg.Sched.FIFO || m.Sched.FIFO
			agg.Sched.Admission = agg.Sched.Admission || m.Sched.Admission
			agg.Sched.Dequeues += m.Sched.Dequeues
			agg.Sched.Rejects += m.Sched.Rejects
			for lane, depth := range m.Sched.Lanes {
				if agg.Sched.Lanes == nil {
					agg.Sched.Lanes = make(map[string]int64)
				}
				agg.Sched.Lanes[lane] += depth
			}
			for tenant, tm := range m.Sched.Tenants {
				if agg.Sched.Tenants == nil {
					agg.Sched.Tenants = make(map[string]api.SchedTenant)
				}
				acc := agg.Sched.Tenants[tenant]
				if acc.Class == "" {
					acc.Class = tm.Class
				}
				if tm.Weight > acc.Weight {
					acc.Weight = tm.Weight
				}
				acc.Depth += tm.Depth
				acc.Dequeues += tm.Dequeues
				acc.Rejects += tm.Rejects
				// Age percentiles take the worst node, like the latency
				// gauges: the aggregate never understates queueing delay.
				if tm.AgeP50 > acc.AgeP50 {
					acc.AgeP50 = tm.AgeP50
				}
				if tm.AgeMax > acc.AgeMax {
					acc.AgeMax = tm.AgeMax
				}
				agg.Sched.Tenants[tenant] = acc
			}
		}
	}
	if agg.Submitted > 0 {
		agg.HitRate = float64(agg.CacheHits+agg.Coalesced) / float64(agg.Submitted)
	}
	if len(knows) > 0 {
		k := AggregateKnowledge(knows)
		agg.Knowledge = &k
	}
	// Each node caps its own tenant-label cardinality, but the UNION of
	// per-node maps can exceed any single node's cap when tenant sets are
	// disjoint — without re-capping, a cluster aggregate would grow labels
	// without bound as members are added. Re-apply the cap cluster-wide,
	// folding the smallest counters into the same overflow bucket the
	// nodes themselves use.
	capTenantJobs(agg.Tenants)
	if agg.Sched != nil {
		capSchedTenants(agg.Sched.Tenants)
	}
	return agg
}

// maxAggTenantLabels mirrors the per-node tenant-label cap (see
// internal/fleet): the cluster aggregate allows the same cardinality as
// one node, with the long tail under api.TenantOverflow.
const maxAggTenantLabels = 256

// capTenantJobs bounds a summed tenant→count map in place: beyond the cap
// the smallest counters (ties broken lexically, so the fold is
// deterministic across routers) collapse into api.TenantOverflow.
func capTenantJobs(tenants map[string]int64) {
	over := overflowTenants(len(tenants), func(yield func(string, int64)) {
		for t, n := range tenants {
			yield(t, n)
		}
	})
	for _, t := range over {
		tenants[api.TenantOverflow] += tenants[t]
		delete(tenants, t)
	}
}

// capSchedTenants is capTenantJobs for the scheduler rows: folded rows sum
// their counters into the overflow row (whose class/weight/age fields stay
// zero — a synthetic bucket carries no single tenant's configuration).
func capSchedTenants(tenants map[string]api.SchedTenant) {
	over := overflowTenants(len(tenants), func(yield func(string, int64)) {
		for t, tm := range tenants {
			yield(t, tm.Dequeues)
		}
	})
	for _, t := range over {
		acc := tenants[api.TenantOverflow]
		tm := tenants[t]
		acc.Depth += tm.Depth
		acc.Dequeues += tm.Dequeues
		acc.Rejects += tm.Rejects
		tenants[api.TenantOverflow] = acc
		delete(tenants, t)
	}
}

// overflowTenants selects which tenant labels to fold into the overflow
// bucket: the smallest by count (ties lexically) beyond the cap. The
// overflow key itself is never folded. n is the map's size; each collects
// the (tenant, count) pairs.
func overflowTenants(n int, each func(yield func(string, int64))) []string {
	if n <= maxAggTenantLabels {
		return nil
	}
	type row struct {
		tenant string
		count  int64
	}
	rows := make([]row, 0, n)
	each(func(tenant string, count int64) {
		if tenant != api.TenantOverflow {
			rows = append(rows, row{tenant, count})
		}
	})
	keep := maxAggTenantLabels
	if len(rows) <= keep {
		return nil
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].tenant < rows[j].tenant
	})
	over := make([]string, 0, len(rows)-keep)
	for _, r := range rows[keep:] {
		over = append(over, r.tenant)
	}
	return over
}

// SubmitStream streams one trace into the fleet without buffering it.
// With opts.Digest set the stream goes straight to the digest's ring
// owner (walking successors only while zero body bytes have been
// consumed, or after rewinding an io.Seeker body); without it the
// cluster cannot know the owner before reading the body, so the stream
// lands on the digest-less route's first member — any daemon accepts any
// trace; ownership only optimizes cache locality — and the response's
// api.DigestHeader teaches the caller the digest to assert next time.
func (cl *Cluster) SubmitStream(ctx context.Context, body io.Reader, opts StreamOpts) (api.JobInfo, error) {
	ms := cl.cur.Load()
	targets := ms.members
	if opts.Digest != "" {
		targets = ms.ring.Successors(opts.Digest, len(ms.members))
	}
	// The router's spool/forward path rides this loop, so the per-endpoint
	// backoff matters most here: a spooled stream must not pay a known-down
	// owner's full retry schedule on every submission.
	targets = cl.orderByBackoff(targets)
	consumed := newCountingReader(body)
	var lastErr error
	for _, member := range targets {
		if consumed.count() > 0 {
			// A previous attempt shipped bytes; only a rewindable body can
			// honestly be replayed at another member.
			if err := consumed.rewind(); err != nil {
				if lastErr == nil {
					lastErr = err
				}
				return api.JobInfo{}, lastErr
			}
		}
		// consumed preserves the body's io.Seeker (when it has one), so
		// the member client's own per-node retry budget still applies to
		// rewindable streams.
		info, err := ms.clients[member].SubmitStream(ctx, consumed.reader(), opts)
		cl.observeForward(member, err)
		if err == nil {
			cl.learn(info.ID, member)
			return info, nil
		}
		if !failover(err) || ctx.Err() != nil {
			return api.JobInfo{}, err
		}
		lastErr = err
	}
	return api.JobInfo{}, api.Errorf(api.CodeNodeDown,
		"no fleet node accepted the stream (%d candidates tried; all down or draining)", len(targets))
}

// countingReader tracks how many body bytes a stream attempt consumed,
// which is what decides whether failing over to another member is safe.
// When the underlying body is an io.Seeker, the wrapper stays one (via
// seekCountingReader), so downstream retry machinery keeps working.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(body io.Reader) *countingReader {
	return &countingReader{r: body}
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) count() int64 { return c.n }

// reader returns the value to hand downstream: a seek-preserving view
// when the body can rewind, else the plain counter.
func (c *countingReader) reader() io.Reader {
	if _, ok := c.r.(io.Seeker); ok {
		return seekCountingReader{c}
	}
	return c
}

// seekCountingReader adds Seek to a countingReader over a rewindable
// body, keeping the consumed-byte count honest across rewinds so the
// cluster failover loop's bookkeeping stays correct even when the member
// client rewound internally.
type seekCountingReader struct{ *countingReader }

func (s seekCountingReader) Seek(offset int64, whence int) (int64, error) {
	pos, err := s.r.(io.Seeker).Seek(offset, whence)
	if err == nil && offset == 0 && whence == io.SeekStart {
		s.n = 0
	}
	return pos, err
}

// rewind resets a rewindable body to its start; non-rewindable bodies
// report an error.
func (c *countingReader) rewind() error {
	s, ok := c.r.(io.Seeker)
	if !ok {
		return fmt.Errorf("client: stream partially shipped and not rewindable")
	}
	if _, err := s.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("client: rewind stream for failover: %w", err)
	}
	c.n = 0
	return nil
}

// UploadOpen opens a resumable upload session. A session with a claimed
// digest opens on the digest's ring owner — so the eventual job lands
// where its cache shard lives — and otherwise on the first reachable
// member. The returned ID carries the owning node's prefix; every later
// session call routes by it.
func (cl *Cluster) UploadOpen(ctx context.Context, opts StreamOpts) (api.UploadInfo, error) {
	ms := cl.cur.Load()
	targets := ms.members
	if opts.Digest != "" {
		targets = ms.ring.Successors(opts.Digest, len(ms.members))
	}
	var lastErr error = api.Errorf(api.CodeNodeDown, "no fleet node reachable (%d tried)", len(ms.members))
	for _, member := range targets {
		info, err := ms.clients[member].UploadOpen(ctx, opts)
		if err == nil {
			cl.learn(info.ID, member)
			return info, nil
		}
		if !failover(err) || ctx.Err() != nil {
			return api.UploadInfo{}, err
		}
		lastErr = err
	}
	if failover(lastErr) {
		lastErr = api.Errorf(api.CodeNodeDown, "no fleet node accepted the upload (%d tried)", len(targets))
	}
	return api.UploadInfo{}, lastErr
}

// uploadLookup routes a session-scoped call to the member whose node
// prefix the session ID carries. Unlike job lookups, a transient failure
// from the owner passes through UNCHANGED (retryable code and all):
// session state survives drains, open breakers, and — with -state-dir —
// even restarts, so the honest answer to "the owner hiccuped" is "retry",
// never "open a new session and re-upload". Only an owner that is not a
// configured, resolvable member at all maps to upload_not_found.
func (cl *Cluster) uploadLookup(ctx context.Context, id string, call func(*Client) error) error {
	ms := cl.cur.Load()
	node := nodeFromID(id)
	if node == "" {
		// Prefix-less ID (unnamed daemon): single-member fleets only.
		return call(ms.clients[ms.members[0]])
	}
	c, ok := cl.memberForNode(ctx, ms, node)
	if !ok {
		return api.Errorf(api.CodeUploadNotFound,
			"upload %s belongs to node %q, which is not a resolvable cluster member; open a new session", id, node)
	}
	return call(c)
}

// UploadAppend appends a chunk to the session on its owning node.
func (cl *Cluster) UploadAppend(ctx context.Context, id string, offset int64, chunk []byte) (api.UploadInfo, error) {
	var info api.UploadInfo
	err := cl.uploadLookup(ctx, id, func(c *Client) error {
		var cerr error
		info, cerr = c.UploadAppend(ctx, id, offset, chunk)
		return cerr
	})
	return info, err
}

// UploadStatus fetches the session snapshot from its owning node.
func (cl *Cluster) UploadStatus(ctx context.Context, id string) (api.UploadInfo, error) {
	var info api.UploadInfo
	err := cl.uploadLookup(ctx, id, func(c *Client) error {
		var cerr error
		info, cerr = c.UploadStatus(ctx, id)
		return cerr
	})
	return info, err
}

// UploadComplete finalizes the session into a job on its owning node.
// The returned job ID carries the same node prefix as the session, so
// Job/Diagnosis lookups route without any extra learning.
func (cl *Cluster) UploadComplete(ctx context.Context, id string) (api.JobInfo, error) {
	var info api.JobInfo
	err := cl.uploadLookup(ctx, id, func(c *Client) error {
		var cerr error
		info, cerr = c.UploadComplete(ctx, id)
		return cerr
	})
	return info, err
}

// UploadAbort discards the session on its owning node.
func (cl *Cluster) UploadAbort(ctx context.Context, id string) error {
	return cl.uploadLookup(ctx, id, func(c *Client) error {
		return c.UploadAbort(ctx, id)
	})
}

// SubmitChunked mirrors Client.SubmitChunked across the fleet: the
// session opens on the claimed digest's owner (or the first reachable
// member) and every chunk follows the session ID's node prefix home.
func (cl *Cluster) SubmitChunked(ctx context.Context, r io.Reader, chunkSize int, opts StreamOpts) (api.JobInfo, error) {
	return submitChunked(ctx, cl, r, chunkSize, opts)
}

// Health probes every member's metrics endpoint and reports the cluster
// roster: who is reachable, under what node id, and how much of the
// digest space each holds.
func (cl *Cluster) Health(ctx context.Context) api.ClusterHealth {
	rows, _ := fanOut(cl.cur.Load(), func(member string, c *Client) (api.NodeHealth, error) {
		row := api.NodeHealth{URL: member}
		m, err := c.Metrics(ctx)
		if err != nil {
			// Stable classification only: the raw error chain can embed
			// dial targets and is the caller's log's business, not a wire
			// payload's.
			row.Error = string(api.ErrorCode(err))
			if row.Error == "" {
				row.Error = "unreachable"
			}
			return row, nil
		}
		row.Healthy = true
		row.Node = m.Node
		row.OwnedDigests = m.OwnedDigests
		if m.Knowledge != nil {
			row.KnowledgeEpoch = m.Knowledge.Epoch
		}
		if m.Node != "" {
			cl.mu.Lock()
			cl.nodeToMember[m.Node] = member
			delete(cl.unresolved, member)
			cl.mu.Unlock()
		}
		return row, nil
	})
	return api.ClusterHealth{Nodes: rows, KnowledgeEpochSkew: knowledgeSkew(rows)}
}

// knowledgeSkew reports whether two healthy knowledge-serving members
// disagree on the promoted corpus epoch — the signature of a swap that
// reached part of the fleet only. Members without a plane (epoch 0) and
// unhealthy members don't count: they serve no retrievals to skew.
func knowledgeSkew(rows []api.NodeHealth) bool {
	var seen uint64
	for _, row := range rows {
		if !row.Healthy || row.KnowledgeEpoch == 0 {
			continue
		}
		if seen == 0 {
			seen = row.KnowledgeEpoch
		} else if row.KnowledgeEpoch != seen {
			return true
		}
	}
	return false
}
