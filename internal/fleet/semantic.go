package fleet

// Semantic result reuse and cost-aware tier scheduling: the pool-side half
// of internal/fleet/semcache. Everything here runs on worker goroutines —
// the gate and the tier self-check make LLM calls, so none of it may hold
// p.mu.

import (
	"ioagent/internal/darshan"
	"ioagent/internal/fleet/semcache"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

// semLookupK is how many similarity candidates one miss considers. Only
// the best live candidate reaches the judge, so k bounds stale-entry
// cleanup work, not LLM cost.
const semLookupK = 4

// semanticReuse tries to serve a cache miss from a near-duplicate's cached
// diagnosis. It returns ok=false — and counts a semcache miss or gate
// reject — when the submission must fall through to a fresh diagnosis.
func (p *Pool) semanticReuse(log *darshan.Log, features string) (res *ioagent.Result, source string, conf float64, ok bool) {
	for _, cand := range p.sem.Lookup(features, semLookupK) {
		if cand.Score < p.cfg.SimThreshold {
			break // candidates are best-first; the rest are even farther
		}
		if semcache.Modality(cand.Features) != semcache.Modality(features) {
			// Cross-modality fence: a DXT per-operation trace must never
			// be served a diagnosis produced from Darshan counters (or
			// vice versa), however close the derived profiles sit — the
			// evidence classes differ, so the cached reasoning does not
			// transfer. Skipped before any gate spend.
			continue
		}
		cached, live := p.cache.Get(cand.Digest)
		if !live {
			// The source diagnosis expired between eviction hook and
			// lookup; drop the orphaned vector and try the next candidate.
			p.sem.Remove(cand.Digest)
			continue
		}
		dec, err := p.gate.Evaluate(log, cached.Text, cand.Score)
		if err != nil {
			// A gate that cannot decide must not guess: treat the
			// submission as a plain miss and pay for a fresh diagnosis.
			p.m.countSem(&p.m.semMisses)
			return nil, "", 0, false
		}
		if !dec.Reuse {
			p.m.countSem(&p.m.semGateRejects)
			return nil, "", 0, false
		}
		p.m.countSem(&p.m.semHits)
		return cached, cand.Digest, dec.Confidence, true
	}
	p.m.countSem(&p.m.semMisses)
	return nil, "", 0, false
}

// diagnose runs one diagnosis attempt: the shared agent directly, or the
// cheapest-first tier ladder when Config.TierModels is set. Transient
// errors propagate to runJob's retry/breaker loop unchanged.
func (p *Pool) diagnose(log *darshan.Log) (*ioagent.Result, error) {
	if len(p.tiers) == 0 {
		return p.agent.Diagnose(log)
	}
	var res *ioagent.Result
	for i, agent := range p.tiers {
		r, err := agent.Diagnose(log)
		if err != nil {
			return nil, err
		}
		res = r
		p.m.countTierJob(p.cfg.TierModels[i])
		if i == len(p.tiers)-1 {
			break // the last rung is always accepted
		}
		if p.cfg.TierBudgetUSD > 0 && p.llmSpendUSD() >= p.cfg.TierBudgetUSD {
			break // budget exhausted: stop escalating, serve what we have
		}
		score, err := p.gate.ScoreDiagnosis(log, r.Text)
		if err != nil {
			break // cannot self-check: accept this rung rather than guess
		}
		if score >= p.cfg.TierThreshold {
			break
		}
		p.m.countSem(&p.m.tierEscalations)
	}
	return res, nil
}

// llmSpendUSD is the pool's lifetime LLM spend across agents and judge
// calls — the number Config.TierBudgetUSD is enforced against.
func (p *Pool) llmSpendUSD() float64 {
	var total float64
	for _, ms := range p.StatsByModel() {
		total += ms.CostUSD
	}
	return total
}

// StatsByModel aggregates per-model usage across the shared agent, every
// tier rung, and the reuse-gate judge calls. Serving layers expose it on
// /metrics; the tier scheduler enforces the budget against its sum.
func (p *Pool) StatsByModel() map[string]ioagent.ModelStats {
	out := p.agent.StatsByModel()
	merge := func(stats map[string]ioagent.ModelStats) {
		for model, ms := range stats {
			agg := out[model]
			agg.Usage.PromptTokens += ms.Usage.PromptTokens
			agg.Usage.CompletionTokens += ms.Usage.CompletionTokens
			agg.CostUSD += ms.CostUSD
			agg.Calls += ms.Calls
			out[model] = agg
		}
	}
	for _, agent := range p.tiers {
		if agent == p.agent {
			continue // already counted as the base map
		}
		merge(agent.StatsByModel())
	}
	p.gateMu.Lock()
	merge(p.gateStats)
	p.gateMu.Unlock()
	return out
}

// recordGateUsage accumulates one judge call's usage (recordingClient
// callback).
func (p *Pool) recordGateUsage(resp llm.Response) {
	p.gateMu.Lock()
	defer p.gateMu.Unlock()
	if p.gateStats == nil {
		p.gateStats = make(map[string]ioagent.ModelStats)
	}
	ms := p.gateStats[resp.Model]
	ms.Usage.PromptTokens += resp.Usage.PromptTokens
	ms.Usage.CompletionTokens += resp.Usage.CompletionTokens
	ms.CostUSD += resp.CostUSD
	ms.Calls++
	p.gateStats[resp.Model] = ms
}

// recordingClient wraps the pool's LLM client so judge traffic — which
// goes through no ioagent.Agent — still lands in the pool's per-model
// accounting.
type recordingClient struct {
	inner  llm.Client
	record func(llm.Response)
}

func (c *recordingClient) Complete(req llm.Request) (llm.Response, error) {
	resp, err := c.inner.Complete(req)
	if err == nil {
		c.record(resp)
	}
	return resp, err
}

// SemEntry is one persisted similarity-index entry (re-exported so the
// persistence layer depends only on fleet types, mirroring CacheEntry).
type SemEntry = semcache.Entry

// SemExport snapshots the similarity index for persistence; nil when
// semantic reuse is disabled.
func (p *Pool) SemExport() []SemEntry {
	if p.sem == nil {
		return nil
	}
	return p.sem.Export()
}

// SemRestore seeds the similarity index from a persisted snapshot. It must
// run after CacheRestore: entries whose digest has no live cache backing
// are dropped, preserving the invariant that a vector never points at a
// diagnosis the cache cannot serve.
func (p *Pool) SemRestore(entries []SemEntry) {
	if p.sem == nil {
		return
	}
	for _, e := range entries {
		if e.Digest == "" || e.Features == "" || !p.cache.contains(e.Digest) {
			continue
		}
		p.sem.Add(e.Digest, e.Features)
	}
}

// SemLen reports the number of indexed similarity vectors (0 when
// semantic reuse is disabled).
func (p *Pool) SemLen() int {
	if p.sem == nil {
		return 0
	}
	return p.sem.Len()
}
