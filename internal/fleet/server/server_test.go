package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	fleetknowledge "ioagent/internal/fleet/knowledge"
	"ioagent/internal/fleet/store"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

// testTrace builds a deterministic small-write trace; distinct seeds give
// distinct digests.
func testTrace(seed int) *darshan.Log {
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*17 + 9, NProcs: 4, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/e2e/job%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/e2e-%03d.dat", seed), iosim.POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 8; i++ {
			f.WriteAt(rank, (int64(rank)*8+i)*4096, 4096)
		}
	}
	f.Close()
	return sim.Finalize()
}

func encodeTraceBytes(t *testing.T, log *darshan.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, log); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testMux boots the HTTP surface over a small real pool.
func testMux(t *testing.T, maxBody int64) (*fleet.Pool, *httptest.Server) {
	t.Helper()
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers: 2,
		Agent:   ioagent.Options{Index: knowledge.BuildIndex()},
	})
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(NewMux(Config{Pool: pool, MaxBody: maxBody}))
	t.Cleanup(srv.Close)
	return pool, srv
}

// apiError decodes the error envelope from a non-2xx response.
func apiError(t *testing.T, resp *http.Response) api.Error {
	t.Helper()
	defer resp.Body.Close()
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not an api.Error envelope: %v", err)
	}
	return e
}

func TestMuxErrorTaxonomy(t *testing.T) {
	_, srv := testMux(t, 64<<20)

	// Unknown job: job_not_found on 404.
	resp, err := http.Get(srv.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	if e := apiError(t, resp); resp.StatusCode != http.StatusNotFound || e.Code != api.CodeJobNotFound {
		t.Errorf("unknown job = %s / %q, want 404 job_not_found", resp.Status, e.Code)
	}

	// Garbage body: bad_trace on 400, with no decoder internals leaked.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	e := apiError(t, resp)
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadTrace {
		t.Errorf("garbage trace = %s / %q, want 400 bad_trace", resp.Status, e.Code)
	}
	if strings.Contains(e.Message, "%!") || strings.Contains(e.Message, ".go:") {
		t.Errorf("error message leaks internals: %q", e.Message)
	}

	// Unknown lane: bad_request on 400.
	resp, err = http.Post(srv.URL+"/v1/jobs?lane=bulk", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	if e := apiError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadRequest {
		t.Errorf("unknown lane = %s / %q, want 400 bad_request", resp.Status, e.Code)
	}

	// Oversized tenant: bad_request, before the body is even considered.
	longTenant := strings.Repeat("t", api.MaxTenantLen+1)
	resp, err = http.Post(srv.URL+"/v1/jobs?tenant="+longTenant, "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	if e := apiError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadRequest {
		t.Errorf("oversized tenant = %s / %q, want 400 bad_request", resp.Status, e.Code)
	}

	// Unmatched path: still an enveloped error, still version-stamped —
	// the mux's built-in plain-text 404 never reaches the wire.
	resp, err = http.Get(srv.URL + "/v2/nope")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(api.VersionHeader); got != api.Current.String() {
		t.Errorf("404 version header = %q, want %q", got, api.Current)
	}
	if e := apiError(t, resp); resp.StatusCode != http.StatusNotFound || e.Code != api.CodeNotFound {
		t.Errorf("unknown endpoint = %s / %q, want 404 not_found", resp.Status, e.Code)
	}
}

func TestMuxMaxBodyReturnsTraceTooLarge(t *testing.T) {
	_, srv := testMux(t, 512)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/octet-stream",
		bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	e := apiError(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || e.Code != api.CodeTraceTooLarge {
		t.Fatalf("oversized body = %s / %q, want 413 trace_too_large", resp.Status, e.Code)
	}
	if !strings.Contains(e.Message, "512") {
		t.Errorf("message should name the configured limit, got %q", e.Message)
	}
}

func TestMuxVersionNegotiation(t *testing.T) {
	_, srv := testMux(t, 64<<20)

	// Every response advertises the server's version.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.VersionHeader); got != api.Current.String() {
		t.Errorf("advertised version = %q, want %q", got, api.Current)
	}

	// A compatible minor skew is accepted.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs", nil)
	req.Header.Set(api.VersionHeader, "1.9")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("minor skew = %s, want 200", resp.Status)
	}

	// An incompatible major is refused with the stable code.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs", nil)
	req.Header.Set(api.VersionHeader, "2.0")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if e := apiError(t, resp); e.Code != api.CodeUnsupportedVersion {
		t.Errorf("major skew code = %q, want unsupported_version", e.Code)
	}

	// A malformed header is a bad request, not a crash or a silent pass.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs", nil)
	req.Header.Set(api.VersionHeader, "latest")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if e := apiError(t, resp); e.Code != api.CodeBadRequest {
		t.Errorf("malformed version code = %q, want bad_request", e.Code)
	}
}

// TestMuxNodeIdentity: a -node-id daemon stamps every response with
// X-Fleet-Node and advertises the id in its metrics document.
func TestMuxNodeIdentity(t *testing.T) {
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers: 1, NodeID: "n7",
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(NewMux(Config{Pool: pool, NodeID: "n7"}))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.NodeHeader); got != "n7" {
		t.Errorf("node header = %q, want n7", got)
	}

	c := client.New(srv.URL)
	t.Cleanup(c.Close)
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Node != "n7" {
		t.Errorf("metrics node = %q, want n7", m.Node)
	}

	// Jobs carry the node prefix, the root of cluster-wide ID routing.
	info, err := c.Submit(context.Background(), api.SubmitRequest{Trace: encodeTraceBytes(t, testTrace(41))})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, "n7-job-") {
		t.Errorf("job id = %q, want an n7-job- prefix", info.ID)
	}
}

// TestMuxClientRoundTrip drives the real mux through the SDK: submit on
// the batch lane under a tenant, wait the diagnosis, and read both
// metrics renderings.
func TestMuxClientRoundTrip(t *testing.T) {
	_, srv := testMux(t, 64<<20)
	c := client.New(srv.URL, client.WithPollInterval(10*time.Millisecond))
	t.Cleanup(c.Close)
	ctx := context.Background()

	raw := encodeTraceBytes(t, testTrace(11))
	info, err := c.Submit(ctx, api.SubmitRequest{Lane: api.LaneBatch, Tenant: "acme", Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if info.Lane != api.LaneBatch {
		t.Errorf("accepted lane = %q, want batch", info.Lane)
	}
	if info.Tenant != "acme" {
		t.Errorf("accepted tenant = %q, want acme", info.Tenant)
	}
	diag, err := c.WaitDiagnosis(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Text == "" || diag.JobID != info.ID || diag.Lane != api.LaneBatch {
		t.Errorf("diagnosis = %+v, want text and matching job/lane", diag)
	}

	// A duplicate submission is answered by the digest, not re-run — even
	// from another tenant (the cache is content-addressed, not
	// tenant-scoped).
	dup, err := c.Submit(ctx, api.SubmitRequest{Lane: api.LaneInteractive, Tenant: "globex", Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.CacheHit {
		t.Errorf("duplicate submit = %+v, want a cache hit (idempotent resubmit)", dup)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Submitted < 2 || len(m.Models) == 0 {
		t.Errorf("metrics = %+v, want submissions and per-model counters", m)
	}
	for model, ms := range m.Models {
		if ms.Calls <= 0 || ms.PromptTokens <= 0 {
			t.Errorf("model %s counters = %+v, want nonzero calls and tokens", model, ms)
		}
	}
	if m.Tenants["acme"] != 1 || m.Tenants["globex"] != 1 {
		t.Errorf("tenant counters = %v, want acme:1 globex:1", m.Tenants)
	}
	if m.OwnedDigests < 1 {
		t.Errorf("owned digests = %d, want >= 1 after a cached diagnosis", m.OwnedDigests)
	}
}

func TestMuxPrometheusExposition(t *testing.T) {
	pool, srv := testMux(t, 64<<20)
	job, err := pool.SubmitWith(testTrace(12), fleet.SubmitOpts{Lane: fleet.LaneBatch, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE fleet_jobs_submitted_total counter",
		"fleet_jobs_submitted_total 1",
		`fleet_jobs_queued{lane="interactive"}`,
		`fleet_jobs_queued{lane="batch"}`,
		"fleet_jobs_done_total 1",
		"fleet_owned_digests 1",
		"fleet_breaker_open 0",
		"fleet_breaker_trips_total 0",
		`fleet_tenant_jobs_total{tenant="acme"} 1`,
		`fleet_model_tokens_total{model="` + llm.GPT4o + `",kind="prompt"}`,
		`fleet_model_cost_usd_total{model="` + llm.GPT4o + `"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Without the Accept header the JSON snapshot stays the default.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m api.Metrics
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	if m.Done != 1 {
		t.Errorf("JSON metrics done = %d, want 1", m.Done)
	}

	// An explicitly excluded text/plain (q=0, RFC 9110) keeps JSON too.
	req3, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req3.Header.Set("Accept", "application/json, text/plain;q=0")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if err := json.NewDecoder(resp3.Body).Decode(&m); err != nil {
		t.Errorf("text/plain;q=0 must keep the JSON default: %v", err)
	}
}

// TestMuxSemanticReuseProvenance pins the 1.3 wire surface: a
// near-duplicate submission served by the similarity cache reports
// similarity_hit with the source trace's digest on both the job record
// and the diagnosis document, and the exposition carries the semcache
// and tier series.
func TestMuxSemanticReuseProvenance(t *testing.T) {
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers:  2,
		Agent:    ioagent.Options{Index: knowledge.BuildIndex()},
		SemCache: true,
		// The unit gate threshold: mechanics, not calibration (the bench
		// calibrates the default).
		GateThreshold: 0.5,
		TierModels:    []string{llm.GPT4oMini, llm.GPT4o},
	})
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(NewMux(Config{Pool: pool, MaxBody: 64 << 20}))
	t.Cleanup(srv.Close)

	base := testTrace(21)
	j1, err := pool.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}

	// The near-duplicate: the text rendering plus one extra metadata
	// line — a new content digest, an identical I/O profile.
	text, err := darshan.TextString(base)
	if err != nil {
		t.Fatal(err)
	}
	dup := []byte(text + "# metadata: run_variant = rerun\n")
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/octet-stream", bytes.NewReader(dup))
	if err != nil {
		t.Fatal(err)
	}
	var info api.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	c := client.New(srv.URL)
	defer c.Close()
	diag, err := c.WaitDiagnosis(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.SimilarityHit {
		t.Fatalf("near-duplicate was not a similarity hit: %+v", diag)
	}
	if diag.CacheHit {
		t.Error("similarity hit must not also claim an exact cache hit")
	}
	if diag.SourceDigest != j1.Digest() {
		t.Errorf("diagnosis source digest = %.12s, want the base job's %.12s", diag.SourceDigest, j1.Digest())
	}
	if diag.Confidence < 0.5 {
		t.Errorf("stamped confidence %.3f below the gate threshold", diag.Confidence)
	}
	// The job record carries the same provenance.
	jresp, err := http.Get(srv.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var jinfo api.JobInfo
	if err := json.NewDecoder(jresp.Body).Decode(&jinfo); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if !jinfo.SimilarityHit || jinfo.SourceDigest != j1.Digest() {
		t.Errorf("job record provenance = %+v, want similarity hit from %.12s", jinfo, j1.Digest())
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"fleet_semcache_hits_total 1",
		"fleet_semcache_entries 1",
		"# TYPE fleet_semcache_gate_rejects_total counter",
		`fleet_tier_jobs_total{model="` + llm.GPT4oMini + `"} 1`,
		`fleet_tier_cost_usd_total{model="` + llm.GPT4oMini + `"}`,
		"fleet_tier_escalations_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMuxDoesNotLeakFailureDetail pins the satellite requirement: a job
// that failed with an internal error chain surfaces on the wire only as
// the stable diagnosis_failed code.
func TestMuxDoesNotLeakFailureDetail(t *testing.T) {
	pool := fleet.New(&alwaysFail{}, fleet.Config{
		Workers: 1, MaxAttempts: 1,
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(NewMux(Config{Pool: pool}))
	t.Cleanup(srv.Close)

	job, err := pool.Submit(testTrace(13))
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()

	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID())
	if err != nil {
		t.Fatal(err)
	}
	var info api.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Status != api.StatusFailed || info.Error != string(api.CodeDiagnosisFailed) {
		t.Errorf("failed job on the wire = %+v, want the bare diagnosis_failed code", info)
	}
	if strings.Contains(info.Error, "/secret/") {
		t.Errorf("wire error leaks internal detail: %q", info.Error)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID() + "/diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	e := apiError(t, resp)
	if resp.StatusCode != http.StatusBadGateway || e.Code != api.CodeDiagnosisFailed {
		t.Errorf("failed diagnosis = %s / %q, want 502 diagnosis_failed", resp.Status, e.Code)
	}
	if strings.Contains(e.Message, "/secret/") {
		t.Errorf("diagnosis error leaks internal detail: %q", e.Message)
	}
}

// TestMuxBreakerOpenRefusesSubmissions: once the pool's circuit breaker
// trips, POST /v1/jobs answers a retryable 503 breaker_open instead of
// accepting jobs doomed to fail — the signal routers use to fail this
// node's shard over to a ring successor.
func TestMuxBreakerOpenRefusesSubmissions(t *testing.T) {
	pool := fleet.New(&alwaysDown{}, fleet.Config{
		Workers: 1, MaxAttempts: 1, RetryDelay: time.Nanosecond,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(NewMux(Config{Pool: pool}))
	t.Cleanup(srv.Close)

	// Trip the breaker with two transiently failing jobs.
	for seed := 30; seed < 32; seed++ {
		job, err := pool.Submit(testTrace(seed))
		if err != nil {
			t.Fatal(err)
		}
		job.Wait()
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/octet-stream",
		bytes.NewReader(encodeTraceBytes(t, testTrace(33))))
	if err != nil {
		t.Fatal(err)
	}
	e := apiError(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != api.CodeBreakerOpen {
		t.Fatalf("submit with open breaker = %s / %q, want 503 breaker_open", resp.Status, e.Code)
	}
	if !e.Code.Retryable() {
		t.Error("breaker_open must be retryable so routers fail over")
	}

	// Monitoring still sees the raw open state.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m api.Metrics
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if !m.BreakerOpen || m.BreakerTrips != 1 {
		t.Errorf("metrics breaker open=%v trips=%d, want open with 1 trip", m.BreakerOpen, m.BreakerTrips)
	}
}

// alwaysDown fails transiently on every call — a dead backend.
type alwaysDown struct{}

func (alwaysDown) Complete(llm.Request) (llm.Response, error) {
	return llm.Response{}, llm.Transient(fmt.Errorf("backend down"))
}

// alwaysFail emits a permanent error that embeds the kind of path detail
// the old surface used to echo to clients.
type alwaysFail struct{}

func (alwaysFail) Complete(llm.Request) (llm.Response, error) {
	return llm.Response{}, &pathError{}
}

type pathError struct{}

func (*pathError) Error() string { return "open /secret/state/journal.wal: permission denied" }

// TestMuxDrainRejectsAndJournals pins the drain behavior deterministically:
// once draining flips, POST /v1/jobs answers 503 and the refusal lands in
// the journal, while read endpoints keep serving.
func TestMuxDrainRejectsAndJournals(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers: 1,
		Agent:   ioagent.Options{Index: knowledge.BuildIndex()},
	})
	defer pool.Close()
	var draining atomic.Bool
	srv := httptest.NewServer(NewMux(Config{Pool: pool, Store: st, Draining: &draining}))
	defer srv.Close()

	raw := encodeTraceBytes(t, testTrace(3))

	// Healthy: accepted.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-drain submit = %s, want 202", resp.Status)
	}

	// Draining: refused with 503 and journaled.
	draining.Store(true)
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain submit = %s, want 503", resp.Status)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("drain error body = %s, want a draining explanation", body)
	}
	journal, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), `"op":"reject"`) || !strings.Contains(string(journal), "draining") {
		t.Errorf("journal should record the refusal, got %q", journal)
	}

	// Reads still work mid-drain.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics during drain = %s, want 200", resp.Status)
	}
}

// TestMuxKnowledgeEndpoints pins the 1.4 knowledge surface: disabled nodes
// answer knowledge_disabled, enabled nodes serve status, staged upserts,
// atomic swaps (including the nothing_staged refusal), the search probe,
// and the fleet_knowledge_* exposition series.
func TestMuxKnowledgeEndpoints(t *testing.T) {
	// A daemon without a plane: stable 404, not a bare mux miss.
	_, bare := testMux(t, 64<<20)
	resp, err := http.Get(bare.URL + "/v1/knowledge")
	if err != nil {
		t.Fatal(err)
	}
	if e := apiError(t, resp); resp.StatusCode != http.StatusNotFound || e.Code != api.CodeKnowledgeDisabled {
		t.Fatalf("knowledge on a bare node = %s / %q, want 404 knowledge_disabled", resp.Status, e.Code)
	}

	plane := fleetknowledge.New(fleetknowledge.Config{})
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers:   1,
		Agent:     ioagent.Options{Index: knowledge.BuildIndex()},
		Knowledge: plane,
	})
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(NewMux(Config{Pool: pool, MaxBody: 64 << 20}))
	t.Cleanup(srv.Close)
	postJSON := func(path string, body any) *http.Response {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Status: the seed corpus is promoted as epoch 1.
	resp, err = http.Get(srv.URL + "/v1/knowledge")
	if err != nil {
		t.Fatal(err)
	}
	var ks api.KnowledgeStatus
	if err := json.NewDecoder(resp.Body).Decode(&ks); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ks.Epoch != 1 || ks.Docs == 0 || ks.OwnedDocs != ks.Docs {
		t.Fatalf("seed status = %+v, want epoch 1 with a fully owned corpus", ks)
	}

	// Swapping with nothing staged is a 409.
	resp = postJSON("/v1/knowledge/swap", struct{}{})
	if e := apiError(t, resp); resp.StatusCode != http.StatusConflict || e.Code != api.CodeNothingStaged {
		t.Fatalf("empty swap = %s / %q, want 409 nothing_staged", resp.Status, e.Code)
	}

	// An empty-key document is refused before anything is staged.
	resp = postJSON("/v1/knowledge/docs", api.KnowledgeUpsertRequest{
		Docs: []api.KnowledgeDoc{{Text: "anonymous"}},
	})
	if e := apiError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadRequest {
		t.Fatalf("empty-key upsert = %s / %q, want 400 bad_request", resp.Status, e.Code)
	}

	// Stage a document; it must not serve until the swap.
	resp = postJSON("/v1/knowledge/docs", api.KnowledgeUpsertRequest{
		Docs: []api.KnowledgeDoc{{Key: "ops2030runbook", Title: "Runbook", Text: "Drain the burst buffer before maintenance windows to avoid checkpoint stalls."}},
	})
	if err := json.NewDecoder(resp.Body).Decode(&ks); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ks.StagedOps != 1 || ks.Epoch != 1 {
		t.Fatalf("post-upsert status = %+v, want 1 staged op on epoch 1", ks)
	}

	resp = postJSON("/v1/knowledge/search", api.KnowledgeSearchRequest{Query: "drain the burst buffer before maintenance"})
	var sr api.KnowledgeSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, h := range sr.Hits {
		if h.Key == "ops2030runbook" {
			t.Fatal("staged document visible to retrieval before the swap")
		}
	}

	// Swap promotes epoch 2 and the document becomes retrievable.
	resp = postJSON("/v1/knowledge/swap", struct{}{})
	var swap api.KnowledgeSwapResponse
	if err := json.NewDecoder(resp.Body).Decode(&swap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if swap.Epoch != 2 {
		t.Fatalf("swap epoch = %d, want 2", swap.Epoch)
	}
	resp = postJSON("/v1/knowledge/search", api.KnowledgeSearchRequest{Query: "drain the burst buffer before maintenance"})
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, h := range sr.Hits {
		found = found || h.Key == "ops2030runbook"
	}
	if !found || sr.Epoch != 2 {
		t.Fatalf("post-swap search (epoch %d, %d hits) did not surface the new document", sr.Epoch, len(sr.Hits))
	}

	// Both metrics renderings carry the plane.
	var m api.Metrics
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Knowledge == nil || m.Knowledge.Epoch != 2 || m.Knowledge.Queries < 2 {
		t.Fatalf("metrics knowledge = %+v, want epoch 2 with served queries", m.Knowledge)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"fleet_knowledge_epoch 2",
		"fleet_knowledge_staged_ops 0",
		`fleet_knowledge_index_queries_total{path="ann"}`,
		`fleet_knowledge_index_queries_total{path="exact"}`,
		"# TYPE fleet_knowledge_queries_total counter",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMuxSchedEndpoints drives the api 1.6 fairness surface end to end:
// status, runtime class assignment (journaled through the hook), clear,
// validation, and both metrics renderings of the sched block.
func TestMuxSchedEndpoints(t *testing.T) {
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers: 2,
		Agent:   ioagent.Options{Index: knowledge.BuildIndex()},
		TenantClasses: map[string]string{
			"acme": "gold",
		},
	})
	t.Cleanup(pool.Close)
	var journaled []string
	srv := httptest.NewServer(NewMux(Config{Pool: pool, OnTenantClass: func(tenant, class string) error {
		journaled = append(journaled, tenant+"="+class)
		return nil
	}}))
	t.Cleanup(srv.Close)

	// Status: the built-in class ladder and the boot-time assignment.
	var st api.SchedStatus
	resp, err := http.Get(srv.URL + "/v1/sched")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.FIFO || st.Admission {
		t.Fatalf("status flags = %+v, want DRR without admission", st)
	}
	if st.Classes["gold"].Weight != 8 || st.Classes["gold"].MaxQueueAge != 2*time.Second {
		t.Fatalf("gold class = %+v", st.Classes["gold"])
	}
	if st.Assignments["acme"] != "gold" {
		t.Fatalf("assignments = %v, want acme=gold", st.Assignments)
	}

	post := func(body string) (*http.Response, error) {
		return http.Post(srv.URL+"/v1/sched/tenants", "application/json", strings.NewReader(body))
	}

	// Assign at runtime; the response is the updated status and the
	// change reaches the journal hook.
	resp, err = post(`{"tenant":"umbrella","class":"silver"}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Assignments["umbrella"] != "silver" {
		t.Fatalf("assignments after POST = %v", st.Assignments)
	}

	// Clear with the empty class. Decode into a fresh struct — decoding
	// into a populated map merges instead of replacing.
	resp, err = post(`{"tenant":"umbrella","class":""}`)
	if err != nil {
		t.Fatal(err)
	}
	var cleared api.SchedStatus
	if err := json.NewDecoder(resp.Body).Decode(&cleared); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := cleared.Assignments["umbrella"]; ok {
		t.Fatalf("umbrella still assigned after clear: %v", cleared.Assignments)
	}
	if len(journaled) != 2 || journaled[0] != "umbrella=silver" || journaled[1] != "umbrella=" {
		t.Fatalf("journal hook saw %v", journaled)
	}

	// Validation: unknown class and missing tenant are bad_request.
	for _, body := range []string{`{"tenant":"x","class":"platinum"}`, `{"class":"gold"}`} {
		resp, err := post(body)
		if err != nil {
			t.Fatal(err)
		}
		if e := apiError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadRequest {
			t.Errorf("POST %s = %s / %q, want 400 bad_request", body, resp.Status, e.Code)
		}
	}

	// A tenant-attributed submission surfaces in both metrics renderings.
	trace := encodeTraceBytes(t, testTrace(71))
	resp, err = http.Post(srv.URL+"/v1/jobs?tenant=acme", "application/octet-stream", bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	pool.Wait()

	var m api.Metrics
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Sched == nil || m.Sched.Dequeues < 1 {
		t.Fatalf("metrics sched block = %+v, want dequeues", m.Sched)
	}
	if ten := m.Sched.Tenants["acme"]; ten.Class != "gold" || ten.Weight != 8 || ten.Dequeues < 1 {
		t.Fatalf("acme sched tenant = %+v", m.Sched.Tenants["acme"])
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"fleet_sched_fifo 0",
		"fleet_sched_dequeues_total",
		`fleet_sched_tenant_weight{tenant="acme"} 8`,
		`fleet_sched_tenant_dequeues_total{tenant="acme"}`,
		"# TYPE fleet_sched_tenant_queue_age_p50_seconds gauge",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
