// Package server implements the iofleetd HTTP surface over the versioned
// wire contract in internal/fleet/api: route registration, version
// negotiation, node-identity stamping, trace decoding, the error-envelope
// discipline, and both metrics renderings (JSON and Prometheus text
// exposition).
//
// It exists as a package (rather than living inside cmd/iofleetd) so that
// every party that needs a real daemon surface can build one in-process:
// the iofleetd binary itself, the iofleet-router's failover tests, and
// examples that boot a miniature cluster. The split also keeps the
// daemon's and the router's HTTP conventions literally the same code —
// WriteError, WriteJSON, WantsText, WithVersion, and WritePrometheus are
// shared, so "every non-2xx response is an api.Error envelope stamped
// with version and node headers" holds across the whole fleet by
// construction.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/store"
	"ioagent/internal/ioagent"
)

// Config assembles one daemon surface. Pool is required; everything else
// has a safe zero value.
type Config struct {
	// Pool runs the diagnoses.
	Pool *fleet.Pool
	// Store, when non-nil, journals refused submissions (the audit trail
	// behind iofleetd -state-dir).
	Store *store.Store
	// Draining, when non-nil and true, refuses new submissions with
	// api.CodeDraining (and journals the refusal) while reads keep
	// serving — the SIGTERM drain contract. Nil means never draining.
	Draining *atomic.Bool
	// MaxBody bounds trace upload size in bytes; exceeding it returns
	// api.CodeTraceTooLarge (default 64 MiB).
	MaxBody int64
	// NodeID is this daemon's fleet identity (iofleetd -node-id): stamped
	// on every response as api.NodeHeader and advertised in
	// Metrics.Node. Empty for an unnamed single daemon.
	NodeID string
}

// NewMux builds the daemon's HTTP surface. Every response shape and error
// code comes from internal/fleet/api, and the whole surface — including
// unmatched paths — sits behind the version-negotiation middleware.
func NewMux(cfg Config) http.Handler {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.Draining == nil {
		cfg.Draining = new(atomic.Bool)
	}
	pool, st := cfg.Pool, cfg.Store
	mux := http.NewServeMux()
	handle := mux.HandleFunc

	handle("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		reject := func(e *api.Error) {
			if st != nil {
				if jerr := st.Reject(e.Message + " (from " + r.RemoteAddr + ")"); jerr != nil {
					log.Printf("iofleetd: journal reject: %v", jerr)
				}
			}
			WriteError(w, e)
		}
		if cfg.Draining.Load() {
			reject(api.Errorf(api.CodeDraining, "daemon is draining; resubmit to the replacement instance"))
			return
		}
		// An open breaker means every accepted job would fail fast with
		// ErrBreakerOpen and surface as a non-retryable diagnosis_failed.
		// Refusing up front with a retryable code is honest — the work
		// was not attempted — and lets routers and cluster clients fail
		// this node's shard over to a ring successor until the half-open
		// probe recovers the backend.
		if pool.BreakerOpen() {
			reject(api.Errorf(api.CodeBreakerOpen,
				"llm backend circuit breaker is open; resubmit to another node or retry later"))
			return
		}
		lane, apiErr := parseLane(r)
		if apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		tenant, apiErr := parseTenant(r)
		if apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		trace, apiErr := decodeTrace(w, r, cfg.MaxBody)
		if apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		job, err := pool.SubmitWith(trace, fleet.SubmitOpts{Lane: fleet.Lane(lane), Tenant: tenant})
		switch {
		case errors.Is(err, fleet.ErrClosed):
			reject(api.Errorf(api.CodeDraining, "daemon is shutting down; resubmit to the replacement instance"))
			return
		case err != nil:
			internalError(w, "submit", err)
			return
		}
		WriteJSON(w, http.StatusAccepted, toAPIJob(job.Info()))
	})
	handle("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := pool.Jobs()
		infos := make([]api.JobInfo, len(jobs))
		for i, j := range jobs {
			infos[i] = toAPIJob(j.Info())
		}
		WriteJSON(w, http.StatusOK, infos)
	})
	handle("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			WriteError(w, api.Errorf(api.CodeJobNotFound, "unknown job %q", r.PathValue("id")))
			return
		}
		WriteJSON(w, http.StatusOK, toAPIJob(job.Info()))
	})
	handle("GET /v1/jobs/{id}/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			WriteError(w, api.Errorf(api.CodeJobNotFound, "unknown job %q", r.PathValue("id")))
			return
		}
		select {
		case <-job.Done():
		default:
			WriteError(w, api.Errorf(api.CodeJobNotDone, "job %s is %s; poll it and retry", job.ID(), job.Status()))
			return
		}
		res, err := job.Wait()
		if err != nil {
			// The pipeline's error chain is server-side detail; the wire
			// carries only the stable code.
			log.Printf("iofleetd: diagnosis %s: %v", job.ID(), err)
			WriteError(w, api.Errorf(api.CodeDiagnosisFailed, "job %s failed permanently", job.ID()))
			return
		}
		if WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, res.Text)
			return
		}
		info := job.Info()
		WriteJSON(w, http.StatusOK, api.Diagnosis{
			JobID:    info.ID,
			Digest:   info.Digest,
			Lane:     api.Lane(info.Lane),
			CacheHit: info.CacheHit,
			Text:     res.Text,
		})
	})
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m := toAPIMetrics(pool.Metrics(), pool.Agent().StatsByModel())
		m.Node = cfg.NodeID
		if WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, m)
			return
		}
		WriteJSON(w, http.StatusOK, m)
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Catch-all: unmatched paths get the api.Error envelope instead of
	// the mux's plain-text 404, so "every non-2xx response is an
	// envelope" holds across the whole surface. (Method mismatches on
	// registered patterns still get the mux's bare 405; the middleware
	// below stamps the version header on those too.)
	handle("/", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, api.Errorf(api.CodeNotFound, "unknown endpoint %s", r.URL.Path))
	})
	return WithVersion(cfg.NodeID, mux.ServeHTTP)
}

// WithVersion advertises the server's protocol version (and, when node is
// non-empty, its fleet identity) on every response and refuses requests
// from an incompatible protocol major. Both the daemon and the router
// wrap their whole surface in it.
func WithVersion(node string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Current.String())
		if node != "" {
			w.Header().Set(api.NodeHeader, node)
		}
		if hdr := r.Header.Get(api.VersionHeader); hdr != "" {
			v, err := api.ParseVersion(hdr)
			if err != nil {
				WriteError(w, api.Errorf(api.CodeBadRequest, "malformed %s header %q", api.VersionHeader, hdr))
				return
			}
			if !v.CompatibleWith(api.Current) {
				WriteError(w, api.Errorf(api.CodeUnsupportedVersion,
					"client speaks api %s, this server speaks %s", v, api.Current))
				return
			}
		}
		h(w, r)
	}
}

// parseLane reads the "lane" query parameter (default interactive).
func parseLane(r *http.Request) (api.Lane, *api.Error) {
	lane := api.Lane(r.URL.Query().Get("lane")).WithDefault()
	if !lane.Valid() {
		return "", api.Errorf(api.CodeBadRequest, "unknown lane %q (want %s or %s)",
			r.URL.Query().Get("lane"), api.LaneInteractive, api.LaneBatch)
	}
	return lane, nil
}

// parseTenant reads the "tenant" query parameter (empty = anonymous),
// bounding its length so per-tenant metric labels cannot be inflated by a
// single hostile submission.
func parseTenant(r *http.Request) (string, *api.Error) {
	tenant := r.URL.Query().Get("tenant")
	if len(tenant) > api.MaxTenantLen {
		return "", api.Errorf(api.CodeBadRequest, "tenant exceeds %d bytes", api.MaxTenantLen)
	}
	return tenant, nil
}

// WantsText reports whether the client asked for a plain-text rendering
// (Accept: text/plain) instead of the default JSON document. A
// `text/plain;q=0` range explicitly excludes it per RFC 9110 and keeps
// the JSON default.
func WantsText(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaRange, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaRange) != "text/plain" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok &&
				strings.TrimSpace(k) == "q" && strings.TrimSpace(v) == "0" {
				return false
			}
		}
		return true
	}
	return false
}

// decodeTrace reads the request body as a binary Darshan log, falling
// back to darshan-parser text. Bodies over maxBody are refused with
// api.CodeTraceTooLarge naming the configured limit.
func decodeTrace(w http.ResponseWriter, r *http.Request, maxBody int64) (*darshan.Log, *api.Error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, api.Errorf(api.CodeTraceTooLarge,
				"trace body exceeds the %d-byte limit (server -max-body)", maxBody)
		}
		log.Printf("iofleetd: read submit body from %s: %v", r.RemoteAddr, err)
		return nil, api.Errorf(api.CodeBadRequest, "read body: request aborted")
	}
	trace, err := darshan.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		var terr error
		trace, terr = darshan.ParseText(bytes.NewReader(buf.Bytes()))
		if terr != nil {
			// Both decoders' detail stays server-side, where the operator
			// debugging a client's bad_trace loop can see it.
			log.Printf("iofleetd: undecodable trace from %s: binary: %v; text: %v", r.RemoteAddr, err, terr)
			return nil, api.Errorf(api.CodeBadTrace, "body is neither a binary Darshan log nor darshan-parser text")
		}
	}
	// An empty or header-only body parses as a log with no modules; reject
	// it here rather than queueing a job doomed to fail.
	if len(trace.Modules) == 0 {
		return nil, api.Errorf(api.CodeBadTrace, "trace contains no module data")
	}
	return trace, nil
}

// toAPIJob maps the pool's job snapshot onto the wire shape. The pool's
// free-text error (pipeline internals) never crosses the wire: failed
// jobs carry the stable diagnosis_failed code instead, and the detail is
// logged where the job fails.
func toAPIJob(info fleet.JobInfo) api.JobInfo {
	out := api.JobInfo{
		ID:          info.ID,
		Digest:      info.Digest,
		Status:      api.Status(info.Status),
		Lane:        api.Lane(info.Lane),
		Tenant:      info.Tenant,
		CacheHit:    info.CacheHit,
		Attempts:    info.Attempts,
		SubmittedAt: info.SubmittedAt,
		StartedAt:   info.StartedAt,
		FinishedAt:  info.FinishedAt,
	}
	if info.Status == fleet.StatusFailed {
		out.Error = string(api.CodeDiagnosisFailed)
	}
	return out
}

// toAPIMetrics maps the pool snapshot plus per-model agent stats onto the
// wire metrics document.
func toAPIMetrics(s fleet.Snapshot, byModel map[string]ioagent.ModelStats) api.Metrics {
	m := api.Metrics{
		Workers:           s.Workers,
		Submitted:         s.Submitted,
		Queued:            s.Queued,
		QueuedInteractive: s.QueuedInteractive,
		QueuedBatch:       s.QueuedBatch,
		Running:           s.Running,
		Done:              s.Done,
		Failed:            s.Failed,
		CacheHits:         s.CacheHits,
		Coalesced:         s.Coalesced,
		CacheMisses:       s.CacheMisses,
		HitRate:           s.HitRate,
		CacheLen:          s.CacheLen,
		OwnedDigests:      s.OwnedDigests,
		Retries:           s.Retries,
		BreakerOpen:       s.BreakerOpen,
		BreakerTrips:      s.BreakerTrips,
		LatencyP50:        s.LatencyP50,
		LatencyP95:        s.LatencyP95,
	}
	if len(byModel) > 0 {
		m.Models = make(map[string]api.ModelMetrics, len(byModel))
		for model, st := range byModel {
			m.Models[model] = api.ModelMetrics{
				Calls:            st.Calls,
				PromptTokens:     st.Usage.PromptTokens,
				CompletionTokens: st.Usage.CompletionTokens,
				CostUSD:          st.CostUSD,
			}
		}
	}
	if len(s.Tenants) > 0 {
		m.Tenants = make(map[string]int64, len(s.Tenants))
		for tenant, n := range s.Tenants {
			m.Tenants[tenant] = n
		}
	}
	return m
}

// WritePrometheus renders a metrics document in Prometheus text
// exposition format (version 0.0.4), served from GET /metrics under
// "Accept: text/plain" content negotiation — by single daemons for their
// own counters and by the router for the cluster aggregate.
func WritePrometheus(w io.Writer, m api.Metrics) {
	metric := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	b01 := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}

	metric("fleet_workers", "gauge", "Number of concurrent diagnosis workers.")
	fmt.Fprintf(w, "fleet_workers %d\n", m.Workers)
	metric("fleet_jobs_submitted_total", "counter", "Jobs accepted since daemon start.")
	fmt.Fprintf(w, "fleet_jobs_submitted_total %d\n", m.Submitted)
	metric("fleet_jobs_queued", "gauge", "Jobs waiting for a worker, by priority lane.")
	fmt.Fprintf(w, "fleet_jobs_queued{lane=%q} %d\n", api.LaneInteractive, m.QueuedInteractive)
	fmt.Fprintf(w, "fleet_jobs_queued{lane=%q} %d\n", api.LaneBatch, m.QueuedBatch)
	metric("fleet_jobs_running", "gauge", "Jobs currently occupying a worker.")
	fmt.Fprintf(w, "fleet_jobs_running %d\n", m.Running)
	metric("fleet_jobs_done_total", "counter", "Jobs finished successfully (cache hits included).")
	fmt.Fprintf(w, "fleet_jobs_done_total %d\n", m.Done)
	metric("fleet_jobs_failed_total", "counter", "Jobs failed permanently.")
	fmt.Fprintf(w, "fleet_jobs_failed_total %d\n", m.Failed)
	metric("fleet_cache_hits_total", "counter", "Submissions answered instantly from the result cache.")
	fmt.Fprintf(w, "fleet_cache_hits_total %d\n", m.CacheHits)
	metric("fleet_cache_coalesced_total", "counter", "Submissions coalesced onto an identical in-flight job.")
	fmt.Fprintf(w, "fleet_cache_coalesced_total %d\n", m.Coalesced)
	metric("fleet_cache_misses_total", "counter", "Submissions that ran the full pipeline.")
	fmt.Fprintf(w, "fleet_cache_misses_total %d\n", m.CacheMisses)
	metric("fleet_cache_entries", "gauge", "Resident result-cache entries.")
	fmt.Fprintf(w, "fleet_cache_entries %d\n", m.CacheLen)
	metric("fleet_owned_digests", "gauge", "Distinct digests this node holds (cache entries plus in-flight jobs); the node's share of the sharded digest space.")
	fmt.Fprintf(w, "fleet_owned_digests %d\n", m.OwnedDigests)
	metric("fleet_retries_total", "counter", "Extra diagnosis attempts beyond each job's first.")
	fmt.Fprintf(w, "fleet_retries_total %d\n", m.Retries)
	metric("fleet_breaker_open", "gauge", "1 while the transient-failure circuit breaker is failing work fast, else 0.")
	fmt.Fprintf(w, "fleet_breaker_open %s\n", b01(m.BreakerOpen))
	metric("fleet_breaker_trips_total", "counter", "Times the circuit breaker has tripped open.")
	fmt.Fprintf(w, "fleet_breaker_trips_total %d\n", m.BreakerTrips)
	// Two plain gauges rather than one series with a `quantile` label:
	// that label is reserved for TYPE summary, and these are point-in-time
	// estimates over a sliding sample, not a true summary.
	metric("fleet_latency_p50_seconds", "gauge", "Median submit-to-completion latency over recent successful jobs.")
	fmt.Fprintf(w, "fleet_latency_p50_seconds %s\n", f64(m.LatencyP50.Seconds()))
	metric("fleet_latency_p95_seconds", "gauge", "95th-percentile submit-to-completion latency over recent successful jobs.")
	fmt.Fprintf(w, "fleet_latency_p95_seconds %s\n", f64(m.LatencyP95.Seconds()))

	models := make([]string, 0, len(m.Models))
	for model := range m.Models {
		models = append(models, model)
	}
	sort.Strings(models)
	metric("fleet_model_calls_total", "counter", "LLM calls per model.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_calls_total{model=%q} %d\n", model, m.Models[model].Calls)
	}
	metric("fleet_model_tokens_total", "counter", "Tokens consumed per model and kind.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_tokens_total{model=%q,kind=\"prompt\"} %d\n", model, m.Models[model].PromptTokens)
		fmt.Fprintf(w, "fleet_model_tokens_total{model=%q,kind=\"completion\"} %d\n", model, m.Models[model].CompletionTokens)
	}
	metric("fleet_model_cost_usd_total", "counter", "Simulated API spend per model in US dollars.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_cost_usd_total{model=%q} %s\n", model, f64(m.Models[model].CostUSD))
	}

	tenants := make([]string, 0, len(m.Tenants))
	for tenant := range m.Tenants {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	metric("fleet_tenant_jobs_total", "counter", "Jobs submitted per tenant (label cardinality capped server-side; the long tail aggregates under \"_other\").")
	for _, tenant := range tenants {
		fmt.Fprintf(w, "fleet_tenant_jobs_total{tenant=%q} %d\n", tenant, m.Tenants[tenant])
	}
}

// WriteJSON serves v as an indented JSON document on the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// WriteError serves the wire error envelope on its canonical HTTP status.
func WriteError(w http.ResponseWriter, e *api.Error) {
	WriteJSON(w, e.Code.HTTPStatus(), e)
}

// internalError logs the real failure server-side and serves an opaque
// api.CodeInternal envelope: internal error chains (which can embed
// filesystem paths and addresses) never reach the wire.
func internalError(w http.ResponseWriter, op string, err error) {
	log.Printf("iofleetd: %s: %v", op, err)
	WriteError(w, api.Errorf(api.CodeInternal, "internal error; see server log"))
}
