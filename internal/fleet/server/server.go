// Package server implements the iofleetd HTTP surface over the versioned
// wire contract in internal/fleet/api: route registration, version
// negotiation, node-identity stamping, trace decoding, the error-envelope
// discipline, and both metrics renderings (JSON and Prometheus text
// exposition).
//
// It exists as a package (rather than living inside cmd/iofleetd) so that
// every party that needs a real daemon surface can build one in-process:
// the iofleetd binary itself, the iofleet-router's failover tests, and
// examples that boot a miniature cluster. The split also keeps the
// daemon's and the router's HTTP conventions literally the same code —
// WriteError, WriteJSON, WantsText, WithVersion, and WritePrometheus are
// shared, so "every non-2xx response is an api.Error envelope stamped
// with version and node headers" holds across the whole fleet by
// construction.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/dxt"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/ingest"
	"ioagent/internal/fleet/knowledge"
	"ioagent/internal/fleet/store"
	"ioagent/internal/ioagent"
	"ioagent/internal/vectordb"
)

// Config assembles one daemon surface. Pool is required; everything else
// has a safe zero value.
type Config struct {
	// Pool runs the diagnoses.
	Pool *fleet.Pool
	// Store, when non-nil, journals refused submissions (the audit trail
	// behind iofleetd -state-dir).
	Store *store.Store
	// Uploads holds the streaming upload sessions behind /v1/uploads.
	// Nil builds a memory-only manager (sessions then die with the
	// process; iofleetd passes a spool-backed one when -state-dir is
	// set).
	Uploads *ingest.Manager
	// Draining, when non-nil and true, refuses new submissions with
	// api.CodeDraining (and journals the refusal) while reads keep
	// serving — the SIGTERM drain contract. Nil means never draining.
	Draining *atomic.Bool
	// MaxBody bounds trace upload size in bytes; exceeding it returns
	// api.CodeTraceTooLarge (default 64 MiB).
	MaxBody int64
	// NodeID is this daemon's fleet identity (iofleetd -node-id): stamped
	// on every response as api.NodeHeader and advertised in
	// Metrics.Node. Empty for an unnamed single daemon.
	NodeID string
	// RetryAfter is the delay-seconds hint stamped (api.RetryAfterHeader)
	// on retryable refusals — quota_exceeded, breaker_open, draining —
	// which the SDK's adaptive backoff honors as a floor (default 1s).
	RetryAfter time.Duration
	// OnTenantClass, when non-nil, is invoked after a successful
	// POST /v1/sched/tenants assignment took effect in the pool, so the
	// daemon can journal it (iofleetd -state-dir) and replay it on
	// restart. A journal error is logged, never surfaced: the in-memory
	// assignment already happened.
	OnTenantClass func(tenant, class string) error
	// Elastic, when non-nil, serves the dynamic-membership surface (the
	// /v1/roster gossip protocol) and routes received cache pushes
	// through the roster manager so they never re-replicate. Nil means
	// static membership: /v1/roster refuses with api.CodeRosterDisabled,
	// while the cache-handoff endpoints stay available (a static daemon
	// can still be seeded by a peer).
	Elastic Elastic
}

// Elastic is the roster-manager surface the server serves, implemented
// by internal/fleet/roster.Manager. It is an interface here so the
// server package (which the router and every test harness link) does not
// depend on the gossip layer.
type Elastic interface {
	// Snapshot returns the node's current membership view.
	Snapshot() api.Roster
	// HandleAnnounce merges one incoming gossip exchange and returns the
	// node's view for the sender to merge back.
	HandleAnnounce(api.RosterAnnounce) api.Roster
	// ReceiveEntries ingests a peer's cache push.
	ReceiveEntries(api.CachePushRequest) api.CachePushResponse
	// Metrics reports the handoff/replication counters for /metrics.
	Metrics() api.HandoffMetrics
}

// NewMux builds the daemon's HTTP surface. Every response shape and error
// code comes from internal/fleet/api, and the whole surface — including
// unmatched paths — sits behind the version-negotiation middleware.
func NewMux(cfg Config) http.Handler {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.Draining == nil {
		cfg.Draining = new(atomic.Bool)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Uploads == nil {
		cfg.Uploads = mustManager(ingest.Config{NodeID: cfg.NodeID, MaxBytes: cfg.MaxBody})
	}
	pool, st := cfg.Pool, cfg.Store
	mux := http.NewServeMux()
	handle := mux.HandleFunc

	// reject refuses a submission, journaling the refusal when a store is
	// attached. Retryable refusals carry the Retry-After hint.
	reject := func(w http.ResponseWriter, r *http.Request, e *api.Error) {
		if st != nil {
			if jerr := st.Reject(e.Message + " (from " + r.RemoteAddr + ")"); jerr != nil {
				log.Printf("iofleetd: journal reject: %v", jerr)
			}
		}
		WriteErrorHinted(w, e, cfg.RetryAfter)
	}
	// refuseSubmission applies the accept gates shared by every
	// submission shape (buffered, streamed, upload completion): drain
	// state and the LLM-backend circuit breaker.
	refuseSubmission := func(w http.ResponseWriter, r *http.Request) bool {
		if cfg.Draining.Load() {
			reject(w, r, api.Errorf(api.CodeDraining, "daemon is draining; resubmit to the replacement instance"))
			return true
		}
		// An open breaker means every accepted job would fail fast with
		// ErrBreakerOpen and surface as a non-retryable diagnosis_failed.
		// Refusing up front with a retryable code is honest — the work
		// was not attempted — and lets routers and cluster clients fail
		// this node's shard over to a ring successor until the half-open
		// probe recovers the backend.
		if pool.BreakerOpen() {
			reject(w, r, api.Errorf(api.CodeBreakerOpen,
				"llm backend circuit breaker is open; resubmit to another node or retry later"))
			return true
		}
		return false
	}
	// submitPreparsed funnels every submission shape into the pool and
	// maps the pool's refusals onto the taxonomy. The content digest is
	// echoed on the response (api.DigestHeader) so clients learn the
	// canonical address to assert next time. The return reports whether
	// the pool ACCEPTED the job — upload completion keeps its session
	// alive when it did not, so a retryable refusal (quota, drain) costs
	// a re-complete, never a re-upload.
	submitPreparsed := func(w http.ResponseWriter, r *http.Request, pp fleet.Preparsed, opts fleet.SubmitOpts) (accepted bool) {
		job, err := pool.SubmitPreparsed(r.Context(), pp, opts)
		switch {
		case errors.Is(err, fleet.ErrClosed):
			reject(w, r, api.Errorf(api.CodeDraining, "daemon is shutting down; resubmit to the replacement instance"))
			return false
		case errors.Is(err, fleet.ErrTenantQuota):
			reject(w, r, api.Errorf(api.CodeQuotaExceeded,
				"tenant %q is at its in-flight job quota; retry after some jobs finish", opts.Tenant))
			return false
		case errors.Is(err, fleet.ErrSLOExceeded):
			reject(w, r, api.Errorf(api.CodeSLOExceeded,
				"tenant %q's queue already exceeds its SLO class target; retry after the backlog drains", opts.Tenant))
			return false
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// The client hung up while the submission waited out
			// backpressure; the pool aborted the job and nobody is
			// listening for this response anyway.
			log.Printf("iofleetd: submit abandoned by %s: %v", r.RemoteAddr, err)
			WriteError(w, api.Errorf(api.CodeInternal, "submission abandoned"))
			return false
		case err != nil:
			internalError(w, "submit", err)
			return false
		}
		w.Header().Set(api.DigestHeader, pp.ContentDigest)
		WriteJSON(w, http.StatusAccepted, toAPIJob(job.Info()))
		return true
	}

	handle("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if refuseSubmission(w, r) {
			return
		}
		lane, tenant, apiErr := parseSubmitParams(r)
		if apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		trace, apiErr := decodeTrace(w, r, cfg.MaxBody)
		if apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		cd, err := darshan.ContentDigest(trace)
		if err != nil {
			internalError(w, "content digest", err)
			return
		}
		if apiErr := verifyDigestClaim(r.Header.Get(api.DigestHeader), cd); apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		submitPreparsed(w, r, fleet.Preparsed{Log: trace, ContentDigest: cd},
			fleet.SubmitOpts{Lane: fleet.Lane(lane), Tenant: tenant})
	})

	// Streaming submission: the body is fed to the incremental parser as
	// it arrives — for darshan-parser text, module pre-processing starts
	// on the first complete line, long before the final chunk lands —
	// and the raw bytes are never buffered. The digest may be asserted
	// up front (header — what a router routes by), computed on the fly
	// by the client (trailer), or left to the server; an asserted digest
	// that does not match the parsed bytes is refused.
	handle("POST /v1/jobs/stream", func(w http.ResponseWriter, r *http.Request) {
		if refuseSubmission(w, r) {
			return
		}
		lane, tenant, apiErr := parseSubmitParams(r)
		if apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		claim := r.Header.Get(api.DigestHeader)
		if claim != "" && !darshan.ValidContentDigest(claim) {
			WriteError(w, api.Errorf(api.CodeBadRequest,
				"malformed %s header (want 64 hex chars)", api.DigestHeader))
			return
		}
		parser := ingest.NewParser(cfg.MaxBody)
		if _, err := io.Copy(parser, r.Body); err != nil {
			WriteError(w, ingestError(r, "stream", err, cfg.MaxBody))
			return
		}
		trace, cd, err := parser.Finish()
		if err != nil {
			WriteError(w, ingestError(r, "stream", err, cfg.MaxBody))
			return
		}
		if claim == "" {
			claim = r.Trailer.Get(api.DigestHeader) // readable after body EOF
		}
		if apiErr := verifyDigestClaim(claim, cd); apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		submitPreparsed(w, r, fleet.Preparsed{Log: trace, ContentDigest: cd},
			fleet.SubmitOpts{Lane: fleet.Lane(lane), Tenant: tenant})
	})

	// Resumable upload sessions: open, append chunks at asserted offsets
	// (each chunk hits the incremental parser immediately), resume after
	// a disconnect from GET's offset, and complete into a job.
	handle("POST /v1/uploads", func(w http.ResponseWriter, r *http.Request) {
		if refuseSubmission(w, r) {
			return
		}
		lane, tenant, apiErr := parseSubmitParams(r)
		if apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		claim := r.Header.Get(api.DigestHeader)
		if claim != "" && !darshan.ValidContentDigest(claim) {
			WriteError(w, api.Errorf(api.CodeBadRequest,
				"malformed %s header (want 64 hex chars)", api.DigestHeader))
			return
		}
		info, err := cfg.Uploads.Open(ingest.OpenOpts{Lane: string(lane), Tenant: tenant, Digest: claim})
		if err != nil {
			WriteErrorHinted(w, ingestError(r, "open upload", err, cfg.MaxBody), cfg.RetryAfter)
			return
		}
		WriteJSON(w, http.StatusCreated, toAPIUpload(info))
	})
	handle("PATCH /v1/uploads/{id}", func(w http.ResponseWriter, r *http.Request) {
		offset, err := strconv.ParseInt(r.Header.Get(api.UploadOffsetHeader), 10, 64)
		if err != nil || offset < 0 {
			WriteError(w, api.Errorf(api.CodeBadRequest,
				"missing or malformed %s header", api.UploadOffsetHeader))
			return
		}
		chunk, rerr := io.ReadAll(http.MaxBytesReader(w, r.Body, cfg.MaxBody))
		if rerr != nil {
			var mbe *http.MaxBytesError
			if errors.As(rerr, &mbe) {
				WriteError(w, api.Errorf(api.CodeTraceTooLarge,
					"upload chunk exceeds the %d-byte limit (server -max-body)", cfg.MaxBody))
				return
			}
			log.Printf("iofleetd: read upload chunk from %s: %v", r.RemoteAddr, rerr)
			WriteError(w, api.Errorf(api.CodeBadRequest, "read chunk: request aborted"))
			return
		}
		info, err := cfg.Uploads.Append(r.PathValue("id"), offset, chunk)
		if err != nil {
			var oe *ingest.OffsetError
			if errors.As(err, &oe) {
				// Tell the client where to resume, both machine-readable
				// (header) and in the envelope.
				w.Header().Set(api.UploadOffsetHeader, strconv.FormatInt(oe.Want, 10))
			}
			WriteError(w, ingestError(r, "append upload", err, cfg.MaxBody))
			return
		}
		WriteJSON(w, http.StatusOK, toAPIUpload(info))
	})
	handle("GET /v1/uploads/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := cfg.Uploads.Status(r.PathValue("id"))
		if err != nil {
			WriteError(w, ingestError(r, "upload status", err, cfg.MaxBody))
			return
		}
		w.Header().Set(api.UploadOffsetHeader, strconv.FormatInt(info.Offset, 10))
		WriteJSON(w, http.StatusOK, toAPIUpload(info))
	})
	handle("DELETE /v1/uploads/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := cfg.Uploads.Abort(r.PathValue("id")); err != nil {
			WriteError(w, ingestError(r, "abort upload", err, cfg.MaxBody))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	handle("POST /v1/uploads/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		if refuseSubmission(w, r) {
			return // session untouched: re-complete once admissible
		}
		id := r.PathValue("id")
		// Finish does NOT discard: the uploaded bytes outlive a refused
		// handoff, so quota_exceeded / draining cost a re-complete, not a
		// re-upload. (A parse failure closes the session inside Finish —
		// identical bytes would fail identically.)
		trace, cd, info, err := cfg.Uploads.Finish(id)
		if err != nil {
			WriteError(w, ingestError(r, "complete upload", err, cfg.MaxBody))
			return
		}
		if apiErr := verifyDigestClaim(info.Digest, cd); apiErr != nil {
			// Permanent for these bytes: the session is not worth keeping.
			cfg.Uploads.Discard(id)
			WriteError(w, apiErr)
			return
		}
		if submitPreparsed(w, r, fleet.Preparsed{Log: trace, ContentDigest: cd},
			fleet.SubmitOpts{Lane: fleet.Lane(api.Lane(info.Lane).WithDefault()), Tenant: info.Tenant}) {
			cfg.Uploads.Discard(id)
		}
	})
	handle("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := pool.Jobs()
		infos := make([]api.JobInfo, len(jobs))
		for i, j := range jobs {
			infos[i] = toAPIJob(j.Info())
		}
		WriteJSON(w, http.StatusOK, infos)
	})
	handle("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			WriteError(w, api.Errorf(api.CodeJobNotFound, "unknown job %q", r.PathValue("id")))
			return
		}
		WriteJSON(w, http.StatusOK, toAPIJob(job.Info()))
	})
	handle("GET /v1/jobs/{id}/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		job, ok := pool.Job(r.PathValue("id"))
		if !ok {
			WriteError(w, api.Errorf(api.CodeJobNotFound, "unknown job %q", r.PathValue("id")))
			return
		}
		select {
		case <-job.Done():
		default:
			WriteError(w, api.Errorf(api.CodeJobNotDone, "job %s is %s; poll it and retry", job.ID(), job.Status()))
			return
		}
		res, err := job.Wait()
		if err != nil {
			// The pipeline's error chain is server-side detail; the wire
			// carries only the stable code.
			log.Printf("iofleetd: diagnosis %s: %v", job.ID(), err)
			WriteError(w, api.Errorf(api.CodeDiagnosisFailed, "job %s failed permanently", job.ID()))
			return
		}
		if WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, res.Text)
			return
		}
		info := job.Info()
		WriteJSON(w, http.StatusOK, api.Diagnosis{
			JobID:         info.ID,
			Digest:        info.Digest,
			Lane:          api.Lane(info.Lane),
			CacheHit:      info.CacheHit,
			SimilarityHit: info.SimilarityHit,
			SourceDigest:  info.SourceDigest,
			Confidence:    info.Confidence,
			Text:          res.Text,
		})
	})
	// Knowledge-plane administration (api 1.4): staged corpus mutation,
	// atomic epoch promotion, plane status, and a direct retrieval probe
	// that bypasses the diagnosis pipeline. Every endpoint refuses with
	// knowledge_disabled when the daemon runs without a plane (iofleetd
	// without -knowledge), so clients can distinguish "not configured"
	// from "unknown endpoint".
	knowledgePlane := func(w http.ResponseWriter) *knowledge.Plane {
		kp := pool.Knowledge()
		if kp == nil {
			WriteError(w, api.Errorf(api.CodeKnowledgeDisabled,
				"this node serves no knowledge plane (start iofleetd with -knowledge)"))
		}
		return kp
	}
	handle("POST /v1/knowledge/docs", func(w http.ResponseWriter, r *http.Request) {
		kp := knowledgePlane(w)
		if kp == nil {
			return
		}
		var req api.KnowledgeUpsertRequest
		if apiErr := decodeJSONBody(w, r, cfg.MaxBody, &req); apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		if len(req.Docs) == 0 && len(req.Remove) == 0 {
			WriteError(w, api.Errorf(api.CodeBadRequest, "upsert carries no documents and no removals"))
			return
		}
		docs := make([]vectordb.Document, len(req.Docs))
		for i, d := range req.Docs {
			if d.Key == "" {
				WriteError(w, api.Errorf(api.CodeBadRequest, "document %d has an empty key", i))
				return
			}
			if len(d.Text) > api.MaxKnowledgeDocLen {
				WriteError(w, api.Errorf(api.CodeBadRequest,
					"document %q exceeds the %d-byte text limit", d.Key, api.MaxKnowledgeDocLen))
				return
			}
			docs[i] = vectordb.Document{Key: d.Key, Title: d.Title, Text: d.Text}
		}
		if err := kp.Upsert(docs, req.Remove); err != nil {
			WriteError(w, api.Errorf(api.CodeBadRequest, "upsert refused: %v", err))
			return
		}
		WriteJSON(w, http.StatusOK, toAPIKnowledge(kp.Metrics()))
	})
	handle("POST /v1/knowledge/swap", func(w http.ResponseWriter, r *http.Request) {
		kp := knowledgePlane(w)
		if kp == nil {
			return
		}
		epoch, err := kp.Swap()
		switch {
		case errors.Is(err, knowledge.ErrNothingStaged):
			WriteError(w, api.Errorf(api.CodeNothingStaged,
				"no staged corpus changes to promote; POST /v1/knowledge/docs first"))
			return
		case err != nil:
			internalError(w, "knowledge swap", err)
			return
		}
		WriteJSON(w, http.StatusOK, api.KnowledgeSwapResponse{Epoch: epoch})
	})
	handle("GET /v1/knowledge", func(w http.ResponseWriter, r *http.Request) {
		kp := knowledgePlane(w)
		if kp == nil {
			return
		}
		WriteJSON(w, http.StatusOK, toAPIKnowledge(kp.Metrics()))
	})
	handle("POST /v1/knowledge/search", func(w http.ResponseWriter, r *http.Request) {
		kp := knowledgePlane(w)
		if kp == nil {
			return
		}
		var req api.KnowledgeSearchRequest
		if apiErr := decodeJSONBody(w, r, cfg.MaxBody, &req); apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		if strings.TrimSpace(req.Query) == "" {
			WriteError(w, api.Errorf(api.CodeBadRequest, "search query is empty"))
			return
		}
		k := req.K
		if k <= 0 {
			k = api.DefaultKnowledgeK
		}
		hits := kp.Retrieve(req.Query, k)
		out := api.KnowledgeSearchResponse{Epoch: kp.Epoch(), Hits: make([]api.KnowledgeHit, len(hits))}
		for i, h := range hits {
			out.Hits[i] = api.KnowledgeHit{
				Key:   h.Chunk.DocKey,
				Title: h.Chunk.DocTitle,
				Seq:   h.Chunk.Seq,
				Text:  h.Chunk.Text,
				Score: h.Score,
			}
		}
		WriteJSON(w, http.StatusOK, out)
	})
	// Elastic-cluster surface (api 1.5): the roster gossip protocol and
	// the digest-addressed cache handoff endpoints. The roster endpoints
	// need a manager (iofleetd -advertise); the cache endpoints are
	// always on — handoff pushes and inventory reads are pool-level
	// operations, so even a statically configured daemon can receive a
	// departing peer's warm entries.
	elasticRoster := func(w http.ResponseWriter) Elastic {
		if cfg.Elastic == nil {
			WriteError(w, api.Errorf(api.CodeRosterDisabled,
				"this node runs a static member set (start iofleetd with -advertise)"))
		}
		return cfg.Elastic
	}
	handle("GET /v1/roster", func(w http.ResponseWriter, r *http.Request) {
		el := elasticRoster(w)
		if el == nil {
			return
		}
		WriteJSON(w, http.StatusOK, el.Snapshot())
	})
	handle("POST /v1/roster", func(w http.ResponseWriter, r *http.Request) {
		el := elasticRoster(w)
		if el == nil {
			return
		}
		var ann api.RosterAnnounce
		if apiErr := decodeJSONBody(w, r, cfg.MaxBody, &ann); apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		if ann.From.URL == "" {
			WriteError(w, api.Errorf(api.CodeBadRequest, "announce carries no sender URL"))
			return
		}
		WriteJSON(w, http.StatusOK, el.HandleAnnounce(ann))
	})
	handle("GET /v1/cache/digests", func(w http.ResponseWriter, r *http.Request) {
		digests := pool.CacheDigests()
		if digests == nil {
			digests = []string{} // an empty inventory is [], not null
		}
		WriteJSON(w, http.StatusOK, api.CacheDigests{Digests: digests})
	})
	handle("POST /v1/cache/entries", func(w http.ResponseWriter, r *http.Request) {
		var req api.CachePushRequest
		if apiErr := decodeJSONBody(w, r, cfg.MaxBody, &req); apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		if cfg.Elastic != nil {
			WriteJSON(w, http.StatusOK, cfg.Elastic.ReceiveEntries(req))
			return
		}
		// Static daemon: ingest directly, cache entry before similarity
		// vector (the vector-residency invariant), skipping digests
		// already resident so a push never disturbs a live TTL clock.
		var received int
		for _, e := range req.Entries {
			if pool.CacheIngest(e.Digest, e.Text, e.Added) {
				if e.Features != "" {
					pool.SemAdd(e.Digest, e.Features)
				}
				received++
			}
		}
		WriteJSON(w, http.StatusOK, api.CachePushResponse{Received: received})
	})
	// Fair-scheduler surface (api 1.6): the scheduler's mode, class
	// catalog, and tenant assignments; POST moves a tenant between SLO
	// classes at runtime (journaled via Config.OnTenantClass when the
	// daemon keeps state).
	handle("GET /v1/sched", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, toAPISchedStatus(pool.SchedStatus()))
	})
	handle("POST /v1/sched/tenants", func(w http.ResponseWriter, r *http.Request) {
		var req api.TenantClassRequest
		if apiErr := decodeJSONBody(w, r, cfg.MaxBody, &req); apiErr != nil {
			WriteError(w, apiErr)
			return
		}
		if req.Tenant == "" {
			WriteError(w, api.Errorf(api.CodeBadRequest, "assignment carries no tenant"))
			return
		}
		if len(req.Tenant) > api.MaxTenantLen {
			WriteError(w, api.Errorf(api.CodeBadRequest, "tenant exceeds %d bytes", api.MaxTenantLen))
			return
		}
		if err := pool.SetTenantClass(req.Tenant, req.Class); err != nil {
			// The only pool-level refusal is an unknown class name; the
			// valid names are worth echoing.
			WriteError(w, api.Errorf(api.CodeBadRequest,
				"cannot assign tenant %q to class %q: %v", req.Tenant, req.Class, err))
			return
		}
		if cfg.OnTenantClass != nil {
			if err := cfg.OnTenantClass(req.Tenant, req.Class); err != nil {
				log.Printf("iofleetd: journal tenant class %q=%q: %v", req.Tenant, req.Class, err)
			}
		}
		WriteJSON(w, http.StatusOK, toAPISchedStatus(pool.SchedStatus()))
	})
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m := toAPIMetrics(pool.Metrics(), pool.StatsByModel())
		m.Node = cfg.NodeID
		if cfg.Elastic != nil {
			hm := cfg.Elastic.Metrics()
			m.Handoff = &hm
		}
		if WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, m)
			return
		}
		WriteJSON(w, http.StatusOK, m)
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Catch-all: unmatched paths get the api.Error envelope instead of
	// the mux's plain-text 404, so "every non-2xx response is an
	// envelope" holds across the whole surface. (Method mismatches on
	// registered patterns still get the mux's bare 405; the middleware
	// below stamps the version header on those too.)
	handle("/", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, api.Errorf(api.CodeNotFound, "unknown endpoint %s", r.URL.Path))
	})
	return WithVersion(cfg.NodeID, mux.ServeHTTP)
}

// WithVersion advertises the server's protocol version (and, when node is
// non-empty, its fleet identity) on every response and refuses requests
// from an incompatible protocol major. Both the daemon and the router
// wrap their whole surface in it.
func WithVersion(node string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Current.String())
		if node != "" {
			w.Header().Set(api.NodeHeader, node)
		}
		if hdr := r.Header.Get(api.VersionHeader); hdr != "" {
			v, err := api.ParseVersion(hdr)
			if err != nil {
				WriteError(w, api.Errorf(api.CodeBadRequest, "malformed %s header %q", api.VersionHeader, hdr))
				return
			}
			if !v.CompatibleWith(api.Current) {
				WriteError(w, api.Errorf(api.CodeUnsupportedVersion,
					"client speaks api %s, this server speaks %s", v, api.Current))
				return
			}
		}
		h(w, r)
	}
}

// parseLane reads the "lane" query parameter (default interactive).
func parseLane(r *http.Request) (api.Lane, *api.Error) {
	lane := api.Lane(r.URL.Query().Get("lane")).WithDefault()
	if !lane.Valid() {
		return "", api.Errorf(api.CodeBadRequest, "unknown lane %q (want %s or %s)",
			r.URL.Query().Get("lane"), api.LaneInteractive, api.LaneBatch)
	}
	return lane, nil
}

// parseTenant reads the "tenant" query parameter (empty = anonymous),
// bounding its length so per-tenant metric labels cannot be inflated by a
// single hostile submission.
func parseTenant(r *http.Request) (string, *api.Error) {
	tenant := r.URL.Query().Get("tenant")
	if len(tenant) > api.MaxTenantLen {
		return "", api.Errorf(api.CodeBadRequest, "tenant exceeds %d bytes", api.MaxTenantLen)
	}
	return tenant, nil
}

// parseSubmitParams reads the lane and tenant query parameters shared by
// every submission shape.
func parseSubmitParams(r *http.Request) (api.Lane, string, *api.Error) {
	lane, apiErr := parseLane(r)
	if apiErr != nil {
		return "", "", apiErr
	}
	tenant, apiErr := parseTenant(r)
	if apiErr != nil {
		return "", "", apiErr
	}
	return lane, tenant, nil
}

// decodeJSONBody reads a size-bounded JSON request body into v, mapping
// oversized and malformed bodies onto the wire taxonomy.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBody int64, v any) *api.Error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return api.Errorf(api.CodeBadRequest, "request body exceeds the %d-byte limit", maxBody)
		}
		log.Printf("iofleetd: read json body from %s: %v", r.RemoteAddr, err)
		return api.Errorf(api.CodeBadRequest, "read body: request aborted")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return api.Errorf(api.CodeBadRequest, "malformed JSON body: %v", err)
	}
	return nil
}

// verifyDigestClaim compares a client-asserted content digest against the
// one the server derived from the bytes it actually parsed. An empty
// claim verifies trivially (nothing was asserted); a mismatch is refused —
// the claim may have routed the request, but it never overrides content.
func verifyDigestClaim(claim, computed string) *api.Error {
	if claim == "" || claim == computed {
		return nil
	}
	return api.Errorf(api.CodeDigestMismatch,
		"asserted %s %.12s… does not match the received trace (%.12s…)", api.DigestHeader, claim, computed)
}

// ingestError maps the ingest layer's failures onto the wire taxonomy.
// Parse detail stays server-side, like decodeTrace's.
func ingestError(r *http.Request, op string, err error, maxBody int64) *api.Error {
	switch {
	case errors.Is(err, ingest.ErrTooLarge):
		return api.Errorf(api.CodeTraceTooLarge,
			"trace exceeds the %d-byte limit (server -max-body)", maxBody)
	case errors.Is(err, ingest.ErrSessionNotFound):
		return api.Errorf(api.CodeUploadNotFound,
			"unknown upload session (completed, aborted, expired, or never opened); open a new one")
	case errors.Is(err, ingest.ErrTooManySessions):
		return api.Errorf(api.CodeQuotaExceeded,
			"too many open upload sessions; retry after one completes or expires")
	case errors.Is(err, ingest.ErrSessionFinished):
		return api.Errorf(api.CodeBadRequest,
			"upload session is finalized; complete it (or abort and reopen) instead of appending")
	default:
		var oe *ingest.OffsetError
		if errors.As(err, &oe) {
			return api.Errorf(api.CodeUploadOffsetMismatch,
				"server is at offset %d, chunk asserted %d; resynchronize and resend", oe.Want, oe.Got)
		}
		log.Printf("iofleetd: %s from %s: %v", op, r.RemoteAddr, err)
		return api.Errorf(api.CodeBadTrace, "body is neither a binary Darshan log nor darshan-parser text")
	}
}

// toAPIUpload maps a session snapshot onto the wire shape.
func toAPIUpload(info ingest.Info) api.UploadInfo {
	return api.UploadInfo{
		ID:               info.ID,
		Offset:           info.Offset,
		Lane:             api.Lane(info.Lane).WithDefault(),
		Tenant:           info.Tenant,
		Digest:           info.Digest,
		PreparsedLines:   info.Lines,
		PreparsedModules: info.Modules,
		CreatedAt:        info.CreatedAt,
	}
}

// mustManager builds the fallback in-memory upload manager; its config
// has no failure mode (no spool dir to create), so an error is a bug.
func mustManager(cfg ingest.Config) *ingest.Manager {
	m, err := ingest.NewManager(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// WriteErrorHinted is WriteError plus the Retry-After hint on retryable
// codes, telling well-behaved clients when refused work is worth
// resubmitting. The daemon stamps its configured hint; the router passes
// through whichever hint the owning daemon sent.
func WriteErrorHinted(w http.ResponseWriter, e *api.Error, retryAfter time.Duration) {
	if e.Code.Retryable() {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set(api.RetryAfterHeader, strconv.Itoa(secs))
	}
	WriteError(w, e)
}

// WantsText reports whether the client asked for a plain-text rendering
// (Accept: text/plain) instead of the default JSON document. A
// `text/plain;q=0` range explicitly excludes it per RFC 9110 and keeps
// the JSON default.
func WantsText(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaRange, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaRange) != "text/plain" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok &&
				strings.TrimSpace(k) == "q" && strings.TrimSpace(v) == "0" {
				return false
			}
		}
		return true
	}
	return false
}

// decodeTrace reads the request body as a binary Darshan log, falling
// back to a DXT per-operation text trace (dxt.TextMagic) and then to
// darshan-parser text. Bodies over maxBody are refused with
// api.CodeTraceTooLarge naming the configured limit.
func decodeTrace(w http.ResponseWriter, r *http.Request, maxBody int64) (*darshan.Log, *api.Error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, api.Errorf(api.CodeTraceTooLarge,
				"trace body exceeds the %d-byte limit (server -max-body)", maxBody)
		}
		log.Printf("iofleetd: read submit body from %s: %v", r.RemoteAddr, err)
		return nil, api.Errorf(api.CodeBadRequest, "read body: request aborted")
	}
	trace, err := darshan.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		if bytes.HasPrefix(buf.Bytes(), []byte(dxt.TextMagic)) {
			t, derr := dxt.ParseText(bytes.NewReader(buf.Bytes()))
			if derr != nil {
				log.Printf("iofleetd: undecodable DXT trace from %s: %v", r.RemoteAddr, derr)
				return nil, api.Errorf(api.CodeBadTrace, "body carries the DXT magic but is not a valid DXT text trace")
			}
			trace = darshan.FromDXT(t)
		} else {
			var terr error
			trace, terr = darshan.ParseText(bytes.NewReader(buf.Bytes()))
			if terr != nil {
				// Both decoders' detail stays server-side, where the operator
				// debugging a client's bad_trace loop can see it.
				log.Printf("iofleetd: undecodable trace from %s: binary: %v; text: %v", r.RemoteAddr, err, terr)
				return nil, api.Errorf(api.CodeBadTrace, "body is neither a binary Darshan log nor darshan-parser text")
			}
		}
	}
	// An empty or header-only body parses as a log with no modules; reject
	// it here rather than queueing a job doomed to fail.
	if len(trace.Modules) == 0 {
		return nil, api.Errorf(api.CodeBadTrace, "trace contains no module data")
	}
	return trace, nil
}

// toAPIJob maps the pool's job snapshot onto the wire shape. The pool's
// free-text error (pipeline internals) never crosses the wire: failed
// jobs carry the stable diagnosis_failed code instead, and the detail is
// logged where the job fails.
func toAPIJob(info fleet.JobInfo) api.JobInfo {
	out := api.JobInfo{
		ID:            info.ID,
		Digest:        info.Digest,
		Status:        api.Status(info.Status),
		Lane:          api.Lane(info.Lane),
		Tenant:        info.Tenant,
		CacheHit:      info.CacheHit,
		SimilarityHit: info.SimilarityHit,
		SourceDigest:  info.SourceDigest,
		Confidence:    info.Confidence,
		Attempts:      info.Attempts,
		SubmittedAt:   info.SubmittedAt,
		StartedAt:     info.StartedAt,
		FinishedAt:    info.FinishedAt,
	}
	if info.Status == fleet.StatusFailed {
		out.Error = string(api.CodeDiagnosisFailed)
	}
	return out
}

// toAPIMetrics maps the pool snapshot plus per-model agent stats onto the
// wire metrics document.
func toAPIMetrics(s fleet.Snapshot, byModel map[string]ioagent.ModelStats) api.Metrics {
	m := api.Metrics{
		Workers:             s.Workers,
		Submitted:           s.Submitted,
		Queued:              s.Queued,
		QueuedInteractive:   s.QueuedInteractive,
		QueuedBatch:         s.QueuedBatch,
		Running:             s.Running,
		Done:                s.Done,
		Failed:              s.Failed,
		CacheHits:           s.CacheHits,
		Coalesced:           s.Coalesced,
		CacheMisses:         s.CacheMisses,
		HitRate:             s.HitRate,
		CacheLen:            s.CacheLen,
		OwnedDigests:        s.OwnedDigests,
		Retries:             s.Retries,
		BreakerOpen:         s.BreakerOpen,
		BreakerTrips:        s.BreakerTrips,
		LatencyP50:          s.LatencyP50,
		LatencyP95:          s.LatencyP95,
		SemCacheHits:        s.SemHits,
		SemCacheMisses:      s.SemMisses,
		SemCacheGateRejects: s.SemGateRejects,
		SemCacheEntries:     s.SemEntries,
		TierEscalations:     s.TierEscalations,
	}
	if len(s.Tiers) > 0 {
		m.Tiers = make(map[string]api.TierMetrics, len(s.Tiers))
		for model, ts := range s.Tiers {
			m.Tiers[model] = api.TierMetrics{Jobs: ts.Jobs, CostUSD: ts.CostUSD}
		}
	}
	if len(byModel) > 0 {
		m.Models = make(map[string]api.ModelMetrics, len(byModel))
		for model, st := range byModel {
			m.Models[model] = api.ModelMetrics{
				Calls:            st.Calls,
				PromptTokens:     st.Usage.PromptTokens,
				CompletionTokens: st.Usage.CompletionTokens,
				CostUSD:          st.CostUSD,
			}
		}
	}
	if len(s.Tenants) > 0 {
		m.Tenants = make(map[string]int64, len(s.Tenants))
		for tenant, n := range s.Tenants {
			m.Tenants[tenant] = n
		}
	}
	if len(s.TenantsInflight) > 0 {
		m.TenantsInflight = make(map[string]int64, len(s.TenantsInflight))
		for tenant, n := range s.TenantsInflight {
			m.TenantsInflight[tenant] = n
		}
	}
	if s.Knowledge != nil {
		ks := toAPIKnowledge(*s.Knowledge)
		m.Knowledge = &ks
	}
	if s.Sched != nil {
		sm := api.SchedMetrics{
			FIFO:      s.Sched.FIFO,
			Admission: s.Sched.Admission,
			Dequeues:  s.Sched.Dequeues,
			Rejects:   s.Sched.Rejects,
		}
		if len(s.Sched.Lanes) > 0 {
			sm.Lanes = make(map[string]int64, len(s.Sched.Lanes))
			for lane, depth := range s.Sched.Lanes {
				sm.Lanes[lane] = depth
			}
		}
		if len(s.Sched.Tenants) > 0 {
			sm.Tenants = make(map[string]api.SchedTenant, len(s.Sched.Tenants))
			for tenant, tm := range s.Sched.Tenants {
				sm.Tenants[tenant] = api.SchedTenant{
					Class:    tm.Class,
					Weight:   tm.Weight,
					Depth:    tm.Depth,
					Dequeues: tm.Dequeues,
					Rejects:  tm.Rejects,
					AgeP50:   tm.AgeP50,
					AgeMax:   tm.AgeMax,
				}
			}
		}
		m.Sched = &sm
	}
	return m
}

// toAPISchedStatus maps the pool's scheduler configuration onto the wire
// payload of GET /v1/sched.
func toAPISchedStatus(st fleet.SchedStatus) api.SchedStatus {
	out := api.SchedStatus{FIFO: st.FIFO, Admission: st.Admission}
	if len(st.Classes) > 0 {
		out.Classes = make(map[string]api.SchedClass, len(st.Classes))
		for name, c := range st.Classes {
			out.Classes[name] = api.SchedClass{Weight: c.Weight, MaxQueueAge: c.MaxQueueAge}
		}
	}
	if len(st.Assignments) > 0 {
		out.Assignments = make(map[string]string, len(st.Assignments))
		for tenant, class := range st.Assignments {
			out.Assignments[tenant] = class
		}
	}
	return out
}

// toAPIKnowledge maps the plane's metrics onto the wire status shape.
func toAPIKnowledge(km knowledge.Metrics) api.KnowledgeStatus {
	return api.KnowledgeStatus{
		Epoch:         km.Epoch,
		Docs:          km.Docs,
		OwnedDocs:     km.OwnedDocs,
		StagedOps:     km.StagedOps,
		Queries:       km.Queries,
		ANNQueries:    km.ANNQueries,
		ExactQueries:  km.ExactQueries,
		RerankCalls:   km.RerankCalls,
		RerankErrors:  km.RerankErrors,
		RerankCostUSD: km.RerankCostUSD,
		RetrievalP95:  km.LatencyP95,
	}
}

// WritePrometheus renders a metrics document in Prometheus text
// exposition format (version 0.0.4), served from GET /metrics under
// "Accept: text/plain" content negotiation — by single daemons for their
// own counters and by the router for the cluster aggregate.
func WritePrometheus(w io.Writer, m api.Metrics) {
	metric := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	b01 := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}

	metric("fleet_workers", "gauge", "Number of concurrent diagnosis workers.")
	fmt.Fprintf(w, "fleet_workers %d\n", m.Workers)
	metric("fleet_jobs_submitted_total", "counter", "Jobs accepted since daemon start.")
	fmt.Fprintf(w, "fleet_jobs_submitted_total %d\n", m.Submitted)
	metric("fleet_jobs_queued", "gauge", "Jobs waiting for a worker, by priority lane.")
	fmt.Fprintf(w, "fleet_jobs_queued{lane=%q} %d\n", api.LaneInteractive, m.QueuedInteractive)
	fmt.Fprintf(w, "fleet_jobs_queued{lane=%q} %d\n", api.LaneBatch, m.QueuedBatch)
	metric("fleet_jobs_running", "gauge", "Jobs currently occupying a worker.")
	fmt.Fprintf(w, "fleet_jobs_running %d\n", m.Running)
	metric("fleet_jobs_done_total", "counter", "Jobs finished successfully (cache hits included).")
	fmt.Fprintf(w, "fleet_jobs_done_total %d\n", m.Done)
	metric("fleet_jobs_failed_total", "counter", "Jobs failed permanently.")
	fmt.Fprintf(w, "fleet_jobs_failed_total %d\n", m.Failed)
	metric("fleet_cache_hits_total", "counter", "Submissions answered instantly from the result cache.")
	fmt.Fprintf(w, "fleet_cache_hits_total %d\n", m.CacheHits)
	metric("fleet_cache_coalesced_total", "counter", "Submissions coalesced onto an identical in-flight job.")
	fmt.Fprintf(w, "fleet_cache_coalesced_total %d\n", m.Coalesced)
	metric("fleet_cache_misses_total", "counter", "Submissions that ran the full pipeline.")
	fmt.Fprintf(w, "fleet_cache_misses_total %d\n", m.CacheMisses)
	metric("fleet_cache_entries", "gauge", "Resident result-cache entries.")
	fmt.Fprintf(w, "fleet_cache_entries %d\n", m.CacheLen)
	metric("fleet_owned_digests", "gauge", "Distinct digests this node holds (cache entries plus in-flight jobs); the node's share of the sharded digest space.")
	fmt.Fprintf(w, "fleet_owned_digests %d\n", m.OwnedDigests)
	metric("fleet_retries_total", "counter", "Extra diagnosis attempts beyond each job's first.")
	fmt.Fprintf(w, "fleet_retries_total %d\n", m.Retries)
	metric("fleet_breaker_open", "gauge", "1 while the transient-failure circuit breaker is failing work fast, else 0.")
	fmt.Fprintf(w, "fleet_breaker_open %s\n", b01(m.BreakerOpen))
	metric("fleet_breaker_trips_total", "counter", "Times the circuit breaker has tripped open.")
	fmt.Fprintf(w, "fleet_breaker_trips_total %d\n", m.BreakerTrips)
	// Two plain gauges rather than one series with a `quantile` label:
	// that label is reserved for TYPE summary, and these are point-in-time
	// estimates over a sliding sample, not a true summary.
	metric("fleet_latency_p50_seconds", "gauge", "Median submit-to-completion latency over recent successful jobs.")
	fmt.Fprintf(w, "fleet_latency_p50_seconds %s\n", f64(m.LatencyP50.Seconds()))
	metric("fleet_latency_p95_seconds", "gauge", "95th-percentile submit-to-completion latency over recent successful jobs.")
	fmt.Fprintf(w, "fleet_latency_p95_seconds %s\n", f64(m.LatencyP95.Seconds()))
	metric("fleet_semcache_hits_total", "counter", "Exact-cache misses served from a near-duplicate's cached diagnosis.")
	fmt.Fprintf(w, "fleet_semcache_hits_total %d\n", m.SemCacheHits)
	metric("fleet_semcache_misses_total", "counter", "Exact-cache misses with no usable similarity candidate.")
	fmt.Fprintf(w, "fleet_semcache_misses_total %d\n", m.SemCacheMisses)
	metric("fleet_semcache_gate_rejects_total", "counter", "Similarity candidates refused by the confidence gate.")
	fmt.Fprintf(w, "fleet_semcache_gate_rejects_total %d\n", m.SemCacheGateRejects)
	metric("fleet_semcache_entries", "gauge", "Digests currently indexed for similarity lookup.")
	fmt.Fprintf(w, "fleet_semcache_entries %d\n", m.SemCacheEntries)

	if k := m.Knowledge; k != nil {
		metric("fleet_knowledge_epoch", "gauge", "Promoted knowledge-corpus version on this node.")
		fmt.Fprintf(w, "fleet_knowledge_epoch %d\n", k.Epoch)
		metric("fleet_knowledge_docs", "gauge", "Documents in the full corpus view.")
		fmt.Fprintf(w, "fleet_knowledge_docs %d\n", k.Docs)
		metric("fleet_knowledge_owned_docs", "gauge", "Documents this node indexes locally (its ring shard plus replicas).")
		fmt.Fprintf(w, "fleet_knowledge_owned_docs %d\n", k.OwnedDocs)
		metric("fleet_knowledge_staged_ops", "gauge", "Staged corpus mutations awaiting an epoch swap.")
		fmt.Fprintf(w, "fleet_knowledge_staged_ops %d\n", k.StagedOps)
		metric("fleet_knowledge_queries_total", "counter", "Retrievals served by the knowledge plane.")
		fmt.Fprintf(w, "fleet_knowledge_queries_total %d\n", k.Queries)
		metric("fleet_knowledge_index_queries_total", "counter", "Underlying index searches by path (HNSW graph walk vs exact scan).")
		fmt.Fprintf(w, "fleet_knowledge_index_queries_total{path=\"ann\"} %d\n", k.ANNQueries)
		fmt.Fprintf(w, "fleet_knowledge_index_queries_total{path=\"exact\"} %d\n", k.ExactQueries)
		metric("fleet_knowledge_rerank_calls_total", "counter", "Rerank invocations between retrieval and reflection.")
		fmt.Fprintf(w, "fleet_knowledge_rerank_calls_total %d\n", k.RerankCalls)
		metric("fleet_knowledge_rerank_errors_total", "counter", "Rerank failures that fell back to vector order.")
		fmt.Fprintf(w, "fleet_knowledge_rerank_errors_total %d\n", k.RerankErrors)
		metric("fleet_knowledge_rerank_cost_usd_total", "counter", "Simulated rerank-judge spend in US dollars.")
		fmt.Fprintf(w, "fleet_knowledge_rerank_cost_usd_total %s\n", f64(k.RerankCostUSD))
		metric("fleet_knowledge_retrieval_p95_seconds", "gauge", "95th-percentile retrieval latency over recent knowledge queries.")
		fmt.Fprintf(w, "fleet_knowledge_retrieval_p95_seconds %s\n", f64(k.RetrievalP95.Seconds()))
	}

	if h := m.Handoff; h != nil {
		metric("fleet_handoff_roster_size", "gauge", "Fleet members in this node's roster view (itself included).")
		fmt.Fprintf(w, "fleet_handoff_roster_size %d\n", h.RosterSize)
		metric("fleet_handoff_roster_epoch", "counter", "Membership-view version; increments on every observed change.")
		fmt.Fprintf(w, "fleet_handoff_roster_epoch %d\n", h.RosterEpoch)
		metric("fleet_handoff_ring_changes_total", "counter", "Membership transitions (joins and health expiries) this node rebalanced for.")
		fmt.Fprintf(w, "fleet_handoff_ring_changes_total %d\n", h.RingChanges)
		metric("fleet_handoff_entries_pushed_total", "counter", "Cache entries pushed to new owners after ring changes.")
		fmt.Fprintf(w, "fleet_handoff_entries_pushed_total %d\n", h.EntriesPushed)
		metric("fleet_handoff_push_errors_total", "counter", "Cache pushes (handoff or replication) that failed.")
		fmt.Fprintf(w, "fleet_handoff_push_errors_total %d\n", h.PushErrors)
		metric("fleet_handoff_entries_received_total", "counter", "Cache entries accepted from rebalancing peers.")
		fmt.Fprintf(w, "fleet_handoff_entries_received_total %d\n", h.EntriesReceived)
		metric("fleet_handoff_replica_pushed_total", "counter", "Cache entries replicated out to ring successors on insert.")
		fmt.Fprintf(w, "fleet_handoff_replica_pushed_total %d\n", h.ReplicaPushed)
		metric("fleet_handoff_replica_received_total", "counter", "Replica copies accepted from digest owners.")
		fmt.Fprintf(w, "fleet_handoff_replica_received_total %d\n", h.ReplicaReceived)
	}

	if s := m.Sched; s != nil {
		metric("fleet_sched_fifo", "gauge", "1 while the node runs the tenant-blind FIFO baseline instead of weighted DRR, else 0.")
		fmt.Fprintf(w, "fleet_sched_fifo %s\n", b01(s.FIFO))
		metric("fleet_sched_admission", "gauge", "1 while SLO admission control is enforced, else 0.")
		fmt.Fprintf(w, "fleet_sched_admission %s\n", b01(s.Admission))
		metric("fleet_sched_dequeues_total", "counter", "Jobs handed to workers by the fair scheduler (all tenants).")
		fmt.Fprintf(w, "fleet_sched_dequeues_total %d\n", s.Dequeues)
		metric("fleet_sched_rejects_total", "counter", "Submissions refused by SLO admission control (slo_exceeded).")
		fmt.Fprintf(w, "fleet_sched_rejects_total %d\n", s.Rejects)
		lanes := make([]string, 0, len(s.Lanes))
		for lane := range s.Lanes {
			lanes = append(lanes, lane)
		}
		sort.Strings(lanes)
		metric("fleet_sched_lane_depth", "gauge", "Jobs queued in the fair scheduler, by priority lane.")
		for _, lane := range lanes {
			fmt.Fprintf(w, "fleet_sched_lane_depth{lane=%q} %d\n", lane, s.Lanes[lane])
		}
		schedTenants := make([]string, 0, len(s.Tenants))
		for tenant := range s.Tenants {
			schedTenants = append(schedTenants, tenant)
		}
		sort.Strings(schedTenants)
		metric("fleet_sched_tenant_depth", "gauge", "Jobs queued per tenant (label cardinality capped server-side; the long tail aggregates under \"_other\").")
		for _, tenant := range schedTenants {
			fmt.Fprintf(w, "fleet_sched_tenant_depth{tenant=%q} %d\n", tenant, s.Tenants[tenant].Depth)
		}
		metric("fleet_sched_tenant_dequeues_total", "counter", "Jobs handed to workers per tenant; inter-tenant ratios are the realized DRR shares.")
		for _, tenant := range schedTenants {
			fmt.Fprintf(w, "fleet_sched_tenant_dequeues_total{tenant=%q} %d\n", tenant, s.Tenants[tenant].Dequeues)
		}
		metric("fleet_sched_tenant_rejects_total", "counter", "Submissions refused by SLO admission per tenant.")
		for _, tenant := range schedTenants {
			fmt.Fprintf(w, "fleet_sched_tenant_rejects_total{tenant=%q} %d\n", tenant, s.Tenants[tenant].Rejects)
		}
		metric("fleet_sched_tenant_weight", "gauge", "Effective DRR weight per tenant.")
		for _, tenant := range schedTenants {
			fmt.Fprintf(w, "fleet_sched_tenant_weight{tenant=%q} %d\n", tenant, s.Tenants[tenant].Weight)
		}
		metric("fleet_sched_tenant_queue_age_p50_seconds", "gauge", "Median queue age over the tenant's recent dequeues.")
		for _, tenant := range schedTenants {
			fmt.Fprintf(w, "fleet_sched_tenant_queue_age_p50_seconds{tenant=%q} %s\n", tenant, f64(s.Tenants[tenant].AgeP50.Seconds()))
		}
		metric("fleet_sched_tenant_queue_age_max_seconds", "gauge", "Maximum queue age over the tenant's recent dequeues.")
		for _, tenant := range schedTenants {
			fmt.Fprintf(w, "fleet_sched_tenant_queue_age_max_seconds{tenant=%q} %s\n", tenant, f64(s.Tenants[tenant].AgeMax.Seconds()))
		}
	}

	tierModels := make([]string, 0, len(m.Tiers))
	for model := range m.Tiers {
		tierModels = append(tierModels, model)
	}
	sort.Strings(tierModels)
	metric("fleet_tier_jobs_total", "counter", "Fresh diagnoses produced per ladder model (escalated-past rungs included).")
	for _, model := range tierModels {
		fmt.Fprintf(w, "fleet_tier_jobs_total{model=%q} %d\n", model, m.Tiers[model].Jobs)
	}
	metric("fleet_tier_cost_usd_total", "counter", "Simulated API spend per ladder model in US dollars.")
	for _, model := range tierModels {
		fmt.Fprintf(w, "fleet_tier_cost_usd_total{model=%q} %s\n", model, f64(m.Tiers[model].CostUSD))
	}
	metric("fleet_tier_escalations_total", "counter", "Low-confidence diagnoses escalated to the next ladder rung.")
	fmt.Fprintf(w, "fleet_tier_escalations_total %d\n", m.TierEscalations)

	models := make([]string, 0, len(m.Models))
	for model := range m.Models {
		models = append(models, model)
	}
	sort.Strings(models)
	metric("fleet_model_calls_total", "counter", "LLM calls per model.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_calls_total{model=%q} %d\n", model, m.Models[model].Calls)
	}
	metric("fleet_model_tokens_total", "counter", "Tokens consumed per model and kind.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_tokens_total{model=%q,kind=\"prompt\"} %d\n", model, m.Models[model].PromptTokens)
		fmt.Fprintf(w, "fleet_model_tokens_total{model=%q,kind=\"completion\"} %d\n", model, m.Models[model].CompletionTokens)
	}
	metric("fleet_model_cost_usd_total", "counter", "Simulated API spend per model in US dollars.")
	for _, model := range models {
		fmt.Fprintf(w, "fleet_model_cost_usd_total{model=%q} %s\n", model, f64(m.Models[model].CostUSD))
	}

	tenants := make([]string, 0, len(m.Tenants))
	for tenant := range m.Tenants {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	metric("fleet_tenant_jobs_total", "counter", "Jobs submitted per tenant (label cardinality capped server-side; the long tail aggregates under \"_other\").")
	for _, tenant := range tenants {
		fmt.Fprintf(w, "fleet_tenant_jobs_total{tenant=%q} %d\n", tenant, m.Tenants[tenant])
	}

	inflight := make([]string, 0, len(m.TenantsInflight))
	for tenant := range m.TenantsInflight {
		inflight = append(inflight, tenant)
	}
	sort.Strings(inflight)
	metric("fleet_tenant_inflight_jobs", "gauge", "Jobs currently in the system per tenant (the -tenant-max-inflight quota counter).")
	for _, tenant := range inflight {
		fmt.Fprintf(w, "fleet_tenant_inflight_jobs{tenant=%q} %d\n", tenant, m.TenantsInflight[tenant])
	}
}

// WriteJSON serves v as an indented JSON document on the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// WriteError serves the wire error envelope on its canonical HTTP status.
func WriteError(w http.ResponseWriter, e *api.Error) {
	WriteJSON(w, e.Code.HTTPStatus(), e)
}

// internalError logs the real failure server-side and serves an opaque
// api.CodeInternal envelope: internal error chains (which can embed
// filesystem paths and addresses) never reach the wire.
func internalError(w http.ResponseWriter, op string, err error) {
	log.Printf("iofleetd: %s: %v", op, err)
	WriteError(w, api.Errorf(api.CodeInternal, "internal error; see server log"))
}
