package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/ioagent"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

func textTraceBytes(t *testing.T, log *darshan.Log) []byte {
	t.Helper()
	s, err := darshan.TextString(log)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(s)
}

// slowChunkReader yields the body in fixed-size chunks, forcing chunked
// transfer encoding and many small reads server-side.
type slowChunkReader struct {
	data  []byte
	chunk int
}

func (r *slowChunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	n = copy(p[:min(n, len(p))], r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestStreamSubmitBothRenderingsOneDigest: streaming the text and binary
// renderings of one trace yields the same content digest on the
// response, the same job digest, and a cache hit for the second — the
// canonicalization contract end to end.
func TestStreamSubmitBothRenderingsOneDigest(t *testing.T) {
	pool, srv := testMux(t, 64<<20)
	_ = pool
	log := testTrace(41)
	c := client.New(srv.URL, client.WithPollInterval(2*time.Millisecond))
	t.Cleanup(c.Close)
	ctx := context.Background()

	text := textTraceBytes(t, log)
	infoText, err := c.SubmitStream(ctx, &slowChunkReader{data: text, chunk: 128}, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDiagnosis(ctx, infoText.ID); err != nil {
		t.Fatal(err)
	}

	bin := encodeTraceBytes(t, log)
	infoBin, err := c.SubmitStream(ctx, &slowChunkReader{data: bin, chunk: 256}, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if infoBin.Digest != infoText.Digest {
		t.Fatalf("binary job digest %s != text job digest %s", infoBin.Digest, infoText.Digest)
	}
	if !infoBin.CacheHit {
		t.Error("binary rendering after text was not a cache hit — renderings do not share a digest")
	}
}

// TestStreamSubmitDigestHeaderVerified: a correct asserted digest is
// accepted and echoed; a wrong one refuses with digest_mismatch; a
// malformed one with bad_request.
func TestStreamSubmitDigestHeaderVerified(t *testing.T) {
	_, srv := testMux(t, 64<<20)
	log := testTrace(42)
	body := textTraceBytes(t, log)
	cd, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}

	post := func(digest string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs/stream", bytes.NewReader(body))
		if digest != "" {
			req.Header.Set(api.DigestHeader, digest)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(cd)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("correct digest refused: %s", resp.Status)
	}
	if got := resp.Header.Get(api.DigestHeader); got != cd {
		t.Errorf("response digest %q, want %q", got, cd)
	}
	resp.Body.Close()

	resp = post(strings.Repeat("0", 64))
	if e := apiError(t, resp); resp.StatusCode != http.StatusUnprocessableEntity || e.Code != api.CodeDigestMismatch {
		t.Errorf("wrong digest = %s / %q, want 422 digest_mismatch", resp.Status, e.Code)
	}

	resp = post("nothex")
	if e := apiError(t, resp); e.Code != api.CodeBadRequest {
		t.Errorf("malformed digest = %q, want bad_request", e.Code)
	}
}

// TestStreamSubmitTrailerDigest: the SDK computes the digest on the fly
// and ships it as a trailer; the server verifies it and the submission
// lands.
func TestStreamSubmitTrailerDigest(t *testing.T) {
	_, srv := testMux(t, 64<<20)
	log := testTrace(43)
	want, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}
	c := client.New(srv.URL)
	t.Cleanup(c.Close)

	// Non-seekable reader: single-pass, so the SDK must use the trailer.
	body := &slowChunkReader{data: textTraceBytes(t, log), chunk: 96}
	info, err := c.SubmitStream(context.Background(), body, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" {
		t.Fatal("no job accepted")
	}
	// The job digest is derived from the same content digest the client
	// computed on the fly — trailer verification passed, or this request
	// would have been refused with 422.
	_ = want
}

// TestUploadSessionRoundTrip: open → PATCH chunks with offsets → status
// mid-way shows pre-parse progress → complete yields the job; offset
// mismatches answer 409 with the authoritative offset in the header.
func TestUploadSessionRoundTrip(t *testing.T) {
	_, srv := testMux(t, 64<<20)
	log := testTrace(44)
	body := textTraceBytes(t, log)
	cd, _ := darshan.ContentDigest(log)
	c := client.New(srv.URL, client.WithPollInterval(2*time.Millisecond))
	t.Cleanup(c.Close)
	ctx := context.Background()

	up, err := c.UploadOpen(ctx, client.StreamOpts{Lane: api.LaneBatch, Tenant: "acme", Digest: cd})
	if err != nil {
		t.Fatal(err)
	}
	if up.Offset != 0 || up.Lane != api.LaneBatch || up.Tenant != "acme" || up.Digest != cd {
		t.Fatalf("opened session %+v", up)
	}

	const chunk = 512
	var offset int64
	for off := 0; off < len(body); off += chunk {
		end := min(off+chunk, len(body))
		info, err := c.UploadAppend(ctx, up.ID, offset, body[off:end])
		if err != nil {
			t.Fatal(err)
		}
		offset = info.Offset
		if end < len(body) && info.PreparsedLines == 0 {
			t.Error("no pre-parse progress mid-upload")
		}
	}

	// A stale offset is refused with the resync info.
	req, _ := http.NewRequest(http.MethodPatch, srv.URL+"/v1/uploads/"+up.ID, strings.NewReader("x"))
	req.Header.Set(api.UploadOffsetHeader, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if want := strconv.FormatInt(offset, 10); resp.Header.Get(api.UploadOffsetHeader) != want {
		t.Errorf("mismatch response %s header = %q, want %q", api.UploadOffsetHeader, resp.Header.Get(api.UploadOffsetHeader), want)
	}
	if e := apiError(t, resp); resp.StatusCode != http.StatusConflict || e.Code != api.CodeUploadOffsetMismatch {
		t.Errorf("stale offset = %s / %q, want 409 upload_offset_mismatch", resp.Status, e.Code)
	}

	job, err := c.UploadComplete(ctx, up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.Lane != api.LaneBatch || job.Tenant != "acme" {
		t.Errorf("job lost the session's lane/tenant: %+v", job)
	}
	diag, err := c.WaitDiagnosis(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Text == "" {
		t.Error("empty diagnosis from uploaded trace")
	}
	// The session is gone.
	if _, err := c.UploadStatus(ctx, up.ID); api.ErrorCode(err) != api.CodeUploadNotFound {
		t.Errorf("status after complete = %v, want upload_not_found", err)
	}
}

// TestUploadDigestMismatchAtComplete: a session opened with a wrong
// digest claim uploads fine but refuses at complete time.
func TestUploadDigestMismatchAtComplete(t *testing.T) {
	_, srv := testMux(t, 64<<20)
	body := textTraceBytes(t, testTrace(45))
	c := client.New(srv.URL)
	t.Cleanup(c.Close)
	ctx := context.Background()

	up, err := c.UploadOpen(ctx, client.StreamOpts{Digest: strings.Repeat("1", 64)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadAppend(ctx, up.ID, 0, body); err != nil {
		t.Fatal(err)
	}
	_, err = c.UploadComplete(ctx, up.ID)
	if api.ErrorCode(err) != api.CodeDigestMismatch {
		t.Fatalf("complete with wrong claim = %v, want digest_mismatch", err)
	}
}

// TestSubmitChunkedHelper: the SDK's whole-conversation helper lands a
// job from a plain reader.
func TestSubmitChunkedHelper(t *testing.T) {
	_, srv := testMux(t, 64<<20)
	log := testTrace(46)
	c := client.New(srv.URL, client.WithPollInterval(2*time.Millisecond))
	t.Cleanup(c.Close)

	job, err := c.SubmitChunked(context.Background(), bytes.NewReader(textTraceBytes(t, log)), 700, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDiagnosis(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
}

// TestTenantQuotaOnTheWire: -tenant-max-inflight surfaces as 429
// quota_exceeded with a Retry-After hint, and only for the over-quota
// tenant.
func TestTenantQuotaOnTheWire(t *testing.T) {
	gate := make(chan struct{})
	pool := fleet.New(&gatedClient{inner: llm.NewSim(), gate: gate}, fleet.Config{
		Workers: 1, TenantMaxInflight: 1,
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	t.Cleanup(func() { close(gate); pool.Close() })
	srv := httptest.NewServer(NewMux(Config{Pool: pool}))
	t.Cleanup(srv.Close)

	submit := func(tenant string, seed int) *http.Response {
		resp, err := http.Post(srv.URL+"/v1/jobs?tenant="+tenant, "application/octet-stream",
			bytes.NewReader(encodeTraceBytes(t, testTrace(seed))))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := submit("acme", 50)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %s", resp.Status)
	}
	resp.Body.Close()

	resp = submit("acme", 51)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get(api.RetryAfterHeader); ra == "" {
		t.Error("quota refusal carries no Retry-After")
	}
	if e := apiError(t, resp); e.Code != api.CodeQuotaExceeded || !e.Code.Retryable() {
		t.Errorf("over-quota code = %q (retryable=%v), want retryable quota_exceeded", e.Code, e.Code.Retryable())
	}

	resp = submit("globex", 52)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant refused: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestUploadSurvivesRetryableCompleteRefusal: a complete refused for a
// retryable reason (tenant quota) must NOT destroy the session — the
// client re-completes later without re-uploading a byte.
func TestUploadSurvivesRetryableCompleteRefusal(t *testing.T) {
	gate := make(chan struct{})
	pool := fleet.New(&gatedClient{inner: llm.NewSim(), gate: gate}, fleet.Config{
		Workers: 1, TenantMaxInflight: 1,
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(NewMux(Config{Pool: pool}))
	t.Cleanup(srv.Close)
	c := client.New(srv.URL, client.WithRetry(1, time.Millisecond), client.WithPollInterval(2*time.Millisecond))
	t.Cleanup(c.Close)
	ctx := context.Background()

	// Occupy acme's whole quota with a parked job.
	resp, err := http.Post(srv.URL+"/v1/jobs?tenant=acme", "application/octet-stream",
		bytes.NewReader(encodeTraceBytes(t, testTrace(60))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quota-filling submission: %s", resp.Status)
	}

	// Upload a different trace for the same tenant and try to complete.
	body := textTraceBytes(t, testTrace(61))
	up, err := c.UploadOpen(ctx, client.StreamOpts{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadAppend(ctx, up.ID, 0, body); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadComplete(ctx, up.ID); api.ErrorCode(err) != api.CodeQuotaExceeded {
		t.Fatalf("complete at quota = %v, want quota_exceeded", err)
	}

	// The session survived the refusal; its bytes are intact.
	st, err := c.UploadStatus(ctx, up.ID)
	if err != nil {
		t.Fatalf("session gone after retryable refusal: %v", err)
	}
	if st.Offset != int64(len(body)) {
		t.Fatalf("session offset %d after refusal, want %d", st.Offset, len(body))
	}
	// But it is finalized: appending now is refused explicitly.
	if _, err := c.UploadAppend(ctx, up.ID, st.Offset, []byte("x")); api.ErrorCode(err) != api.CodeBadRequest {
		t.Errorf("append after finalize = %v, want bad_request", err)
	}

	// Quota frees; the re-complete succeeds with no re-upload.
	close(gate)
	pool.Wait()
	job, err := c.UploadComplete(ctx, up.ID)
	if err != nil {
		t.Fatalf("re-complete after quota freed: %v", err)
	}
	if _, err := c.WaitDiagnosis(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	// Now the session is gone for real.
	if _, err := c.UploadStatus(ctx, up.ID); api.ErrorCode(err) != api.CodeUploadNotFound {
		t.Errorf("status after accepted complete = %v, want upload_not_found", err)
	}
}

// gatedClient parks model calls until the gate closes (mirrors the fleet
// package's test helper).
type gatedClient struct {
	inner llm.Client
	gate  chan struct{}
}

func (g *gatedClient) Complete(req llm.Request) (llm.Response, error) {
	<-g.gate
	return g.inner.Complete(req)
}

// TestStreamJSONShapes: the stream endpoint's 202 payload is a regular
// JobInfo document (decoder-compatible with the buffered path's).
func TestStreamJSONShapes(t *testing.T) {
	_, srv := testMux(t, 64<<20)
	body := textTraceBytes(t, testTrace(47))
	resp, err := http.Post(srv.URL+"/v1/jobs/stream", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream submit: %s", resp.Status)
	}
	var info api.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Digest == "" {
		t.Errorf("incomplete job info: %+v", info)
	}
}
