package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

const (
	laneI = "interactive"
	laneB = "batch"
)

func newTest(t *testing.T, cfg Config) *Scheduler[int] {
	t.Helper()
	if cfg.Lanes == nil {
		cfg.Lanes = []string{laneI, laneB}
	}
	if cfg.Depth == 0 {
		cfg.Depth = 1024
	}
	return New[int](cfg)
}

func mustEnqueue(t *testing.T, s *Scheduler[int], lane, tenant string, v int) {
	t.Helper()
	if err := s.Enqueue(context.Background(), lane, tenant, v); err != nil {
		t.Fatalf("Enqueue(%s, %s, %d): %v", lane, tenant, v, err)
	}
}

// drain dequeues n items and returns them in order.
func drain(t *testing.T, s *Scheduler[int], n int) []int {
	t.Helper()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d/%d: scheduler closed early", i+1, n)
		}
		out = append(out, v)
	}
	return out
}

func TestSchedFIFOPreservesArrivalOrder(t *testing.T) {
	s := newTest(t, Config{FIFO: true, AltShare: -1})
	for i := 0; i < 20; i++ {
		mustEnqueue(t, s, laneI, fmt.Sprintf("t%d", i%3), i)
	}
	got := drain(t, s, 20)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order broken at %d: got %v", i, got)
		}
	}
}

// TestSchedDRRWeightedShares floods three tenants with known weights
// and checks the realized dequeue shares track the configured ratios.
func TestSchedDRRWeightedShares(t *testing.T) {
	s := newTest(t, Config{
		AltShare: -1,
		Weights:  map[string]int{"heavy": 6, "mid": 3, "light": 1},
	})
	const perTenant = 200
	// Tag items by tenant: heavy=0, mid=1, light=2.
	for i := 0; i < perTenant; i++ {
		mustEnqueue(t, s, laneI, "heavy", 0)
		mustEnqueue(t, s, laneI, "mid", 1)
		mustEnqueue(t, s, laneI, "light", 2)
	}
	// Sample only while every tenant is still backlogged: heavy runs
	// dry first (200 items at share 0.6 ≈ 333 dequeues), so stop at 300.
	counts := [3]int{}
	const sample = 300
	for i := 0; i < sample; i++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatal("closed early")
		}
		counts[v]++
	}
	total := counts[0] + counts[1] + counts[2]
	wantShare := [3]float64{0.6, 0.3, 0.1}
	for i, c := range counts {
		share := float64(c) / float64(total)
		if diff := share - wantShare[i]; diff > 0.05 || diff < -0.05 {
			t.Fatalf("tenant %d share %.3f, want %.3f ±0.05 (counts %v)", i, share, wantShare[i], counts)
		}
	}
}

// TestSchedLightTenantNotCrowdedOut is the DRR point: a light tenant's
// item must be served within roughly one ring round even when a noisy
// tenant queued hundreds of items first.
func TestSchedLightTenantNotCrowdedOut(t *testing.T) {
	s := newTest(t, Config{AltShare: -1, Weights: map[string]int{"noisy": 4, "light": 4}})
	for i := 0; i < 500; i++ {
		mustEnqueue(t, s, laneI, "noisy", 0)
	}
	mustEnqueue(t, s, laneI, "light", 1)
	got := drain(t, s, 10)
	pos := -1
	for i, v := range got {
		if v == 1 {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 8 {
		t.Fatalf("light tenant served at position %d of %v; want within one DRR round", pos, got)
	}
}

// TestSchedAltShareGivesBatchItsSlice checks the cross-lane layer:
// with AltShare=4 and both lanes backlogged, batch gets ~1/4 of
// dequeues even though interactive is preferred.
func TestSchedAltShareGivesBatchItsSlice(t *testing.T) {
	s := newTest(t, Config{AltShare: 4})
	for i := 0; i < 400; i++ {
		mustEnqueue(t, s, laneI, "a", 0)
		mustEnqueue(t, s, laneB, "a", 1)
	}
	batch := 0
	for i := 0; i < 400; i++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatal("closed early")
		}
		if v == 1 {
			batch++
		}
	}
	if batch < 90 || batch > 110 {
		t.Fatalf("batch got %d/400 dequeues, want ~100 (AltShare=4)", batch)
	}
}

// TestSchedStrictPriority: with AltShare<=0 batch runs only while
// interactive is empty.
func TestSchedStrictPriority(t *testing.T) {
	s := newTest(t, Config{AltShare: -1})
	for i := 0; i < 50; i++ {
		mustEnqueue(t, s, laneB, "a", 1)
	}
	for i := 0; i < 50; i++ {
		mustEnqueue(t, s, laneI, "a", 0)
	}
	got := drain(t, s, 100)
	for i := 0; i < 50; i++ {
		if got[i] != 0 {
			t.Fatalf("batch served at position %d under strict priority", i)
		}
	}
}

func TestSchedBackpressureBlocksUntilDequeue(t *testing.T) {
	s := newTest(t, Config{Depth: 2, AltShare: -1})
	mustEnqueue(t, s, laneI, "a", 0)
	mustEnqueue(t, s, laneI, "a", 1)
	done := make(chan error, 1)
	go func() {
		done <- s.Enqueue(context.Background(), laneI, "a", 2)
	}()
	select {
	case err := <-done:
		t.Fatalf("Enqueue returned %v before a slot freed", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, ok := s.Dequeue(); !ok {
		t.Fatal("Dequeue failed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Enqueue after slot freed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Enqueue still blocked after a slot freed")
	}
}

// TestSchedCancelWhileQueuedLeaksNoTenantState is the regression test
// for SubmitContext cancellation: an Enqueue aborted by its context
// while waiting out backpressure must leave per-tenant depth and age
// state exactly as it found them — the canceled item was never
// admitted, so nothing may leak.
func TestSchedCancelWhileQueuedLeaksNoTenantState(t *testing.T) {
	s := newTest(t, Config{Depth: 1, AltShare: -1})
	mustEnqueue(t, s, laneI, "victim", 0)

	before := s.Metrics()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Enqueue(ctx, laneI, "canceler", 1) }()
	time.Sleep(20 * time.Millisecond) // let the goroutine park on the full lane
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Enqueue returned %v, want context.Canceled", err)
	}

	after := s.Metrics()
	if _, leaked := after.Tenants["canceler"]; leaked {
		t.Fatalf("canceled tenant leaked scheduler state: %+v", after.Tenants["canceler"])
	}
	if after.Lanes[laneI] != before.Lanes[laneI] {
		t.Fatalf("lane depth changed %d -> %d across a canceled enqueue", before.Lanes[laneI], after.Lanes[laneI])
	}
	// The freed capacity must still be there: the victim dequeues and a
	// fresh enqueue succeeds immediately.
	if _, ok := s.Dequeue(); !ok {
		t.Fatal("Dequeue failed")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := s.Enqueue(ctx2, laneI, "fresh", 2); err != nil {
		t.Fatalf("slot leaked by canceled enqueue: %v", err)
	}
	m := s.Metrics()
	if d := m.Tenants["victim"].Depth; d != 0 {
		t.Fatalf("victim depth %d after dequeue, want 0", d)
	}
	if d := m.Tenants["fresh"].Depth; d != 1 {
		t.Fatalf("fresh depth %d, want 1", d)
	}
}

func TestSchedCloseDrainsThenStops(t *testing.T) {
	s := newTest(t, Config{AltShare: -1})
	for i := 0; i < 5; i++ {
		mustEnqueue(t, s, laneI, "a", i)
	}
	s.Close()
	if err := s.Enqueue(context.Background(), laneI, "a", 99); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close: %v, want ErrClosed", err)
	}
	got := drain(t, s, 5)
	for i, v := range got {
		if v != i {
			t.Fatalf("drain order %v", got)
		}
	}
	if _, ok := s.Dequeue(); ok {
		t.Fatal("Dequeue returned ok=true on a closed, drained scheduler")
	}
}

func TestSchedCloseWakesBlockedWorkers(t *testing.T) {
	s := newTest(t, Config{AltShare: -1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := s.Dequeue(); !ok {
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Close()
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("workers still blocked after Close")
	}
}

// TestSchedAdmissionRejectsStaleBacklog covers admission rule (a): the
// tenant's oldest queued item already exceeds the class target.
func TestSchedAdmissionRejectsStaleBacklog(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	s := newTest(t, Config{
		AltShare:  -1,
		Admission: true,
		Classes:   map[string]string{"gold-t": "gold"},
		Now:       now,
	})
	if err := s.Admit(laneI, "gold-t"); err != nil {
		t.Fatalf("empty-queue admit rejected: %v", err)
	}
	mustEnqueue(t, s, laneI, "gold-t", 0)
	clock = clock.Add(3 * time.Second) // gold target is 2s
	if err := s.Admit(laneI, "gold-t"); !errors.Is(err, ErrSLOExceeded) {
		t.Fatalf("stale backlog admitted: %v", err)
	}
	m := s.Metrics()
	if m.Rejects != 1 || m.Tenants["gold-t"].Rejects != 1 {
		t.Fatalf("reject counters %d/%d, want 1/1", m.Rejects, m.Tenants["gold-t"].Rejects)
	}
	// Tenants without a class are never rejected.
	if err := s.Admit(laneI, "anon-t"); err != nil {
		t.Fatalf("classless tenant rejected: %v", err)
	}
}

// TestSchedAdmissionRejectsProjectedAge covers admission rule (b): a
// slow measured drain rate projects the new item past the target.
func TestSchedAdmissionRejectsProjectedAge(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	s := newTest(t, Config{
		AltShare:  -1,
		Admission: true,
		Classes:   map[string]string{"gold-t": "gold"},
		Now:       now,
	})
	// Teach the lane a 1s-per-item drain rate: dequeues 1s apart while
	// the lane stays backlogged.
	for i := 0; i < 8; i++ {
		mustEnqueue(t, s, laneI, "filler", i)
	}
	for i := 0; i < 6; i++ {
		clock = clock.Add(time.Second)
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("drain")
		}
	}
	// gold target 2s; with the filler active (weight 1) and gold weight
	// 8, a gold item projects to ~(0+1)*1s*(9/8) ≈ 1.1s — admitted.
	if err := s.Admit(laneI, "gold-t"); err != nil {
		t.Fatalf("gold with empty backlog rejected: %v", err)
	}
	// Give gold a backlog of 3: projected (3+1)*1s*9/8 = 4.5s > 2s.
	for i := 0; i < 3; i++ {
		mustEnqueue(t, s, laneI, "gold-t", i)
	}
	if err := s.Admit(laneI, "gold-t"); !errors.Is(err, ErrSLOExceeded) {
		t.Fatalf("over-projection admitted: %v", err)
	}
}

func TestSchedSetTenantClass(t *testing.T) {
	s := newTest(t, Config{AltShare: -1})
	if err := s.SetTenantClass("t1", "no-such-class"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if err := s.SetTenantClass("t1", "gold"); err != nil {
		t.Fatal(err)
	}
	if got := s.TenantClasses()["t1"]; got != "gold" {
		t.Fatalf("class %q, want gold", got)
	}
	mustEnqueue(t, s, laneI, "t1", 0)
	if w := s.Metrics().Tenants["t1"].Weight; w != 8 {
		t.Fatalf("gold weight %d, want 8", w)
	}
	if err := s.SetTenantClass("t1", ""); err != nil {
		t.Fatal(err)
	}
	if _, still := s.TenantClasses()["t1"]; still {
		t.Fatal("clearing the class did not remove the assignment")
	}
}

// TestSchedTenantLabelCap: tenants beyond MaxTenantLabels aggregate
// under OverflowKey instead of growing the map without bound.
func TestSchedTenantLabelCap(t *testing.T) {
	s := newTest(t, Config{AltShare: -1, Depth: 2 * MaxTenantLabels})
	for i := 0; i < MaxTenantLabels+10; i++ {
		mustEnqueue(t, s, laneI, fmt.Sprintf("tenant-%04d", i), i)
	}
	m := s.Metrics()
	if len(m.Tenants) > MaxTenantLabels+1 {
		t.Fatalf("tenant label map grew to %d, cap is %d+overflow", len(m.Tenants), MaxTenantLabels)
	}
	if d := m.Tenants[OverflowKey].Depth; d != 10 {
		t.Fatalf("overflow depth %d, want 10", d)
	}
}

// TestSchedAgePercentiles sanity-checks the queue-age accounting with
// an injected clock.
func TestSchedAgePercentiles(t *testing.T) {
	clock := time.Unix(0, 0)
	s := newTest(t, Config{AltShare: -1, Now: func() time.Time { return clock }})
	mustEnqueue(t, s, laneI, "t", 0)
	clock = clock.Add(100 * time.Millisecond)
	mustEnqueue(t, s, laneI, "t", 1)
	clock = clock.Add(400 * time.Millisecond)
	drain(t, s, 2)
	m := s.Metrics().Tenants["t"]
	if m.AgeMax != 500*time.Millisecond {
		t.Fatalf("age max %v, want 500ms", m.AgeMax)
	}
	if m.AgeP50 != 400*time.Millisecond {
		t.Fatalf("age p50 %v, want 400ms", m.AgeP50)
	}
	if m.Dequeues != 2 || m.Depth != 0 {
		t.Fatalf("dequeues=%d depth=%d, want 2/0", m.Dequeues, m.Depth)
	}
}

// TestSchedConcurrentChurn hammers the scheduler from many producers
// and consumers to give the race detector a workout.
func TestSchedConcurrentChurn(t *testing.T) {
	s := newTest(t, Config{Depth: 64, AltShare: 4})
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lane := laneI
			if p%2 == 1 {
				lane = laneB
			}
			tenant := fmt.Sprintf("t%d", p%4)
			for i := 0; i < perProducer; i++ {
				if err := s.Enqueue(context.Background(), lane, tenant, i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	var got int64
	var cwg sync.WaitGroup
	var mu sync.Mutex
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if _, ok := s.Dequeue(); !ok {
					return
				}
				mu.Lock()
				got++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	s.Close()
	cwg.Wait()
	if got != producers*perProducer {
		t.Fatalf("dequeued %d, want %d", got, producers*perProducer)
	}
	m := s.Metrics()
	for tenant, tm := range m.Tenants {
		if tm.Depth != 0 {
			t.Fatalf("tenant %s depth %d after full drain", tenant, tm.Depth)
		}
	}
}
