package sched

import (
	"fmt"
	"sort"
	"time"
)

// Class is one SLO service class: the DRR weight its tenants dequeue
// at, and the queue-age target admission control enforces (zero means
// no admission target — weight-only classes are legal).
type Class struct {
	// Weight is the DRR quantum: over a busy interval a tenant's share
	// of dequeues converges to Weight / Σ active weights.
	Weight int `json:"weight"`
	// MaxQueueAge is the admission target: with Config.Admission on, a
	// submission whose projected queue age exceeds it is refused with
	// ErrSLOExceeded instead of admitted to rot.
	MaxQueueAge time.Duration `json:"max_queue_age_ns"`
}

// BuiltinClasses returns the standard gold/silver/bronze ladder:
// gold is 8x bronze's dequeue weight with a 2s queue-age target,
// silver 4x with 10s, bronze 1x with 60s. The map is fresh per call —
// callers may extend it before handing it to Config.ClassDefs.
func BuiltinClasses() map[string]Class {
	return map[string]Class{
		"gold":   {Weight: 8, MaxQueueAge: 2 * time.Second},
		"silver": {Weight: 4, MaxQueueAge: 10 * time.Second},
		"bronze": {Weight: 1, MaxQueueAge: 60 * time.Second},
	}
}

// SetTenantClass assigns (or with class "", clears) a tenant's SLO
// class at runtime. Unknown class names are rejected so a typo cannot
// silently demote a tenant to the default weight.
func (s *Scheduler[T]) SetTenantClass(tenant, class string) error {
	if tenant == "" {
		return fmt.Errorf("sched: empty tenant")
	}
	if class != "" {
		if _, ok := s.cfg.ClassDefs[class]; !ok {
			return fmt.Errorf("sched: unknown SLO class %q (have %v)", class, s.classNames())
		}
	}
	s.mu.Lock()
	if class == "" {
		delete(s.classes, tenant)
	} else {
		s.classes[tenant] = class
	}
	s.mu.Unlock()
	return nil
}

// TenantClasses returns the current tenant→class assignments (a copy).
func (s *Scheduler[T]) TenantClasses() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.classes))
	for t, c := range s.classes {
		out[t] = c
	}
	return out
}

// ClassDefs returns the scheduler's class definitions (a copy).
func (s *Scheduler[T]) ClassDefs() map[string]Class {
	out := make(map[string]Class, len(s.cfg.ClassDefs))
	for name, c := range s.cfg.ClassDefs {
		out[name] = c
	}
	return out
}

// Admission reports whether SLO admission control is enabled.
func (s *Scheduler[T]) Admission() bool { return s.cfg.Admission }

// FIFO reports whether the scheduler runs in the tenant-blind baseline
// mode.
func (s *Scheduler[T]) FIFO() bool { return s.cfg.FIFO }

func (s *Scheduler[T]) classNames() []string {
	names := make([]string, 0, len(s.cfg.ClassDefs))
	for name := range s.cfg.ClassDefs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// classDefLocked resolves a tenant's class definition. Caller holds
// s.mu.
func (s *Scheduler[T]) classDefLocked(tenant string) (Class, bool) {
	name, ok := s.classes[tenant]
	if !ok {
		return Class{}, false
	}
	cls, ok := s.cfg.ClassDefs[name]
	return cls, ok
}

// weightOfLocked resolves a tenant's effective DRR weight: an explicit
// Config.Weights entry wins, then the tenant's class weight, then
// DefaultWeight; never below 1. Caller holds s.mu.
func (s *Scheduler[T]) weightOfLocked(tenant string) int {
	w := 0
	if ew, ok := s.cfg.Weights[tenant]; ok {
		w = ew
	} else if cls, ok := s.classDefLocked(tenant); ok {
		w = cls.Weight
	} else {
		w = s.cfg.DefaultWeight
	}
	if w < 1 {
		w = 1
	}
	return w
}
