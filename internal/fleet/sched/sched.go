// Package sched is the fleet's per-tenant fair scheduler: per-lane,
// per-tenant FIFO queues drained by weighted deficit-round-robin, with
// optional SLO-class admission control.
//
// The scheduler replaces the one-channel-per-lane queues that fleet.Pool
// grew up with. A channel is FIFO across tenants, so inside one priority
// lane a single backlogged tenant — even one under its in-flight quota —
// owns the head of the line and every other tenant's queue age inherits
// its backlog. Here each tenant gets its own FIFO inside the lane, and a
// deficit-round-robin pass across the active tenants decides whose head
// runs next: every visit to a backlogged tenant credits its deficit
// counter with the tenant's weight, each dequeue spends one credit, and
// a tenant whose credit is spent yields to the next tenant in the ring.
// Over any busy interval a tenant's share of dequeues converges to
// weight_t / Σ weight_active regardless of how deep anyone's backlog is;
// a light tenant's queue age is bounded by one round of the ring, not by
// the noisy tenant's backlog.
//
// The external contract mirrors the channels it replaces:
//
//   - Enqueue blocks while the lane is at capacity (backpressure) and
//     aborts with ctx.Err() if the context is done first — the
//     SubmitContext contract. A canceled Enqueue leaves no trace: the
//     item was never admitted, so per-tenant depth and age state are
//     untouched.
//   - Dequeue blocks until an item is available; after Close it drains
//     the remaining items and then reports ok=false, which is how pool
//     workers learn to exit.
//   - Cross-lane weighting is layered above the per-tenant DRR: every
//     AltShare-th pick prefers the second lane (fleet.Config.BatchShare
//     semantics), so batch keeps its guaranteed slice of worker dequeues
//     and fairness *within* each lane composes with priority *between*
//     lanes.
//
// FIFO mode (Config.FIFO) keeps the legacy tenant-blind order per lane.
// It exists so cmd/fairbench can measure exactly what DRR buys under a
// noisy-tenant flood; production daemons have no reason to enable it.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("sched: scheduler is closed")

// ErrSLOExceeded is returned by Admit when a tenant's projected queue
// age exceeds its SLO class target. The submission was refused before
// any state was created; retrying later — once the tenant's backlog
// drains — is safe.
var ErrSLOExceeded = errors.New("sched: projected queue age exceeds the tenant's SLO class target")

// Config tunes a Scheduler.
type Config struct {
	// Lanes lists the lane names in dequeue-preference order; the first
	// lane is preferred except for the AltShare carve-out below. At
	// least one lane is required.
	Lanes []string
	// Depth bounds each lane's queued items; a full lane blocks Enqueue
	// (backpressure). Must be positive.
	Depth int
	// AltShare gives the second lane a guaranteed slice of dequeues:
	// when positive, every AltShare-th pick prefers Lanes[1] over
	// Lanes[0]. Zero or negative means strict preference order (the
	// second lane runs only while the first is empty). Ignored with
	// fewer than two lanes.
	AltShare int
	// Weights maps tenant to an explicit DRR weight, overriding the
	// tenant's class weight. Weights below 1 are clamped to 1.
	Weights map[string]int
	// Classes maps tenant to an SLO class name (resolved against
	// ClassDefs). Assignments can also change at runtime via
	// SetTenantClass.
	Classes map[string]string
	// ClassDefs defines the available SLO classes; nil means
	// BuiltinClasses (gold/silver/bronze).
	ClassDefs map[string]Class
	// DefaultWeight is the weight of tenants with neither an explicit
	// weight nor a class (default 1).
	DefaultWeight int
	// Admission enables SLO admission control: Admit rejects a
	// submission with ErrSLOExceeded when the tenant's projected queue
	// age exceeds its class target. Tenants without a class (or with a
	// zero MaxQueueAge) are never rejected.
	Admission bool
	// FIFO disables per-tenant fairness and drains each lane in strict
	// arrival order — the pre-DRR behavior, kept as a measurable
	// baseline for cmd/fairbench.
	FIFO bool
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = 32
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.ClassDefs == nil {
		c.ClassDefs = BuiltinClasses()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// entry is one queued item.
type entry[T any] struct {
	v      T
	tenant string
	at     time.Time
}

// tenantQueue is one tenant's FIFO inside a lane plus its DRR deficit.
type tenantQueue[T any] struct {
	items   []entry[T]
	deficit int
}

// lane is one priority lane: a map of per-tenant queues, the ring of
// tenants with backlog, and the DRR cursor into it.
type lane[T any] struct {
	name  string
	fifo  []entry[T] // FIFO mode only
	byTen map[string]*tenantQueue[T]
	ring  []string // tenants with a non-empty queue, visit order
	idx   int      // ring cursor
	// credited marks that ring[idx] received its quantum for the
	// current visit; cleared whenever the cursor moves.
	credited bool
	count    int
	// Drain-rate estimate for admission control: an EWMA of the
	// interval between consecutive dequeues while the lane stayed
	// backlogged. idle poisons the interval, so a dequeue that empties
	// the lane suspends the estimate until the next one.
	lastDeq   time.Time
	wasIdle   bool
	drainEWMA time.Duration
}

// Scheduler is a per-lane, per-tenant fair queue. All methods are safe
// for concurrent use.
type Scheduler[T any] struct {
	cfg Config

	// slots is the per-lane backpressure semaphore: Enqueue acquires a
	// token (blocking, context-bounded) before touching scheduler
	// state, Dequeue releases one per removed item. Tokens ≥ queued
	// items always, so the release never blocks.
	slots map[string]chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond // signaled on enqueue and Close
	closed  bool
	lanes   map[string]*lane[T]
	order   []string          // cfg.Lanes, for preference iteration
	classes map[string]string // tenant -> class name (runtime-mutable)
	picks   int64             // cross-lane AltShare counter

	stats schedStats
}

// New builds a scheduler. It panics on an empty lane list — the lane
// set is a compile-time property of the pool, not operator input.
func New[T any](cfg Config) *Scheduler[T] {
	cfg = cfg.withDefaults()
	if len(cfg.Lanes) == 0 {
		panic("sched: at least one lane is required")
	}
	s := &Scheduler[T]{
		cfg:     cfg,
		slots:   make(map[string]chan struct{}, len(cfg.Lanes)),
		lanes:   make(map[string]*lane[T], len(cfg.Lanes)),
		order:   append([]string(nil), cfg.Lanes...),
		classes: make(map[string]string, len(cfg.Classes)),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, name := range cfg.Lanes {
		if _, dup := s.lanes[name]; dup {
			panic(fmt.Sprintf("sched: duplicate lane %q", name))
		}
		s.lanes[name] = &lane[T]{name: name, byTen: make(map[string]*tenantQueue[T])}
		s.slots[name] = make(chan struct{}, cfg.Depth)
	}
	for tenant, class := range cfg.Classes {
		if _, ok := cfg.ClassDefs[class]; !ok {
			panic(fmt.Sprintf("sched: tenant %q assigned unknown class %q", tenant, class))
		}
		s.classes[tenant] = class
	}
	return s
}

// Enqueue admits one item to the named lane, blocking while the lane is
// at Depth (backpressure). If ctx is done before a slot frees, the item
// is not admitted and ctx.Err() is returned — no depth, age, or ring
// state is created for it. Admission control is NOT applied here; call
// Admit first if it should be.
func (s *Scheduler[T]) Enqueue(ctx context.Context, laneName, tenant string, v T) error {
	slots, ok := s.slots[laneName]
	if !ok {
		return fmt.Errorf("sched: unknown lane %q", laneName)
	}
	select {
	case slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	if s.closed {
		<-slots
		s.mu.Unlock()
		return ErrClosed
	}
	ln := s.lanes[laneName]
	e := entry[T]{v: v, tenant: tenant, at: s.cfg.Now()}
	if s.cfg.FIFO {
		ln.fifo = append(ln.fifo, e)
	} else {
		tq := ln.byTen[tenant]
		if tq == nil {
			tq = &tenantQueue[T]{}
			ln.byTen[tenant] = tq
		}
		if len(tq.items) == 0 {
			ln.ring = append(ln.ring, tenant)
		}
		tq.items = append(tq.items, e)
	}
	ln.count++
	s.stats.hold(tenant)
	s.mu.Unlock()
	s.cond.Signal()
	return nil
}

// Dequeue returns the next item under the cross-lane preference and the
// per-tenant DRR, blocking while every lane is empty. ok=false means
// the scheduler is closed and fully drained — the worker-exit signal.
func (s *Scheduler[T]) Dequeue() (T, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if e, ln, ok := s.pickLocked(); ok {
			<-s.slots[ln.name] // free the backpressure slot (never blocks)
			now := s.cfg.Now()
			ln.observeDequeue(now)
			s.stats.dequeued(e.tenant, now.Sub(e.at))
			return e.v, true
		}
		if s.closed {
			var zero T
			return zero, false
		}
		s.cond.Wait()
	}
}

// pickLocked chooses the lane (preference order, with the AltShare
// carve-out for the second lane) and takes that lane's next item. The
// pick counter advances only when an item is actually returned, so the
// every-AltShare-th cadence counts worker dequeues, not idle polls.
// Caller holds s.mu.
func (s *Scheduler[T]) pickLocked() (entry[T], *lane[T], bool) {
	pref := 0
	if len(s.order) > 1 && s.cfg.AltShare > 0 && (s.picks+1)%int64(s.cfg.AltShare) == 0 {
		pref = 1
	}
	if ln := s.lanes[s.order[pref]]; ln.count > 0 {
		s.picks++
		return ln.next(s.weightOfLocked), ln, true
	}
	for i, name := range s.order {
		if i == pref {
			continue
		}
		if ln := s.lanes[name]; ln.count > 0 {
			s.picks++
			return ln.next(s.weightOfLocked), ln, true
		}
	}
	var zero entry[T]
	return zero, nil, false
}

// next removes and returns the lane's next item; the caller guarantees
// count > 0. In FIFO mode that is arrival order; otherwise the DRR pass
// walks the active-tenant ring, crediting each visited tenant's deficit
// with its weight and spending one credit per dequeue, so a tenant
// yields the cursor after weight consecutive items (or sooner, when its
// queue empties — leftover credit is forfeited, never banked).
func (ln *lane[T]) next(weightOf func(string) int) entry[T] {
	ln.count--
	if ln.byTen == nil || len(ln.ring) == 0 { // FIFO mode
		e := ln.fifo[0]
		ln.fifo = ln.fifo[1:]
		if len(ln.fifo) == 0 {
			ln.fifo = nil // release the drained backing array
		}
		return e
	}
	for {
		if ln.idx >= len(ln.ring) {
			ln.idx = 0
		}
		tenant := ln.ring[ln.idx]
		tq := ln.byTen[tenant]
		if !ln.credited {
			tq.deficit += weightOf(tenant)
			ln.credited = true
		}
		if tq.deficit < 1 { // cannot happen with weights ≥ 1; defensive
			ln.advance()
			continue
		}
		e := tq.items[0]
		tq.items = tq.items[1:]
		tq.deficit--
		if len(tq.items) == 0 {
			// Drained: leave the ring and forfeit leftover credit, so an
			// empty queue cannot bank deficit for a later burst.
			delete(ln.byTen, tenant)
			ln.ring = append(ln.ring[:ln.idx], ln.ring[ln.idx+1:]...)
			ln.credited = false
			if ln.idx >= len(ln.ring) {
				ln.idx = 0
			}
		} else if tq.deficit == 0 {
			ln.advance()
		}
		return e
	}
}

// advance moves the DRR cursor to the next active tenant.
func (ln *lane[T]) advance() {
	ln.credited = false
	ln.idx++
	if ln.idx >= len(ln.ring) {
		ln.idx = 0
	}
}

// observeDequeue feeds the lane's drain-rate EWMA. Intervals that span
// an idle lane are skipped — they measure traffic gaps, not service
// time, and would make admission control wildly pessimistic after
// every quiet spell.
func (ln *lane[T]) observeDequeue(now time.Time) {
	if !ln.lastDeq.IsZero() && !ln.wasIdle {
		dt := now.Sub(ln.lastDeq)
		if dt >= 0 {
			if ln.drainEWMA == 0 {
				ln.drainEWMA = dt
			} else {
				ln.drainEWMA = (3*ln.drainEWMA + dt) / 4
			}
		}
	}
	ln.lastDeq = now
	ln.wasIdle = ln.count == 0
}

// Admit decides whether a submission from tenant on the named lane may
// enter, per the tenant's SLO class target. It returns nil when
// admission control is off, the scheduler is in FIFO mode, or the
// tenant has no age target; otherwise it rejects with ErrSLOExceeded
// when either (a) the tenant's oldest queued item in the lane already
// exceeds the target — the queue is provably rotting — or (b) the
// projected age of the new item, estimated from the lane's drain rate
// and the tenant's fair share of it, exceeds the target. The estimate
// is advisory: it cannot see future arrivals, so admission bounds
// expected queue age, it does not guarantee it.
func (s *Scheduler[T]) Admit(laneName, tenant string) error {
	if !s.cfg.Admission || s.cfg.FIFO {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cls, ok := s.classDefLocked(tenant)
	if !ok || cls.MaxQueueAge <= 0 {
		return nil
	}
	ln := s.lanes[laneName]
	if ln == nil {
		return nil
	}
	backlog := 0
	if tq := ln.byTen[tenant]; tq != nil {
		backlog = len(tq.items)
		if oldest := tq.items[0].at; s.cfg.Now().Sub(oldest) > cls.MaxQueueAge {
			s.stats.rejected(tenant)
			return fmt.Errorf("%w: tenant %q oldest queued job is %v old (target %v)",
				ErrSLOExceeded, tenant, s.cfg.Now().Sub(oldest).Round(time.Millisecond), cls.MaxQueueAge)
		}
	}
	if ln.drainEWMA <= 0 {
		return nil // no drain history yet; admit and let the queue teach us
	}
	// The tenant's fair drain rate is the lane's rate scaled by its
	// share of the active weight; a new item waits for the tenant's own
	// backlog (plus itself) at that rate.
	w := s.weightOfLocked(tenant)
	totalW := w
	for _, t := range ln.ring {
		if t != tenant {
			totalW += s.weightOfLocked(t)
		}
	}
	projected := time.Duration(backlog+1) * ln.drainEWMA * time.Duration(totalW) / time.Duration(w)
	if projected > cls.MaxQueueAge {
		s.stats.rejected(tenant)
		return fmt.Errorf("%w: tenant %q projected queue age %v (backlog %d, target %v)",
			ErrSLOExceeded, tenant, projected.Round(time.Millisecond), backlog, cls.MaxQueueAge)
	}
	return nil
}

// Close stops admissions. Items already queued remain dequeueable;
// once drained, Dequeue reports ok=false.
func (s *Scheduler[T]) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Depth returns the named lane's queued-item count (0 for unknown
// lanes).
func (s *Scheduler[T]) Depth(laneName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ln := s.lanes[laneName]; ln != nil {
		return ln.count
	}
	return 0
}
