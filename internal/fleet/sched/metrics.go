package sched

import (
	"time"
)

// MaxTenantLabels caps the distinct per-tenant stat series one
// scheduler tracks; tenants beyond it aggregate under OverflowKey so
// metric cardinality stays bounded no matter what tenant strings
// clients invent. Matches the pool's tenant-label cap.
const MaxTenantLabels = 256

// OverflowKey collects per-tenant stats beyond the MaxTenantLabels
// cap. The string deliberately matches api.TenantOverflow.
const OverflowKey = "_other"

// ageWindow bounds the per-tenant reservoir of recent dequeue ages the
// p50/max come from; beyond it the buffer behaves as a ring.
const ageWindow = 128

// TenantMetrics is one tenant's point-in-time scheduler view.
type TenantMetrics struct {
	// Class and Weight are the tenant's current SLO class ("" for
	// none) and effective DRR weight.
	Class  string `json:"class,omitempty"`
	Weight int    `json:"weight"`
	// Depth is the tenant's queued items right now, across lanes.
	Depth int64 `json:"depth"`
	// Dequeues counts items handed to workers; across tenants the
	// ratios are the realized dequeue shares DRR is judged by.
	Dequeues int64 `json:"dequeues"`
	// Rejects counts submissions refused by SLO admission control.
	Rejects int64 `json:"rejects"`
	// AgeP50 / AgeMax are queue-age percentiles over the tenant's most
	// recent dequeues (enqueue→dequeue, not completion).
	AgeP50 time.Duration `json:"age_p50_ns"`
	AgeMax time.Duration `json:"age_max_ns"`
}

// Metrics is a point-in-time scheduler snapshot.
type Metrics struct {
	FIFO      bool  `json:"fifo,omitempty"`
	Admission bool  `json:"admission,omitempty"`
	Dequeues  int64 `json:"dequeues"`
	// Rejects is the total SLO admission refusals (including tenants
	// collapsed into the overflow bucket).
	Rejects int64 `json:"rejects"`
	// Lanes maps lane name to queued-item count.
	Lanes map[string]int64 `json:"lanes,omitempty"`
	// Tenants maps tenant (or OverflowKey) to its scheduler stats.
	// Anonymous submissions are not listed.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
}

// tenantStats is the mutable per-tenant counter set. Guarded by the
// scheduler's mu.
type tenantStats struct {
	depth    int64
	dequeues int64
	rejects  int64
	ages     []time.Duration
	ageIdx   int
}

// schedStats aggregates the per-tenant series under the label cap.
// All methods are called with the scheduler's mu held.
type schedStats struct {
	dequeues int64
	rejects  int64
	tenants  map[string]*tenantStats
}

// forTenant resolves the tenant's stat bucket, applying the label cap.
// Anonymous submissions return nil — there is no principal to chart.
func (st *schedStats) forTenant(tenant string) *tenantStats {
	if tenant == "" {
		return nil
	}
	if st.tenants == nil {
		st.tenants = make(map[string]*tenantStats)
	}
	ts, ok := st.tenants[tenant]
	if !ok {
		if len(st.tenants) >= MaxTenantLabels {
			tenant = OverflowKey
			if ts = st.tenants[tenant]; ts != nil {
				return ts
			}
		}
		ts = &tenantStats{}
		st.tenants[tenant] = ts
	}
	return ts
}

func (st *schedStats) hold(tenant string) {
	if ts := st.forTenant(tenant); ts != nil {
		ts.depth++
	}
}

func (st *schedStats) dequeued(tenant string, age time.Duration) {
	st.dequeues++
	ts := st.forTenant(tenant)
	if ts == nil {
		return
	}
	ts.depth--
	ts.dequeues++
	if len(ts.ages) < ageWindow {
		ts.ages = append(ts.ages, age)
		return
	}
	ts.ages[ts.ageIdx] = age
	ts.ageIdx = (ts.ageIdx + 1) % ageWindow
}

func (st *schedStats) rejected(tenant string) {
	st.rejects++
	if ts := st.forTenant(tenant); ts != nil {
		ts.rejects++
	}
}

// Metrics returns a point-in-time snapshot of lane depths and
// per-tenant fairness stats.
func (s *Scheduler[T]) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		FIFO:      s.cfg.FIFO,
		Admission: s.cfg.Admission,
		Dequeues:  s.stats.dequeues,
		Rejects:   s.stats.rejects,
		Lanes:     make(map[string]int64, len(s.lanes)),
	}
	for name, ln := range s.lanes {
		m.Lanes[name] = int64(ln.count)
	}
	if len(s.stats.tenants) > 0 {
		m.Tenants = make(map[string]TenantMetrics, len(s.stats.tenants))
		for tenant, ts := range s.stats.tenants {
			tm := TenantMetrics{
				Class:    s.classes[tenant],
				Weight:   s.weightOfLocked(tenant),
				Depth:    ts.depth,
				Dequeues: ts.dequeues,
				Rejects:  ts.rejects,
			}
			tm.AgeP50, tm.AgeMax = agePercentiles(ts.ages)
			m.Tenants[tenant] = tm
		}
	}
	return m
}

// agePercentiles computes the p50 and max of the (unsorted) age ring
// without mutating it.
func agePercentiles(ages []time.Duration) (p50, max time.Duration) {
	n := len(ages)
	if n == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, ages)
	// Insertion sort: the window is ≤ ageWindow entries.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	i := (n - 1) / 2
	return sorted[i], sorted[n-1]
}
