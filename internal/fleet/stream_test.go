package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/llm"
)

// TestSubmitPreparsedSharesCacheWithSubmit: a preparsed submission (the
// streaming ingest path) and a classic submission of the same trace must
// land on one digest — second submission is a cache hit, whichever path
// came first.
func TestSubmitPreparsedSharesCacheWithSubmit(t *testing.T) {
	p := New(llm.NewSim(), testConfig(2))
	defer p.Close()
	log := testTrace(1)
	cd, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}

	j1, err := p.SubmitPreparsed(context.Background(), Preparsed{Log: log, ContentDigest: cd}, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}

	j2, err := p.Submit(testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	if j1.Digest() != j2.Digest() {
		t.Fatalf("preparsed digest %s != classic digest %s for the same trace", j1.Digest(), j2.Digest())
	}
	if !j2.Info().CacheHit {
		t.Error("classic submission after preparsed was not a cache hit")
	}
}

func TestSubmitPreparsedValidates(t *testing.T) {
	p := New(llm.NewSim(), testConfig(1))
	defer p.Close()
	if _, err := p.SubmitPreparsed(context.Background(), Preparsed{Log: testTrace(1)}, SubmitOpts{}); err == nil {
		t.Error("preparsed submission without a content digest was accepted")
	}
	if _, err := p.SubmitPreparsed(context.Background(), Preparsed{ContentDigest: "abc"}, SubmitOpts{}); err == nil {
		t.Error("preparsed submission without a log was accepted")
	}
}

// TestTenantQuota: a tenant at its in-flight cap is refused with
// ErrTenantQuota; other tenants and anonymous submissions are not; the
// quota frees as jobs finish.
func TestTenantQuota(t *testing.T) {
	release := make(chan struct{})
	cfg := testConfig(1)
	cfg.TenantMaxInflight = 2
	cfg.QueueDepth = 16
	// Park the single worker so submissions stay in flight determinately.
	p := New(&gatedClient{inner: llm.NewSim(), gate: release, started: make(chan struct{})}, cfg)
	defer p.Close()
	defer close(release)

	for i := 0; i < 2; i++ {
		if _, err := p.SubmitWith(testTrace(10+i), SubmitOpts{Tenant: "acme"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.SubmitWith(testTrace(12), SubmitOpts{Tenant: "acme"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submission = %v, want ErrTenantQuota", err)
	}
	// Another tenant and anonymous traffic are unaffected.
	if _, err := p.SubmitWith(testTrace(13), SubmitOpts{Tenant: "globex"}); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	if _, err := p.SubmitWith(testTrace(14), SubmitOpts{}); err != nil {
		t.Fatalf("anonymous submission refused: %v", err)
	}
	if got := p.Metrics().TenantsInflight["acme"]; got != 2 {
		t.Errorf("acme inflight = %d, want 2", got)
	}
}

// TestTenantQuotaFreesOnCompletion: finished jobs return their slots.
func TestTenantQuotaFreesOnCompletion(t *testing.T) {
	cfg := testConfig(2)
	cfg.TenantMaxInflight = 1
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	j, err := p.SubmitWith(testTrace(20), SubmitOpts{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	// Slot freed: next submission admitted.
	if _, err := p.SubmitWith(testTrace(21), SubmitOpts{Tenant: "acme"}); err != nil {
		t.Fatalf("post-completion submission refused: %v", err)
	}
	p.Wait()
	if got := p.Metrics().TenantsInflight["acme"]; got != 0 {
		t.Errorf("acme inflight after drain = %d, want 0 (and the entry gone)", got)
	}
}

// TestSubmitContextAbortsBackpressureWait: a canceled context frees a
// submitter stuck on a full lane queue — the job goes terminal failed
// (with its journal-covering event) instead of holding a goroutine for a
// client that hung up.
func TestSubmitContextAbortsBackpressureWait(t *testing.T) {
	release := make(chan struct{})
	cfg := testConfig(1)
	cfg.QueueDepth = 1
	p := New(&gatedClient{inner: llm.NewSim(), gate: release, started: make(chan struct{})}, cfg)
	defer p.Close()
	defer close(release)

	// Fill the worker (1) and the queue (1).
	if _, err := p.Submit(testTrace(30)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(testTrace(31)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var aborted *Job
	go func() {
		j, err := p.SubmitContext(ctx, testTrace(32), SubmitOpts{})
		aborted = j
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the submit reach the queue send
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled submit returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SubmitContext still blocked after cancel — backpressure wait ignores the context")
	}
	if aborted == nil || aborted.Status() != StatusFailed {
		t.Fatalf("aborted job status = %v, want failed", aborted.Status())
	}
}
