// Package api is the versioned wire contract of the iofleetd HTTP service:
// every request and response shape, the priority-lane vocabulary, the
// machine-readable error taxonomy, and the protocol version negotiated
// between client and server.
//
// The package is deliberately dependency-free (standard library only) so
// that consumers — internal/fleet/client, external tooling, the
// iofleet-router front — can speak the protocol without linking the pool,
// the diagnosis pipeline, or the knowledge corpus.
//
// # Compatibility invariants
//
// The contract is versioned major.minor (see Version). Within one major
// version:
//
//   - field names, JSON tags, and error code strings are append-only:
//     they are never renamed or repurposed, only added;
//   - servers ignore request fields they do not understand, and clients
//     ignore response fields they do not understand;
//   - a minor-version bump adds fields or codes; a major-version bump is
//     reserved for breaking changes and is rejected by both sides
//     (ErrVersionSkew semantics, code CodeUnsupportedVersion).
//
// Both parties advertise their version in the VersionHeader of every
// message. The server tolerates requests without the header (curl-style
// ad-hoc use) but stamps every response; the client therefore refuses a
// response without it — that peer is not a versioned fleet daemon. A
// present header with a different major is refused by both sides.
package api

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// VersionHeader carries the protocol version on every request and
// response.
const VersionHeader = "X-Fleet-Api-Version"

// NodeHeader names the fleet member (daemon -node-id, or a router's -id)
// that produced a response. Single daemons without a node id omit it.
// Clients never need it to parse a payload; it exists for operators
// tracing which node answered, and for the cluster SDK's health view.
const NodeHeader = "X-Fleet-Node"

// ForwardedHeader marks a request that already traversed an iofleet-router
// (the value is the router's id). Routers forward only to daemons, never
// to other routers: a router receiving a request that carries this header
// refuses it with CodeLoopDetected, which is what keeps a misconfigured
// member list (a router listing itself, or a cycle of routers) from
// ricocheting a submission forever.
const ForwardedHeader = "X-Fleet-Forwarded-By"

// DigestHeader carries a trace's canonical content digest (64 hex chars,
// see darshan.ContentDigest): the SHA-256 of the trace's canonical
// decoded form, identical for the binary and text renderings of one
// trace. Added in 1.2, it appears in three places:
//
//   - Request header on streaming submissions (POST /v1/jobs/stream) and
//     upload-session opens: a client that already knows the digest asserts
//     it up front, which lets iofleet-router pick the owning node and
//     forward the body as a pure stream — zero spool, zero buffering. The
//     server recomputes the digest from the bytes it parsed and refuses a
//     mismatch with CodeDigestMismatch, so an asserted digest is trusted
//     for placement but never for content.
//   - Request trailer on streaming submissions whose digest was computed
//     on the fly (the SDK's SubmitStream tees the outgoing bytes through
//     the incremental parser): too late to route by, still verified
//     end-to-end by the server.
//   - Response header on accepted submissions: the server tells the
//     client the canonical digest it derived, so the next submission of
//     the same trace — in either rendering — can assert it.
//
// Note the distinction from JobInfo.Digest: the content digest addresses
// the trace alone (routing, dedup across renderings), while JobInfo.Digest
// additionally covers the pipeline options and addresses the diagnosis.
const DigestHeader = "X-Fleet-Digest"

// UploadOffsetHeader carries the byte offset of an upload-session append
// (PATCH /v1/uploads/{id}), following the tus convention: the client
// states the offset its chunk starts at, the server refuses a mismatch
// with CodeUploadOffsetMismatch and its actual offset, and the client
// resynchronizes from GET /v1/uploads/{id}. Added in 1.2.
const UploadOffsetHeader = "Upload-Offset"

// RetryAfterHeader is the standard HTTP Retry-After header. Servers set
// it (delay-seconds form) on retryable refusals — quota_exceeded,
// breaker_open, draining — and the SDK's adaptive backoff honors it as a
// floor for the next retry delay. Added to the contract (though not the
// wire) in 1.2.
const RetryAfterHeader = "Retry-After"

// Current is the protocol version this tree speaks. Minor 1 added the
// cluster vocabulary: node identity (NodeHeader, Metrics.Node), the
// forwarded-hop header, SubmitRequest.Tenant, per-tenant and per-node
// metrics fields, the cluster-health payload, and the loop_detected /
// node_down / breaker_open error codes. Minor 2 added the streaming
// ingest vocabulary: the content-digest and upload-offset headers,
// streaming submission (POST /v1/jobs/stream), resumable upload sessions
// (/v1/uploads), the UploadInfo payload, Retry-After semantics, and the
// digest_mismatch / quota_exceeded / upload_not_found /
// upload_offset_mismatch error codes — all additive, per the
// compatibility invariants above. Minor 3 added the semantic-reuse
// vocabulary: similarity-hit provenance on JobInfo and Diagnosis
// (SimilarityHit, SourceDigest, Confidence), the semcache effectiveness
// counters and per-tier model metrics on Metrics (SemCacheHits,
// SemCacheMisses, SemCacheGateRejects, SemCacheEntries, Tiers,
// TierEscalations) — again purely additive. Minor 4 added the knowledge
// plane vocabulary: corpus document upsert and epoch swap
// (POST /v1/knowledge/docs, POST /v1/knowledge/swap), plane status and
// search (GET /v1/knowledge, POST /v1/knowledge/search), the
// KnowledgeDoc / KnowledgeUpsertRequest / KnowledgeStatus /
// KnowledgeSearchRequest / KnowledgeSearchResponse payloads,
// Metrics.Knowledge, NodeHealth.KnowledgeEpoch,
// ClusterHealth.KnowledgeEpochSkew, and the knowledge_disabled /
// nothing_staged error codes — all additive. Minor 5 added the
// elastic-cluster vocabulary: the roster protocol (GET and POST
// /v1/roster, the RosterMember / Roster / RosterAnnounce payloads), the
// digest-addressed cache handoff endpoints (GET /v1/cache/digests,
// POST /v1/cache/entries, the CacheDigests / CacheEntryWire /
// CachePushRequest / CachePushResponse payloads), Metrics.Handoff, and
// the roster_disabled error code — all additive. Minor 6 added the
// fair-scheduling vocabulary: per-tenant weighted scheduling and SLO
// admission (GET /v1/sched, POST /v1/sched/tenants, the SchedStatus /
// SchedClass / TenantClassRequest payloads), Metrics.Sched with the
// SchedMetrics / SchedTenant shapes, and the slo_exceeded error code —
// all additive.
var Current = Version{Major: 1, Minor: 6}

// Version is a major.minor protocol version. Majors are incompatible;
// minors are additive within a major.
type Version struct {
	Major int `json:"major"`
	Minor int `json:"minor"`
}

// String renders the canonical "major.minor" header form.
func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Major, v.Minor) }

// ParseVersion parses the "major.minor" header form.
func ParseVersion(s string) (Version, error) {
	major, minor, ok := strings.Cut(strings.TrimSpace(s), ".")
	if !ok {
		return Version{}, fmt.Errorf("api: malformed version %q (want MAJOR.MINOR)", s)
	}
	ma, err := strconv.Atoi(major)
	if err != nil || ma < 0 {
		return Version{}, fmt.Errorf("api: malformed version %q: bad major", s)
	}
	mi, err := strconv.Atoi(minor)
	if err != nil || mi < 0 {
		return Version{}, fmt.Errorf("api: malformed version %q: bad minor", s)
	}
	return Version{Major: ma, Minor: mi}, nil
}

// CompatibleWith reports whether the two versions can interoperate: same
// major, any minor.
func (v Version) CompatibleWith(o Version) bool { return v.Major == o.Major }

// Lane is a submission priority class. The pool dequeues with a weighted
// preference for LaneInteractive so a saturating batch workload cannot
// starve latency-sensitive submissions; LaneBatch still receives a
// guaranteed share of worker slots under an interactive flood.
type Lane string

const (
	// LaneInteractive is the low-latency lane for a human (or a service
	// in a request path) waiting on the answer. It is the default when no
	// lane is given.
	LaneInteractive Lane = "interactive"
	// LaneBatch is the bulk lane for backfills, sweeps, and other
	// throughput-bound workloads that tolerate queueing delay.
	LaneBatch Lane = "batch"
)

// Valid reports whether l names a known lane (the empty lane is not
// valid; normalize first with WithDefault).
func (l Lane) Valid() bool { return l == LaneInteractive || l == LaneBatch }

// WithDefault maps the empty lane to LaneInteractive, the wire default.
func (l Lane) WithDefault() Lane {
	if l == "" {
		return LaneInteractive
	}
	return l
}

// Status is a job's lifecycle state on the wire.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s == StatusDone || s == StatusFailed }

// MaxTenantLen bounds the Tenant identifier; longer values are refused
// with CodeBadRequest so an attacker cannot inflate per-tenant metric
// labels without bound.
const MaxTenantLen = 128

// SubmitRequest is one trace submission. The trace bytes travel as the
// POST /v1/jobs body (binary Darshan log or darshan-parser text — the
// server sniffs); the lane and tenant travel as the "lane" and "tenant"
// query parameters. The struct exists so programmatic callers have one
// typed value to build and so future fields (deadline, callbacks) have a
// home.
type SubmitRequest struct {
	// Lane selects the priority class; empty means LaneInteractive.
	Lane Lane `json:"lane,omitempty"`
	// Tenant names the submitting tenant for accounting (per-tenant job
	// counts in Metrics; the groundwork for per-tenant fairness). Empty is
	// valid — anonymous submissions are counted under no tenant. The
	// tenant never contributes to the trace digest: identical bytes from
	// two tenants share one cached diagnosis.
	Tenant string `json:"tenant,omitempty"`
	// Trace is the encoded trace body. Submissions are idempotent by
	// content: the server addresses work by trace digest, so resubmitting
	// identical bytes coalesces onto the in-flight job or answers from
	// the result cache instead of re-running the pipeline.
	Trace []byte `json:"-"`
}

// JobInfo is the wire snapshot of one submitted job, returned by
// POST /v1/jobs (202), GET /v1/jobs (list) and GET /v1/jobs/{id}.
type JobInfo struct {
	ID     string `json:"id"`
	Digest string `json:"digest"`
	Status Status `json:"status"`
	Lane   Lane   `json:"lane"`
	// Tenant echoes the submission's tenant identifier (empty when none
	// was given). Added in 1.1.
	Tenant   string `json:"tenant,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	// SimilarityHit marks a diagnosis served by semantic reuse: the text
	// is SourceDigest's cached diagnosis, approved for this trace by the
	// confidence gate at the stamped Confidence (in [0,1]). Mutually
	// exclusive with CacheHit, which stays exact-digest reuse. All three
	// added in 1.3; servers without semantic reuse simply omit them.
	SimilarityHit bool    `json:"similarity_hit,omitempty"`
	SourceDigest  string  `json:"source_digest,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	Attempts      int     `json:"attempts"`
	// Error carries the failure's stable code for terminal failed jobs
	// (empty otherwise). Free-text failure detail stays in server logs.
	Error string `json:"error,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// Diagnosis is the finished report for one job, returned by
// GET /v1/jobs/{id}/diagnosis. (With "Accept: text/plain" the same
// endpoint serves Text raw, for curl and shell pipelines.)
type Diagnosis struct {
	JobID    string `json:"job_id"`
	Digest   string `json:"digest"`
	Lane     Lane   `json:"lane"`
	CacheHit bool   `json:"cache_hit"`
	// SimilarityHit / SourceDigest / Confidence carry semantic-reuse
	// provenance, mirroring JobInfo: when set, Text is the diagnosis
	// originally produced for SourceDigest and reused for this trace.
	// Added in 1.3.
	SimilarityHit bool    `json:"similarity_hit,omitempty"`
	SourceDigest  string  `json:"source_digest,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	// Text is the canonical merged diagnosis report.
	Text string `json:"text"`
}

// UploadInfo is the wire snapshot of one resumable upload session,
// returned by POST /v1/uploads (201), PATCH /v1/uploads/{id} (200) and
// GET /v1/uploads/{id}. Added in 1.2.
//
// A session accepts a trace in as many PATCH appends as the client likes;
// every appended byte is fed to the server's incremental pre-parser
// immediately, so PreparsedLines and PreparsedModules advance while the
// upload is still in flight. POST /v1/uploads/{id}/complete finalizes the
// parse, verifies any claimed digest, and converts the session into a job
// (202 with the JobInfo). A complete refused for a RETRYABLE reason
// (quota_exceeded, draining) keeps the finalized session alive — further
// appends are refused, but re-issuing the complete later succeeds without
// re-uploading a byte. On daemons running with -state-dir, open sessions
// survive a restart: the journal records the open, the spooled bytes live
// beside it, and a rebooted daemon re-feeds the parser so the client
// resumes at the same offset.
type UploadInfo struct {
	ID string `json:"id"`
	// Offset is the number of bytes the server has accepted; the next
	// PATCH must assert exactly this value in UploadOffsetHeader.
	Offset int64  `json:"offset"`
	Lane   Lane   `json:"lane"`
	Tenant string `json:"tenant,omitempty"`
	// Digest echoes the client-claimed content digest, if one was asserted
	// when the session was opened (DigestHeader on the POST). Verified at
	// complete time.
	Digest string `json:"digest,omitempty"`
	// PreparsedLines / PreparsedModules report incremental pre-parse
	// progress over the bytes accepted so far (lines consumed and distinct
	// modules seen; both zero for a binary-rendering upload, which can only
	// be decoded whole at complete time).
	PreparsedLines   int64 `json:"preparsed_lines"`
	PreparsedModules int   `json:"preparsed_modules"`

	CreatedAt time.Time `json:"created_at"`
}

// ModelMetrics is the accumulated usage of one LLM model across the
// daemon's lifetime.
type ModelMetrics struct {
	Calls            int     `json:"calls"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	CostUSD          float64 `json:"cost_usd"`
}

// Metrics is the pool health snapshot served by GET /metrics (JSON form;
// with "Accept: text/plain" the same counters are served in Prometheus
// text exposition format). Field meanings mirror the pool's snapshot:
// Done includes cache hits and coalesced jobs, HitRate is
// (CacheHits+Coalesced)/Submitted, and latencies cover recent successful
// completions (cache hits at ~0).
type Metrics struct {
	// Node is the answering daemon's -node-id (empty for an unnamed
	// single daemon, and on a router's cluster-wide aggregate). Added
	// in 1.1.
	Node string `json:"node,omitempty"`

	Workers int `json:"workers"`

	Submitted         int64 `json:"jobs_submitted"`
	Queued            int64 `json:"jobs_queued"`
	QueuedInteractive int64 `json:"jobs_queued_interactive"`
	QueuedBatch       int64 `json:"jobs_queued_batch"`
	Running           int64 `json:"jobs_running"`
	Done              int64 `json:"jobs_done"`
	Failed            int64 `json:"jobs_failed"`

	CacheHits   int64   `json:"cache_hits"`
	Coalesced   int64   `json:"coalesced"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"cache_hit_rate"`
	CacheLen    int     `json:"cache_entries"`

	// OwnedDigests counts the distinct trace digests this node currently
	// holds: resident cache entries plus in-flight jobs. On a router's
	// aggregate it sums across reachable nodes, which is the cluster's
	// sharding footprint. Added in 1.1.
	OwnedDigests int64 `json:"owned_digests"`

	Retries int64 `json:"retries"`

	// BreakerOpen / BreakerTrips report the pool's transient-failure
	// circuit breaker: whether new work is currently failing fast instead
	// of hammering a down LLM backend, and how many times the breaker has
	// tripped since start. Added in 1.1.
	BreakerOpen  bool  `json:"breaker_open"`
	BreakerTrips int64 `json:"breaker_trips"`

	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`

	// Models breaks token and cost counters down per LLM model.
	Models map[string]ModelMetrics `json:"models,omitempty"`

	// Tenants maps tenant identifier to jobs submitted under it (the
	// TenantOverflow key aggregates the long tail once the per-node
	// tenant-label cap is reached). Added in 1.1.
	Tenants map[string]int64 `json:"tenant_jobs,omitempty"`

	// TenantsInflight maps tenant identifier to its jobs currently in
	// the system — the counter iofleetd -tenant-max-inflight enforces
	// quota_exceeded against. Added in 1.2.
	TenantsInflight map[string]int64 `json:"tenant_inflight_jobs,omitempty"`

	// Semantic-reuse effectiveness (iofleetd -semcache; all zero when
	// disabled): exact-cache misses served from a near-duplicate's
	// diagnosis, misses with no usable candidate, and candidates the
	// confidence gate refused. SemCacheEntries is the similarity index's
	// resident size. Added in 1.3.
	SemCacheHits        int64 `json:"semcache_hits"`
	SemCacheMisses      int64 `json:"semcache_misses"`
	SemCacheGateRejects int64 `json:"semcache_gate_rejects"`
	SemCacheEntries     int   `json:"semcache_entries"`

	// Tiers breaks fresh diagnoses down per model of the cost-aware
	// ladder (iofleetd -tier-models; empty when disabled), and
	// TierEscalations counts low-confidence results that escalated to a
	// stronger model. Added in 1.3.
	Tiers           map[string]TierMetrics `json:"tier_models,omitempty"`
	TierEscalations int64                  `json:"tier_escalations"`

	// Knowledge reports the node's knowledge plane (iofleetd -knowledge;
	// nil when disabled). Added in 1.4.
	Knowledge *KnowledgeStatus `json:"knowledge,omitempty"`

	// Handoff reports the node's elastic-cluster activity (iofleetd
	// -advertise; nil when running with a static member set). Added in 1.5.
	Handoff *HandoffMetrics `json:"handoff,omitempty"`

	// Sched reports the node's per-tenant fair scheduler: realized DRR
	// dequeue shares, per-tenant queue depth and queue age, and SLO
	// admission rejects. On a router's cluster-wide aggregate the counters
	// are summed across reachable nodes and the age percentiles are the
	// worst (maximum) observed on any node. Added in 1.6.
	Sched *SchedMetrics `json:"sched,omitempty"`
}

// SchedMetrics is the fair scheduler's wire snapshot, embedded in
// Metrics and aggregated cluster-wide by routers. Added in 1.6.
type SchedMetrics struct {
	// FIFO marks a node running the tenant-blind baseline scheduler
	// (iofleetd -sched-fifo); Admission reports whether SLO admission
	// control is enforced.
	FIFO      bool `json:"fifo,omitempty"`
	Admission bool `json:"admission,omitempty"`
	// Dequeues / Rejects are lifetime totals across all tenants,
	// including anonymous submissions that appear under no tenant label.
	Dequeues int64 `json:"dequeues"`
	Rejects  int64 `json:"rejects"`
	// Lanes maps lane name to its current queue depth (all tenants).
	Lanes map[string]int64 `json:"lane_depth,omitempty"`
	// Tenants maps tenant identifier to its scheduling row; the
	// TenantOverflow key aggregates the long tail once the per-node
	// tenant-label cap is reached, exactly as Metrics.Tenants does.
	Tenants map[string]SchedTenant `json:"tenants,omitempty"`
}

// SchedTenant is one tenant's row in SchedMetrics. Added in 1.6.
type SchedTenant struct {
	// Class is the tenant's SLO class name ("" when unclassed); Weight is
	// the effective DRR weight scheduling uses.
	Class  string `json:"class,omitempty"`
	Weight int    `json:"weight"`
	// Depth is the tenant's currently queued jobs across lanes.
	Depth int64 `json:"depth"`
	// Dequeues counts jobs handed to workers; the ratio between tenants'
	// Dequeues over an interval is the realized DRR share. Rejects counts
	// submissions refused by SLO admission (slo_exceeded).
	Dequeues int64 `json:"dequeues"`
	Rejects  int64 `json:"rejects"`
	// AgeP50 / AgeMax are queue-age percentiles over the tenant's recent
	// dequeues: how long jobs waited between enqueue and worker pickup.
	AgeP50 time.Duration `json:"age_p50_ns"`
	AgeMax time.Duration `json:"age_max_ns"`
}

// SchedClass is one SLO class definition in the SchedStatus payload:
// the DRR weight its tenants schedule at and the max queue-age target
// SLO admission enforces. Added in 1.6.
type SchedClass struct {
	Weight      int           `json:"weight"`
	MaxQueueAge time.Duration `json:"max_queue_age_ns"`
}

// SchedStatus is the payload of GET /v1/sched: the scheduler's mode,
// its class catalog, and the current tenant-to-class assignments.
// Added in 1.6.
type SchedStatus struct {
	FIFO      bool `json:"fifo,omitempty"`
	Admission bool `json:"admission,omitempty"`
	// Classes maps class name (gold/silver/bronze) to its definition.
	Classes map[string]SchedClass `json:"classes,omitempty"`
	// Assignments maps tenant identifier to its class name.
	Assignments map[string]string `json:"assignments,omitempty"`
}

// TenantClassRequest is the body of POST /v1/sched/tenants: assign the
// tenant to an SLO class, or clear the assignment with an empty class.
// On daemons running with -state-dir the assignment is journaled and
// survives a restart. Added in 1.6.
type TenantClassRequest struct {
	Tenant string `json:"tenant"`
	Class  string `json:"class,omitempty"`
}

// TierMetrics is one ladder model's share of fresh diagnoses and its
// lifetime spend. Added in 1.3.
type TierMetrics struct {
	Jobs    int64   `json:"jobs"`
	CostUSD float64 `json:"cost_usd"`
}

// TenantOverflow is the Tenants key that aggregates submissions from
// tenants beyond the node's distinct-label cap, keeping metric cardinality
// bounded under adversarial tenant churn.
const TenantOverflow = "_other"

// NodeHealth is one member's row in the cluster-health payload.
type NodeHealth struct {
	// Node is the member's advertised -node-id ("" if unknown or unset).
	Node string `json:"node,omitempty"`
	// URL is the member's base URL as configured on the router.
	URL string `json:"url"`
	// Healthy reports whether the member answered its last probe.
	Healthy bool `json:"healthy"`
	// Error carries the probe failure class for unhealthy members. Like
	// every wire message it is a stable summary, never a raw Go error
	// chain.
	Error string `json:"error,omitempty"`
	// OwnedDigests is the member's Metrics.OwnedDigests at probe time
	// (zero when unhealthy).
	OwnedDigests int64 `json:"owned_digests"`
	// KnowledgeEpoch is the member's promoted corpus version at probe time
	// (zero when unhealthy or when the member runs without a knowledge
	// plane). Added in 1.4.
	KnowledgeEpoch uint64 `json:"knowledge_epoch,omitempty"`
}

// ClusterHealth is the payload of the router's GET /v1/cluster: one row
// per configured member, probed at request time. Added in 1.1.
type ClusterHealth struct {
	// Router is the answering router's id.
	Router string `json:"router,omitempty"`
	// Nodes lists every configured member in ring-member order.
	Nodes []NodeHealth `json:"nodes"`
	// KnowledgeEpochSkew is set when two healthy knowledge-serving members
	// report different corpus epochs — a swap reached part of the fleet
	// only, so retrievals are answered from mixed corpus versions until
	// the lagging members converge. Added in 1.4.
	KnowledgeEpochSkew bool `json:"knowledge_epoch_skew,omitempty"`
}

// KnowledgeDoc is the wire form of one corpus document. Key is the stable
// citation identifier diagnoses reference ("[SOURCE key]"); Text is the
// retrievable body.
type KnowledgeDoc struct {
	Key   string `json:"key"`
	Title string `json:"title,omitempty"`
	Text  string `json:"text"`
}

// MaxKnowledgeDocLen bounds one document's Text; larger upserts are
// refused with CodeBadRequest so a single document cannot monopolize the
// corpus (or the WAL).
const MaxKnowledgeDocLen = 1 << 20

// KnowledgeUpsertRequest is the body of POST /v1/knowledge/docs: documents
// to add or replace, and keys to remove. Changes land in the node's staged
// epoch and stay invisible to retrieval until POST /v1/knowledge/swap
// promotes them, so a multi-request sync publishes atomically. Added in
// 1.4.
type KnowledgeUpsertRequest struct {
	Docs   []KnowledgeDoc `json:"docs,omitempty"`
	Remove []string       `json:"remove,omitempty"`
}

// KnowledgeStatus describes one node's knowledge plane, served by
// GET /v1/knowledge and embedded in Metrics. Added in 1.4.
type KnowledgeStatus struct {
	// Epoch is the promoted corpus version; Docs counts the full corpus
	// view, OwnedDocs the documents this node indexes locally (fewer when
	// the corpus is ring-sharded), StagedOps the staged-but-unswapped
	// mutations.
	Epoch     uint64 `json:"epoch"`
	Docs      int    `json:"docs"`
	OwnedDocs int    `json:"owned_docs"`
	StagedOps int    `json:"staged_ops"`
	// Queries counts retrievals served; ANNQueries/ExactQueries split the
	// underlying index searches by path (HNSW graph walk vs exact scan).
	Queries      int64  `json:"queries"`
	ANNQueries   uint64 `json:"ann_queries"`
	ExactQueries uint64 `json:"exact_queries"`
	// Rerank accounting (all zero unless the node runs -rerank-model).
	RerankCalls   int64   `json:"rerank_calls"`
	RerankErrors  int64   `json:"rerank_errors"`
	RerankCostUSD float64 `json:"rerank_cost_usd"`
	// RetrievalP95 is the node's 95th-percentile retrieval latency.
	RetrievalP95 time.Duration `json:"retrieval_p95_ns"`
}

// KnowledgeSwapResponse is the body of a successful POST
// /v1/knowledge/swap: the newly promoted corpus epoch. Added in 1.4.
type KnowledgeSwapResponse struct {
	Epoch uint64 `json:"epoch"`
}

// DefaultKnowledgeK is the top-k a knowledge search uses when the request
// leaves K unset — the paper's retrieval depth.
const DefaultKnowledgeK = 15

// KnowledgeSearchRequest is the body of POST /v1/knowledge/search: a
// retrieval probe against the serving corpus, bypassing the diagnosis
// pipeline — the operator's tool for inspecting what agents would
// retrieve. K <= 0 selects the paper's default of 15. Added in 1.4.
type KnowledgeSearchRequest struct {
	Query string `json:"query"`
	K     int    `json:"k,omitempty"`
}

// KnowledgeHit is one retrieval result row. Added in 1.4.
type KnowledgeHit struct {
	Key   string  `json:"key"`
	Title string  `json:"title,omitempty"`
	Seq   int     `json:"seq"`
	Text  string  `json:"text"`
	Score float64 `json:"score"`
}

// KnowledgeSearchResponse is the payload of POST /v1/knowledge/search:
// the hits and the epoch they were answered from. A scatter-gathered
// cluster answer reports the minimum epoch across contributing nodes.
// Added in 1.4.
type KnowledgeSearchResponse struct {
	Epoch uint64         `json:"epoch"`
	Hits  []KnowledgeHit `json:"hits"`
}
