package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestParseVersionRoundTrip(t *testing.T) {
	v, err := ParseVersion(Current.String())
	if err != nil {
		t.Fatal(err)
	}
	if v != Current {
		t.Errorf("round trip = %v, want %v", v, Current)
	}
	for _, bad := range []string{"", "1", "one.two", "1.2.3", "-1.0", "1.-2"} {
		if _, err := ParseVersion(bad); err == nil {
			t.Errorf("ParseVersion(%q) should fail", bad)
		}
	}
	if v, err := ParseVersion(" 1.7 "); err != nil || v != (Version{Major: 1, Minor: 7}) {
		t.Errorf("whitespace-tolerant parse = %v, %v", v, err)
	}
}

func TestVersionCompatibility(t *testing.T) {
	if !Current.CompatibleWith(Version{Major: Current.Major, Minor: Current.Minor + 5}) {
		t.Error("minor skew within a major must be compatible")
	}
	if Current.CompatibleWith(Version{Major: Current.Major + 1}) {
		t.Error("major skew must be incompatible")
	}
}

func TestLaneDefaultsAndValidity(t *testing.T) {
	if got := Lane("").WithDefault(); got != LaneInteractive {
		t.Errorf("empty lane default = %q, want interactive", got)
	}
	if got := LaneBatch.WithDefault(); got != LaneBatch {
		t.Errorf("batch lane must survive WithDefault, got %q", got)
	}
	if Lane("bulk").Valid() || Lane("").Valid() {
		t.Error("unknown and empty lanes must be invalid")
	}
}

func TestErrorCodeHTTPStatus(t *testing.T) {
	cases := map[Code]int{
		CodeBadRequest:         http.StatusBadRequest,
		CodeBadTrace:           http.StatusBadRequest,
		CodeUnsupportedVersion: http.StatusBadRequest,
		CodeTraceTooLarge:      http.StatusRequestEntityTooLarge,
		CodeJobNotFound:        http.StatusNotFound,
		CodeNotFound:           http.StatusNotFound,
		CodeJobNotDone:         http.StatusConflict,
		CodeDraining:           http.StatusServiceUnavailable,
		CodeDiagnosisFailed:    http.StatusBadGateway,
		CodeInternal:           http.StatusInternalServerError,
		// 1.2 streaming-ingest vocabulary.
		CodeDigestMismatch:       http.StatusUnprocessableEntity,
		CodeQuotaExceeded:        http.StatusTooManyRequests,
		CodeUploadNotFound:       http.StatusNotFound,
		CodeUploadOffsetMismatch: http.StatusConflict,
		Code("future_code"):      http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := code.HTTPStatus(); got != want {
			t.Errorf("%s -> %d, want %d", code, got, want)
		}
	}
}

func TestErrorRetryability(t *testing.T) {
	// quota_exceeded IS retryable (the quota frees as jobs finish), but
	// digest_mismatch and the upload-session codes are not: identical
	// bytes will mismatch identically, and a lost session needs a new
	// open, not a blind retry.
	for _, code := range []Code{CodeDraining, CodeInternal, CodeQuotaExceeded} {
		if !code.Retryable() {
			t.Errorf("%s must be retryable", code)
		}
	}
	for _, code := range []Code{CodeBadRequest, CodeBadTrace, CodeTraceTooLarge,
		CodeUnsupportedVersion, CodeJobNotFound, CodeNotFound, CodeJobNotDone, CodeDiagnosisFailed,
		CodeDigestMismatch, CodeUploadNotFound, CodeUploadOffsetMismatch} {
		if code.Retryable() {
			t.Errorf("%s must not be retryable", code)
		}
	}
}

func TestErrorEnvelopeJSONAndUnwrap(t *testing.T) {
	e := Errorf(CodeTraceTooLarge, "trace body exceeds the %d-byte limit", 1024)
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Error
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Code != CodeTraceTooLarge || back.Message != e.Message {
		t.Errorf("round trip = %+v", back)
	}

	wrapped := fmt.Errorf("submit: %w", e)
	if got := ErrorCode(wrapped); got != CodeTraceTooLarge {
		t.Errorf("ErrorCode through a wrap = %q", got)
	}
	if got := ErrorCode(errors.New("plain")); got != "" {
		t.Errorf("non-API error code = %q, want empty", got)
	}
}

func TestStatusTerminal(t *testing.T) {
	for s, want := range map[Status]bool{
		StatusQueued: false, StatusRunning: false, StatusDone: true, StatusFailed: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v", s, !want)
		}
	}
}
