package api

import "time"

// Elastic-cluster vocabulary, added in 1.5: the roster protocol through
// which daemons discover each other, and the digest-addressed cache
// handoff endpoints through which warm results follow ring changes.

// RosterMember is one live fleet member as known to a node's roster.
type RosterMember struct {
	// URL is the member's advertised base URL — its ring identity. The
	// same string every party (router, cluster SDK, peers) hashes, so it
	// must be stable across restarts of the member.
	URL string `json:"url"`
	// Node is the member's -node-id ("" when unset).
	Node string `json:"node,omitempty"`
	// LastSeen is when the reporting node last heard from this member
	// (directly or through gossip). Receivers use it for health gating;
	// it is advisory, not a synchronized clock.
	LastSeen time.Time `json:"last_seen"`
}

// Roster is a node's current membership view, served by GET /v1/roster
// and returned from POST /v1/roster. Members are sorted by URL so two
// identical views compare equal byte-for-byte.
type Roster struct {
	// Epoch increments on every membership change the node observes
	// (join, health expiry). Pollers use it as a cheap "did anything
	// move" check; epochs are per-node, not cluster-consensus values.
	Epoch   uint64         `json:"epoch"`
	Members []RosterMember `json:"members"`
}

// RosterAnnounce is the body of POST /v1/roster: one push-pull gossip
// exchange. The sender introduces itself and shares its member view; the
// receiver merges both into its roster and responds with its own Roster,
// which the sender merges back. A few rounds of this converge a cluster
// from any single seed peer.
type RosterAnnounce struct {
	// From is the announcing member (its URL is the ring identity being
	// registered; LastSeen is ignored — receipt of the announce is the
	// liveness evidence).
	From RosterMember `json:"from"`
	// Members is the sender's current view, minus entries it considers
	// dead. LastSeen values let the receiver adopt the freshest evidence
	// for members it also knows.
	Members []RosterMember `json:"members,omitempty"`
}

// CacheDigests is the payload of GET /v1/cache/digests: the digests of
// every unexpired result-cache entry resident on the node. It is the
// inventory side of handoff — a rebalancer (or an operator) can diff it
// against ring ownership without transferring any diagnosis bodies.
type CacheDigests struct {
	Digests []string `json:"digests"`
}

// CacheEntryWire is one result-cache entry in transit: the digest, the
// diagnosis it addresses, and the TTL clock it was cached under. Added is
// the ORIGINAL insertion time — receivers seed their cache at that clock
// (CacheRestore semantics), so an entry never gains lifetime by moving
// between nodes.
type CacheEntryWire struct {
	Digest string    `json:"digest"`
	Added  time.Time `json:"added"`
	// Text is the canonical merged diagnosis report — the same
	// text-only form the store's cache checkpoint persists; receivers
	// re-parse it into the structured report on insert.
	Text string `json:"text"`
	// Features is the digest's semcache feature text, when the sender
	// indexes it ("" otherwise). Receivers insert the cache entry first
	// and only then the similarity vector, preserving the invariant that
	// a vector never cites a diagnosis the cache can't serve.
	Features string `json:"features,omitempty"`
}

// HandoffReason says why a batch of cache entries is being pushed.
type HandoffReason string

const (
	// HandoffReasonRebalance: a ring change moved these digests to the
	// receiver; the sender is their previous owner.
	HandoffReasonRebalance HandoffReason = "rebalance"
	// HandoffReasonReplicate: the sender owns these digests and is
	// replicating them to a ring successor for warm failover.
	HandoffReasonReplicate HandoffReason = "replicate"
)

// CachePushRequest is the body of POST /v1/cache/entries: cache entries
// offered to the receiver. The receiver keeps entries it does not already
// hold (skipping resident digests, so pushes are idempotent and never
// shorten a resident TTL clock) and drops entries already past their TTL.
type CachePushRequest struct {
	// From is the sender's advertised URL ("" for ad-hoc pushes).
	From string `json:"from,omitempty"`
	// Reason is advisory provenance for metrics and logs.
	Reason  HandoffReason    `json:"reason,omitempty"`
	Entries []CacheEntryWire `json:"entries"`
}

// CachePushResponse reports what the receiver did with a push.
type CachePushResponse struct {
	// Received counts entries newly inserted; the remainder were already
	// resident or expired.
	Received int `json:"received"`
}

// HandoffMetrics is the elastic-cluster counter block embedded in
// Metrics (nil on nodes running with a static member set). Added in 1.5.
type HandoffMetrics struct {
	// RosterSize / RosterEpoch describe the node's current membership
	// view; RingChanges counts observed membership transitions.
	RosterSize  int    `json:"roster_size"`
	RosterEpoch uint64 `json:"roster_epoch"`
	RingChanges int64  `json:"ring_changes"`
	// Rebalance handoff: entries pushed to new owners after a ring
	// change, push attempts that failed, and entries accepted from peers.
	EntriesPushed   int64 `json:"entries_pushed"`
	PushErrors      int64 `json:"push_errors"`
	EntriesReceived int64 `json:"entries_received"`
	// Successor replication: entries replicated out on cache insert and
	// replica copies accepted from owners.
	ReplicaPushed   int64 `json:"replica_pushed"`
	ReplicaReceived int64 `json:"replica_received"`
}
