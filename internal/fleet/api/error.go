package api

import (
	"errors"
	"fmt"
	"net/http"
)

// Code is a stable, machine-readable error identifier. Codes are part of
// the versioned contract: within a major version they are append-only and
// never change meaning, so clients may switch on them.
type Code string

const (
	// CodeBadRequest: the request itself is malformed (unknown lane,
	// unparseable version header, ...).
	CodeBadRequest Code = "bad_request"
	// CodeBadTrace: the body is neither a binary Darshan log nor
	// darshan-parser text, or parses to a trace with no module data.
	CodeBadTrace Code = "bad_trace"
	// CodeTraceTooLarge: the body exceeds the server's configured limit
	// (iofleetd -max-body). The message names the limit.
	CodeTraceTooLarge Code = "trace_too_large"
	// CodeUnsupportedVersion: the peer speaks an incompatible protocol
	// major (see Version).
	CodeUnsupportedVersion Code = "unsupported_version"
	// CodeJobNotFound: no job with the requested ID exists (it may have
	// been pruned from the bounded history).
	CodeJobNotFound Code = "job_not_found"
	// CodeNotFound: the request named an endpoint the server does not
	// serve (unknown path).
	CodeNotFound Code = "not_found"
	// CodeJobNotDone: the diagnosis was requested before the job reached
	// a terminal state; poll the job and retry.
	CodeJobNotDone Code = "job_not_done"
	// CodeDraining: the daemon is shutting down and refuses new work;
	// resubmit to a replacement instance (retryable).
	CodeDraining Code = "draining"
	// CodeDiagnosisFailed: the job ran and failed permanently; the
	// pipeline exhausted its retry budget or hit a non-transient error.
	CodeDiagnosisFailed Code = "diagnosis_failed"
	// CodeInternal: an unexpected server-side failure. Detail lives in
	// the server log, never on the wire (retryable).
	CodeInternal Code = "internal"
	// CodeNodeDown: every fleet node that could serve the request is
	// unreachable (router/cluster mode). The submission was not accepted
	// anywhere; retry later (retryable). Added in 1.1.
	CodeNodeDown Code = "node_down"
	// CodeBreakerOpen: this node's LLM-backend circuit breaker is open,
	// so accepted work would only fail fast; the submission is refused
	// instead. Retryable — a router or cluster client fails over to the
	// ring successor, and the same node recovers once a half-open probe
	// succeeds. Added in 1.1.
	CodeBreakerOpen Code = "breaker_open"
	// CodeLoopDetected: the request already traversed a fleet router
	// (ForwardedHeader present) and arrived at a router again — the
	// member list is misconfigured. Never retryable: the loop will not
	// fix itself. Added in 1.1.
	CodeLoopDetected Code = "loop_detected"
	// CodeDigestMismatch: the client asserted a content digest
	// (DigestHeader) that does not match the digest the server computed
	// from the bytes it received — the trace was corrupted in transit, or
	// the client hashed something else. Not retryable as-is: resubmit
	// with the correct digest (or none). Added in 1.2.
	CodeDigestMismatch Code = "digest_mismatch"
	// CodeQuotaExceeded: the submitting tenant is at its in-flight job
	// quota (iofleetd -tenant-max-inflight), or the daemon is at its open
	// upload-session cap. Retryable — the quota frees as jobs finish; the
	// response carries Retry-After. Added in 1.2.
	CodeQuotaExceeded Code = "quota_exceeded"
	// CodeUploadNotFound: no upload session with the requested ID exists
	// (never opened, already completed, aborted, or expired). Open a new
	// session and resend from offset 0. Added in 1.2.
	CodeUploadNotFound Code = "upload_not_found"
	// CodeUploadOffsetMismatch: a PATCH asserted an UploadOffsetHeader
	// that is not the session's current offset (a lost or duplicated
	// chunk). Not blindly retryable: resynchronize via GET /v1/uploads/{id}
	// and resend from the server's offset. Added in 1.2.
	CodeUploadOffsetMismatch Code = "upload_offset_mismatch"
	// CodeKnowledgeDisabled: the node does not run a knowledge plane
	// (iofleetd started without -knowledge), so /v1/knowledge endpoints
	// have nothing to serve. Not retryable against this node. Added in 1.4.
	CodeKnowledgeDisabled Code = "knowledge_disabled"
	// CodeNothingStaged: POST /v1/knowledge/swap found no staged corpus
	// changes to promote — the upserts either never arrived or were
	// already swapped. Not blindly retryable: check GET /v1/knowledge.
	// Added in 1.4.
	CodeNothingStaged Code = "nothing_staged"
	// CodeSLOExceeded: the submitting tenant's queue is already (or would
	// be, with this job added) older than its SLO class's max queue-age
	// target, so accepting the job could only violate the class promise.
	// Retryable — the backlog drains at the tenant's weighted rate and
	// the response carries Retry-After. Distinct from quota_exceeded,
	// which bounds in-flight count rather than queueing delay. Added in
	// 1.6.
	CodeSLOExceeded Code = "slo_exceeded"
	// CodeRosterDisabled: the node runs with a static member set (iofleetd
	// started without -advertise), so the /v1/roster endpoints have
	// nothing to serve. Not retryable against this node; pollers treat it
	// as "membership is whatever you were configured with". Added in 1.5.
	CodeRosterDisabled Code = "roster_disabled"
)

// HTTPStatus maps the code to its canonical HTTP status.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeBadRequest, CodeBadTrace, CodeUnsupportedVersion:
		return http.StatusBadRequest
	case CodeTraceTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeJobNotFound, CodeNotFound, CodeUploadNotFound, CodeKnowledgeDisabled, CodeRosterDisabled:
		return http.StatusNotFound
	case CodeJobNotDone, CodeUploadOffsetMismatch, CodeNothingStaged:
		return http.StatusConflict
	case CodeDraining, CodeNodeDown, CodeBreakerOpen:
		return http.StatusServiceUnavailable
	case CodeQuotaExceeded, CodeSLOExceeded:
		return http.StatusTooManyRequests
	case CodeDigestMismatch:
		return http.StatusUnprocessableEntity
	case CodeDiagnosisFailed:
		return http.StatusBadGateway
	case CodeLoopDetected:
		return http.StatusLoopDetected
	default:
		return http.StatusInternalServerError
	}
}

// Retryable reports whether an identical request may succeed later
// against this or another instance, so SDK retry loops can key off the
// taxonomy instead of raw HTTP statuses.
func (c Code) Retryable() bool {
	switch c {
	case CodeDraining, CodeInternal, CodeNodeDown, CodeBreakerOpen, CodeQuotaExceeded, CodeSLOExceeded:
		return true
	default:
		return false
	}
}

// Error is the wire error envelope: every non-2xx response from the
// daemon is this JSON document. Message is a stable, human-readable
// summary that never embeds server internals (paths, addresses, wrapped
// Go error chains) — those stay in the server log.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message == "" {
		return string(e.Code)
	}
	return string(e.Code) + ": " + e.Message
}

// Errorf builds an *Error with a formatted message.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorCode extracts the taxonomy code from an error returned by this
// package or the client SDK; non-API errors map to the empty code.
func ErrorCode(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}
