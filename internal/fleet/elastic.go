package fleet

// Elastic-cluster surface of the pool: the digest inventory and
// entry-level read/ingest hooks internal/fleet/roster builds membership
// handoff and successor replication on. Everything here is a thin,
// lock-bounded view over the result cache and similarity index — policy
// (who owns what, when to push) lives in the roster layer.

import (
	"time"

	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

// CacheDigests lists the digest of every unexpired resident result-cache
// entry, most recently used first. It is the inventory side of cache
// handoff: a node that observes a ring change feeds this list through
// ring.Changed to find the digests that now belong elsewhere.
func (p *Pool) CacheDigests() []string {
	return p.cache.digests()
}

// CacheEntryFor returns the resident cache entry for one digest without
// refreshing its LRU recency (ok=false when absent or expired). The
// Result is the live cached object and must be treated as immutable.
func (p *Pool) CacheEntryFor(digest string) (CacheEntry, bool) {
	e, ok := p.cache.peek(digest)
	if !ok {
		return CacheEntry{}, false
	}
	return CacheEntry{Digest: e.key, Result: e.result, Added: e.added}, true
}

// CacheIngest inserts one diagnosis received from a peer (handoff or
// replication), preserving the sender's TTL clock exactly like
// CacheRestore. It reports whether the entry was newly inserted:
// already-resident digests are skipped — an incoming copy must never
// reset, and in particular never shorten, the resident entry's TTL clock
// — and entries already past their TTL are dropped.
func (p *Pool) CacheIngest(digest, text string, added time.Time) bool {
	if digest == "" || text == "" || p.cache.contains(digest) {
		return false
	}
	res := &ioagent.Result{Text: text, Report: llm.ParseReport(text)}
	p.cache.putAt(digest, res, added)
	return p.cache.contains(digest)
}

// SemFeature returns the similarity-index feature text for a digest
// (ok=false when semantic reuse is disabled or the digest is not
// indexed). Handoff attaches it to pushed entries so the new owner can
// serve near-duplicates of the moved diagnosis too.
func (p *Pool) SemFeature(digest string) (string, bool) {
	if p.sem == nil {
		return "", false
	}
	return p.sem.Feature(digest)
}

// SemAdd indexes a received feature text, guarded by cache residency:
// like SemRestore, it refuses a vector whose digest the result cache
// cannot serve, so receivers must ingest the cache entry first. Reports
// whether the vector was indexed.
func (p *Pool) SemAdd(digest, features string) bool {
	if p.sem == nil || digest == "" || features == "" || !p.cache.contains(digest) {
		return false
	}
	p.sem.Add(digest, features)
	return true
}
