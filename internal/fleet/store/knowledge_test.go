package store

import (
	"os"
	"path/filepath"
	"testing"

	"ioagent/internal/fleet/knowledge"
	"ioagent/internal/vectordb"
)

func kseed() []vectordb.Document {
	return []vectordb.Document{
		{Key: "k-a", Text: "small write aggregation improves bandwidth"},
		{Key: "k-b", Text: "metadata operations overload the metadata server"},
	}
}

func quietOpts() Options {
	return Options{Fsync: FsyncOff, Logf: func(string, ...any) {}}
}

// TestKnowledgeStoreSurvivesKill pins the SIGKILL contract: mutations
// journaled through OnEvent are recovered by a second store opened on the
// same directory with no Checkpoint ever taken — exactly the state after
// a kill -9.
func TestKnowledgeStoreSurvivesKill(t *testing.T) {
	dir := t.TempDir()
	ks, err := OpenKnowledge(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	p := knowledge.New(knowledge.Config{Seed: kseed(), OnEvent: ks.OnEvent})
	doc := vectordb.Document{Key: "k-new", Text: "burst buffer drain contention during checkpoints"}
	if err := p.Upsert([]vectordb.Document{doc}, []string{"k-b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(); err != nil {
		t.Fatal(err)
	}
	// Stage one more mutation without swapping; it must survive too.
	if err := p.Upsert([]vectordb.Document{{Key: "k-staged", Text: "collective buffering aggregates small writes"}}, nil); err != nil {
		t.Fatal(err)
	}
	// No Close, no Checkpoint: the process dies here.

	ks2, err := OpenKnowledge(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ks2.Close()
	if !ks2.HasRecovered() {
		t.Fatal("nothing recovered from the WAL")
	}
	p2 := knowledge.New(knowledge.Config{Seed: kseed()})
	ks2.Replay(p2)
	if p2.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", p2.Epoch())
	}
	if _, ok := p2.Doc("k-new"); !ok {
		t.Fatal("journaled upsert lost across kill")
	}
	if _, ok := p2.Doc("k-b"); ok {
		t.Fatal("journaled removal lost across kill")
	}
	if m := p2.Metrics(); m.StagedOps != 1 {
		t.Fatalf("staged-but-unswapped mutation lost: StagedOps = %d, want 1", m.StagedOps)
	}
	if v, err := p2.Swap(); err != nil || v != 3 {
		t.Fatalf("swap of recovered staged delta = (%d, %v), want (3, nil)", v, err)
	}
}

// TestKnowledgeStoreCheckpoint pins snapshot-collapse: after Checkpoint the
// WAL is empty, and recovery comes from knowledge.json alone — including a
// staged delta captured mid-stage.
func TestKnowledgeStoreCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ks, err := OpenKnowledge(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	p := knowledge.New(knowledge.Config{Seed: kseed(), OnEvent: ks.OnEvent})
	if err := p.Upsert([]vectordb.Document{{Key: "k-c", Text: "stripe alignment avoids read modify write"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(); err != nil {
		t.Fatal(err)
	}
	if err := p.Upsert([]vectordb.Document{{Key: "k-d", Text: "rank imbalance stragglers dominate runtime"}}, nil); err != nil {
		t.Fatal(err)
	}
	if ks.Appended() != 3 {
		t.Fatalf("Appended = %d, want 3", ks.Appended())
	}
	if err := ks.Checkpoint(p); err != nil {
		t.Fatal(err)
	}
	if ks.Appended() != 0 {
		t.Fatalf("Appended = %d after checkpoint, want 0", ks.Appended())
	}
	if data, err := os.ReadFile(filepath.Join(dir, knowledgeWALName)); err != nil || len(data) != 0 {
		t.Fatalf("WAL not empty after checkpoint: %d bytes, err %v", len(data), err)
	}
	if err := ks.Close(); err != nil {
		t.Fatal(err)
	}

	ks2, err := OpenKnowledge(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ks2.Close()
	p2 := knowledge.New(knowledge.Config{Seed: kseed()})
	ks2.Replay(p2)
	if p2.Epoch() != 2 {
		t.Fatalf("epoch from snapshot = %d, want 2", p2.Epoch())
	}
	if _, ok := p2.Doc("k-c"); !ok {
		t.Fatal("promoted doc lost across checkpoint")
	}
	if m := p2.Metrics(); m.StagedOps != 1 {
		t.Fatalf("staged delta lost across checkpoint: StagedOps = %d, want 1", m.StagedOps)
	}
}

// TestKnowledgeStoreTornTail pins crash-mid-append tolerance: a WAL whose
// final line is garbage recovers everything before it.
func TestKnowledgeStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	ks, err := OpenKnowledge(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	p := knowledge.New(knowledge.Config{Seed: kseed(), OnEvent: ks.OnEvent})
	if err := p.Upsert([]vectordb.Document{{Key: "k-t", Text: "sequential access enables readahead"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage with no trailing newline.
	f, err := os.OpenFile(filepath.Join(dir, knowledgeWALName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"kdoc","docs":[{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	warned := false
	ks2, err := OpenKnowledge(dir, Options{Fsync: FsyncOff, Logf: func(string, ...any) { warned = true }})
	if err != nil {
		t.Fatal(err)
	}
	defer ks2.Close()
	if !warned {
		t.Error("torn tail dropped without a warning")
	}
	p2 := knowledge.New(knowledge.Config{Seed: kseed()})
	ks2.Replay(p2)
	if p2.Epoch() != 2 {
		t.Fatalf("epoch = %d after torn-tail recovery, want 2", p2.Epoch())
	}
	if _, ok := p2.Doc("k-t"); !ok {
		t.Fatal("intact record before the torn tail was lost")
	}
	// The truncated WAL must accept new appends cleanly.
	p3 := knowledge.New(knowledge.Config{Seed: kseed(), OnEvent: ks2.OnEvent})
	ks2.Replay(p3)
	if err := p3.Upsert([]vectordb.Document{{Key: "k-after", Text: "new document after recovery"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Swap(); err != nil {
		t.Fatal(err)
	}
}

// TestKnowledgeStoreDoubleReplayAfterPartialCheckpoint pins the
// crash-between-snapshot-and-truncate window: records the snapshot already
// covers replay as no-ops.
func TestKnowledgeStoreDoubleReplayAfterPartialCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ks, err := OpenKnowledge(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	p := knowledge.New(knowledge.Config{Seed: kseed(), OnEvent: ks.OnEvent})
	if err := p.Upsert([]vectordb.Document{{Key: "k-p", Text: "posix interface bypasses collective optimizations"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot but "crash" before the WAL truncation: steal the
	// WAL bytes, checkpoint, then put them back.
	wal, err := os.ReadFile(filepath.Join(dir, knowledgeWALName))
	if err != nil {
		t.Fatal(err)
	}
	if err := ks.Checkpoint(p); err != nil {
		t.Fatal(err)
	}
	ks.Close()
	if err := os.WriteFile(filepath.Join(dir, knowledgeWALName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	ks2, err := OpenKnowledge(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ks2.Close()
	p2 := knowledge.New(knowledge.Config{Seed: kseed()})
	ks2.Replay(p2)
	if p2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", p2.Epoch())
	}
	if m := p2.Metrics(); m.StagedOps != 0 {
		t.Fatalf("covered WAL records left %d staged ops, want 0", m.StagedOps)
	}
}
