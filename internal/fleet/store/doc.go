// Package store makes fleet state durable: a restarted iofleetd resumes
// the jobs it had accepted and keeps serving every diagnosis it had already
// computed. Without it, the pool in internal/fleet is purely in-memory — a
// redeploy or crash forfeits the queue and the content-addressed result
// cache, which is also the blocker for the ROADMAP's multi-node fleet (a
// router can only rebalance digests whose results survive a node bounce).
//
// Two artifacts live in the state directory:
//
//   - snapshot.json — the result cache, serialized in the same
//     JSON-and-atomic-rename style as vectordb.Save/Load: each entry is
//     (digest, canonical report text, insertion time). Parsed reports are
//     reconstructed on load and TTL clocks resume where they left off.
//     Snapshots are written at a configurable cadence and once more when
//     the pool drains.
//   - journal.wal — a write-ahead job journal of newline-delimited JSON
//     records. Every submission bound for a worker is appended (with its
//     full encoded trace) before any worker can see it; terminal records
//     cover it when it finishes. On boot, uncovered submissions are
//     replayed into the pool. The journal is compacted at each checkpoint
//     down to the still-pending records, and a torn or corrupt tail — the
//     expected wreckage of a crash mid-append — is detected, logged, and
//     truncated rather than aborting recovery.
//
// The Store never touches pool internals: it observes the pool through the
// fleet.Config hooks (OnJobEvent, OnCacheInsert, OnCacheEvict) and reads
// the cache through Pool.CacheExport, so the pool stays oblivious to
// whether it is persistent. Crash semantics by failure mode:
//
//   - SIGTERM (clean drain): queued jobs finish, a final checkpoint runs —
//     nothing is lost and the journal is left holding nothing.
//   - SIGKILL / panic: queued and running jobs replay on the next boot
//     (at-least-once; the content-addressed cache deduplicates re-run
//     work), and the cache is served from the last snapshot.
//   - Power loss: as SIGKILL under FsyncAlways; under FsyncBatch or
//     FsyncOff, records still in the page cache may be lost or torn, and
//     the torn tail is repaired on recovery.
package store
