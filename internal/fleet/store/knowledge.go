package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"ioagent/internal/fleet/knowledge"
	"ioagent/internal/vectordb"
)

// Knowledge-plane persistence lives in its own sidecar files —
// knowledge.wal (mutation journal) and knowledge.json (corpus snapshot) —
// deliberately separate from the job journal: corpus epochs and job
// lifecycles have different write rates, different compaction triggers,
// and an operator may wipe one without losing the other.
const (
	knowledgeWALName         = "knowledge.wal"
	knowledgeSnapshotName    = "knowledge.json"
	knowledgeSnapshotVersion = 1
)

// Knowledge WAL record operations: one upsert batch, one epoch promotion.
const (
	opKnowledgeUpsert = "kdoc"
	opKnowledgeSwap   = "kswap"
)

// krecord is one knowledge WAL line.
type krecord struct {
	Op     string              `json:"op"`
	Docs   []vectordb.Document `json:"docs,omitempty"`
	Remove []string            `json:"remove,omitempty"`
	Epoch  uint64              `json:"epoch,omitempty"`
}

// knowledgeSnapshot is the on-disk form of knowledge.json.
type knowledgeSnapshot struct {
	Version int             `json:"version"`
	State   knowledge.State `json:"state"`
}

// KnowledgeStore persists one node's knowledge plane: every Upsert and
// Swap is journaled write-ahead through the plane's OnEvent hook, and
// Checkpoint collapses the journal into an atomic snapshot. Like Store it
// survives SIGKILL — recovery replays the snapshot plus the journal tail,
// tolerating a torn final line. All methods are safe for concurrent use.
type KnowledgeStore struct {
	dir  string
	opts Options

	mu       sync.Mutex
	wal      *os.File
	appended int

	// Recovered state, consumed by Replay.
	snap    *knowledge.State
	records []krecord
}

// OpenKnowledge attaches to (creating if needed) the state directory and
// recovers persisted knowledge state: the snapshot is loaded, the WAL is
// scanned, and a torn or corrupt WAL tail is truncated away (warnings go
// to Options.Logf). Call Replay to apply the recovered state to a plane.
func OpenKnowledge(dir string, opts Options) (*KnowledgeStore, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create state dir: %w", err)
	}
	ks := &KnowledgeStore{dir: dir, opts: opts}

	if data, err := os.ReadFile(ks.path(knowledgeSnapshotName)); err == nil {
		var snap knowledgeSnapshot
		switch uerr := json.Unmarshal(data, &snap); {
		case uerr != nil:
			opts.Logf("store: ignoring corrupt knowledge snapshot: %v", uerr)
		case snap.Version != knowledgeSnapshotVersion:
			opts.Logf("store: ignoring knowledge snapshot with unknown version %d", snap.Version)
		default:
			ks.snap = &snap.State
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: read knowledge snapshot: %w", err)
	}

	walPath := ks.path(knowledgeWALName)
	valid := int64(0)
	if data, err := os.ReadFile(walPath); err == nil {
		for off := 0; off < len(data); {
			nl := bytes.IndexByte(data[off:], '\n')
			if nl < 0 {
				opts.Logf("store: knowledge wal: dropping torn tail (%d bytes)", len(data)-off)
				break
			}
			var rec krecord
			if uerr := json.Unmarshal(data[off:off+nl], &rec); uerr != nil {
				opts.Logf("store: knowledge wal: dropping corrupt tail at offset %d: %v", off, uerr)
				break
			}
			switch rec.Op {
			case opKnowledgeUpsert, opKnowledgeSwap:
				ks.records = append(ks.records, rec)
			default:
				opts.Logf("store: knowledge wal: ignoring unknown op %q at offset %d", rec.Op, off)
			}
			off += nl + 1
			valid = int64(off)
		}
		if valid < int64(len(data)) {
			if terr := os.Truncate(walPath, valid); terr != nil {
				return nil, fmt.Errorf("store: truncate knowledge wal tail: %w", terr)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: read knowledge wal: %w", err)
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open knowledge wal: %w", err)
	}
	ks.wal = f
	return ks, nil
}

func (ks *KnowledgeStore) path(name string) string { return ks.dir + string(os.PathSeparator) + name }

// Replay applies the recovered snapshot and journal tail to the plane, in
// write order, without emitting new events. Idempotent against records the
// snapshot already covers (stale promotions discard their staged delta).
// Call it once, after New-ing the plane and before it serves retrievals —
// and before wiring OnEvent, or replay itself would be re-journaled.
func (ks *KnowledgeStore) Replay(p *knowledge.Plane) {
	ks.mu.Lock()
	snap, records := ks.snap, ks.records
	ks.mu.Unlock()
	if snap != nil {
		p.Restore(*snap)
	}
	for _, rec := range records {
		switch rec.Op {
		case opKnowledgeUpsert:
			p.ReplayUpsert(rec.Docs, rec.Remove)
		case opKnowledgeSwap:
			p.ReplaySwap(rec.Epoch)
		}
	}
}

// HasRecovered reports whether Open found any persisted knowledge state
// (snapshot or journal records) to replay.
func (ks *KnowledgeStore) HasRecovered() bool {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.snap != nil || len(ks.records) > 0
}

// OnEvent journals one plane mutation; pass it as the plane's
// Config.OnEvent. The append is synchronous — with FsyncAlways an upsert
// is on stable storage before Upsert returns to the HTTP handler — and
// append failures are logged, never surfaced, because event hooks cannot
// fail the mutation that already happened.
func (ks *KnowledgeStore) OnEvent(e knowledge.Event) {
	var rec krecord
	switch e.Kind {
	case knowledge.EventUpsert:
		rec = krecord{Op: opKnowledgeUpsert, Docs: e.Docs, Remove: e.Remove}
	case knowledge.EventSwap:
		rec = krecord{Op: opKnowledgeSwap, Epoch: e.Epoch}
	default:
		return
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if ks.wal == nil {
		ks.opts.Logf("store: knowledge event after close: dropped")
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		ks.opts.Logf("store: marshal knowledge record: %v", err)
		return
	}
	line = append(line, '\n')
	if _, err := ks.wal.Write(line); err != nil {
		ks.opts.Logf("store: append knowledge wal: %v", err)
		return
	}
	if ks.opts.Fsync == FsyncAlways {
		if err := ks.wal.Sync(); err != nil {
			ks.opts.Logf("store: fsync knowledge wal: %v", err)
		}
	}
	ks.appended++
}

// Checkpoint snapshots the plane's full state (including any staged,
// unswapped delta) to knowledge.json and truncates the WAL the snapshot
// now covers. The snapshot write is atomic; a crash between the write and
// the truncation only leaves covered records, which replay idempotently.
func (ks *KnowledgeStore) Checkpoint(p *knowledge.Plane) error {
	state := p.Export()
	data, err := json.Marshal(knowledgeSnapshot{Version: knowledgeSnapshotVersion, State: state})
	if err != nil {
		return fmt.Errorf("store: marshal knowledge snapshot: %w", err)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if ks.wal == nil {
		return ErrClosed
	}
	if err := atomicWrite(ks.path(knowledgeSnapshotName), data, ks.opts.Fsync != FsyncOff); err != nil {
		return fmt.Errorf("store: write knowledge snapshot: %w", err)
	}
	if err := atomicWrite(ks.path(knowledgeWALName), nil, ks.opts.Fsync != FsyncOff); err != nil {
		return fmt.Errorf("store: truncate knowledge wal: %w", err)
	}
	f, err := os.OpenFile(ks.path(knowledgeWALName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen knowledge wal: %w", err)
	}
	ks.wal.Close()
	ks.wal = f
	ks.appended = 0
	return nil
}

// Appended returns the WAL records written since the last checkpoint —
// the daemon's trigger for periodic checkpointing.
func (ks *KnowledgeStore) Appended() int {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.appended
}

// Close syncs and closes the WAL. Events arriving after Close are dropped
// with a log line.
func (ks *KnowledgeStore) Close() error {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if ks.wal == nil {
		return nil
	}
	if ks.opts.Fsync != FsyncOff {
		if err := ks.wal.Sync(); err != nil {
			ks.wal.Close()
			ks.wal = nil
			return fmt.Errorf("store: fsync knowledge wal on close: %w", err)
		}
	}
	err := ks.wal.Close()
	ks.wal = nil
	return err
}
