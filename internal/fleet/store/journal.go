package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
)

// journalName is the write-ahead journal file inside the state directory.
const journalName = "journal.wal"

// Journal record operations. A "submit" opens a job; "done", "fail", and
// "replayed" cover it (the job no longer needs replay); "reject" records a
// refused submission for the audit trail and never needs covering.
// "upload_open" opens a streaming upload session whose bytes spool beside
// the journal; "upload_close" covers it (completed into a job, aborted,
// or expired — in every case the spool is gone and there is nothing left
// to restore).
// "member_join" and "member_leave" record elastic-roster transitions seen
// by this node; like rejects they are audit-only — never replayed, never
// pending, dropped at compaction.
// "tenant_class" records an SLO-class assignment (POST /v1/sched/tenants).
// Unlike submits it is never covered by a later record — the latest
// assignment per tenant is durable configuration, kept across compactions
// until an empty-class record clears it.
const (
	opSubmit      = "submit"
	opDone        = "done"
	opFail        = "fail"
	opReplayed    = "replayed"
	opReject      = "reject"
	opUploadOpen  = "upload_open"
	opUploadClose = "upload_close"
	opMemberJoin  = "member_join"
	opMemberLeave = "member_leave"
	opTenantClass = "tenant_class"
)

// classKey namespaces a tenant_class record in the pending-line
// bookkeeping, so a tenant named like a job ID can never collide.
func classKey(tenant string) string { return "class:" + tenant }

// record is one journal line. Submit records carry the full encoded trace
// so a restarted daemon can reconstruct and resubmit the job; covering
// records carry only the ID.
type record struct {
	Op     string `json:"op"`
	ID     string `json:"id,omitempty"`
	Digest string `json:"digest,omitempty"`
	// Lane is the submission's priority lane; absent in journals written
	// before lanes existed, which replay as the default lane.
	Lane string `json:"lane,omitempty"`
	// Tenant is the submission's tenant identifier; absent for anonymous
	// submissions and in journals written before tenants existed.
	Tenant string    `json:"tenant,omitempty"`
	At     time.Time `json:"at,omitzero"`
	Error  string    `json:"error,omitempty"`
	Reason string    `json:"reason,omitempty"`
	// URL is the member base URL of a member_join/member_leave record.
	URL string `json:"url,omitempty"`
	// Class is the SLO class name of a tenant_class record (empty clears
	// the tenant's assignment).
	Class string `json:"class,omitempty"`
	// Trace is the darshan.Encode serialization of the submitted log
	// (base64 in the JSON encoding).
	Trace []byte `json:"trace,omitempty"`
}

// PendingJob is a journaled submission with no covering record: the job was
// accepted by a previous process but never finished, so it must be replayed.
type PendingJob struct {
	ID          string // the ID in the PREVIOUS process; replay assigns a new one
	Digest      string
	Lane        fleet.Lane // empty in pre-lane journals (replays as default)
	Tenant      string     // empty for anonymous or pre-tenant journals
	SubmittedAt time.Time
	Log         *darshan.Log
}

// PendingUpload is a journaled upload session with no covering record:
// the previous process accepted part of a streamed trace, whose bytes
// (if any) wait in the spool directory. Restore keeps the original ID so
// the client can resume at the recovered offset.
type PendingUpload struct {
	ID        string
	Lane      string
	Tenant    string
	Digest    string // client-claimed content digest, if asserted at open
	CreatedAt time.Time
}

// scanJournal reads the journal at path and returns the uncovered submit
// records in append order, together with their raw lines (kept for
// compaction). A torn or corrupt tail — the expected state after a crash
// mid-append — is tolerated: scanning stops at the first line that is not
// valid JSON, and valid is the byte offset where that tail begins, so the
// caller can truncate it before appending. A structurally valid submit
// record whose embedded trace fails to decode is skipped with a warning
// instead of aborting the scan.
func scanJournal(path string) (pending []PendingJob, uploads []PendingUpload, classes map[string]string, raw map[string][]byte, valid int64, warnings []string, err error) {
	raw = make(map[string][]byte)
	classes = make(map[string]string)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, classes, raw, 0, nil, nil
	}
	if err != nil {
		return nil, nil, nil, nil, 0, nil, fmt.Errorf("store: read journal: %w", err)
	}

	byID := make(map[string]int)   // pending index by previous-process ID
	upByID := make(map[string]int) // uploads index by session ID
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Torn final line (no newline): crash mid-append. Tolerate.
			warnings = append(warnings, fmt.Sprintf("journal: dropping torn tail (%d bytes)", len(data)-off))
			break
		}
		line := data[off : off+nl]
		var rec record
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			warnings = append(warnings, fmt.Sprintf("journal: dropping corrupt tail at offset %d: %v", off, uerr))
			break
		}
		switch rec.Op {
		case opSubmit:
			if rec.ID == "" || len(rec.Trace) == 0 {
				warnings = append(warnings, fmt.Sprintf("journal: skipping malformed submit at offset %d", off))
				break
			}
			log, derr := darshan.Decode(bytes.NewReader(rec.Trace))
			if derr != nil {
				warnings = append(warnings, fmt.Sprintf("journal: skipping submit %s with undecodable trace: %v", rec.ID, derr))
				break
			}
			p := PendingJob{ID: rec.ID, Digest: rec.Digest, Lane: fleet.Lane(rec.Lane), Tenant: rec.Tenant, SubmittedAt: rec.At, Log: log}
			if i, dup := byID[rec.ID]; dup {
				pending[i] = p
				raw[rec.ID] = append([]byte(nil), line...)
				break
			}
			byID[rec.ID] = len(pending)
			pending = append(pending, p)
			raw[rec.ID] = append([]byte(nil), line...)
		case opDone, opFail, opReplayed:
			if i, ok := byID[rec.ID]; ok {
				pending[i].ID = "" // tombstone; filtered below
				delete(byID, rec.ID)
				delete(raw, rec.ID)
			}
		case opUploadOpen:
			if rec.ID == "" {
				warnings = append(warnings, fmt.Sprintf("journal: skipping malformed upload_open at offset %d", off))
				break
			}
			u := PendingUpload{ID: rec.ID, Lane: rec.Lane, Tenant: rec.Tenant, Digest: rec.Digest, CreatedAt: rec.At}
			if i, dup := upByID[rec.ID]; dup {
				uploads[i] = u
			} else {
				upByID[rec.ID] = len(uploads)
				uploads = append(uploads, u)
			}
			raw[rec.ID] = append([]byte(nil), line...)
		case opUploadClose:
			if i, ok := upByID[rec.ID]; ok {
				uploads[i].ID = "" // tombstone; filtered below
				delete(upByID, rec.ID)
				delete(raw, rec.ID)
			}
		case opTenantClass:
			if rec.Tenant == "" {
				warnings = append(warnings, fmt.Sprintf("journal: skipping malformed tenant_class at offset %d", off))
				break
			}
			// Last record per tenant wins; an empty class clears the
			// assignment (and lets compaction drop its lines entirely).
			if rec.Class == "" {
				delete(classes, rec.Tenant)
				delete(raw, classKey(rec.Tenant))
				break
			}
			classes[rec.Tenant] = rec.Class
			raw[classKey(rec.Tenant)] = append([]byte(nil), line...)
		case opReject, opMemberJoin, opMemberLeave:
			// Audit-only; nothing to replay.
		default:
			warnings = append(warnings, fmt.Sprintf("journal: ignoring unknown op %q at offset %d", rec.Op, off))
		}
		off += nl + 1
		valid = int64(off)
	}

	// Compact out the tombstoned (covered) submits and uploads.
	kept := pending[:0]
	for _, p := range pending {
		if p.ID != "" {
			kept = append(kept, p)
		}
	}
	upKept := uploads[:0]
	for _, u := range uploads {
		if u.ID != "" {
			upKept = append(upKept, u)
		}
	}
	return kept, upKept, classes, raw, valid, warnings, nil
}

// appendLocked marshals rec and appends it to the journal, maintaining the
// pending-submit bookkeeping used by compaction. Caller holds s.mu.
func (s *Store) appendLocked(rec record) error {
	if s.journal == nil {
		return ErrClosed
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.journal.Write(line); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if s.opts.Fsync == FsyncAlways {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("store: fsync journal: %w", err)
		}
	}
	s.appended++
	switch rec.Op {
	case opSubmit, opUploadOpen:
		if _, dup := s.pendingRaw[rec.ID]; !dup {
			s.pendingOrder = append(s.pendingOrder, rec.ID)
		}
		s.pendingRaw[rec.ID] = line
	case opDone, opFail, opReplayed, opUploadClose:
		delete(s.pendingRaw, rec.ID)
	case opTenantClass:
		// Durable configuration: the latest assignment per tenant survives
		// every compaction; an empty class erases it.
		key := classKey(rec.Tenant)
		if rec.Class == "" {
			delete(s.pendingRaw, key)
			return nil
		}
		if _, dup := s.pendingRaw[key]; !dup {
			s.pendingOrder = append(s.pendingOrder, key)
		}
		s.pendingRaw[key] = line
	}
	return nil
}

// compactLocked rewrites the journal to contain only the still-pending
// submit records — everything else is covered by completions and (for
// results) by the snapshot — then reopens it for appending. The rewrite is
// atomic: a crash mid-compaction leaves the previous journal intact.
// Caller holds s.mu.
func (s *Store) compactLocked() error {
	if s.journal == nil {
		return ErrClosed
	}
	var buf bytes.Buffer
	order := s.pendingOrder[:0]
	for _, id := range s.pendingOrder {
		line, ok := s.pendingRaw[id]
		if !ok {
			continue // covered since it was journaled
		}
		order = append(order, id)
		buf.Write(line)
	}
	s.pendingOrder = order

	path := s.path(journalName)
	if err := atomicWrite(path, buf.Bytes(), s.opts.Fsync != FsyncOff); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	// The old descriptor now points at the unlinked pre-compaction file;
	// swap it for the fresh journal before any further appends.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen journal: %w", err)
	}
	s.journal.Close()
	s.journal = f
	s.appended = 0
	return nil
}
