package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

// sharedIndex is built once: corpus embedding dominates pool construction
// and is identical across tests.
var sharedIndex = knowledge.BuildIndex()

func testConfig(workers int, st *Store) fleet.Config {
	cfg := fleet.Config{
		Workers:    workers,
		RetryDelay: time.Millisecond,
		Agent:      ioagent.Options{Index: sharedIndex},
	}
	if st != nil {
		cfg.OnJobEvent = st.OnJobEvent
		cfg.OnCacheInsert = st.CacheChanged
		cfg.OnCacheEvict = st.CacheChanged
	}
	return cfg
}

// testTrace generates a small deterministic trace; distinct seeds give
// distinct digests.
func testTrace(seed int) *darshan.Log {
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*11 + 3, NProcs: 4, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/store/test%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/store-%03d.dat", seed), iosim.POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 8; i++ {
			f.WriteAt(rank, (int64(rank)*8+i)*4096, 4096)
		}
	}
	f.Close()
	return sim.Finalize()
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// submitEvent fabricates the pool event for a queued job carrying trace.
func submitEvent(id, digest string, trace *darshan.Log) fleet.Event {
	return fleet.Event{
		Kind: fleet.EventSubmitted,
		Job: fleet.JobInfo{
			ID: id, Digest: digest, Status: fleet.StatusQueued,
			SubmittedAt: time.Now(),
		},
		Log: trace,
	}
}

func doneEvent(id, digest string) fleet.Event {
	return fleet.Event{
		Kind: fleet.EventDone,
		Job:  fleet.JobInfo{ID: id, Digest: digest, Status: fleet.StatusDone},
	}
}

func TestJournalWriteAheadReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.OnJobEvent(submitEvent("job-000001", "d1", testTrace(1)))
	s.OnJobEvent(submitEvent("job-000002", "d2", testTrace(2)))
	s.OnJobEvent(submitEvent("job-000003", "d3", testTrace(3)))
	s.OnJobEvent(doneEvent("job-000002", "d2"))
	s.OnJobEvent(fleet.Event{
		Kind: fleet.EventFailed,
		Job:  fleet.JobInfo{ID: "job-000003", Digest: "d3", Status: fleet.StatusFailed, Error: "boom"},
	})
	if got := s.PendingCount(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovered()
	if len(rec.Pending) != 1 || rec.Pending[0].ID != "job-000001" || rec.Pending[0].Digest != "d1" {
		t.Fatalf("recovered pending = %+v, want only job-000001", rec.Pending)
	}
	if rec.Pending[0].Log == nil || len(rec.Pending[0].Log.Modules) == 0 {
		t.Fatal("recovered pending job must carry a decodable trace")
	}
	// The recovered trace digests identically to the original submission.
	orig, err := fleet.Digest(ioagent.Options{}, testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fleet.Digest(ioagent.Options{}, rec.Pending[0].Log)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Error("journal round trip changed the trace digest")
	}
}

func TestJournalDoesNotMutateSubmittedLog(t *testing.T) {
	// darshan.Encode sorts records in place; the journal must serialize a
	// clone, because the pool still owns the log and concurrent
	// submissions may be digesting it.
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	trace := testTrace(1)
	order := func() []string {
		var out []string
		for _, m := range trace.ModuleList() {
			for _, r := range trace.Modules[m].Records {
				out = append(out, fmt.Sprintf("%s/%d", r.Name, r.Rank))
			}
		}
		return out
	}
	before := order()
	s.OnJobEvent(submitEvent("job-000001", "d1", trace))
	after := order()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("record order changed at %d: %s != %s", i, after[i], before[i])
		}
	}
}

func TestJournalIgnoresUnjournaledCompletions(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	// Cache hits and coalesced duplicates complete without ever being
	// journaled; their terminal events must not append records.
	s.OnJobEvent(fleet.Event{
		Kind: fleet.EventSubmitted,
		Job:  fleet.JobInfo{ID: "job-000009", Digest: "d9", Status: fleet.StatusDone, CacheHit: true},
		Log:  testTrace(9),
	})
	s.OnJobEvent(doneEvent("job-000009", "d9"))
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("journal should be empty, holds %q", data)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	for _, tail := range []struct {
		name string
		junk []byte
	}{
		{"torn-no-newline", []byte(`{"op":"submit","id":"job-9`)},
		{"corrupt-line", append([]byte("\x00\x01\x02 not json at all"), '\n')},
		{"binary-garbage", []byte{0xde, 0xad, 0xbe, 0xef, '\n', 0x00}},
	} {
		t.Run(tail.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			s.OnJobEvent(submitEvent("job-000001", "d1", testTrace(1)))
			s.OnJobEvent(submitEvent("job-000002", "d2", testTrace(2)))
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, journalName)
			intact, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(intact, tail.junk...), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := mustOpen(t, dir, Options{})
			rec := s2.Recovered()
			if len(rec.Pending) != 2 {
				t.Fatalf("pending after tail damage = %d, want 2", len(rec.Pending))
			}
			if len(rec.Warnings) == 0 {
				t.Error("tail repair should be reported as a warning")
			}
			// The tail was truncated away, so new appends produce a clean
			// journal again.
			s2.OnJobEvent(submitEvent("job-000003", "d3", testTrace(3)))
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := mustOpen(t, dir, Options{})
			defer s3.Close()
			if got := len(s3.Recovered().Pending); got != 3 {
				t.Errorf("pending after repair+append = %d, want 3", got)
			}
			if w := s3.Recovered().Warnings; len(w) != 0 {
				t.Errorf("repaired journal should scan cleanly, got warnings %v", w)
			}
		})
	}
}

func TestJournalCompactionEquivalence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 1; i <= 4; i++ {
		s.OnJobEvent(submitEvent(fmt.Sprintf("job-%06d", i), fmt.Sprintf("d%d", i), testTrace(i)))
	}
	s.OnJobEvent(doneEvent("job-000002", "d2"))
	s.OnJobEvent(doneEvent("job-000004", "d4"))

	// What replay would see before compaction.
	before, _, _, _, _, _, err := scanJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}

	// Compact (via the checkpoint path; the cache is clean so only the
	// journal is rewritten) and compare.
	pool := fleet.New(llm.NewSim(), testConfig(1, nil))
	defer pool.Close()
	if err := s.Checkpoint(pool); err != nil {
		t.Fatal(err)
	}
	after, _, _, _, _, warns, err := scanJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("compacted journal has warnings: %v", warns)
	}
	if len(after) != len(before) {
		t.Fatalf("compaction changed pending set: %d != %d", len(after), len(before))
	}
	for i := range after {
		if after[i].ID != before[i].ID || after[i].Digest != before[i].Digest {
			t.Errorf("pending[%d] = %s/%s after compaction, want %s/%s",
				i, after[i].ID, after[i].Digest, before[i].ID, before[i].Digest)
		}
	}
	// The rewritten journal holds exactly the two pending records.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte{'\n'}); lines != 2 {
		t.Errorf("compacted journal has %d records, want 2", lines)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSemIndexSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	cfg := testConfig(1, s)
	cfg.SemCache = true
	pool := fleet.New(llm.NewSim(), cfg)
	j, err := pool.Submit(testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if pool.SemLen() != 1 {
		t.Fatalf("SemLen = %d before checkpoint, want 1", pool.SemLen())
	}
	if err := s.Checkpoint(pool); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, semIndexName)); err != nil {
		t.Fatalf("checkpoint did not write the sem index sidecar: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.Recovered().Sem); got != 1 {
		t.Fatalf("recovered %d sem entries, want 1", got)
	}
	cfg2 := testConfig(1, s2)
	cfg2.SemCache = true
	pool2 := fleet.New(llm.NewSim(), cfg2)
	defer pool2.Close()
	restored, _, err := s2.Replay(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d cache entries, want 1", restored)
	}
	if pool2.SemLen() != 1 {
		t.Errorf("SemLen = %d after replay, want 1 (vector should survive with its cache backing)", pool2.SemLen())
	}

	// A sem index with no cache snapshot behind it must restore empty: the
	// pool drops vectors whose diagnosis the cache cannot serve.
	if err := os.Remove(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	cfg3 := testConfig(1, s3)
	cfg3.SemCache = true
	pool3 := fleet.New(llm.NewSim(), cfg3)
	defer pool3.Close()
	if _, _, err := s3.Replay(pool3); err != nil {
		t.Fatal(err)
	}
	if pool3.SemLen() != 0 {
		t.Errorf("SemLen = %d after cache-less replay, want 0 (orphaned vectors must drop)", pool3.SemLen())
	}
}

func TestRejectIsJournaledButNeverReplayed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Reject("daemon is draining"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"op":"reject"`) || !strings.Contains(string(data), "draining") {
		t.Errorf("journal should record the refusal, got %q", data)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.Recovered().Pending); got != 0 {
		t.Errorf("rejects must not replay, pending = %d", got)
	}
}

func TestMemberEventsAreJournaledButNeverReplayed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.MemberJoined("http://10.0.0.2:8080")
	s.MemberLeft("http://10.0.0.3:8080")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"op":"member_join"`) || !strings.Contains(string(data), "10.0.0.2") {
		t.Errorf("journal should record the join, got %q", data)
	}
	if !strings.Contains(string(data), `"op":"member_leave"`) || !strings.Contains(string(data), "10.0.0.3") {
		t.Errorf("journal should record the departure, got %q", data)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovered()
	if got := len(rec.Pending); got != 0 {
		t.Errorf("member events must not replay, pending = %d", got)
	}
	// Known audit ops: recovery must not warn about them.
	for _, w := range rec.Warnings {
		if strings.Contains(w, "unknown op") {
			t.Errorf("member events flagged as unknown: %s", w)
		}
	}
}

func TestSnapshotCorruptFileIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	rec := s.Recovered()
	if len(rec.Cache) != 0 {
		t.Errorf("corrupt snapshot should yield no cache entries, got %d", len(rec.Cache))
	}
	if len(rec.Warnings) == 0 {
		t.Error("corrupt snapshot should be reported as a warning")
	}
}

func TestSnapshotAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	if err := writeSnapshot(filepath.Join(dir, snapshotName), []SnapshotEntry{
		{Digest: "d1", Text: "I/O Performance Diagnosis\nok", Added: time.Now()},
	}, true); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	entries, warns, err := readSnapshot(filepath.Join(dir, snapshotName))
	if err != nil || len(warns) != 0 || len(entries) != 1 || entries[0].Digest != "d1" {
		t.Errorf("round trip = (%v, %v, %v)", entries, warns, err)
	}
}

// TestJournalPersistsLaneAcrossRestart pins the priority-lane durability
// contract: a batch-lane submission journaled by one process replays onto
// the batch lane in the next, and pre-lane journal records (no lane
// field) replay on the default lane instead of failing.
func TestJournalPersistsLaneAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	ev := submitEvent("job-000001", "d1", testTrace(1))
	ev.Job.Lane = fleet.LaneBatch
	s.OnJobEvent(ev)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovered()
	if len(rec.Pending) != 1 || rec.Pending[0].Lane != fleet.LaneBatch {
		t.Fatalf("recovered pending = %+v, want the batch lane preserved", rec.Pending)
	}

	pool := fleet.New(llm.NewSim(), testConfig(1, s2))
	defer pool.Close()
	if _, _, err := s2.Replay(pool); err != nil {
		t.Fatal(err)
	}
	pool.Wait()
	jobs := pool.Jobs()
	if len(jobs) != 1 || jobs[0].Lane() != fleet.LaneBatch {
		t.Fatalf("replayed job lane = %v, want batch", jobs)
	}
}

// TestJournalPersistsTenantAcrossRestart: the tenant identifier journals
// with the submission and replays with it, so per-tenant accounting stays
// honest across a bounce; anonymous submissions journal without a tenant
// key (wire compatibility with pre-tenant journals is the same property).
func TestJournalPersistsTenantAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	ev := submitEvent("job-000001", "d1", testTrace(1))
	ev.Job.Tenant = "acme"
	s.OnJobEvent(ev)
	s.OnJobEvent(submitEvent("job-000002", "d2", testTrace(2))) // anonymous
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	rec := s2.Recovered()
	if len(rec.Pending) != 2 || rec.Pending[0].Tenant != "acme" || rec.Pending[1].Tenant != "" {
		t.Fatalf("recovered pending = %+v, want tenant acme then anonymous", rec.Pending)
	}

	pool := fleet.New(llm.NewSim(), testConfig(1, s2))
	defer pool.Close()
	if _, _, err := s2.Replay(pool); err != nil {
		t.Fatal(err)
	}
	pool.Wait()
	jobs := pool.Jobs()
	if len(jobs) != 2 || jobs[0].Tenant() != "acme" || jobs[1].Tenant() != "" {
		t.Fatalf("replayed tenants = %v, want acme then anonymous", jobs)
	}
	if m := pool.Metrics(); m.Tenants["acme"] != 1 {
		t.Errorf("replay did not re-count the tenant: %v", m.Tenants)
	}
}

// TestJournalPreLaneRecordReplaysOnDefault feeds a journal line written
// before lanes existed (no "lane" key) through recovery.
func TestJournalPreLaneRecordReplaysOnDefault(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.OnJobEvent(submitEvent("job-000001", "d1", testTrace(1)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The event above carried no lane, exactly like an old journal.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"lane"`)) {
		t.Fatalf("laneless submit should journal without a lane key: %s", data)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	pool := fleet.New(llm.NewSim(), testConfig(1, s2))
	defer pool.Close()
	if _, _, err := s2.Replay(pool); err != nil {
		t.Fatal(err)
	}
	pool.Wait()
	jobs := pool.Jobs()
	if len(jobs) != 1 || jobs[0].Lane() != fleet.LaneInteractive {
		t.Fatalf("pre-lane replay lane = %v, want the interactive default", jobs)
	}
}

// TestReplayUnknownLaneFallsBackToDefault: a journal record carrying a
// lane this build doesn't know (newer minor version, corrupt field) must
// replay on the default lane with a warning — never abort recovery and
// crash-loop the daemon.
func TestReplayUnknownLaneFallsBackToDefault(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	ev := submitEvent("job-000001", "d1", testTrace(1))
	ev.Job.Lane = "express" // not a lane this build knows
	s.OnJobEvent(ev)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var warned []string
	s2 := mustOpen(t, dir, Options{Logf: func(format string, args ...any) {
		warned = append(warned, fmt.Sprintf(format, args...))
		t.Logf(format, args...)
	}})
	defer s2.Close()
	pool := fleet.New(llm.NewSim(), testConfig(1, s2))
	defer pool.Close()
	if _, resubmitted, err := s2.Replay(pool); err != nil || resubmitted != 1 {
		t.Fatalf("replay = %d resubmitted, %v; unknown lane must not abort recovery", resubmitted, err)
	}
	pool.Wait()
	jobs := pool.Jobs()
	if len(jobs) != 1 || jobs[0].Lane() != fleet.LaneInteractive {
		t.Fatalf("unknown-lane replay = %v, want the interactive default", jobs)
	}
	found := false
	for _, w := range warned {
		if strings.Contains(w, "unknown lane") {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback must be warned about, got %v", warned)
	}
}

// TestTenantClassSurvivesRestartAndCompaction journals SLO-class
// assignments and verifies the latest one per tenant is recovered, is
// re-applied by Replay, outlives compaction, and is erased by an
// empty-class clear.
func TestTenantClassSurvivesRestartAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.TenantClass("acme", "bronze"); err != nil {
		t.Fatal(err)
	}
	if err := s.TenantClass("acme", "gold"); err != nil {
		t.Fatal(err) // reassignment: last record wins
	}
	if err := s.TenantClass("umbrella", "silver"); err != nil {
		t.Fatal(err)
	}
	if err := s.TenantClass("ghost", "bronze"); err != nil {
		t.Fatal(err)
	}
	if err := s.TenantClass("ghost", ""); err != nil {
		t.Fatal(err) // cleared: must not be recovered
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	got := s2.Recovered().TenantClasses
	want := map[string]string{"acme": "gold", "umbrella": "silver"}
	if len(got) != len(want) {
		t.Fatalf("recovered classes %v, want %v", got, want)
	}
	for tenant, class := range want {
		if got[tenant] != class {
			t.Fatalf("recovered classes %v, want %v", got, want)
		}
	}

	// Replay applies the assignments to the pool.
	pool := fleet.New(llm.NewSim(), testConfig(1, s2))
	defer pool.Close()
	if _, _, err := s2.Replay(pool); err != nil {
		t.Fatal(err)
	}
	if tc := pool.TenantClasses(); tc["acme"] != "gold" || tc["umbrella"] != "silver" {
		t.Fatalf("pool classes after replay = %v", tc)
	}

	// Compaction keeps the assignments (they are durable configuration,
	// not covered work).
	if err := s2.Checkpoint(pool); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	got = s3.Recovered().TenantClasses
	if got["acme"] != "gold" || got["umbrella"] != "silver" || len(got) != 2 {
		t.Fatalf("classes after compaction %v, want %v", got, want)
	}
	if w := s3.Recovered().Warnings; len(w) != 0 {
		t.Fatalf("compacted journal has warnings: %v", w)
	}
}
