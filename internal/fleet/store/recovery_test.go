package store

import (
	"sync/atomic"
	"testing"

	"ioagent/internal/fleet"
	"ioagent/internal/llm"
)

// gatedClient blocks every model call while blocked is set, pinning jobs in
// the running state so a "crash" (abandoning pool and store without any
// shutdown courtesy) leaves genuinely unfinished work behind.
type gatedClient struct {
	inner   llm.Client
	blocked atomic.Bool
	release chan struct{}
	calls   atomic.Int64
}

func (g *gatedClient) Complete(req llm.Request) (llm.Response, error) {
	g.calls.Add(1)
	if g.blocked.Load() {
		<-g.release
	}
	return g.inner.Complete(req)
}

// TestCrashRecoveryRoundTrip is the acceptance scenario: a pool with a
// store attached warms its cache, checkpoints, accepts more jobs, and dies
// without cleanup. A second store+pool on the same directory must serve the
// warm digests from the snapshot without any model calls and replay the
// unfinished jobs to completion.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st1 := mustOpen(t, dir, Options{})
	client1 := &gatedClient{inner: llm.NewSim(), release: make(chan struct{})}
	pool1 := fleet.New(client1, testConfig(2, st1))

	// Phase 1: diagnose two traces and checkpoint, so the snapshot holds
	// their results and the journal compacts to empty.
	warm := make(map[string]string) // digest -> diagnosis text
	for i := 0; i < 2; i++ {
		j, err := pool1.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		warm[j.Digest()] = res.Text
	}
	if err := st1.FinalCheckpoint(pool1); err != nil {
		t.Fatal(err)
	}
	if got := st1.PendingCount(); got != 0 {
		t.Fatalf("journal should be empty after drain checkpoint, pending = %d", got)
	}

	// Phase 2: block the backend and submit three more traces. Their
	// submit records hit the journal (write-ahead, before any worker can
	// touch them) but no completion ever lands.
	client1.blocked.Store(true)
	pendingDigests := make(map[string]bool)
	for i := 2; i < 5; i++ {
		j, err := pool1.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		pendingDigests[j.Digest()] = true
	}

	// Crash: no Close, no checkpoint — pool1 and st1 are simply abandoned
	// with workers mid-flight (released at the end so the test can exit).
	defer func() {
		client1.blocked.Store(false)
		close(client1.release)
		pool1.Close()
	}()

	// Restart on the same state directory.
	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Cache) != 2 {
		t.Fatalf("recovered cache has %d entries, want 2", len(rec.Cache))
	}
	if len(rec.Pending) != 3 {
		t.Fatalf("recovered pending has %d jobs, want 3", len(rec.Pending))
	}

	client2 := &gatedClient{inner: llm.NewSim(), release: make(chan struct{})}
	pool2 := fleet.New(client2, testConfig(2, st2))
	defer pool2.Close()
	restored, resubmitted, err := st2.Replay(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 || resubmitted != 3 {
		t.Fatalf("replay = (%d restored, %d resubmitted), want (2, 3)", restored, resubmitted)
	}
	pool2.Wait()

	// Warm digests answer from the restored snapshot with zero model
	// calls beyond the replayed jobs' own work.
	replayCalls := client2.calls.Load()
	for digest, text := range warm {
		j, err := pool2.Submit(testTrace(digestSeed(t, digest)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		info := j.Info()
		if !info.CacheHit {
			t.Errorf("digest %.12s should be a cache hit after restart", digest)
		}
		if res.Text != text {
			t.Errorf("digest %.12s: restored diagnosis differs from the pre-crash one", digest)
		}
		if res.Report == nil || len(res.Report.Findings) == 0 {
			t.Errorf("digest %.12s: restored result lost its parsed report", digest)
		}
	}
	if calls := client2.calls.Load(); calls != replayCalls {
		t.Errorf("warm submissions made %d model calls, want 0", calls-replayCalls)
	}

	// The replayed jobs really ran: every pre-crash pending digest is now
	// resident, and resubmitting one is free.
	for digest := range pendingDigests {
		j, err := pool2.Submit(testTrace(digestSeed(t, digest)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatalf("replayed digest %.12s unusable: %v", digest, err)
		}
		if !j.Info().CacheHit {
			t.Errorf("replayed digest %.12s should now be cached", digest)
		}
	}

	// A final checkpoint leaves a journal with nothing to replay: a third
	// incarnation starts clean with the full five-entry cache.
	if err := st2.FinalCheckpoint(pool2); err != nil {
		t.Fatal(err)
	}
	st3 := mustOpen(t, dir, Options{})
	defer st3.Close()
	if rec := st3.Recovered(); len(rec.Pending) != 0 || len(rec.Cache) != 5 {
		t.Errorf("third boot sees %d pending / %d cached, want 0 / 5", len(rec.Pending), len(rec.Cache))
	}
}

// digestSeed maps a digest back to the testTrace seed that produced it.
var digestBySeed = map[string]int{}

func digestSeed(t *testing.T, digest string) int {
	t.Helper()
	if len(digestBySeed) == 0 {
		for seed := 0; seed < 8; seed++ {
			d, err := fleet.Digest(testConfig(1, nil).Agent, testTrace(seed))
			if err != nil {
				t.Fatal(err)
			}
			digestBySeed[d] = seed
		}
	}
	seed, ok := digestBySeed[digest]
	if !ok {
		t.Fatalf("unknown digest %.12s", digest)
	}
	return seed
}

// TestReplayCrashMidwayIsSafe loses the process a second time, between
// resubmitting pending jobs: the not-yet-covered remainder must replay on
// the following boot (at-least-once semantics).
func TestReplayCrashMidwayIsSafe(t *testing.T) {
	dir := t.TempDir()
	st1 := mustOpen(t, dir, Options{})
	c1 := &gatedClient{inner: llm.NewSim(), release: make(chan struct{})}
	pool1 := fleet.New(c1, testConfig(1, st1))
	c1.blocked.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := pool1.Submit(testTrace(i)); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		c1.blocked.Store(false)
		close(c1.release)
		pool1.Close()
	}()

	// Boot 2 crashes before replaying anything: recovery state must be
	// unchanged for boot 3.
	st2 := mustOpen(t, dir, Options{})
	if got := len(st2.Recovered().Pending); got != 2 {
		t.Fatalf("boot 2 pending = %d, want 2", got)
	}
	// (crash: abandon st2 without Replay/Close)

	st3 := mustOpen(t, dir, Options{})
	defer st3.Close()
	if got := len(st3.Recovered().Pending); got != 2 {
		t.Fatalf("boot 3 pending = %d, want 2", got)
	}
	pool3 := fleet.New(llm.NewSim(), testConfig(2, st3))
	defer pool3.Close()
	_, resubmitted, err := st3.Replay(pool3)
	if err != nil {
		t.Fatal(err)
	}
	if resubmitted != 2 {
		t.Fatalf("resubmitted = %d, want 2", resubmitted)
	}
	pool3.Wait()
	if m := pool3.Metrics(); m.Done != 2 || m.Failed != 0 {
		t.Errorf("replayed jobs: %+v, want 2 done", m)
	}
	// Once covered, a fourth boot has nothing to replay even without a
	// checkpoint: the done records cover the resubmitted jobs.
	st4 := mustOpen(t, dir, Options{})
	defer st4.Close()
	if got := len(st4.Recovered().Pending); got != 0 {
		t.Errorf("boot 4 pending = %d, want 0", got)
	}
}

// TestFsyncModes exercises each policy end to end; the durability
// difference is not observable in-process (no power failures in CI), but
// every mode must produce a replayable journal.
func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncOff} {
		t.Run(string(mode), func(t *testing.T) {
			dir := t.TempDir()
			st := mustOpen(t, dir, Options{Fsync: mode})
			st.OnJobEvent(submitEvent("job-000001", "d1", testTrace(1)))
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2 := mustOpen(t, dir, Options{Fsync: mode})
			defer st2.Close()
			if got := len(st2.Recovered().Pending); got != 1 {
				t.Errorf("pending = %d, want 1", got)
			}
		})
	}
}
