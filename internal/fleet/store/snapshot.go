package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ioagent/internal/fleet"
)

// snapshotName is the result-cache snapshot file inside the state
// directory.
const snapshotName = "snapshot.json"

// snapshotVersion guards the on-disk format. A reader finding a version it
// does not understand ignores the snapshot (the cache is an optimization;
// the journal alone preserves correctness).
const snapshotVersion = 1

// SnapshotEntry is one persisted result-cache entry. Only the canonical
// report text is stored: the parsed Report is reconstructed on load with
// llm.ParseReport, and per-fragment pipeline intermediates are not
// persisted (they exist for introspection of a live run, not for serving).
type SnapshotEntry struct {
	Digest string    `json:"digest"`
	Text   string    `json:"text"`
	Added  time.Time `json:"added"`
}

// snapshotFile is the on-disk snapshot document.
type snapshotFile struct {
	Version int             `json:"version"`
	SavedAt time.Time       `json:"saved_at"`
	Entries []SnapshotEntry `json:"entries"`
}

// readSnapshot loads the snapshot at path. A missing file yields an empty
// entry list; a corrupt or version-incompatible file is ignored with a
// warning rather than failing recovery, because losing the cache costs
// recomputation, not correctness.
func readSnapshot(path string) (entries []SnapshotEntry, warnings []string, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	var f snapshotFile
	if uerr := json.Unmarshal(data, &f); uerr != nil {
		return nil, []string{fmt.Sprintf("snapshot: ignoring corrupt file: %v", uerr)}, nil
	}
	if f.Version != snapshotVersion {
		return nil, []string{fmt.Sprintf("snapshot: ignoring unsupported version %d", f.Version)}, nil
	}
	return f.Entries, nil, nil
}

// semIndexName is the similarity-index sidecar file inside the state
// directory. It persists the semantic cache's feature vectors beside the
// result-cache snapshot so that a restarted daemon can serve similarity
// hits immediately instead of re-deriving features as traces trickle in.
const semIndexName = "semindex.json"

// semIndexFile is the on-disk similarity-index document. It shares the
// snapshot's versioning posture: an unreadable or version-incompatible
// file costs only warm-up (features are re-derived on fresh submissions),
// never correctness.
type semIndexFile struct {
	Version int              `json:"version"`
	SavedAt time.Time        `json:"saved_at"`
	Entries []fleet.SemEntry `json:"entries"`
}

// readSemIndex loads the similarity-index sidecar at path. Missing,
// corrupt, or version-incompatible files yield an empty list with at most
// a warning, mirroring readSnapshot.
func readSemIndex(path string) (entries []fleet.SemEntry, warnings []string, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: read sem index: %w", err)
	}
	var f semIndexFile
	if uerr := json.Unmarshal(data, &f); uerr != nil {
		return nil, []string{fmt.Sprintf("sem index: ignoring corrupt file: %v", uerr)}, nil
	}
	if f.Version != snapshotVersion {
		return nil, []string{fmt.Sprintf("sem index: ignoring unsupported version %d", f.Version)}, nil
	}
	return f.Entries, nil, nil
}

// writeSemIndex atomically replaces the similarity-index sidecar at path.
func writeSemIndex(path string, entries []fleet.SemEntry, sync bool) error {
	doc := semIndexFile{Version: snapshotVersion, SavedAt: time.Now(), Entries: entries}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("store: marshal sem index: %w", err)
	}
	if err := atomicWrite(path, data, sync); err != nil {
		return fmt.Errorf("store: write sem index: %w", err)
	}
	return nil
}

// writeSnapshot atomically replaces the snapshot at path.
func writeSnapshot(path string, entries []SnapshotEntry, sync bool) error {
	doc := snapshotFile{Version: snapshotVersion, SavedAt: time.Now(), Entries: entries}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("store: marshal snapshot: %w", err)
	}
	if err := atomicWrite(path, data, sync); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	return nil
}

// atomicWrite writes data to path via a same-directory temp file and
// rename, so readers only ever observe the old or the new content — never
// a torn write. When sync is set, the file is fsynced before the rename and
// the directory after it, making the replacement durable across power loss.
func atomicWrite(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if sync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}
