package store

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/ingest"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

// ErrClosed is returned by Store operations after Close.
var ErrClosed = errors.New("store: closed")

// FsyncMode selects how aggressively the store flushes to stable storage.
type FsyncMode string

const (
	// FsyncAlways fsyncs the journal after every append and snapshots
	// through fsync+rename. Nothing acknowledged is lost even on power
	// failure; each submission pays one fsync of latency.
	FsyncAlways FsyncMode = "always"
	// FsyncBatch lets journal appends ride the OS page cache (they still
	// survive a process kill, which only loses the page cache on power
	// loss) and fsyncs at checkpoints and on Close.
	FsyncBatch FsyncMode = "batch"
	// FsyncOff never fsyncs. State still survives SIGKILL on a healthy
	// machine; a power failure may lose or tear recent records (the
	// journal scanner tolerates the torn tail).
	FsyncOff FsyncMode = "off"
)

// Options tune a Store. The zero value selects FsyncAlways.
type Options struct {
	Fsync FsyncMode
	// Logf receives recovery warnings and hook-path write errors (hooks
	// cannot return errors to the pool). Defaults to log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = FsyncAlways
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Recovery is what a previous process left behind: the persisted result
// cache and the journaled jobs it accepted but never finished.
type Recovery struct {
	// Cache holds the last snapshot's entries, most recently used first.
	Cache []SnapshotEntry
	// Sem holds the persisted similarity index (digest → feature text).
	// Replay restores it after the cache, so entries whose backing
	// diagnosis did not survive are dropped by the pool.
	Sem []fleet.SemEntry
	// Pending holds journaled-but-unfinished submissions in accept order.
	Pending []PendingJob
	// Uploads holds upload sessions opened but never closed, in open
	// order; their partial bytes wait in the spool directory (UploadDir).
	Uploads []PendingUpload
	// TenantClasses holds the journaled SLO-class assignments (latest per
	// tenant); Replay re-applies them so POST /v1/sched/tenants survives a
	// restart.
	TenantClasses map[string]string
	// Warnings records non-fatal recovery repairs (torn journal tail
	// truncated, corrupt snapshot ignored, ...).
	Warnings []string
}

// Store persists fleet state in a directory: a write-ahead job journal
// (journal.wal) and a result-cache snapshot (snapshot.json). It is the
// durability layer behind iofleetd's -state-dir flag.
//
// A Store attaches to a fleet.Pool through three Config hooks — OnJobEvent
// (journaling), OnCacheInsert and OnCacheEvict (snapshot dirty tracking) —
// and never reaches into pool internals; everything it persists arrives
// through the hook surface or the pool's CacheExport. All methods are safe
// for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	journal   *os.File
	recovered Recovery
	// pendingRaw holds the raw journal line of every uncovered submit,
	// keyed by job ID; pendingOrder preserves append order. Together they
	// let compaction rewrite the journal without rereading it.
	pendingRaw   map[string][]byte
	pendingOrder []string
	appended     int  // records appended since the last compaction
	dirty        bool // cache changed since the last snapshot
}

// Open attaches to (creating if needed) the state directory and performs
// recovery: the snapshot is loaded, the journal is scanned, and a torn or
// corrupt journal tail is truncated away. The recovered state is available
// through Recovered until Replay consumes it.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create state dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts, pendingRaw: make(map[string][]byte)}

	cache, warns, err := readSnapshot(s.path(snapshotName))
	if err != nil {
		return nil, err
	}
	s.recovered.Cache = cache
	s.recovered.Warnings = append(s.recovered.Warnings, warns...)

	sem, warns, err := readSemIndex(s.path(semIndexName))
	if err != nil {
		return nil, err
	}
	s.recovered.Sem = sem
	s.recovered.Warnings = append(s.recovered.Warnings, warns...)

	jpath := s.path(journalName)
	pending, uploads, classes, raw, valid, warns, err := scanJournal(jpath)
	if err != nil {
		return nil, err
	}
	s.recovered.Pending = pending
	s.recovered.Uploads = uploads
	s.recovered.TenantClasses = classes
	s.recovered.Warnings = append(s.recovered.Warnings, warns...)
	if info, err := os.Stat(jpath); err == nil && info.Size() > valid {
		if err := os.Truncate(jpath, valid); err != nil {
			return nil, fmt.Errorf("store: truncate journal tail: %w", err)
		}
	}
	for _, p := range pending {
		s.pendingOrder = append(s.pendingOrder, p.ID)
	}
	for _, u := range uploads {
		s.pendingOrder = append(s.pendingOrder, u.ID)
	}
	tenants := make([]string, 0, len(classes))
	for tenant := range classes {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants) // deterministic compaction order
	for _, tenant := range tenants {
		s.pendingOrder = append(s.pendingOrder, classKey(tenant))
	}
	s.pendingRaw = raw

	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	s.journal = f
	for _, w := range s.recovered.Warnings {
		opts.Logf("store: %s", w)
	}
	return s, nil
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// Recovered returns what Open found on disk. Replay consumes the same
// state; calling both is fine (Recovered is read-only).
func (s *Store) Recovered() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Replay pushes the recovered state into a freshly built pool: snapshot
// entries are restored into the result cache (keeping their original TTL
// clocks), and every pending job is resubmitted. The pool must already be
// wired to this store's hooks, so each resubmission write-ahead-journals
// itself under its new job ID before the old record is marked replayed —
// a crash during Replay re-replays the not-yet-covered remainder on the
// next boot (at-least-once, deduplicated by the content-addressed cache).
// Resubmission blocks when the pool queue is full, exactly like Submit.
func (s *Store) Replay(p *fleet.Pool) (restored, resubmitted int, err error) {
	rec := s.Recovered()

	entries := make([]fleet.CacheEntry, 0, len(rec.Cache))
	for _, e := range rec.Cache {
		if e.Digest == "" || e.Text == "" {
			continue
		}
		entries = append(entries, fleet.CacheEntry{
			Digest: e.Digest,
			Result: &ioagent.Result{Text: e.Text, Report: llm.ParseReport(e.Text)},
			Added:  e.Added,
		})
	}
	p.CacheRestore(entries)
	restored = len(entries)
	// The similarity index restores strictly after the cache: SemRestore
	// drops any vector whose digest the restored cache cannot serve, so
	// reuse never cites a diagnosis that did not survive the restart.
	p.SemRestore(rec.Sem)

	// Journaled SLO-class assignments are re-applied before the pending
	// jobs resubmit, so the replayed backlog schedules under the weights
	// the operator had configured. A class this build's catalog does not
	// know (journal written under a different -slo-classes set) is logged
	// and skipped — the tenant degrades to the default weight instead of
	// bricking the boot.
	for _, tenant := range sortedKeys(rec.TenantClasses) {
		if cerr := p.SetTenantClass(tenant, rec.TenantClasses[tenant]); cerr != nil {
			s.opts.Logf("store: replay tenant class %q=%q: %v (skipping)", tenant, rec.TenantClasses[tenant], cerr)
		}
	}

	for _, job := range rec.Pending {
		// The lane survives the restart: an interactive job keeps its
		// priority, a batch job keeps yielding it. Pre-lane journal
		// records have no lane and replay on the default; so does a lane
		// this build doesn't know (e.g. written by a newer minor version,
		// whose contract allows added lanes) — a single odd record must
		// degrade, not brick the boot.
		lane := job.Lane
		if lane != "" && !lane.Valid() {
			s.opts.Logf("store: replay %s: unknown lane %q, using the default", job.ID, lane)
			lane = ""
		}
		// The tenant survives too, so per-tenant accounting stays honest
		// across a bounce (the replayed job re-counts under its tenant).
		if _, serr := p.SubmitWith(job.Log, fleet.SubmitOpts{Lane: lane, Tenant: job.Tenant}); serr != nil {
			return restored, resubmitted, fmt.Errorf("store: replay %s: %w", job.ID, serr)
		}
		resubmitted++
		s.mu.Lock()
		aerr := s.appendLocked(record{Op: opReplayed, ID: job.ID, Digest: job.Digest, At: time.Now()})
		s.mu.Unlock()
		if aerr != nil {
			return restored, resubmitted, aerr
		}
	}
	return restored, resubmitted, nil
}

// OnJobEvent is the fleet.Config.OnJobEvent hook: it write-ahead-journals
// every submission that will occupy a worker, and covers it when the job
// reaches a terminal state. Cache hits and coalesced duplicates are not
// journaled — on replay they are re-answered by the cache or re-coalesced
// onto the one journaled primary for their digest.
func (s *Store) OnJobEvent(ev fleet.Event) {
	switch ev.Kind {
	case fleet.EventSubmitted:
		if ev.Job.CacheHit || ev.Job.Status != fleet.StatusQueued || ev.Log == nil {
			return
		}
		// Encode sorts records in place; the pool owns ev.Log and other
		// submissions may be digesting it concurrently, so serialize a
		// shallow clone.
		var buf bytes.Buffer
		if err := darshan.Encode(&buf, ev.Log.ShallowClone()); err != nil {
			s.opts.Logf("store: encode trace for %s: %v (job will not survive a restart)", ev.Job.ID, err)
			return
		}
		s.append(record{
			Op: opSubmit, ID: ev.Job.ID, Digest: ev.Job.Digest,
			Lane: string(ev.Job.Lane), Tenant: ev.Job.Tenant,
			At: ev.Job.SubmittedAt, Trace: buf.Bytes(),
		})
	case fleet.EventDone:
		s.cover(record{Op: opDone, ID: ev.Job.ID, Digest: ev.Job.Digest, At: ev.Job.FinishedAt})
	case fleet.EventFailed:
		s.cover(record{Op: opFail, ID: ev.Job.ID, Digest: ev.Job.Digest, At: ev.Job.FinishedAt, Error: ev.Job.Error})
	}
}

// UploadDir returns the spool directory for streaming upload sessions,
// beside the journal: internal/fleet/ingest appends accepted bytes there
// while this store journals the session opens, and the two recover
// together.
func (s *Store) UploadDir() string { return s.path("uploads") }

// OnUploadEvent is the ingest.Config.OnEvent hook: it write-ahead-journals
// every opened upload session and covers it when the session closes
// (completed into a job — which journals itself as a submit — aborted, or
// expired). An uncovered open at boot means a half-finished upload whose
// spooled bytes should be revived; see ReplayUploads.
func (s *Store) OnUploadEvent(ev ingest.Event) {
	switch ev.Kind {
	case ingest.EventOpened:
		s.append(record{
			Op: opUploadOpen, ID: ev.ID,
			Lane: ev.Lane, Tenant: ev.Tenant, Digest: ev.Digest, At: ev.At,
		})
	case ingest.EventClosed:
		s.cover(record{Op: opUploadClose, ID: ev.ID, At: ev.At})
	}
}

// ReplayUploads revives every journaled-but-unclosed upload session into
// the manager, re-feeding each session's spooled bytes so the client can
// resume at the recovered offset under the original session ID. A session
// whose spool no longer parses (torn mid-byte binary, disk trouble) is
// dropped and covered in the journal — the client will see
// upload_not_found and restart from offset zero, which is the honest
// outcome. The manager must already be wired to this store's
// OnUploadEvent hook so the eventual close covers the journaled open.
func (s *Store) ReplayUploads(m *ingest.Manager) (restored int, err error) {
	rec := s.Recovered()
	for _, u := range rec.Uploads {
		if _, rerr := m.Restore(ingest.RestoreSession{
			ID: u.ID, Lane: u.Lane, Tenant: u.Tenant, Digest: u.Digest, CreatedAt: u.CreatedAt,
		}); rerr != nil {
			s.opts.Logf("store: replay upload %s: %v (dropping the session)", u.ID, rerr)
			s.mu.Lock()
			aerr := s.appendLocked(record{Op: opUploadClose, ID: u.ID, At: time.Now()})
			s.mu.Unlock()
			if aerr != nil {
				return restored, aerr
			}
			continue
		}
		restored++
	}
	return restored, nil
}

// CacheChanged is both the fleet.Config.OnCacheInsert and OnCacheEvict
// hook: any membership change marks the snapshot dirty so the next
// Checkpoint rewrites it.
func (s *Store) CacheChanged(string) {
	s.mu.Lock()
	s.dirty = true
	s.mu.Unlock()
}

// sortedKeys returns m's keys in lexical order, for deterministic replay
// and logging.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TenantClass journals an SLO-class assignment (the server's
// Config.OnTenantClass hook). The latest record per tenant survives
// compaction as durable configuration; an empty class clears the
// assignment. The in-memory pool assignment has already happened by the
// time this runs — the journal only makes it outlive the process.
func (s *Store) TenantClass(tenant, class string) error {
	if tenant == "" {
		return errors.New("store: tenant_class with no tenant")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(record{Op: opTenantClass, Tenant: tenant, Class: class, At: time.Now()})
}

// Reject journals a refused submission (e.g. a 503 during drain) for the
// audit trail. Rejected work is the client's to retry; it is never
// replayed.
func (s *Store) Reject(reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(record{Op: opReject, Reason: reason, At: time.Now()})
}

// MemberJoined and MemberLeft journal elastic-roster transitions this
// node observed, for the audit trail: after an incident, the journal
// answers "when did the ring change under this daemon" without
// correlating logs across the fleet. Like rejects, the records are
// audit-only — never replayed, dropped at compaction. Hook-shaped (no
// error return): iofleetd wires them to roster.Config.OnChange, which
// runs off the gossip loop.
func (s *Store) MemberJoined(url string) { s.memberEvent(opMemberJoin, url) }

// MemberLeft journals a member's departure; see MemberJoined.
func (s *Store) MemberLeft(url string) { s.memberEvent(opMemberLeave, url) }

func (s *Store) memberEvent(op, url string) {
	s.mu.Lock()
	err := s.appendLocked(record{Op: op, URL: url, At: time.Now()})
	s.mu.Unlock()
	if err != nil {
		s.opts.Logf("store: journal %s %s: %v", op, url, err)
	}
}

// append journals one record, reporting hook-path failures through Logf
// (the pool's hook signature cannot carry an error).
func (s *Store) append(rec record) {
	s.mu.Lock()
	err := s.appendLocked(rec)
	s.mu.Unlock()
	if err != nil {
		s.opts.Logf("store: journal %s %s: %v", rec.Op, rec.ID, err)
	}
}

// cover appends a terminal record, but only for jobs this store journaled:
// completions of cache-hit, coalesced, or pre-recovery jobs are no-ops.
func (s *Store) cover(rec record) {
	s.mu.Lock()
	if _, ok := s.pendingRaw[rec.ID]; !ok {
		s.mu.Unlock()
		return
	}
	err := s.appendLocked(rec)
	s.mu.Unlock()
	if err != nil {
		s.opts.Logf("store: journal %s %s: %v", rec.Op, rec.ID, err)
	}
}

// PendingCount returns the number of journaled jobs not yet covered by a
// terminal record.
func (s *Store) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pendingRaw)
}

// Checkpoint persists a consistent cut of pool state: the result cache is
// snapshotted (if it changed since the last checkpoint, or force is set)
// and the journal is compacted down to the still-pending submissions.
// Ordering matters: the snapshot lands before compaction, so every journal
// record dropped by compaction is covered by either a terminal record
// already written or the snapshot just renamed into place. iofleetd calls
// this periodically (-snapshot-interval) and once more after the pool
// drains on shutdown.
func (s *Store) Checkpoint(p *fleet.Pool) error {
	return s.checkpoint(p, false)
}

// FinalCheckpoint is Checkpoint with the dirty-check skipped, for the
// drain path: the snapshot is written even if no change was observed.
func (s *Store) FinalCheckpoint(p *fleet.Pool) error {
	return s.checkpoint(p, true)
}

func (s *Store) checkpoint(p *fleet.Pool, force bool) error {
	s.mu.Lock()
	dirty, appended := s.dirty, s.appended
	s.mu.Unlock()
	if !force && !dirty && appended == 0 {
		return nil
	}

	if force || dirty {
		// Clear the flag before exporting: a change landing mid-export is
		// either captured by this snapshot or re-marks dirty for the next
		// one; clearing afterwards could silently swallow it.
		s.mu.Lock()
		s.dirty = false
		s.mu.Unlock()
		exported := p.CacheExport()
		entries := make([]SnapshotEntry, 0, len(exported))
		for _, e := range exported {
			if e.Result == nil {
				continue
			}
			entries = append(entries, SnapshotEntry{Digest: e.Digest, Text: e.Result.Text, Added: e.Added})
		}
		if err := writeSnapshot(s.path(snapshotName), entries, s.opts.Fsync != FsyncOff); err != nil {
			s.mu.Lock()
			s.dirty = true
			s.mu.Unlock()
			return err
		}
		// The similarity index rides the same dirty cadence as the cache
		// snapshot: every sem entry is pinned to a cache digest (eviction
		// drops both), so any index change implies a cache change.
		if err := writeSemIndex(s.path(semIndexName), p.SemExport(), s.opts.Fsync != FsyncOff); err != nil {
			s.mu.Lock()
			s.dirty = true
			s.mu.Unlock()
			return err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appended == 0 {
		return nil
	}
	return s.compactLocked()
}

// Close flushes and closes the journal. The Store must not be used
// afterwards; iofleetd checkpoints first, so a clean shutdown leaves a
// fresh snapshot and a journal holding only never-finished jobs.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	var err error
	if s.opts.Fsync != FsyncOff {
		err = s.journal.Sync()
	}
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.journal = nil
	return err
}
