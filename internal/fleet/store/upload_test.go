package store

import (
	"os"
	"path/filepath"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet/ingest"
)

// TestUploadSessionSurvivesRestart is the journal-replay contract for
// half-finished uploads: a session opened and partially fed before a
// crash is revived by the next process under its original ID at its
// spooled offset, resumes, completes — and the journal ends fully
// covered.
func TestUploadSessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	trace := testTrace(31)
	text, err := darshan.TextString(trace)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(text)
	want, err := darshan.ContentDigest(trace)
	if err != nil {
		t.Fatal(err)
	}

	// Process 1: open a session, feed part of the body, "crash" (no
	// close event ever fires).
	st1, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ingest.NewManager(ingest.Config{
		NodeID: "n1", SpoolDir: st1.UploadDir(), OnEvent: st1.OnUploadEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m1.Open(ingest.OpenOpts{Lane: "batch", Tenant: "acme", Digest: want})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(body) / 3
	if _, err := m1.Append(info.ID, 0, body[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil { // simulate crash: journal closed uncovered
		t.Fatal(err)
	}

	// Process 2: recovery finds the pending session; replay revives it.
	st2, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovered()
	if len(rec.Uploads) != 1 {
		t.Fatalf("recovered %d pending uploads, want 1", len(rec.Uploads))
	}
	u := rec.Uploads[0]
	if u.ID != info.ID || u.Lane != "batch" || u.Tenant != "acme" || u.Digest != want {
		t.Fatalf("recovered upload %+v lost metadata", u)
	}
	m2, err := ingest.NewManager(ingest.Config{
		NodeID: "n1", SpoolDir: st2.UploadDir(), OnEvent: st2.OnUploadEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	revived, err := st2.ReplayUploads(m2)
	if err != nil {
		t.Fatal(err)
	}
	if revived != 1 {
		t.Fatalf("revived %d sessions, want 1", revived)
	}
	status, err := m2.Status(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.Offset != int64(cut) {
		t.Fatalf("revived offset %d, want %d (the spooled bytes)", status.Offset, cut)
	}
	if status.Lines == 0 {
		t.Error("revived session shows no pre-parse progress")
	}

	// The client resumes where the server says and completes.
	if _, err := m2.Append(info.ID, int64(cut), body[cut:]); err != nil {
		t.Fatal(err)
	}
	_, digest, _, err := m2.Complete(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if digest != want {
		t.Errorf("digest after crash-resume %s != %s", digest, want)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Process 3: the close event covered the journaled open — nothing
	// pends anymore.
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if n := len(st3.Recovered().Uploads); n != 0 {
		t.Errorf("%d uploads still pending after completion, want 0", n)
	}
}

// TestReplayUploadsDropsUnrestorableSession: a pending session whose
// spool was corrupted between processes is dropped AND covered in the
// journal — one bad session must not re-pend forever or brick boot.
func TestReplayUploadsDropsUnrestorableSession(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ingest.NewManager(ingest.Config{SpoolDir: st1.UploadDir(), OnEvent: st1.OnUploadEvent})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m1.Open(ingest.OpenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Append(info.ID, 0, []byte("# darshan log version: 3.41\n")); err != nil {
		t.Fatal(err)
	}
	st1.Close() // crash: open never covered

	// Disk trouble while we were down: the spool is now garbage the
	// incremental parser refuses.
	if err := os.WriteFile(filepath.Join(dir, "uploads", info.ID+".part"), []byte("POSIX bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Recovered().Uploads) != 1 {
		t.Fatalf("recovered %d uploads, want 1", len(st2.Recovered().Uploads))
	}
	m2, err := ingest.NewManager(ingest.Config{SpoolDir: st2.UploadDir(), OnEvent: st2.OnUploadEvent})
	if err != nil {
		t.Fatal(err)
	}
	revived, err := st2.ReplayUploads(m2)
	if err != nil {
		t.Fatal(err)
	}
	if revived != 0 {
		t.Errorf("revived %d sessions from a corrupt spool, want 0", revived)
	}
	st2.Close()

	// The drop was covered: the next boot has nothing pending.
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if n := len(st3.Recovered().Uploads); n != 0 {
		t.Errorf("%d uploads still pending after drop, want 0", n)
	}
}
