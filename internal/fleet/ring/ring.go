// Package ring implements the consistent-hash ring that shards the fleet's
// digest space across iofleetd nodes.
//
// Each member is projected onto a 64-bit hash circle at Replicas virtual
// points; a key (a trace digest, or any routing string) is owned by the
// member whose next virtual point follows the key's hash clockwise. The
// construction gives the two properties the cluster layer leans on:
//
//   - Deterministic assignment: ownership is a pure function of the member
//     set and the replica count. Two rings built independently — in any
//     insertion order, in different processes, on different machines —
//     agree on every key, which is what lets iofleet-router restart (or a
//     cluster-mode SDK client start fresh) without moving any cached
//     diagnosis.
//   - Minimal disruption: adding or removing one member of n reassigns
//     only the keys whose owning arc changed — in expectation K/n of K
//     keys, never the wholesale reshuffle of modulo hashing.
//
// The ring does NOT guarantee perfect balance (virtual points smooth the
// spread to within a few tens of percent at the default replica count) and
// it does NOT know whether a member is alive: health is the caller's
// concern, which is why Successors exists — a caller that finds the owner
// down walks the successor list, and the digest-idempotent submit contract
// makes re-running work on the next member safe.
//
// The package is dependency-free (standard library only) and all methods
// are safe for concurrent use.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// DefaultReplicas is the virtual-point count used when New is given a
// non-positive replica count. 128 points per member keeps the expected
// per-member load within roughly ±15% of even on small clusters.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over an arbitrary set of member names
// (the fleet uses daemon base URLs). The zero value is not usable; call
// New.
type Ring struct {
	replicas int

	mu      sync.RWMutex
	members map[string]struct{}
	points  []point // sorted ascending by hash
}

// point is one virtual node: a position on the hash circle and the member
// it maps to.
type point struct {
	hash   uint64
	member string
}

// New builds an empty ring with the given virtual-point count per member
// (<= 0 selects DefaultReplicas). The replica count is part of the
// assignment function: every party that must agree on ownership — router,
// cluster clients, tests — has to use the same value.
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]struct{})}
}

// hashKey maps an arbitrary string onto the circle. SHA-256 (rather than a
// faster non-cryptographic hash) keeps the projection stable across
// architectures and Go versions — ownership must never change on a rebuild.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// pointKey derives the i-th virtual point of a member. The NUL separator
// keeps distinct (member, index) pairs from colliding textually.
func pointKey(member string, i int) uint64 {
	h := sha256.New()
	h.Write([]byte(member))
	h.Write([]byte{0})
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(i))
	h.Write(idx[:])
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Add inserts members (duplicates are no-ops). Keys never move between
// members that were present both before and after the call; only arcs now
// owned by a new member change hands.
func (r *Ring) Add(members ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, m := range members {
		if _, ok := r.members[m]; ok || m == "" {
			continue
		}
		r.members[m] = struct{}{}
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, point{hash: pointKey(m, i), member: m})
		}
		changed = true
	}
	if changed {
		sort.Slice(r.points, func(i, j int) bool {
			if r.points[i].hash != r.points[j].hash {
				return r.points[i].hash < r.points[j].hash
			}
			// Tie-break on the member name so equal hash points (vanishingly
			// rare, but possible) still order deterministically everywhere.
			return r.points[i].member < r.points[j].member
		})
	}
}

// Remove deletes a member (unknown members are no-ops). Keys the member
// owned are absorbed by their ring successors; every other assignment is
// untouched.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member that owns key. ok is false on an empty ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(hashKey(key))].member, true
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner. It is the failover walk: callers try index 0 (the
// owner), then 1, and so on. n larger than the member count returns every
// member exactly once.
func (r *Ring) Successors(key string, n int) []string {
	return r.AppendSuccessors(nil, key, n)
}

// AppendSuccessors is Successors with caller-owned storage: the walk is
// appended to dst (grown as needed) and the extended slice returned.
// Hot-path callers — the router resolves a successor list per submission,
// the replicator per cache insert — reuse one buffer across calls instead
// of allocating a fresh slice each time. dst[:0] of a previous result is
// the intended idiom.
func (r *Ring) AppendSuccessors(dst []string, key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return dst
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	base := len(dst)
	for i, start := 0, r.search(hashKey(key)); len(dst)-base < n && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		// n is small (a failover depth, not the member count), so a linear
		// dup scan over what we've appended beats a per-call map.
		dup := false
		for _, prev := range dst[base:] {
			if prev == m {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, m)
		}
	}
	return dst
}

// Changed reports which of keys change owner when the member set moves
// from old to new, at the given replica count (<= 0 selects
// DefaultReplicas — pass the same value every ring party uses). It is the
// membership-change diff the handoff layer is built on: a node that
// observes a roster transition feeds its resident digests through Changed
// and pushes exactly the moved ones to their new owners. Keys are
// returned in input order; a key is "moved" when its owner under new
// differs from its owner under old (including from or to the no-owner
// state of an empty ring).
func Changed(replicas int, old, new []string, keys []string) []string {
	before := New(replicas)
	before.Add(old...)
	after := New(replicas)
	after.Add(new...)
	var moved []string
	for _, k := range keys {
		ob, okB := before.Owner(k)
		oa, okA := after.Owner(k)
		if ob != oa || okB != okA {
			moved = append(moved, k)
		}
	}
	return moved
}

// search returns the index of the first point at or clockwise-after h.
// Caller holds r.mu (either side).
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0 // wrapped past the highest point
	}
	return i
}
