package ring

import (
	"fmt"
	"testing"
)

// The routed hot path resolves ownership once per submission (Owner for
// the primary, Successors for the failover walk), so per-call allocation
// here is multiplied by cluster throughput. The benchmarks pin the cost
// of both, plus the zero-alloc AppendSuccessors variant callers with a
// reusable buffer should prefer.

func benchRing(members int) *Ring {
	r := New(0)
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("http://10.0.0.%d:7070", i))
	}
	return r
}

func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064d", i)
	}
	return keys
}

func BenchmarkRingOwner(b *testing.B) {
	r := benchRing(8)
	keys := benchKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Owner(keys[i%len(keys)]); !ok {
			b.Fatal("empty ring")
		}
	}
}

func BenchmarkRingSuccessors(b *testing.B) {
	r := benchRing(8)
	keys := benchKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.Successors(keys[i%len(keys)], 3); len(got) != 3 {
			b.Fatalf("got %d successors", len(got))
		}
	}
}

func BenchmarkRingAppendSuccessors(b *testing.B) {
	r := benchRing(8)
	keys := benchKeys(1024)
	buf := make([]string, 0, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendSuccessors(buf[:0], keys[i%len(keys)], 3)
		if len(buf) != 3 {
			b.Fatalf("got %d successors", len(buf))
		}
	}
}

// TestRingAppendSuccessorsMatches pins the refactor: the append variant
// and the allocating wrapper must return identical walks, and reusing the
// buffer across keys must not leak members between calls.
func TestRingAppendSuccessorsMatches(t *testing.T) {
	r := benchRing(5)
	buf := make([]string, 0, 4)
	for _, k := range benchKeys(64) {
		want := r.Successors(k, 4)
		buf = r.AppendSuccessors(buf[:0], k, 4)
		if len(buf) != len(want) {
			t.Fatalf("key %s: append returned %v, want %v", k, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("key %s: append returned %v, want %v", k, buf, want)
			}
		}
	}
}

// TestRingChangedMoved pins the diff contract: adding one member moves
// only keys whose new owner is that member, and removing it moves them
// back — no key unrelated to the changed arc may appear.
func TestRingChangedMoved(t *testing.T) {
	old := []string{"http://a:1", "http://b:1"}
	grown := []string{"http://a:1", "http://b:1", "http://c:1"}
	keys := benchKeys(512)

	moved := Changed(0, old, grown, keys)
	if len(moved) == 0 {
		t.Fatal("expected some keys to move on a join")
	}
	after := New(0)
	after.Add(grown...)
	movedSet := make(map[string]bool, len(moved))
	for _, k := range moved {
		movedSet[k] = true
		if owner, _ := after.Owner(k); owner != "http://c:1" {
			t.Fatalf("moved key %s owned by %s, not the new member", k, owner)
		}
	}
	before := New(0)
	before.Add(old...)
	for _, k := range keys {
		if movedSet[k] {
			continue
		}
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob != oa {
			t.Fatalf("key %s moved (%s -> %s) but Changed omitted it", k, ob, oa)
		}
	}

	// The reverse transition moves exactly the same set.
	back := Changed(0, grown, old, keys)
	if len(back) != len(moved) {
		t.Fatalf("reverse diff moved %d keys, want %d", len(back), len(moved))
	}
	for _, k := range back {
		if !movedSet[k] {
			t.Fatalf("reverse diff moved unrelated key %s", k)
		}
	}

	// No membership change, no movement.
	if same := Changed(0, old, old, keys); len(same) != 0 {
		t.Fatalf("identity diff moved %d keys", len(same))
	}
}
