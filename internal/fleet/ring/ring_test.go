package ring

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// sampleDigests builds K deterministic hex digests shaped like the fleet's
// trace digests.
func sampleDigests(k int) []string {
	out := make([]string, k)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("trace-%06d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := New(0)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring claimed an owner")
	}
	if s := r.Successors("x", 3); s != nil {
		t.Errorf("empty ring successors = %v, want nil", s)
	}
	r.Add("only")
	for _, key := range sampleDigests(16) {
		if owner, ok := r.Owner(key); !ok || owner != "only" {
			t.Fatalf("single-member ring owner(%s) = %q, %v", key[:8], owner, ok)
		}
	}
	if got := r.Successors("x", 5); len(got) != 1 || got[0] != "only" {
		t.Errorf("successors on 1-member ring = %v, want [only]", got)
	}
}

// TestRingDeterministic pins the property the router restart scenario
// depends on: two rings built independently, with members added in
// different orders, agree on every assignment.
func TestRingDeterministic(t *testing.T) {
	members := []string{"http://n1:8080", "http://n2:8080", "http://n3:8080", "http://n4:8080"}
	a := New(64)
	a.Add(members...)
	b := New(64)
	for i := len(members) - 1; i >= 0; i-- {
		b.Add(members[i]) // reverse order, one at a time
	}
	for _, key := range sampleDigests(2000) {
		ao, _ := a.Owner(key)
		bo, _ := b.Owner(key)
		if ao != bo {
			t.Fatalf("rings disagree on %s: %q vs %q", key[:12], ao, bo)
		}
		as, bs := a.Successors(key, 3), b.Successors(key, 3)
		if fmt.Sprint(as) != fmt.Sprint(bs) {
			t.Fatalf("successor walks disagree on %s: %v vs %v", key[:12], as, bs)
		}
		if as[0] != ao {
			t.Fatalf("successors[0] = %q, want the owner %q", as[0], ao)
		}
	}
}

// TestRingAddMovesFewKeys is the ISSUE acceptance property: growing the
// ring from n to n+1 members reassigns at most ~K/(n+1) of K sampled
// digests (bounded here at 2x the expectation), and every moved key moves
// TO the new member, never between old members.
func TestRingAddMovesFewKeys(t *testing.T) {
	keys := sampleDigests(4000)
	for n := 2; n <= 6; n++ {
		r := New(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("http://node-%d", i))
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k], _ = r.Owner(k)
		}
		newcomer := "http://node-new"
		r.Add(newcomer)
		moved := 0
		for _, k := range keys {
			after, _ := r.Owner(k)
			if after == before[k] {
				continue
			}
			moved++
			if after != newcomer {
				t.Fatalf("n=%d: key %s moved between old members (%q -> %q)", n, k[:12], before[k], after)
			}
		}
		limit := 2 * len(keys) / (n + 1)
		if moved > limit {
			t.Errorf("n=%d: adding one member moved %d/%d keys, want <= %d (~2K/n)", n, moved, len(keys), limit)
		}
		if moved == 0 {
			t.Errorf("n=%d: new member received no keys", n)
		}
	}
}

// TestRingRemoveMovesOnlyOrphans: removing a member reassigns exactly that
// member's keys and no others, and the orphan count stays near K/n.
func TestRingRemoveMovesOnlyOrphans(t *testing.T) {
	keys := sampleDigests(4000)
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := New(0)
	r.Add(members...)
	before := make(map[string]string, len(keys))
	orphans := 0
	for _, k := range keys {
		before[k], _ = r.Owner(k)
		if before[k] == "http://c" {
			orphans++
		}
	}
	r.Remove("http://c")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] == "http://c" {
			if after == "http://c" {
				t.Fatalf("key %s still owned by removed member", k[:12])
			}
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %s owned by surviving member %q moved to %q", k[:12], before[k], after)
		}
	}
	if moved != orphans {
		t.Errorf("moved %d keys, want exactly the %d orphans", moved, orphans)
	}
	if limit := 2 * len(keys) / len(members); orphans > limit {
		t.Errorf("removed member owned %d/%d keys, want <= %d (~2K/n)", orphans, len(keys), limit)
	}
}

// TestRingSuccessorsDistinct: the failover walk yields distinct members,
// covers the whole ring when asked, and starts at the owner.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := New(0)
	members := []string{"http://a", "http://b", "http://c"}
	r.Add(members...)
	for _, key := range sampleDigests(200) {
		s := r.Successors(key, 10)
		if len(s) != len(members) {
			t.Fatalf("successors(%s) = %v, want all %d members", key[:12], s, len(members))
		}
		seen := map[string]bool{}
		for _, m := range s {
			if seen[m] {
				t.Fatalf("successors(%s) repeats %q: %v", key[:12], m, s)
			}
			seen[m] = true
		}
		if owner, _ := r.Owner(key); s[0] != owner {
			t.Fatalf("successors(%s)[0] = %q, want owner %q", key[:12], s[0], owner)
		}
	}
}

// TestRingBalance: virtual points keep the per-member share within a loose
// factor of even — no member starves and none hoards.
func TestRingBalance(t *testing.T) {
	keys := sampleDigests(8000)
	r := New(0)
	n := 4
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	counts := map[string]int{}
	for _, k := range keys {
		o, _ := r.Owner(k)
		counts[o]++
	}
	even := len(keys) / n
	for m, c := range counts {
		if c < even/3 || c > even*3 {
			t.Errorf("member %s owns %d of %d keys (even share %d): balance off by >3x", m, c, len(keys), even)
		}
	}
	if len(counts) != n {
		t.Errorf("only %d of %d members own keys", len(counts), n)
	}
}

// TestRingConcurrentReads exercises the lock paths under the race detector.
func TestRingConcurrentReads(t *testing.T) {
	r := New(32)
	r.Add("http://a", "http://b")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Add(fmt.Sprintf("http://extra-%d", i%8))
			r.Remove(fmt.Sprintf("http://extra-%d", (i+4)%8))
		}
	}()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", rng.Int())
		r.Owner(key)
		r.Successors(key, 3)
		r.Members()
	}
	<-done
}
