package roster_test

// Integration tests for the elastic-cluster layer: each "node" is a real
// pool behind a real server mux, with a Manager gossiping over live HTTP
// — the same wiring iofleetd assembles. Intervals are milliseconds so
// convergence is fast; assertions poll with a deadline instead of
// assuming lockstep rounds.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/ring"
	"ioagent/internal/fleet/roster"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

const testInterval = 20 * time.Millisecond

// node is one in-process elastic daemon.
type node struct {
	pool *fleet.Pool
	mgr  *roster.Manager
	srv  *httptest.Server
	stop context.CancelFunc
}

func (n *node) URL() string { return n.srv.URL }

// startNode boots a pool + manager + server whose advertised URL is its
// live httptest address. The handler is swapped in after the server
// starts because the manager needs the URL and the mux needs the manager.
func startNode(t *testing.T, replicate int, peers ...string) *node {
	t.Helper()
	var handler atomic.Value // http.Handler
	handler.Store(http.NotFoundHandler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	var mgrSlot atomic.Pointer[roster.Manager]
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers:  2,
		SemCache: true,
		Agent:    ioagent.Options{Index: knowledge.BuildIndex()},
		OnCacheInsert: func(digest string) {
			if m := mgrSlot.Load(); m != nil {
				m.CacheInserted(digest)
			}
		},
	})
	t.Cleanup(pool.Close)

	mgr := roster.New(roster.Config{
		SelfURL:   srv.URL,
		Peers:     peers,
		Interval:  testInterval,
		TTL:       8 * testInterval,
		Replicate: replicate,
		Pool:      pool,
		// One fast attempt: gossip tolerates failures, and tests kill
		// nodes on purpose.
		ClientOpts: []client.Option{client.WithRetry(1, time.Millisecond)},
	})
	t.Cleanup(mgr.Close)
	mgrSlot.Store(mgr)
	handler.Store(server.NewMux(server.Config{Pool: pool, Elastic: mgr}))

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go mgr.Run(ctx)
	return &node{pool: pool, mgr: mgr, srv: srv, stop: cancel}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func rosterSize(m *roster.Manager) int { return len(m.Snapshot().Members) }

func TestRosterGossipConvergence(t *testing.T) {
	n1 := startNode(t, 0)
	// n2 and n3 know only n1: full membership must arrive by gossip.
	n2 := startNode(t, 0, n1.URL())
	n3 := startNode(t, 0, n1.URL())

	for _, n := range []*node{n1, n2, n3} {
		waitFor(t, "3-member roster on every node", func() bool { return rosterSize(n.mgr) == 3 })
	}

	// The wire view agrees: GET /v1/roster through the SDK.
	c := client.New(n3.URL())
	defer c.Close()
	r, err := c.Roster(context.Background())
	if err != nil {
		t.Fatalf("Roster: %v", err)
	}
	if len(r.Members) != 3 {
		t.Fatalf("wire roster has %d members, want 3", len(r.Members))
	}
	if r.Epoch == 0 {
		t.Error("epoch never bumped despite two joins")
	}
	want := map[string]bool{n1.URL(): true, n2.URL(): true, n3.URL(): true}
	for _, m := range r.Members {
		if !want[m.URL] {
			t.Errorf("unexpected roster member %q", m.URL)
		}
		if m.LastSeen.IsZero() {
			t.Errorf("member %q has no liveness evidence", m.URL)
		}
	}
}

func TestRosterStaticDaemonDisabled(t *testing.T) {
	pool := fleet.New(llm.NewSim(), fleet.Config{
		Workers: 1,
		Agent:   ioagent.Options{Index: knowledge.BuildIndex()},
	})
	defer pool.Close()
	srv := httptest.NewServer(server.NewMux(server.Config{Pool: pool}))
	defer srv.Close()
	c := client.New(srv.URL)
	defer c.Close()

	if _, err := c.Roster(context.Background()); api.ErrorCode(err) != api.CodeRosterDisabled {
		t.Fatalf("static daemon roster error = %v, want %s", err, api.CodeRosterDisabled)
	}

	// The cache endpoints stay available: a static daemon can still be
	// seeded by a departing peer.
	added := time.Now().Add(-2 * time.Second)
	resp, err := c.CachePush(context.Background(), api.CachePushRequest{
		Entries: []api.CacheEntryWire{{Digest: "dig-static", Added: added, Text: "diag"}},
	})
	if err != nil || resp.Received != 1 {
		t.Fatalf("CachePush = %+v, %v; want 1 received", resp, err)
	}
	digests, err := c.CacheDigests(context.Background())
	if err != nil || len(digests) != 1 || digests[0] != "dig-static" {
		t.Fatalf("CacheDigests = %v, %v; want [dig-static]", digests, err)
	}
	if e, ok := pool.CacheEntryFor("dig-static"); !ok || !e.Added.Equal(added) {
		t.Fatalf("ingested entry = %+v, %v; want original TTL clock %v", e, ok, added)
	}
}

// seed inserts n synthetic diagnoses (with similarity vectors) into a
// node's pool, returning the digests. Texts embed the digest so
// cross-node assertions can verify entry identity.
func seed(t *testing.T, n *node, count int, added time.Time) []string {
	t.Helper()
	digests := make([]string, count)
	for i := range digests {
		d := fmt.Sprintf("digest-%04d", i)
		digests[i] = d
		if !n.pool.CacheIngest(d, "diagnosis for "+d, added) {
			t.Fatalf("seed insert %s failed", d)
		}
		if !n.pool.SemAdd(d, "darshan feature text "+d) {
			t.Fatalf("seed sem add %s failed", d)
		}
	}
	return digests
}

func TestHandoffOnJoinMovesOwnedDigests(t *testing.T) {
	n1 := startNode(t, 0)
	added := time.Now().Add(-3 * time.Second).Truncate(time.Millisecond)
	digests := seed(t, n1, 64, added)

	n2 := startNode(t, 0, n1.URL())
	waitFor(t, "join to converge", func() bool {
		return rosterSize(n1.mgr) == 2 && rosterSize(n2.mgr) == 2
	})

	// The digests that must arrive on n2 are exactly the ones whose
	// owner moved in the [n1] -> [n1, n2] transition.
	moved := ring.Changed(0, []string{n1.URL()}, []string{n1.URL(), n2.URL()}, digests)
	if len(moved) == 0 {
		t.Fatal("no digests moved on a 1->2 join; ring diff is broken")
	}
	waitFor(t, "moved digests pushed to the new owner", func() bool {
		// The sender counts a push only after the receiver's response, so
		// wait on the counters too, not just entry residency.
		return n2.pool.Metrics().CacheLen >= len(moved) &&
			n1.mgr.Metrics().EntriesPushed >= int64(len(moved)) &&
			n2.mgr.Metrics().EntriesReceived >= int64(len(moved))
	})

	for _, d := range moved {
		e, ok := n2.pool.CacheEntryFor(d)
		if !ok {
			t.Fatalf("moved digest %s never arrived on the new owner", d)
		}
		if e.Result.Text != "diagnosis for "+d {
			t.Errorf("digest %s arrived with wrong text %q", d, e.Result.Text)
		}
		if !e.Added.Equal(added) {
			t.Errorf("digest %s TTL clock = %v, want original %v", d, e.Added, added)
		}
		// The similarity vector moved with its diagnosis, and only ever
		// after it (the PR 6 invariant held mid-flight by construction:
		// receivers ingest cache-entry-first).
		if f, ok := n2.pool.SemFeature(d); !ok || f != "darshan feature text "+d {
			t.Errorf("digest %s has no (or wrong) similarity vector on the new owner: %q, %v", d, f, ok)
		}
	}
	// Sender keeps its copies: handoff bounds staleness by TTL instead
	// of risking a zero-copy window.
	if got := n1.pool.Metrics().CacheLen; got != len(digests) {
		t.Errorf("sender cache shrank to %d entries, want %d (no eviction on handoff)", got, len(digests))
	}

	hm1, hm2 := n1.mgr.Metrics(), n2.mgr.Metrics()
	if hm1.RingChanges == 0 || hm2.RosterSize != 2 {
		t.Errorf("counters off: %+v / %+v", hm1, hm2)
	}
}

func TestReplicationOnInsertWarmsSuccessor(t *testing.T) {
	n1 := startNode(t, 2)
	n2 := startNode(t, 2, n1.URL())
	waitFor(t, "join to converge", func() bool {
		return rosterSize(n1.mgr) == 2 && rosterSize(n2.mgr) == 2
	})

	// With two members, Successors(d, 2) is both nodes: every insert on
	// n1 must produce a warm copy on n2.
	added := time.Now().Truncate(time.Millisecond)
	for i := 0; i < 8; i++ {
		d := fmt.Sprintf("fresh-%02d", i)
		if !n1.pool.CacheIngest(d, "diagnosis for "+d, added) {
			t.Fatalf("insert %s failed", d)
		}
	}
	waitFor(t, "replicas to land on the successor", func() bool {
		for i := 0; i < 8; i++ {
			if _, ok := n2.pool.CacheEntryFor(fmt.Sprintf("fresh-%02d", i)); !ok {
				return false
			}
		}
		// The sender counts a push only after the receiver's response, so
		// the counters trail entry residency by one round-trip.
		return n1.mgr.Metrics().ReplicaPushed >= 8 && n2.mgr.Metrics().ReplicaReceived >= 8
	})

	// Convergence, not ping-pong: the successor's ingest is suppressed,
	// so it must not re-replicate the copies back.
	time.Sleep(10 * testInterval)
	if hm := n2.mgr.Metrics(); hm.ReplicaPushed != 0 {
		t.Errorf("successor re-replicated %d received copies; replication must not bounce", hm.ReplicaPushed)
	}
	if hm := n1.mgr.Metrics(); hm.ReplicaReceived != 0 {
		t.Errorf("origin received %d of its own copies back", hm.ReplicaReceived)
	}
}

func TestMemberExpiryAfterDeath(t *testing.T) {
	n1 := startNode(t, 0)
	n2 := startNode(t, 0, n1.URL())
	waitFor(t, "join to converge", func() bool {
		return rosterSize(n1.mgr) == 2 && rosterSize(n2.mgr) == 2
	})
	epochBefore := n1.mgr.Snapshot().Epoch

	// Kill n2 outright: stop its gossip loop and close its listener.
	n2.stop()
	n2.srv.Close()

	waitFor(t, "dead member to expire from the roster", func() bool {
		return rosterSize(n1.mgr) == 1
	})
	snap := n1.mgr.Snapshot()
	if snap.Members[0].URL != n1.URL() {
		t.Fatalf("surviving roster = %+v, want self only", snap.Members)
	}
	if snap.Epoch <= epochBefore {
		t.Errorf("epoch did not advance on expiry: %d -> %d", epochBefore, snap.Epoch)
	}
}
