package roster

// Cache handoff (ring-change rebalancing) and successor replication: the
// warm-path transfer machinery. Both directions move the same wire shape
// (api.CacheEntryWire) over POST /v1/cache/entries and share the
// idempotent skip-if-resident ingest in ReceiveEntries.

import (
	"context"
	"time"

	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/ring"
)

// pushTimeout bounds one cache-entries push to a peer.
const pushTimeout = 15 * time.Second

// rebalance computes which locally resident digests changed owner in the
// old→new membership transition and pushes their entries to the new
// owners. The local copies are NOT evicted: they age out by TTL, so a
// push that races a further ring change (or fails outright) degrades to
// bounded staleness, never to a digest with no warm copy.
func (m *Manager) rebalance(old, new []string) {
	moved := m.movedDigests(old, new)
	if len(moved) == 0 {
		return
	}
	after := make(map[string][]api.CacheEntryWire)
	m.mu.Lock()
	r := m.ringNow
	m.mu.Unlock()
	for _, digest := range moved {
		owner, ok := r.Owner(digest)
		if !ok || owner == m.cfg.SelfURL {
			continue // moved TO us, or the ring emptied under a race
		}
		if e, ok := m.wireEntry(digest); ok {
			after[owner] = append(after[owner], e)
		}
	}
	for owner, entries := range after {
		m.push(owner, api.HandoffReasonRebalance, entries)
	}
}

// movedDigests diffs ring ownership over the locally resident digests.
func (m *Manager) movedDigests(old, new []string) []string {
	digests := m.cfg.Pool.CacheDigests()
	if len(digests) == 0 {
		return nil
	}
	return ring.Changed(m.cfg.RingReplicas, old, new, digests)
}

// wireEntry reads one resident cache entry (and its semcache feature
// text, when indexed) into wire form.
func (m *Manager) wireEntry(digest string) (api.CacheEntryWire, bool) {
	e, ok := m.cfg.Pool.CacheEntryFor(digest)
	if !ok || e.Result == nil {
		return api.CacheEntryWire{}, false
	}
	w := api.CacheEntryWire{Digest: e.Digest, Added: e.Added, Text: e.Result.Text}
	if f, ok := m.cfg.Pool.SemFeature(digest); ok {
		w.Features = f
	}
	return w, true
}

// push delivers one batch to one member, counting per the reason.
func (m *Manager) push(target string, reason api.HandoffReason, entries []api.CacheEntryWire) {
	if len(entries) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
	defer cancel()
	_, err := m.clientFor(target).CachePush(ctx, api.CachePushRequest{
		From:    m.cfg.SelfURL,
		Reason:  reason,
		Entries: entries,
	})
	if err != nil {
		m.pushErrors.Add(1)
		m.cfg.Logf("roster: push %d entries (%s) to %s failed: %v", len(entries), reason, target, err)
		return
	}
	switch reason {
	case api.HandoffReasonReplicate:
		m.replicaPushed.Add(int64(len(entries)))
	default:
		m.entriesPushed.Add(int64(len(entries)))
	}
}

// CacheInserted is the fleet.Config.OnCacheInsert hook: it queues the
// digest for successor replication. Per the hook contract it runs with
// pool-internal locks held, so it must not call back into the pool — it
// only checks the suppression table and does a non-blocking channel send.
// A full queue drops the replication (counted): warm copies are an
// optimization, and an insert burst must never backpressure diagnosis
// completion.
func (m *Manager) CacheInserted(digest string) {
	if m.cfg.Replicate <= 1 {
		return
	}
	m.mu.Lock()
	suppressed := m.suppress[digest] > 0
	m.mu.Unlock()
	if suppressed {
		return // this insert IS a received copy; re-replicating would bounce forever
	}
	select {
	case m.replCh <- digest:
	default:
		m.replicaDropped.Add(1)
	}
}

// replLoop drains the replication queue: for each digest, push its entry
// to the ring successors that should also hold it warm. Runs from New
// until Close.
func (m *Manager) replLoop() {
	defer close(m.replDone)
	var succ []string
	for {
		select {
		case <-m.stopRepl:
			return
		case digest := <-m.replCh:
			entry, ok := m.wireEntry(digest)
			if !ok {
				continue // evicted or expired before the worker got to it
			}
			m.mu.Lock()
			r := m.ringNow
			m.mu.Unlock()
			succ = r.AppendSuccessors(succ[:0], digest, m.cfg.Replicate)
			for _, target := range succ {
				if target == m.cfg.SelfURL {
					continue
				}
				m.push(target, api.HandoffReasonReplicate, []api.CacheEntryWire{entry})
			}
		}
	}
}

// ReceiveEntries ingests a peer's push (the server side of
// POST /v1/cache/entries): cache entry first, similarity vector second,
// preserving the invariant that a vector never cites a diagnosis the
// cache can't serve. Resident digests are skipped — an incoming copy
// never resets (and so never shortens) a live TTL clock — as are entries
// already past their TTL at arrival. Suppression brackets each ingest so
// the resulting OnCacheInsert does not re-replicate the copy.
func (m *Manager) ReceiveEntries(req api.CachePushRequest) api.CachePushResponse {
	var received int
	for _, e := range req.Entries {
		m.mu.Lock()
		m.suppress[e.Digest]++
		m.mu.Unlock()
		inserted := m.cfg.Pool.CacheIngest(e.Digest, e.Text, e.Added)
		if inserted && e.Features != "" {
			m.cfg.Pool.SemAdd(e.Digest, e.Features)
		}
		m.mu.Lock()
		if m.suppress[e.Digest]--; m.suppress[e.Digest] <= 0 {
			delete(m.suppress, e.Digest)
		}
		m.mu.Unlock()
		if inserted {
			received++
		}
	}
	switch req.Reason {
	case api.HandoffReasonReplicate:
		m.replicaReceived.Add(int64(received))
	default:
		m.entriesReceived.Add(int64(received))
	}
	return api.CachePushResponse{Received: received}
}
