// Package roster is the elastic-cluster layer of the fleet: dynamic
// membership through seeded push-pull gossip, digest-addressed cache
// handoff on ring changes, and asynchronous successor replication of
// fresh diagnoses.
//
// # Membership
//
// Every elastic daemon runs a Manager seeded with its own advertised URL
// and zero or more peer URLs. Each gossip interval the manager announces
// itself (POST /v1/roster) to every member it knows and merges the
// responses, so a new node converges on the full member set — and the
// full set learns of the new node — within a round or two of joining
// through any single live peer. Members unseen for the health TTL are
// dropped. Membership is eventually consistent and advisory: the ring
// tolerates short-lived disagreement because submissions are
// digest-idempotent and the result cache is content-addressed — the
// worst case of a stale view is a recomputation or an extra hop, never a
// wrong answer.
//
// # Handoff and replication
//
// On every membership transition the manager diffs ring ownership over
// the digests resident in the local result cache (ring.Changed) and
// pushes the entries that now belong elsewhere — diagnosis text, original
// TTL clock, and semcache feature text — to their new owners
// (POST /v1/cache/entries). Receivers ingest cache-entry-first, so the
// PR 6 invariant ("a similarity vector never cites a diagnosis the cache
// can't serve") holds mid-flight, and they skip digests already resident,
// so pushes are idempotent and never disturb a live TTL clock. Nothing is
// deleted on the sender: moved entries age out by TTL, bounding staleness
// instead of risking a window with zero copies.
//
// Independently, every local cache insert is queued for replication to
// the digest's ring successors (Config.Replicate total copies), so the
// router's failover walk finds a warm answer when the owner dies. Both
// mechanisms are best-effort warm-path transfers, not durability: the
// store's journal and snapshots remain the only crash-safe copy.
package roster

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/ring"
)

// Config configures a Manager.
type Config struct {
	// SelfURL is this daemon's advertised base URL — its ring identity.
	// Required, and must be the URL peers can actually reach it at.
	SelfURL string
	// NodeID is the daemon's -node-id, shared with peers for operator
	// display ("" is fine).
	NodeID string
	// Peers are seed member URLs announced to at startup. One live peer
	// is enough to join a cluster of any size; peers that are down at
	// boot are retried every interval.
	Peers []string
	// Interval is the gossip cadence (default 2s).
	Interval time.Duration
	// TTL is the health gate: members not heard from (directly or
	// through gossip) for this long are dropped (default 4×Interval).
	TTL time.Duration
	// RingReplicas is the virtual-point count, which every ring party
	// must share (<= 0 selects ring.DefaultReplicas).
	RingReplicas int
	// Replicate is the total number of ring members that should hold
	// each fresh diagnosis warm (owner included): 2 means one successor
	// copy. <= 1 disables successor replication.
	Replicate int
	// Pool is the local pool whose cache is inventoried, pushed from,
	// and ingested into. Required.
	Pool *fleet.Pool
	// ClientOpts customize the clients used to reach peers (retry
	// budget, forwarded-by, ...).
	ClientOpts []client.Option
	// OnChange, if set, observes membership transitions (for the store's
	// member-event journal). Called from the manager's internal
	// goroutines, never concurrently with itself.
	OnChange func(added, removed []string)
	// Logf, if set, receives one line per membership change and per
	// failed push (default: silent).
	Logf func(format string, args ...any)

	// now is the test clock.
	now func() time.Time
}

// memberState is what the manager knows about one member.
type memberState struct {
	node     string
	lastSeen time.Time
}

// Manager runs the gossip loop and the handoff/replication machinery for
// one daemon. All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*memberState
	// current is the sorted member-URL list the ring was last built
	// from; ringNow is that ring (never nil after New).
	current []string
	ringNow *ring.Ring
	epoch   uint64
	clients map[string]*client.Client
	// suppress marks digests mid-ingest from a peer push: their
	// OnCacheInsert must not trigger replication, or two replicas would
	// bounce entries between each other forever.
	suppress map[string]int
	// changeWG tracks in-flight rebalance pushes so Close can wait.
	changeWG sync.WaitGroup
	closed   bool

	replCh   chan string
	stopRepl chan struct{}
	replDone chan struct{}

	ringChanges     atomic.Int64
	entriesPushed   atomic.Int64
	pushErrors      atomic.Int64
	entriesReceived atomic.Int64
	replicaPushed   atomic.Int64
	replicaReceived atomic.Int64
	replicaDropped  atomic.Int64
}

// replQueueDepth bounds the replication backlog; inserts beyond it drop
// their replication (best-effort warm path, counted, never blocking the
// pool's insert hook).
const replQueueDepth = 1024

// New builds a Manager. The replication worker starts immediately; the
// gossip loop runs only while Run is active. Call Close when done.
func New(cfg Config) *Manager {
	if cfg.SelfURL == "" || cfg.Pool == nil {
		panic("roster: Config.SelfURL and Config.Pool are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 4 * cfg.Interval
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Manager{
		cfg:      cfg,
		members:  make(map[string]*memberState),
		clients:  make(map[string]*client.Client),
		suppress: make(map[string]int),
		replCh:   make(chan string, replQueueDepth),
		stopRepl: make(chan struct{}),
		replDone: make(chan struct{}),
	}
	m.members[cfg.SelfURL] = &memberState{node: cfg.NodeID, lastSeen: cfg.now()}
	m.current = []string{cfg.SelfURL}
	m.ringNow = ring.New(cfg.RingReplicas)
	m.ringNow.Add(cfg.SelfURL)
	go m.replLoop()
	return m
}

// Run executes the gossip loop until ctx is canceled: one announce round
// immediately, then one per interval, expiring silent members as it goes.
func (m *Manager) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		m.gossipOnce(ctx)
		m.expire()
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// Close stops the replication worker, waits for in-flight handoff pushes,
// and releases peer connections. It does not stop Run — cancel its
// context first.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stopRepl)
	<-m.replDone
	m.changeWG.Wait()
	m.mu.Lock()
	for _, c := range m.clients {
		c.Close()
	}
	m.mu.Unlock()
}

// Snapshot returns the manager's current membership view, members sorted
// by URL.
func (m *Manager) Snapshot() api.Roster {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

func (m *Manager) snapshotLocked() api.Roster {
	r := api.Roster{Epoch: m.epoch, Members: make([]api.RosterMember, 0, len(m.members))}
	for url, st := range m.members {
		r.Members = append(r.Members, api.RosterMember{URL: url, Node: st.node, LastSeen: st.lastSeen})
	}
	sort.Slice(r.Members, func(i, j int) bool { return r.Members[i].URL < r.Members[j].URL })
	return r
}

// Members returns the sorted member URLs of the current view.
func (m *Manager) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.current))
	copy(out, m.current)
	return out
}

// Metrics reports the manager's counters for /metrics.
func (m *Manager) Metrics() api.HandoffMetrics {
	m.mu.Lock()
	size, epoch := len(m.members), m.epoch
	m.mu.Unlock()
	return api.HandoffMetrics{
		RosterSize:      size,
		RosterEpoch:     epoch,
		RingChanges:     m.ringChanges.Load(),
		EntriesPushed:   m.entriesPushed.Load(),
		PushErrors:      m.pushErrors.Load(),
		EntriesReceived: m.entriesReceived.Load(),
		ReplicaPushed:   m.replicaPushed.Load(),
		ReplicaReceived: m.replicaReceived.Load(),
	}
}

// HandleAnnounce merges one incoming gossip exchange (the server side of
// POST /v1/roster) and returns this node's view for the sender to merge
// back.
func (m *Manager) HandleAnnounce(ann api.RosterAnnounce) api.Roster {
	now := m.cfg.now()
	m.mu.Lock()
	// The announce itself is liveness evidence for its sender; relayed
	// members keep the (older) evidence timestamps they arrived with.
	m.mergeLocked(api.RosterMember{URL: ann.From.URL, Node: ann.From.Node, LastSeen: now}, now)
	for _, rm := range ann.Members {
		m.mergeLocked(rm, now)
	}
	snap, transition := m.refreshLocked()
	m.mu.Unlock()
	m.applyTransition(transition)
	return snap
}

// mergeLocked folds one member observation into the view. Caller holds
// m.mu.
func (m *Manager) mergeLocked(rm api.RosterMember, now time.Time) {
	if rm.URL == "" || rm.URL == m.cfg.SelfURL {
		return
	}
	seen := rm.LastSeen
	if seen.After(now) {
		seen = now // never trust a peer clock running ahead of ours
	}
	st, ok := m.members[rm.URL]
	if !ok {
		m.members[rm.URL] = &memberState{node: rm.Node, lastSeen: seen}
		return
	}
	if seen.After(st.lastSeen) {
		st.lastSeen = seen
	}
	if rm.Node != "" {
		st.node = rm.Node
	}
}

// transition captures one membership change for post-unlock processing.
type transition struct {
	old, new       []string
	added, removed []string
}

// refreshLocked recomputes the sorted member list and, when it differs
// from the ring's basis, bumps the epoch, rebuilds the ring, and returns
// the transition to apply. Caller holds m.mu.
func (m *Manager) refreshLocked() (api.Roster, *transition) {
	urls := make([]string, 0, len(m.members))
	for u := range m.members {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	if equalStrings(urls, m.current) {
		return m.snapshotLocked(), nil
	}
	tr := &transition{old: m.current, new: urls}
	tr.added, tr.removed = diffStrings(m.current, urls)
	m.current = urls
	m.epoch++
	r := ring.New(m.cfg.RingReplicas)
	r.Add(urls...)
	m.ringNow = r
	m.ringChanges.Add(1)
	return m.snapshotLocked(), tr
}

// applyTransition journals and rebalances one membership change (no-op
// for nil). Pushes run on their own goroutine so announce handling and
// the gossip loop never block on peer I/O.
func (m *Manager) applyTransition(tr *transition) {
	if tr == nil {
		return
	}
	m.cfg.Logf("roster: membership now %d members (+%d -%d)", len(tr.new), len(tr.added), len(tr.removed))
	if m.cfg.OnChange != nil {
		m.cfg.OnChange(tr.added, tr.removed)
	}
	m.changeWG.Add(1)
	go func() {
		defer m.changeWG.Done()
		m.rebalance(tr.old, tr.new)
	}()
}

// expire drops members not heard from within the TTL (self never
// expires).
func (m *Manager) expire() {
	cutoff := m.cfg.now().Add(-m.cfg.TTL)
	m.mu.Lock()
	for url, st := range m.members {
		if url == m.cfg.SelfURL {
			continue
		}
		if st.lastSeen.Before(cutoff) {
			delete(m.members, url)
		}
	}
	_, tr := m.refreshLocked()
	m.mu.Unlock()
	m.applyTransition(tr)
}

// gossipOnce announces to every known member plus the seed peers, merging
// each response. Unreachable targets are skipped (the TTL is what
// eventually drops them); a seed peer that is not yet a member keeps
// being retried so a cluster can form in any boot order.
func (m *Manager) gossipOnce(ctx context.Context) {
	m.mu.Lock()
	self := api.RosterMember{URL: m.cfg.SelfURL, Node: m.cfg.NodeID, LastSeen: m.cfg.now()}
	view := m.snapshotLocked().Members
	targets := make([]string, 0, len(m.current)+len(m.cfg.Peers))
	for _, u := range m.current {
		if u != m.cfg.SelfURL {
			targets = append(targets, u)
		}
	}
	m.mu.Unlock()
	for _, p := range m.cfg.Peers {
		if p == "" || p == m.cfg.SelfURL || containsString(targets, p) {
			continue
		}
		targets = append(targets, p)
	}

	ann := api.RosterAnnounce{From: self, Members: view}
	for _, target := range targets {
		cctx, cancel := context.WithTimeout(ctx, m.cfg.Interval)
		resp, err := m.clientFor(target).Announce(cctx, ann)
		cancel()
		if err != nil {
			continue
		}
		now := m.cfg.now()
		m.mu.Lock()
		// A successful exchange is direct evidence the target is alive,
		// whatever timestamps its roster carries.
		m.mergeLocked(api.RosterMember{URL: target, LastSeen: now}, now)
		for _, rm := range resp.Members {
			m.mergeLocked(rm, now)
		}
		_, tr := m.refreshLocked()
		m.mu.Unlock()
		m.applyTransition(tr)
	}
}

// clientFor returns (lazily building) the SDK client for a member URL.
func (m *Manager) clientFor(url string) *client.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.clients[url]
	if !ok {
		c = client.New(url, m.cfg.ClientOpts...)
		m.clients[url] = c
	}
	return c
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffStrings returns the elements of new not in old, and of old not in
// new. Both inputs are sorted.
func diffStrings(old, new []string) (added, removed []string) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i] == new[j]:
			i++
			j++
		case old[i] < new[j]:
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, new[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, new[j:]...)
	return added, removed
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
