package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/iosim"
)

// bigTrace builds a trace whose TEXT rendering is multi-megabyte, so
// 64KB chunking produces a long stream.
func bigTrace(t *testing.T, seed, files int) *darshan.Log {
	t.Helper()
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*23 + 3, NProcs: 4, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/router/big%02d.ex", seed),
	})
	for fi := 0; fi < files; fi++ {
		f := sim.OpenShared(fmt.Sprintf("/scratch/big-%02d-%04d.dat", seed, fi), iosim.POSIX, false, nil)
		for i := int64(0); i < 4; i++ {
			f.WriteAt(int(i)%4, i*4096, 4096)
		}
		f.Close()
	}
	return sim.Finalize()
}

func textBytes(t *testing.T, log *darshan.Log) []byte {
	t.Helper()
	s, err := darshan.TextString(log)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(s)
}

// chunked64 yields the body in 64KB reads (the acceptance shape).
type chunked64 struct{ data []byte }

func (r *chunked64) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := 64 << 10
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	n = copy(p[:n], r.data)
	r.data = r.data[n:]
	return n, nil
}

// startRouterCfg is startRouter with an explicit spool configuration.
func startRouterCfg(t *testing.T, nodes []*node, spoolDir string, spoolMax int64) (*Router, *client.Client, string) {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	rt, err := New(Config{
		Members:  urls,
		SpoolDir: spoolDir,
		SpoolMax: spoolMax,
		ClientOptions: []client.Option{
			client.WithRetry(1, time.Millisecond),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	c := client.New(srv.URL, client.WithPollInterval(5*time.Millisecond))
	t.Cleanup(c.Close)
	return rt, c, srv.URL
}

// ownerOf maps a canonical digest to the node id the ring assigns it.
func ownerOf(t *testing.T, nodes []*node, digest string) string {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	cl, err := client.NewCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	owner := cl.RouteDigest(digest)[0]
	return nodeByURL(nodes, owner).id
}

// TestRouterStreamZeroSpoolByDigestHeader is the tentpole's e2e: a
// multi-MB trace streamed in 64KB chunks through the router, placed on
// the ring owner of its asserted digest, with the router provably never
// spooling — the spool dir is unwritable, so any spool attempt would
// fail the request.
func TestRouterStreamZeroSpoolByDigestHeader(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	noSpool := t.TempDir()
	if err := os.Chmod(noSpool, 0o500); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(noSpool, 0o700) })
	_, c, _ := startRouterCfg(t, nodes, noSpool, 0)

	log := bigTrace(t, 1, 800)
	body := textBytes(t, log)
	if len(body) < 2<<20 {
		t.Fatalf("trace text is %d bytes; the scenario needs multi-MB", len(body))
	}
	digest, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := ownerOf(t, nodes, digest)

	ctx := context.Background()
	info, err := c.SubmitStream(ctx, &chunked64{data: body}, client.StreamOpts{Digest: digest})
	if err != nil {
		t.Fatalf("stream through router: %v", err)
	}
	if !strings.HasPrefix(info.ID, wantNode+"-") {
		t.Errorf("job %s did not land on digest owner %s", info.ID, wantNode)
	}
	if _, err := c.WaitDiagnosis(ctx, info.ID); err != nil {
		t.Fatalf("diagnosis through router: %v", err)
	}

	// The binary rendering of the same trace asserts the same digest,
	// reaches the same node, and is answered from its digest cache.
	var bin bytes.Buffer
	if err := darshan.Encode(&bin, log); err != nil {
		t.Fatal(err)
	}
	info2, err := c.SubmitStream(ctx, &chunked64{data: bin.Bytes()}, client.StreamOpts{Digest: digest})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info2.ID, wantNode+"-") {
		t.Errorf("binary rendering landed on %s, not owner %s", info2.ID, wantNode)
	}
	if !info2.CacheHit {
		t.Error("binary rendering was not a cache hit across renderings")
	}
}

// TestRouterStreamSpoolsWithoutHeader: the no-header path spools within
// its bound, derives the canonical digest itself, still reaches the
// owner, and cleans its spool up afterwards. Beyond the bound it refuses
// with trace_too_large.
func TestRouterStreamSpoolsWithoutHeader(t *testing.T) {
	nodes := startNodes(t, "n1", "n2")
	spool := t.TempDir()
	_, c, base := startRouterCfg(t, nodes, spool, 1<<20)

	log := routerTraceLog(t, 7)
	body := textBytes(t, log)
	digest, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := ownerOf(t, nodes, digest)

	resp, err := http.Post(base+"/v1/jobs/stream", "application/octet-stream", &chunked64{data: body})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("header-less stream: %s", resp.Status)
	}
	if got := resp.Header.Get(api.DigestHeader); got != digest {
		t.Errorf("router derived digest %q, want %q", got, digest)
	}
	var info api.JobInfo
	decodeJSON(t, resp, &info)
	if !strings.HasPrefix(info.ID, wantNode+"-") {
		t.Errorf("spooled stream landed on %s, not canonical owner %s", info.ID, wantNode)
	}

	// Spool cleaned up.
	entries, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d spool files left behind", len(entries))
	}

	// Over the bound: refused with trace_too_large and a hint to assert
	// the digest.
	big := textBytes(t, bigTrace(t, 2, 500))
	resp, err = http.Post(base+"/v1/jobs/stream", "application/octet-stream", &chunked64{data: big})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-bound spool = %s, want 413", resp.Status)
	}
	if _, err := c.Metrics(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRouterUploadSessionPreparsesBeforeFinalChunk: resumable upload
// through the router — opened on the digest owner, appended in 64KB
// chunks, with incremental pre-parse progress visible while chunks are
// still outstanding, completing into a job on the owning node.
func TestRouterUploadSessionPreparsesBeforeFinalChunk(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	_, c, _ := startRouterCfg(t, nodes, t.TempDir(), 0)
	ctx := context.Background()

	log := bigTrace(t, 3, 400)
	body := textBytes(t, log)
	digest, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := ownerOf(t, nodes, digest)

	up, err := c.UploadOpen(ctx, client.StreamOpts{Lane: api.LaneBatch, Digest: digest})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(up.ID, wantNode+"-") {
		t.Errorf("session %s not on digest owner %s", up.ID, wantNode)
	}

	const chunk = 64 << 10
	var offset int64
	preparsedMidway := false
	for off := 0; off < len(body); off += chunk {
		end := off + chunk
		if end > len(body) {
			end = len(body)
		}
		info, err := c.UploadAppend(ctx, up.ID, offset, body[off:end])
		if err != nil {
			t.Fatal(err)
		}
		offset = info.Offset
		if end < len(body) {
			st, err := c.UploadStatus(ctx, up.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.PreparsedLines > 0 && st.PreparsedModules > 0 {
				preparsedMidway = true
			}
		}
	}
	if !preparsedMidway {
		t.Error("pre-parsing had not started before the final chunk")
	}

	job, err := c.UploadComplete(ctx, up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.ID, wantNode+"-") {
		t.Errorf("job %s not on owner %s", job.ID, wantNode)
	}
	if job.Lane != api.LaneBatch {
		t.Errorf("job lane %s, want batch", job.Lane)
	}
	if _, err := c.WaitDiagnosis(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
}

// TestRouterPropagatesClientCancelToHungNode is the regression test for
// the context-cancellation bugfix: when the inbound client hangs up, the
// router's outbound call to a hung node must be canceled promptly — the
// goroutine must not stay parked until the transport timeout.
func TestRouterPropagatesClientCancelToHungNode(t *testing.T) {
	nodeSawCancel := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Current.String())
		if r.Method == http.MethodPost {
			// A wedged daemon: accepts the trace, then never answers.
			// (Reading the body first matters — it is what lets net/http
			// watch the connection and cancel r.Context() on disconnect,
			// exactly like a real iofleetd that read the trace and then
			// hung in the pool.)
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			close(nodeSawCancel)
			return
		}
		w.Write([]byte("{}"))
	}))
	t.Cleanup(hung.Close)

	rt, err := New(Config{
		Members:       []string{hung.URL},
		ClientOptions: []client.Option{client.WithRetry(1, time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader("trace"))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel() // the client hangs up mid-forward
	}()
	start := time.Now()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("canceled request reported success")
	}
	// The hung node's handler must observe the cancellation ~immediately,
	// proving the router plumbed the inbound context into the forward.
	select {
	case <-nodeSawCancel:
	case <-time.After(3 * time.Second):
		t.Fatal("hung node never saw the cancellation: router holds its goroutine past client disconnect")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cancellation took %v to propagate", elapsed)
	}
}

// TestRouterPropagatesRetryAfter: a daemon's Retry-After hint on a
// retryable refusal must survive the router hop — it is what floors the
// SDK's adaptive backoff.
func TestRouterPropagatesRetryAfter(t *testing.T) {
	daemon := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Current.String())
		w.Header().Set(api.RetryAfterHeader, "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.Errorf(api.CodeQuotaExceeded, "tenant at quota"))
	}))
	t.Cleanup(daemon.Close)

	rt, err := New(Config{
		Members:       []string{daemon.URL},
		ClientOptions: []client.Option{client.WithRetry(1, time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("router response = %s, want 429", resp.Status)
	}
	if got := resp.Header.Get(api.RetryAfterHeader); got != "7" {
		t.Errorf("router %s = %q, want the daemon's hint %q", api.RetryAfterHeader, got, "7")
	}
}

// routerTraceLog is routerTrace's decoded form (the helpers in
// router_test.go return encoded bytes).
func routerTraceLog(t *testing.T, seed int) *darshan.Log {
	t.Helper()
	log, err := darshan.Decode(bytes.NewReader(routerTrace(t, seed)))
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
