package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/server"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

// node is one in-process daemon: a real pool behind the real server mux.
type node struct {
	id   string
	pool *fleet.Pool
	srv  *httptest.Server
}

func startNodes(t *testing.T, ids ...string) []*node {
	t.Helper()
	index := knowledge.BuildIndex()
	nodes := make([]*node, len(ids))
	for i, id := range ids {
		pool := fleet.New(llm.NewSim(), fleet.Config{
			Workers: 2, NodeID: id,
			Agent: ioagent.Options{Index: index},
		})
		srv := httptest.NewServer(server.NewMux(server.Config{Pool: pool, NodeID: id}))
		nodes[i] = &node{id: id, pool: pool, srv: srv}
		t.Cleanup(pool.Close)
		t.Cleanup(srv.Close)
	}
	return nodes
}

// startRouter fronts the nodes with a Router served over httptest and
// returns it with an SDK client pointed at the router — callers talk to
// the cluster exactly as they would to one daemon — plus the router's
// base URL for raw HTTP assertions.
func startRouter(t *testing.T, nodes []*node) (*Router, *client.Client, string) {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	rt, err := New(Config{
		Members: urls,
		ClientOptions: []client.Option{
			client.WithRetry(1, time.Millisecond), // fast failover in tests
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	c := client.New(srv.URL, client.WithPollInterval(5*time.Millisecond))
	t.Cleanup(c.Close)
	return rt, c, srv.URL
}

func routerTrace(t *testing.T, seed int) []byte {
	t.Helper()
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*19 + 7, NProcs: 2, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/router/job%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/rt-%03d.dat", seed), iosim.POSIX, false, nil)
	for i := int64(0); i < 6; i++ {
		f.WriteAt(0, i*4096, 4096)
	}
	f.Close()
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, sim.Finalize()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func nodeByURL(nodes []*node, url string) *node {
	for _, n := range nodes {
		if n.srv.URL == url {
			return n
		}
	}
	return nil
}

// TestRouterForwardsByOwnership: the router is transparent — the SDK
// round-trips through it as if it were one daemon — and each submission
// lands on the ring owner of its bytes.
func TestRouterForwardsByOwnership(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	rt, c, _ := startRouter(t, nodes)
	ctx := context.Background()

	owners := map[string]bool{}
	for seed := 0; seed < 5; seed++ {
		raw := routerTrace(t, seed)
		owner := nodeByURL(nodes, rt.Route(raw)[0])
		info, err := c.Submit(ctx, api.SubmitRequest{Lane: api.LaneBatch, Tenant: "acme", Trace: raw})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(info.ID, owner.id+"-job-") {
			t.Fatalf("seed %d: job %s not on ring owner %s", seed, info.ID, owner.id)
		}
		owners[owner.id] = true
		diag, err := c.WaitDiagnosis(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if diag.Text == "" || diag.Lane != api.LaneBatch {
			t.Fatalf("seed %d: diagnosis = %+v", seed, diag)
		}
	}
	// Spread is a property of the ring, not of the 5 digests we happened
	// to submit (an unlucky port draw can skew a small sample onto one
	// node): probe enough distinct digests that a single-owner result
	// means the ring really is degenerate.
	for seed := 5; seed < 40 && len(owners) < 2; seed++ {
		owners[nodeByURL(nodes, rt.Route(routerTrace(t, seed))[0]).id] = true
	}
	if len(owners) < 2 {
		t.Errorf("40 digests all landed on one node; sharding is not spreading (owners=%v)", owners)
	}

	// The merged listing sees every job regardless of node.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Errorf("merged listing = %d jobs, want 5", len(jobs))
	}
}

// TestRouterWarmDigestSurvivesRouterRestart is the acceptance scenario:
// ownership is a pure function of the member list, so a brand-new router
// finds a previously diagnosed trace in the owning node's cache.
func TestRouterWarmDigestSurvivesRouterRestart(t *testing.T) {
	nodes := startNodes(t, "n1", "n2")
	_, c1, _ := startRouter(t, nodes)
	ctx := context.Background()

	raw := routerTrace(t, 30)
	info, err := c1.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.WaitDiagnosis(ctx, info.ID); err != nil {
		t.Fatal(err)
	}

	// "Restart": an entirely fresh router over the same member list.
	_, c2, _ := startRouter(t, nodes)
	hit, err := c2.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Errorf("restarted router missed the warm digest: %+v", hit)
	}
	if nodeFromJob(hit.ID) != nodeFromJob(info.ID) {
		t.Errorf("ownership moved across router restart: %s -> %s", info.ID, hit.ID)
	}
}

func nodeFromJob(id string) string {
	if i := strings.LastIndex(id, "-job-"); i > 0 {
		return id[:i]
	}
	return ""
}

// TestRouterFailsOverToSuccessor is the ISSUE failover scenario: owner
// down -> the successor serves the submission; the result cached at the
// successor is found again on re-lookup (an idempotent resubmit of the
// same bytes) while the owner stays down.
func TestRouterFailsOverToSuccessor(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	rt, c, _ := startRouter(t, nodes)
	ctx := context.Background()

	raw := routerTrace(t, 40)
	route := rt.Route(raw)
	owner, successor := nodeByURL(nodes, route[0]), nodeByURL(nodes, route[1])
	owner.srv.Close()

	info, err := c.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, successor.id+"-job-") {
		t.Fatalf("job %s did not fail over to successor %s", info.ID, successor.id)
	}
	diag, err := c.WaitDiagnosis(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Text == "" {
		t.Fatal("empty diagnosis from successor")
	}

	// Re-lookup: the owner is still down, the successor's cache answers.
	again, err := c.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || !strings.HasPrefix(again.ID, successor.id+"-job-") {
		t.Fatalf("re-lookup = %+v, want cache hit on %s", again, successor.id)
	}
}

// TestRouterDeadNodeJobLookup: polling a job on a dead node reports
// job_not_found (the SDK recovery path: resubmit idempotently), not a
// hang or an opaque 5xx.
func TestRouterDeadNodeJobLookup(t *testing.T) {
	nodes := startNodes(t, "n1", "n2")
	rt, c, _ := startRouter(t, nodes)
	ctx := context.Background()

	raw := routerTrace(t, 50)
	info, err := c.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDiagnosis(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	nodeByURL(nodes, rt.Route(raw)[0]).srv.Close()

	_, err = c.Job(ctx, info.ID)
	if api.ErrorCode(err) != api.CodeJobNotFound {
		t.Fatalf("dead-node lookup = %v, want job_not_found", err)
	}

	// And the recovery path works end to end: resubmit -> successor.
	re, err := c.Submit(ctx, api.SubmitRequest{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDiagnosis(ctx, re.ID); err != nil {
		t.Fatal(err)
	}
}

// TestRouterAggregatesMetrics: /metrics via the router sums the nodes, in
// both renderings.
func TestRouterAggregatesMetrics(t *testing.T) {
	nodes := startNodes(t, "n1", "n2", "n3")
	_, c, base := startRouter(t, nodes)
	ctx := context.Background()

	const submissions = 6
	for seed := 0; seed < submissions; seed++ {
		info, err := c.Submit(ctx, api.SubmitRequest{Tenant: "acme", Trace: routerTrace(t, 60+seed)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitDiagnosis(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Submitted != submissions || m.Done != submissions {
		t.Errorf("aggregate submitted/done = %d/%d, want %d", m.Submitted, m.Done, submissions)
	}
	if m.Tenants["acme"] != submissions {
		t.Errorf("aggregate tenants = %v, want acme:%d", m.Tenants, submissions)
	}
	if m.Workers != 6 { // 3 nodes x 2 workers
		t.Errorf("aggregate workers = %d, want 6", m.Workers)
	}

	// Prometheus rendering carries the same aggregate.
	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf("fleet_jobs_submitted_total %d", submissions),
		`fleet_tenant_jobs_total{tenant="acme"} 6`,
		"fleet_owned_digests 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("aggregate exposition missing %q", want)
		}
	}
}

// TestRouterClusterHealth: the roster endpoint reports node ids, health,
// and the router's identity, flipping when a node dies.
func TestRouterClusterHealth(t *testing.T) {
	nodes := startNodes(t, "n1", "n2")
	rt, _, _ := startRouter(t, nodes)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)

	fetch := func() api.ClusterHealth {
		resp, err := http.Get(srv.URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h api.ClusterHealth
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := fetch()
	if h.Router != "router" || len(h.Nodes) != 2 {
		t.Fatalf("health = %+v, want router id and 2 nodes", h)
	}
	for _, row := range h.Nodes {
		if !row.Healthy || row.Node == "" {
			t.Errorf("row %+v, want healthy with a node id", row)
		}
	}

	nodes[1].srv.Close()
	h = fetch()
	unhealthy := 0
	for _, row := range h.Nodes {
		if !row.Healthy {
			unhealthy++
		}
	}
	if unhealthy != 1 {
		t.Errorf("after killing one node, unhealthy rows = %d, want 1", unhealthy)
	}
}

// TestRouterLoopDetected: a request that already crossed a router is
// refused with loop_detected — both a synthetic forwarded request and a
// real router-behind-router misconfiguration.
func TestRouterLoopDetected(t *testing.T) {
	nodes := startNodes(t, "n1")
	rt, _, _ := startRouter(t, nodes)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)

	// Synthetic: any forwarded request bounces.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs", nil)
	req.Header.Set(api.ForwardedHeader, "other-router")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusLoopDetected || e.Code != api.CodeLoopDetected {
		t.Errorf("forwarded request = %s / %q, want 508 loop_detected", resp.Status, e.Code)
	}

	// Real misconfiguration: a second router whose member list names the
	// first router. Submissions must fail with loop_detected, not bounce.
	rt2, err := New(Config{
		ID:      "outer",
		Members: []string{srv.URL},
		ClientOptions: []client.Option{
			client.WithRetry(1, time.Millisecond),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Close)
	srv2 := httptest.NewServer(rt2.Handler())
	t.Cleanup(srv2.Close)
	c2 := client.New(srv2.URL)
	t.Cleanup(c2.Close)
	_, err = c2.Submit(context.Background(), api.SubmitRequest{Trace: routerTrace(t, 70)})
	if api.ErrorCode(err) != api.CodeLoopDetected {
		t.Errorf("router-behind-router submit = %v, want loop_detected", err)
	}
}
