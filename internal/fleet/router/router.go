// Package router implements the iofleet-router HTTP front: a thin,
// stateless dispatch layer that makes several iofleetd nodes look like
// one daemon.
//
// The router speaks the internal/fleet/api contract unchanged on both
// sides. Inbound, it serves the same endpoints as a daemon; outbound, it
// forwards each call through the SDK's cluster mode
// (internal/fleet/client.Cluster), which owns the consistent-hash ring
// (internal/fleet/ring) over trace routing keys. Because ownership is a
// pure function of the member list, the router keeps no state worth
// preserving: restart it, run several of them side by side, they all
// route identically.
//
// What the router guarantees — and what it does not:
//
//   - Submissions go to the ring owner of the trace's canonical content
//     digest; if the owner is down or draining, the next ring successor
//     takes the work. The daemons' digest-idempotent submit contract is
//     what makes that safe.
//   - Streaming submissions (POST /v1/jobs/stream) that assert
//     api.DigestHeader are placed by the header alone: the body flows
//     through the router as a pure stream — zero buffering, zero spool,
//     constant router memory no matter the trace size. Without the
//     header the router cannot know the owner before seeing the bytes,
//     so it spools the body to disk within a configured bound, derives
//     the canonical digest itself, and forwards the spooled stream to
//     the owner with the header set.
//   - Upload sessions (/v1/uploads) open on the claimed digest's owner
//     (or the first reachable node) and every later session call follows
//     the node prefix in the session ID — session state is node-local.
//   - Job lookups follow the node prefix in the job ID back to the node
//     that accepted it. If that node is gone, lookups report
//     job_not_found with a hint to resubmit — the router cannot conjure
//     state that died with a node (run daemons with -state-dir for that).
//   - /metrics aggregates all reachable nodes (JSON and Prometheus);
//     /v1/cluster reports per-node health.
//   - Requests that already passed through a router are refused with
//     loop_detected: member lists must point at daemons, never at
//     routers.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/server"
)

// Config assembles a router.
type Config struct {
	// ID is the router's fleet identity: stamped on responses
	// (api.NodeHeader) and on forwarded requests (api.ForwardedHeader)
	// for loop detection. Default "router".
	ID string
	// Members are the daemon base URLs the digest space is sharded over.
	// Order does not matter — ownership is order-independent — but every
	// router and cluster-mode client of one fleet must agree on the set.
	Members []string
	// Replicas is the ring's virtual-node count (default
	// ring.DefaultReplicas); all parties must agree on it too.
	Replicas int
	// MaxBody bounds submission size in bytes (default 64 MiB). The
	// router enforces it before forwarding, so an oversized body is
	// refused once instead of once per failover candidate.
	MaxBody int64
	// SpoolDir receives the temporary spool files for streaming
	// submissions that arrive without api.DigestHeader (default: the OS
	// temp dir). Digest-asserted streams never touch it.
	SpoolDir string
	// SpoolMax bounds one spooled stream in bytes (default MaxBody);
	// beyond it the submission is refused with trace_too_large. This is
	// the router's only per-stream storage cost — its memory stays
	// constant either way.
	SpoolMax int64
	// ClientOptions tune the per-node SDK clients (retry budget, poll
	// interval, HTTP client). The router prepends its own defaults: 2
	// attempts per node per call, so failover to a successor is fast.
	ClientOptions []client.Option
	// RosterRefresh, when positive, makes the router follow an elastic
	// fleet's live roster: every interval it asks a reachable member for
	// GET /v1/roster and rebuilds its ring over the answer. Members then
	// only seed discovery — joins and departures reach the router without
	// a restart. Poll failures (static daemons answer roster_disabled,
	// dead members time out) keep the last known-good member list: a
	// router never routes over an empty ring because gossip hiccuped.
	// Zero disables polling; the member list stays fixed for the
	// router's lifetime.
	RosterRefresh time.Duration
}

// Router is the dispatch layer. Build with New, serve Handler.
type Router struct {
	cfg     Config
	cluster *client.Cluster

	stopRoster chan struct{} // nil unless RosterRefresh > 0
	rosterDone chan struct{}
}

// New validates the member list and builds the router.
func New(cfg Config) (*Router, error) {
	if cfg.ID == "" {
		cfg.ID = "router"
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = os.TempDir()
	}
	if cfg.SpoolMax <= 0 {
		cfg.SpoolMax = cfg.MaxBody
	}
	opts := []client.Option{
		client.WithRetry(2, 100*time.Millisecond),
		client.WithForwardedBy(cfg.ID),
	}
	if cfg.Replicas > 0 {
		opts = append(opts, client.WithRingReplicas(cfg.Replicas))
	}
	opts = append(opts, cfg.ClientOptions...)
	cl, err := client.NewCluster(cfg.Members, opts...)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	rt := &Router{cfg: cfg, cluster: cl}
	if cfg.RosterRefresh > 0 {
		rt.stopRoster = make(chan struct{})
		rt.rosterDone = make(chan struct{})
		go rt.rosterPoll()
	}
	return rt, nil
}

// rosterPoll follows the fleet's live roster: one refresh immediately (so
// a router seeded with a single member discovers the rest before serving
// its first request), then one per interval until Close.
func (rt *Router) rosterPoll() {
	defer close(rt.rosterDone)
	rt.refreshRoster()
	t := time.NewTicker(rt.cfg.RosterRefresh)
	defer t.Stop()
	for {
		select {
		case <-rt.stopRoster:
			return
		case <-t.C:
			rt.refreshRoster()
		}
	}
}

// refreshRoster asks a reachable member for the current roster and swaps
// the cluster onto it. Any failure keeps the current member list.
func (rt *Router) refreshRoster() {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.RosterRefresh)
	defer cancel()
	roster, err := rt.cluster.Roster(ctx)
	if err != nil {
		return // static fleet or transient outage: last known-good members stand
	}
	urls := make([]string, 0, len(roster.Members))
	for _, m := range roster.Members {
		urls = append(urls, m.URL)
	}
	added, removed := rt.cluster.UpdateMembers(urls)
	if len(added)+len(removed) > 0 {
		log.Printf("iofleet-router: roster epoch %d: members now %d (+%v -%v)",
			roster.Epoch, len(rt.cluster.Members()), added, removed)
	}
}

// Close stops the roster poller (when running) and releases the pooled
// connections to every member.
func (rt *Router) Close() {
	if rt.stopRoster != nil {
		close(rt.stopRoster)
		<-rt.rosterDone
	}
	rt.cluster.Close()
}

// Route exposes the failover order for a submission's bytes (owner
// first), for tests and operational debugging.
func (rt *Router) Route(trace []byte) []string { return rt.cluster.Route(trace) }

// Handler builds the router's HTTP surface. Like the daemon's, the whole
// surface — catch-all included — sits behind version negotiation, plus
// the router-only loop check.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := mux.HandleFunc

	handle("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		trace, apiErr := readBody(w, r, rt.cfg.MaxBody)
		if apiErr != nil {
			server.WriteError(w, apiErr)
			return
		}
		info, err := rt.cluster.Submit(r.Context(), api.SubmitRequest{
			Lane:   api.Lane(r.URL.Query().Get("lane")),
			Tenant: r.URL.Query().Get("tenant"),
			Trace:  trace,
		})
		if err != nil {
			rt.writeErr(w, "submit", err)
			return
		}
		server.WriteJSON(w, http.StatusAccepted, info)
	})
	// Streaming submission. With api.DigestHeader the router never reads
	// the body at all: placement comes from the header, and the bytes
	// pipe straight from the inbound request to the owning daemon.
	// Without it, spool-then-route: the body lands in a bounded temp
	// file, the router derives the canonical digest itself (so both
	// renderings of a trace still reach one owner), and the spool
	// streams on with the header set.
	handle("POST /v1/jobs/stream", func(w http.ResponseWriter, r *http.Request) {
		opts := client.StreamOpts{
			Lane:   api.Lane(r.URL.Query().Get("lane")),
			Tenant: r.URL.Query().Get("tenant"),
			Digest: r.Header.Get(api.DigestHeader),
		}
		if opts.Digest != "" {
			if !darshan.ValidContentDigest(opts.Digest) {
				server.WriteError(w, api.Errorf(api.CodeBadRequest,
					"malformed %s header (want 64 hex chars)", api.DigestHeader))
				return
			}
			info, err := rt.cluster.SubmitStream(r.Context(),
				http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody), opts)
			if err != nil {
				rt.writeErr(w, "stream submit", err)
				return
			}
			w.Header().Set(api.DigestHeader, opts.Digest)
			server.WriteJSON(w, http.StatusAccepted, info)
			return
		}
		rt.spoolAndRoute(w, r, opts)
	})
	// Upload sessions: open on the claimed digest's owner (cache
	// locality for the eventual job), then follow the session ID's node
	// prefix for every append/status/complete/abort.
	handle("POST /v1/uploads", func(w http.ResponseWriter, r *http.Request) {
		opts := client.StreamOpts{
			Lane:   api.Lane(r.URL.Query().Get("lane")),
			Tenant: r.URL.Query().Get("tenant"),
			Digest: r.Header.Get(api.DigestHeader),
		}
		if opts.Digest != "" && !darshan.ValidContentDigest(opts.Digest) {
			server.WriteError(w, api.Errorf(api.CodeBadRequest,
				"malformed %s header (want 64 hex chars)", api.DigestHeader))
			return
		}
		info, err := rt.cluster.UploadOpen(r.Context(), opts)
		if err != nil {
			rt.writeErr(w, "open upload", err)
			return
		}
		server.WriteJSON(w, http.StatusCreated, info)
	})
	handle("PATCH /v1/uploads/{id}", func(w http.ResponseWriter, r *http.Request) {
		offset, perr := strconv.ParseInt(r.Header.Get(api.UploadOffsetHeader), 10, 64)
		if perr != nil || offset < 0 {
			server.WriteError(w, api.Errorf(api.CodeBadRequest,
				"missing or malformed %s header", api.UploadOffsetHeader))
			return
		}
		chunk, apiErr := readBody(w, r, rt.cfg.MaxBody)
		if apiErr != nil {
			server.WriteError(w, apiErr)
			return
		}
		info, err := rt.cluster.UploadAppend(r.Context(), r.PathValue("id"), offset, chunk)
		if err != nil {
			rt.writeErr(w, "append upload", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, info)
	})
	handle("GET /v1/uploads/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := rt.cluster.UploadStatus(r.Context(), r.PathValue("id"))
		if err != nil {
			rt.writeErr(w, "upload status", err)
			return
		}
		w.Header().Set(api.UploadOffsetHeader, strconv.FormatInt(info.Offset, 10))
		server.WriteJSON(w, http.StatusOK, info)
	})
	handle("DELETE /v1/uploads/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := rt.cluster.UploadAbort(r.Context(), r.PathValue("id")); err != nil {
			rt.writeErr(w, "abort upload", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	handle("POST /v1/uploads/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		info, err := rt.cluster.UploadComplete(r.Context(), r.PathValue("id"))
		if err != nil {
			rt.writeErr(w, "complete upload", err)
			return
		}
		server.WriteJSON(w, http.StatusAccepted, info)
	})
	handle("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		infos, err := rt.cluster.Jobs(r.Context())
		if err != nil {
			rt.writeErr(w, "list jobs", err)
			return
		}
		if infos == nil {
			infos = []api.JobInfo{}
		}
		server.WriteJSON(w, http.StatusOK, infos)
	})
	handle("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := rt.cluster.Job(r.Context(), r.PathValue("id"))
		if err != nil {
			rt.writeErr(w, "job", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, info)
	})
	handle("GET /v1/jobs/{id}/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		diag, err := rt.cluster.Diagnosis(r.Context(), r.PathValue("id"))
		if err != nil {
			rt.writeErr(w, "diagnosis", err)
			return
		}
		if server.WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, diag.Text)
			return
		}
		server.WriteJSON(w, http.StatusOK, diag)
	})
	// Knowledge plane (api 1.4): mutations broadcast to every member —
	// each daemon stages and promotes its own ring shard of the corpus —
	// status aggregates, and search scatter-gathers across shards. The
	// router stays stateless: the corpus lives on the daemons.
	handle("POST /v1/knowledge/docs", func(w http.ResponseWriter, r *http.Request) {
		body, apiErr := readBody(w, r, rt.cfg.MaxBody)
		if apiErr != nil {
			server.WriteError(w, apiErr)
			return
		}
		var req api.KnowledgeUpsertRequest
		if err := json.Unmarshal(body, &req); err != nil {
			server.WriteError(w, api.Errorf(api.CodeBadRequest, "malformed JSON body: %v", err))
			return
		}
		if err := rt.cluster.KnowledgeUpsert(r.Context(), req); err != nil {
			rt.writeErr(w, "knowledge upsert", err)
			return
		}
		ks, err := rt.cluster.KnowledgeStatus(r.Context())
		if err != nil {
			rt.writeErr(w, "knowledge status", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, ks)
	})
	handle("POST /v1/knowledge/swap", func(w http.ResponseWriter, r *http.Request) {
		epoch, err := rt.cluster.KnowledgeSwap(r.Context())
		if err != nil {
			rt.writeErr(w, "knowledge swap", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, api.KnowledgeSwapResponse{Epoch: epoch})
	})
	handle("GET /v1/knowledge", func(w http.ResponseWriter, r *http.Request) {
		ks, err := rt.cluster.KnowledgeStatus(r.Context())
		if err != nil {
			rt.writeErr(w, "knowledge status", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, ks)
	})
	handle("POST /v1/knowledge/search", func(w http.ResponseWriter, r *http.Request) {
		body, apiErr := readBody(w, r, rt.cfg.MaxBody)
		if apiErr != nil {
			server.WriteError(w, apiErr)
			return
		}
		var req api.KnowledgeSearchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			server.WriteError(w, api.Errorf(api.CodeBadRequest, "malformed JSON body: %v", err))
			return
		}
		resp, err := rt.cluster.KnowledgeSearch(r.Context(), req)
		if err != nil {
			rt.writeErr(w, "knowledge search", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, resp)
	})
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m, err := rt.cluster.Metrics(r.Context())
		if err != nil {
			rt.writeErr(w, "metrics", err)
			return
		}
		if server.WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			server.WritePrometheus(w, m)
			return
		}
		server.WriteJSON(w, http.StatusOK, m)
	})
	handle("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		h := rt.cluster.Health(r.Context())
		h.Router = rt.cfg.ID
		server.WriteJSON(w, http.StatusOK, h)
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	handle("/", func(w http.ResponseWriter, r *http.Request) {
		server.WriteError(w, api.Errorf(api.CodeNotFound, "unknown endpoint %s", r.URL.Path))
	})

	// Loop check inside the version middleware: a request that already
	// crossed a router means the member list points at a router, and
	// forwarding it again would bounce until something times out.
	loopChecked := func(w http.ResponseWriter, r *http.Request) {
		if via := r.Header.Get(api.ForwardedHeader); via != "" {
			server.WriteError(w, api.Errorf(api.CodeLoopDetected,
				"request already routed by %q reached router %q; member lists must name daemons, not routers", via, rt.cfg.ID))
			return
		}
		mux.ServeHTTP(w, r)
	}
	return server.WithVersion(rt.cfg.ID, loopChecked)
}

// spoolAndRoute handles a header-less streaming submission: the body is
// copied to a bounded temp file (the router's memory stays flat), the
// canonical content digest is derived from the spooled bytes — honoring
// a trailer-asserted digest as an integrity check on the way — and the
// spool streams to the digest's ring owner with api.DigestHeader set, so
// the daemon-side path is identical to a well-behaved client's.
func (rt *Router) spoolAndRoute(w http.ResponseWriter, r *http.Request, opts client.StreamOpts) {
	f, err := os.CreateTemp(rt.cfg.SpoolDir, "iofleet-spool-*")
	if err != nil {
		log.Printf("iofleet-router: create spool: %v", err)
		server.WriteError(w, api.Errorf(api.CodeInternal, "internal error; see router log"))
		return
	}
	defer func() {
		f.Close()
		os.Remove(f.Name())
	}()

	if _, err := io.Copy(f, http.MaxBytesReader(w, r.Body, rt.cfg.SpoolMax)); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			server.WriteError(w, api.Errorf(api.CodeTraceTooLarge,
				"stream exceeds the %d-byte spool bound (router -spool-max); assert %s to stream without spooling",
				rt.cfg.SpoolMax, api.DigestHeader))
			return
		}
		log.Printf("iofleet-router: spool stream from %s: %v", r.RemoteAddr, err)
		server.WriteError(w, api.Errorf(api.CodeBadRequest, "read body: request aborted"))
		return
	}

	// Canonicalize: both renderings of one trace must reach one owner.
	if _, err := f.Seek(0, io.SeekStart); err == nil {
		if log1, derr := darshan.Decode(f); derr == nil {
			if cd, cerr := darshan.ContentDigest(log1); cerr == nil {
				opts.Digest = cd
			}
		} else if _, serr := f.Seek(0, io.SeekStart); serr == nil {
			if log2, terr := darshan.ParseText(f); terr == nil {
				if cd, cerr := darshan.ContentDigest(log2); cerr == nil {
					opts.Digest = cd
				}
			}
		}
	}
	// The body has been consumed, so the client's on-the-fly trailer (if
	// any) is readable now; a mismatch is refused here, one hop early.
	if claim := r.Trailer.Get(api.DigestHeader); claim != "" && opts.Digest != "" && claim != opts.Digest {
		server.WriteError(w, api.Errorf(api.CodeDigestMismatch,
			"trailer %s %.12s… does not match the received trace (%.12s…)", api.DigestHeader, claim, opts.Digest))
		return
	}
	// Undecodable spools keep an empty Digest: the stream still forwards
	// (to the digest-less route) and the owning daemon answers bad_trace
	// with its usual server-side detail.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		log.Printf("iofleet-router: rewind spool: %v", err)
		server.WriteError(w, api.Errorf(api.CodeInternal, "internal error; see router log"))
		return
	}
	info, err := rt.cluster.SubmitStream(r.Context(), f, opts)
	if err != nil {
		rt.writeErr(w, "stream submit (spooled)", err)
		return
	}
	if opts.Digest != "" {
		w.Header().Set(api.DigestHeader, opts.Digest)
	}
	server.WriteJSON(w, http.StatusAccepted, info)
}

// readBody slurps a bounded request body (buffered submissions, upload
// chunks), mapping an overrun onto the same trace_too_large envelope a
// daemon serves. Validation stays with the owning daemon (bad_trace);
// the router only decodes bytes where placement requires it (RouteKey,
// spoolAndRoute).
func readBody(w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, *api.Error) {
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, api.Errorf(api.CodeTraceTooLarge,
				"trace body exceeds the %d-byte limit (router -max-body)", maxBody)
		}
		log.Printf("iofleet-router: read submit body from %s: %v", r.RemoteAddr, err)
		return nil, api.Errorf(api.CodeBadRequest, "read body: request aborted")
	}
	return buf, nil
}

// writeErr maps a cluster-call failure onto the wire: api errors pass
// through on their canonical status — with any Retry-After hint the
// owning daemon sent (quota, drain) re-stamped, so the SDK's backoff
// floor works identically behind a router; anything else (a decode bug,
// an unclassified transport corner) is logged here and served as the
// opaque internal envelope.
func (rt *Router) writeErr(w http.ResponseWriter, op string, err error) {
	hint := client.RetryAfterHint(err)
	if hint <= 0 {
		hint = time.Second // the router's own retryable refusals hint too
	}
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		server.WriteErrorHinted(w, apiErr, hint)
		return
	}
	log.Printf("iofleet-router: %s: %v", op, err)
	server.WriteErrorHinted(w, api.Errorf(api.CodeInternal, "internal error; see router log"), hint)
}
