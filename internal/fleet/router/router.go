// Package router implements the iofleet-router HTTP front: a thin,
// stateless dispatch layer that makes several iofleetd nodes look like
// one daemon.
//
// The router speaks the internal/fleet/api contract unchanged on both
// sides. Inbound, it serves the same endpoints as a daemon; outbound, it
// forwards each call through the SDK's cluster mode
// (internal/fleet/client.Cluster), which owns the consistent-hash ring
// (internal/fleet/ring) over trace routing keys. Because ownership is a
// pure function of the member list, the router keeps no state worth
// preserving: restart it, run several of them side by side, they all
// route identically.
//
// What the router guarantees — and what it does not:
//
//   - Submissions go to the ring owner of the trace bytes; if the owner
//     is down or draining, the next ring successor takes the work. The
//     daemons' digest-idempotent submit contract is what makes that safe.
//   - Job lookups follow the node prefix in the job ID back to the node
//     that accepted it. If that node is gone, lookups report
//     job_not_found with a hint to resubmit — the router cannot conjure
//     state that died with a node (run daemons with -state-dir for that).
//   - /metrics aggregates all reachable nodes (JSON and Prometheus);
//     /v1/cluster reports per-node health.
//   - Requests that already passed through a router are refused with
//     loop_detected: member lists must point at daemons, never at
//     routers.
package router

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"ioagent/internal/fleet/api"
	"ioagent/internal/fleet/client"
	"ioagent/internal/fleet/server"
)

// Config assembles a router.
type Config struct {
	// ID is the router's fleet identity: stamped on responses
	// (api.NodeHeader) and on forwarded requests (api.ForwardedHeader)
	// for loop detection. Default "router".
	ID string
	// Members are the daemon base URLs the digest space is sharded over.
	// Order does not matter — ownership is order-independent — but every
	// router and cluster-mode client of one fleet must agree on the set.
	Members []string
	// Replicas is the ring's virtual-node count (default
	// ring.DefaultReplicas); all parties must agree on it too.
	Replicas int
	// MaxBody bounds submission size in bytes (default 64 MiB). The
	// router enforces it before forwarding, so an oversized body is
	// refused once instead of once per failover candidate.
	MaxBody int64
	// ClientOptions tune the per-node SDK clients (retry budget, poll
	// interval, HTTP client). The router prepends its own defaults: 2
	// attempts per node per call, so failover to a successor is fast.
	ClientOptions []client.Option
}

// Router is the dispatch layer. Build with New, serve Handler.
type Router struct {
	cfg     Config
	cluster *client.Cluster
}

// New validates the member list and builds the router.
func New(cfg Config) (*Router, error) {
	if cfg.ID == "" {
		cfg.ID = "router"
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	opts := []client.Option{
		client.WithRetry(2, 100*time.Millisecond),
		client.WithForwardedBy(cfg.ID),
	}
	if cfg.Replicas > 0 {
		opts = append(opts, client.WithRingReplicas(cfg.Replicas))
	}
	opts = append(opts, cfg.ClientOptions...)
	cl, err := client.NewCluster(cfg.Members, opts...)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	return &Router{cfg: cfg, cluster: cl}, nil
}

// Close releases the pooled connections to every member.
func (rt *Router) Close() { rt.cluster.Close() }

// Route exposes the failover order for a submission's bytes (owner
// first), for tests and operational debugging.
func (rt *Router) Route(trace []byte) []string { return rt.cluster.Route(trace) }

// Handler builds the router's HTTP surface. Like the daemon's, the whole
// surface — catch-all included — sits behind version negotiation, plus
// the router-only loop check.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := mux.HandleFunc

	handle("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		trace, apiErr := readBody(w, r, rt.cfg.MaxBody)
		if apiErr != nil {
			server.WriteError(w, apiErr)
			return
		}
		info, err := rt.cluster.Submit(r.Context(), api.SubmitRequest{
			Lane:   api.Lane(r.URL.Query().Get("lane")),
			Tenant: r.URL.Query().Get("tenant"),
			Trace:  trace,
		})
		if err != nil {
			rt.writeErr(w, "submit", err)
			return
		}
		server.WriteJSON(w, http.StatusAccepted, info)
	})
	handle("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		infos, err := rt.cluster.Jobs(r.Context())
		if err != nil {
			rt.writeErr(w, "list jobs", err)
			return
		}
		if infos == nil {
			infos = []api.JobInfo{}
		}
		server.WriteJSON(w, http.StatusOK, infos)
	})
	handle("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := rt.cluster.Job(r.Context(), r.PathValue("id"))
		if err != nil {
			rt.writeErr(w, "job", err)
			return
		}
		server.WriteJSON(w, http.StatusOK, info)
	})
	handle("GET /v1/jobs/{id}/diagnosis", func(w http.ResponseWriter, r *http.Request) {
		diag, err := rt.cluster.Diagnosis(r.Context(), r.PathValue("id"))
		if err != nil {
			rt.writeErr(w, "diagnosis", err)
			return
		}
		if server.WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, diag.Text)
			return
		}
		server.WriteJSON(w, http.StatusOK, diag)
	})
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m, err := rt.cluster.Metrics(r.Context())
		if err != nil {
			rt.writeErr(w, "metrics", err)
			return
		}
		if server.WantsText(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			server.WritePrometheus(w, m)
			return
		}
		server.WriteJSON(w, http.StatusOK, m)
	})
	handle("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		h := rt.cluster.Health(r.Context())
		h.Router = rt.cfg.ID
		server.WriteJSON(w, http.StatusOK, h)
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	handle("/", func(w http.ResponseWriter, r *http.Request) {
		server.WriteError(w, api.Errorf(api.CodeNotFound, "unknown endpoint %s", r.URL.Path))
	})

	// Loop check inside the version middleware: a request that already
	// crossed a router means the member list points at a router, and
	// forwarding it again would bounce until something times out.
	loopChecked := func(w http.ResponseWriter, r *http.Request) {
		if via := r.Header.Get(api.ForwardedHeader); via != "" {
			server.WriteError(w, api.Errorf(api.CodeLoopDetected,
				"request already routed by %q reached router %q; member lists must name daemons, not routers", via, rt.cfg.ID))
			return
		}
		mux.ServeHTTP(w, r)
	}
	return server.WithVersion(rt.cfg.ID, loopChecked)
}

// readBody slurps the submission body under the router's size cap,
// mapping an overrun onto the same trace_too_large envelope a daemon
// serves. The bytes are not decoded here: the owning daemon does that
// (and answers bad_trace), keeping the router free of the Darshan stack.
func readBody(w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, *api.Error) {
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, api.Errorf(api.CodeTraceTooLarge,
				"trace body exceeds the %d-byte limit (router -max-body)", maxBody)
		}
		log.Printf("iofleet-router: read submit body from %s: %v", r.RemoteAddr, err)
		return nil, api.Errorf(api.CodeBadRequest, "read body: request aborted")
	}
	return buf, nil
}

// writeErr maps a cluster-call failure onto the wire: api errors pass
// through on their canonical status; anything else (a decode bug, an
// unclassified transport corner) is logged here and served as the opaque
// internal envelope.
func (rt *Router) writeErr(w http.ResponseWriter, op string, err error) {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		server.WriteError(w, apiErr)
		return
	}
	log.Printf("iofleet-router: %s: %v", op, err)
	server.WriteError(w, api.Errorf(api.CodeInternal, "internal error; see router log"))
}
