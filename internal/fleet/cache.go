package fleet

import (
	"container/list"
	"sync"
	"time"

	"ioagent/internal/ioagent"
)

// cache is a content-addressed diagnosis cache: trace digest -> completed
// result, with LRU eviction at a fixed capacity and per-entry TTL expiry.
// Cached *ioagent.Result values are shared across jobs and must be treated
// as immutable by every reader.
//
// onInsert/onEvict observe membership changes (for the persistence layer's
// dirty tracking). They are invoked after the cache's own lock is released
// (so they may call back into the cache), but the Pool invokes Get with
// pool-internal locks held, so callbacks must not call into the Pool — see
// Config.OnCacheInsert. Insert/evict notifications for concurrent
// operations may arrive out of order; observers must treat them as
// "membership changed" signals, not as a replayable log.
type cache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration // <= 0 means entries never expire
	now      func() time.Time
	onInsert func(digest string)
	onEvict  func(digest string)

	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

// cacheEntry is immutable once published into the cache: a re-put of the
// same digest swaps in a fresh entry rather than mutating the resident
// one (see putAt). That lets readers hold a *cacheEntry after releasing
// c.mu — export snapshots refs under the lock and serializes outside it,
// bounding the checkpoint pause to a pointer copy per entry.
type cacheEntry struct {
	key    string
	result *ioagent.Result
	added  time.Time
}

// newCache builds a cache holding up to capacity entries; capacity <= 0
// disables caching entirely (every Get misses, every Put is dropped).
func newCache(capacity int, ttl time.Duration, now func() time.Time) *cache {
	if now == nil {
		now = time.Now
	}
	return &cache{
		capacity: capacity,
		ttl:      ttl,
		now:      now,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// notify delivers membership callbacks. Called WITHOUT c.mu held.
func (c *cache) notify(inserted, evicted []string) {
	if c.onEvict != nil {
		for _, d := range evicted {
			c.onEvict(d)
		}
	}
	if c.onInsert != nil {
		for _, d := range inserted {
			c.onInsert(d)
		}
	}
}

// Get returns the cached result for digest, refreshing its recency.
// Expired entries are removed and reported as misses.
func (c *cache) Get(digest string) (*ioagent.Result, bool) {
	c.mu.Lock()
	el, ok := c.entries[digest]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().Sub(e.added) >= c.ttl {
		c.removeLocked(el)
		c.mu.Unlock()
		c.notify(nil, []string{digest})
		return nil, false
	}
	c.order.MoveToFront(el)
	c.mu.Unlock()
	return e.result, true
}

// Put stores the result for digest, evicting the least recently used entry
// when the cache is full. Re-putting an existing digest refreshes both the
// value and the TTL clock.
func (c *cache) Put(digest string, res *ioagent.Result) {
	c.putAt(digest, res, c.now())
}

// putAt is Put with an explicit insertion time, used when restoring a
// persisted snapshot so restored entries keep their original TTL clock.
// Entries already expired at insertion time are dropped.
func (c *cache) putAt(digest string, res *ioagent.Result, added time.Time) {
	if c.capacity <= 0 {
		return
	}
	if c.ttl > 0 && c.now().Sub(added) >= c.ttl {
		return
	}
	var evicted []string
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		// Replace the entry wholesale instead of mutating in place:
		// published entries are immutable (readers may hold a ref outside
		// the lock — see export).
		el.Value = &cacheEntry{key: digest, result: res, added: added}
		c.order.MoveToFront(el)
		c.mu.Unlock()
		c.notify([]string{digest}, nil)
		return
	}
	for c.order.Len() >= c.capacity {
		back := c.order.Back()
		evicted = append(evicted, back.Value.(*cacheEntry).key)
		c.removeLocked(back)
	}
	el := c.order.PushFront(&cacheEntry{key: digest, result: res, added: added})
	c.entries[digest] = el
	c.mu.Unlock()
	c.notify([]string{digest}, evicted)
}

// export snapshots the resident entries, most recently used first, skipping
// entries already past their TTL. Only the ref collection runs under c.mu
// — entries are immutable once published, so building the export rows
// (and with them any serialization the caller does) proceeds without
// stalling the submission hot path. At checkpoint scale (10k entries,
// see BenchmarkCacheExport10k) that turns a pause proportional to the
// full copy into one proportional to a pointer append.
func (c *cache) export() []CacheEntry {
	c.mu.Lock()
	refs := make([]*cacheEntry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		refs = append(refs, el.Value.(*cacheEntry))
	}
	c.mu.Unlock()

	now := c.now()
	out := make([]CacheEntry, 0, len(refs))
	for _, e := range refs {
		if c.ttl > 0 && now.Sub(e.added) >= c.ttl {
			continue
		}
		out = append(out, CacheEntry{Digest: e.key, Result: e.result, Added: e.added})
	}
	return out
}

// peek returns the entry for digest without refreshing recency or
// sweeping TTL (expired entries report ok=false but stay resident for the
// lazy Get sweep). The handoff layer uses it to read entries for pushing
// without disturbing LRU order.
func (c *cache) peek(digest string) (*cacheEntry, bool) {
	c.mu.Lock()
	el, ok := c.entries[digest]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()
	if c.ttl > 0 && c.now().Sub(e.added) >= c.ttl {
		return nil, false
	}
	return e, true
}

// digests lists the digest of every unexpired resident entry, most
// recently used first — the inventory the handoff layer diffs against
// ring ownership. Like export, only the ref walk holds c.mu.
func (c *cache) digests() []string {
	c.mu.Lock()
	refs := make([]*cacheEntry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		refs = append(refs, el.Value.(*cacheEntry))
	}
	c.mu.Unlock()

	now := c.now()
	out := make([]string, 0, len(refs))
	for _, e := range refs {
		if c.ttl > 0 && now.Sub(e.added) >= c.ttl {
			continue
		}
		out = append(out, e.key)
	}
	return out
}

// contains reports digest residency without refreshing recency or sweeping
// TTL — a pure membership probe for restore-time validation.
func (c *cache) contains(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[digest]
	return ok
}

// Len returns the number of resident entries (expired-but-unswept entries
// included; they are swept lazily on Get).
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// removeLocked deletes one element. Caller holds c.mu.
func (c *cache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	delete(c.entries, e.key)
	c.order.Remove(el)
}
