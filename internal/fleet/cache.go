package fleet

import (
	"container/list"
	"sync"
	"time"

	"ioagent/internal/ioagent"
)

// cache is a content-addressed diagnosis cache: trace digest -> completed
// result, with LRU eviction at a fixed capacity and per-entry TTL expiry.
// Cached *ioagent.Result values are shared across jobs and must be treated
// as immutable by every reader.
type cache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration // <= 0 means entries never expire
	now      func() time.Time

	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key    string
	result *ioagent.Result
	added  time.Time
}

// newCache builds a cache holding up to capacity entries; capacity <= 0
// disables caching entirely (every Get misses, every Put is dropped).
func newCache(capacity int, ttl time.Duration, now func() time.Time) *cache {
	if now == nil {
		now = time.Now
	}
	return &cache{
		capacity: capacity,
		ttl:      ttl,
		now:      now,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached result for digest, refreshing its recency.
// Expired entries are removed and reported as misses.
func (c *cache) Get(digest string) (*ioagent.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[digest]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().Sub(e.added) >= c.ttl {
		c.removeLocked(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.result, true
}

// Put stores the result for digest, evicting the least recently used entry
// when the cache is full. Re-putting an existing digest refreshes both the
// value and the TTL clock.
func (c *cache) Put(digest string, res *ioagent.Result) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		e := el.Value.(*cacheEntry)
		e.result = res
		e.added = c.now()
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		c.removeLocked(c.order.Back())
	}
	el := c.order.PushFront(&cacheEntry{key: digest, result: res, added: c.now()})
	c.entries[digest] = el
}

// Len returns the number of resident entries (expired-but-unswept entries
// included; they are swept lazily on Get).
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// removeLocked deletes one element. Caller holds c.mu.
func (c *cache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	delete(c.entries, e.key)
	c.order.Remove(el)
}
