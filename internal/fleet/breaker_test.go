package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

// breakerTrace builds a small distinct trace per seed (mirrors the helper
// in fleet_test.go but kept local so this file stands alone).
func breakerTrace(seed int) *darshan.Log {
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*31 + 5, NProcs: 2, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/breaker/job%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/brk-%03d.dat", seed), iosim.POSIX, false, nil)
	for i := int64(0); i < 4; i++ {
		f.WriteAt(0, i*4096, 4096)
	}
	f.Close()
	return sim.Finalize()
}

// downClient always fails transiently — a dead or overloaded backend.
type downClient struct {
	mu    sync.Mutex
	calls int
}

func (d *downClient) Complete(llm.Request) (llm.Response, error) {
	d.mu.Lock()
	d.calls++
	d.mu.Unlock()
	return llm.Response{}, &llm.TransientError{Err: errors.New("backend down")}
}

func (d *downClient) callCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

// TestBreakerUnit drives the breaker state machine directly.
func TestBreakerUnit(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, time.Second, clock)

	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.record(true)
	}
	if open, _ := b.stats(); open {
		t.Fatal("breaker open below threshold")
	}
	if !b.allow() {
		t.Fatal("closed breaker refused the tripping attempt")
	}
	b.record(true) // third consecutive: trips
	if open, trips := b.stats(); !open || trips != 1 {
		t.Fatalf("after threshold failures: open=%v trips=%d, want open once", open, trips)
	}
	if b.allow() {
		t.Fatal("open breaker admitted work inside the cooldown")
	}
	if !b.refusing() {
		t.Fatal("hard-open breaker should refuse new work at the serving layer")
	}

	// Cooldown elapses: exactly one probe gets through — and the serving
	// layer must stop refusing, or no job would ever arrive to probe.
	now = now.Add(2 * time.Second)
	if b.refusing() {
		t.Fatal("elapsed cooldown must re-admit new work (the probe rides on it)")
	}
	if !b.allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.record(true) // probe failed: reopen
	if open, trips := b.stats(); !open || trips != 2 {
		t.Fatalf("failed probe: open=%v trips=%d, want reopened (2 trips)", open, trips)
	}
	if b.allow() {
		t.Fatal("reopened breaker admitted work without a fresh cooldown")
	}
	if !b.refusing() {
		t.Fatal("reopened breaker should refuse new work again")
	}

	// Second probe succeeds: closed again, counters reset.
	now = now.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("refused second probe")
	}
	b.record(false)
	if open, _ := b.stats(); open {
		t.Fatal("successful probe did not close the breaker")
	}
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatal("closed breaker refusing work after recovery")
		}
		b.record(true)
	}
	if open, _ := b.stats(); open {
		t.Fatal("consecutive counter was not reset by the successful probe")
	}
}

// TestBreakerDisabledByDefault: the zero-value Config must behave exactly
// as before the breaker existed.
func TestBreakerDisabledByDefault(t *testing.T) {
	b := newBreaker(0, 0, time.Now)
	for i := 0; i < 100; i++ {
		if !b.allow() {
			t.Fatal("disabled breaker refused work")
		}
		b.record(true)
	}
	if open, trips := b.stats(); open || trips != 0 {
		t.Fatalf("disabled breaker reports open=%v trips=%d", open, trips)
	}
}

// TestPoolBreakerStopsRetryStorm: with the breaker on, a down backend sees
// a bounded number of calls no matter how many jobs are thrown at it, jobs
// past the trip fail fast with ErrBreakerOpen, and the metrics surface the
// trip.
func TestPoolBreakerStopsRetryStorm(t *testing.T) {
	down := &downClient{}
	pool := New(down, Config{
		Workers: 1, MaxAttempts: 3, RetryDelay: time.Nanosecond,
		BreakerThreshold: 4, BreakerCooldown: time.Hour,
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	defer pool.Close()

	const jobs = 12
	var errs []error
	for i := 0; i < jobs; i++ {
		j, err := pool.Submit(breakerTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		_, werr := j.Wait() // serialize: one worker, deterministic order
		errs = append(errs, werr)
	}

	// Every job failed; the later ones failed fast on the open breaker.
	fastFailed := 0
	for i, err := range errs {
		if err == nil {
			t.Fatalf("job %d succeeded against a down backend", i)
		}
		if errors.Is(err, ErrBreakerOpen) {
			fastFailed++
		}
	}
	if fastFailed == 0 {
		t.Fatal("no job failed fast on the open breaker")
	}
	// The backend saw at most threshold calls before the trip; nothing
	// after (cooldown is an hour). Each Diagnose call fans out to several
	// LLM calls internally, so bound loosely: well under what 12 jobs x 3
	// attempts would have produced without a breaker.
	withBreaker := down.callCount()
	if withBreaker == 0 {
		t.Fatal("backend never called")
	}

	m := pool.Metrics()
	if !m.BreakerOpen || m.BreakerTrips != 1 {
		t.Errorf("metrics breaker open=%v trips=%d, want open with 1 trip", m.BreakerOpen, m.BreakerTrips)
	}

	// Control: same storm, breaker off, must hammer the backend much
	// harder (3 attempts per job, every job reaches it).
	control := &downClient{}
	pool2 := New(control, Config{
		Workers: 1, MaxAttempts: 3, RetryDelay: time.Nanosecond,
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	defer pool2.Close()
	for i := 0; i < jobs; i++ {
		j, err := pool2.Submit(breakerTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		j.Wait()
	}
	if control.callCount() <= withBreaker {
		t.Errorf("breaker saved nothing: %d calls with, %d without", withBreaker, control.callCount())
	}
}

// TestPoolBreakerRecovers: after the cooldown, a healed backend closes the
// breaker and jobs succeed again.
func TestPoolBreakerRecovers(t *testing.T) {
	flaky := &healingClient{failFirst: 20, healthy: llm.NewSim()}
	pool := New(flaky, Config{
		Workers: 1, MaxAttempts: 1, RetryDelay: time.Nanosecond,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Millisecond,
		Agent: ioagent.Options{Index: knowledge.BuildIndex()},
	})
	defer pool.Close()

	// Trip it.
	for i := 0; i < 4; i++ {
		j, err := pool.Submit(breakerTrace(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		j.Wait()
	}
	if m := pool.Metrics(); !m.BreakerOpen {
		t.Fatal("breaker did not trip")
	}

	// Heal the backend, wait out the cooldown, and retry until the probe
	// path closes the breaker.
	flaky.heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the backend healed")
		}
		time.Sleep(15 * time.Millisecond)
		j, err := pool.Submit(breakerTrace(200))
		if err != nil {
			t.Fatal(err)
		}
		if _, werr := j.Wait(); werr == nil {
			break
		}
	}
	if m := pool.Metrics(); m.BreakerOpen {
		t.Error("breaker still open after a successful probe")
	}
}

// healingClient fails transiently until heal() is called, then delegates
// to a healthy backend.
type healingClient struct {
	mu        sync.Mutex
	failFirst int
	healed    bool
	healthy   llm.Client
}

func (h *healingClient) heal() {
	h.mu.Lock()
	h.healed = true
	h.mu.Unlock()
}

func (h *healingClient) Complete(req llm.Request) (llm.Response, error) {
	h.mu.Lock()
	healed := h.healed
	h.mu.Unlock()
	if !healed {
		return llm.Response{}, &llm.TransientError{Err: errors.New("still down")}
	}
	return h.healthy.Complete(req)
}

// TestMetricsTenantCounts: per-tenant counters accumulate, anonymous
// submissions are not labeled, and the label cap overflows into _other.
func TestMetricsTenantCounts(t *testing.T) {
	pool := New(llm.NewSim(), Config{
		Workers: 2,
		Agent:   ioagent.Options{Index: knowledge.BuildIndex()},
	})
	defer pool.Close()

	log := breakerTrace(7)
	for i := 0; i < 3; i++ {
		if _, err := pool.SubmitWith(log, SubmitOpts{Tenant: "acme"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.SubmitWith(log, SubmitOpts{Tenant: "globex"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Submit(log); err != nil { // anonymous
		t.Fatal(err)
	}
	pool.Wait()

	m := pool.Metrics()
	if m.Tenants["acme"] != 3 || m.Tenants["globex"] != 1 {
		t.Errorf("tenant counts = %v, want acme:3 globex:1", m.Tenants)
	}
	if _, ok := m.Tenants[""]; ok {
		t.Error("anonymous submissions must not appear as a tenant label")
	}
	if got := int64(len(m.Tenants)); m.Submitted != 5 || got != 2 {
		t.Errorf("submitted=%d labels=%d, want 5 submissions over 2 labels", m.Submitted, got)
	}
}

// TestMetricsTenantLabelCap: the 257th distinct tenant lands in _other.
func TestMetricsTenantLabelCap(t *testing.T) {
	var m metrics
	m.queuedByLane = map[Lane]int64{}
	for i := 0; i < maxTenantLabels+10; i++ {
		m.mu.Lock()
		m.countTenantLocked(fmt.Sprintf("tenant-%04d", i))
		m.mu.Unlock()
	}
	s := m.snapshot(1, 0)
	if len(s.Tenants) != maxTenantLabels+1 {
		t.Fatalf("tracked %d labels, want %d + overflow", len(s.Tenants), maxTenantLabels)
	}
	if s.Tenants[tenantOverflowKey] != 10 {
		t.Errorf("overflow bucket = %d, want 10", s.Tenants[tenantOverflowKey])
	}
}
