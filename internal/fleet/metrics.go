package fleet

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latencySampleCap bounds the reservoir of completed-job latencies kept for
// percentile estimation; beyond it the buffer behaves as a ring holding the
// most recent completions.
const latencySampleCap = 4096

// Snapshot is a point-in-time view of pool health, shaped for direct JSON
// serving from iofleetd's /metrics endpoint.
type Snapshot struct {
	Workers int `json:"workers"`

	// Job lifecycle counters. Done includes cache hits and coalesced
	// jobs. Submitted = Queued + Running + Done + Failed once the pool is
	// idle; while a duplicate submission rides on an in-flight primary it
	// is counted in Submitted and Coalesced but in no lifecycle bucket,
	// so the identity can transiently undercount by the number of
	// in-flight coalesced jobs.
	Submitted int64 `json:"jobs_submitted"`
	Queued    int64 `json:"jobs_queued"`
	// QueuedInteractive / QueuedBatch break Queued down per priority
	// lane (jobs waiting for a worker; running jobs are in neither).
	QueuedInteractive int64 `json:"jobs_queued_interactive"`
	QueuedBatch       int64 `json:"jobs_queued_batch"`
	Running           int64 `json:"jobs_running"`
	Done              int64 `json:"jobs_done"`
	Failed            int64 `json:"jobs_failed"`

	// Cache effectiveness. CacheHits are submissions answered instantly
	// from the result cache; Coalesced are submissions attached to an
	// identical in-flight job at submit time (they wait, but cost zero
	// LLM calls, and are counted whether or not that job ultimately
	// succeeds); CacheMisses ran the full pipeline. HitRate is
	// (CacheHits + Coalesced) / Submitted.
	CacheHits   int64   `json:"cache_hits"`
	Coalesced   int64   `json:"coalesced"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"cache_hit_rate"`
	CacheLen    int     `json:"cache_entries"`

	// Retries counts extra diagnosis attempts beyond each job's first.
	Retries int64 `json:"retries"`

	// Submit-to-completion latency percentiles over the most recent
	// completions (cache hits count at ~0; failed jobs are excluded).
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
}

// metrics is the pool's internal mutable counterpart of Snapshot.
type metrics struct {
	mu        sync.Mutex
	submitted int64
	// queuedByLane is the only queued-job state; the snapshot's total is
	// derived from it, so the counters cannot drift apart.
	queuedByLane map[Lane]int64
	running      int64
	done         int64
	failed       int64
	hits         int64
	coalesced    int64
	misses       int64
	retries      int64

	latencies []time.Duration
	latIdx    int
}

func (m *metrics) recordLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) < latencySampleCap {
		m.latencies = append(m.latencies, d)
		return
	}
	m.latencies[m.latIdx] = d
	m.latIdx = (m.latIdx + 1) % latencySampleCap
}

// percentile returns the p-quantile (0..1) of sorted by the nearest-rank
// method (ceil(p*n)), which never hides the tail sample at small n.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (m *metrics) snapshot(workers, cacheLen int) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Workers:           workers,
		Submitted:         m.submitted,
		QueuedInteractive: m.queuedByLane[LaneInteractive],
		QueuedBatch:       m.queuedByLane[LaneBatch],
		Running:           m.running,
		Done:              m.done,
		Failed:            m.failed,
		CacheHits:         m.hits,
		Coalesced:         m.coalesced,
		CacheMisses:       m.misses,
		Retries:           m.retries,
		CacheLen:          cacheLen,
	}
	s.Queued = s.QueuedInteractive + s.QueuedBatch
	if s.Submitted > 0 {
		s.HitRate = float64(s.CacheHits+s.Coalesced) / float64(s.Submitted)
	}
	if n := len(m.latencies); n > 0 {
		sorted := make([]time.Duration, n)
		copy(sorted, m.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.LatencyP50 = percentile(sorted, 0.50)
		s.LatencyP95 = percentile(sorted, 0.95)
	}
	return s
}
