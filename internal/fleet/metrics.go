package fleet

import (
	"math"
	"sort"
	"sync"
	"time"

	"ioagent/internal/fleet/knowledge"
	"ioagent/internal/fleet/sched"
)

// latencySampleCap bounds the reservoir of completed-job latencies kept for
// percentile estimation; beyond it the buffer behaves as a ring holding the
// most recent completions.
const latencySampleCap = 4096

// Snapshot is a point-in-time view of pool health, shaped for direct JSON
// serving from iofleetd's /metrics endpoint.
type Snapshot struct {
	Workers int `json:"workers"`

	// Job lifecycle counters. Done includes cache hits and coalesced
	// jobs. Submitted = Queued + Running + Done + Failed once the pool is
	// idle; while a duplicate submission rides on an in-flight primary it
	// is counted in Submitted and Coalesced but in no lifecycle bucket,
	// so the identity can transiently undercount by the number of
	// in-flight coalesced jobs.
	Submitted int64 `json:"jobs_submitted"`
	Queued    int64 `json:"jobs_queued"`
	// QueuedInteractive / QueuedBatch break Queued down per priority
	// lane (jobs waiting for a worker; running jobs are in neither).
	QueuedInteractive int64 `json:"jobs_queued_interactive"`
	QueuedBatch       int64 `json:"jobs_queued_batch"`
	Running           int64 `json:"jobs_running"`
	Done              int64 `json:"jobs_done"`
	Failed            int64 `json:"jobs_failed"`

	// Cache effectiveness. CacheHits are submissions answered instantly
	// from the result cache; Coalesced are submissions attached to an
	// identical in-flight job at submit time (they wait, but cost zero
	// LLM calls, and are counted whether or not that job ultimately
	// succeeds); CacheMisses ran the full pipeline. HitRate is
	// (CacheHits + Coalesced) / Submitted.
	CacheHits   int64   `json:"cache_hits"`
	Coalesced   int64   `json:"coalesced"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"cache_hit_rate"`
	CacheLen    int     `json:"cache_entries"`

	// Semantic reuse effectiveness (all zero unless Config.SemCache).
	// SemHits are exact-cache misses served from a near-duplicate's
	// diagnosis; SemGateRejects found a similar candidate but the
	// confidence gate refused reuse; SemMisses found no usable candidate.
	// Every exact-cache miss lands in exactly one of the three buckets.
	SemHits        int64 `json:"semcache_hits"`
	SemMisses      int64 `json:"semcache_misses"`
	SemGateRejects int64 `json:"semcache_gate_rejects"`
	SemEntries     int   `json:"semcache_entries"`

	// Tiers breaks fresh diagnoses down per ladder model (empty unless
	// Config.TierModels); TierEscalations counts low-confidence results
	// that escalated to the next rung.
	Tiers           map[string]TierStats `json:"tier_models,omitempty"`
	TierEscalations int64                `json:"tier_escalations"`

	// OwnedDigests counts the distinct digests this pool currently holds:
	// resident cache entries plus in-flight primaries. In a sharded fleet
	// it is the node's share of the digest space.
	OwnedDigests int64 `json:"owned_digests"`

	// Knowledge reports the knowledge plane's health (nil unless
	// Config.Knowledge is set).
	Knowledge *knowledge.Metrics `json:"knowledge,omitempty"`

	// Retries counts extra diagnosis attempts beyond each job's first.
	Retries int64 `json:"retries"`

	// BreakerOpen / BreakerTrips report the transient-failure circuit
	// breaker (see Config.BreakerThreshold): whether attempts are
	// currently failing fast, and the lifetime trip count. Both are zero
	// when the breaker is disabled.
	BreakerOpen  bool  `json:"breaker_open"`
	BreakerTrips int64 `json:"breaker_trips"`

	// Submit-to-completion latency percentiles over the most recent
	// completions (cache hits count at ~0; failed jobs are excluded).
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`

	// Tenants maps tenant identifier to jobs submitted under it.
	// Anonymous submissions (no tenant) are not listed. At most
	// maxTenantLabels distinct tenants are tracked; the long tail beyond
	// that aggregates under the "_other" key so metric cardinality stays
	// bounded no matter what tenant strings clients invent.
	Tenants map[string]int64 `json:"tenant_jobs,omitempty"`

	// TenantsInflight maps tenant identifier to its jobs currently in the
	// system (accepted, not yet terminal) — the counter the per-tenant
	// quota (Config.TenantMaxInflight) is enforced against. Entries
	// disappear when they reach zero, so cardinality is bounded by actual
	// concurrency, not tenant history.
	TenantsInflight map[string]int64 `json:"tenant_inflight_jobs,omitempty"`

	// Sched is the fair scheduler's view: per-tenant queue depth, queue
	// age (p50/max over recent dequeues), dequeue counts (whose ratios
	// are the realized DRR shares), and SLO admission rejects. Always
	// present — every pool schedules through internal/fleet/sched.
	Sched *sched.Metrics `json:"sched,omitempty"`
}

// TierStats is one ladder model's share of the pool's fresh diagnoses.
// Jobs counts diagnoses the rung produced (including ones later escalated
// past); CostUSD is the rung's lifetime LLM spend from StatsByModel.
type TierStats struct {
	Jobs    int64   `json:"jobs"`
	CostUSD float64 `json:"cost_usd"`
}

// maxTenantLabels caps the distinct per-tenant counters one pool tracks;
// submissions from further tenants count under tenantOverflowKey.
const maxTenantLabels = 256

// tenantOverflowKey collects submissions beyond the maxTenantLabels cap.
// The string deliberately matches api.TenantOverflow — the pool mirrors
// the wire vocabulary (like Lane) instead of linking the contract package.
const tenantOverflowKey = "_other"

// metrics is the pool's internal mutable counterpart of Snapshot.
type metrics struct {
	mu        sync.Mutex
	submitted int64
	// queuedByLane is the only queued-job state; the snapshot's total is
	// derived from it, so the counters cannot drift apart.
	queuedByLane map[Lane]int64
	running      int64
	done         int64
	failed       int64
	hits         int64
	coalesced    int64
	misses       int64
	retries      int64

	// Semantic reuse and tier-ladder counters (see Snapshot).
	semHits         int64
	semMisses       int64
	semGateRejects  int64
	tierEscalations int64
	tierJobs        map[string]int64

	// tenants counts submissions per tenant, capped at maxTenantLabels
	// distinct keys plus the overflow bucket. Lazily allocated: pools
	// with only anonymous traffic never pay for the map.
	tenants map[string]int64

	// tenantInflight counts each tenant's jobs currently in the system
	// (queued, running, or coalesced onto a running primary; instant cache
	// hits never enter). The quota check in Submit reads it; entries are
	// deleted at zero so the map never outgrows actual concurrency.
	tenantInflight map[string]int64

	latencies []time.Duration
	latIdx    int
}

// holdTenantLocked charges one in-flight job to the tenant. Caller holds
// m.mu. Anonymous submissions are not tracked (and not quota'd).
func (m *metrics) holdTenantLocked(tenant string) {
	if tenant == "" {
		return
	}
	if m.tenantInflight == nil {
		m.tenantInflight = make(map[string]int64)
	}
	m.tenantInflight[tenant]++
}

// releaseTenant returns one in-flight slot to the tenant when its job
// reaches a terminal state.
func (m *metrics) releaseTenant(tenant string) {
	if tenant == "" {
		return
	}
	m.mu.Lock()
	if n := m.tenantInflight[tenant] - 1; n > 0 {
		m.tenantInflight[tenant] = n
	} else {
		delete(m.tenantInflight, tenant)
	}
	m.mu.Unlock()
}

// countTenantLocked attributes one submission to its tenant. Caller holds
// m.mu. Anonymous submissions ("" tenant) are not tracked.
func (m *metrics) countTenantLocked(tenant string) {
	if tenant == "" {
		return
	}
	if m.tenants == nil {
		m.tenants = make(map[string]int64)
	}
	if _, known := m.tenants[tenant]; !known && len(m.tenants) >= maxTenantLabels {
		tenant = tenantOverflowKey
	}
	m.tenants[tenant]++
}

// countSem bumps one of the semantic-reuse counters (a *int64 field of m,
// e.g. &m.semHits) under m.mu.
func (m *metrics) countSem(counter *int64) {
	m.mu.Lock()
	*counter++
	m.mu.Unlock()
}

// countTierJob attributes one fresh diagnosis to a ladder model.
func (m *metrics) countTierJob(model string) {
	m.mu.Lock()
	if m.tierJobs == nil {
		m.tierJobs = make(map[string]int64)
	}
	m.tierJobs[model]++
	m.mu.Unlock()
}

func (m *metrics) recordLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) < latencySampleCap {
		m.latencies = append(m.latencies, d)
		return
	}
	m.latencies[m.latIdx] = d
	m.latIdx = (m.latIdx + 1) % latencySampleCap
}

// percentile returns the p-quantile (0..1) of sorted by the nearest-rank
// method (ceil(p*n)), which never hides the tail sample at small n.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (m *metrics) snapshot(workers, cacheLen int) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Workers:           workers,
		Submitted:         m.submitted,
		QueuedInteractive: m.queuedByLane[LaneInteractive],
		QueuedBatch:       m.queuedByLane[LaneBatch],
		Running:           m.running,
		Done:              m.done,
		Failed:            m.failed,
		CacheHits:         m.hits,
		Coalesced:         m.coalesced,
		CacheMisses:       m.misses,
		Retries:           m.retries,
		CacheLen:          cacheLen,
		SemHits:           m.semHits,
		SemMisses:         m.semMisses,
		SemGateRejects:    m.semGateRejects,
		TierEscalations:   m.tierEscalations,
	}
	if len(m.tierJobs) > 0 {
		s.Tiers = make(map[string]TierStats, len(m.tierJobs))
		for model, jobs := range m.tierJobs {
			s.Tiers[model] = TierStats{Jobs: jobs}
		}
	}
	s.Queued = s.QueuedInteractive + s.QueuedBatch
	if s.Submitted > 0 {
		s.HitRate = float64(s.CacheHits+s.Coalesced) / float64(s.Submitted)
	}
	if len(m.tenants) > 0 {
		s.Tenants = make(map[string]int64, len(m.tenants))
		for t, n := range m.tenants {
			s.Tenants[t] = n
		}
	}
	if len(m.tenantInflight) > 0 {
		s.TenantsInflight = make(map[string]int64, len(m.tenantInflight))
		for t, n := range m.tenantInflight {
			s.TenantsInflight[t] = n
		}
	}
	if n := len(m.latencies); n > 0 {
		sorted := make([]time.Duration, n)
		copy(sorted, m.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.LatencyP50 = percentile(sorted, 0.50)
		s.LatencyP95 = percentile(sorted, 0.95)
	}
	return s
}
