package knowledge

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"ioagent/internal/llm"
	"ioagent/internal/vectordb"
)

// Reranker reorders retrieval results between vector search and the
// agent's self-reflection stage. Implementations must be safe for
// concurrent use. Returning an error keeps the vector order (the plane
// never fails a retrieval over a rerank).
type Reranker interface {
	Rerank(query string, hits []vectordb.Hit) ([]vectordb.Hit, error)
}

// LLMReranker reranks with a cheap LLM judge: the hits are presented as
// ranking candidates and reordered by the judge's best-to-worst answer.
// Candidates the judge omits keep their vector order after the ranked
// ones. The judge's spend accumulates and is reported through CostUSD,
// which the plane surfaces in Metrics.
type LLMReranker struct {
	// Client serves the judge calls; must be safe for concurrent use.
	Client llm.Client
	// Model is the judge model (a cheap tier — rerank runs on every
	// retrieval, so frontier pricing would dwarf the diagnosis itself).
	Model string

	mu    sync.Mutex
	cost  float64
	calls int64
}

// rankLineRe parses one "RANK n: name" line of the judge's answer.
var rankLineRe = regexp.MustCompile(`(?m)^RANK\s+\d+:\s*(.+?)\s*$`)

// Rerank implements Reranker.
func (r *LLMReranker) Rerank(query string, hits []vectordb.Hit) ([]vectordb.Hit, error) {
	if len(hits) < 2 {
		return hits, nil
	}
	names := make([]string, len(hits))
	var b strings.Builder
	b.WriteString("TASK: rank\nCRITERION: utility\n")
	b.WriteString("Order the candidate knowledge snippets by how useful they are for answering the query.\n")
	b.WriteString("QUERY: " + query + "\n")
	for i, h := range hits {
		names[i] = fmt.Sprintf("%s#%d", h.Chunk.DocKey, h.Chunk.Seq)
		fmt.Fprintf(&b, "=== CANDIDATE %s ===\n%s\n", names[i], h.Chunk.Text)
	}
	b.WriteString("=== END CANDIDATES ===\n")
	resp, err := r.Client.Complete(llm.Prompt(r.Model, b.String()))
	if err != nil {
		return nil, fmt.Errorf("knowledge: rerank: %w", err)
	}
	r.mu.Lock()
	r.cost += resp.CostUSD
	r.calls++
	r.mu.Unlock()

	byName := make(map[string]int, len(names))
	for i, n := range names {
		byName[n] = i
	}
	out := make([]vectordb.Hit, 0, len(hits))
	taken := make([]bool, len(hits))
	for _, m := range rankLineRe.FindAllStringSubmatch(resp.Content, -1) {
		if i, ok := byName[m[1]]; ok && !taken[i] {
			taken[i] = true
			out = append(out, hits[i])
		}
	}
	for i, h := range hits {
		if !taken[i] {
			out = append(out, h)
		}
	}
	return out, nil
}

// CostUSD returns the judge's lifetime spend across all Rerank calls.
func (r *LLMReranker) CostUSD() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cost
}

// Calls returns how many judge calls have completed successfully.
func (r *LLMReranker) Calls() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}
