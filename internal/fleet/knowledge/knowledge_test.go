package knowledge

import (
	"fmt"
	"sync"
	"testing"

	"ioagent/internal/llm"
	"ioagent/internal/vectordb"
)

func seedDocs() []vectordb.Document {
	return []vectordb.Document{
		{Key: "doc-small-write", Title: "Small writes", Text: "small write requests degrade bandwidth aggregate small writes into larger requests"},
		{Key: "doc-metadata", Title: "Metadata", Text: "metadata storm open stat close operations overload the metadata server"},
		{Key: "doc-stripe", Title: "Striping", Text: "stripe count stripe size lustre object storage targets alignment"},
		{Key: "doc-collective", Title: "Collectives", Text: "collective mpi io aggregates independent operations into large contiguous transfers"},
	}
}

func TestPlaneServesSeedCorpus(t *testing.T) {
	p := New(Config{})
	if got := p.Epoch(); got != 1 {
		t.Fatalf("fresh plane epoch = %d, want 1", got)
	}
	hits := p.Retrieve("small write requests to a shared file", 5)
	if len(hits) == 0 {
		t.Fatal("no hits from the built-in corpus")
	}
	m := p.Metrics()
	if m.Docs == 0 || m.Docs != m.OwnedDocs {
		t.Fatalf("unsharded plane: Docs=%d OwnedDocs=%d, want equal and nonzero", m.Docs, m.OwnedDocs)
	}
	if m.Queries != 1 {
		t.Fatalf("Queries = %d, want 1", m.Queries)
	}
}

func TestPlaneUpsertSwapVisibility(t *testing.T) {
	p := New(Config{Seed: seedDocs()})
	if _, err := p.Swap(); err != ErrNothingStaged {
		t.Fatalf("Swap with nothing staged: err = %v, want ErrNothingStaged", err)
	}
	novel := vectordb.Document{
		Key:  "doc-burst",
		Text: "burst buffer drain overlapping checkpoint epochs saturates the drain bandwidth",
	}
	if err := p.Upsert([]vectordb.Document{novel}, []string{"doc-stripe"}); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	// Staged changes must be invisible until the swap.
	for _, h := range p.Retrieve("burst buffer drain checkpoint", 10) {
		if h.Chunk.DocKey == "doc-burst" {
			t.Fatal("staged document visible before Swap")
		}
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch moved to %d before Swap", p.Epoch())
	}
	if m := p.Metrics(); m.StagedOps != 2 {
		t.Fatalf("StagedOps = %d, want 2", m.StagedOps)
	}

	v, err := p.Swap()
	if err != nil || v != 2 {
		t.Fatalf("Swap = (%d, %v), want (2, nil)", v, err)
	}
	found := false
	for _, h := range p.Retrieve("burst buffer drain checkpoint", 10) {
		if h.Chunk.DocKey == "doc-burst" {
			found = true
		}
		if h.Chunk.DocKey == "doc-stripe" {
			t.Fatal("removed document still retrievable after Swap")
		}
	}
	if !found {
		t.Fatal("upserted document not retrievable after Swap")
	}
	if _, ok := p.Doc("doc-burst"); !ok {
		t.Fatal("Doc does not see the promoted document")
	}
	if _, ok := p.Doc("doc-stripe"); ok {
		t.Fatal("Doc still sees the removed document")
	}
}

func TestPlaneEvents(t *testing.T) {
	var events []Event
	p := New(Config{
		Seed:    seedDocs(),
		OnEvent: func(e Event) { events = append(events, e) },
	})
	doc := vectordb.Document{Key: "doc-x", Text: "random reads thrash the readahead window"}
	if err := p.Upsert([]vectordb.Document{doc}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	if events[0].Kind != EventUpsert || len(events[0].Docs) != 1 || events[0].Docs[0].Key != "doc-x" {
		t.Fatalf("first event %+v, want upsert of doc-x", events[0])
	}
	if events[1].Kind != EventSwap || events[1].Epoch != 2 {
		t.Fatalf("second event %+v, want swap to epoch 2", events[1])
	}
}

// TestPlaneSharding checks the ring placement invariant: with Replicas=2
// every document is indexed by exactly two of three nodes, and any two
// nodes together cover the full corpus (single-node loss hides nothing).
func TestPlaneSharding(t *testing.T) {
	members := []string{"n1", "n2", "n3"}
	docs := seedDocs()
	planes := make([]*Plane, len(members))
	for i, id := range members {
		planes[i] = New(Config{NodeID: id, Members: members, Seed: docs})
	}
	for _, d := range docs {
		owners := 0
		for _, p := range planes {
			if p.owned(d.Key) {
				owners++
			}
		}
		if owners != 2 {
			t.Fatalf("doc %s indexed on %d nodes, want 2", d.Key, owners)
		}
	}
	// Every plane still answers Doc() from the full corpus view.
	for _, p := range planes {
		if m := p.Metrics(); m.Docs != len(docs) {
			t.Fatalf("full corpus view holds %d docs, want %d", m.Docs, len(docs))
		}
	}
	// On a two-node fleet with the default Replicas=2, both nodes index
	// everything — the property the 2-daemon e2e leans on.
	for _, id := range []string{"a", "b"} {
		p := New(Config{NodeID: id, Members: []string{"a", "b"}, Seed: docs})
		if m := p.Metrics(); m.OwnedDocs != len(docs) {
			t.Fatalf("node %s owns %d of %d docs on a 2-node fleet", id, m.OwnedDocs, len(docs))
		}
	}
}

func TestPlaneExportRestore(t *testing.T) {
	p := New(Config{Seed: seedDocs(), ANN: true})
	if err := p.Upsert([]vectordb.Document{{Key: "doc-a", Text: "rank straggler imbalance slowest rank dominates"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(); err != nil {
		t.Fatal(err)
	}
	// Leave a staged delta unswapped: Export must carry it.
	if err := p.Upsert([]vectordb.Document{{Key: "doc-b", Text: "shared file lock contention serializes writers"}}, []string{"doc-metadata"}); err != nil {
		t.Fatal(err)
	}
	state := p.Export()
	if state.Epoch != 2 || len(state.StagedDocs) != 1 || len(state.StagedRemove) != 1 {
		t.Fatalf("export = epoch %d, %d staged docs, %d staged removes", state.Epoch, len(state.StagedDocs), len(state.StagedRemove))
	}

	q := New(Config{Seed: []vectordb.Document{}, ANN: true})
	q.Restore(state)
	if q.Epoch() != 2 {
		t.Fatalf("restored epoch = %d, want 2", q.Epoch())
	}
	if m := q.Metrics(); m.StagedOps != 2 {
		t.Fatalf("restored StagedOps = %d, want 2", m.StagedOps)
	}
	if v, err := q.Swap(); err != nil || v != 3 {
		t.Fatalf("swap after restore = (%d, %v), want (3, nil)", v, err)
	}
	found := false
	for _, h := range q.Retrieve("shared file lock contention", 10) {
		if h.Chunk.DocKey == "doc-b" {
			found = true
		}
	}
	if !found {
		t.Fatal("staged delta lost across Export/Restore")
	}
	if _, ok := q.Doc("doc-metadata"); ok {
		t.Fatal("staged removal lost across Export/Restore")
	}
}

func TestPlaneReplayIdempotent(t *testing.T) {
	docs := []vectordb.Document{{Key: "doc-r", Text: "repetitive reads of the same block waste bandwidth"}}
	p := New(Config{Seed: seedDocs()})
	// Replay the same journal twice, as crash recovery might after an
	// incomplete checkpoint.
	for i := 0; i < 2; i++ {
		p.ReplayUpsert(docs, nil)
		p.ReplaySwap(2)
	}
	if p.Epoch() != 2 {
		t.Fatalf("epoch = %d after double replay, want 2", p.Epoch())
	}
	if m := p.Metrics(); m.StagedOps != 0 {
		t.Fatalf("StagedOps = %d after replay, want 0", m.StagedOps)
	}
	if _, ok := p.Doc("doc-r"); !ok {
		t.Fatal("replayed upsert lost")
	}
	// A swap record with no surviving upserts (already covered by the
	// snapshot) still moves the version forward without changing docs.
	p.ReplaySwap(5)
	if p.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", p.Epoch())
	}
}

// TestPlaneConcurrentRetrieveDuringSwap hammers Retrieve while epochs are
// staged and promoted; run under -race in CI. Every retrieval must see a
// complete epoch — either wholly old or wholly new.
func TestPlaneConcurrentRetrieveDuringSwap(t *testing.T) {
	p := New(Config{Seed: seedDocs(), ANN: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hits := p.Retrieve("small write metadata stripe collective", 3)
				for _, h := range hits {
					if h.Chunk.DocKey == "" {
						t.Error("torn hit during swap")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		doc := vectordb.Document{
			Key:  fmt.Sprintf("doc-gen-%03d", i),
			Text: fmt.Sprintf("generated document %d about write aggregation and caching", i),
		}
		if err := p.Upsert([]vectordb.Document{doc}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Swap(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if p.Epoch() != 21 {
		t.Fatalf("epoch = %d after 20 swaps, want 21", p.Epoch())
	}
}

func TestLLMRerankerReorders(t *testing.T) {
	rr := &LLMReranker{Client: llm.NewSim(), Model: llm.GPT4oMini}
	p := New(Config{Seed: seedDocs(), Reranker: rr})
	hits := p.Retrieve("small write requests", 4)
	if len(hits) < 2 {
		t.Fatalf("want >= 2 hits, got %d", len(hits))
	}
	m := p.Metrics()
	if m.RerankCalls != 1 || m.RerankErrors != 0 {
		t.Fatalf("rerank calls=%d errors=%d, want 1/0", m.RerankCalls, m.RerankErrors)
	}
	if m.RerankCostUSD <= 0 {
		t.Fatalf("rerank cost = %v, want > 0", m.RerankCostUSD)
	}
	// The reranker must permute, never drop or invent.
	plain := New(Config{Seed: seedDocs()})
	vectorOrder := plain.Retrieve("small write requests", 4)
	if len(vectorOrder) != len(hits) {
		t.Fatalf("rerank changed hit count: %d vs %d", len(hits), len(vectorOrder))
	}
	want := make(map[string]bool, len(vectorOrder))
	for _, h := range vectorOrder {
		want[fmt.Sprintf("%s#%d", h.Chunk.DocKey, h.Chunk.Seq)] = true
	}
	for _, h := range hits {
		if !want[fmt.Sprintf("%s#%d", h.Chunk.DocKey, h.Chunk.Seq)] {
			t.Fatalf("reranked hit %s#%d not in the vector result set", h.Chunk.DocKey, h.Chunk.Seq)
		}
	}
}

// TestRerankerFailureFallsBack pins that a broken reranker degrades to
// vector order instead of failing the retrieval.
func TestRerankerFailureFallsBack(t *testing.T) {
	p := New(Config{Seed: seedDocs(), Reranker: failingReranker{}})
	hits := p.Retrieve("metadata server overload", 3)
	if len(hits) == 0 {
		t.Fatal("retrieval failed on reranker error")
	}
	if m := p.Metrics(); m.RerankErrors != 1 {
		t.Fatalf("RerankErrors = %d, want 1", m.RerankErrors)
	}
}

type failingReranker struct{}

func (failingReranker) Rerank(string, []vectordb.Hit) ([]vectordb.Hit, error) {
	return nil, fmt.Errorf("judge unavailable")
}
