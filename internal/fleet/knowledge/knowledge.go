// Package knowledge is the fleet-served knowledge plane: the RAG corpus as
// a first-class, epoch-versioned cluster resource instead of a constant
// compiled into each agent.
//
// A Plane owns the corpus for one node. Three properties distinguish it
// from the embedded index agents use standalone:
//
//   - Ring sharding. With Config.Members set, documents are sharded over
//     the fleet's consistent-hash ring by document key: a node indexes only
//     the chunks of documents it owns (the ring owner plus Replicas-1
//     successors, so every document has a replica and single-node loss
//     never removes a document from the cluster's reach). The serving
//     layer scatter-gathers per-node top-k into a cluster-wide answer.
//   - Epoch-versioned hot swap. Mutations (Upsert) accumulate in a staged
//     epoch — a cloned index plus a delta — and become visible only when
//     Swap promotes the staged epoch atomically. Retrievals in flight at
//     the swap keep reading the epoch they started on; there is no torn
//     state and no retrieval-blocking write lock.
//   - Optional rerank. A Reranker (typically a cheap LLM judge) reorders
//     the top-k between vector search and the agent's self-reflection
//     stage; rerank failures fall back to vector order, never fail the
//     retrieval.
//
// The Plane implements ioagent.Retriever, which is how a fleet pool's
// agents retrieve through it. Mutations are observable through
// Config.OnEvent so internal/fleet/store can journal them; Export and
// Restore round-trip the full state for checkpoints.
package knowledge

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ioagent/internal/fleet/ring"
	corpus "ioagent/internal/knowledge"
	"ioagent/internal/vectordb"
)

// ErrNothingStaged is returned by Swap when no Upsert has staged an epoch
// since the last promotion — swapping would republish the current epoch
// under a new version for no reason, so it is refused.
var ErrNothingStaged = errors.New("knowledge: nothing staged to swap")

// EventKind names a corpus mutation observed through Config.OnEvent.
type EventKind string

const (
	// EventUpsert fires on every Upsert call, after the staged epoch has
	// absorbed it. The event carries the exact arguments, so replaying
	// events in order reproduces the staged state.
	EventUpsert EventKind = "upsert"
	// EventSwap fires when Swap promotes the staged epoch; Epoch is the
	// newly current version.
	EventSwap EventKind = "swap"
)

// Event is one corpus mutation notification.
type Event struct {
	Kind   EventKind
	Docs   []vectordb.Document // upserted documents (EventUpsert)
	Remove []string            // removed document keys (EventUpsert)
	Epoch  uint64              // promoted version (EventSwap)
}

// Config tunes a Plane. The zero value serves the built-in corpus,
// unsharded, brute-force, with no reranker.
type Config struct {
	// NodeID is this node's name in Members. Required when Members is set;
	// ignored otherwise.
	NodeID string
	// Members lists every node participating in corpus sharding (the same
	// vocabulary the cluster layer uses for node IDs). Empty disables
	// sharding: the node indexes every document.
	Members []string
	// Replicas is how many nodes index each document (the ring owner plus
	// Replicas-1 successors; default 2, so losing one node never loses a
	// document). Values beyond len(Members) index everywhere.
	Replicas int
	// ANN enables the HNSW graph on the shard index (see vectordb.Options).
	ANN bool
	// Reranker, when set, reorders retrieval results (see Reranker).
	Reranker Reranker
	// OnEvent, if set, observes mutations synchronously from Upsert and
	// Swap — the persistence layer's journaling hook. It runs under the
	// Plane's mutation lock and must not call back into the Plane.
	OnEvent func(Event)
	// Seed is the initial corpus (epoch 1). nil selects the built-in
	// 66-document corpus; an empty non-nil slice starts empty.
	Seed []vectordb.Document
}

// epoch is one immutable corpus version: the full document view plus the
// locally-indexed shard. Readers hold a loaded *epoch for the duration of
// one retrieval; promotion swaps the pointer and never mutates a published
// epoch.
type epoch struct {
	version uint64
	docs    map[string]vectordb.Document
	index   *vectordb.Index
}

// Plane is one node's view of the fleet knowledge corpus. All methods are
// safe for concurrent use; Retrieve never blocks on mutations.
type Plane struct {
	cfg  Config
	ring *ring.Ring // nil when unsharded

	cur atomic.Pointer[epoch]

	// mu guards the staged epoch and its delta bookkeeping.
	mu            sync.Mutex
	staged        *epoch
	stagedAdds    map[string]vectordb.Document
	stagedRemoves map[string]bool

	queries     atomic.Int64
	rerankCalls atomic.Int64
	rerankErrs  atomic.Int64
	// retired* accumulate the search-path counters of epochs that have
	// been swapped out, so Metrics totals survive promotions.
	retiredANN   atomic.Uint64
	retiredExact atomic.Uint64

	latMu  sync.Mutex
	lat    []time.Duration
	latIdx int
}

// latencySampleCap bounds the retrieval-latency reservoir.
const latencySampleCap = 1024

// New builds a Plane serving Config.Seed as epoch 1.
func New(cfg Config) *Plane {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	p := &Plane{cfg: cfg}
	if len(cfg.Members) > 0 {
		p.ring = ring.New(0)
		p.ring.Add(cfg.Members...)
	}
	seed := cfg.Seed
	if seed == nil {
		seed = corpus.Documents()
	}
	ep := &epoch{version: 1, docs: make(map[string]vectordb.Document, len(seed)), index: p.newIndex()}
	for _, d := range seed {
		ep.docs[d.Key] = d
		if p.owned(d.Key) {
			ep.index.Add(d)
		}
	}
	p.cur.Store(ep)
	return p
}

// newIndex builds an empty shard index with the paper's chunking parameters
// (matching knowledge.BuildIndex, so a single-node plane retrieves exactly
// what an embedded agent would).
func (p *Plane) newIndex() *vectordb.Index {
	return vectordb.New(vectordb.Options{ChunkSize: 512, Overlap: 20, ANN: p.cfg.ANN})
}

// owned reports whether this node indexes the document: always when
// unsharded, otherwise when the node is among the key's first Replicas
// ring successors (owner included).
func (p *Plane) owned(key string) bool {
	if p.ring == nil {
		return true
	}
	for _, m := range p.ring.Successors(key, p.cfg.Replicas) {
		if m == p.cfg.NodeID {
			return true
		}
	}
	return false
}

// Retrieve implements ioagent.Retriever: top-k search over the current
// epoch's shard index, reranked when a Reranker is configured. The epoch
// pointer is loaded once, so a concurrent Swap never tears a retrieval.
func (p *Plane) Retrieve(query string, k int) []vectordb.Hit {
	start := time.Now()
	ep := p.cur.Load()
	hits := ep.index.Search(query, k)
	if p.cfg.Reranker != nil && len(hits) > 1 {
		p.rerankCalls.Add(1)
		if reordered, err := p.cfg.Reranker.Rerank(query, hits); err == nil {
			hits = reordered
		} else {
			// Rerank is an ordering refinement, not a correctness gate:
			// fall back to vector order rather than failing the retrieval.
			p.rerankErrs.Add(1)
		}
	}
	p.queries.Add(1)
	p.observe(time.Since(start))
	return hits
}

// Upsert stages document additions/updates (docs) and removals (remove)
// into the staged epoch, creating it from the current epoch if none exists.
// Staged changes are invisible to Retrieve until Swap promotes them. A
// document with an empty key is rejected.
func (p *Plane) Upsert(docs []vectordb.Document, remove []string) error {
	for _, d := range docs {
		if d.Key == "" {
			return fmt.Errorf("knowledge: upsert: document with empty key")
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.upsertLocked(docs, remove)
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(Event{Kind: EventUpsert, Docs: docs, Remove: remove})
	}
	return nil
}

// upsertLocked applies one upsert to the staged epoch without emitting an
// event (shared by Upsert, Restore, and WAL replay). Caller holds p.mu.
func (p *Plane) upsertLocked(docs []vectordb.Document, remove []string) {
	p.stageLocked()
	for _, key := range remove {
		delete(p.staged.docs, key)
		p.staged.index.Remove(key)
		delete(p.stagedAdds, key)
		p.stagedRemoves[key] = true
	}
	for _, d := range docs {
		p.staged.docs[d.Key] = d
		p.staged.index.Remove(d.Key)
		if p.owned(d.Key) {
			p.staged.index.Add(d)
		}
		delete(p.stagedRemoves, d.Key)
		p.stagedAdds[d.Key] = d
	}
}

// stageLocked materializes the staged epoch as a clone of the current one.
// Caller holds p.mu.
func (p *Plane) stageLocked() {
	if p.staged != nil {
		return
	}
	cur := p.cur.Load()
	st := &epoch{
		version: cur.version + 1,
		docs:    make(map[string]vectordb.Document, len(cur.docs)),
		index:   cur.index.Clone(),
	}
	for k, v := range cur.docs {
		st.docs[k] = v
	}
	p.staged = st
	p.stagedAdds = make(map[string]vectordb.Document)
	p.stagedRemoves = make(map[string]bool)
}

// Swap atomically promotes the staged epoch, making every change since the
// last promotion visible to new retrievals at once. Retrievals in flight
// finish on the epoch they loaded. Returns the promoted version, or
// ErrNothingStaged when no Upsert preceded it.
func (p *Plane) Swap() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.staged == nil {
		return 0, ErrNothingStaged
	}
	version := p.promoteLocked(p.staged.version)
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(Event{Kind: EventSwap, Epoch: version})
	}
	return version, nil
}

// promoteLocked publishes the staged epoch under the given version and
// retires the old epoch's search counters. Caller holds p.mu and has
// checked p.staged != nil.
func (p *Plane) promoteLocked(version uint64) uint64 {
	old := p.cur.Load()
	st := old.index.Stats()
	p.retiredANN.Add(st.ANNQueries)
	p.retiredExact.Add(st.ExactQueries)
	p.staged.version = version
	p.cur.Store(p.staged)
	p.staged = nil
	p.stagedAdds, p.stagedRemoves = nil, nil
	return version
}

// Epoch returns the current (promoted) corpus version.
func (p *Plane) Epoch() uint64 { return p.cur.Load().version }

// Doc returns a document from the current epoch's full corpus view (owned
// or not) by key.
func (p *Plane) Doc(key string) (vectordb.Document, bool) {
	d, ok := p.cur.Load().docs[key]
	return d, ok
}

// Metrics is a point-in-time snapshot of plane health.
type Metrics struct {
	// Epoch is the current promoted corpus version; Docs counts the full
	// corpus view, OwnedDocs the documents this node actually indexes
	// (equal unless sharded), StagedOps the staged-but-unswapped mutations.
	Epoch     uint64 `json:"epoch"`
	Docs      int    `json:"docs"`
	OwnedDocs int    `json:"owned_docs"`
	StagedOps int    `json:"staged_ops"`
	// Queries counts Retrieve calls; ANNQueries/ExactQueries split the
	// underlying index searches by path (across all epochs served).
	Queries      int64  `json:"queries"`
	ANNQueries   uint64 `json:"ann_queries"`
	ExactQueries uint64 `json:"exact_queries"`
	// Rerank accounting: calls attempted, errors that fell back to vector
	// order, and lifetime judge spend when the Reranker reports cost.
	RerankCalls   int64   `json:"rerank_calls"`
	RerankErrors  int64   `json:"rerank_errors"`
	RerankCostUSD float64 `json:"rerank_cost_usd"`
	// LatencyP95 is the 95th-percentile Retrieve latency over the most
	// recent retrievals (vector search plus rerank).
	LatencyP95 time.Duration `json:"retrieval_p95_ns"`
}

// Metrics returns a snapshot of plane health.
func (p *Plane) Metrics() Metrics {
	ep := p.cur.Load()
	st := ep.index.Stats()
	m := Metrics{
		Epoch:        ep.version,
		Docs:         len(ep.docs),
		OwnedDocs:    ep.index.Docs(),
		Queries:      p.queries.Load(),
		ANNQueries:   p.retiredANN.Load() + st.ANNQueries,
		ExactQueries: p.retiredExact.Load() + st.ExactQueries,
		RerankCalls:  p.rerankCalls.Load(),
		RerankErrors: p.rerankErrs.Load(),
	}
	p.mu.Lock()
	m.StagedOps = len(p.stagedAdds) + len(p.stagedRemoves)
	p.mu.Unlock()
	if cr, ok := p.cfg.Reranker.(interface{ CostUSD() float64 }); ok {
		m.RerankCostUSD = cr.CostUSD()
	}
	m.LatencyP95 = p.latencyP95()
	return m
}

func (p *Plane) observe(d time.Duration) {
	p.latMu.Lock()
	defer p.latMu.Unlock()
	if len(p.lat) < latencySampleCap {
		p.lat = append(p.lat, d)
		return
	}
	p.lat[p.latIdx] = d
	p.latIdx = (p.latIdx + 1) % latencySampleCap
}

func (p *Plane) latencyP95() time.Duration {
	p.latMu.Lock()
	defer p.latMu.Unlock()
	if len(p.lat) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(p.lat))
	copy(sorted, p.lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := (len(sorted)*95 + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

// State is the serializable form of a Plane: the promoted epoch plus any
// staged-but-unswapped delta, so a checkpoint taken mid-stage loses
// nothing. Produced by Export, consumed by Restore.
type State struct {
	Epoch        uint64              `json:"epoch"`
	Docs         []vectordb.Document `json:"docs"`
	StagedDocs   []vectordb.Document `json:"staged_docs,omitempty"`
	StagedRemove []string            `json:"staged_remove,omitempty"`
}

// Export snapshots the plane's full state: the promoted corpus (sorted by
// key for deterministic serialization) and the staged delta.
func (p *Plane) Export() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	ep := p.cur.Load()
	s := State{Epoch: ep.version, Docs: sortedDocs(ep.docs)}
	s.StagedDocs = sortedDocs(p.stagedAdds)
	for key := range p.stagedRemoves {
		s.StagedRemove = append(s.StagedRemove, key)
	}
	sort.Strings(s.StagedRemove)
	return s
}

func sortedDocs(m map[string]vectordb.Document) []vectordb.Document {
	if len(m) == 0 {
		return nil
	}
	out := make([]vectordb.Document, 0, len(m))
	for _, d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore replaces the plane's state with a previously Exported one,
// rebuilding the shard index and re-staging any staged delta. No events
// are emitted — Restore replays persisted state, it does not create new
// history. Intended for boot-time recovery, before the plane serves
// retrievals.
func (p *Plane) Restore(s State) {
	ep := &epoch{version: s.Epoch, docs: make(map[string]vectordb.Document, len(s.Docs)), index: p.newIndex()}
	for _, d := range s.Docs {
		ep.docs[d.Key] = d
		if p.owned(d.Key) {
			ep.index.Add(d)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cur.Store(ep)
	p.staged = nil
	p.stagedAdds, p.stagedRemoves = nil, nil
	if len(s.StagedDocs) > 0 || len(s.StagedRemove) > 0 {
		p.upsertLocked(s.StagedDocs, s.StagedRemove)
	}
}

// ReplayUpsert re-applies a journaled upsert without emitting an event.
// Replay is idempotent: re-staging an already-staged document overwrites
// it in place.
func (p *Plane) ReplayUpsert(docs []vectordb.Document, remove []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.upsertLocked(docs, remove)
}

// ReplaySwap re-applies a journaled promotion without emitting an event.
// A promotion at or below the current version is stale — the snapshot
// already covered it, and therefore also covered every upsert journaled
// before it, so any delta those upserts re-staged is discarded. A newer
// version promotes the staged epoch, or — when nothing is staged —
// republishes the current corpus under the journaled version.
func (p *Plane) ReplaySwap(version uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.cur.Load()
	if version <= cur.version {
		p.staged = nil
		p.stagedAdds, p.stagedRemoves = nil, nil
		return
	}
	if p.staged != nil {
		p.promoteLocked(version)
		return
	}
	p.cur.Store(&epoch{version: version, docs: cur.docs, index: cur.index})
}
