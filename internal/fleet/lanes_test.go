package fleet

import (
	"sync"
	"sync/atomic"
	"testing"

	"ioagent/internal/llm"
)

// gatedClient blocks every model call until the gate closes, and signals
// once when the first call begins — i.e. once a worker has dequeued a job
// and started its pipeline.
type gatedClient struct {
	inner   llm.Client
	gate    chan struct{}
	started chan struct{}
	first   atomic.Bool
}

func (g *gatedClient) Complete(req llm.Request) (llm.Response, error) {
	if g.first.CompareAndSwap(false, true) {
		close(g.started)
	}
	<-g.gate
	return g.inner.Complete(req)
}

// laneRecorder captures terminal-event order through the job-event hook
// (which the pool fires synchronously from the worker, so "events before
// mine" is exactly "jobs finished before mine").
type laneRecorder struct {
	mu   sync.Mutex
	done []Event
}

func (r *laneRecorder) hook(ev Event) {
	if ev.Kind == EventDone || ev.Kind == EventFailed {
		r.mu.Lock()
		r.done = append(r.done, ev)
		r.mu.Unlock()
	}
}

func (r *laneRecorder) doneLanes() []Lane {
	r.mu.Lock()
	defer r.mu.Unlock()
	lanes := make([]Lane, len(r.done))
	for i, ev := range r.done {
		lanes[i] = ev.Job.Lane
	}
	return lanes
}

func TestSubmitLaneDefaultsAndValidation(t *testing.T) {
	p := New(llm.NewSim(), testConfig(2))
	defer p.Close()

	j, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if j.Lane() != LaneInteractive {
		t.Errorf("Submit lane = %q, want the interactive default", j.Lane())
	}
	if info := j.Info(); info.Lane != LaneInteractive {
		t.Errorf("JobInfo lane = %q, want interactive", info.Lane)
	}

	jb, err := p.SubmitWith(testTrace(1), SubmitOpts{Lane: LaneBatch})
	if err != nil {
		t.Fatal(err)
	}
	if jb.Lane() != LaneBatch {
		t.Errorf("SubmitWith batch lane = %q", jb.Lane())
	}

	if _, err := p.SubmitWith(testTrace(2), SubmitOpts{Lane: "bulk"}); err == nil {
		t.Error("unknown lane must be rejected")
	}
}

// TestBatchFloodCannotStarveInteractive is the ISSUE acceptance scenario:
// with one worker pinned on a batch job and the batch lane full to its
// QueueDepth, a late interactive submission still dequeues next and
// completes while every flooded batch job is still queued.
func TestBatchFloodCannotStarveInteractive(t *testing.T) {
	const depth = 4
	gate := &gatedClient{inner: llm.NewSim(), gate: make(chan struct{}), started: make(chan struct{})}
	rec := &laneRecorder{}
	cfg := testConfig(1)
	cfg.QueueDepth = depth
	cfg.OnJobEvent = rec.hook
	p := New(gate, cfg)
	defer p.Close()

	// One batch job occupies the worker (blocked at the gate)...
	if _, err := p.SubmitWith(testTrace(100), SubmitOpts{Lane: LaneBatch}); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	// ...and a full QueueDepth of batch jobs saturates the batch lane.
	for i := 0; i < depth; i++ {
		if _, err := p.SubmitWith(testTrace(101+i), SubmitOpts{Lane: LaneBatch}); err != nil {
			t.Fatal(err)
		}
	}
	ji, err := p.SubmitWith(testTrace(200), SubmitOpts{Lane: LaneInteractive})
	if err != nil {
		t.Fatal(err)
	}

	if m := p.Metrics(); m.QueuedBatch != depth || m.QueuedInteractive != 1 {
		t.Fatalf("pre-release queue = %d batch / %d interactive, want %d / 1",
			m.QueuedBatch, m.QueuedInteractive, depth)
	}

	close(gate.gate)
	if _, err := ji.Wait(); err != nil {
		t.Fatal(err)
	}
	p.Wait()

	// Completion order: the running batch job finishes first (it owned
	// the worker), the interactive job second — before any flooded batch
	// job, i.e. while all `depth` of them were still queued.
	lanes := rec.doneLanes()
	batchDoneBeforeInteractive := 0
	for _, lane := range lanes {
		if lane == LaneInteractive {
			break
		}
		batchDoneBeforeInteractive++
	}
	if batchDoneBeforeInteractive > 1 {
		t.Errorf("interactive job completed after %d batch jobs (order %v); a batch flood must not delay it past the in-flight job",
			batchDoneBeforeInteractive, lanes)
	}
}

// TestInteractiveFloodKeepsBatchShare is the reverse guarantee: under a
// saturating interactive workload, the weighted dequeue still hands every
// BatchShare-th worker slot to the batch lane.
func TestInteractiveFloodKeepsBatchShare(t *testing.T) {
	gate := &gatedClient{inner: llm.NewSim(), gate: make(chan struct{}), started: make(chan struct{})}
	rec := &laneRecorder{}
	cfg := testConfig(1)
	cfg.QueueDepth = 4
	cfg.BatchShare = 2 // every 2nd dequeue prefers batch
	cfg.OnJobEvent = rec.hook
	p := New(gate, cfg)
	defer p.Close()

	// Interactive job on the worker, three more flooding the lane, one
	// batch job waiting behind them.
	if _, err := p.SubmitWith(testTrace(300), SubmitOpts{Lane: LaneInteractive}); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	for i := 0; i < 3; i++ {
		if _, err := p.SubmitWith(testTrace(301+i), SubmitOpts{Lane: LaneInteractive}); err != nil {
			t.Fatal(err)
		}
	}
	jb, err := p.SubmitWith(testTrace(400), SubmitOpts{Lane: LaneBatch})
	if err != nil {
		t.Fatal(err)
	}

	close(gate.gate)
	if _, err := jb.Wait(); err != nil {
		t.Fatal(err)
	}
	p.Wait()

	// Dequeue #2 prefers batch (2 % BatchShare == 0), so the batch job
	// runs second — it must not wait out the whole interactive flood.
	lanes := rec.doneLanes()
	interactiveDoneBeforeBatch := 0
	for _, lane := range lanes {
		if lane == LaneBatch {
			break
		}
		interactiveDoneBeforeBatch++
	}
	if interactiveDoneBeforeBatch > 1 {
		t.Errorf("batch job waited behind %d interactive jobs (order %v); BatchShare must reserve its slot",
			interactiveDoneBeforeBatch, lanes)
	}
}

// TestStrictPriorityDrainsInteractiveFirst pins the BatchShare<0 mode:
// batch runs only when the interactive lane is empty.
func TestStrictPriorityDrainsInteractiveFirst(t *testing.T) {
	gate := &gatedClient{inner: llm.NewSim(), gate: make(chan struct{}), started: make(chan struct{})}
	rec := &laneRecorder{}
	cfg := testConfig(1)
	cfg.QueueDepth = 8
	cfg.BatchShare = -1
	cfg.OnJobEvent = rec.hook
	p := New(gate, cfg)
	defer p.Close()

	if _, err := p.SubmitWith(testTrace(500), SubmitOpts{Lane: LaneBatch}); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	for i := 0; i < 3; i++ {
		if _, err := p.SubmitWith(testTrace(501+i), SubmitOpts{Lane: LaneBatch}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := p.SubmitWith(testTrace(600+i), SubmitOpts{Lane: LaneInteractive}); err != nil {
			t.Fatal(err)
		}
	}

	close(gate.gate)
	p.Wait()

	// After the in-flight batch job, every interactive job must complete
	// before any queued batch job.
	lanes := rec.doneLanes()
	if len(lanes) != 7 {
		t.Fatalf("recorded %d completions, want 7", len(lanes))
	}
	want := []Lane{LaneBatch, LaneInteractive, LaneInteractive, LaneInteractive, LaneBatch, LaneBatch, LaneBatch}
	for i, lane := range lanes {
		if lane != want[i] {
			t.Fatalf("completion order = %v, want %v (strict interactive priority)", lanes, want)
		}
	}
}

func TestBatchShareClampsDegenerateValues(t *testing.T) {
	// BatchShare=1 would prefer batch on every dequeue — the inverse of
	// the anti-starvation guarantee — so defaults clamp it to 2.
	cfg := Config{BatchShare: 1}.withDefaults()
	if cfg.BatchShare != 2 {
		t.Errorf("BatchShare=1 clamped to %d, want 2", cfg.BatchShare)
	}
	if got := (Config{}).withDefaults().BatchShare; got != 4 {
		t.Errorf("default BatchShare = %d, want 4", got)
	}
	if got := (Config{BatchShare: -3}).withDefaults().BatchShare; got != -3 {
		t.Errorf("strict-priority BatchShare = %d, want preserved", got)
	}
}
