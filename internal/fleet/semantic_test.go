package fleet

import (
	"strings"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/llm"
)

// nearDuplicate derives a trace with a different content digest but an
// identical I/O profile: the text rendering with one extra metadata line.
// Metadata is hashed into the digest but contributes nothing to semcache
// features, which is exactly the near-duplicate shape the similarity cache
// exists for.
func nearDuplicate(t *testing.T, log *darshan.Log, variant string) *darshan.Log {
	t.Helper()
	text, err := darshan.TextString(log)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := darshan.ParseText(strings.NewReader(text + "# metadata: bench_variant = " + variant + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return dup
}

func semConfig(workers int) Config {
	cfg := testConfig(workers)
	cfg.SemCache = true
	// Unit tests exercise the reuse mechanics, not threshold calibration
	// (the bench does that), so gate on a low blended confidence.
	cfg.GateThreshold = 0.5
	return cfg
}

func TestSemanticReuseServesNearDuplicate(t *testing.T) {
	p := New(llm.NewSim(), semConfig(2))
	defer p.Close()

	base := testTrace(1)
	j1, err := p.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}

	j2, err := p.Submit(nearDuplicate(t, base, "b1"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}

	info := j2.Info()
	if j2.Digest() == j1.Digest() {
		t.Fatal("near-duplicate collapsed to the same digest; test premise broken")
	}
	if !info.SimilarityHit {
		t.Fatalf("near-duplicate was not a similarity hit: %+v", info)
	}
	if info.CacheHit {
		t.Error("similarity hit must not also claim an exact cache hit")
	}
	if info.SourceDigest != j1.Digest() {
		t.Errorf("source digest = %.12s, want the original job's %.12s", info.SourceDigest, j1.Digest())
	}
	if info.Confidence < 0.5 {
		t.Errorf("stamped confidence %.3f below the gate threshold", info.Confidence)
	}
	res1, _ := j1.Wait()
	if res2.Text != res1.Text {
		t.Error("similarity hit must serve the source's diagnosis text")
	}

	m := p.Metrics()
	if m.SemHits != 1 {
		t.Errorf("SemHits = %d, want 1", m.SemHits)
	}
	if m.SemEntries != 1 {
		t.Errorf("SemEntries = %d, want 1 (reused results are not re-indexed)", m.SemEntries)
	}

	// A third submission of the same near-duplicate is now an EXACT cache
	// hit: the reused diagnosis was cached under the new digest too.
	j3, err := p.Submit(nearDuplicate(t, base, "b1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(); err != nil {
		t.Fatal(err)
	}
	if !j3.Info().CacheHit {
		t.Error("resubmitted near-duplicate should exact-hit the cache")
	}
}

func TestSemanticGateRejectFallsThroughToFresh(t *testing.T) {
	cfg := semConfig(2)
	// An unsatisfiable gate: every candidate is rejected, so every
	// submission must provably fall through to a fresh diagnosis.
	cfg.GateThreshold = 2.0
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	base := testTrace(1)
	j1, err := p.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}

	j2, err := p.Submit(nearDuplicate(t, base, "b1"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	info := j2.Info()
	if info.SimilarityHit {
		t.Fatalf("gate at threshold 2.0 must reject, got similarity hit: %+v", info)
	}
	if info.Attempts < 1 {
		t.Error("rejected candidate must fall through to a fresh diagnosis attempt")
	}
	if res == nil || res.Text == "" {
		t.Error("fresh diagnosis after gate reject is empty")
	}
	m := p.Metrics()
	if m.SemGateRejects != 1 {
		t.Errorf("SemGateRejects = %d, want 1", m.SemGateRejects)
	}
	if m.SemHits != 0 {
		t.Errorf("SemHits = %d, want 0", m.SemHits)
	}
	// The fresh result was indexed: both digests now carry vectors.
	if m.SemEntries != 2 {
		t.Errorf("SemEntries = %d, want 2", m.SemEntries)
	}
}

func TestCacheEvictDropsSemVector(t *testing.T) {
	var evicted []string
	cfg := semConfig(1)
	cfg.CacheSize = 1       // every fresh result evicts the previous one
	cfg.GateThreshold = 2.0 // force fresh diagnoses: this test is about eviction
	cfg.SemCacheSize = 16
	cfg.OnCacheEvict = func(d string) { evicted = append(evicted, d) }
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	j1, err := p.Submit(testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	j2, err := p.Submit(testTrace(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatal(err)
	}

	// j2's insertion evicted j1 from the result cache; the similarity
	// vector must be gone with it, or reuse could cite a diagnosis the
	// cache can no longer serve.
	if p.SemLen() != 1 {
		t.Fatalf("SemLen = %d after eviction, want 1", p.SemLen())
	}
	for _, e := range p.SemExport() {
		if e.Digest == j1.Digest() {
			t.Error("evicted digest still has a similarity vector")
		}
	}
	// The user's own eviction hook still fires after the chained one.
	found := false
	for _, d := range evicted {
		if d == j1.Digest() {
			found = true
		}
	}
	if !found {
		t.Error("user OnCacheEvict hook was not chained")
	}
}

func TestSemRestoreDropsUnbackedEntries(t *testing.T) {
	p := New(llm.NewSim(), semConfig(1))
	defer p.Close()

	j, err := p.Submit(testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	entries := p.SemExport()
	if len(entries) != 1 {
		t.Fatalf("exported %d sem entries, want 1", len(entries))
	}

	// A fresh pool restoring the similarity index WITHOUT the cache
	// snapshot must drop the orphaned vector: reuse may never point at a
	// diagnosis the cache cannot serve.
	p2 := New(llm.NewSim(), semConfig(1))
	defer p2.Close()
	p2.SemRestore(entries)
	if p2.SemLen() != 0 {
		t.Errorf("SemLen = %d after restoring without cache backing, want 0", p2.SemLen())
	}

	// With the cache restored first, the vector survives.
	p3 := New(llm.NewSim(), semConfig(1))
	defer p3.Close()
	p3.CacheRestore(p.CacheExport())
	p3.SemRestore(entries)
	if p3.SemLen() != 1 {
		t.Errorf("SemLen = %d after cache-backed restore, want 1", p3.SemLen())
	}
}

func TestTierLadderCheapFirst(t *testing.T) {
	cfg := testConfig(2)
	cfg.TierModels = []string{llm.GPT4oMini, llm.GPT4o}
	cfg.TierThreshold = 0.01 // any self-check score accepts the cheap rung
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	j, err := p.Submit(testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	if m.Tiers[llm.GPT4oMini].Jobs != 1 {
		t.Errorf("cheap tier jobs = %d, want 1", m.Tiers[llm.GPT4oMini].Jobs)
	}
	if m.Tiers[llm.GPT4o].Jobs != 0 {
		t.Errorf("expensive tier ran %d jobs at threshold 0.01, want 0", m.Tiers[llm.GPT4o].Jobs)
	}
	if m.TierEscalations != 0 {
		t.Errorf("escalations = %d, want 0", m.TierEscalations)
	}
	stats := p.StatsByModel()
	if stats[llm.GPT4oMini].Calls == 0 {
		t.Error("StatsByModel shows no cheap-tier calls")
	}
}

func TestTierLadderEscalatesOnLowConfidence(t *testing.T) {
	cfg := testConfig(2)
	cfg.TierModels = []string{llm.GPT4oMini, llm.GPT4o}
	cfg.TierThreshold = 1.1 // unsatisfiable: always escalate to the top rung
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	j, err := p.Submit(testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	if m.Tiers[llm.GPT4oMini].Jobs != 1 || m.Tiers[llm.GPT4o].Jobs != 1 {
		t.Errorf("tier jobs = %+v, want one per rung", m.Tiers)
	}
	if m.TierEscalations != 1 {
		t.Errorf("escalations = %d, want 1", m.TierEscalations)
	}
}

func TestTierBudgetStopsEscalation(t *testing.T) {
	cfg := testConfig(2)
	cfg.TierModels = []string{llm.GPT4oMini, llm.GPT4o}
	cfg.TierThreshold = 1.1 // would always escalate...
	cfg.TierBudgetUSD = 1e-9
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	// First job spends past the (tiny) budget; subsequent jobs must stay
	// on the cheapest rung.
	for i := 1; i <= 2; i++ {
		j, err := p.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	m := p.Metrics()
	if got := m.Tiers[llm.GPT4o].Jobs; got != 0 {
		t.Errorf("expensive tier ran %d jobs with the budget exhausted, want 0", got)
	}
	if got := m.Tiers[llm.GPT4oMini].Jobs; got != 2 {
		t.Errorf("cheap tier jobs = %d, want 2", got)
	}
}
