package fleet

import (
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

// fenceWorkload builds the same deterministic tiny-write workload twice:
// once as a counter-only Darshan log and once as the counter view derived
// from its DXT per-operation stream. The two sit very close in feature
// space — same workload, same drishti labels — which is exactly the
// near-duplicate shape the similarity cache would reuse across if the
// modality fence did not exist.
func fenceWorkload(enableDXT bool) *iosim.Sim {
	s := iosim.New(iosim.Config{Seed: 77, NProcs: 4, EnableDXT: enableDXT})
	iosim.FilePerProcessWrite(s, "/scratch/fence.%d", iosim.POSIX, nil, 256<<10, 3000)
	return s
}

// TestCrossModalityFenceBlocksReuse: a DXT-rendered trace must never be
// served a diagnosis produced from Darshan counters via a similarity hit,
// and vice versa. The thresholds are set so that NOTHING except the fence
// stands between the candidate and reuse — any candidate passes the
// similarity prefilter and the gate — so a similarity hit here can only
// mean the fence failed.
func TestCrossModalityFenceBlocksReuse(t *testing.T) {
	cfg := semConfig(2)
	cfg.SimThreshold = 0.0001  // every candidate reaches the fence
	cfg.GateThreshold = 0.0001 // and would pass the gate
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	counterLog := fenceWorkload(false).Finalize()
	dxtLog := darshan.FromDXT(fenceWorkload(true).DXT())

	j1, err := p.Submit(counterLog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(); err != nil {
		t.Fatal(err)
	}

	j2, err := p.Submit(dxtLog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	info := j2.Info()
	if j2.Digest() == j1.Digest() {
		t.Fatal("counter and DXT renderings collapsed to one digest; test premise broken")
	}
	if info.CacheHit {
		t.Fatal("DXT trace exact-hit the counter trace's cache entry")
	}
	if info.SimilarityHit {
		t.Fatalf("cross-modality fence breached: DXT trace served a Darshan-counter diagnosis (source %.12s)", info.SourceDigest)
	}

	// Control: under these same thresholds, a same-modality near-duplicate
	// IS reused — proving the fence (not the thresholds) blocked j2.
	j3, err := p.Submit(nearDuplicate(t, counterLog, "fence"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(); err != nil {
		t.Fatal(err)
	}
	info3 := j3.Info()
	if !info3.SimilarityHit {
		t.Fatalf("same-modality near-duplicate was not reused under open thresholds: %+v", info3)
	}
	if info3.SourceDigest != j1.Digest() {
		t.Errorf("control reuse source = %.12s, want the counter log %.12s (not the DXT entry)", info3.SourceDigest, j1.Digest())
	}

	// And the symmetric direction: a DXT near-duplicate (timestamps
	// nudged by one text-precision quantum, so the digest differs) must
	// reuse the DXT entry, never the counter one.
	shifted := fenceWorkload(true).DXT()
	for i := range shifted.Events {
		shifted.Events[i].Start += 2e-6
		shifted.Events[i].End += 2e-6
	}
	j4, err := p.Submit(darshan.FromDXT(shifted))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j4.Wait(); err != nil {
		t.Fatal(err)
	}
	info4 := j4.Info()
	if j4.Digest() == j2.Digest() {
		t.Fatal("timestamp-shifted DXT trace collapsed to the same digest; test premise broken")
	}
	if !info4.SimilarityHit {
		t.Fatalf("DXT near-duplicate was not reused from the DXT entry: %+v", info4)
	}
	if info4.SourceDigest != j2.Digest() {
		t.Errorf("DXT reuse source = %.12s, want the DXT entry %.12s (not the counter one)", info4.SourceDigest, j2.Digest())
	}
}
