package semcache

import (
	"bytes"
	"strings"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/drishti"
	"ioagent/internal/llm"
	"ioagent/internal/tracebench"
)

// trace returns a deterministic benchmark log by suite name.
func trace(t *testing.T, name string) *darshan.Log {
	t.Helper()
	for _, tr := range tracebench.Suite() {
		if tr.Name == name {
			return tr.Log()
		}
	}
	t.Fatalf("trace %q not in suite", name)
	return nil
}

// TestFeatureTextRenderingDeterminism is the satellite requirement: the
// same trace arriving as canonical binary and as darshan-parser text must
// extract byte-identical feature texts, mirroring PR 5's rendering-neutral
// ContentDigest property.
func TestFeatureTextRenderingDeterminism(t *testing.T) {
	for _, tr := range tracebench.Suite()[:6] {
		log := tr.Log()

		var bin bytes.Buffer
		if err := darshan.Encode(&bin, log); err != nil {
			t.Fatalf("%s: Encode: %v", tr.Name, err)
		}
		fromBinary, err := darshan.Decode(&bin)
		if err != nil {
			t.Fatalf("%s: Decode: %v", tr.Name, err)
		}

		text, err := darshan.TextString(log)
		if err != nil {
			t.Fatalf("%s: TextString: %v", tr.Name, err)
		}
		fromText, err := darshan.ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: ParseText: %v", tr.Name, err)
		}

		fb := FeatureText(fromBinary)
		ft := FeatureText(fromText)
		if fb != ft {
			t.Errorf("%s: binary and text renderings extract different features:\nbinary: %s\ntext:   %s", tr.Name, fb, ft)
		}
		if fb == "" {
			t.Errorf("%s: empty feature text", tr.Name)
		}
	}
}

func TestFeatureTextSeparatesWorkloads(t *testing.T) {
	suite := tracebench.Suite()
	a := FeatureText(suite[0].Log())
	b := FeatureText(suite[len(suite)-1].Log())
	if a == b {
		t.Errorf("different workloads produced identical features: %s", a)
	}
}

func TestFeatureTokensSurviveEmbedding(t *testing.T) {
	// Every feature token must carry letters: internal/embed drops
	// bare-number tokens, so a digits-only token would silently vanish
	// from the vector.
	ft := FeatureText(trace(t, tracebench.Suite()[0].Name))
	for _, tok := range strings.Fields(ft) {
		hasLetter := false
		for _, r := range tok {
			if r >= 'a' && r <= 'z' {
				hasLetter = true
				break
			}
		}
		if !hasLetter {
			t.Errorf("feature token %q has no letters and would be dropped by the tokenizer", tok)
		}
	}
}

func TestIndexLookupFindsNearDuplicate(t *testing.T) {
	suite := tracebench.Suite()
	base := suite[0].Log()

	// A near-duplicate: the same trace with one metadata line appended —
	// different ContentDigest, identical I/O profile.
	text, err := darshan.TextString(base)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := darshan.ParseText(strings.NewReader(text + "# metadata: bench_variant = b1\n"))
	if err != nil {
		t.Fatal(err)
	}

	ix := NewIndex(16)
	ix.Add("digest-base", FeatureText(base))
	for i, tr := range suite[1:5] {
		ix.Add("digest-other-"+string(rune('a'+i)), FeatureText(tr.Log()))
	}

	hits := ix.Lookup(FeatureText(dup), 3)
	if len(hits) == 0 {
		t.Fatal("no candidates for a near-duplicate")
	}
	if hits[0].Digest != "digest-base" {
		t.Errorf("top candidate = %s (%.3f), want digest-base", hits[0].Digest, hits[0].Score)
	}
	if hits[0].Score < 0.99 {
		t.Errorf("near-duplicate similarity = %.3f, want ~1.0", hits[0].Score)
	}
}

func TestIndexRemoveAndBound(t *testing.T) {
	ix := NewIndex(2)
	ix.Add("d1", "moda lblone profilem3")
	ix.Add("d2", "modb lbltwo profilem4")
	ix.Add("d3", "modc lblthree profilem5") // evicts d1 (oldest)
	if ix.Len() != 2 {
		t.Fatalf("len = %d after cap eviction, want 2", ix.Len())
	}
	for _, c := range ix.Lookup("moda lblone profilem3", 5) {
		if c.Digest == "d1" {
			t.Error("evicted digest still retrievable")
		}
	}
	ix.Remove("d2")
	if ix.Len() != 1 {
		t.Fatalf("len = %d after Remove, want 1", ix.Len())
	}

	// Re-adding an existing digest must not duplicate its vector.
	ix.Add("d3", "modc lblthree profilem6")
	if ix.Len() != 1 {
		t.Fatalf("len = %d after re-add, want 1", ix.Len())
	}
}

func TestIndexExportRestore(t *testing.T) {
	ix := NewIndex(8)
	ix.Add("d1", "moda lblone profilem3")
	ix.Add("d2", "modb lbltwo profilem4")
	ix.Remove("d1")

	entries := ix.Export()
	if len(entries) != 1 || entries[0].Digest != "d2" {
		t.Fatalf("export = %+v, want just d2", entries)
	}

	back := NewIndex(8)
	back.Restore(entries)
	hits := back.Lookup("modb lbltwo profilem4", 1)
	if len(hits) != 1 || hits[0].Digest != "d2" {
		t.Fatalf("restored lookup = %+v, want d2", hits)
	}
}

func TestGateAcceptsMatchingDiagnosis(t *testing.T) {
	suite := tracebench.Suite()
	var log *darshan.Log
	// Pick a trace where drishti actually fires, so the gate has labels to
	// cross-check.
	for _, tr := range suite {
		l := tr.Log()
		if len(drishti.Analyze(l).Labels()) > 0 {
			log = l
			break
		}
	}
	if log == nil {
		t.Fatal("no trace with drishti labels in suite")
	}
	// The cached diagnosis for a true near-duplicate: the trace's own
	// heuristic report (claims exactly the right labels).
	cached := drishti.Analyze(log).Format()

	g := &Gate{Client: llm.NewSim()}
	dec, err := g.Evaluate(log, cached, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Reuse {
		t.Errorf("gate rejected a label-perfect candidate at sim 0.99: conf %.3f (f1 %.2f judge %.2f)",
			dec.Confidence, dec.LabelF1, dec.JudgeScore)
	}
	if dec.Confidence < DefaultGateThreshold {
		t.Errorf("confidence %.3f below threshold for matching diagnosis", dec.Confidence)
	}
}

func TestGateRejectsMismatchedDiagnosis(t *testing.T) {
	suite := tracebench.Suite()
	var log *darshan.Log
	for _, tr := range suite {
		l := tr.Log()
		if len(drishti.Analyze(l).Labels()) > 0 {
			log = l
			break
		}
	}
	if log == nil {
		t.Fatal("no trace with drishti labels in suite")
	}
	// A cached diagnosis claiming entirely unrelated issues.
	wrong := "Analysis of I/O behavior.\n\nISSUE: random reads\nThe trace shows scattered small random read accesses.\n\nISSUE: high metadata load\nMetadata operations dominate runtime.\n"

	g := &Gate{Client: llm.NewSim()}
	dec, err := g.Evaluate(log, wrong, 0.86)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reuse {
		t.Errorf("gate accepted a mismatched diagnosis: conf %.3f (f1 %.2f judge %.2f)",
			dec.Confidence, dec.LabelF1, dec.JudgeScore)
	}
}
