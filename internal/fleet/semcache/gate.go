package semcache

import (
	"fmt"

	"ioagent/internal/darshan"
	"ioagent/internal/drishti"
	"ioagent/internal/issue"
	"ioagent/internal/judge"
	"ioagent/internal/llm"
)

// nullReport is the gate's fixed judging baseline: a diagnosis that claims
// no issues at all. Judging the candidate against this null hypothesis —
// instead of against another live diagnosis — gives the judge a stable
// reference point: a cached diagnosis that matches the new trace's issue
// labels should beat "nothing is wrong" decisively, while one that claims
// the wrong issues loses ground to it.
const nullReport = "No significant I/O performance issues detected."

// Gate decides whether a similarity candidate's cached diagnosis can be
// reused for a new trace.
type Gate struct {
	// Client evaluates the judge prompts (typically the pool's LLM client).
	Client llm.Client
	// Model is the judging model; a cheap tier is fine because the gate's
	// decision also leans on label agreement and vector similarity.
	// Defaults to gpt-4o-mini-sim.
	Model string
	// Threshold is the minimum blended confidence to allow reuse.
	// Defaults to DefaultGateThreshold.
	Threshold float64
}

// DefaultGateThreshold is the reuse cut-off for the blended confidence.
// The blend is 0.5·sim + 0.25·labelF1 + 0.25·judge: a label-matched
// candidate at the 0.85 similarity floor scores ≥ 0.75 with even a neutral
// judge verdict, while a label-mismatched one tops out near 0.67.
const DefaultGateThreshold = 0.70

// Decision is the gate's verdict on one candidate.
type Decision struct {
	// Reuse reports whether the cached diagnosis may be served.
	Reuse bool
	// Confidence is the blended score in [0, 1] compared against the
	// threshold; it is stamped on reused diagnoses as provenance.
	Confidence float64
	// LabelF1 and JudgeScore are the non-similarity components, exposed
	// for metrics and tests.
	LabelF1    float64
	JudgeScore float64
}

// Evaluate scores whether candidateText (the cached diagnosis of another
// trace) applies to log. sim is the feature-vector cosine similarity that
// proposed the candidate.
//
// Confidence blends three independent views of "same diagnosis":
//
//   - sim (weight 0.5): how close the traces' I/O profiles are;
//   - label F1 (weight 0.25): agreement between the labels the cached
//     diagnosis claims and the new trace's own drishti heuristic labels —
//     an LLM-free cross-check that catches reuse across workloads that
//     happen to have nearby counter profiles but different issues;
//   - judge score (weight 0.25): an LLM judge ranking the cached diagnosis
//     against the null "no issues" report under the accuracy criterion,
//     with the new trace's heuristic labels as ground truth.
//
// Gate errors (judge transport, malformed rankings) are returned so the
// caller can fall through to a fresh diagnosis rather than guess.
func (g *Gate) Evaluate(log *darshan.Log, candidateText string, sim float64) (Decision, error) {
	truth := drishti.Analyze(darshan.Canonical(log)).Labels()

	_, _, f1 := issue.F1(truth, llm.ClaimedLabels(candidateText))

	model := g.Model
	if model == "" {
		model = llm.GPT4oMini
	}
	j := &judge.Judge{
		Client:       g.Client,
		Model:        model,
		Permutations: 2,
		Augment:      judge.All(),
	}
	entries := []judge.Entry{
		{Tool: "cached-diagnosis", Text: candidateText},
		{Tool: "baseline", Text: nullReport},
	}
	ranks, err := j.MeanRanks(entries, judge.Accuracy, truth)
	if err != nil {
		return Decision{}, fmt.Errorf("semcache: gate: %w", err)
	}
	// With two candidates the mean rank of the cached diagnosis is in
	// [1, 2]; map rank 1 (always beats the null report) to 1.0 and rank 2
	// (always loses to it) to 0.0.
	judgeScore := clamp01(2 - ranks[0])

	conf := 0.5*sim + 0.25*f1 + 0.25*judgeScore
	threshold := g.Threshold
	if threshold <= 0 {
		threshold = DefaultGateThreshold
	}
	return Decision{
		Reuse:      conf >= threshold,
		Confidence: conf,
		LabelF1:    f1,
		JudgeScore: judgeScore,
	}, nil
}

// ScoreDiagnosis rates how well a freshly produced diagnosis fits the
// trace, on the gate's label-F1 and judge components only (no similarity
// term — the diagnosis is OF this trace, there is no candidate distance).
// The fleet's tier scheduler compares the score against its escalation
// threshold: a cheap model whose answer already agrees with the heuristics
// and beats the null report needs no frontier-model second opinion.
func (g *Gate) ScoreDiagnosis(log *darshan.Log, diagnosisText string) (float64, error) {
	truth := drishti.Analyze(darshan.Canonical(log)).Labels()
	_, _, f1 := issue.F1(truth, llm.ClaimedLabels(diagnosisText))

	model := g.Model
	if model == "" {
		model = llm.GPT4oMini
	}
	j := &judge.Judge{
		Client:       g.Client,
		Model:        model,
		Permutations: 2,
		Augment:      judge.All(),
	}
	entries := []judge.Entry{
		{Tool: "diagnosis", Text: diagnosisText},
		{Tool: "baseline", Text: nullReport},
	}
	ranks, err := j.MeanRanks(entries, judge.Accuracy, truth)
	if err != nil {
		return 0, fmt.Errorf("semcache: score: %w", err)
	}
	return 0.5*f1 + 0.5*clamp01(2-ranks[0]), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
