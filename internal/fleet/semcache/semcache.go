package semcache

import (
	"sort"
	"sync"

	"ioagent/internal/vectordb"
)

// Candidate is one similarity lookup result: a previously diagnosed trace
// whose feature vector is close to the query's.
type Candidate struct {
	// Digest is the ContentDigest-keyed address of the cached diagnosis.
	Digest string
	// Score is the cosine similarity of the feature vectors in [-1, 1].
	Score float64
	// Features is the candidate's stored feature text; its leading token
	// carries the trace modality (see Modality), which the pool's reuse
	// fence compares against the query's before any gate spend.
	Features string
}

// Entry is the persisted form of one indexed trace, exported for snapshot
// round-trips (internal/fleet/store writes these next to the result-cache
// snapshot so reuse survives restarts).
type Entry struct {
	Digest   string `json:"digest"`
	Features string `json:"features"`
}

// Index is the similarity index over diagnosed traces: one document per
// result-cache digest, its text the trace's FeatureText. It is bounded like
// the result cache it mirrors and safe for concurrent use.
type Index struct {
	mu sync.Mutex
	ix *vectordb.Index
	// features remembers each digest's feature text so the index can be
	// exported for persistence without re-deriving features from traces
	// (which are not retained).
	features map[string]string
	maxDocs  int
}

// NewIndex creates an empty similarity index holding at most maxEntries
// traces (0 or negative means unbounded). Each trace is one document with
// one chunk: feature texts are short, and a huge chunk size guarantees the
// 1:1 digest-to-vector mapping lookups assume.
func NewIndex(maxEntries int) *Index {
	s := &Index{features: make(map[string]string), maxDocs: maxEntries}
	s.ix = vectordb.New(vectordb.Options{
		ChunkSize: 1 << 20,
		Overlap:   vectordb.NoOverlap,
		MaxDocs:   maxEntries,
		OnEvict:   func(digest string) { delete(s.features, digest) },
	})
	return s
}

// Add indexes (or re-indexes) the feature text for a diagnosed digest.
// vectordb's OnEvict fires under s.mu (Add is called while holding it),
// which is safe because the callback only touches s.features.
func (s *Index) Add(digest, features string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.features[digest]; ok {
		s.ix.Remove(digest)
	}
	s.features[digest] = features
	s.ix.Add(vectordb.Document{Key: digest, Title: digest, Text: features})
}

// Remove drops a digest's vector, e.g. when the result cache evicts the
// diagnosis it points at. Unknown digests are a no-op.
func (s *Index) Remove(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.features, digest)
	s.ix.Remove(digest)
}

// Lookup returns up to k diagnosed traces most similar to the query
// features, best first.
func (s *Index) Lookup(features string, k int) []Candidate {
	s.mu.Lock()
	hits := s.ix.Search(features, k)
	out := make([]Candidate, 0, len(hits))
	for _, h := range hits {
		out = append(out, Candidate{
			Digest:   h.Chunk.DocKey,
			Score:    h.Score,
			Features: s.features[h.Chunk.DocKey],
		})
	}
	s.mu.Unlock()
	return out
}

// Feature returns the stored feature text for one digest (ok=false when
// the digest is not indexed). The handoff layer attaches it to pushed
// cache entries so the receiver can index the moved diagnosis too.
func (s *Index) Feature(digest string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.features[digest]
	return f, ok
}

// Len returns the number of indexed traces.
func (s *Index) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.features)
}

// Export returns the indexed entries sorted by digest, for snapshotting.
func (s *Index) Export() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.features))
	for d, f := range s.features {
		out = append(out, Entry{Digest: d, Features: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Restore re-adds exported entries (typically after a restart). Entries
// beyond the configured cap evict oldest-first as usual.
func (s *Index) Restore(entries []Entry) {
	for _, e := range entries {
		if e.Digest == "" || e.Features == "" {
			continue
		}
		s.Add(e.Digest, e.Features)
	}
}
