package semcache

import (
	"math"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/drishti"
	"ioagent/internal/iosim"
	"ioagent/internal/llm"
)

// healthyLog builds a trace that fires no drishti triggers: one rank
// streaming large aligned sequential writes. The label-free case is the
// divide-by-zero corner of the gate's F1 term — issue.F1 defines
// (empty, empty) as a perfect 1.0 and (empty truth, non-empty claims)
// as 0.0, and these tests pin the gate to that contract.
func healthyLog(t *testing.T) *darshan.Log {
	t.Helper()
	s := iosim.New(iosim.Config{Seed: 42, NProcs: 1})
	lay := &iosim.Layout{StripeSize: 4 << 20, StripeWidth: 8}
	iosim.FilePerProcessWrite(s, "/scratch/healthy.%d", iosim.POSIX, lay, 64<<20, 4<<20)
	l := s.Finalize()
	if labels := drishti.Analyze(l).Labels(); len(labels) != 0 {
		t.Fatalf("healthy workload unexpectedly fires drishti labels %v; the label-free tests need a clean trace", labels.Sorted())
	}
	return l
}

// TestGateLabelFreeBothEmpty: a label-free trace judged against a cached
// diagnosis that also claims nothing. The F1 term must be the documented
// 1.0 (perfect vacuous agreement), not NaN and not an accidental 0.
func TestGateLabelFreeBothEmpty(t *testing.T) {
	log := healthyLog(t)
	cached := "No significant I/O performance issues detected."

	g := &Gate{Client: llm.NewSim()}
	const sim = 0.90
	dec, err := g.Evaluate(log, cached, sim)
	if err != nil {
		t.Fatal(err)
	}
	if dec.LabelF1 != 1.0 {
		t.Errorf("LabelF1 = %v for empty-vs-empty label sets, want the documented 1.0", dec.LabelF1)
	}
	if math.IsNaN(dec.Confidence) {
		t.Fatal("confidence is NaN on a label-free trace")
	}
	want := 0.5*sim + 0.25*dec.LabelF1 + 0.25*dec.JudgeScore
	if math.Abs(dec.Confidence-want) > 1e-12 {
		t.Errorf("confidence %v does not match the documented blend 0.5·sim + 0.25·F1 + 0.25·judge = %v", dec.Confidence, want)
	}
	if dec.Reuse != (dec.Confidence >= DefaultGateThreshold) {
		t.Errorf("Reuse=%v inconsistent with confidence %.3f vs threshold %.2f", dec.Reuse, dec.Confidence, DefaultGateThreshold)
	}
}

// TestGateLabelFreeMismatchedClaims: a label-free trace must not reuse a
// cached diagnosis that claims concrete issues — the F1 term is 0, and
// even a perfect similarity cannot carry the blend over the threshold on
// its own unless the judge also sides with the claim.
func TestGateLabelFreeMismatchedClaims(t *testing.T) {
	log := healthyLog(t)
	wrong := "Analysis of I/O behavior.\n\nISSUE: small writes\nThe trace shows many Small Write I/O Requests.\n\nISSUE: high metadata load\nHigh Metadata Load dominates runtime.\n"

	g := &Gate{Client: llm.NewSim()}
	const sim = 0.99
	dec, err := g.Evaluate(log, wrong, sim)
	if err != nil {
		t.Fatal(err)
	}
	if dec.LabelF1 != 0 {
		t.Errorf("LabelF1 = %v for empty truth vs non-empty claims, want 0", dec.LabelF1)
	}
	if math.IsNaN(dec.Confidence) {
		t.Fatal("confidence is NaN on a label-free trace")
	}
	want := 0.5*sim + 0.25*dec.LabelF1 + 0.25*dec.JudgeScore
	if math.Abs(dec.Confidence-want) > 1e-12 {
		t.Errorf("confidence %v does not match the documented blend %v", dec.Confidence, want)
	}
	// With F1 pinned at 0 the blend tops out at 0.5·sim + 0.25·judge ≈
	// 0.745 even for a judge that fully believes the wrong claim; the
	// default threshold keeps marginal cases out unless the judge is
	// decisively in favor, which the accuracy criterion (truth is empty)
	// should not be.
	if dec.Reuse {
		t.Errorf("gate reused an issue-claiming diagnosis for a label-free trace: conf %.3f (judge %.2f)", dec.Confidence, dec.JudgeScore)
	}
}

// TestGateBlendWeightsLabeled re-derives the blend on a labeled trace so
// the weight assertions cover both the vacuous-F1 and the normal path.
func TestGateBlendWeightsLabeled(t *testing.T) {
	s := iosim.New(iosim.Config{Seed: 43, NProcs: 4})
	iosim.FilePerProcessWrite(s, "/scratch/tiny.%d", iosim.POSIX, nil, 256<<10, 3000)
	log := s.Finalize()
	if len(drishti.Analyze(log).Labels()) == 0 {
		t.Fatal("tiny-write workload fired no labels; blend test needs a labeled trace")
	}
	cached := drishti.Analyze(log).Format()

	g := &Gate{Client: llm.NewSim()}
	for _, sim := range []float64{0.0, 0.5, 0.85, 1.0} {
		dec, err := g.Evaluate(log, cached, sim)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.5*sim + 0.25*dec.LabelF1 + 0.25*dec.JudgeScore
		if math.Abs(dec.Confidence-want) > 1e-12 {
			t.Errorf("sim %.2f: confidence %v != blend %v", sim, dec.Confidence, want)
		}
		if dec.Reuse != (dec.Confidence >= DefaultGateThreshold) {
			t.Errorf("sim %.2f: Reuse=%v inconsistent with conf %.3f", sim, dec.Reuse, dec.Confidence)
		}
	}
}
