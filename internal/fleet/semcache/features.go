// Package semcache implements semantic result reuse for the diagnosis
// fleet: traces that are near-duplicates of an already-diagnosed trace are
// served from that diagnosis instead of paying a fresh LLM call.
//
// The pipeline has three stages, each in its own file:
//
//   - features.go: a deterministic feature rendering of a trace (module
//     mix, drishti trigger set, order-of-magnitude counter profile) that
//     two renderings of the same trace map to byte-identically;
//   - semcache.go: a bounded similarity index over those features, one
//     document per diagnosed digest, backed by internal/vectordb;
//   - gate.go: a confidence gate that decides whether a candidate's cached
//     diagnosis actually applies to the new trace, combining vector
//     similarity, label agreement, and an LLM judge verdict.
package semcache

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ioagent/internal/darshan"
	"ioagent/internal/drishti"
	"ioagent/internal/dxt"
)

// FeatureText renders a trace as a deterministic feature token stream. Two
// properties matter:
//
//   - Rendering independence: the extractor works on darshan.Canonical(log),
//     the same rendering-neutral form ContentDigest hashes, so the binary
//     and darshan-parser-text forms of one trace produce identical features
//     even though their raw float bits differ.
//   - Embedding survival: internal/embed's tokenizer drops stopwords and
//     bare-number tokens, so every token here embeds its digits inside a
//     letter-bearing word ("m3", "nprocsb2") and carries no free-standing
//     numbers.
//
// The profile is intentionally coarse — order-of-magnitude buckets, not raw
// counter values — so near-duplicate traces (same workload, perturbed
// timestamps or slightly different byte counts) land on nearby vectors
// while genuinely different workloads do not.
func FeatureText(log *darshan.Log) string {
	c := darshan.Canonical(log)
	var toks []string

	// Modality first: a counter-only Darshan log and a DXT per-operation
	// trace are different evidence classes even when their derived
	// counter profiles coincide, and the fleet's reuse fence keys off
	// this leading token (see Modality).
	toks = append(toks, modalityToken(c))

	// Job shape: scale buckets for process count and runtime.
	toks = append(toks,
		fmt.Sprintf("nprocsb%d", magnitude(float64(c.Job.NProcs))),
		fmt.Sprintf("runtimeb%d", magnitude(c.Job.RunTime)))

	// DXT temporal surfaces: burst structure, straggler signal, and the
	// read/write timeline mix — the per-operation evidence counters
	// cannot carry. Derived from the canonical event stream, so every
	// rendering of one trace tokenizes identically.
	if c.DXT != nil {
		t := c.DXT
		reads := 0
		for _, e := range t.Events {
			if e.Op == dxt.OpRead {
				reads++
			}
		}
		_, ratio := t.StragglerRank()
		toks = append(toks,
			fmt.Sprintf("dxteventsm%d", magnitude(float64(len(t.Events)))),
			fmt.Sprintf("dxtburstsm%d", magnitude(float64(len(t.Bursts(0.050, 8))))),
			fmt.Sprintf("dxtstragglerx%d", int(ratio)),
			fmt.Sprintf("dxtreadmixp%d", int(10*float64(reads)/float64(maxInt(len(t.Events), 1)))))
	}

	// Module mix, in canonical module order.
	for _, m := range c.ModuleList() {
		toks = append(toks, "mod"+sanitize(m.String()))
	}

	// Per-module counter profile: each summed counter contributes one token
	// naming the counter and its order of magnitude.
	for _, m := range c.ModuleList() {
		md := c.Modules[m]
		names := counterNames(md)
		for _, name := range names.c {
			if s := md.SumC(name); s != 0 {
				toks = append(toks, counterToken(m.String(), name, float64(s)))
			}
		}
		for _, name := range names.f {
			if s := md.SumF(name); s != 0 {
				toks = append(toks, counterToken(m.String(), name, s))
			}
		}
	}

	// Heuristic view: fired triggers and the Warn+ issue labels. These are
	// the strongest signal that two traces have the same diagnosis.
	dr := drishti.Analyze(c)
	for _, h := range dr.Hits {
		toks = append(toks, "trig"+sanitize(h.TriggerID))
	}
	for _, l := range dr.Labels().Sorted() {
		toks = append(toks, "lbl"+sanitize(string(l)))
	}

	return strings.Join(toks, " ")
}

// Modality names the trace modality encoded in a feature text:
// "dxt" for per-operation extended-tracing streams, "darshan" for
// counter-only logs. It reads the leading modality token FeatureText
// emits, so it works on both fresh and persisted feature strings;
// feature texts from before the modality token default to "darshan"
// (the only modality that existed then).
func Modality(features string) string {
	const prefix = "modality"
	tok, _, _ := strings.Cut(features, " ")
	if strings.HasPrefix(tok, prefix) {
		return tok[len(prefix):]
	}
	return "darshan"
}

// modalityToken renders the leading modality token for a canonical log.
func modalityToken(c *darshan.Log) string {
	if c.DXT != nil {
		return "modalitydxt"
	}
	return "modalitydarshan"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// counterToken renders one summed counter as a single embeddable token,
// e.g. "posixposixwritesm4" for ~10^4 POSIX_WRITES.
func counterToken(module, counter string, sum float64) string {
	return fmt.Sprintf("%s%sm%d", sanitize(module), sanitize(counter), magnitude(sum))
}

// magnitude buckets a value by order of magnitude: floor(log10(|v|)),
// clamped to [0, 15]; zero maps to 0.
func magnitude(v float64) int {
	v = math.Abs(v)
	if v < 1 {
		return 0
	}
	m := int(math.Floor(math.Log10(v)))
	if m > 15 {
		m = 15
	}
	return m
}

// sanitize lowercases s and strips everything but letters and digits so the
// result survives embed.Tokenize as one token.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// moduleCounterNames holds a module's counter names in sorted order.
type moduleCounterNames struct {
	c []string // integer counters
	f []string // float counters
}

// counterNames collects the distinct counter names across a module's
// records, sorted so iteration order never depends on map order.
func counterNames(md *darshan.ModuleData) moduleCounterNames {
	cset := map[string]struct{}{}
	fset := map[string]struct{}{}
	for _, r := range md.Records {
		for name := range r.Counters {
			cset[name] = struct{}{}
		}
		for name := range r.FCounters {
			fset[name] = struct{}{}
		}
	}
	out := moduleCounterNames{
		c: make([]string, 0, len(cset)),
		f: make([]string, 0, len(fset)),
	}
	for name := range cset {
		out.c = append(out.c, name)
	}
	for name := range fset {
		out.f = append(out.f, name)
	}
	sort.Strings(out.c)
	sort.Strings(out.f)
	return out
}
