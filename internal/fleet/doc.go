// Package fleet turns the single-shot IOAgent pipeline into a
// high-throughput batch-diagnosis service — the serving layer the paper's
// production framing ("a tool center operators can point at every job's
// Darshan log") needs but the reference implementation stops short of.
//
// A Pool shards a stream of Darshan traces across a bounded set of
// concurrent workers that share one race-free ioagent.Agent and one
// knowledge index. Diagnosis time is dominated by LLM round trips, not
// local compute, so N workers overlapping their waits yield near-linear
// throughput scaling (see BenchmarkFleet_Throughput at the repo root).
//
// Three layers keep repeated work free and transient failures invisible:
//
//   - a content-addressed result cache: jobs are keyed by a SHA-256 digest
//     of the binary trace plus the pipeline options, held in an LRU with a
//     TTL, so resubmitting an already-diagnosed trace completes instantly;
//   - in-flight coalescing: a submission whose digest matches a job still
//     running attaches to it and shares its result instead of duplicating
//     the pipeline;
//   - per-job retry with exponential backoff around transient llm.Client
//     errors (rate limits, overloads — anything wrapped in
//     llm.TransientError), while permanent errors fail fast.
//
// Pool health is observable through Metrics: lifecycle counters (broken
// down per priority lane), cache hit rate, retries, and p50/p95
// submit-to-completion latency.
//
// # Priority lanes
//
// Submissions carry a priority class (SubmitWith + SubmitOpts): the
// interactive lane for latency-sensitive callers and the batch lane for
// bulk sweeps. Each lane has its own bounded queue, so a saturated batch
// lane backpressures batch submitters without blocking interactive ones,
// and workers dequeue with a weighted preference — interactive first,
// except one in every Config.BatchShare picks goes to batch when both
// lanes are waiting. Neither class can starve the other: a batch flood
// cannot delay an interactive job past the work already running, and an
// interactive flood still cedes batch its configured share of slots.
//
// # Persistence hooks
//
// The pool itself is in-memory, but it exposes the hook surface the
// durability layer (internal/fleet/store) builds on: Config.OnJobEvent
// observes job lifecycle transitions with a write-ahead guarantee (the
// submitted event fires before any worker can see the job),
// Config.OnCacheInsert/OnCacheEvict track result-cache membership, and
// CacheExport/CacheRestore move cache contents across process boundaries
// with their TTL clocks intact. The pool never knows whether it is
// persistent; iofleetd wires the hooks when -state-dir is set.
//
// The pool is exposed three ways: cmd/iofleetd serves it over HTTP on the
// versioned wire contract in internal/fleet/api (submit a log on a lane,
// poll status, fetch the diagnosis, scrape /metrics; with -state-dir,
// queued jobs and the cache survive restarts with their lanes intact),
// internal/fleet/client is the Go SDK for that daemon, and cmd/ioagent
// batch-diagnoses many traces at once with its -fleet flag (or remotely
// with -server).
package fleet
