package fleet

import (
	"testing"
	"time"

	"ioagent/internal/ioagent"
)

// fakeClock is a manually advanced time source for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func res(text string) *ioagent.Result        { return &ioagent.Result{Text: text} }
func mustHit(t *testing.T, c *cache, k string) *ioagent.Result {
	t.Helper()
	r, ok := c.Get(k)
	if !ok {
		t.Fatalf("expected cache hit for %q", k)
	}
	return r
}

func TestCacheLRUEviction(t *testing.T) {
	clk := newFakeClock()
	c := newCache(2, 0, clk.now)
	c.Put("a", res("A"))
	c.Put("b", res("B"))
	mustHit(t, c, "a") // refresh a: b is now least recently used
	c.Put("c", res("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if mustHit(t, c, "a").Text != "A" || mustHit(t, c, "c").Text != "C" {
		t.Error("a and c should survive eviction")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	c := newCache(10, time.Minute, clk.now)
	c.Put("a", res("A"))
	clk.advance(59 * time.Second)
	mustHit(t, c, "a")
	clk.advance(2 * time.Second) // 61s since Put: expired
	if _, ok := c.Get("a"); ok {
		t.Error("entry should have expired after TTL")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry should be swept on Get, len = %d", c.Len())
	}
}

func TestCachePutRefreshesTTL(t *testing.T) {
	clk := newFakeClock()
	c := newCache(10, time.Minute, clk.now)
	c.Put("a", res("old"))
	clk.advance(50 * time.Second)
	c.Put("a", res("new")) // refresh value and TTL clock
	clk.advance(30 * time.Second)
	if got := mustHit(t, c, "a"); got.Text != "new" {
		t.Errorf("got %q, want refreshed value", got.Text)
	}
	if c.Len() != 1 {
		t.Errorf("re-put must not duplicate the entry, len = %d", c.Len())
	}
}

func TestCacheNoTTL(t *testing.T) {
	clk := newFakeClock()
	c := newCache(10, -1, clk.now) // negative TTL: entries never expire
	c.Put("a", res("A"))
	clk.advance(1000 * time.Hour)
	mustHit(t, c, "a")
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(-1, 0, nil)
	c.Put("a", res("A"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache should never hit")
	}
	if c.Len() != 0 {
		t.Error("disabled cache should stay empty")
	}
}
