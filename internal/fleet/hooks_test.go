package fleet

import (
	"sync"
	"testing"
	"time"

	"ioagent/internal/llm"
)

// eventLog is a concurrency-safe OnJobEvent recorder.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) record(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) byJob(id string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.events {
		if ev.Job.ID == id {
			out = append(out, ev)
		}
	}
	return out
}

func TestPoolJobEventLifecycle(t *testing.T) {
	var log eventLog
	cfg := testConfig(2)
	cfg.OnJobEvent = log.record
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	// A fresh trace: submitted (queued, trace attached) then done.
	j, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	evs := log.byJob(j.ID())
	if len(evs) != 2 || evs[0].Kind != EventSubmitted || evs[1].Kind != EventDone {
		t.Fatalf("fresh job events = %+v, want submitted then done", kinds(evs))
	}
	if evs[0].Job.Status != StatusQueued || evs[0].Job.CacheHit {
		t.Errorf("submitted event state = %+v, want queued non-cache-hit", evs[0].Job)
	}
	if evs[0].Log == nil {
		t.Error("submitted event must carry the trace for write-ahead journaling")
	}
	if evs[1].Log != nil {
		t.Error("terminal events must not carry the trace")
	}

	// A cache hit: exactly one event, already terminal, flagged CacheHit.
	hit, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	<-hit.Done()
	hevs := log.byJob(hit.ID())
	if len(hevs) != 1 || hevs[0].Kind != EventSubmitted {
		t.Fatalf("cache-hit events = %v, want a single submitted event", kinds(hevs))
	}
	if !hevs[0].Job.CacheHit || hevs[0].Job.Status != StatusDone {
		t.Errorf("cache-hit event state = %+v, want done cache-hit", hevs[0].Job)
	}
}

func TestPoolJobEventFailure(t *testing.T) {
	var log eventLog
	cfg := testConfig(1)
	cfg.OnJobEvent = log.record
	p := New(&permanentFail{}, cfg)
	defer p.Close()
	j, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err == nil {
		t.Fatal("job should fail")
	}
	evs := log.byJob(j.ID())
	if len(evs) != 2 || evs[1].Kind != EventFailed {
		t.Fatalf("failed job events = %v, want submitted then failed", kinds(evs))
	}
	if evs[1].Job.Error == "" {
		t.Error("failed event should carry the error")
	}
}

func TestPoolJobEventCoalesced(t *testing.T) {
	var log eventLog
	cfg := testConfig(1)
	cfg.OnJobEvent = log.record
	p := New(llm.WithLatency(llm.NewSim(), 5*time.Millisecond), cfg)
	defer p.Close()
	a, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	<-b.Done()
	bevs := log.byJob(b.ID())
	// Coalesced while in flight: submitted(CacheHit) + done. Primary
	// finished first: a single terminal submitted event (plain cache hit).
	for _, ev := range bevs {
		if ev.Kind == EventSubmitted && !ev.Job.CacheHit {
			t.Errorf("duplicate submission event %+v should be flagged CacheHit", ev.Job)
		}
	}
	if last := bevs[len(bevs)-1]; last.Job.Status != StatusDone {
		t.Errorf("duplicate's final event status = %s, want done", last.Job.Status)
	}
}

func TestCacheHooksObserveMembership(t *testing.T) {
	var mu sync.Mutex
	inserted := map[string]int{}
	evicted := map[string]int{}
	cfg := testConfig(1)
	cfg.CacheSize = 2
	cfg.OnCacheInsert = func(d string) { mu.Lock(); inserted[d]++; mu.Unlock() }
	cfg.OnCacheEvict = func(d string) { mu.Lock(); evicted[d]++; mu.Unlock() }
	p := New(llm.NewSim(), cfg)
	defer p.Close()

	var digests []string
	for i := 0; i < 3; i++ {
		j, err := p.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, j.Digest())
	}
	mu.Lock()
	defer mu.Unlock()
	for _, d := range digests {
		if inserted[d] != 1 {
			t.Errorf("digest %.12s inserted %d times, want 1", d, inserted[d])
		}
	}
	// Capacity 2, three inserts in order: the oldest entry was evicted.
	if evicted[digests[0]] != 1 || len(evicted) != 1 {
		t.Errorf("evictions = %v, want exactly the oldest digest %.12s", evicted, digests[0])
	}
}

func TestCacheExportRestoreRoundTrip(t *testing.T) {
	p1 := New(llm.NewSim(), testConfig(2))
	defer p1.Close()
	want := make(map[string]string) // digest -> text
	for i := 0; i < 3; i++ {
		j, err := p1.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want[j.Digest()] = res.Text
	}
	exported := p1.CacheExport()
	if len(exported) != 3 {
		t.Fatalf("exported %d entries, want 3", len(exported))
	}
	for _, e := range exported {
		if e.Added.IsZero() || e.Result == nil {
			t.Fatalf("export entry incomplete: %+v", e)
		}
	}

	// A second pool restores the export and serves every digest from
	// cache without running the pipeline (a failing client proves it).
	p2 := New(&permanentFail{}, testConfig(2))
	defer p2.Close()
	p2.CacheRestore(exported)
	for i := 0; i < 3; i++ {
		j, err := p2.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("restored pool should answer from cache: %v", err)
		}
		if res.Text != want[j.Digest()] {
			t.Errorf("restored diagnosis for %.12s differs from original", j.Digest())
		}
	}
	if m := p2.Metrics(); m.CacheHits != 3 || m.CacheMisses != 0 {
		t.Errorf("restored pool metrics = %+v, want 3 hits / 0 misses", m)
	}
}

func TestCacheRestoreDropsExpired(t *testing.T) {
	p1 := New(llm.NewSim(), testConfig(1))
	defer p1.Close()
	j, err := p1.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	exported := p1.CacheExport()
	// Age the entry past a short TTL before restoring.
	exported[0].Added = time.Now().Add(-time.Hour)

	cfg := testConfig(1)
	cfg.CacheTTL = time.Minute
	p2 := New(llm.NewSim(), cfg)
	defer p2.Close()
	p2.CacheRestore(exported)
	if n := p2.Metrics().CacheLen; n != 0 {
		t.Errorf("expired entry restored: cache has %d entries, want 0", n)
	}
}

func TestCacheRestorePreservesLRUOrder(t *testing.T) {
	cfg := testConfig(2)
	cfg.CacheSize = 2
	p1 := New(llm.NewSim(), cfg)
	defer p1.Close()
	for i := 0; i < 2; i++ {
		j, _ := p1.Submit(testTrace(i))
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	exported := p1.CacheExport() // MRU first: trace 1 then trace 0

	p2 := New(llm.NewSim(), cfg)
	defer p2.Close()
	p2.CacheRestore(exported)
	// A new insert must evict the restored LRU (trace 0), not the MRU.
	j, _ := p2.Submit(testTrace(2))
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	mru, _ := p2.Submit(testTrace(1))
	<-mru.Done()
	if !mru.Info().CacheHit {
		t.Error("restored MRU entry should have survived the eviction")
	}
}

func kinds(evs []Event) []EventKind {
	out := make([]EventKind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}
