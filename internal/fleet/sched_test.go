package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ioagent/internal/llm"
)

// TestSchedTenantFairnessUnderFlood drives the pool-level DRR: a noisy
// tenant floods the interactive lane, then a light tenant submits one
// job; the light job must be dequeued within one DRR round, not behind
// the flood.
func TestSchedTenantFairnessUnderFlood(t *testing.T) {
	gate := &gatedClient{inner: llm.NewSim(), gate: make(chan struct{}), started: make(chan struct{})}
	rec := &laneRecorder{}
	cfg := testConfig(1)
	cfg.QueueDepth = 64
	cfg.BatchShare = -1
	cfg.OnJobEvent = rec.hook
	p := New(gate, cfg)
	defer p.Close()

	// Pin the worker, then flood 16 noisy jobs and 1 light job.
	if _, err := p.SubmitWith(testTrace(9000), SubmitOpts{Tenant: "noisy"}); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	for i := 0; i < 16; i++ {
		if _, err := p.SubmitWith(testTrace(9001+i), SubmitOpts{Tenant: "noisy"}); err != nil {
			t.Fatal(err)
		}
	}
	jl, err := p.SubmitWith(testTrace(9100), SubmitOpts{Tenant: "light"})
	if err != nil {
		t.Fatal(err)
	}
	close(gate.gate)
	if _, err := jl.Wait(); err != nil {
		t.Fatal(err)
	}
	p.Wait()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	lightPos := -1
	for i, ev := range rec.done {
		if ev.Job.Tenant == "light" {
			lightPos = i
			break
		}
	}
	// Position 0 is the pinned job; equal weights mean the light job is
	// served within ~2 more dequeues, never behind the 16-deep flood.
	if lightPos < 0 || lightPos > 3 {
		t.Fatalf("light tenant's job completed at position %d of %d; DRR must not let the flood crowd it out",
			lightPos, len(rec.done))
	}

	m := p.Metrics()
	if m.Sched == nil {
		t.Fatal("Snapshot.Sched is nil")
	}
	if m.Sched.Tenants["light"].Dequeues != 1 {
		t.Fatalf("light dequeues = %d, want 1", m.Sched.Tenants["light"].Dequeues)
	}
	if got := m.Sched.Tenants["noisy"].Dequeues; got != 17 {
		t.Fatalf("noisy dequeues = %d, want 17", got)
	}
}

// TestSchedCancelWhileQueuedNoTenantLeak is the pool-level face of the
// sched regression test: a SubmitContext canceled while waiting out
// backpressure must not leak per-tenant depth/age state in the
// scheduler snapshot, and must keep the pool's own lane counters exact.
func TestSchedCancelWhileQueuedNoTenantLeak(t *testing.T) {
	gate := &gatedClient{inner: llm.NewSim(), gate: make(chan struct{}), started: make(chan struct{})}
	cfg := testConfig(1)
	cfg.QueueDepth = 1
	cfg.BatchShare = -1
	p := New(gate, cfg)
	defer p.Close()

	if _, err := p.SubmitWith(testTrace(9200), SubmitOpts{Tenant: "t1"}); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	if _, err := p.SubmitWith(testTrace(9201), SubmitOpts{Tenant: "t1"}); err != nil {
		t.Fatal(err) // fills the lane to QueueDepth=1
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var subErr error
	go func() {
		defer wg.Done()
		_, subErr = p.SubmitContext(ctx, testTrace(9202), SubmitOpts{Tenant: "t2"})
	}()
	time.Sleep(30 * time.Millisecond) // let the submission park on the full lane
	cancel()
	wg.Wait()
	if !errors.Is(subErr, context.Canceled) {
		t.Fatalf("canceled SubmitContext returned %v, want context.Canceled", subErr)
	}

	m := p.Metrics()
	if tm, leaked := m.Sched.Tenants["t2"]; leaked && tm.Depth != 0 {
		t.Fatalf("canceled tenant leaked scheduler depth: %+v", tm)
	}
	if m.QueuedInteractive != 1 {
		t.Fatalf("pool queued = %d after cancel, want 1 (the legitimately queued job)", m.QueuedInteractive)
	}

	close(gate.gate)
	p.Wait()
	m = p.Metrics()
	if m.Sched.Tenants["t1"].Depth != 0 {
		t.Fatalf("t1 depth %d after drain, want 0", m.Sched.Tenants["t1"].Depth)
	}
	if m.Failed != 1 {
		t.Fatalf("failed = %d, want 1 (the aborted submission)", m.Failed)
	}
}

// TestSchedSLOAdmissionRefusesRetryably drives admission control end to
// end through the pool: a gold tenant whose backlog is provably stale
// is refused with ErrSLOExceeded before any job state is created.
func TestSchedSLOAdmissionRefusesRetryably(t *testing.T) {
	clock := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Unix(5000, 0)}
	now := func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		return clock.t
	}
	advance := func(d time.Duration) {
		clock.mu.Lock()
		clock.t = clock.t.Add(d)
		clock.mu.Unlock()
	}

	gate := &gatedClient{inner: llm.NewSim(), gate: make(chan struct{}), started: make(chan struct{})}
	cfg := testConfig(1)
	cfg.QueueDepth = 8
	cfg.BatchShare = -1
	cfg.SLOAdmission = true
	cfg.TenantClasses = map[string]string{"vip": "gold"}
	cfg.now = now
	p := New(gate, cfg)
	defer func() { close(gate.gate); p.Close() }()

	// Pin the worker, then queue one vip job and age it past gold's 2s
	// target.
	if _, err := p.SubmitWith(testTrace(9300), SubmitOpts{Tenant: "vip"}); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	if _, err := p.SubmitWith(testTrace(9301), SubmitOpts{Tenant: "vip"}); err != nil {
		t.Fatal(err)
	}
	advance(3 * time.Second)

	before := p.Metrics().Submitted
	_, err := p.SubmitWith(testTrace(9302), SubmitOpts{Tenant: "vip"})
	if !errors.Is(err, ErrSLOExceeded) {
		t.Fatalf("stale-backlog submission returned %v, want ErrSLOExceeded", err)
	}
	m := p.Metrics()
	if m.Submitted != before {
		t.Fatal("rejected submission still counted as submitted")
	}
	if m.Sched.Rejects != 1 || m.Sched.Tenants["vip"].Rejects != 1 {
		t.Fatalf("sched rejects %d/%d, want 1/1", m.Sched.Rejects, m.Sched.Tenants["vip"].Rejects)
	}
	// A classless tenant is never refused.
	if _, err := p.SubmitWith(testTrace(9303), SubmitOpts{Tenant: "steerage"}); err != nil {
		t.Fatalf("classless tenant refused: %v", err)
	}
}
