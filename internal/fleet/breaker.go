package fleet

import (
	"sync"
	"time"
)

// breaker is a minimal circuit breaker over the LLM backend, fed by every
// diagnosis attempt's outcome. Its whole job is to stop retry storms: when
// the backend is down, every job burns MaxAttempts transient failures plus
// their backoff sleeps, and a saturated pool turns into a battering ram.
// After threshold consecutive transient failures the breaker opens and
// attempts fail fast (ErrBreakerOpen) for a cooldown; then one half-open
// probe attempt is let through — success (or any non-transient response,
// which proves the backend is reachable) closes the breaker, another
// transient failure reopens it for a fresh cooldown.
//
// The failure counter is pool-wide, not per job: three jobs each failing
// twice is the same evidence of a down backend as one job failing six
// times. All methods are safe for concurrent use.
type breaker struct {
	threshold int           // consecutive transient failures to trip; <= 0 disables
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time

	mu          sync.Mutex
	consecutive int
	open        bool
	halfOpen    bool // cooldown elapsed; exactly one probe may run
	probing     bool // the half-open probe is in flight
	openedAt    time.Time
	trips       int64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether an attempt may hit the backend now. While open it
// returns false until the cooldown elapses, after which it admits exactly
// one probe at a time.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if !b.halfOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.halfOpen = true
	}
	if b.probing {
		return false // one probe at a time; the rest keep failing fast
	}
	b.probing = true
	return true
}

// record feeds one attempt's outcome back. transient marks failures that
// indicate an unreachable or overloaded backend; successes and permanent
// errors both prove the backend answered, so both close the breaker.
func (b *breaker) record(transient bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !transient {
		b.consecutive = 0
		b.open = false
		b.halfOpen = false
		b.probing = false
		return
	}
	b.consecutive++
	if b.open && b.halfOpen {
		// The probe failed: reopen for a fresh cooldown.
		b.trip()
		return
	}
	if !b.open && b.consecutive >= b.threshold {
		b.trip()
	}
}

// trip (re)opens the breaker. Caller holds b.mu.
func (b *breaker) trip() {
	b.open = true
	b.halfOpen = false
	b.probing = false
	b.openedAt = b.now()
	b.trips++
}

// stats returns the breaker's externally visible state: whether attempts
// are currently failing fast, and the lifetime trip count.
func (b *breaker) stats() (open bool, trips int64) {
	if b.threshold <= 0 {
		return false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// An elapsed cooldown reads as "probing", not "closed": work is still
	// being refused beyond the single probe.
	return b.open, b.trips
}

// refusing reports whether NEW work should be refused outright: the
// breaker is open and still inside its cooldown. Once the cooldown
// elapses this returns false even though the breaker has not closed —
// new work must be admitted again, because in a daemon whose serving
// layer refuses submissions while refusing() is true, an arriving job is
// the only thing that can run the half-open probe. allow() still gates
// the individual attempts of whatever is admitted.
func (b *breaker) refusing() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open && !b.halfOpen && b.now().Sub(b.openedAt) < b.cooldown
}
