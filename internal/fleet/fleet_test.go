package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/ioagent"
	"ioagent/internal/iosim"
	"ioagent/internal/knowledge"
	"ioagent/internal/llm"
)

// sharedIndex is built once: the 66-document corpus embedding is the
// expensive part of pool construction and identical across tests.
var sharedIndex = knowledge.BuildIndex()

func testConfig(workers int) Config {
	return Config{
		Workers:    workers,
		RetryDelay: time.Millisecond,
		Agent:      ioagent.Options{Index: sharedIndex},
	}
}

// testTrace generates a small deterministic trace; distinct seeds give
// distinct digests.
func testTrace(seed int) *darshan.Log {
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*7 + 1, NProcs: 4, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/fleet/test%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/fleet-%03d.dat", seed), iosim.POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 8; i++ {
			f.WriteAt(rank, (int64(rank)*8+i)*4096, 4096)
		}
	}
	f.Close()
	return sim.Finalize()
}

func TestDigestContentAddressing(t *testing.T) {
	a1, err := Digest(ioagent.Options{}, testTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Digest(ioagent.Options{}, testTrace(1))
	b, _ := Digest(ioagent.Options{}, testTrace(2))
	if a1 != a2 {
		t.Error("identical trace and options must digest identically")
	}
	if a1 == b {
		t.Error("different traces must digest differently")
	}
	// Unset options digest the same as their explicit defaults, and
	// differently from a genuinely different configuration.
	c, _ := Digest(ioagent.Options{Model: llm.GPT4o, CheapModel: llm.GPT4oMini, TopK: 15}, testTrace(1))
	if a1 != c {
		t.Error("zero options must digest as their canonical defaults")
	}
	d, _ := Digest(ioagent.Options{Model: llm.Llama31}, testTrace(1))
	if a1 == d {
		t.Error("different model must digest differently")
	}
}

func TestDigestDoesNotMutateLog(t *testing.T) {
	// Encode canonicalizes record order in place; Digest must work on a
	// private copy so a shared log can be digested while other readers
	// iterate it.
	log := testTrace(1)
	snapshot := func() []string {
		var out []string
		for _, m := range log.ModuleList() {
			for _, r := range log.Modules[m].Records {
				out = append(out, fmt.Sprintf("%s/%d", r.Name, r.Rank))
			}
		}
		return out
	}
	before := snapshot()
	if _, err := Digest(ioagent.Options{}, log); err != nil {
		t.Fatal(err)
	}
	after := snapshot()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("record order changed at %d: %s != %s", i, after[i], before[i])
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []time.Duration{time.Second, time.Second, 10 * time.Second}
	if got := percentile(samples, 0.95); got != 10*time.Second {
		t.Errorf("p95 of [1s 1s 10s] = %v, want the 10s tail sample", got)
	}
	if got := percentile(samples, 0.50); got != time.Second {
		t.Errorf("p50 = %v, want 1s", got)
	}
	if got := percentile(nil, 0.95); got != 0 {
		t.Errorf("empty sample p95 = %v, want 0", got)
	}
	one := []time.Duration{5 * time.Second}
	if got := percentile(one, 0.01); got != 5*time.Second {
		t.Errorf("single-sample p1 = %v, want the sample", got)
	}
}

func TestPoolDiagnosesBatch(t *testing.T) {
	p := New(llm.NewSim(), testConfig(4))
	defer p.Close()
	const n = 8
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		j, err := p.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	p.Wait()
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res == nil || res.Report == nil || res.Text == "" {
			t.Fatalf("job %d: empty diagnosis", i)
		}
		if j.Status() != StatusDone {
			t.Fatalf("job %d status = %s", i, j.Status())
		}
	}
	m := p.Metrics()
	if m.Submitted != n || m.Done != n || m.Failed != 0 || m.CacheMisses != n {
		t.Errorf("metrics = %+v, want %d submitted/done misses", m, n)
	}
	if m.Queued != 0 || m.Running != 0 {
		t.Errorf("pool should be idle: %+v", m)
	}
	if m.LatencyP50 <= 0 || m.LatencyP95 < m.LatencyP50 {
		t.Errorf("latency percentiles implausible: p50=%v p95=%v", m.LatencyP50, m.LatencyP95)
	}
}

func TestPoolCacheHitOnResubmit(t *testing.T) {
	p := New(llm.NewSim(), testConfig(2))
	defer p.Close()
	first, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.Wait()
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := again.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("cache hit should return the shared cached result")
	}
	info := again.Info()
	if !info.CacheHit || info.Status != StatusDone || info.Attempts != 0 {
		t.Errorf("cache-hit job info = %+v", info)
	}
	if m := p.Metrics(); m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
}

func TestPoolCoalescesInflightDuplicates(t *testing.T) {
	// Slow the backend so the duplicate lands while the primary is still
	// in flight.
	p := New(llm.WithLatency(llm.NewSim(), 5*time.Millisecond), testConfig(2))
	defer p.Close()
	a, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("coalesced job must share the primary's result")
	}
	m := p.Metrics()
	// The duplicate either coalesced (primary still running) or hit the
	// cache (primary finished first); both mean zero duplicated work.
	if m.Coalesced+m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("coalesced=%d hits=%d misses=%d, want exactly one free duplicate", m.Coalesced, m.CacheHits, m.CacheMisses)
	}
	if m.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", m.HitRate)
	}
}

// failFirstN returns transient errors for the first n calls, then delegates.
type failFirstN struct {
	inner llm.Client
	n     int64
	calls atomic.Int64
}

func (f *failFirstN) Complete(req llm.Request) (llm.Response, error) {
	if f.calls.Add(1) <= f.n {
		return llm.Response{}, llm.Transient(errors.New("warming up"))
	}
	return f.inner.Complete(req)
}

func TestPoolRetriesTransientErrors(t *testing.T) {
	p := New(&failFirstN{inner: llm.NewSim(), n: 1}, testConfig(1))
	defer p.Close()
	j, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatalf("job should succeed after retry: %v", err)
	}
	info := j.Info()
	if info.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (one retry)", info.Attempts)
	}
	if m := p.Metrics(); m.Retries < 1 || m.Done != 1 {
		t.Errorf("metrics = %+v, want >=1 retry and 1 done", m)
	}
}

// permanentFail always returns a non-transient error.
type permanentFail struct{ calls atomic.Int64 }

func (f *permanentFail) Complete(llm.Request) (llm.Response, error) {
	f.calls.Add(1)
	return llm.Response{}, errors.New("bad request")
}

func TestPoolFailsFastOnPermanentErrors(t *testing.T) {
	client := &permanentFail{}
	p := New(client, testConfig(1))
	defer p.Close()
	j, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err == nil {
		t.Fatal("job should fail on a permanent error")
	}
	if info := j.Info(); info.Status != StatusFailed || info.Attempts != 1 || info.Error == "" {
		t.Errorf("failed job info = %+v, want 1 attempt", info)
	}
	if m := p.Metrics(); m.Failed != 1 || m.Retries != 0 {
		t.Errorf("metrics = %+v, want 1 failed and no retries", m)
	}
	// A failed diagnosis must not poison the cache.
	if m := p.Metrics(); m.CacheLen != 0 {
		t.Error("failed job should not be cached")
	}
}

// exhaustTransient always fails transiently, so every attempt burns a retry.
type exhaustTransient struct{ calls atomic.Int64 }

func (f *exhaustTransient) Complete(llm.Request) (llm.Response, error) {
	f.calls.Add(1)
	return llm.Response{}, llm.Transient(errors.New("always overloaded"))
}

func TestPoolExhaustsRetryBudget(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxAttempts = 3
	var slept []time.Duration
	cfg.sleep = func(d time.Duration) { slept = append(slept, d) }
	p := New(&exhaustTransient{}, cfg)
	defer p.Close()
	j, _ := p.Submit(testTrace(0))
	if _, err := j.Wait(); err == nil || !llm.IsTransient(err) {
		t.Fatalf("exhausted job should surface the transient error, got %v", err)
	}
	if got := j.Info().Attempts; got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	// Exponential backoff: each retry waits twice the previous delay.
	if len(slept) != 2 || slept[1] != 2*slept[0] {
		t.Errorf("backoff schedule = %v, want doubling delays", slept)
	}
}

func TestPoolShardingDeterminism(t *testing.T) {
	// The same batch diagnosed with 1 worker and with 8 workers must
	// produce byte-identical reports per trace: sharding affects only
	// scheduling, never results.
	diagnose := func(workers int) map[string]string {
		p := New(llm.NewSim(), testConfig(workers))
		defer p.Close()
		out := make(map[string]string)
		var jobs []*Job
		for i := 0; i < 6; i++ {
			j, err := p.Submit(testTrace(i))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		for _, j := range jobs {
			res, err := j.Wait()
			if err != nil {
				t.Fatal(err)
			}
			out[j.Digest()] = res.Text
		}
		return out
	}
	serial := diagnose(1)
	parallel := diagnose(8)
	if len(serial) != len(parallel) {
		t.Fatalf("digest sets differ: %d vs %d", len(serial), len(parallel))
	}
	for digest, text := range serial {
		if parallel[digest] != text {
			t.Errorf("digest %.12s: diagnosis differs between 1 and 8 workers", digest)
		}
	}
}

func TestPoolSecondBatchHitsCache(t *testing.T) {
	p := New(llm.NewSim(), testConfig(4))
	defer p.Close()
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := p.Submit(testTrace(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	before := p.Metrics()
	for i := 0; i < n; i++ {
		if _, err := p.Submit(testTrace(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	after := p.Metrics()
	hits := after.CacheHits - before.CacheHits
	if rate := float64(hits) / n; rate < 0.9 {
		t.Errorf("second-batch cache hit rate = %.2f, want >= 0.9", rate)
	}
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := New(llm.NewSim(), testConfig(4))
	defer p.Close()
	const submitters, perSubmitter, distinct = 8, 10, 4
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				j, err := p.Submit(testTrace((s + i) % distinct))
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := j.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	m := p.Metrics()
	total := submitters * perSubmitter
	if m.Submitted != int64(total) || m.Done != int64(total) || m.Failed != 0 {
		t.Errorf("metrics = %+v, want %d submitted and done", m, total)
	}
	if m.CacheMisses > distinct {
		t.Errorf("misses = %d, want <= %d distinct traces", m.CacheMisses, distinct)
	}
	if len(p.Jobs()) != total {
		t.Errorf("job registry has %d entries, want %d", len(p.Jobs()), total)
	}
}

func TestPoolCloseRejectsNewWork(t *testing.T) {
	p := New(llm.NewSim(), testConfig(2))
	j, err := p.Submit(testTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	p.Close() // drains in-flight work
	if _, err := j.Wait(); err != nil {
		t.Fatalf("in-flight job should complete across Close: %v", err)
	}
	if _, err := p.Submit(testTrace(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	p.Close() // second Close is a no-op
}

func TestPoolJobHistoryPruning(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxJobHistory = 3
	p := New(llm.NewSim(), cfg)
	defer p.Close()
	var first *Job
	for i := 0; i < 6; i++ {
		j, err := p.Submit(testTrace(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = j
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(p.Jobs()); got > 3 {
		t.Errorf("registry holds %d jobs, want <= 3", got)
	}
	if _, ok := p.Job(first.ID()); ok {
		t.Error("oldest completed job should have been pruned")
	}
	// The pruned job's handle still works for its holder.
	if res, err := first.Wait(); err != nil || res == nil {
		t.Error("pruning must not invalidate an existing job handle")
	}
	// Metrics are cumulative and unaffected by pruning.
	if m := p.Metrics(); m.Submitted != 6 || m.Done != 6 {
		t.Errorf("metrics = %+v, want 6 submitted and done", m)
	}
}

func TestPoolJobLookup(t *testing.T) {
	p := New(llm.NewSim(), testConfig(1))
	defer p.Close()
	j, _ := p.Submit(testTrace(0))
	got, ok := p.Job(j.ID())
	if !ok || got != j {
		t.Error("Job(id) should return the submitted job")
	}
	if _, ok := p.Job("job-999999"); ok {
		t.Error("unknown id should not resolve")
	}
}
