package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ioagent/internal/darshan"
)

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSessionLifecycle: open → append in chunks → complete yields the
// same digest as a whole-body parse, with pre-parse progress visible
// mid-upload.
func TestSessionLifecycle(t *testing.T) {
	log := testTrace(t, 10)
	body := textRendering(t, log)
	want, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, Config{NodeID: "n1"})
	info, err := m.Open(OpenOpts{Lane: "batch", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "n1-up-000001" || info.Offset != 0 {
		t.Fatalf("opened session %+v, want n1-up-000001 at offset 0", info)
	}

	const chunk = 64
	var offset int64
	sawProgress := false
	for off := 0; off < len(body); off += chunk {
		end := off + chunk
		if end > len(body) {
			end = len(body)
		}
		info, err = m.Append(info.ID, offset, body[off:end])
		if err != nil {
			t.Fatal(err)
		}
		offset = info.Offset
		if end < len(body) && info.Lines > 0 && info.Modules > 0 {
			sawProgress = true // pre-parse advanced before the final chunk
		}
	}
	if !sawProgress {
		t.Error("no pre-parse progress observed before the final chunk")
	}
	if offset != int64(len(body)) {
		t.Fatalf("final offset %d, want %d", offset, len(body))
	}

	parsed, digest, done, err := m.Complete(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if digest != want {
		t.Errorf("session digest %s != whole-trace digest %s", digest, want)
	}
	if done.Lane != "batch" || done.Tenant != "acme" {
		t.Errorf("completion info lost lane/tenant: %+v", done)
	}
	if len(parsed.ModuleList()) == 0 {
		t.Error("completed session returned a module-less log")
	}
	if m.Len() != 0 {
		t.Errorf("%d sessions still open after complete", m.Len())
	}
	if _, err := m.Status(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("status after complete = %v, want ErrSessionNotFound", err)
	}
}

// TestSessionOffsetMismatch: a wrong offset is refused with the server's
// actual offset and consumes nothing.
func TestSessionOffsetMismatch(t *testing.T) {
	m := newTestManager(t, Config{})
	info, err := m.Open(OpenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(info.ID, 0, []byte("# darshan log version: 3.41\n")); err != nil {
		t.Fatal(err)
	}
	_, err = m.Append(info.ID, 5, []byte("x"))
	var oe *OffsetError
	if !errors.As(err, &oe) {
		t.Fatalf("mismatched append error = %v, want *OffsetError", err)
	}
	if oe.Want != 28 || oe.Got != 5 {
		t.Errorf("OffsetError = %+v, want Want=28 Got=5", oe)
	}
	// Duplicate delivery of an already-accepted chunk is also a mismatch;
	// the client resyncs from Want.
	if st, err := m.Status(info.ID); err != nil || st.Offset != 28 {
		t.Errorf("status after refused append = %+v, %v; offset must be unchanged", st, err)
	}
}

// TestSessionCapAndExpiry: the session cap refuses with
// ErrTooManySessions, and idle sessions expire so a stuck client cannot
// pin the cap forever.
func TestSessionCapAndExpiry(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	cfg := Config{MaxSessions: 2, TTL: time.Minute}
	cfg.now = func() time.Time { return clock }
	m := newTestManager(t, cfg)

	if _, err := m.Open(OpenOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(OpenOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(OpenOpts{}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over-cap open = %v, want ErrTooManySessions", err)
	}

	clock = clock.Add(2 * time.Minute) // both sessions now idle past TTL
	if _, err := m.Open(OpenOpts{}); err != nil {
		t.Fatalf("open after expiry sweep = %v", err)
	}
	if m.Len() != 1 {
		t.Errorf("%d sessions after sweep, want 1 (the fresh one)", m.Len())
	}
}

// TestSessionSpoolAndRestore: a spool-backed session restores under its
// original ID at its recovered offset, the incremental parse picks up
// mid-line, and completion equals the whole-body digest.
func TestSessionSpoolAndRestore(t *testing.T) {
	log := testTrace(t, 11)
	body := textRendering(t, log)
	want, err := darshan.ContentDigest(log)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	m1 := newTestManager(t, Config{NodeID: "n1", SpoolDir: dir})
	info, err := m1.Open(OpenOpts{Lane: "interactive", Tenant: "acme", Digest: want})
	if err != nil {
		t.Fatal(err)
	}
	// Upload part of the body — deliberately ending mid-line.
	cut := len(body)/2 + 3
	if _, err := m1.Append(info.ID, 0, body[:cut]); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager over the same spool dir revives the
	// session (the store's journal supplies the metadata in production).
	m2 := newTestManager(t, Config{NodeID: "n1", SpoolDir: dir})
	restored, err := m2.Restore(RestoreSession{
		ID: info.ID, Lane: "interactive", Tenant: "acme", Digest: want, CreatedAt: info.CreatedAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Offset != int64(cut) {
		t.Fatalf("restored offset %d, want %d", restored.Offset, cut)
	}
	if restored.Lines == 0 {
		t.Error("restored session shows no pre-parse progress")
	}

	// Fresh sessions on the restored manager must not collide with the
	// revived ID.
	fresh, err := m2.Open(OpenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == restored.ID {
		t.Fatalf("fresh session reused restored ID %s", fresh.ID)
	}

	// Resume and complete.
	if _, err := m2.Append(restored.ID, int64(cut), body[cut:]); err != nil {
		t.Fatal(err)
	}
	_, digest, done, err := m2.Complete(restored.ID)
	if err != nil {
		t.Fatal(err)
	}
	if digest != want {
		t.Errorf("restored-session digest %s != %s", digest, want)
	}
	if done.Digest != want {
		t.Errorf("claimed digest lost across restore: %+v", done)
	}
	// The spool is gone once the session completes.
	if _, err := os.Stat(filepath.Join(dir, restored.ID+".part")); !os.IsNotExist(err) {
		t.Errorf("spool file survives completion: %v", err)
	}
}

// TestSessionAbortRemovesSpool: abort discards session and spool.
func TestSessionAbortRemovesSpool(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{SpoolDir: dir})
	info, err := m.Open(OpenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(info.ID, 0, []byte("# x\n")); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".part")); !os.IsNotExist(err) {
		t.Errorf("spool survives abort: %v", err)
	}
	if err := m.Abort(info.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("double abort = %v, want ErrSessionNotFound", err)
	}
}

// TestSessionEvents: every open is eventually covered by exactly one
// close, across complete, abort, and expiry — the invariant the store's
// journal depends on.
func TestSessionEvents(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	opens := map[string]int{}
	closes := map[string]int{}
	cfg := Config{TTL: time.Minute, OnEvent: func(ev Event) {
		switch ev.Kind {
		case EventOpened:
			opens[ev.ID]++
		case EventClosed:
			closes[ev.ID]++
		}
	}}
	cfg.now = func() time.Time { return clock }
	m := newTestManager(t, cfg)

	body := textRendering(t, testTrace(t, 12))
	done, _ := m.Open(OpenOpts{})
	m.Append(done.ID, 0, body)
	if _, _, _, err := m.Complete(done.ID); err != nil {
		t.Fatal(err)
	}
	aborted, _ := m.Open(OpenOpts{})
	m.Abort(aborted.ID)
	expired, _ := m.Open(OpenOpts{})
	clock = clock.Add(2 * time.Minute)
	m.Sweep()

	for _, id := range []string{done.ID, aborted.ID, expired.ID} {
		if opens[id] != 1 || closes[id] != 1 {
			t.Errorf("session %s: %d opens, %d closes; want exactly 1 of each", id, opens[id], closes[id])
		}
	}
}
