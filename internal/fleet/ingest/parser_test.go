package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ioagent/internal/darshan"
	"ioagent/internal/iosim"
)

// testTrace builds a deterministic trace; distinct seeds give distinct
// content.
func testTrace(t testing.TB, seed int) *darshan.Log {
	t.Helper()
	sim := iosim.New(iosim.Config{
		Seed: int64(seed)*13 + 5, NProcs: 4, UsesMPI: true,
		Exe: fmt.Sprintf("/apps/ingest/job%02d.ex", seed),
	})
	f := sim.OpenShared(fmt.Sprintf("/scratch/ing-%03d.dat", seed), iosim.POSIX, false, nil)
	for rank := 0; rank < 4; rank++ {
		for i := int64(0); i < 6; i++ {
			f.WriteAt(rank, (int64(rank)*6+i)*4096, 4096)
		}
	}
	f.Close()
	return sim.Finalize()
}

func textRendering(t testing.TB, log *darshan.Log) []byte {
	t.Helper()
	s, err := darshan.TextString(log)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(s)
}

func binaryRendering(t testing.TB, log *darshan.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := darshan.Encode(&buf, log); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feedChunks writes body to a fresh parser in the given chunk sizes
// (cycling) and finishes it.
func feedChunks(t testing.TB, body []byte, sizes ...int) (*darshan.Log, string, error) {
	t.Helper()
	p := NewParser(0)
	for off, i := 0, 0; off < len(body); i++ {
		n := sizes[i%len(sizes)]
		if n > len(body)-off {
			n = len(body) - off
		}
		if _, err := p.Write(body[off : off+n]); err != nil {
			return nil, "", err
		}
		off += n
	}
	return p.Finish()
}

// TestParserTextEqualsWholeBodyParse: any chunking of a text trace must
// produce the same content digest as a whole-body parse.
func TestParserTextEqualsWholeBodyParse(t *testing.T) {
	log := testTrace(t, 1)
	body := textRendering(t, log)
	whole, err := darshan.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, err := darshan.ContentDigest(whole)
	if err != nil {
		t.Fatal(err)
	}

	for _, sizes := range [][]int{{1}, {2}, {7}, {64}, {1024}, {len(body)}, {3, 1, 31}} {
		parsed, digest, err := feedChunks(t, body, sizes...)
		if err != nil {
			t.Fatalf("chunks %v: %v", sizes, err)
		}
		if digest != want {
			t.Errorf("chunks %v: digest %s != whole-body %s", sizes, digest, want)
		}
		if len(parsed.ModuleList()) != len(whole.ModuleList()) {
			t.Errorf("chunks %v: module count %d != %d", sizes, len(parsed.ModuleList()), len(whole.ModuleList()))
		}
	}
}

// TestParserBinarySniff: a binary (gzip) body decodes at Finish and
// yields the same digest as its text rendering — one address per trace.
func TestParserBinarySniff(t *testing.T) {
	log := testTrace(t, 2)
	_, fromBin, err := feedChunks(t, binaryRendering(t, log), 11)
	if err != nil {
		t.Fatal(err)
	}
	_, fromText, err := feedChunks(t, textRendering(t, log), 17)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin != fromText {
		t.Errorf("binary digest %s != text digest %s for the same trace", fromBin, fromText)
	}
}

// TestParserPreparsesBeforeBodyCompletes: after feeding only half the
// text body, lines and modules are already parsed — the property that
// gives streaming its time-to-first-parse win.
func TestParserPreparsesBeforeBodyCompletes(t *testing.T) {
	body := textRendering(t, testTrace(t, 3))
	p := NewParser(0)
	if _, err := p.Write(body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if !st.Decided || st.Binary {
		t.Fatalf("half-fed text parser: stats %+v, want decided text", st)
	}
	if st.Lines == 0 {
		t.Error("no lines parsed after half the body")
	}
	if st.Modules == 0 {
		t.Error("no modules pre-parsed after half the body")
	}
	if _, err := p.Write(body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestParserRefusesOversize(t *testing.T) {
	p := NewParser(16)
	if _, err := p.Write(make([]byte, 17)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write error = %v, want ErrTooLarge", err)
	}
	// The parser stays poisoned.
	if _, err := p.Write([]byte("x")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("post-poison write error = %v, want ErrTooLarge", err)
	}
}

func TestParserRejectsGarbageAndEmpty(t *testing.T) {
	if _, _, err := feedChunks(t, []byte("not a trace at all"), 5); err == nil {
		t.Error("garbage text parsed without error")
	}
	p := NewParser(0)
	if _, _, err := p.Finish(); err == nil {
		t.Error("empty body finished without error")
	}
	// One byte: too short to sniff, still a clean refusal.
	p = NewParser(0)
	p.Write([]byte("#"))
	if _, _, err := p.Finish(); err == nil {
		t.Error("one-byte body finished without error")
	}
}

// TestParserMidStreamError: a malformed line fails the Write that
// completes it, not the Finish — so servers can abort doomed uploads
// early.
func TestParserMidStreamError(t *testing.T) {
	p := NewParser(0)
	if _, err := p.Write([]byte("# darshan log version: 3.41\nPOSIX bogus line\nmore\n")); err == nil {
		t.Error("malformed counter line did not fail the completing Write")
	}
}

// FuzzParserChunking: for arbitrary text bodies split at arbitrary chunk
// boundaries, the incremental parser must agree with the whole-body
// parser — same accept/reject decision, same content digest.
func FuzzParserChunking(f *testing.F) {
	base := textRendering(f, testTrace(f, 4))
	f.Add(base, uint16(1))
	f.Add(base, uint16(7))
	f.Add(base, uint16(4096))
	f.Add([]byte("# darshan log version: 3.41\n"), uint16(3))
	f.Add([]byte{0x1f, 0x8b, 0x00, 0x01}, uint16(1)) // gzip magic, torn body

	f.Fuzz(func(t *testing.T, body []byte, seed uint16) {
		if len(body) > 1<<20 {
			return
		}
		// Whole-body reference: the server's buffered path.
		wholeLog, wholeErr := darshan.ParseText(bytes.NewReader(body))
		wholeOK := wholeErr == nil && len(wholeLog.ModuleList()) > 0
		isBinary := len(body) >= 2 && body[0] == 0x1f && body[1] == 0x8b

		// Incremental: random chunk sizes from the fuzzed seed.
		rng := rand.New(rand.NewSource(int64(seed)))
		p := NewParser(0)
		var werr error
		for off := 0; off < len(body); {
			n := 1 + rng.Intn(97)
			if n > len(body)-off {
				n = len(body) - off
			}
			if _, werr = p.Write(body[off : off+n]); werr != nil {
				break
			}
			off += n
		}
		var incLog *darshan.Log
		var incDigest string
		incErr := werr
		if incErr == nil {
			incLog, incDigest, incErr = p.Finish()
		}

		if isBinary {
			// Binary bodies take the buffered decode path; just require a
			// decision, not equivalence with the text parser.
			return
		}
		if wholeOK != (incErr == nil) {
			t.Fatalf("accept/reject diverged: whole-body ok=%v, incremental err=%v (body %q)", wholeOK, incErr, body)
		}
		if wholeOK {
			want, derr := darshan.ContentDigest(wholeLog)
			if derr != nil {
				t.Fatal(derr)
			}
			if incDigest != want {
				t.Fatalf("digest diverged: incremental %s != whole-body %s", incDigest, want)
			}
			if incLog == nil {
				t.Fatal("incremental parse returned nil log")
			}
		}
	})
}
