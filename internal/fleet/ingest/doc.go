// Package ingest is the fleet's streaming trace-ingest subsystem: it
// turns arriving bytes into decoded, content-addressed Darshan logs
// without ever requiring the full body in memory first.
//
// Two entry shapes feed it:
//
//   - Parser consumes one trace as an io.Writer — chunked HTTP bodies,
//     pipes, files read in slices. It sniffs the rendering from the
//     first bytes (gzip magic means the binary codec; anything else is
//     darshan-parser text), and in the text case begins module/counter
//     pre-processing on every complete line as it lands, so a multi-
//     megabyte upload is mostly parsed by the time its last chunk
//     arrives. Chunk boundaries are invisible: any split of the same
//     bytes yields byte-for-byte the same decoded log as a whole-body
//     parse (fuzz-tested).
//
//   - Manager holds resumable upload sessions: a client opens a session,
//     appends chunks at asserted offsets (PATCH-style, tus-like), can
//     disconnect and resume at the server's offset, and finally
//     completes the session into a parsed trace. Each appended chunk is
//     fed to the session's Parser immediately and, when a spool
//     directory is configured, appended to a per-session spool file so
//     half-finished uploads survive a daemon restart (the store journals
//     the session open; recovery re-feeds the spool through a fresh
//     Parser and the client resumes where it left off).
//
// Both paths end in the same place: a decoded *darshan.Log plus its
// canonical content digest (darshan.ContentDigest), which is identical
// for the binary and text renderings of one trace and is what the
// cluster routes on (api.DigestHeader). The pool accepts the pair via
// fleet.SubmitPreparsed without re-encoding or re-parsing anything.
package ingest
