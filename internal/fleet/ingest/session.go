package ingest

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ioagent/internal/darshan"
)

// ErrSessionNotFound is returned for an upload ID the manager does not
// hold (never opened, completed, aborted, or expired).
var ErrSessionNotFound = errors.New("ingest: upload session not found")

// ErrTooManySessions is returned by Open when the manager is at its
// MaxSessions cap; retry once an existing session completes or expires.
var ErrTooManySessions = errors.New("ingest: too many open upload sessions")

// OffsetError reports an Append whose asserted offset is not the
// session's current offset: a chunk was lost, duplicated, or reordered.
// The client resynchronizes from Want and resends.
type OffsetError struct {
	Want int64 // the offset the server will accept next
	Got  int64 // the offset the client asserted
}

func (e *OffsetError) Error() string {
	return fmt.Sprintf("ingest: upload offset mismatch: server is at %d, client sent %d", e.Want, e.Got)
}

// EventKind names an upload-session lifecycle transition observed
// through Config.OnEvent.
type EventKind string

const (
	// EventOpened fires when a session is created (not when one is
	// restored from a previous process — its open event already
	// happened, and is journaled).
	EventOpened EventKind = "opened"
	// EventClosed fires exactly once per opened-or-restored session,
	// when it completes into a job, is aborted, or expires.
	EventClosed EventKind = "closed"
)

// Event is one session lifecycle notification, the hook the store's
// write-ahead journal attaches to.
type Event struct {
	Kind   EventKind
	ID     string
	Lane   string
	Tenant string
	// Digest is the client-claimed content digest, if any.
	Digest string
	At     time.Time
}

// Info is a session snapshot: offset for resume, pre-parse progress for
// observability.
type Info struct {
	ID        string
	Offset    int64
	Lane      string
	Tenant    string
	Digest    string // client-claimed; verified at complete time
	Lines     int64
	Modules   int
	Binary    bool
	CreatedAt time.Time
}

// Config tunes a Manager. The zero value is usable: memory-only
// sessions, 64 at most, one-hour idle expiry.
type Config struct {
	// NodeID prefixes session IDs ("n1-up-000007") exactly as the pool
	// prefixes job IDs, which is how iofleet-router routes later appends
	// back to the daemon holding the session's state.
	NodeID string
	// MaxBytes bounds one session's total upload (default 64 MiB).
	MaxBytes int64
	// MaxSessions bounds concurrently open sessions (default 64).
	MaxSessions int
	// TTL expires sessions idle longer than this (default 1h; negative
	// disables expiry).
	TTL time.Duration
	// SpoolDir, when set, persists each session's accepted bytes to
	// SpoolDir/<id>.part so half-finished uploads survive a restart
	// (paired with the store's journal via OnEvent). Empty means
	// sessions die with the process.
	SpoolDir string
	// OnEvent observes session opens and closes (the store's journaling
	// hook). Called synchronously; must not call back into the Manager.
	OnEvent func(Event)
	// Logf receives spool-maintenance warnings (default log.Printf).
	Logf func(format string, args ...any)

	now func() time.Time // test hook
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.TTL == 0 {
		c.TTL = time.Hour
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ErrSessionFinished is returned by Append once Finish has flushed the
// session's parser: the trailing partial line has been finalized, so
// later bytes could silently change the parse. Complete or abort the
// session instead.
var ErrSessionFinished = errors.New("ingest: upload session already finalized; complete or abort it")

// session is one resumable upload. Its mutex serializes appends against
// status reads and completion; the manager's lock only guards the map.
type session struct {
	id      string
	lane    string
	tenant  string
	digest  string
	created time.Time

	mu        sync.Mutex
	offset    int64
	parser    *Parser
	spool     *os.File
	lastTouch time.Time
	finished  bool // Finish ran; no further appends
}

func (s *session) info() Info {
	st := s.parser.Stats()
	return Info{
		ID: s.id, Offset: s.offset,
		Lane: s.lane, Tenant: s.tenant, Digest: s.digest,
		Lines: st.Lines, Modules: st.Modules, Binary: st.Binary,
		CreatedAt: s.created,
	}
}

// Manager is the upload-session registry. All methods are safe for
// concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
}

// NewManager builds a session manager (creating SpoolDir if configured).
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("ingest: create spool dir: %w", err)
		}
	}
	return &Manager{cfg: cfg, sessions: make(map[string]*session)}, nil
}

// OpenOpts parameterizes a new session.
type OpenOpts struct {
	Lane   string
	Tenant string
	// Digest is the client-claimed canonical content digest, verified
	// when the session completes (and used by routers for placement).
	Digest string
}

// Open creates a session and returns its snapshot (offset 0). Expired
// sessions are swept first, so a stuck client cannot pin the cap.
func (m *Manager) Open(opts OpenOpts) (Info, error) {
	now := m.cfg.now()
	m.sweep(now)

	m.mu.Lock()
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return Info{}, ErrTooManySessions
	}
	m.nextID++
	id := m.formatID(m.nextID)
	s := &session{
		id: id, lane: opts.Lane, tenant: opts.Tenant, digest: opts.Digest,
		created: now, lastTouch: now,
		parser: NewParser(m.cfg.MaxBytes),
	}
	if m.cfg.SpoolDir != "" {
		f, err := os.OpenFile(m.spoolPath(id), os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
		if err != nil {
			m.mu.Unlock()
			return Info{}, fmt.Errorf("ingest: create spool: %w", err)
		}
		s.spool = f
	}
	m.sessions[id] = s
	m.mu.Unlock()

	m.emit(EventOpened, s)
	return s.info(), nil
}

func (m *Manager) formatID(n int) string {
	prefix := ""
	if m.cfg.NodeID != "" {
		prefix = m.cfg.NodeID + "-"
	}
	return fmt.Sprintf("%sup-%06d", prefix, n)
}

func (m *Manager) spoolPath(id string) string {
	return filepath.Join(m.cfg.SpoolDir, id+".part")
}

func (m *Manager) emit(kind EventKind, s *session) {
	if m.cfg.OnEvent != nil {
		m.cfg.OnEvent(Event{
			Kind: kind, ID: s.id, Lane: s.lane, Tenant: s.tenant,
			Digest: s.digest, At: m.cfg.now(),
		})
	}
}

func (m *Manager) get(id string) (*session, bool) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	return s, ok
}

// Append accepts the chunk starting at the asserted offset, spools it
// (when configured), and feeds it to the incremental parser. A wrong
// offset returns *OffsetError with the offset the server actually wants;
// nothing is consumed. Parse and size failures poison the session — the
// same bytes would fail again — so it is closed and its spool removed.
func (m *Manager) Append(id string, offset int64, chunk []byte) (Info, error) {
	s, ok := m.get(id)
	if !ok {
		return Info{}, ErrSessionNotFound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return Info{}, ErrSessionFinished
	}
	if s.offset != offset {
		return Info{}, &OffsetError{Want: s.offset, Got: offset}
	}
	// Spool before parse: the spool is the resume source of truth, and a
	// write failure must refuse the chunk (the client retries) rather
	// than silently strand a restart at a shorter offset. A failed write
	// may have landed PART of the chunk, so the spool is rolled back to
	// the accepted offset first — otherwise the retried chunk would
	// append after the partial bytes and corrupt the restart replay.
	if s.spool != nil {
		if _, err := s.spool.Write(chunk); err != nil {
			if terr := s.spool.Truncate(s.offset); terr != nil {
				// Rollback failed too: the spool's integrity is unknown,
				// so the session cannot honestly promise a resume.
				m.close(s, true)
				return Info{}, fmt.Errorf("ingest: spool append: %w (rollback also failed: %v; session discarded)", err, terr)
			}
			// Reposition for the retry (no-op under O_APPEND; required
			// for sessions restored via O_RDWR).
			s.spool.Seek(s.offset, io.SeekStart)
			return Info{}, fmt.Errorf("ingest: spool append: %w", err)
		}
	}
	if _, err := s.parser.Write(chunk); err != nil {
		m.close(s, true)
		return Info{}, err
	}
	s.offset += int64(len(chunk))
	s.lastTouch = m.cfg.now()
	return s.info(), nil
}

// Status returns a session snapshot (the resume handshake).
func (m *Manager) Status(id string) (Info, error) {
	s, ok := m.get(id)
	if !ok {
		return Info{}, ErrSessionNotFound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastTouch = m.cfg.now()
	return s.info(), nil
}

// Finish finalizes the session's parse and returns the decoded log with
// its canonical content digest — WITHOUT discarding the session. The
// caller hands the trace to the pool and then decides the session's
// fate: Discard after the pool accepts (or refuses permanently), keep
// it when the refusal is retryable (tenant quota, draining) so the
// client can re-complete without re-uploading a byte. Finish is
// idempotent; once it has run, further appends are refused
// (ErrSessionFinished). A parse failure closes the session eagerly —
// identical bytes would fail identically, so there is nothing worth
// resuming. Verifying a client-claimed digest against the returned one
// is the caller's job (the claim is in Info.Digest).
func (m *Manager) Finish(id string) (*darshan.Log, string, Info, error) {
	s, ok := m.get(id)
	if !ok {
		return nil, "", Info{}, ErrSessionNotFound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.info()
	log, digest, err := s.parser.Finish()
	if err != nil {
		m.close(s, true)
		return nil, "", info, err
	}
	s.finished = true
	s.lastTouch = m.cfg.now()
	return log, digest, info, nil
}

// Discard closes the session (spool removed, close event emitted) after
// its trace has been handed off — or when it is no longer wanted.
func (m *Manager) Discard(id string) error {
	return m.Abort(id)
}

// Complete is Finish followed by Discard, for callers without a
// retryable-handoff step between the two (tests, simple embedders).
func (m *Manager) Complete(id string) (*darshan.Log, string, Info, error) {
	log, digest, info, err := m.Finish(id)
	if err != nil {
		return nil, "", info, err
	}
	m.Discard(id)
	return log, digest, info, nil
}

// Abort discards the session.
func (m *Manager) Abort(id string) error {
	s, ok := m.get(id)
	if !ok {
		return ErrSessionNotFound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m.close(s, true)
	return nil
}

// close removes the session from the registry, closes and (optionally)
// unlinks its spool, and emits the close event. Caller holds s.mu.
func (m *Manager) close(s *session, removeSpool bool) {
	m.mu.Lock()
	if _, live := m.sessions[s.id]; !live {
		m.mu.Unlock()
		return // already closed (racing Complete/Abort/sweep)
	}
	delete(m.sessions, s.id)
	m.mu.Unlock()
	if s.spool != nil {
		s.spool.Close()
		s.spool = nil
		if removeSpool {
			if err := os.Remove(m.spoolPath(s.id)); err != nil && !os.IsNotExist(err) {
				m.cfg.Logf("ingest: remove spool %s: %v", s.id, err)
			}
		}
	}
	m.emit(EventClosed, s)
}

// Sweep expires idle sessions; iofleetd calls it on its checkpoint tick,
// and Open calls it before admitting new work.
func (m *Manager) Sweep() { m.sweep(m.cfg.now()) }

func (m *Manager) sweep(now time.Time) {
	if m.cfg.TTL < 0 {
		return
	}
	// Snapshot the roster under m.mu alone, then take each session lock
	// with m.mu released: close() re-acquires m.mu, so the lock order is
	// always s.mu before m.mu.
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	for _, s := range all {
		s.mu.Lock()
		if now.Sub(s.lastTouch) > m.cfg.TTL {
			m.close(s, true)
		}
		s.mu.Unlock()
	}
}

// Len reports the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// RestoreSession describes a journaled session being revived at boot.
type RestoreSession struct {
	ID        string
	Lane      string
	Tenant    string
	Digest    string
	CreatedAt time.Time
}

// Restore revives a session from a previous process under its original
// ID (clients resume by ID, so it must not change): the spool file's
// bytes — if any survive — are re-fed through a fresh parser and the
// offset picks up where the file ends. A missing spool restores at
// offset zero; a spool whose bytes no longer parse is discarded and the
// restore reports the error (the journal cover is the caller's call).
// No open event is emitted — the original open is already journaled.
func (m *Manager) Restore(rs RestoreSession) (Info, error) {
	if m.cfg.SpoolDir == "" {
		return Info{}, fmt.Errorf("ingest: restore %s: no spool dir configured", rs.ID)
	}
	now := m.cfg.now()
	s := &session{
		id: rs.ID, lane: rs.Lane, tenant: rs.Tenant, digest: rs.Digest,
		created: rs.CreatedAt, lastTouch: now,
		parser: NewParser(m.cfg.MaxBytes),
	}

	path := m.spoolPath(rs.ID)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return Info{}, fmt.Errorf("ingest: reopen spool %s: %w", rs.ID, err)
	}
	n, err := io.Copy(s.parser, f)
	if err != nil {
		f.Close()
		os.Remove(path)
		return Info{}, fmt.Errorf("ingest: replay spool %s: %w", rs.ID, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return Info{}, fmt.Errorf("ingest: seek spool %s: %w", rs.ID, err)
	}
	s.offset = n
	s.spool = f

	m.mu.Lock()
	if _, dup := m.sessions[rs.ID]; dup {
		m.mu.Unlock()
		f.Close()
		return Info{}, fmt.Errorf("ingest: restore %s: session already live", rs.ID)
	}
	// Keep fresh IDs from colliding with restored ones.
	if seq := idSequence(rs.ID); seq > m.nextID {
		m.nextID = seq
	}
	m.sessions[rs.ID] = s
	m.mu.Unlock()
	return s.info(), nil
}

// idSequence extracts the numeric suffix of an upload ID ("n1-up-000007"
// -> 7); unparseable IDs yield 0.
func idSequence(id string) int {
	i := strings.LastIndex(id, "up-")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+len("up-"):])
	if err != nil {
		return 0
	}
	return n
}
