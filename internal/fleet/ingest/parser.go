package ingest

import (
	"bytes"
	"errors"
	"fmt"

	"ioagent/internal/darshan"
	"ioagent/internal/dxt"
)

// ErrTooLarge marks a trace that exceeded the parser's byte bound. The
// serving layer maps it onto api.CodeTraceTooLarge.
var ErrTooLarge = errors.New("ingest: trace exceeds the configured size limit")

// maxLineLen bounds one text line (matching ParseText's scanner buffer),
// so a newline-free garbage stream cannot grow the carry buffer without
// bound.
const maxLineLen = 16 << 20

// Stats is a point-in-time view of a Parser's progress, safe to report
// mid-stream (upload-session status, time-to-first-parse benchmarks).
type Stats struct {
	// Bytes is the total input consumed so far.
	Bytes int64
	// Lines is the number of complete text lines parsed so far (zero in
	// binary mode, where decoding happens at Finish).
	Lines int64
	// Modules is the number of distinct modules pre-parsed so far (zero
	// in binary mode until Finish).
	Modules int
	// Binary reports the sniffed rendering; meaningful once Decided.
	Binary bool
	// DXT reports that the sniffed rendering is a DXT per-operation text
	// trace (dxt.TextMagic); meaningful once Decided.
	DXT bool
	// Decided reports whether enough bytes arrived to sniff the
	// rendering (at most len(dxt.TextMagic) are held).
	Decided bool
}

// Parser decodes one trace incrementally from arbitrarily chunked
// writes. The rendering is sniffed from the first few bytes: the gzip
// magic selects the binary codec (which must buffer — the container only
// decodes whole); the dxt.TextMagic prefix selects the line-oriented DXT
// per-operation parser; anything else streams through the line-oriented
// darshan-parser text parser. Both text modes start pre-processing
// before the body has finished arriving.
//
// Write any number of times, then Finish exactly once. A Parser is not
// safe for concurrent use; upload sessions serialize access to theirs.
type Parser struct {
	maxBytes int64

	n       int64
	sniff   []byte // first bytes held until the rendering is decided
	decided bool
	binary  bool
	dxtMode bool

	lp    *darshan.LineParser
	dlp   *dxt.TextParser
	carry []byte // trailing partial text line awaiting its newline

	bin bytes.Buffer // binary mode: the whole (bounded) body

	err error // sticky: first failure poisons the parser
}

// NewParser returns a parser that refuses inputs over maxBytes
// (ErrTooLarge); maxBytes <= 0 means unbounded.
func NewParser(maxBytes int64) *Parser {
	return &Parser{maxBytes: maxBytes}
}

// Write consumes the next chunk. It implements io.Writer, so a Parser
// drops into io.Copy, io.TeeReader, and io.MultiWriter pipelines. A
// parse error surfaces immediately — mid-body — letting a server abort
// a doomed upload without reading the rest.
func (p *Parser) Write(b []byte) (int, error) {
	if p.err != nil {
		return 0, p.err
	}
	if p.maxBytes > 0 && p.n+int64(len(b)) > p.maxBytes {
		p.err = ErrTooLarge
		return 0, p.err
	}
	p.n += int64(len(b))

	if !p.decided {
		p.sniff = append(p.sniff, b...)
		if !p.decide() {
			return len(b), nil // cannot sniff yet; hold and wait
		}
		held := p.sniff
		p.sniff = nil
		if err := p.feed(held); err != nil {
			p.err = err
			return 0, err
		}
		return len(b), nil
	}
	if err := p.feed(b); err != nil {
		p.err = err
		return 0, err
	}
	return len(b), nil
}

// decide sniffs the rendering from the held bytes, returning false while
// more bytes are needed. Two bytes settle binary-vs-text; the DXT text
// rendering is only distinguishable from darshan-parser text once the
// held bytes diverge from (or complete) the dxt.TextMagic prefix.
func (p *Parser) decide() bool {
	magic := []byte(dxt.TextMagic)
	if len(p.sniff) >= 2 && p.sniff[0] == 0x1f && p.sniff[1] == 0x8b { // gzip magic
		p.decided, p.binary = true, true
		return true
	}
	if len(p.sniff) < 2 {
		return false
	}
	switch {
	case bytes.HasPrefix(p.sniff, magic):
		p.decided, p.dxtMode = true, true
		p.dlp = dxt.NewTextParser()
	case bytes.HasPrefix(magic, p.sniff):
		return false // still a prefix of the DXT magic; hold and wait
	default:
		p.decided = true
		p.lp = darshan.NewLineParser()
	}
	return true
}

func (p *Parser) feed(b []byte) error {
	if p.binary {
		p.bin.Write(b)
		return nil
	}
	data := b
	if len(p.carry) > 0 {
		p.carry = append(p.carry, b...)
		data = p.carry
	}
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		// ParseLine trims whitespace, so a trailing \r (CRLF input) is
		// handled there.
		if err := p.parseLine(string(data[:i])); err != nil {
			return err
		}
		data = data[i+1:]
	}
	if len(data) > maxLineLen {
		return fmt.Errorf("ingest: text line exceeds %d bytes", maxLineLen)
	}
	// data may alias p.carry's backing array; append-to-truncated is a
	// left-moving copy, which is safe for overlapping slices.
	p.carry = append(p.carry[:0], data...)
	return nil
}

// parseLine routes one complete line to the active text-mode parser.
func (p *Parser) parseLine(line string) error {
	if p.dxtMode {
		return p.dlp.ParseLine(line)
	}
	return p.lp.ParseLine(line)
}

// Stats reports progress so far.
func (p *Parser) Stats() Stats {
	s := Stats{Bytes: p.n, Binary: p.binary, DXT: p.dxtMode, Decided: p.decided}
	if p.lp != nil {
		s.Lines = int64(p.lp.Lines())
		s.Modules = len(p.lp.Log().ModuleList())
	}
	if p.dlp != nil {
		s.Lines = int64(p.dlp.Lines())
	}
	return s
}

// Finish flushes any trailing partial line, decodes a buffered binary
// body, and returns the decoded log together with its canonical content
// digest. A trace with no module data is an error — it would only become
// a doomed job downstream.
func (p *Parser) Finish() (*darshan.Log, string, error) {
	if p.err != nil {
		return nil, "", p.err
	}
	var log *darshan.Log
	switch {
	case !p.decided:
		// Fewer than two bytes total: trivially not a trace, but run the
		// held bytes through the text path so the error is the uniform
		// "no module data" below rather than a special case.
		lp := darshan.NewLineParser()
		if len(p.sniff) > 0 {
			if err := lp.ParseLine(string(p.sniff)); err != nil {
				p.err = err
				return nil, "", err
			}
		}
		log = lp.Log()
	case p.binary:
		var err error
		log, err = darshan.Decode(bytes.NewReader(p.bin.Bytes()))
		if err != nil {
			p.err = err
			return nil, "", err
		}
	case p.dxtMode:
		if len(p.carry) > 0 {
			if err := p.dlp.ParseLine(string(p.carry)); err != nil {
				p.err = err
				return nil, "", err
			}
			p.carry = nil
		}
		// The counter log is derived from the event stream; an event
		// stream naming no known module derives no modules and falls
		// into the uniform "no module data" rejection below.
		log = darshan.FromDXT(p.dlp.Trace())
	default:
		if len(p.carry) > 0 {
			if err := p.lp.ParseLine(string(p.carry)); err != nil {
				p.err = err
				return nil, "", err
			}
			p.carry = nil
		}
		log = p.lp.Log()
	}
	if len(log.ModuleList()) == 0 {
		p.err = fmt.Errorf("ingest: trace contains no module data")
		return nil, "", p.err
	}
	digest, err := darshan.ContentDigest(log)
	if err != nil {
		p.err = err
		return nil, "", err
	}
	return log, digest, nil
}
