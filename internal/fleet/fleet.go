package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"ioagent/internal/darshan"
	"ioagent/internal/fleet/knowledge"
	"ioagent/internal/fleet/sched"
	"ioagent/internal/fleet/semcache"
	"ioagent/internal/ioagent"
	"ioagent/internal/llm"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("fleet: pool is closed")

// ErrBreakerOpen marks a job failed fast because the pool's circuit
// breaker is open: the LLM backend has produced Config.BreakerThreshold
// consecutive transient failures and new attempts are refused until a
// half-open probe succeeds. The work was not attempted; resubmitting the
// same trace later is safe and idempotent.
var ErrBreakerOpen = errors.New("fleet: circuit breaker open (llm backend marked down)")

// ErrTenantQuota is returned by Submit when the submitting tenant already
// has Config.TenantMaxInflight jobs in the system (accepted and not yet
// terminal). The submission was not accepted; retrying later — once some
// of the tenant's jobs finish — is safe.
var ErrTenantQuota = errors.New("fleet: tenant in-flight quota exceeded")

// ErrSLOExceeded is returned by Submit when SLO admission control
// (Config.SLOAdmission) projects that the submitting tenant's queue age
// would exceed its class target — the job would rot in queue past its
// SLO, so it is refused up front instead. Like the quota it is checked
// before the job exists (and before the cache is consulted), costs
// nothing, and is safe to retry once the tenant's backlog drains.
var ErrSLOExceeded = errors.New("fleet: tenant SLO admission refused")

// EventKind names a job lifecycle transition observed through
// Config.OnJobEvent.
type EventKind string

const (
	// EventSubmitted fires exactly once per accepted submission, at submit
	// time. The embedded JobInfo reflects the submit outcome: a cache hit
	// is already StatusDone, a coalesced duplicate has CacheHit set, and a
	// job bound for a worker is StatusQueued with CacheHit unset.
	EventSubmitted EventKind = "submitted"
	// EventDone / EventFailed fire exactly once for every job that was not
	// already terminal at submit time, after the pipeline (or the primary
	// it coalesced onto) finishes.
	EventDone   EventKind = "done"
	EventFailed EventKind = "failed"
)

// Event is one job lifecycle notification.
type Event struct {
	Kind EventKind
	Job  JobInfo
	// Log is the submitted trace; non-nil only for EventSubmitted. The
	// pool still owns it — observers must not mutate it.
	Log *darshan.Log
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Lane is a submission priority class. The pool keeps one bounded
// scheduler lane per Lane (per-tenant fair queues inside it — see
// internal/fleet/sched) and dequeues with a weighted preference for
// LaneInteractive, so a saturating batch workload cannot starve
// interactive submissions — while batch still holds a guaranteed share
// of worker slots (see Config.BatchShare). The string values match the
// wire vocabulary in internal/fleet/api.
type Lane string

const (
	// LaneInteractive is the low-latency lane; it is the default for
	// Submit and for a zero SubmitOpts.
	LaneInteractive Lane = "interactive"
	// LaneBatch is the bulk, throughput-bound lane.
	LaneBatch Lane = "batch"
)

// Lanes lists every lane in dequeue-preference order.
var Lanes = []Lane{LaneInteractive, LaneBatch}

// withDefault maps the empty lane to LaneInteractive.
func (l Lane) withDefault() Lane {
	if l == "" {
		return LaneInteractive
	}
	return l
}

// Valid reports whether l names a known lane.
func (l Lane) Valid() bool { return l == LaneInteractive || l == LaneBatch }

// SubmitOpts carries per-submission options for SubmitWith. The zero
// value matches Submit: interactive lane, no tenant.
type SubmitOpts struct {
	// Lane selects the priority class; empty means LaneInteractive.
	Lane Lane
	// Tenant names the submitting tenant for accounting (per-tenant job
	// counts in Metrics). It never contributes to the trace digest:
	// identical traces from different tenants share one cached diagnosis.
	Tenant string
}

// Config tunes a Pool. The zero value gives a production-plausible setup:
// 4 workers, a 1024-entry cache with a 1-hour TTL, and 3 attempts per job
// with exponential backoff starting at 50ms.
type Config struct {
	// NodeID, when set, prefixes every job ID ("<node>-job-000001" instead
	// of "job-000001") so IDs stay unique — and routable back to their
	// node — across a multi-node fleet. Single pools can leave it empty.
	NodeID string
	// Workers is the number of concurrent diagnosis workers (default 4).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; a full
	// queue applies backpressure by blocking Submit (default 8*Workers).
	QueueDepth int
	// CacheSize is the LRU capacity of the result cache in entries
	// (default 1024; negative disables caching).
	CacheSize int
	// CacheTTL is how long a cached diagnosis stays valid (default 1h;
	// negative means entries never expire).
	CacheTTL time.Duration
	// MaxAttempts is the total number of diagnosis attempts per job,
	// retrying only transient llm.Client errors (default 3).
	MaxAttempts int
	// MaxJobHistory bounds the job registry: once it is exceeded, the
	// oldest completed jobs are pruned and forgotten by Job/Jobs lookups,
	// keeping a long-lived daemon's memory flat (default 4096; negative
	// retains every job forever).
	MaxJobHistory int
	// RetryDelay is the backoff before the first retry; it doubles on
	// each subsequent attempt (default 50ms).
	RetryDelay time.Duration
	// BatchShare sets the batch lane's guaranteed slice of worker
	// dequeues: when both lanes have waiting jobs, one in every
	// BatchShare dequeues prefers batch and the rest prefer interactive
	// (default 4, i.e. batch keeps >=25% of slots under an interactive
	// flood). Negative gives strict interactive priority: batch runs
	// only while the interactive lane is empty. The minimum meaningful
	// share is 2 — a value of 1 would prefer batch on every dequeue and
	// invert the anti-starvation guarantee, so it is clamped to 2.
	// This cross-lane weighting is layered ABOVE the per-tenant DRR:
	// BatchShare decides which lane the next worker slot goes to, the
	// scheduler's deficit round robin decides which tenant inside that
	// lane gets it.
	BatchShare int
	// BreakerThreshold enables the pool's circuit breaker: after this
	// many consecutive transient LLM failures (pool-wide, across jobs)
	// new attempts fail fast with ErrBreakerOpen instead of hammering a
	// down backend, until a half-open probe succeeds. Zero or negative
	// disables the breaker (the default — single-shot tools don't want
	// cross-job failure coupling; long-lived daemons do, see iofleetd
	// -breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses work before
	// admitting a half-open probe (default 5s when the breaker is on).
	BreakerCooldown time.Duration
	// TenantMaxInflight caps how many jobs one tenant may have in the
	// system at once (accepted and not yet terminal; cache hits complete
	// instantly and never count against a later submission). Beyond the
	// cap Submit returns ErrTenantQuota. Zero or negative disables the
	// quota (the default). Anonymous submissions (no tenant) are never
	// quota'd — there is no principal to charge.
	TenantMaxInflight int

	// TenantWeights maps tenant to an explicit dequeue weight for the
	// per-tenant deficit-round-robin inside each lane, overriding the
	// tenant's SLO-class weight. Over any busy interval a tenant's
	// share of worker dequeues converges to its weight over the sum of
	// the active tenants' weights; unlisted, classless tenants (and
	// anonymous submissions) weigh 1.
	TenantWeights map[string]int
	// TenantClasses maps tenant to an SLO class name from
	// sched.BuiltinClasses — gold (weight 8, 2s queue-age target),
	// silver (4, 10s), bronze (1, 60s). The class supplies both the DRR
	// weight (unless TenantWeights overrides it) and the queue-age
	// target SLOAdmission enforces. Assignments can change at runtime
	// via SetTenantClass; an unknown class name here panics in New —
	// validate operator input before building the pool.
	TenantClasses map[string]string
	// SLOAdmission enables admission control: a submission whose
	// projected queue age exceeds its tenant's class target is refused
	// with ErrSLOExceeded instead of admitted to rot in queue. Tenants
	// without a class are never refused. The projection is an estimate
	// from the lane's measured drain rate and the tenant's fair share —
	// it bounds expected queue age, it does not guarantee it.
	SLOAdmission bool
	// SchedFIFO disables per-tenant fairness and drains each lane in
	// strict arrival order — the pre-DRR behavior. It exists as the
	// measurable baseline for cmd/fairbench; production daemons should
	// leave it off.
	SchedFIFO bool

	// Agent configures the diagnosis pipeline shared by all workers.
	Agent ioagent.Options

	// SemCache enables semantic result reuse: cache misses consult a
	// similarity index of already-diagnosed traces, and a near-duplicate
	// whose cached diagnosis passes the confidence gate is served without
	// a fresh LLM diagnosis (the job is stamped similarity_hit with the
	// source digest and blended confidence). See internal/fleet/semcache.
	SemCache bool
	// SimThreshold is the minimum feature-vector cosine similarity for a
	// candidate to even reach the gate (default 0.85). The prefilter runs
	// before any LLM call, so raising it only makes reuse rarer, never
	// more expensive.
	SimThreshold float64
	// GateModel is the LLM judge model for the reuse gate (default
	// gpt-4o-mini-sim — the gate also leans on label agreement and vector
	// similarity, so a cheap judge suffices).
	GateModel string
	// GateThreshold is the minimum blended confidence to allow reuse
	// (default semcache.DefaultGateThreshold).
	GateThreshold float64
	// SemCacheSize bounds the similarity index in entries (default:
	// CacheSize, so the index never outgrows the result cache it mirrors;
	// negative disables bounding).
	SemCacheSize int

	// TierModels, when non-empty, replaces the single-model diagnosis
	// with a cost-aware ladder: models are tried cheapest-first and a low
	// self-scored confidence escalates to the next tier, so easy traces
	// never pay frontier-model prices. The ladder is a serving strategy,
	// not a different pipeline: result digests stay keyed by Agent's
	// configured options, so tiered and untiered pools address the same
	// cache entries.
	TierModels []string
	// TierThreshold is the minimum confidence at which a cheaper tier's
	// diagnosis is accepted without escalating (default 0.60).
	TierThreshold float64
	// TierBudgetUSD, when positive, caps lifetime LLM spend attributable
	// to this pool (agents + gate); once reached, escalation stops and
	// every miss runs only the cheapest tier.
	TierBudgetUSD float64

	// Knowledge, when set, routes every agent's retrieval stage through
	// the fleet knowledge plane (epoch-versioned corpus, optional ring
	// sharding and ANN search) instead of the embedded index. The plane is
	// caller-owned: the pool never mutates it, and several pools may share
	// one. Note the corpus epoch does NOT contribute to result digests —
	// see Digest — so operators who swap epochs and need fresh diagnoses
	// for already-cached traces should run with a bounded CacheTTL.
	Knowledge *knowledge.Plane

	// OnJobEvent, if set, observes job lifecycle transitions (see
	// EventKind for the exact contract). It is called synchronously from
	// Submit and from worker goroutines — for any one job, EventSubmitted
	// strictly precedes its terminal event — so a slow hook (e.g. an
	// fsync-per-append journal) backpressures the pool. The hook must not
	// call back into the Pool.
	OnJobEvent func(Event)
	// OnCacheInsert / OnCacheEvict, if set, observe result-cache
	// membership changes (insertions, LRU evictions, TTL expiries). They
	// exist for persistence-layer dirty tracking: treat them as
	// "membership changed" signals, not as an ordered replayable log.
	// Like OnJobEvent they must not call back into the Pool: a TTL
	// expiry can fire OnCacheEvict from inside Submit's cache lookup,
	// where pool-internal locks are held.
	OnCacheInsert func(digest string)
	OnCacheEvict  func(digest string)

	// Test hooks: clock for cache TTL, sleeper for retry backoff.
	now   func() time.Time
	sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = time.Hour
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MaxJobHistory == 0 {
		c.MaxJobHistory = 4096
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 50 * time.Millisecond
	}
	if c.BatchShare == 0 {
		c.BatchShare = 4
	}
	if c.BatchShare == 1 {
		c.BatchShare = 2
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	c.Agent = c.Agent.WithDefaults()
	if c.SemCache {
		if c.SimThreshold <= 0 {
			c.SimThreshold = 0.85
		}
		if c.GateModel == "" {
			c.GateModel = llm.GPT4oMini
		}
		if c.GateThreshold <= 0 {
			c.GateThreshold = semcache.DefaultGateThreshold
		}
		if c.SemCacheSize == 0 {
			c.SemCacheSize = c.CacheSize
		}
	}
	if len(c.TierModels) > 0 && c.TierThreshold <= 0 {
		c.TierThreshold = 0.60
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c
}

// Digest content-addresses a diagnosis: the hash covers the trace's
// canonical content digest (darshan.ContentDigest — identical for the
// binary and text renderings of one trace) plus every scalar option that
// changes the pipeline's output, so within one corpus equal digests are
// interchangeable diagnoses and the cache can serve one for the other.
// The knowledge index itself is NOT hashed — a pool has exactly one, so
// its per-pool cache is consistent; sharing digests across pools (or
// processes) is only sound when they retrieve from the same corpus.
//
// The two-layer construction (options hashed over the content digest,
// not over the raw encoding) is what lets the streaming ingest layer
// hand the pool a trace it already hashed while the bytes were arriving:
// SubmitPreparsed combines the precomputed content digest with the
// pool's options without re-encoding the log.
func Digest(opts ioagent.Options, log *darshan.Log) (string, error) {
	cd, err := darshan.ContentDigest(log)
	if err != nil {
		return "", fmt.Errorf("fleet: digest: %w", err)
	}
	return digestWith(opts, cd), nil
}

// digestWith derives the diagnosis digest from an already-computed
// canonical content digest.
func digestWith(opts ioagent.Options, contentDigest string) string {
	opts = opts.WithDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "model=%s cheap=%s topk=%d norag=%t noreflect=%t oneshot=%t\n",
		opts.Model, opts.CheapModel, opts.TopK,
		opts.DisableRAG, opts.DisableReflection, opts.UseOneShotMerge)
	fmt.Fprintf(h, "content=%s\n", contentDigest)
	return hex.EncodeToString(h.Sum(nil))
}

// JobInfo is an externally-visible job snapshot (served as JSON by
// iofleetd).
type JobInfo struct {
	ID       string `json:"id"`
	Digest   string `json:"digest"`
	Status   Status `json:"status"`
	Lane     Lane   `json:"lane"`
	Tenant   string `json:"tenant,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	// SimilarityHit marks a diagnosis served by semantic reuse: the text
	// is another trace's cached diagnosis (SourceDigest) that passed the
	// confidence gate at the stamped Confidence. Mutually exclusive with
	// CacheHit, which remains exact-digest reuse.
	SimilarityHit bool    `json:"similarity_hit,omitempty"`
	SourceDigest  string  `json:"source_digest,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	Attempts      int     `json:"attempts"`
	Error         string  `json:"error,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// Job tracks one submitted trace through the pipeline.
type Job struct {
	id     string
	digest string
	lane   Lane
	tenant string
	done   chan struct{}

	mu        sync.Mutex
	log       *darshan.Log // released once the job completes
	status    Status
	cacheHit  bool
	simHit    bool
	srcDigest string
	conf      float64
	attempts  int
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *ioagent.Result
	err       error
}

// ID returns the pool-unique job identifier.
func (j *Job) ID() string { return j.id }

// Digest returns the job's content address.
func (j *Job) Digest() string { return j.digest }

// Lane returns the priority lane the job was submitted on.
func (j *Job) Lane() Lane { return j.lane }

// Tenant returns the tenant the job was submitted under ("" for none).
func (j *Job) Tenant() string { return j.tenant }

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job completes or fails.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its diagnosis. The
// returned Result is shared with the cache and other coalesced jobs and
// must not be modified.
func (j *Job) Wait() (*ioagent.Result, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Info returns a snapshot of the job's externally-visible state.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:            j.id,
		Digest:        j.digest,
		Status:        j.status,
		Lane:          j.lane,
		Tenant:        j.tenant,
		CacheHit:      j.cacheHit,
		SimilarityHit: j.simHit,
		SourceDigest:  j.srcDigest,
		Confidence:    j.conf,
		Attempts:      j.attempts,
		SubmittedAt:   j.submitted,
		StartedAt:     j.started,
		FinishedAt:    j.finished,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// complete transitions the job to its terminal state. Called exactly once.
func (j *Job) complete(res *ioagent.Result, err error, at time.Time) {
	j.mu.Lock()
	j.result = res
	j.err = err
	j.finished = at
	j.log = nil
	if err != nil {
		j.status = StatusFailed
	} else {
		j.status = StatusDone
	}
	j.mu.Unlock()
	close(j.done)
}

// Pool is a bounded worker pool that shards a stream of Darshan traces
// across concurrent diagnosis agents, deduplicating work through a
// content-addressed result cache. All methods are safe for concurrent use.
type Pool struct {
	cfg   Config
	agent *ioagent.Agent
	cache *cache
	// schd is the per-tenant fair scheduler: one bounded lane per Lane
	// (each with its own QueueDepth, so a batch flood backpressures
	// batch submitters without blocking interactive ones), per-tenant
	// FIFOs inside each lane drained by weighted deficit-round-robin,
	// and the BatchShare cross-lane weighting layered on top.
	schd *sched.Scheduler[*Job]
	brk  *breaker
	m    metrics

	// Semantic reuse (nil unless Config.SemCache): the similarity index
	// over diagnosed traces and the confidence gate that decides reuse.
	sem  *semcache.Index
	gate *semcache.Gate
	// tiers is the cheapest-first agent ladder (empty unless
	// Config.TierModels); tiers[i] runs Config.TierModels[i].
	tiers []*ioagent.Agent

	// gateMu guards gateStats, the per-model usage of gate/tier judge
	// calls (they go through recordingClient, not an agent).
	gateMu    sync.Mutex
	gateStats map[string]ioagent.ModelStats

	workerWG sync.WaitGroup // running workers
	jobWG    sync.WaitGroup // outstanding jobs

	mu       sync.Mutex
	closed   bool
	nextID   int
	jobs     map[string]*Job
	order    []*Job                    // submission order, for Jobs()
	inflight map[string]*inflightEntry // digest -> primary + coalesced followers

	// qmu fences scheduler enqueues against Close: a Submit that passed
	// the closed check holds the read side until its enqueue lands, and
	// Close takes the write side before closing the scheduler, so an
	// accepted submission can never be turned away by a concurrent
	// Close. Acquired while holding mu; released after.
	qmu sync.RWMutex
}

type inflightEntry struct {
	primary   *Job
	followers []*Job
}

// New starts a pool. The client is shared by every worker and must be safe
// for concurrent use (SimLLM and the wrappers in internal/llm are). The
// knowledge index is built once and shared across all workers, so per-job
// setup cost is zero.
func New(client llm.Client, cfg Config) *Pool {
	cfg = cfg.withDefaults()
	if cfg.Knowledge != nil {
		// Every agent the pool builds — the primary and each tier rung —
		// retrieves through the plane; the copy into tierOpts below carries
		// the Retriever along.
		cfg.Agent.Retriever = cfg.Knowledge
	}
	p := &Pool{
		cfg:   cfg,
		agent: ioagent.New(client, cfg.Agent),
		cache: newCache(cfg.CacheSize, cfg.CacheTTL, cfg.now),
		schd: sched.New[*Job](sched.Config{
			Lanes:     []string{string(LaneInteractive), string(LaneBatch)},
			Depth:     cfg.QueueDepth,
			AltShare:  cfg.BatchShare,
			Weights:   cfg.TenantWeights,
			Classes:   cfg.TenantClasses,
			Admission: cfg.SLOAdmission,
			FIFO:      cfg.SchedFIFO,
			Now:       cfg.now,
		}),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*inflightEntry),
	}
	p.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now)
	p.m.queuedByLane = make(map[Lane]int64, len(Lanes))
	p.cache.onInsert = cfg.OnCacheInsert
	p.cache.onEvict = cfg.OnCacheEvict
	if cfg.SemCache || len(cfg.TierModels) > 0 {
		gateClient := &recordingClient{inner: client, record: p.recordGateUsage}
		p.gate = &semcache.Gate{
			Client:    gateClient,
			Model:     cfg.GateModel,
			Threshold: cfg.GateThreshold,
		}
	}
	if cfg.SemCache {
		p.sem = semcache.NewIndex(cfg.SemCacheSize)
		// A result-cache eviction must drop the digest's similarity vector
		// too: reuse may never cite a source diagnosis that no longer
		// exists. The index has its own lock and never calls back into the
		// Pool, so chaining it here respects the hook contract.
		userEvict := cfg.OnCacheEvict
		p.cache.onEvict = func(digest string) {
			p.sem.Remove(digest)
			if userEvict != nil {
				userEvict(digest)
			}
		}
	}
	for _, model := range cfg.TierModels {
		if model == cfg.Agent.Model {
			// The configured primary doubles as its own rung: reuse the
			// shared agent so its stats aren't split across two instances.
			p.tiers = append(p.tiers, p.agent)
			continue
		}
		tierOpts := cfg.Agent
		tierOpts.Model = model
		tierOpts.Index = p.agent.Index()
		p.tiers = append(p.tiers, ioagent.New(client, tierOpts))
	}
	for i := 0; i < cfg.Workers; i++ {
		p.workerWG.Add(1)
		go p.worker()
	}
	return p
}

// Agent returns the shared diagnosis agent (e.g. for pool-wide cost stats
// or post-diagnosis chat sessions).
func (p *Pool) Agent() *ioagent.Agent { return p.agent }

// Knowledge returns the pool's knowledge plane (nil unless configured).
func (p *Pool) Knowledge() *knowledge.Plane { return p.cfg.Knowledge }

// emit delivers one lifecycle event. Called WITHOUT p.mu held.
func (p *Pool) emit(kind EventKind, j *Job, log *darshan.Log) {
	if p.cfg.OnJobEvent != nil {
		p.cfg.OnJobEvent(Event{Kind: kind, Job: j.Info(), Log: log})
	}
}

// Preparsed pairs an already-decoded trace with its canonical content
// digest (darshan.ContentDigest), computed once by the ingest layer while
// the bytes were still arriving. SubmitPreparsed trusts the pairing and
// skips the re-encode that Digest would otherwise pay — the serving layer
// that built the Preparsed is responsible for having verified any
// client-asserted digest against the bytes it actually parsed.
type Preparsed struct {
	Log           *darshan.Log
	ContentDigest string
}

// Submit enqueues a trace for diagnosis on the interactive lane; see
// SubmitWith for the full contract.
func (p *Pool) Submit(log *darshan.Log) (*Job, error) {
	return p.SubmitWith(log, SubmitOpts{})
}

// SubmitWith enqueues a trace for diagnosis on the requested lane and
// returns immediately unless that lane's queue is full, in which case it
// blocks for backpressure (each lane has its own QueueDepth, so a batch
// flood never blocks interactive submitters). Three outcomes are possible
// without any new pipeline work: a cache hit completes the job instantly;
// a digest equal to an in-flight job coalesces onto it; and only
// otherwise does the job occupy a worker.
func (p *Pool) SubmitWith(log *darshan.Log, opts SubmitOpts) (*Job, error) {
	return p.submit(context.Background(), log, "", opts)
}

// SubmitContext is SubmitWith with a context bounding the backpressure
// wait: if the lane queue is full and ctx is done before a slot frees,
// the job is aborted (terminal failed with the context's error, observers
// notified) instead of holding the caller's goroutine — which is how a
// serving layer avoids leaking handlers for clients that already hung up.
// Work already accepted is unaffected; only the not-yet-queued submission
// is abandoned.
func (p *Pool) SubmitContext(ctx context.Context, log *darshan.Log, opts SubmitOpts) (*Job, error) {
	return p.submit(ctx, log, "", opts)
}

// SubmitPreparsed enqueues a trace the streaming ingest layer already
// decoded and content-addressed: the diagnosis digest is derived from
// pp.ContentDigest without re-encoding the log, so a multi-megabyte
// streamed trace pays its canonicalization exactly once. The context
// bounds the backpressure wait as in SubmitContext.
func (p *Pool) SubmitPreparsed(ctx context.Context, pp Preparsed, opts SubmitOpts) (*Job, error) {
	if pp.Log == nil || pp.ContentDigest == "" {
		return nil, fmt.Errorf("fleet: preparsed submission needs a log and its content digest")
	}
	return p.submit(ctx, pp.Log, pp.ContentDigest, opts)
}

func (p *Pool) submit(ctx context.Context, log *darshan.Log, contentDigest string, opts SubmitOpts) (*Job, error) {
	lane := opts.Lane.withDefault()
	if !lane.Valid() {
		return nil, fmt.Errorf("fleet: unknown lane %q", opts.Lane)
	}
	var digest string
	if contentDigest != "" {
		digest = digestWith(p.cfg.Agent, contentDigest)
	} else {
		var err error
		if digest, err = Digest(p.cfg.Agent, log); err != nil {
			return nil, err
		}
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	// Tenant quota, checked before the job exists: a tenant at its
	// in-flight cap is refused outright rather than admitted and failed.
	if opts.Tenant != "" && p.cfg.TenantMaxInflight > 0 {
		p.m.mu.Lock()
		over := p.m.tenantInflight[opts.Tenant] >= int64(p.cfg.TenantMaxInflight)
		p.m.mu.Unlock()
		if over {
			p.mu.Unlock()
			return nil, ErrTenantQuota
		}
	}
	// SLO admission, also before the job exists (and before the cache is
	// consulted, mirroring the quota): a tenant whose projected queue
	// age exceeds its class target is refused retryably rather than
	// admitted to rot. The scheduler has its own lock and never calls
	// back into the Pool, so querying it under p.mu is safe.
	if opts.Tenant != "" && p.cfg.SLOAdmission {
		if err := p.schd.Admit(string(lane), opts.Tenant); err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrSLOExceeded, err)
		}
	}
	p.nextID++
	idPrefix := ""
	if p.cfg.NodeID != "" {
		idPrefix = p.cfg.NodeID + "-"
	}
	j := &Job{
		id:        fmt.Sprintf("%sjob-%06d", idPrefix, p.nextID),
		digest:    digest,
		lane:      lane,
		tenant:    opts.Tenant,
		done:      make(chan struct{}),
		log:       log,
		status:    StatusQueued,
		submitted: p.cfg.now(),
	}
	p.jobs[j.id] = j
	p.order = append(p.order, j)
	p.pruneHistoryLocked()
	p.jobWG.Add(1)
	p.m.mu.Lock()
	p.m.submitted++
	p.m.countTenantLocked(opts.Tenant)
	p.m.mu.Unlock()

	// Fast path 1: already diagnosed and cached.
	if res, ok := p.cache.Get(digest); ok {
		j.cacheHit = true
		p.m.mu.Lock()
		p.m.hits++
		p.m.done++
		p.m.mu.Unlock()
		now := p.cfg.now()
		p.mu.Unlock()
		p.m.recordLatency(0)
		j.complete(res, nil, now)
		p.jobWG.Done()
		p.emit(EventSubmitted, j, log)
		return j, nil
	}

	// Fast path 2: identical trace already in flight — ride along,
	// mirroring the primary's progress so pollers see an honest state.
	if entry, ok := p.inflight[digest]; ok {
		entry.primary.mu.Lock()
		primaryStatus, primaryStarted := entry.primary.status, entry.primary.started
		entry.primary.mu.Unlock()
		j.cacheHit = true
		if primaryStatus == StatusRunning {
			j.status = StatusRunning
			j.started = primaryStarted
		}
		entry.followers = append(entry.followers, j)
		p.m.mu.Lock()
		p.m.coalesced++
		p.m.holdTenantLocked(opts.Tenant)
		p.m.mu.Unlock()
		// Emit before releasing p.mu: the primary's worker snapshots
		// followers under p.mu, so holding it here guarantees this
		// follower's submitted event precedes its terminal event. The
		// hook must not call back into the Pool (see Config.OnJobEvent),
		// so no re-entrancy deadlock is possible.
		p.emit(EventSubmitted, j, log)
		p.mu.Unlock()
		return j, nil
	}

	// Slow path: this job owns the digest and runs the pipeline.
	p.inflight[digest] = &inflightEntry{primary: j}
	p.m.mu.Lock()
	p.m.misses++
	p.m.queuedByLane[lane]++
	p.m.holdTenantLocked(opts.Tenant)
	p.m.mu.Unlock()
	p.qmu.RLock() // before mu is released, so Close cannot slip between
	p.mu.Unlock()

	// Emit before the scheduler enqueue: a worker cannot see the job
	// until the enqueue lands, so a write-ahead journal hooked here has
	// durably recorded the submission before any worker can complete it.
	p.emit(EventSubmitted, j, log)
	// Enqueue blocks while the lane is at QueueDepth (backpressure) and
	// aborts with ctx.Err() if the submitter hangs up first; a canceled
	// enqueue leaves no per-tenant depth or age state behind.
	if err := p.schd.Enqueue(ctx, string(lane), opts.Tenant, j); err != nil {
		// The job was journaled as submitted, so it must reach a
		// terminal state: abort it (and any followers that coalesced
		// onto it meanwhile) rather than park a goroutine on a queue
		// slot nobody wants.
		p.qmu.RUnlock()
		p.abortQueued(j, err)
		return j, err
	}
	p.qmu.RUnlock()
	return j, nil
}

// abortQueued terminally fails a job that was accepted but never reached
// its lane queue (context cancellation during backpressure), releasing
// the in-flight digest claim and completing any coalesced followers with
// the same error.
func (p *Pool) abortQueued(j *Job, cause error) {
	p.mu.Lock()
	var followers []*Job
	if entry := p.inflight[j.digest]; entry != nil && entry.primary == j {
		followers = entry.followers
		delete(p.inflight, j.digest)
	}
	p.mu.Unlock()

	finished := p.cfg.now()
	p.m.mu.Lock()
	p.m.queuedByLane[j.lane]--
	p.m.failed += int64(1 + len(followers))
	p.m.mu.Unlock()

	err := fmt.Errorf("fleet: submission abandoned before reaching the queue: %w", cause)
	j.complete(nil, err, finished)
	p.jobWG.Done()
	p.m.releaseTenant(j.tenant)
	p.emit(EventFailed, j, nil)
	for _, f := range followers {
		f.mu.Lock()
		f.cacheHit = false
		f.mu.Unlock()
		f.complete(nil, err, finished)
		p.jobWG.Done()
		p.m.releaseTenant(f.tenant)
		p.emit(EventFailed, f, nil)
	}
}

// Job returns a previously submitted job by ID.
func (p *Pool) Job(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// pruneHistoryLocked evicts the oldest completed jobs once the registry
// exceeds MaxJobHistory, so a long-lived pool's memory stays flat.
// Incomplete jobs are never pruned. Caller holds p.mu.
func (p *Pool) pruneHistoryLocked() {
	if p.cfg.MaxJobHistory < 0 {
		return
	}
	for len(p.order) > p.cfg.MaxJobHistory {
		pruned := false
		for i, j := range p.order {
			select {
			case <-j.done:
			default:
				continue
			}
			delete(p.jobs, j.id)
			p.order = append(p.order[:i], p.order[i+1:]...)
			pruned = true
			break
		}
		if !pruned {
			return // everything left is still queued or running
		}
	}
}

// Jobs returns every job the pool has accepted and not yet pruned, in
// submission order.
func (p *Pool) Jobs() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Job(nil), p.order...)
}

// BreakerOpen reports whether new submissions should be refused because
// the circuit breaker is open and inside its cooldown. Serving layers
// use it to answer a retryable code instead of accepting jobs doomed to
// ErrBreakerOpen — which is what lets a router fail the node's shard
// over to a healthy successor while the backend is down. It deliberately
// flips back to false when the cooldown elapses, before the breaker has
// closed: the next accepted job is what runs the half-open probe, so a
// daemon that kept refusing would stay broken forever. (The metrics
// snapshot's BreakerOpen reports the raw open state instead.)
func (p *Pool) BreakerOpen() bool {
	return p.brk.refusing()
}

// SetTenantClass assigns (or with class "", clears) a tenant's SLO
// class at runtime — the knob behind POST /v1/sched/tenants. Unknown
// class names are rejected. Serving layers that persist assignments
// (internal/fleet/store) journal them after this returns nil, so a
// restarted daemon replays the same classes back in.
func (p *Pool) SetTenantClass(tenant, class string) error {
	return p.schd.SetTenantClass(tenant, class)
}

// TenantClasses returns the current tenant→SLO-class assignments.
func (p *Pool) TenantClasses() map[string]string {
	return p.schd.TenantClasses()
}

// SchedStatus describes the fair scheduler's configuration surface:
// whether admission control is on, whether the pool runs the FIFO
// baseline, the class definitions, and the current assignments.
type SchedStatus struct {
	Admission   bool
	FIFO        bool
	Classes     map[string]sched.Class
	Assignments map[string]string
}

// SchedStatus returns the scheduler's configuration surface (served by
// GET /v1/sched).
func (p *Pool) SchedStatus() SchedStatus {
	return SchedStatus{
		Admission:   p.schd.Admission(),
		FIFO:        p.schd.FIFO(),
		Classes:     p.schd.ClassDefs(),
		Assignments: p.schd.TenantClasses(),
	}
}

// Metrics returns a point-in-time health snapshot.
func (p *Pool) Metrics() Snapshot {
	p.mu.Lock()
	inflight := len(p.inflight)
	p.mu.Unlock()
	s := p.m.snapshot(p.cfg.Workers, p.cache.Len())
	// OwnedDigests is this node's sharding footprint: every distinct
	// digest it can currently answer for (resident cache entries) or is
	// answering (in-flight primaries).
	s.OwnedDigests = int64(s.CacheLen + inflight)
	s.BreakerOpen, s.BreakerTrips = p.brk.stats()
	s.SemEntries = p.SemLen()
	sm := p.schd.Metrics()
	s.Sched = &sm
	if p.cfg.Knowledge != nil {
		km := p.cfg.Knowledge.Metrics()
		s.Knowledge = &km
	}
	if len(s.Tiers) > 0 {
		// Per-rung job counts come from the metrics struct; per-rung spend
		// comes from the model-level usage accounting.
		byModel := p.StatsByModel()
		for model, ts := range s.Tiers {
			ts.CostUSD = byModel[model].CostUSD
			s.Tiers[model] = ts
		}
	}
	return s
}

// CacheEntry is one exported result-cache entry. The Result is the live
// cached object shared with jobs and must be treated as immutable.
type CacheEntry struct {
	Digest string
	Result *ioagent.Result
	Added  time.Time // when the entry was cached (drives TTL expiry)
}

// CacheExport snapshots the result cache, most recently used first,
// skipping entries already past their TTL. It is the read side of the
// persistence layer: internal/fleet/store serializes the returned entries
// to disk.
func (p *Pool) CacheExport() []CacheEntry {
	return p.cache.export()
}

// CacheRestore seeds the result cache from a persisted snapshot. Entries
// keep their original Added times, so a restored entry expires exactly when
// it would have in the previous process; entries already expired (or in
// excess of the cache capacity) are dropped. Pass entries most recently
// used first — CacheExport order — so LRU eviction order survives the
// round trip.
func (p *Pool) CacheRestore(entries []CacheEntry) {
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if e.Digest == "" || e.Result == nil {
			continue
		}
		p.cache.putAt(e.Digest, e.Result, e.Added)
	}
}

// Wait blocks until every job submitted so far has completed. Submissions
// racing with Wait are not guaranteed to be covered.
func (p *Pool) Wait() { p.jobWG.Wait() }

// Close stops accepting submissions, drains the queue, and waits for all
// in-flight work to finish. It is safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.workerWG.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.qmu.Lock() // wait for in-flight Submit enqueues to land
	p.schd.Close()
	p.qmu.Unlock()
	p.workerWG.Wait()
}

// worker drains the scheduler, running one job at a time through the
// shared agent with retry-on-transient-error semantics. Lane preference
// (BatchShare) and per-tenant fairness (DRR) both live inside the
// scheduler; the worker exits when the scheduler is closed and drained.
func (p *Pool) worker() {
	defer p.workerWG.Done()
	for {
		j, ok := p.schd.Dequeue()
		if !ok {
			return
		}
		p.runJob(j)
	}
}

func (p *Pool) runJob(j *Job) {
	start := p.cfg.now()
	j.mu.Lock()
	j.status = StatusRunning
	j.started = start
	log := j.log
	submitted := j.submitted
	j.mu.Unlock()
	// Followers that attached while the primary was still queued move to
	// running with it.
	p.mu.Lock()
	if entry := p.inflight[j.digest]; entry != nil {
		for _, f := range entry.followers {
			f.mu.Lock()
			f.status = StatusRunning
			f.started = start
			f.mu.Unlock()
		}
	}
	p.mu.Unlock()
	p.m.mu.Lock()
	p.m.queuedByLane[j.lane]--
	p.m.running++
	p.m.mu.Unlock()

	var res *ioagent.Result
	var err error
	var features, src string
	var conf float64
	reused := false
	// Semantic reuse first: an exact-digest miss may still be a near
	// duplicate of an already-diagnosed trace. This runs on the worker —
	// never under p.mu — because the gate makes LLM judge calls.
	if p.sem != nil {
		features = semcache.FeatureText(log)
		if r, s, c, ok := p.semanticReuse(log, features); ok {
			res, src, conf, reused = r, s, c, true
			j.mu.Lock()
			j.simHit, j.srcDigest, j.conf = true, src, conf
			j.mu.Unlock()
		}
	}
	if !reused {
		delay := p.cfg.RetryDelay
		for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
			j.mu.Lock()
			j.attempts = attempt
			j.mu.Unlock()
			if attempt > 1 {
				p.m.mu.Lock()
				p.m.retries++
				p.m.mu.Unlock()
				p.cfg.sleep(delay)
				delay *= 2
			}
			// An open breaker refuses the attempt instead of hitting a backend
			// already known down. Remaining attempts still cycle (with their
			// backoff sleeps) rather than failing the job instantly: a job
			// admitted during the half-open window — whose probe slot went to
			// another job — usually outlives a successful probe and completes
			// normally. If the breaker stays open through every attempt, the
			// job fails with ErrBreakerOpen, which means "never tried" and is
			// safe to resubmit.
			if !p.brk.allow() {
				err = ErrBreakerOpen
				continue
			}
			res, err = p.diagnose(log)
			p.brk.record(err != nil && llm.IsTransient(err))
			if err == nil || !llm.IsTransient(err) {
				break
			}
		}
	}

	if err == nil {
		// Publish to the cache BEFORE releasing the in-flight entry:
		// between the two, a duplicate Submit either hits the cache or
		// coalesces — it can never slip through and redo the work.
		p.cache.Put(j.digest, res)
		if p.sem != nil && !reused {
			// Index the fresh diagnosis only after its cache entry exists:
			// a similarity vector must never point at a digest the cache
			// cannot serve. Reused results are not indexed — their text
			// already has a vector under the source digest.
			p.sem.Add(j.digest, features)
		}
	}

	p.mu.Lock()
	var followers []*Job
	if entry := p.inflight[j.digest]; entry != nil {
		followers = entry.followers
	}
	delete(p.inflight, j.digest)
	p.mu.Unlock()

	finished := p.cfg.now()
	p.m.mu.Lock()
	p.m.running--
	if err != nil {
		p.m.failed += int64(1 + len(followers))
	} else {
		p.m.done += int64(1 + len(followers))
	}
	p.m.mu.Unlock()
	if err == nil {
		p.m.recordLatency(finished.Sub(submitted))
	}

	kind := EventDone
	if err != nil {
		kind = EventFailed
	}
	j.complete(res, err, finished)
	p.jobWG.Done()
	p.m.releaseTenant(j.tenant)
	p.emit(kind, j, nil)
	for _, f := range followers {
		f.mu.Lock()
		fsub := f.submitted
		if err != nil {
			// The ride-along did not pay off; don't let a failed job
			// report itself as a cache success.
			f.cacheHit = false
		} else if reused {
			// Followers served by the primary's similarity hit carry the
			// same provenance.
			f.simHit, f.srcDigest, f.conf = true, src, conf
		}
		f.mu.Unlock()
		if err == nil {
			p.m.recordLatency(finished.Sub(fsub))
		}
		f.complete(res, err, finished)
		p.jobWG.Done()
		p.m.releaseTenant(f.tenant)
		p.emit(kind, f, nil)
	}
}
