package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// The store's checkpoint ticker calls CacheExport on a live pool, so the
// time export spends holding the cache lock is a periodic stall on the
// submission hot path. Entries are immutable once published, which lets
// export collect refs under the lock and build the rows outside it; this
// benchmark pins the cost at checkpoint scale.

func bench10kCache(b *testing.B) *cache {
	b.Helper()
	c := newCache(10_000, time.Hour, nil)
	for i := 0; i < 10_000; i++ {
		c.Put(fmt.Sprintf("digest-%05d", i), res(fmt.Sprintf("diagnosis %d", i)))
	}
	return c
}

func BenchmarkCacheExport10k(b *testing.B) {
	c := bench10kCache(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.export(); len(got) != 10_000 {
			b.Fatalf("exported %d entries", len(got))
		}
	}
}

func BenchmarkCacheDigests10k(b *testing.B) {
	c := bench10kCache(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.digests(); len(got) != 10_000 {
			b.Fatalf("listed %d digests", len(got))
		}
	}
}

// TestCacheExportImmutableSnapshot pins the restructure's correctness
// condition: a re-put concurrent with export must never corrupt an
// exported row (entries are replaced wholesale, not mutated), and every
// row is internally consistent — the digest always pairs with a result
// that was stored under it at some point.
func TestCacheExportImmutableSnapshot(t *testing.T) {
	c := newCache(64, 0, nil)
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("d%02d", i), res(fmt.Sprintf("d%02d/v0", i)))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 64; i++ {
				c.Put(fmt.Sprintf("d%02d", i), res(fmt.Sprintf("d%02d/v%d", i, v)))
			}
		}
	}()
	for i := 0; i < 200; i++ {
		for _, e := range c.export() {
			if e.Result == nil {
				t.Fatal("exported row with nil result")
			}
			if want := e.Digest + "/"; len(e.Result.Text) < len(want) || e.Result.Text[:len(want)] != want {
				t.Fatalf("row %s paired with foreign result %q", e.Digest, e.Result.Text)
			}
		}
	}
	close(stop)
	wg.Wait()
}
